.PHONY: all build test check lint bench shell clean

all: build

build:
	dune build

test:
	dune runtest

# Repo lint gate: bans catch-all exception handlers, Obj.magic and
# assert-false dispatch fallbacks (see bin/lint.ml for the rules and
# the "lint: allow" waiver syntax).
lint:
	dune build bin/lint.exe
	dune exec bin/lint.exe -- lib bin

# The one-stop gate: everything compiles (including tests and benches),
# the lint gate is clean, and the full suite passes.
check: lint
	dune build @all
	dune runtest

bench:
	dune exec bench/main.exe

shell:
	dune exec bin/rql_shell.exe

clean:
	dune clean
