.PHONY: all build test check bench shell clean

all: build

build:
	dune build

test:
	dune runtest

# The one-stop gate: everything compiles (including tests and benches)
# and the full suite passes.
check:
	dune build @all
	dune runtest

bench:
	dune exec bench/main.exe

shell:
	dune exec bin/rql_shell.exe

clean:
	dune clean
