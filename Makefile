.PHONY: all build test check lint crash bench concurrency opt-diff shell clean

all: build

build:
	dune build

test:
	dune runtest

# Repo lint gate: bans catch-all exception handlers, Obj.magic and
# assert-false dispatch fallbacks (see bin/lint.ml for the rules and
# the "lint: allow" waiver syntax).
lint:
	dune build bin/lint.exe
	dune exec bin/lint.exe -- lib bin

# Seeded crash matrix: crash the durability workload at every WAL
# injection point (clean + torn tails + sampled bit flips), recover,
# and verify integrity / all-or-nothing commits / snapshot history.
# A second lifecycle phase crashes CHECKPOINT and VACUUM SNAPSHOTS at
# every point and verifies recovery lands on the old archive or the
# new one — never a hybrid — with bounded post-checkpoint replay.
crash:
	dune exec bin/crash_matrix.exe -- --seed 42
	dune exec bin/crash_matrix.exe -- --seed 42 --group-commit 3

# The one-stop gate: everything compiles (including tests and benches),
# the lint gate is clean, and the full suite passes.
check: lint
	dune build @all
	dune runtest

bench:
	dune exec bench/main.exe

# Concurrency smoke: 4 reader domains over one shared core with real
# archive-read latency must beat 1 reader by >= 1.5x, and the
# Domain-parallel RQL loop must match the sequential loop byte-for-byte.
concurrency:
	dune exec bin/rql_serve.exe -- --self-test --clients 4
	dune exec bench/concurrency.exe -- --readers 4 --gate 1.5

# Optimizer differential gate: `PRAGMA optimize` on vs off must be
# byte-identical over random expressions and the fixed statement matrix
# (test_opt.ml), and the bench smoke must show the fold/hoist counters
# advancing with no latency regression on a foldable Qq_cpu.
opt-diff:
	dune exec test/test_opt.exe
	dune exec bench/main.exe -- --only micro --opt-smoke

shell:
	dune exec bin/rql_shell.exe

clean:
	dune clean
