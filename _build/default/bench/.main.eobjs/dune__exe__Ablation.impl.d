bench/ablation.ml: Fixtures List Printf Queries Retro Rql Sqldb Storage Tpch Util
