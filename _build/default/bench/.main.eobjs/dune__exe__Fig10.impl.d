bench/fig10.ml: Fixtures List Params Printf Queries Rql Tpch Util
