bench/fig11.ml: Fixtures Params Printf Queries Rql Sqldb Tpch Unix Util
