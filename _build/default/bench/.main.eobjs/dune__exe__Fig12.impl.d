bench/fig12.ml: Fixtures List Params Printf Queries Rql Tpch Util
