bench/fig13.ml: Fixtures List Params Printf Queries Rql Tpch Util
