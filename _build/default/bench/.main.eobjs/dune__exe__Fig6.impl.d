bench/fig6.ml: Fixtures List Params Printf Queries Rql Tpch Util
