bench/fig7.ml: Fixtures List Params Printf Queries Rql Tpch Util
