bench/fig8.ml: Fixtures List Queries Rql Sqldb Tpch Unix Util
