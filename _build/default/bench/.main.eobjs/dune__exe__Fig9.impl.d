bench/fig9.ml: Fixtures Params Printf Queries Retro Rql Sqldb Tpch Util
