bench/fixtures.ml: Hashtbl List Params Printf Retro Rql Sqldb Storage Tpch Unix
