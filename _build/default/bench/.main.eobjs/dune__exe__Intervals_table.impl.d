bench/intervals_table.ml: Fixtures List Params Printf Queries Rql Sqldb Storage Tpch Util
