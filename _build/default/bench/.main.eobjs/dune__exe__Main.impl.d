bench/main.ml: Ablation Arg Cmd Cmdliner Fig10 Fig11 Fig12 Fig13 Fig6 Fig7 Fig8 Fig9 Intervals_table List Micro Params Printf Queries String Term Unix Util
