bench/main.mli:
