bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance Lazy List Measure Printf Queries Retro Rql Sqldb Staged Storage String Test Time Toolkit Util
