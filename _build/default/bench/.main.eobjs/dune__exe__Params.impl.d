bench/params.ml: Tpch
