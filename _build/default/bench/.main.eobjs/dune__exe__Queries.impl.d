bench/queries.ml: Printf
