bench/util.ml: List Printf Rql
