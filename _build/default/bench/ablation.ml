(* Ablation experiments for the design choices DESIGN.md calls out —
   extensions beyond the paper's own figures.

   (a) Skippy skip index (paper's [23]): SPT-build scan length with and
       without the multi-level Maplog digests, as a function of how old
       the queried snapshot is.  Without Skippy the scan is proportional
       to the whole Maplog suffix; with it, duplicates collapse into
       per-segment digests.

   (b) Snapshot page cache size (the memory-cost discussion opening
       §5.3): RQL latency for an I/O-intensive query as the snapshot
       cache shrinks below the query's working set — the paper's
       assumption "the cache can hold the snapshot pages requested by a
       single RQL query" made quantitative. *)

module S = Storage.Stats

let run () =
  Util.section "Ablations — Skippy skip index; snapshot page-cache size";
  let uw = Tpch.Workload.uw30 in
  let fx = Fixtures.main uw in
  let ctx = fx.Fixtures.ctx in
  let retro = Sqldb.Db.retro_exn ctx.Rql.data in
  let history = fx.Fixtures.config.Fixtures.snapshots in

  Util.subsection "(a) SPT build: maplog entries visited per build";
  Printf.printf "%-14s %14s %14s %10s\n" "snapshot" "linear scan" "skippy scan" "speedup";
  List.iter
    (fun sid ->
      let visited skippy =
        Retro.set_skippy retro skippy;
        let s0 = S.copy S.global in
        ignore (Retro.build_spt retro sid);
        (S.diff (S.copy S.global) s0).S.maplog_scanned
      in
      let linear = visited false in
      let skip = visited true in
      Printf.printf "%-14s %14d %14d %9.1fx\n"
        (if sid = 1 then "oldest (1)" else Printf.sprintf "Slast-%d" (history - sid))
        linear skip
        (float_of_int linear /. float_of_int (max 1 skip)))
    [ 1; history / 4; history / 2; history - 10 ];
  Retro.set_skippy retro true;

  Util.subsection "(b) snapshot cache size vs RQL latency (AggVar(Qs_25, Qq_io, AVG))";
  Printf.printf "%-16s %12s %14s %14s\n" "cache (pages)" "total (s)" "pagelog reads" "hit rate";
  let qs = Queries.qs_range ~start:1 ~len:25 in
  List.iter
    (fun pages ->
      Retro.set_cache_pages retro pages;
      let s0 = S.copy S.global in
      let run =
        Rql.aggregate_data_in_variable ctx ~qs ~qq:Queries.qq_io ~table:"bench_abl" ~fn:"avg"
      in
      let d = S.diff (S.copy S.global) s0 in
      let hits = d.S.snap_cache_hits and misses = d.S.snap_cache_misses in
      Printf.printf "%-16d %12.4f %14d %13.1f%%\n" pages
        (Rql.Iter_stats.total_s run)
        d.S.pagelog_reads
        (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses))))
    [ 64; 128; 256; 512; 4096 ];
  Retro.set_cache_pages retro Retro.default_cache_pages;
  Util.expectation
    "once the cache is smaller than the query's snapshot working set (~450 orders pages), \
     hot iterations stop benefiting from inter-snapshot sharing and pagelog reads approach \
     the all-cold count"
