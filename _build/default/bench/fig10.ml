(* Figure 10: CollateData(Qs, Qq_collate, T) with varying Qq output size
   under UW30.

   Qq_collate's date predicate controls how many rows each iteration
   returns; the RQL UDF component (one callback and result-table insert
   per row) grows linearly with the output while sharing (cold vs hot)
   barely matters. *)

let run () =
  Util.section "Figure 10 — CollateData cost vs Qq output size (Qq_collate, UW30)";
  Util.expectation
    "the UDF component scales linearly with rows returned per snapshot and dominates for \
     large outputs; cold and hot iterations differ only in the (small) I/O component";
  let p = Params.p () in
  let n = p.Params.fig10_snapshots in
  let uw = Tpch.Workload.uw30 in
  let fx = Fixtures.main uw in
  Util.print_breakdown_header ();
  List.iter
    (fun fraction ->
      let date = Fixtures.date_percentile fx ~sid:1 fraction in
      let run =
        Rql.collate_data fx.Fixtures.ctx ~qs:(Queries.qs_n n)
          ~qq:(Queries.qq_collate date) ~table:"bench_f10"
      in
      let rows_per_snap = run.Rql.Iter_stats.result_rows / n in
      let cold, hot = Util.cold_hot run in
      Util.print_breakdown
        (Printf.sprintf "cold iteration, ~%d rows" rows_per_snap)
        cold;
      Util.print_breakdown (Printf.sprintf "hot iteration, ~%d rows" rows_per_snap) hot)
    [ 0.0005; 0.07; 0.5 ]
