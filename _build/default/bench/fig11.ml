(* Figure 11: producing the same result with AggregateDataInTable vs
   CollateData + a post-processing SQL aggregate, for one and two
   aggregation functions (Qq_agg, Qs over 50 snapshots, UW30), together
   with the §5.3 memory-footprint comparison.

   Paper: the two approaches have near-identical total latency (AggTable
   ~6% slower), an extra aggregation adds little, and AggTable's result
   table is an order of magnitude smaller and independent of |Qs|. *)

module IS = Rql.Iter_stats

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run () =
  Util.section "Figure 11 — AggregateDataInTable vs CollateData + SQL (Qq_agg, UW30)";
  Util.expectation
    "total latencies within ~10% of each other; the second aggregation adds little; \
     AggregateDataInTable's result table is many times smaller";
  let p = Params.p () in
  let n = p.Params.agg_snapshots in
  let uw = Tpch.Workload.uw30 in
  let fx = Fixtures.main uw in
  let ctx = fx.Fixtures.ctx in
  let qs = Queries.qs_n n in

  (* one aggregation function *)
  let collate = Rql.collate_data ctx ~qs ~qq:Queries.qq_agg ~table:"f11_collate" in
  let _, extra1 =
    timed (fun () ->
        Sqldb.Engine.exec ctx.Rql.meta
          "SELECT o_custkey, MAX(cn) AS cn FROM f11_collate GROUP BY o_custkey")
  in
  let agg1 =
    Rql.aggregate_data_in_table ctx ~qs ~qq:Queries.qq_agg ~table:"f11_agg1"
      ~aggs:[ ("cn", "max") ]
  in
  (* two aggregation functions *)
  let _, extra2 =
    timed (fun () ->
        Sqldb.Engine.exec ctx.Rql.meta
          "SELECT o_custkey, MAX(cn) AS cn, MAX(av) AS av FROM f11_collate GROUP BY o_custkey")
  in
  let agg2 =
    Rql.aggregate_data_in_table ctx ~qs ~qq:Queries.qq_agg ~table:"f11_agg2"
      ~aggs:[ ("cn", "max"); ("av", "max") ]
  in
  let t_c1 = IS.total_s collate +. extra1 in
  let t_c2 = IS.total_s collate +. extra2 in
  Printf.printf "%-44s %10s\n" "query" "total (s)";
  Printf.printf "%-44s %10.4f\n" "CollateData + 1 agg SQL" t_c1;
  Printf.printf "%-44s %10.4f\n" "AggregateDataInTable, 1 agg func" (IS.total_s agg1);
  Printf.printf "%-44s %10.4f\n" "CollateData + 2 agg SQL" t_c2;
  Printf.printf "%-44s %10.4f\n" "AggregateDataInTable, 2 agg funcs" (IS.total_s agg2);
  Printf.printf "AggTable overhead vs Collate (1 agg): %+.1f%%\n"
    ((IS.total_s agg1 /. t_c1 -. 1.) *. 100.);
  Util.subsection "memory footprint of the result tables";
  Printf.printf "%-44s %10s %12s\n" "mechanism" "rows" "bytes";
  Printf.printf "%-44s %10d %12d\n" "CollateData (grows with |Qs|)"
    collate.IS.result_rows collate.IS.result_bytes;
  Printf.printf "%-44s %10d %12d\n" "AggregateDataInTable (independent of |Qs|)"
    agg1.IS.result_rows agg1.IS.result_bytes;
  Printf.printf "footprint reduction: %.1fx\n"
    (float_of_int collate.IS.result_bytes /. float_of_int (max 1 agg1.IS.result_bytes))
