(* Figure 12: single-iteration cost of CollateData vs
   AggregateDataInTable on the same Qq_agg (UW30).

   The AggTable cold iteration also builds the result-table index; its
   hot iterations do one index probe per Qq row plus occasional
   inserts/updates, while CollateData does one plain insert per row. *)

module IS = Rql.Iter_stats

let run () =
  Util.section "Figure 12 — Single-iteration cost: CollateData vs AggregateDataInTable";
  Util.expectation
    "AggTable cold > Collate cold (result-table index creation); AggTable hot > Collate \
     hot (a probe per row, few updates vs an insert per row)";
  let p = Params.p () in
  let n = p.Params.agg_snapshots in
  let uw = Tpch.Workload.uw30 in
  let fx = Fixtures.main uw in
  let ctx = fx.Fixtures.ctx in
  let qs = Queries.qs_n n in
  let collate = Rql.collate_data ctx ~qs ~qq:Queries.qq_agg ~table:"f12_collate" in
  let agg =
    Rql.aggregate_data_in_table ctx ~qs ~qq:Queries.qq_agg ~table:"f12_agg"
      ~aggs:[ ("cn", "max") ]
  in
  Util.print_breakdown_header ();
  let c_cold, c_hot = Util.cold_hot collate in
  let a_cold, a_hot = Util.cold_hot agg in
  Util.print_breakdown "CollateData, cold iteration" c_cold;
  Util.print_breakdown "AggregateDataInTable, cold iteration" a_cold;
  Util.print_breakdown "CollateData, hot iteration" c_hot;
  Util.print_breakdown "AggregateDataInTable, hot iteration" a_hot;
  let ops run =
    let hots = Util.hot_iterations run in
    let div x = x / max 1 (List.length hots) in
    ( div (List.fold_left (fun a it -> a + it.IS.udf_rows) 0 hots),
      div (List.fold_left (fun a it -> a + it.IS.udf_inserts) 0 hots),
      div (List.fold_left (fun a it -> a + it.IS.udf_updates) 0 hots) )
  in
  let cr, ci, cu = ops collate and ar, ai, au = ops agg in
  Printf.printf
    "per hot iteration — Collate: %d rows -> %d inserts, %d updates; AggTable: %d rows -> \
     %d probes, %d inserts, %d updates\n"
    cr ci cu ar ar ai au
