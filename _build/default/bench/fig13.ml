(* Figure 13: AggregateDataInTable with MAX vs SUM (Qq_agg, UW30).

   Cold iterations are identical (same inserts, same index creation).
   Hot iterations probe the result table once per Qq row in both cases,
   but SUM must update the accumulator for every row whereas MAX only
   updates when the maximum actually moves. *)

module IS = Rql.Iter_stats

let run () =
  Util.section "Figure 13 — AggregateDataInTable: MAX vs SUM aggregation";
  Util.expectation
    "cold iterations equal; SUM hot iterations cost more than MAX because nearly every \
     probed row is also updated";
  let p = Params.p () in
  let n = p.Params.agg_snapshots in
  let uw = Tpch.Workload.uw30 in
  let fx = Fixtures.main uw in
  let ctx = fx.Fixtures.ctx in
  let qs = Queries.qs_n n in
  let run_fn fn table =
    Rql.aggregate_data_in_table ctx ~qs ~qq:Queries.qq_agg ~table ~aggs:[ ("cn", fn) ]
  in
  let rmax = run_fn "max" "f13_max" in
  let rsum = run_fn "sum" "f13_sum" in
  Util.print_breakdown_header ();
  let mx_cold, mx_hot = Util.cold_hot rmax in
  let sm_cold, sm_hot = Util.cold_hot rsum in
  Util.print_breakdown "MAX aggregation, cold iteration" mx_cold;
  Util.print_breakdown "SUM aggregation, cold iteration" sm_cold;
  Util.print_breakdown "MAX aggregation, hot iteration" mx_hot;
  Util.print_breakdown "SUM aggregation, hot iteration" sm_hot;
  let upd run =
    let hots = Util.hot_iterations run in
    List.fold_left (fun a it -> a + it.IS.udf_updates) 0 hots / max 1 (List.length hots)
  in
  Printf.printf "updates per hot iteration: MAX %d vs SUM %d\n" (upd rmax) (upd rsum)
