(* Figure 6: ratio C with old snapshots — the impact of page sharing
   between consecutive snapshots.

   AggregateDataInVariable(Qs_N, Qq_io, AVG) over intervals of old
   snapshots of increasing length, for UW15/UW30 and snapshot steps 1
   and 10.  C = latency relative to an all-cold run of the same set. *)

let run () =
  Util.section
    "Figure 6 — Ratio C vs snapshot interval length (old snapshots, sharing between \
     snapshots)";
  Util.expectation
    "C near 1 for short intervals, dropping to a constant past ~20 snapshots; UW15 below \
     UW30; step 10 above step 1";
  let p = Params.p () in
  let lengths = p.Params.fig6_lengths in
  let lengths10 = p.Params.fig6_step10_lengths in
  List.iter
    (fun uw ->
      let fx = Fixtures.main uw in
      Util.subsection
        (Printf.sprintf "%s, AggVar(Qs_N, Qq_io, AVG), step 1" uw.Tpch.Workload.uname);
      Printf.printf "%-6s %10s %12s %12s %14s\n" "N" "C" "rql(s)" "all-cold(s)" "hot pagelog/it";
      List.iter
        (fun n ->
          let run, cold, c =
            Util.ratio_c_agg_var fx.Fixtures.ctx ~qs:(Queries.qs_n n) ~qq:Queries.qq_io
              ~fn:"avg"
          in
          let hots = Util.hot_iterations run in
          let hot_reads =
            if hots = [] then 0
            else
              List.fold_left (fun a it -> a + it.Rql.Iter_stats.pagelog_reads) 0 hots
              / List.length hots
          in
          Printf.printf "%-6d %10.3f %12.4f %12.4f %14d\n%!" n c
            (Rql.Iter_stats.total_s run) (Rql.Iter_stats.total_s cold) hot_reads)
        lengths;
      Util.subsection
        (Printf.sprintf "%s, AggVar(Qs_N with step 10, Qq_io, AVG)" uw.Tpch.Workload.uname);
      Printf.printf "%-6s %10s %12s %12s\n" "N" "C" "rql(s)" "all-cold(s)";
      List.iter
        (fun n ->
          let run, cold, c =
            Util.ratio_c_agg_var fx.Fixtures.ctx
              ~qs:(Queries.qs_step ~len:n ~step:10)
              ~qq:Queries.qq_io ~fn:"avg"
          in
          Printf.printf "%-6d %10.3f %12.4f %12.4f\n%!" n c (Rql.Iter_stats.total_s run)
            (Rql.Iter_stats.total_s cold))
        lengths10)
    [ Tpch.Workload.uw30; Tpch.Workload.uw15 ]
