(* Figure 7: ratio C with recent snapshots — the impact of sharing with
   the current database state.

   Fixed-length intervals of consecutive snapshots (skip 1) whose start
   slides from Slast-OverwriteCycle-20 toward Slast-20.  Pages a recent
   snapshot shares with the current state are served from memory, so
   both the RQL cost and the all-cold cost fall; C(x) first drops (RQL
   cost falls while all-cold stays constant) and then rises back (the
   all-cold baseline catches up). *)

let run () =
  Util.section "Figure 7 — Ratio C with recent snapshots (sharing with current state)";
  Util.expectation
    "C falls while the interval start is old, then rises as the start becomes recent and \
     the all-cold cost converges to the RQL cost";
  let p = Params.p () in
  let len = p.Params.fig7_interval in
  List.iter
    (fun uw ->
      let oc = Tpch.Workload.overwrite_cycle uw in
      (* reuse the Figure 6 fixture for this workload *)
      let history = (Fixtures.main uw).Fixtures.config.Fixtures.snapshots in
      let fx = Fixtures.main uw in
      Util.subsection
        (Printf.sprintf "%s, AggVar(Qs, Qq_io, AVG), interval length %d, skip 1"
           uw.Tpch.Workload.uname len);
      Printf.printf "%-14s %10s %12s %12s\n" "start" "C" "rql(s)" "all-cold(s)";
      (* offsets from Slast: OC+20 down to 20 *)
      let rec offsets o acc = if o < 20 then List.rev acc else offsets (o - 25) (o :: acc) in
      let offs = offsets (oc + 20) [] in
      let offs = if List.mem 20 offs then offs else offs @ [ 20 ] in
      List.iter
        (fun off ->
          let start = max 1 (history - off) in
          let run, cold, c =
            Util.ratio_c_agg_var fx.Fixtures.ctx
              ~qs:(Queries.qs_range ~start ~len)
              ~qq:Queries.qq_io ~fn:"avg"
          in
          Printf.printf "%-14s %10.3f %12.4f %12.4f\n%!"
            (Printf.sprintf "Slast-%d" off)
            c (Rql.Iter_stats.total_s run) (Rql.Iter_stats.total_s cold))
        offs)
    [ Tpch.Workload.uw30; Tpch.Workload.uw15 ]
