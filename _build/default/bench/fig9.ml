(* Figure 9: CPU-intensive Qq_cpu (Lineitem x Part join) with
   AggregateDataInVariable(Qs, Qq_cpu, AVG) under UW30, with and without
   a native index on lineitem(l_partkey).

   Without the native index the engine builds its automatic covering
   index over Lineitem on every iteration — the dominant cost.  With the
   native index that cost disappears, but the index pages enlarge the
   database and the Pagelog, so I/O and SPT-build costs grow. *)

let breakdown_with_rows label (b : Rql.Iter_stats.breakdown) =
  Util.print_breakdown label b

let run () =
  Util.section "Figure 9 — CPU-intensive query: AggVar(Qq_cpu, AVG), UW30, index effects";
  Util.expectation
    "without a native index, per-iteration (covering) index creation dominates and \
     cold/hot differ little; with a native index the index-creation bar disappears while \
     I/O and SPT build grow";
  let p = Params.p () in
  let n = p.Params.fig9_snapshots in
  let history = n + 10 in
  let run_variant ~native label =
    let fx =
      Fixtures.get
        { Fixtures.uw = Tpch.Workload.uw30; snapshots = history;
          native_lineitem_index = native }
    in
    let run =
      Rql.aggregate_data_in_variable fx.Fixtures.ctx ~qs:(Queries.qs_n n) ~qq:Queries.qq_cpu
        ~table:"bench_f9" ~fn:"avg"
    in
    let cold, hot = Util.cold_hot run in
    breakdown_with_rows (Printf.sprintf "cold iteration %s" label) cold;
    breakdown_with_rows (Printf.sprintf "hot iteration %s" label) hot
  in
  Util.print_breakdown_header ();
  run_variant ~native:false "w/o index";
  run_variant ~native:true "w/ index";
  (* quantify the database/pagelog growth caused by the native index *)
  let pagelog native =
    let fx =
      Fixtures.get
        { Fixtures.uw = Tpch.Workload.uw30; snapshots = history;
          native_lineitem_index = native }
    in
    Retro.pagelog_size_bytes (Sqldb.Db.retro_exn fx.Fixtures.ctx.Rql.data)
  in
  Printf.printf "pagelog: %.1f MB without index, %.1f MB with native index\n"
    (Util.mb (pagelog false)) (Util.mb (pagelog true))
