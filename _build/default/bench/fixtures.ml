(* Shared experiment fixtures: TPC-H databases with snapshot histories,
   memoized per configuration so the figures can share them. *)

type config = {
  uw : Tpch.Workload.uw;
  snapshots : int;
  native_lineitem_index : bool; (* Fig 9's "with native index" variant *)
}

type fixture = {
  ctx : Rql.ctx;
  st : Tpch.Dbgen.state;
  config : config;
}

let cache : (string, fixture) Hashtbl.t = Hashtbl.create 8

let key c = Printf.sprintf "%s/%d/%b" c.uw.Tpch.Workload.uname c.snapshots c.native_lineitem_index

let get (c : config) : fixture =
  match Hashtbl.find_opt cache (key c) with
  | Some f -> f
  | None ->
    let sf = (Params.p ()).Params.sf in
    Printf.printf "[fixture] TPC-H SF %g, %s, %d snapshots%s ...%!" sf
      c.uw.Tpch.Workload.uname c.snapshots
      (if c.native_lineitem_index then ", native lineitem index" else "");
    let t0 = Unix.gettimeofday () in
    let ctx = Rql.create () in
    let st = Tpch.Dbgen.generate ctx.Rql.data ~sf in
    if c.native_lineitem_index then
      ignore
        (Sqldb.Engine.exec ctx.Rql.data "CREATE INDEX idx_l_partkey ON lineitem (l_partkey)");
    ignore (Tpch.Workload.run ctx st ~uw:c.uw ~snapshots:c.snapshots);
    Printf.printf " %.1fs (pagelog %.1f MB)\n%!"
      (Unix.gettimeofday () -. t0)
      (float_of_int (Retro.pagelog_size_bytes (Sqldb.Db.retro_exn ctx.Rql.data)) /. 1e6);
    let f = { ctx; st; config = c } in
    Hashtbl.add cache (key c) f;
    f

(* Drop a fixture (frees memory between heavy experiments). *)
let drop (c : config) = Hashtbl.remove cache (key c)

(* The longest snapshot span any Figure 6/7 sweep touches. *)
let fig6_span () =
  let p = Params.p () in
  max
    (List.fold_left max 1 p.Params.fig6_lengths)
    (((List.fold_left max 1 p.Params.fig6_step10_lengths - 1) * 10) + 1)

(* The main long-history fixture for a workload: every snapshot touched
   by the sweeps is "old" (a full overwrite cycle behind it). *)
let main uw =
  let p = Params.p () in
  let n_old = max (fig6_span ()) p.Params.agg_snapshots in
  get { uw; snapshots = Params.history_for uw ~n_old; native_lineitem_index = false }

(* An o_orderdate value such that roughly [fraction] of the orders AS OF
   snapshot [sid] fall before it — used to control Qq_collate's output
   size (Fig 10).  Computed against the snapshot the experiment queries:
   refresh streams shift the date distribution over time, so the current
   state's percentiles would miss. *)
let date_percentile fx ~sid fraction =
  let db = fx.ctx.Rql.data in
  let total =
    Sqldb.Engine.int_scalar db (Printf.sprintf "SELECT AS OF %d COUNT(*) FROM orders" sid)
  in
  let k = max 1 (int_of_float (fraction *. float_of_int total)) in
  match
    Sqldb.Engine.scalar db
      (Printf.sprintf
         "SELECT AS OF %d o_orderdate FROM orders ORDER BY o_orderdate LIMIT 1 OFFSET %d" sid
         (k - 1))
  with
  | Storage.Record.Text d -> d
  | _ -> invalid_arg "date_percentile"
