(* Section 5.3's closing experiment: result-table sizes of
   CollateDataIntoIntervals vs CollateData for Qq_int over 50 snapshots
   under UW7.5 / UW15 / UW30 / UW60.

   Paper (SF 1): CollateData materializes 75M rows (>3 GB); the interval
   representation holds 1.86M / 2.3M / 2.97M / 4.4M rows (89-204 MB)
   plus ~50% for its index — more churn per snapshot means more
   intervals, but far less than proportionally. *)

module IS = Rql.Iter_stats

let run () =
  Util.section
    "Section 5.3 — CollateDataIntoIntervals vs CollateData result sizes (Qq_int, 50 \
     snapshots)";
  Util.expectation
    "interval table is a small fraction of the collate table; its size grows with the \
     update workload but sub-proportionally; the index adds roughly half again";
  let p = Params.p () in
  let n = p.Params.intervals_snapshots in
  (* one CollateData reference (the size depends only on |Qs| x |Qq|) *)
  let fx30 = Fixtures.main Tpch.Workload.uw30 in
  let collate =
    Rql.collate_data fx30.Fixtures.ctx ~qs:(Queries.qs_n n) ~qq:Queries.qq_int
      ~table:"sec53_collate"
  in
  Printf.printf "%-26s %10d rows %10.2f MB\n" "CollateData (any UW)" collate.IS.result_rows
    (Util.mb collate.IS.result_bytes);
  Printf.printf "%-26s %10s %14s %12s %12s\n" "workload" "rows" "MB" "index MB" "vs collate";
  List.iter
    (fun uw ->
      (* reuse the long histories for UW15/UW30; build 50-snapshot
         histories for the other workloads *)
      let fx =
        if uw == Tpch.Workload.uw15 || uw == Tpch.Workload.uw30 then Fixtures.main uw
        else Fixtures.get { Fixtures.uw = uw; snapshots = n; native_lineitem_index = false }
      in
      let ctx = fx.Fixtures.ctx in
      let run =
        Rql.collate_data_into_intervals ctx ~qs:(Queries.qs_n n) ~qq:Queries.qq_int
          ~table:"sec53_intervals"
      in
      (* index footprint: pages reachable from the result index root *)
      let index_bytes =
        let cat = Sqldb.Db.catalog ctx.Rql.meta in
        match Sqldb.Catalog.find_index cat "sec53_intervals__rql_key" with
        | Some idx ->
          let bt = Storage.Btree.open_existing idx.Sqldb.Catalog.iroot in
          Storage.Btree.page_count (Sqldb.Db.read_current ctx.Rql.meta) bt * Storage.Page.size
        | None -> 0
      in
      Printf.printf "%-26s %10d %14.2f %12.2f %11.1f%%\n%!"
        ("Intervals, " ^ uw.Tpch.Workload.uname)
        run.IS.result_rows (Util.mb run.IS.result_bytes) (Util.mb index_bytes)
        (100. *. float_of_int run.IS.result_bytes /. float_of_int (max 1 collate.IS.result_bytes)))
    [ Tpch.Workload.uw7_5; Tpch.Workload.uw15; Tpch.Workload.uw30; Tpch.Workload.uw60 ]
