(* Benchmark scale parameters.

   The paper runs at TPC-H SF 1 (1.4 GB) on a Xeon testbed; we default to
   SF 0.01 so the whole suite finishes in minutes while preserving every
   ratio the experiments measure (diff(S1,S2) relative to database size,
   result-set cardinalities relative to table sizes — see DESIGN.md).
   [--full] raises the scale. *)

type t = {
  mutable sf : float;
  mutable fig6_lengths : int list;       (* snapshot-interval lengths, step 1 *)
  mutable fig6_step10_lengths : int list; (* interval lengths at step 10 *)
  mutable fig7_interval : int;           (* fixed interval length *)
  mutable fig9_snapshots : int;          (* iterations for the CPU-heavy Qq *)
  mutable fig10_snapshots : int;
  mutable agg_snapshots : int;           (* Qs_50 equivalents for Figs 11-13 *)
  mutable intervals_snapshots : int;     (* §5.3 interval experiment *)
}

let quick =
  { sf = 0.01;
    fig6_lengths = [ 1; 2; 5; 10; 20; 35; 50 ];
    fig6_step10_lengths = [ 1; 2; 3; 5 ];
    fig7_interval = 20;
    fig9_snapshots = 8;
    fig10_snapshots = 10;
    agg_snapshots = 50;
    intervals_snapshots = 50 }

let full =
  { sf = 0.02;
    fig6_lengths = [ 1; 2; 5; 10; 20; 40; 60; 80; 100 ];
    fig6_step10_lengths = [ 1; 2; 5; 8; 10 ];
    fig7_interval = 20;
    fig9_snapshots = 20;
    fig10_snapshots = 20;
    agg_snapshots = 50;
    intervals_snapshots = 50 }

let current = ref quick

let p () = !current

(* History length needed so every snapshot in [1, n_old] has a complete
   overwrite cycle behind it ("old" snapshots, §5.1). *)
let history_for uw ~n_old = n_old + Tpch.Workload.overwrite_cycle uw + 10
