(* Table 1 of the paper: the parameters and queries used throughout the
   performance evaluation. *)

(* I/O intensive, computationally light: scans Orders. *)
let qq_io = "SELECT COUNT(*) AS c FROM orders WHERE o_orderstatus = 'O'"

(* CPU intensive: joins Lineitem and Part; without a native index the
   engine builds a covering index per execution (Fig 9).  The paper's
   SQLite picks Part as the outer table and builds its automatic
   covering index over Lineitem; our planner joins in FROM order, so
   Part is listed first to produce the same plan (inner = lineitem). *)
let qq_cpu =
  "SELECT SUM(l_extendedprice) AS revenue FROM part, lineitem WHERE p_partkey = l_partkey \
   AND p_type = 'STANDARD POLISHED TIN'"

(* Output-size-controlled scan: the [DATE] predicate tunes how many rows
   the Qq returns (Fig 10). *)
let qq_collate date =
  Printf.sprintf "SELECT o_orderkey FROM orders WHERE o_orderdate < '%s'" date

(* Aggregation query: per-customer order count and average price
   (Figs 11-13). *)
let qq_agg =
  "SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av FROM orders GROUP BY o_custkey"

(* Full projection used by the §5.3 interval experiment. *)
let qq_int = "SELECT o_orderkey, o_custkey FROM orders"

(* Qs builders.  Qs_N: the first N snapshots (an old interval when the
   history extends at least an overwrite cycle past them). *)
let qs_n n = Printf.sprintf "SELECT snap_id FROM SnapIds WHERE snap_id <= %d" n

(* N snapshots starting at [start] (inclusive), consecutive. *)
let qs_range ~start ~len =
  Printf.sprintf "SELECT snap_id FROM SnapIds WHERE snap_id >= %d AND snap_id < %d" start
    (start + len)

(* N snapshots starting at 1, every [step]-th. *)
let qs_step ~len ~step =
  Printf.sprintf
    "SELECT snap_id FROM SnapIds WHERE snap_id %% %d = 1 AND snap_id <= %d" step
    (((len - 1) * step) + 1)

let table_1 =
  [ ("UW7.5/UW15/UW30/UW60",
     "delete+insert 0.5%/1%/2%/4% of the order population per snapshot (paper: 7.5K/15K/30K/60K at SF1)");
    ("Qs_N", "snapshot interval of length N (see per-figure Qs)");
    ("Qq_io", qq_io);
    ("Qq_cpu", qq_cpu);
    ("Qq_collate", qq_collate "[DATE]");
    ("Qq_agg", qq_agg);
    ("Qq_int", qq_int);
    ("RQL UDFs", "CollateData / AggregateDataInVariable / AggregateDataInTable / CollateDataIntoIntervals");
    ("Aggregate functions", "MIN, MAX, SUM, COUNT, AVG") ]
