bin/rql_shell.ml: Arg Array Cmd Cmdliner Fmt In_channel List Printf Retro Rql Sqldb Storage String Term Tpch
