bin/rql_shell.mli:
