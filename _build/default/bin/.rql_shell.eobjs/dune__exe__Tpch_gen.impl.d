bin/tpch_gen.ml: Arg Cmd Cmdliner Printf Retro Rql Sqldb Storage Term Tpch Unix
