bin/tpch_gen.mli:
