(* TPC-H history inspector.

   Generates a TPC-H database at a scale factor, runs an update workload
   that declares snapshots, and reports the storage-level quantities the
   paper's §4 discusses: per-snapshot diff sizes, Pagelog/Maplog growth,
   and overwrite-cycle progress.

     dune exec bin/tpch_gen.exe -- --sf 0.01 --uw UW30 --snapshots 20 *)

module E = Sqldb.Engine

open Cmdliner

let sf =
  let doc = "TPC-H scale factor (paper default 1.0; keep small here)." in
  Arg.(value & opt float 0.01 & info [ "sf" ] ~docv:"SF" ~doc)

let uw =
  let doc = "Update workload: UW7.5, UW15, UW30 or UW60." in
  Arg.(value & opt string "UW30" & info [ "uw" ] ~docv:"UW" ~doc)

let snapshots =
  let doc = "Number of refresh+snapshot rounds." in
  Arg.(value & opt int 20 & info [ "snapshots" ] ~docv:"N" ~doc)

let main sf uw_name snapshots =
  let uw = Tpch.Workload.of_name uw_name in
  Printf.printf "TPC-H SF %g, %s (%d orders/snapshot, overwrite cycle ~%d), %d snapshots\n%!"
    sf uw_name
    (Tpch.Workload.orders_per_snapshot uw ~sf)
    (Tpch.Workload.overwrite_cycle uw)
    snapshots;
  let t0 = Unix.gettimeofday () in
  let ctx = Rql.create () in
  let st = Tpch.Dbgen.generate ctx.Rql.data ~sf in
  Printf.printf "initial load: %.2fs  (orders=%d lineitem=%d, db=%d pages)\n%!"
    (Unix.gettimeofday () -. t0)
    (E.int_scalar ctx.Rql.data "SELECT COUNT(*) FROM orders")
    (E.int_scalar ctx.Rql.data "SELECT COUNT(*) FROM lineitem")
    (Storage.Pager.n_pages Sqldb.Db.(ctx.Rql.data.pager));
  let retro = Sqldb.Db.retro_exn ctx.Rql.data in
  Printf.printf "%4s %12s %12s %12s %10s\n" "snap" "cow pages" "pagelog MB" "maplog" "sec";
  for i = 1 to snapshots do
    let s0 = Storage.Stats.copy Storage.Stats.global in
    let t = Unix.gettimeofday () in
    ignore (Tpch.Workload.run ctx st ~uw ~snapshots:1);
    let d = Storage.Stats.diff (Storage.Stats.copy Storage.Stats.global) s0 in
    Printf.printf "%4d %12d %12.1f %12d %10.2f\n%!" i d.Storage.Stats.cow_archived
      (float_of_int (Retro.pagelog_size_bytes retro) /. 1e6)
      (Retro.maplog_length retro)
      (Unix.gettimeofday () -. t)
  done;
  Printf.printf "done: %d snapshots, pagelog %.1f MB\n"
    (Retro.snapshot_count retro)
    (float_of_int (Retro.pagelog_size_bytes retro) /. 1e6)

let cmd =
  let doc = "generate a TPC-H snapshot history and report storage growth" in
  Cmd.v (Cmd.info "tpch_gen" ~doc) Term.(const main $ sf $ uw $ snapshots)

let () = exit (Cmd.eval cmd)
