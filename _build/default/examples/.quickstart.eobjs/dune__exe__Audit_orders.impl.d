examples/audit_orders.ml: Array List Printf Rql Sqldb Storage String Tpch
