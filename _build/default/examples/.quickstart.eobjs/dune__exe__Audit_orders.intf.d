examples/audit_orders.mli:
