examples/capacity_planning.ml: Array List Printf Rql Sqldb Storage String Tpch
