examples/quickstart.ml: Array List Printf Rql Sqldb Storage String
