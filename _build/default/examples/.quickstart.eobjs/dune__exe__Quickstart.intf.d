examples/quickstart.mli:
