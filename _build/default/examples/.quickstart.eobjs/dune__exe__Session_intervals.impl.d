examples/session_intervals.ml: Array Hashtbl List Printf Random Rql Sqldb Storage String
