examples/session_intervals.mli:
