examples/temporal_join.ml: Array List Printf Rql Sqldb Storage String
