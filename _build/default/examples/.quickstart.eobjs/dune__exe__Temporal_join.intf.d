examples/temporal_join.mli:
