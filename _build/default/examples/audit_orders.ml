(* Auditing scenario (the paper's motivating use case): after-the-fact
   claim checking over a TPC-H order database with a snapshot history.

   The auditor answers questions that need multiple past states:
   - How did open-order volume evolve?       (AggregateDataInVariable AVG,
                                              plus CollateData series)
   - When did a given order first appear?    (AggregateDataInVariable MIN)
   - Which orders were removed, and when did each order key live?
                                             (CollateDataIntoIntervals)
   - Per-customer peak activity and average spend across history
                                             (AggregateDataInTable)

   Run with:  dune exec examples/audit_orders.exe *)

module R = Storage.Record
module E = Sqldb.Engine

let rows db sql = (E.exec db sql).E.rows

let show db title sql =
  Printf.printf "\n-- %s\n" title;
  List.iter
    (fun row ->
      Printf.printf "   %s\n"
        (String.concat " | " (Array.to_list (Array.map R.value_to_string row))))
    (rows db sql)

let () =
  Printf.printf "building TPC-H history (SF 0.005, UW30, 12 snapshots)...\n%!";
  let ctx, _st, _sids =
    Tpch.Workload.build_history ~sf:0.005 ~uw:Tpch.Workload.uw30 ~snapshots:12 ()
  in
  let qs = "SELECT snap_id FROM SnapIds" in

  (* 1. Open-order volume per snapshot: collate the counts, then report
     the series and its average. *)
  ignore
    (Rql.collate_data ctx ~qs
       ~qq:"SELECT current_snapshot() AS sid, COUNT(*) AS open_orders FROM orders WHERE \
            o_orderstatus = 'O'"
       ~table:"open_series");
  show ctx.Rql.meta "open orders per snapshot" "SELECT * FROM open_series ORDER BY sid";
  ignore
    (Rql.aggregate_data_in_variable ctx ~qs
       ~qq:"SELECT COUNT(*) AS c FROM orders WHERE o_orderstatus = 'O'" ~table:"open_avg"
       ~fn:"avg");
  show ctx.Rql.meta "average open orders across the history" "SELECT * FROM open_avg";

  (* 2. Fact check: pick the newest order and find the first snapshot
     that contains it. *)
  let newest =
    match rows ctx.Rql.data "SELECT MAX(o_orderkey) FROM orders" with
    | [ [| R.Int k |] ] -> k
    | _ -> failwith "unexpected"
  in
  ignore
    (Rql.aggregate_data_in_variable ctx ~qs
       ~qq:
         (Printf.sprintf
            "SELECT DISTINCT current_snapshot() AS sid FROM orders WHERE o_orderkey = %d"
            newest)
       ~table:"first_seen" ~fn:"min");
  Printf.printf "\n-- order %d first appears in snapshot:\n" newest;
  show ctx.Rql.meta "" "SELECT * FROM first_seen";

  (* 3. Order lifetimes: the interval representation makes deleted
     orders visible as intervals ending before the last snapshot. *)
  ignore
    (Rql.collate_data_into_intervals ctx ~qs ~qq:"SELECT o_orderkey FROM orders"
       ~table:"order_life");
  show ctx.Rql.meta "orders deleted during the history (earliest 10)"
    "SELECT o_orderkey, start_snapshot, end_snapshot FROM order_life WHERE end_snapshot < 12 \
     ORDER BY end_snapshot, o_orderkey LIMIT 10";
  show ctx.Rql.meta "lifetime distribution (span -> orders)"
    "SELECT end_snapshot - start_snapshot AS span, COUNT(*) AS orders FROM order_life GROUP \
     BY span ORDER BY span";

  (* 4. Per-customer peak orders in a single snapshot and the maximum of
     their per-snapshot average spend (§5.3's example query). *)
  ignore
    (Rql.aggregate_data_in_table ctx ~qs
       ~qq:"SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av FROM orders GROUP BY \
            o_custkey"
       ~table:"cust_activity"
       ~aggs:[ ("cn", "max"); ("av", "max") ]);
  show ctx.Rql.meta "most active customers across history (top 5)"
    "SELECT o_custkey, cn, av FROM cust_activity ORDER BY cn DESC, o_custkey LIMIT 5";
  print_endline "\naudit done."
