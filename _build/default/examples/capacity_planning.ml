(* Capacity planning: choosing between CollateData and the aggregation
   mechanisms (§2.2-2.3, §5.3 of the paper).

   Both approaches compute per-priority statistics across a snapshot
   history; the aggregation mechanism produces the same answer with a
   result table that stays small regardless of how many snapshots Qs
   selects — the paper's memory-footprint argument, measured here.

   Run with:  dune exec examples/capacity_planning.exe *)

module R = Storage.Record
module E = Sqldb.Engine

let show db title sql =
  Printf.printf "\n-- %s\n" title;
  let res = E.exec db sql in
  Printf.printf "   %s\n" (String.concat " | " (Array.to_list res.E.columns));
  List.iter
    (fun row ->
      Printf.printf "   %s\n"
        (String.concat " | " (Array.to_list (Array.map R.value_to_string row))))
    res.E.rows

let () =
  Printf.printf "building TPC-H history (SF 0.005, UW15, 10 snapshots)...\n%!";
  let ctx, _st, _sids =
    Tpch.Workload.build_history ~sf:0.005 ~uw:Tpch.Workload.uw15 ~snapshots:10 ()
  in
  let qs = "SELECT snap_id FROM SnapIds" in
  let qq =
    "SELECT o_orderpriority, COUNT(*) AS orders, AVG(o_totalprice) AS avg_price FROM orders \
     GROUP BY o_orderpriority"
  in

  (* Approach 1: CollateData + SQL over the collected series. *)
  let collate = Rql.collate_data ctx ~qs ~qq ~table:"by_priority_series" in
  show ctx.Rql.meta "priority load, via CollateData + SQL"
    "SELECT o_orderpriority, MAX(orders) AS peak, AVG(avg_price) AS typical_price FROM \
     by_priority_series GROUP BY o_orderpriority ORDER BY o_orderpriority";

  (* Approach 2: AggregateDataInTable folds during the iteration. *)
  let agg =
    Rql.aggregate_data_in_table ctx ~qs ~qq ~table:"by_priority"
      ~aggs:[ ("orders", "max"); ("avg_price", "avg") ]
  in
  show ctx.Rql.meta "priority load, via AggregateDataInTable"
    "SELECT o_orderpriority, orders AS peak, avg_price AS typical_price FROM by_priority \
     ORDER BY o_orderpriority";

  (* The trade-off the paper quantifies: near-identical run time, very
     different result-table footprint. *)
  let t run = Rql.Iter_stats.total_s run in
  Printf.printf "\n-- footprint and latency\n";
  Printf.printf "   CollateData          : %5d rows, %7d bytes, %.4fs\n"
    collate.Rql.Iter_stats.result_rows collate.Rql.Iter_stats.result_bytes (t collate);
  Printf.printf "   AggregateDataInTable : %5d rows, %7d bytes, %.4fs\n"
    agg.Rql.Iter_stats.result_rows agg.Rql.Iter_stats.result_bytes (t agg);
  Printf.printf "   footprint ratio      : %.1fx smaller\n"
    (float_of_int collate.Rql.Iter_stats.result_bytes
    /. float_of_int (max 1 agg.Rql.Iter_stats.result_bytes));

  (* The aggregation mechanisms insist on abelian-monoid functions; the
     paper's workaround for e.g. COUNT DISTINCT is CollateData + SQL. *)
  (match
     Rql.aggregate_data_in_table ctx ~qs ~qq ~table:"bad" ~aggs:[ ("orders", "count distinct") ]
   with
  | exception Rql.Monoid.Not_supported msg -> Printf.printf "\nrejected as expected: %s\n" msg
  | _ -> assert false);
  print_endline "\ncapacity planning done."
