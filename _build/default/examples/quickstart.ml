(* Quickstart: the paper's LoggedIn walkthrough (§1-2, Figures 1-3).

   Creates a snapshottable database, declares three snapshots around
   updates, runs Retro AS OF queries, and then each of the four RQL
   mechanisms — reproducing every example query in the paper's Section 2.

   Run with:  dune exec examples/quickstart.exe *)

module R = Storage.Record
module E = Sqldb.Engine

let print_result title (res : E.result) =
  Printf.printf "\n-- %s\n" title;
  Printf.printf "   %s\n" (String.concat " | " (Array.to_list res.E.columns));
  List.iter
    (fun row ->
      Printf.printf "   %s\n"
        (String.concat " | " (Array.to_list (Array.map R.value_to_string row))))
    res.E.rows

let print_table db title name =
  print_result title (E.exec db (Printf.sprintf "SELECT * FROM %s" name))

let () =
  (* An RQL context bundles the snapshottable application database with
     the separate non-snapshottable database holding SnapIds and result
     tables, exactly as in the paper's implementation. *)
  let ctx = Rql.create () in
  let sql s = ignore (E.exec ctx.Rql.data s) in

  sql "CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)";
  sql
    "INSERT INTO LoggedIn VALUES ('UserA','2008-11-09 13:23:44','USA'), \
     ('UserB','2008-11-09 15:45:21','UK'), ('UserC','2008-11-09 15:45:21','USA')";

  (* Figure 3: three snapshot declarations around updates. *)
  let s1 = Rql.declare_snapshot ~name:"initial" ctx in
  sql "BEGIN";
  sql "DELETE FROM LoggedIn WHERE l_userid = 'UserA'";
  let s2 = Rql.declare_snapshot ~name:"after-logout" ctx in
  sql "BEGIN";
  sql "INSERT INTO LoggedIn (l_userid, l_time, l_country) VALUES ('UserD','2008-11-11 10:08:04','UK')";
  let s3 = Rql.declare_snapshot ~name:"after-login" ctx in
  Printf.printf "declared snapshots %d, %d, %d\n" s1 s2 s3;

  print_table ctx.Rql.meta "SnapIds" "SnapIds";

  (* Retro: a query over a past snapshot vs. the current state. *)
  print_result "SELECT AS OF 1 * FROM LoggedIn"
    (E.exec ctx.Rql.data "SELECT AS OF 1 * FROM LoggedIn");
  print_result "SELECT * FROM LoggedIn" (E.exec ctx.Rql.data "SELECT * FROM LoggedIn");

  (* RQL mechanism 1: CollateData — all user ids with the snapshot they
     appear in. *)
  ignore
    (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn"
       ~table:"Result");
  print_table ctx.Rql.meta "CollateData: users per snapshot" "Result";

  (* RQL mechanism 2a: AggregateDataInVariable — in how many snapshots
     was UserB logged in? *)
  ignore
    (Rql.aggregate_data_in_variable ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT DISTINCT 1 AS n FROM LoggedIn WHERE l_userid = 'UserB'"
       ~table:"UserB_count" ~fn:"sum");
  print_table ctx.Rql.meta "AggregateDataInVariable(sum): snapshots with UserB" "UserB_count";

  (* RQL mechanism 2b: first occurrence of UserB. *)
  ignore
    (Rql.aggregate_data_in_variable ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT DISTINCT current_snapshot() AS sid FROM LoggedIn WHERE l_userid = 'UserB'"
       ~table:"UserB_first" ~fn:"min");
  print_table ctx.Rql.meta "AggregateDataInVariable(min): first snapshot with UserB"
    "UserB_first";

  (* RQL mechanism 3a: AggregateDataInTable — first login time per user. *)
  ignore
    (Rql.aggregate_data_in_table ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT DISTINCT l_userid, l_time FROM LoggedIn" ~table:"FirstLogin"
       ~aggs:[ ("l_time", "min") ]);
  print_table ctx.Rql.meta "AggregateDataInTable(min l_time): first login per user"
    "FirstLogin";

  (* RQL mechanism 3b: per-country maximum of simultaneously logged-in
     users. *)
  ignore
    (Rql.aggregate_data_in_table ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country"
       ~table:"MaxPerCountry" ~aggs:[ ("c", "max") ]);
  print_table ctx.Rql.meta "AggregateDataInTable(max c): peak logins per country"
    "MaxPerCountry";

  (* RQL mechanism 4: CollateDataIntoIntervals — logged-in lifetimes. *)
  ignore
    (Rql.collate_data_into_intervals ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT l_userid FROM LoggedIn" ~table:"Sessions");
  print_table ctx.Rql.meta "CollateDataIntoIntervals: login lifetimes" "Sessions";

  (* The same computation in the paper's SQL-UDF form. *)
  ignore
    (E.exec ctx.Rql.meta
       "SELECT CollateData(snap_id, 'SELECT DISTINCT l_userid, current_snapshot() AS sid \
        FROM LoggedIn', 'Result2') FROM SnapIds");
  print_table ctx.Rql.meta "CollateData invoked as a SQL UDF" "Result2";
  print_endline "\nquickstart done."
