(* Session analysis with CollateDataIntoIntervals.

   A web application records logged-in users; snapshots are declared
   periodically.  The interval mechanism converts the per-snapshot
   membership into the record-lifetime representation used by temporal
   databases (§2.4), from which plain SQL computes session lengths,
   concurrency peaks, and churn.

   Run with:  dune exec examples/session_intervals.exe *)

module R = Storage.Record
module E = Sqldb.Engine

let show db title sql =
  Printf.printf "\n-- %s\n" title;
  let res = E.exec db sql in
  Printf.printf "   %s\n" (String.concat " | " (Array.to_list res.E.columns));
  List.iter
    (fun row ->
      Printf.printf "   %s\n"
        (String.concat " | " (Array.to_list (Array.map R.value_to_string row))))
    res.E.rows

let () =
  let ctx = Rql.create () in
  let sql s = ignore (E.exec ctx.Rql.data s) in
  sql "CREATE TABLE sessions (user_id TEXT, device TEXT)";

  (* A deterministic churn pattern: users log in and out over 12
     snapshot periods. *)
  let rng = Random.State.make [| 2018 |] in
  let users = Array.init 8 (fun i -> Printf.sprintf "user%02d" i) in
  let devices = [| "web"; "mobile"; "tablet" |] in
  let logged = Hashtbl.create 8 in
  for _period = 1 to 12 do
    (* log some users out *)
    Hashtbl.iter
      (fun u () -> if Random.State.int rng 100 < 25 then Hashtbl.remove logged u)
      (Hashtbl.copy logged);
    Hashtbl.iter (fun u () -> ignore u) logged;
    Array.iter
      (fun u ->
        if (not (Hashtbl.mem logged u)) && Random.State.int rng 100 < 40 then begin
          Hashtbl.replace logged u ();
          sql
            (Printf.sprintf "INSERT INTO sessions VALUES ('%s', '%s')" u
               devices.(Random.State.int rng 3))
        end)
      users;
    (* remove logged-out users from the table *)
    let live =
      Hashtbl.fold (fun u () acc -> Printf.sprintf "'%s'" u :: acc) logged []
    in
    (if live <> [] then
       sql (Printf.sprintf "DELETE FROM sessions WHERE user_id NOT IN (%s)" (String.concat "," live)));
    ignore (Rql.declare_snapshot ctx)
  done;

  (* Lifetimes of (user, device) records across the snapshot history. *)
  ignore
    (Rql.collate_data_into_intervals ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT DISTINCT user_id, device FROM sessions" ~table:"lifetimes");

  show ctx.Rql.meta "session intervals"
    "SELECT user_id, device, start_snapshot, end_snapshot FROM lifetimes ORDER BY user_id, \
     start_snapshot";
  show ctx.Rql.meta "session lengths (snapshots)"
    "SELECT user_id, SUM(end_snapshot - start_snapshot + 1) AS present_in FROM lifetimes \
     GROUP BY user_id ORDER BY present_in DESC, user_id";
  show ctx.Rql.meta "longest single sessions"
    "SELECT user_id, device, end_snapshot - start_snapshot + 1 AS len FROM lifetimes ORDER \
     BY len DESC, user_id LIMIT 5";
  show ctx.Rql.meta "re-login count per user (separate intervals - 1)"
    "SELECT user_id, COUNT(*) - 1 AS relogins FROM lifetimes GROUP BY user_id HAVING \
     COUNT(*) > 1 ORDER BY relogins DESC, user_id";

  (* Cross-check concurrency with AggregateDataInTable. *)
  ignore
    (Rql.aggregate_data_in_table ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT device, COUNT(*) AS c FROM sessions GROUP BY device" ~table:"peak"
       ~aggs:[ ("c", "max") ]);
  show ctx.Rql.meta "peak concurrent sessions per device"
    "SELECT device, c FROM peak ORDER BY device";
  print_endline "\nsession analysis done."
