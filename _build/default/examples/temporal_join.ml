(* Temporal join (paper §6).

   Temporal databases need special machinery to join record versions
   that overlap in time.  In a snapshot system the problem disappears:
   "the join candidates that overlap in time exist in the same
   snapshots and the temporal join is executed as if they were in
   current state."  This example demonstrates exactly that — an
   ordinary SQL join inside Qq, iterated over snapshots by RQL.

   Scenario: employees move between departments while department
   budgets change; the question "how much budget was each employee's
   department holding while they were in it, over time?" is a temporal
   join.  Here it is one CollateData with a plain join. *)

module R = Storage.Record
module E = Sqldb.Engine

let show db title sql =
  Printf.printf "\n-- %s\n" title;
  let res = E.exec db sql in
  Printf.printf "   %s\n" (String.concat " | " (Array.to_list res.E.columns));
  List.iter
    (fun r ->
      Printf.printf "   %s\n"
        (String.concat " | " (Array.to_list (Array.map R.value_to_string r))))
    res.E.rows

let () =
  let ctx = Rql.create () in
  let sql s = ignore (E.exec ctx.Rql.data s) in
  sql "CREATE TABLE emp (name TEXT, dept TEXT)";
  sql "CREATE TABLE dept (dname TEXT, budget INTEGER)";

  (* epoch 1: ann in eng, bob in ops *)
  sql "INSERT INTO emp VALUES ('ann','eng'), ('bob','ops')";
  sql "INSERT INTO dept VALUES ('eng', 100), ('ops', 50)";
  ignore (Rql.declare_snapshot ~name:"q1" ctx);

  (* epoch 2: eng budget doubles, bob moves to eng *)
  sql "UPDATE dept SET budget = 200 WHERE dname = 'eng'";
  sql "UPDATE emp SET dept = 'eng' WHERE name = 'bob'";
  ignore (Rql.declare_snapshot ~name:"q2" ctx);

  (* epoch 3: ops dissolved, carol joins eng, budgets rebalanced *)
  sql "DELETE FROM dept WHERE dname = 'ops'";
  sql "INSERT INTO emp VALUES ('carol','eng')";
  sql "UPDATE dept SET budget = 150 WHERE dname = 'eng'";
  ignore (Rql.declare_snapshot ~name:"q3" ctx);

  (* The temporal join: an ordinary join per snapshot.  Both sides are
     read from the same consistent snapshot, so versions always line
     up. *)
  ignore
    (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:
         "SELECT current_snapshot() AS quarter, name, dept, budget FROM emp, dept WHERE \
          dept = dname"
       ~table:"emp_budget_history");

  show ctx.Rql.meta "employee x department-budget, across time"
    "SELECT * FROM emp_budget_history ORDER BY quarter, name";

  show ctx.Rql.meta "budget each employee sat under, averaged over time"
    "SELECT name, AVG(budget) AS avg_budget, COUNT(*) AS quarters FROM emp_budget_history \
     GROUP BY name ORDER BY name";

  (* Cross-snapshot aggregation of the join, without materializing the
     per-snapshot results: AggregateDataInTable over the same Qq. *)
  ignore
    (Rql.aggregate_data_in_table ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT dname, SUM(budget) AS team_budget FROM emp, dept WHERE dept = dname GROUP \
            BY dname"
       ~table:"dept_peak" ~aggs:[ ("team_budget", "max") ]);
  show ctx.Rql.meta "peak per-head budget mass per department"
    "SELECT * FROM dept_peak ORDER BY dname";
  print_endline "\ntemporal join done."
