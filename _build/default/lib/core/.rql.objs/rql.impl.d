lib/core/rql.ml: Array Float Hashtbl Iter_stats List Marshal Monoid Option Printf Retro Rewrite Sqldb Storage String Unix
