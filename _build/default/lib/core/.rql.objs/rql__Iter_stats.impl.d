lib/core/iter_stats.ml: Fmt List
