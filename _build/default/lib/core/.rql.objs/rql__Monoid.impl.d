lib/core/monoid.ml: Sqldb Storage String
