lib/core/monoid.mli: Storage
