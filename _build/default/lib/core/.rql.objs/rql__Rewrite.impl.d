lib/core/rewrite.ml: Buffer List Printf String
