lib/core/rewrite.mli:
