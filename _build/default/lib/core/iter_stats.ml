(* Per-iteration cost breakdown for RQL runs.

   The benchmarks reproduce the paper's stacked bars (Figs 8-13), which
   attribute each iteration's latency to I/O, SPT build, (covering)
   index creation, query evaluation and RQL UDF processing.  I/O is
   modeled from the simulated device counters (see DESIGN.md); the other
   components are measured wall-clock. *)

type iteration = {
  snap_id : int;
  cold : bool;                 (* first iteration of the run *)
  pagelog_reads : int;
  db_reads : int;
  cache_hits : int;
  cache_misses : int;
  io_s : float;                (* modeled: pagelog reads x device latency *)
  spt_build_s : float;
  spt_entries : int;           (* maplog entries scanned *)
  index_build_s : float;       (* automatic covering-index creation *)
  query_eval_s : float;        (* Qq evaluation minus the other parts *)
  udf_s : float;               (* mechanism row processing (loop body) *)
  udf_rows : int;              (* Qq rows processed by the loop body *)
  udf_inserts : int;           (* result-table inserts *)
  udf_updates : int;           (* result-table updates *)
}

let iteration_total it =
  it.io_s +. it.spt_build_s +. it.index_build_s +. it.query_eval_s +. it.udf_s

type run = {
  mechanism : string;
  qq : string;
  iterations : iteration list; (* in execution order *)
  result_rows : int;
  result_bytes : int;          (* approximate result-table footprint *)
  finalize_s : float;          (* post-loop work (e.g. AVG finalization) *)
}

let total_s run =
  List.fold_left (fun acc it -> acc +. iteration_total it) run.finalize_s run.iterations

let total_io_reads run = List.fold_left (fun acc it -> acc + it.pagelog_reads) 0 run.iterations

let pp_iteration ppf it =
  Fmt.pf ppf
    "snap=%d %s io=%.4fs (%d pagelog reads) spt=%.4fs (%d entries) idx=%.4fs \
     query=%.4fs udf=%.4fs total=%.4fs"
    it.snap_id
    (if it.cold then "cold" else "hot ")
    it.io_s it.pagelog_reads it.spt_build_s it.spt_entries it.index_build_s it.query_eval_s
    it.udf_s (iteration_total it);
  if it.udf_rows > 0 then
    Fmt.pf ppf " rows=%d ins=%d upd=%d" it.udf_rows it.udf_inserts it.udf_updates

let pp_run ppf run =
  Fmt.pf ppf "@[<v>%s over %d snapshots: total=%.4fs result_rows=%d result_bytes=%d@,%a@]"
    run.mechanism (List.length run.iterations) (total_s run) run.result_rows run.result_bytes
    (Fmt.list pp_iteration) run.iterations

(* Aggregate breakdown over a run's iterations (for bar charts). *)
type breakdown = {
  b_io : float;
  b_spt : float;
  b_index : float;
  b_query : float;
  b_udf : float;
}

let breakdown_of iterations =
  List.fold_left
    (fun b it ->
      { b_io = b.b_io +. it.io_s;
        b_spt = b.b_spt +. it.spt_build_s;
        b_index = b.b_index +. it.index_build_s;
        b_query = b.b_query +. it.query_eval_s;
        b_udf = b.b_udf +. it.udf_s })
    { b_io = 0.; b_spt = 0.; b_index = 0.; b_query = 0.; b_udf = 0. }
    iterations

let breakdown_total b = b.b_io +. b.b_spt +. b.b_index +. b.b_query +. b.b_udf
