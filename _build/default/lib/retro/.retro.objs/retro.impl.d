lib/retro/retro.ml: Array Bytes List Maplog Pagelog Printf Spt Storage Unix
