lib/retro/maplog.ml: Array Hashtbl List Printf Storage
