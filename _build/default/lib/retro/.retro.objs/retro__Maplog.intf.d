lib/retro/maplog.mli:
