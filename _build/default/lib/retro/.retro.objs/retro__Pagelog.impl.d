lib/retro/pagelog.ml: Bytes Storage
