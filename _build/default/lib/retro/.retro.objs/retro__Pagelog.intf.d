lib/retro/pagelog.mli: Bytes
