lib/retro/spt.ml: Hashtbl Maplog
