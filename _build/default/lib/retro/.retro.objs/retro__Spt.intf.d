lib/retro/spt.mli: Hashtbl Maplog
