(* Snapshot page tables: the per-snapshot map from page id to Pagelog
   location, built on demand by scanning the Maplog (paper §4).  A page
   absent from the table is shared with the current database state. *)

type t = {
  snap_id : int;
  db_pages : int;              (* database size at declaration: pages >= this did not exist *)
  map : (int, int) Hashtbl.t;  (* pid -> pagelog offset *)
  scan_len : int;              (* maplog entries visited to build this SPT *)
}

let build maplog snap_id =
  let map = Hashtbl.create 1024 in
  let scan_len = Maplog.scan_from maplog snap_id ~f:(fun pid off -> Hashtbl.replace map pid off) in
  let b = Maplog.boundary maplog snap_id in
  { snap_id; db_pages = b.Maplog.db_pages; map; scan_len }

let find t pid = Hashtbl.find_opt t.map pid

let cardinal t = Hashtbl.length t.map

let in_snapshot t pid = pid >= 0 && pid < t.db_pages
