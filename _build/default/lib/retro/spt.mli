(** Snapshot page tables: the per-snapshot map from page id to Pagelog
    location, built on demand by scanning the Maplog (paper §4).
    A page absent from the table is shared with the current database. *)

type t = {
  snap_id : int;
  db_pages : int;              (** pages beyond this did not exist in the snapshot *)
  map : (int, int) Hashtbl.t;  (** pid -> pagelog offset *)
  scan_len : int;              (** maplog entries visited to build this SPT *)
}

val build : Maplog.t -> int -> t

val find : t -> int -> int option

(** Mapped pages (pages that must be fetched from the Pagelog). *)
val cardinal : t -> int

(** Did the page exist when the snapshot was declared? *)
val in_snapshot : t -> int -> bool
