lib/sql/ast.ml: Hashtbl Storage
