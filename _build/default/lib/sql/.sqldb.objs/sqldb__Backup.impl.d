lib/sql/backup.ml: Db Marshal Option Printf Retro Storage
