lib/sql/backup.mli: Db
