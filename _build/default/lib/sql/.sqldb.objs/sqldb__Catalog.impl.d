lib/sql/catalog.ml: Array Hashtbl List Option Storage String
