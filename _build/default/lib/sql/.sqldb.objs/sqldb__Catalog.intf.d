lib/sql/catalog.mli: Storage
