lib/sql/db.ml: Catalog Expr Func Hashtbl Printf Retro Storage String
