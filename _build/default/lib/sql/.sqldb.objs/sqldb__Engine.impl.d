lib/sql/engine.ml: Array Ast Catalog Db Exec Expr Hashtbl Lexer List Parser Printf Storage String
