lib/sql/engine.mli: Catalog Db Storage
