lib/sql/exec.ml: Array Ast Catalog Db Exec_stats Expr Hashtbl List Option Printf Retro Storage String
