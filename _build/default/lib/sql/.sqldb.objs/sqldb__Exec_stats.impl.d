lib/sql/exec_stats.ml: Unix
