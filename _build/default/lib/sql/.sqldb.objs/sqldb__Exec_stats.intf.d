lib/sql/exec_stats.mli:
