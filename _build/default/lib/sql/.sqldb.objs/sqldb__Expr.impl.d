lib/sql/expr.ml: Array Ast Float Hashtbl List Option Printf Storage String
