lib/sql/func.ml: Array Buffer Expr Float List Storage String
