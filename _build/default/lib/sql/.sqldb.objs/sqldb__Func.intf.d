lib/sql/func.mli: Storage
