lib/sql/integrity.ml: Array Catalog Db Exec Hashtbl List Option Printexc Printf Storage String
