lib/sql/parser.ml: Array Ast Buffer Lexer List Printf Storage String
