(* Database backup/restore.

   A database image captures the committed pages and, for snapshottable
   databases, the whole Retro state (Pagelog, Maplog, COW bookkeeping) —
   so a saved database reopens with its entire snapshot history intact
   and AS OF queries keep working.  Images are written with [Marshal]
   behind a magic/version header; registered functions are not part of
   the image and must be re-registered by the caller (Rql.load does). *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type image = {
  img_pager : Storage.Pager.image;
  img_retro : Retro.image option;
}

let magic = "RQLDB001"

(* Capture a consistent image of the committed state. *)
let snapshot_image (db : Db.t) : image =
  if Db.in_txn db then error "cannot back up a database with an open transaction";
  { img_pager = Storage.Pager.dump db.Db.pager;
    img_retro = Option.map Retro.export db.Db.retro }

(* Materialize an image as a fresh database handle. *)
let restore_image (img : image) : Db.t =
  let pager = Storage.Pager.restore img.img_pager in
  let retro = Option.map (fun r -> Retro.import pager r) img.img_retro in
  Db.of_parts ~pager ~retro

let write_channel oc (img : image) = Marshal.to_channel oc (magic, img) []

let read_channel ic : image =
  let m, img = (Marshal.from_channel ic : string * image) in
  if m <> magic then error "not a database image (bad magic %S)" m;
  img

(* Save the database to [path] (overwriting). *)
let save (db : Db.t) ~path =
  let oc = open_out_bin path in
  (try write_channel oc (snapshot_image db)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

(* Load a database saved by {!save}. *)
let load ~path : Db.t =
  let ic = open_in_bin path in
  let img =
    try read_channel ic
    with
    | Error _ as e ->
      close_in_noerr ic;
      raise e
    | _ ->
      close_in_noerr ic;
      error "could not read a database image from %s" path
  in
  close_in ic;
  restore_image img
