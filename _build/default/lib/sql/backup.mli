(** Database backup/restore.

    An image captures the committed pages and, for snapshottable
    databases, the whole Retro state (Pagelog, Maplog, COW bookkeeping):
    a saved database reopens with its complete snapshot history and
    AS OF queries keep working.  Registered functions are not part of
    the image; callers re-register them (Rql.load does). *)

exception Error of string

type image

(** Capture a consistent image.
    @raise Error if a transaction is open. *)
val snapshot_image : Db.t -> image

(** Materialize an image as a fresh handle. *)
val restore_image : image -> Db.t

(** Save to [path], overwriting. *)
val save : Db.t -> path:string -> unit

(** Load a database saved by {!save}.
    @raise Error on a malformed or foreign file. *)
val load : path:string -> Db.t
