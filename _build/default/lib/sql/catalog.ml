(* The system catalog, stored on ordinary database pages (a heap file
   rooted at page 0) so that snapshots capture it: a query running AS OF
   a snapshot resolves tables, schemas and index roots exactly as they
   existed in that snapshot, as the paper requires. *)

module R = Storage.Record

type table = {
  tname : string;
  tcols : (string * string) array; (* name, declared type *)
  theap : int;                     (* heap chain head page *)
}

type index = {
  iname : string;
  itable : string;
  icols : string list;
  iroot : int; (* fixed B+tree root page *)
}

type t = {
  tables : (string, table * int) Hashtbl.t;  (* lowercase name -> (table, catalog rid) *)
  indexes : (string, index * int) Hashtbl.t; (* lowercase name -> (index, catalog rid) *)
}

let catalog_root = 0

let key = String.lowercase_ascii

(* The catalog heap must be the first allocation in a fresh database. *)
let bootstrap txn =
  let h = Storage.Heap.create txn in
  if Storage.Heap.first_page h <> catalog_root then
    invalid_arg "Catalog.bootstrap: catalog heap must occupy page 0"

let heap () = Storage.Heap.open_existing catalog_root

let encode_table (t : table) =
  let cols =
    Array.to_list t.tcols
    |> List.concat_map (fun (n, ty) -> [ R.Text n; R.Text ty ])
  in
  R.encode_row
    (Array.of_list
       ([ R.Text "table"; R.Text t.tname; R.Int t.theap; R.Int (Array.length t.tcols) ] @ cols))

let encode_index (i : index) =
  R.encode_row
    (Array.of_list
       ([ R.Text "index"; R.Text i.iname; R.Text i.itable; R.Int i.iroot;
          R.Int (List.length i.icols) ]
       @ List.map (fun c -> R.Text c) i.icols))

let text = function R.Text s -> s | v -> invalid_arg ("Catalog: expected text, got " ^ R.value_to_string v)
let int = function R.Int i -> i | v -> invalid_arg ("Catalog: expected int, got " ^ R.value_to_string v)

let decode_row rid (row : R.row) t =
  match text row.(0) with
  | "table" ->
    let ncols = int row.(3) in
    let tcols =
      Array.init ncols (fun i -> (text row.(4 + (2 * i)), text row.(4 + (2 * i) + 1)))
    in
    let tbl = { tname = text row.(1); tcols; theap = int row.(2) } in
    Hashtbl.replace t.tables (key tbl.tname) (tbl, rid)
  | "index" ->
    let ncols = int row.(4) in
    let icols = List.init ncols (fun i -> text row.(5 + i)) in
    let idx = { iname = text row.(1); itable = text row.(2); icols; iroot = int row.(3) } in
    Hashtbl.replace t.indexes (key idx.iname) (idx, rid)
  | k -> invalid_arg ("Catalog: unknown entry kind " ^ k)

(* Load the whole catalog through [read] — the committed state, a
   transaction view, or a Retro snapshot. *)
let load (read : Storage.Pager.read) : t =
  let t = { tables = Hashtbl.create 16; indexes = Hashtbl.create 16 } in
  Storage.Heap.iter read (heap ()) ~f:(fun rid data -> decode_row rid (R.decode_row data) t);
  t

let find_table t name = Option.map fst (Hashtbl.find_opt t.tables (key name))
let find_index t name = Option.map fst (Hashtbl.find_opt t.indexes (key name))

let indexes_of_table t name =
  Hashtbl.fold
    (fun _ (idx, _) acc -> if key idx.itable = key name then idx :: acc else acc)
    t.indexes []

let table_names t = Hashtbl.fold (fun _ (tbl, _) acc -> tbl.tname :: acc) t.tables []

let add_table txn (tbl : table) = ignore (Storage.Heap.insert txn (heap ()) (encode_table tbl))

let add_index txn (idx : index) = ignore (Storage.Heap.insert txn (heap ()) (encode_index idx))

let remove_table t txn name =
  match Hashtbl.find_opt t.tables (key name) with
  | None -> false
  | Some (_, rid) ->
    ignore (Storage.Heap.delete txn (heap ()) rid);
    true

let remove_index t txn name =
  match Hashtbl.find_opt t.indexes (key name) with
  | None -> false
  | Some (_, rid) ->
    ignore (Storage.Heap.delete txn (heap ()) rid);
    true

let iter_tables t ~f = Hashtbl.iter (fun _ (tbl, _) -> f tbl) t.tables

let iter_indexes t ~f = Hashtbl.iter (fun _ (idx, _) -> f idx) t.indexes
