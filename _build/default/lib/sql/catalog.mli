(** The system catalog, stored on ordinary database pages (a heap file
    rooted at page 0) so snapshots capture it: a query running AS OF a
    snapshot resolves tables, schemas and index roots exactly as they
    existed in that snapshot. *)

type table = {
  tname : string;
  tcols : (string * string) array; (** column name, declared type *)
  theap : int;                     (** heap chain head page *)
}

type index = {
  iname : string;
  itable : string;
  icols : string list;
  iroot : int; (** fixed B+tree root page *)
}

type t

(** The fixed page id of the catalog heap. *)
val catalog_root : int

(** Create the catalog heap; must be the first allocation in a fresh
    database.
    @raise Invalid_argument otherwise. *)
val bootstrap : Storage.Txn.t -> unit

(** Load the whole catalog through any read context — committed state,
    a transaction view, or a Retro snapshot. *)
val load : Storage.Pager.read -> t

(** Lookups are case-insensitive. *)
val find_table : t -> string -> table option

val find_index : t -> string -> index option

val indexes_of_table : t -> string -> index list

val table_names : t -> string list

val add_table : Storage.Txn.t -> table -> unit
val add_index : Storage.Txn.t -> index -> unit

(** Remove the entry from a catalog loaded in the same state; returns
    whether it existed. *)
val remove_table : t -> Storage.Txn.t -> string -> bool

val remove_index : t -> Storage.Txn.t -> string -> bool

val iter_tables : t -> f:(table -> unit) -> unit
val iter_indexes : t -> f:(index -> unit) -> unit
