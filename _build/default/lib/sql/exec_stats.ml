(* Executor-side timing attribution.  The paper's per-iteration cost
   breakdown (Figs 8-13) splits time into I/O, SPT build, index creation
   and query evaluation; the executor accumulates the SPT-build and
   index-creation components here and the RQL layer reads the deltas. *)

type t = {
  mutable spt_build_s : float;     (* snapshot page table construction *)
  mutable index_build_s : float;   (* automatic (covering) index creation *)
  mutable spt_builds : int;
  mutable index_builds : int;
}

let global = { spt_build_s = 0.; index_build_s = 0.; spt_builds = 0; index_builds = 0 }

let reset t =
  t.spt_build_s <- 0.;
  t.index_build_s <- 0.;
  t.spt_builds <- 0;
  t.index_builds <- 0

let copy t = { t with spt_build_s = t.spt_build_s }

let diff a b =
  { spt_build_s = a.spt_build_s -. b.spt_build_s;
    index_build_s = a.index_build_s -. b.index_build_s;
    spt_builds = a.spt_builds - b.spt_builds;
    index_builds = a.index_builds - b.index_builds }

let now () = Unix.gettimeofday ()

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)
