(** Executor-side timing attribution: the SPT-build and (automatic)
    index-creation components of the paper's per-iteration cost
    breakdown (Figs 8-13), accumulated globally and read as deltas by
    the RQL layer. *)

type t = {
  mutable spt_build_s : float;
  mutable index_build_s : float;
  mutable spt_builds : int;
  mutable index_builds : int;
}

val global : t

val reset : t -> unit
val copy : t -> t

(** Fieldwise [a - b]. *)
val diff : t -> t -> t

val now : unit -> float

(** Run [f], returning its result and elapsed wall-clock seconds. *)
val timed : (unit -> 'a) -> 'a * float
