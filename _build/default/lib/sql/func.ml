(* Builtin scalar functions (the SQLite core-function subset the paper's
   workloads use).  User-defined functions registered on a database
   handle live in the same namespace and shadow nothing here. *)

module R = Storage.Record

exception Error = Expr.Error

let error = Expr.error

let arg_string = function
  | R.Null -> None
  | v -> Some (R.value_to_string v)

let builtins : (string * (R.value array -> R.value)) list =
  [ ( "abs",
      fun args ->
        match args with
        | [| R.Null |] -> R.Null
        | [| R.Int i |] -> R.Int (abs i)
        | [| R.Real f |] -> R.Real (Float.abs f)
        | [| v |] -> (
          match Expr.to_number v with Some f -> R.Real (Float.abs f) | None -> R.Null)
        | _ -> error "abs expects 1 argument" );
    ( "length",
      fun args ->
        match args with
        | [| R.Null |] -> R.Null
        | [| v |] -> R.Int (String.length (R.value_to_string v))
        | _ -> error "length expects 1 argument" );
    ( "lower",
      fun args ->
        match args with
        | [| R.Null |] -> R.Null
        | [| v |] -> R.Text (String.lowercase_ascii (R.value_to_string v))
        | _ -> error "lower expects 1 argument" );
    ( "upper",
      fun args ->
        match args with
        | [| R.Null |] -> R.Null
        | [| v |] -> R.Text (String.uppercase_ascii (R.value_to_string v))
        | _ -> error "upper expects 1 argument" );
    ( "substr",
      fun args ->
        let sub s start len =
          let n = String.length s in
          (* SQL substr is 1-based; negative start counts from the end *)
          let start = if start < 0 then max 0 (n + start) else max 0 (start - 1) in
          let len = max 0 (min len (n - start)) in
          if start >= n then "" else String.sub s start len
        in
        match args with
        | [| R.Null; _ |] | [| R.Null; _; _ |] -> R.Null
        | [| v; R.Int start |] -> R.Text (sub (R.value_to_string v) start max_int)
        | [| v; R.Int start; R.Int len |] -> R.Text (sub (R.value_to_string v) start len)
        | _ -> error "substr expects (text, start [, length])" );
    ( "coalesce",
      fun args ->
        let rec go i =
          if i >= Array.length args then R.Null
          else if args.(i) <> R.Null then args.(i)
          else go (i + 1)
        in
        go 0 );
    ( "ifnull",
      fun args ->
        match args with
        | [| a; b |] -> if a = R.Null then b else a
        | _ -> error "ifnull expects 2 arguments" );
    ( "nullif",
      fun args ->
        match args with
        | [| a; b |] -> if R.equal_value a b then R.Null else a
        | _ -> error "nullif expects 2 arguments" );
    ( "typeof",
      fun args ->
        match args with
        | [| v |] -> R.Text (String.lowercase_ascii (R.type_name v))
        | _ -> error "typeof expects 1 argument" );
    ( "round",
      fun args ->
        let round1 f d =
          let m = 10. ** float_of_int d in
          Float.round (f *. m) /. m
        in
        match args with
        | [| R.Null |] | [| R.Null; _ |] -> R.Null
        | [| v |] -> (
          match Expr.to_number v with Some f -> R.Real (round1 f 0) | None -> R.Null)
        | [| v; R.Int d |] -> (
          match Expr.to_number v with Some f -> R.Real (round1 f d) | None -> R.Null)
        | _ -> error "round expects (number [, digits])" );
    ( "min",
      fun args ->
        (* scalar form: smallest of 2+ arguments; NULL if any is NULL *)
        if Array.exists (fun v -> v = R.Null) args then R.Null
        else Array.fold_left (fun acc v -> if R.compare_value v acc < 0 then v else acc) args.(0) args );
    ( "max",
      fun args ->
        if Array.exists (fun v -> v = R.Null) args then R.Null
        else Array.fold_left (fun acc v -> if R.compare_value v acc > 0 then v else acc) args.(0) args );
    ( "instr",
      fun args ->
        match args with
        | [| R.Null; _ |] | [| _; R.Null |] -> R.Null
        | [| hay; needle |] ->
          let h = R.value_to_string hay and nd = R.value_to_string needle in
          let hn = String.length h and nn = String.length nd in
          let rec go i =
            if i + nn > hn then 0 else if String.sub h i nn = nd then i + 1 else go (i + 1)
          in
          R.Int (go 0)
        | _ -> error "instr expects 2 arguments" );
    ( "trim",
      fun args ->
        match args with
        | [| R.Null |] -> R.Null
        | [| v |] -> R.Text (String.trim (R.value_to_string v))
        | _ -> error "trim expects 1 argument" );
    ( "replace",
      fun args ->
        match args with
        | [| R.Null; _; _ |] -> R.Null
        | [| s; from_; to_ |] ->
          let s = R.value_to_string s in
          let f = R.value_to_string from_ and t = R.value_to_string to_ in
          if f = "" then R.Text s
          else begin
            let buf = Buffer.create (String.length s) in
            let fl = String.length f in
            let i = ref 0 in
            while !i <= String.length s - fl do
              if String.sub s !i fl = f then begin
                Buffer.add_string buf t;
                i := !i + fl
              end
              else begin
                Buffer.add_char buf s.[!i];
                incr i
              end
            done;
            Buffer.add_string buf (String.sub s !i (String.length s - !i));
            R.Text (Buffer.contents buf)
          end
        | _ -> error "replace expects 3 arguments" );
  ]

let find name = List.assoc_opt (String.lowercase_ascii name) builtins

let _ = arg_string
