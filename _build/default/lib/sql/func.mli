(** Builtin scalar functions: the SQLite core-function subset the
    paper's workloads use (abs, length, lower/upper, substr, coalesce,
    ifnull, nullif, typeof, round, scalar min/max, instr, trim,
    replace).  User-defined functions registered on a handle live in the
    same namespace and take precedence. *)

exception Error of string

(** Lookup by (case-insensitive) name. *)
val find : string -> (Storage.Record.row -> Storage.Record.value) option
