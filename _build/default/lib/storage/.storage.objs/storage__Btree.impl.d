lib/storage/btree.ml: Array Bytes List Page Pager Record String Txn
