lib/storage/btree.mli: Pager Record Txn
