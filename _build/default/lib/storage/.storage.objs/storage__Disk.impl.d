lib/storage/disk.ml: Array Bytes Page Printf Stats
