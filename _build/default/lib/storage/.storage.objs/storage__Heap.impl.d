lib/storage/heap.ml: Hashtbl Page Pager String Txn
