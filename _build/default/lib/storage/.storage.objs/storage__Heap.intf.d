lib/storage/heap.mli: Pager Txn
