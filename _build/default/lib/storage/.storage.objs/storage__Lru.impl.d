lib/storage/lru.ml: Hashtbl
