lib/storage/lru.mli:
