lib/storage/page.ml: Bytes Char Int32 List Printf String
