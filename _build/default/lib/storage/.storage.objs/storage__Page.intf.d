lib/storage/page.mli: Bytes
