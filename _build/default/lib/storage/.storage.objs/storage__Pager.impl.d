lib/storage/pager.ml: Array Bytes Option Printf Stats
