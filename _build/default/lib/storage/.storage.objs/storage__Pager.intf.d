lib/storage/pager.mli: Bytes
