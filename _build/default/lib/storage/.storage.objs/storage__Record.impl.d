lib/storage/record.ml: Array Buffer Char Float Fmt Int64 Printf String
