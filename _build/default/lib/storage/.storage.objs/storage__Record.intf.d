lib/storage/record.mli: Format
