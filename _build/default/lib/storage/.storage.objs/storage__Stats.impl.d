lib/storage/stats.ml: Fmt
