lib/storage/txn.ml: Bytes Hashtbl List Page Pager Stats
