lib/storage/txn.mli: Bytes Page Pager
