(* Page-based B+tree used for table indexes.

   Index entries are composite keys (column values, rowid), which makes
   every entry unique and lets non-unique indexes store duplicates.
   Interior nodes store (separator, child) pairs plus a leftmost child in
   the page's aux field; leaves are chained through the page header's
   [next] field for range scans.

   The root page id is fixed for the lifetime of the index (recorded in
   the catalog): when the root splits its content moves to a fresh child
   and the root becomes interior in place.  Index pages are ordinary
   database pages, so indexes are captured by Retro snapshots exactly as
   the paper requires ("a snapshot includes the entire state of the
   database (e.g., tables, indexes, system catalogs)").

   Deletion is lazy (no rebalancing); pages stay allocated until the
   index is dropped.  This mirrors SQLite's free-list behaviour closely
   enough for the experiments. *)

type entry = {
  key : Record.row; (* column values *)
  aux : int;        (* leaf: rowid; interior: child page id *)
}

type t = { root : int }

let root t = t.root

let encode_entry e = Record.encode_row (Array.append e.key [| Record.Int e.aux |])

let decode_entry s =
  let r = Record.decode_row s in
  let n = Array.length r in
  let aux = match r.(n - 1) with Record.Int i -> i | _ -> invalid_arg "Btree: bad entry" in
  { key = Array.sub r 0 (n - 1); aux }

(* Composite comparison: (key, rid).  [rid_a]/[rid_b] disambiguate
   duplicate keys; use min_int/max_int to form range endpoints. *)
let compare_composite (ka, ra) (kb, rb) =
  let c = Record.compare_row ka kb in
  if c <> 0 then c else compare ra rb

let load (p : Page.t) : entry array =
  let out = ref [] in
  Page.iter p ~f:(fun _ data -> out := decode_entry data :: !out);
  let arr = Array.of_list (List.rev !out) in
  arr

(* Rewrite a node page with [entries] in order; slot order is then key
   order, so lookups can binary-search over slots. *)
let store (p : Page.t) kind ~next ~aux entries =
  Page.init p kind;
  Page.set_next p next;
  Page.set_aux p aux;
  Array.iter
    (fun e ->
      match Page.insert p (encode_entry e) with
      | Some _ -> ()
      | None -> invalid_arg "Btree.store: node overflow")
    entries

let entries_bytes entries =
  Array.fold_left (fun acc e -> acc + String.length (encode_entry e) + Page.slot_bytes) 0 entries

let create txn =
  let pid = Txn.alloc txn Page.Btree_leaf in
  { root = pid }

let open_existing root = { root }

(* Interior entries store (separator, child): the separator is a promoted
   leaf composite whose rid is kept as an extra trailing key column, and
   [aux] holds the child page id.  Routing compares full composites so
   duplicate column values are handled exactly. *)

let sep_composite (e : entry) =
  let n = Array.length e.key in
  match e.key.(n - 1) with
  | Record.Int rid -> (Array.sub e.key 0 (n - 1), rid)
  | _ -> invalid_arg "Btree: bad separator"

let make_sep (key, rid) child = { key = Array.append key [| Record.Int rid |]; aux = child }

(* Node pages are always kept dense and sorted (in-place edits shift the
   slot directory; splits rewrite whole nodes), so searches can binary-
   search over slots, decoding only the probed entries. *)

let slot_entry (p : Page.t) i = decode_entry (Page.get_exn p i)

(* First slot whose composite is >= c. *)
let lower_bound_page (p : Page.t) c =
  let n = Page.nslots p in
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let e = slot_entry p mid in
      if compare_composite (e.key, e.aux) c < 0 then bs (mid + 1) hi else bs lo mid
  in
  bs 0 n

(* Interior routing: last separator <= c (-1 = leftmost child). *)
let route_on_page (p : Page.t) c =
  let n = Page.nslots p in
  let rec bs lo hi =
    if lo >= hi then lo - 1
    else
      let mid = (lo + hi) / 2 in
      if compare_composite (sep_composite (slot_entry p mid)) c <= 0 then bs (mid + 1) hi
      else bs lo mid
  in
  bs 0 n

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

(* Split point by accumulated bytes (entries have variable size). *)
let split_point entries =
  let total = entries_bytes entries in
  let acc = ref 0 in
  let n = Array.length entries in
  let rec go i =
    if i >= n - 1 then n - 1
    else begin
      acc := !acc + String.length (encode_entry entries.(i)) + Page.slot_bytes;
      if !acc * 2 >= total then i + 1 else go (i + 1)
    end
  in
  max 1 (go 0)

(* Recursive insert; returns (separator, right page id) when [pid]
   split.  The fast path shifts the slot directory in place
   (Page.insert_at); only splits materialize the whole node.
   [lower_bound_w] works on the writable image so positions stay valid
   after earlier in-place edits. *)
let rec ins txn pid c =
  let p = Txn.read txn pid in
  match Page.kind p with
  | Page.Btree_leaf ->
    let key, rid = c in
    let entry = { key; aux = rid } in
    let w = Txn.write txn pid in
    let pos = lower_bound_page w c in
    if Page.insert_at w pos (encode_entry entry) then None
    else begin
      (* split: materialize including the new entry *)
      let entries = array_insert (load w) pos entry in
      let mid = split_point entries in
      let left = Array.sub entries 0 mid in
      let right = Array.sub entries mid (Array.length entries - mid) in
      let right_pid = Txn.alloc txn Page.Btree_leaf in
      let rp = Txn.write txn right_pid in
      store rp Page.Btree_leaf ~next:(Page.next w) ~aux:(-1) right;
      store w Page.Btree_leaf ~next:right_pid ~aux:(-1) left;
      let s = right.(0) in
      Some ((s.key, s.aux), right_pid)
    end
  | Page.Btree_interior ->
    let i = route_on_page p c in
    let child = if i < 0 then Page.aux p else (decode_entry (Page.get_exn p i)).aux in
    (match ins txn child c with
    | None -> None
    | Some (sep, right_pid) ->
      let sep_entry = make_sep sep right_pid in
      let w = Txn.write txn pid in
      if Page.insert_at w (i + 1) (encode_entry sep_entry) then None
      else begin
        let entries = array_insert (load w) (i + 1) sep_entry in
        let mid = split_point entries in
        let promoted = entries.(mid) in
        let left = Array.sub entries 0 mid in
        let right = Array.sub entries (mid + 1) (Array.length entries - mid - 1) in
        let right_pid = Txn.alloc txn Page.Btree_interior in
        let rp = Txn.write txn right_pid in
        store rp Page.Btree_interior ~next:(-1) ~aux:promoted.aux right;
        store w Page.Btree_interior ~next:(-1) ~aux:(Page.aux w) left;
        Some (sep_composite promoted, right_pid)
      end)
  | Page.Free | Page.Heap_page | Page.Meta ->
    invalid_arg "Btree.ins: not an index page"

let insert txn t key rid =
  match ins txn t.root (key, rid) with
  | None -> ()
  | Some (sep, right_pid) ->
    (* Root split: move the root's (already stored) left half to a fresh
       page and turn the fixed root page into an interior node. *)
    let left_pid = Txn.alloc txn Page.Btree_leaf in
    let root_img = Txn.read txn t.root in
    let lp = Txn.write txn left_pid in
    Bytes.blit root_img 0 lp 0 Page.size;
    let w = Txn.write txn t.root in
    store w Page.Btree_interior ~next:(-1) ~aux:left_pid [| make_sep sep right_pid |]

let rec leaf_for read pid c =
  let p : Page.t = read pid in
  match Page.kind p with
  | Page.Btree_leaf -> pid
  | Page.Btree_interior ->
    let i = route_on_page p c in
    let child = if i < 0 then Page.aux p else (slot_entry p i).aux in
    leaf_for read child c
  | Page.Free | Page.Heap_page | Page.Meta -> invalid_arg "Btree.leaf_for: not an index page"

(* Visit entries with composite in [lo, hi]; [f] returns false to stop. *)
let range (read : Pager.read) t ~lo ~hi ~f =
  let exception Stop in
  let start = leaf_for read t.root lo in
  try
    let rec walk pid ~first =
      let p = read pid in
      let n = Page.nslots p in
      let from = if first then lower_bound_page p lo else 0 in
      for i = from to n - 1 do
        let e = slot_entry p i in
        let c = (e.key, e.aux) in
        if compare_composite c hi > 0 then raise Stop
        else if compare_composite c lo >= 0 then if not (f e.key e.aux) then raise Stop
      done;
      let next = Page.next p in
      if next >= 0 then walk next ~first:false
    in
    walk start ~first:true
  with Stop -> ()

let min_composite = ([| |], min_int)

(* Iteration with a lower bound only (no upper bound exists for rows in
   general: they compare by length last). *)
let iter_from (read : Pager.read) t ~lo ~f =
  let exception Stop in
  let start = leaf_for read t.root lo in
  try
    let rec walk pid ~first =
      let p = read pid in
      let n = Page.nslots p in
      let from = if first then lower_bound_page p lo else 0 in
      for i = from to n - 1 do
        let e = slot_entry p i in
        if not (f e.key e.aux) then raise Stop
      done;
      let next = Page.next p in
      if next >= 0 then walk next ~first:false
    in
    walk start ~first:true
  with Stop -> ()

let iter_all read t ~f = iter_from read t ~lo:min_composite ~f:(fun k r -> f k r; true)

(* Entries whose key columns equal [key] exactly. *)
let lookup read t key ~f =
  range read t ~lo:(key, min_int) ~hi:(key, max_int) ~f:(fun _ rid -> f rid; true)

let delete txn t key rid =
  let c = (key, rid) in
  let pid = leaf_for (Txn.read_ctx txn) t.root c in
  let p = Txn.read txn pid in
  let i = lower_bound_page p c in
  if
    i < Page.nslots p
    &&
    let e = slot_entry p i in
    compare_composite (e.key, e.aux) c = 0
  then begin
    let w = Txn.write txn pid in
    Page.remove_at w i;
    true
  end
  else false

let count read t =
  let n = ref 0 in
  iter_all read t ~f:(fun _ _ -> incr n);
  !n

(* Pages reachable from the root (index size experiments). *)
let page_count read t =
  let n = ref 0 in
  let rec go pid =
    incr n;
    let p = read pid in
    match Page.kind p with
    | Page.Btree_leaf -> ()
    | Page.Btree_interior ->
      go (Page.aux p);
      Page.iter p ~f:(fun _ data -> go (decode_entry data).aux)
    | Page.Free | Page.Heap_page | Page.Meta -> ()
  in
  go t.root;
  !n

let drop txn t =
  let read = Txn.read_ctx txn in
  let rec go pid =
    let p = read pid in
    (match Page.kind p with
    | Page.Btree_interior ->
      go (Page.aux p);
      Page.iter p ~f:(fun _ data -> go (decode_entry data).aux)
    | Page.Btree_leaf | Page.Free | Page.Heap_page | Page.Meta -> ());
    Txn.free txn pid
  in
  go t.root
