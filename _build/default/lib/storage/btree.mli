(** Page-based B+trees used for table indexes.

    Entries are composite keys (column values, rowid): every entry is
    unique and non-unique indexes hold duplicates naturally.  Leaves are
    chained for range scans; the root page id is fixed for the index's
    lifetime (recorded in the catalog), so snapshots capture indexes
    exactly as the paper requires.  Deletion is lazy (no rebalancing). *)

type t

val create : Txn.t -> t
val open_existing : int -> t

val root : t -> int
(** The fixed root page id. *)

(** Insert entry (key, rid); duplicates of [key] are allowed as long as
    rids differ. *)
val insert : Txn.t -> t -> Record.row -> int -> unit

(** Remove exactly the (key, rid) entry; returns whether it existed. *)
val delete : Txn.t -> t -> Record.row -> int -> bool

(** Visit every rid whose key columns equal [key]. *)
val lookup : Pager.read -> t -> Record.row -> f:(int -> unit) -> unit

(** Visit entries with composite (key, rid) in [lo, hi] (inclusive);
    [f] returns [false] to stop.  Use [(k, min_int)]/[(k, max_int)] to
    form bounds around a key. *)
val range :
  Pager.read -> t -> lo:Record.row * int -> hi:Record.row * int ->
  f:(Record.row -> int -> bool) -> unit

(** Ordered iteration from a lower bound to the end. *)
val iter_from :
  Pager.read -> t -> lo:Record.row * int -> f:(Record.row -> int -> bool) -> unit

(** Full ordered iteration. *)
val iter_all : Pager.read -> t -> f:(Record.row -> int -> unit) -> unit

(** The smallest possible composite, for unbounded scans. *)
val min_composite : Record.row * int

val count : Pager.read -> t -> int

(** Pages reachable from the root (index size experiments). *)
val page_count : Pager.read -> t -> int

(** Release every page of the index (DROP INDEX). *)
val drop : Txn.t -> t -> unit
