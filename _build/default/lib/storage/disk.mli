(** Simulated block device backing the snapshot archive (Pagelog).

    Reads and writes are counted into {!Stats.global} and converted to
    modeled time by {!Stats.Cost_model}; see DESIGN.md for the
    substitution rationale.  Blocks are page-sized and copied on append,
    so later mutation of the source buffer cannot corrupt the archive. *)

type t

val create : ?name:string -> unit -> t

(** Blocks written so far. *)
val length : t -> int

(** Append a copy of the block; returns its index. *)
val append : t -> Bytes.t -> int

(** @raise Invalid_argument on an out-of-range index. *)
val read : t -> int -> Bytes.t

val size_bytes : t -> int

(** {1 Backup} *)

(** Portable copies of all blocks. *)
val dump : t -> Bytes.t array

val restore : ?name:string -> Bytes.t array -> t
