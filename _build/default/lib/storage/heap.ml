(* Heap files: page chains holding serialized rows.

   A table's rows live on a chain of slotted pages linked through the
   page header's [next] field; the chain head is recorded in the catalog,
   so a query running AS OF a snapshot follows the chain as it existed in
   that snapshot.  Row ids encode (page id, slot) and are stable across
   in-place updates.

   A heap handle carries an in-memory free-space map (FSM), built lazily
   by one chain scan and maintained on every insert/delete/update through
   the handle, so deleted space is found by later inserts and the chain
   only grows when the table really does (the storage manager behaviour
   the paper's update workloads rely on).  The FSM is advisory: the page
   itself is re-checked before use, so a stale entry costs a lookup, not
   correctness. *)

type t = {
  first_page : int;
  mutable tail_hint : int;                 (* last page of the chain, as last observed *)
  mutable fsm : (int, int) Hashtbl.t option; (* pid -> free-byte estimate *)
}

let fsm_threshold = 64 (* pages with at least this much space are insert candidates *)

let rid_of ~pid ~slot = (pid lsl 12) lor slot
let pid_of_rid rid = rid lsr 12
let slot_of_rid rid = rid land 0xfff

let create txn =
  let pid = Txn.alloc txn Page.Heap_page in
  { first_page = pid; tail_hint = pid; fsm = None }

let open_existing first_page = { first_page; tail_hint = first_page; fsm = None }

let first_page t = t.first_page

let page_free p = Page.free_space p + Page.dead_bytes p

(* Build the FSM with one chain walk; also refreshes the tail hint. *)
let build_fsm (read : Pager.read) t =
  let fsm = Hashtbl.create 64 in
  let rec go pid =
    let p = read pid in
    let free = page_free p in
    if free >= fsm_threshold then Hashtbl.replace fsm pid free;
    let next = Page.next p in
    if next < 0 then t.tail_hint <- pid else go next
  in
  go t.first_page;
  t.fsm <- Some fsm;
  fsm

let get_fsm read t = match t.fsm with Some f -> f | None -> build_fsm read t

let fsm_note t pid free =
  match t.fsm with
  | None -> ()
  | Some fsm ->
    if free >= fsm_threshold then Hashtbl.replace fsm pid free else Hashtbl.remove fsm pid

(* Find the real tail starting from the hint (the chain only grows). *)
let find_tail (read : Pager.read) t =
  let rec go pid =
    let p = read pid in
    let next = Page.next p in
    if next < 0 then pid else go next
  in
  let tail = go t.tail_hint in
  t.tail_hint <- tail;
  tail

exception Found of int

(* A page whose FSM estimate can hold [len] more bytes. *)
let candidate fsm len =
  try
    Hashtbl.iter (fun pid free -> if free >= len + Page.slot_bytes then raise (Found pid)) fsm;
    None
  with Found pid -> Some pid

let insert txn t (data : string) =
  let len = String.length data in
  let try_page pid =
    let image = Txn.read txn pid in
    if Page.can_insert image len then begin
      let p = Txn.write txn pid in
      match Page.insert p data with
      | Some slot ->
        fsm_note t pid (page_free p);
        Some (rid_of ~pid ~slot)
      | None -> None
    end
    else None
  in
  let read = Txn.read_ctx txn in
  let fsm = get_fsm read t in
  let rec from_fsm () =
    match candidate fsm len with
    | None -> None
    | Some pid -> (
      match try_page pid with
      | Some rid -> Some rid
      | None ->
        (* stale estimate: drop and retry *)
        Hashtbl.remove fsm pid;
        from_fsm ())
  in
  match from_fsm () with
  | Some rid -> rid
  | None -> (
    let tail = find_tail read t in
    match try_page tail with
    | Some rid -> rid
    | None ->
      let fresh = Txn.alloc txn Page.Heap_page in
      let tail_page = Txn.write txn tail in
      Page.set_next tail_page fresh;
      t.tail_hint <- fresh;
      let p = Txn.write txn fresh in
      (match Page.insert p data with
      | Some slot ->
        fsm_note t fresh (page_free p);
        rid_of ~pid:fresh ~slot
      | None -> invalid_arg "Heap.insert: record larger than a page"))

let get (read : Pager.read) _t rid =
  let pid = pid_of_rid rid and slot = slot_of_rid rid in
  Page.get (read pid) slot

let delete txn t rid =
  let pid = pid_of_rid rid and slot = slot_of_rid rid in
  let p = Txn.write txn pid in
  let ok = Page.delete p slot in
  if ok then fsm_note t pid (page_free p);
  ok

(* In-place when possible; otherwise delete + reinsert (rid changes). *)
let update txn t rid data =
  let pid = pid_of_rid rid and slot = slot_of_rid rid in
  let p = Txn.write txn pid in
  if Page.update p slot data then begin
    fsm_note t pid (page_free p);
    `Same
  end
  else begin
    ignore (Page.delete p slot);
    fsm_note t pid (page_free p);
    `Moved (insert txn t data)
  end

let iter (read : Pager.read) t ~f =
  let rec go pid =
    let p = read pid in
    Page.iter p ~f:(fun slot data -> f (rid_of ~pid ~slot) data);
    let next = Page.next p in
    if next >= 0 then go next
  in
  go t.first_page

(* Iteration with early exit: [f] returns [false] to stop. *)
let iter_while (read : Pager.read) t ~f =
  let exception Stop in
  try
    let rec go pid =
      let p = read pid in
      (try
         Page.iter p ~f:(fun slot data ->
             if not (f (rid_of ~pid ~slot) data) then raise Stop)
       with Stop -> raise Stop);
      let next = Page.next p in
      if next >= 0 then go next
    in
    go t.first_page
  with Stop -> ()

let count (read : Pager.read) t =
  let n = ref 0 in
  iter read t ~f:(fun _ _ -> incr n);
  !n

(* Number of pages in the chain (memory/size experiments). *)
let page_count (read : Pager.read) t =
  let rec go pid acc =
    let p = read pid in
    let next = Page.next p in
    if next < 0 then acc + 1 else go next (acc + 1)
  in
  go t.first_page 0

(* Release every page of the chain (DROP TABLE). *)
let drop txn t =
  let read = Txn.read_ctx txn in
  let rec go pid =
    let next = Page.next (read pid) in
    Txn.free txn pid;
    if next >= 0 then go next
  in
  go t.first_page;
  t.fsm <- None
