(** Heap files: page chains holding serialized rows.

    A table's rows live on a chain of slotted pages linked through the
    page header's [next] field; the chain head is recorded in the
    catalog, so a query running AS OF a snapshot follows the chain as it
    existed in that snapshot.

    A handle carries an advisory in-memory free-space map so deleted
    space is found by later inserts; correctness never depends on it
    (pages are re-checked before use). *)

type t

(** Allocate a fresh chain head inside [txn]. *)
val create : Txn.t -> t

(** Handle on an existing chain (e.g. from the catalog). *)
val open_existing : int -> t

val first_page : t -> int

(** Row ids encode (page id, slot); stable across in-place updates. *)
val rid_of : pid:int -> slot:int -> int

val pid_of_rid : int -> int
val slot_of_rid : int -> int

(** Insert a row, reusing freed space when possible, extending the
    chain otherwise.  Returns the new rid.
    @raise Invalid_argument if the record exceeds a page. *)
val insert : Txn.t -> t -> string -> int

(** Fetch a row through any read context (committed, transaction-local
    or Retro snapshot). *)
val get : Pager.read -> t -> int -> string option

(** Delete by rid; returns whether the row existed. *)
val delete : Txn.t -> t -> int -> bool

(** Update in place when the new bytes fit, else delete + reinsert
    ([`Moved] carries the new rid). *)
val update : Txn.t -> t -> int -> string -> [ `Same | `Moved of int ]

(** Visit every live row in chain order. *)
val iter : Pager.read -> t -> f:(int -> string -> unit) -> unit

(** Like {!iter} but [f] returns [false] to stop early. *)
val iter_while : Pager.read -> t -> f:(int -> string -> bool) -> unit

val count : Pager.read -> t -> int

(** Pages in the chain (size experiments). *)
val page_count : Pager.read -> t -> int

(** Release every page of the chain (DROP TABLE). *)
val drop : Txn.t -> t -> unit
