(* Slotted pages.

   Every database object (heap files, B+tree nodes, the catalog) lives on
   fixed-size slotted pages so that the Retro layer can snapshot the whole
   database uniformly at page granularity, as in the paper.

   Layout (little endian):
     0        kind byte
     1..4     next page id (int32, -1 = none); heap chain / leaf chain
     5..6     slot count (u16)
     7..8     content start offset (u16) — record area is [content, size)
     9..12    aux (int32) — B+tree interior: leftmost child; else free
     13..15   reserved
     16+4i    slot i: u16 record offset (0 = dead), u16 record length
   Records are appended downward from the end of the page. *)

let size = 4096
let header = 16
let slot_bytes = 4

type kind = Free | Heap_page | Btree_leaf | Btree_interior | Meta

let kind_code = function
  | Free -> 0
  | Heap_page -> 1
  | Btree_leaf -> 2
  | Btree_interior -> 3
  | Meta -> 4

let kind_of_code = function
  | 0 -> Free
  | 1 -> Heap_page
  | 2 -> Btree_leaf
  | 3 -> Btree_interior
  | 4 -> Meta
  | c -> invalid_arg (Printf.sprintf "Page.kind_of_code %d" c)

type t = Bytes.t

let get_u16 (p : t) off = Char.code (Bytes.get p off) lor (Char.code (Bytes.get p (off + 1)) lsl 8)

let set_u16 (p : t) off v =
  Bytes.set p off (Char.chr (v land 0xff));
  Bytes.set p (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_i32 (p : t) off =
  let v = Bytes.get_int32_le p off in
  Int32.to_int v

let set_i32 (p : t) off v = Bytes.set_int32_le p off (Int32.of_int v)

let kind p = kind_of_code (Char.code (Bytes.get p 0))
let set_kind p k = Bytes.set p 0 (Char.chr (kind_code k))
let next p = get_i32 p 1
let set_next p v = set_i32 p 1 v
let nslots p = get_u16 p 5
let set_nslots p v = set_u16 p 5 v
let content p = get_u16 p 7
let set_content p v = set_u16 p 7 v
let aux p = get_i32 p 9
let set_aux p v = set_i32 p 9 v

let init (p : t) k =
  Bytes.fill p 0 size '\000';
  set_kind p k;
  set_next p (-1);
  set_nslots p 0;
  set_content p size;
  set_aux p (-1)

let create k =
  let p = Bytes.create size in
  init p k;
  p

let slot_off p i = get_u16 p (header + (slot_bytes * i))
let slot_len p i = get_u16 p (header + (slot_bytes * i) + 2)

let set_slot p i off len =
  set_u16 p (header + (slot_bytes * i)) off;
  set_u16 p (header + (slot_bytes * i) + 2) len

let live p i = slot_off p i <> 0

(* Bytes of slot [i], or [None] if the slot is dead. *)
let get p i =
  if i < 0 || i >= nslots p || not (live p i) then None
  else Some (Bytes.sub_string p (slot_off p i) (slot_len p i))

let get_exn p i =
  match get p i with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Page.get_exn: dead slot %d" i)

let free_space p =
  content p - (header + (slot_bytes * nslots p))

(* Rewrite the record area dropping dead space.  Slot indexes are
   preserved (rowids embed the slot index). *)
let compact p =
  let n = nslots p in
  let recs =
    List.init n (fun i -> if live p i then Some (i, get_exn p i) else None)
  in
  let pos = ref size in
  set_content p size;
  List.iter
    (function
      | None -> ()
      | Some (i, data) ->
        let len = String.length data in
        pos := !pos - len;
        Bytes.blit_string data 0 p !pos len;
        set_slot p i !pos len)
    recs;
  set_content p !pos

let dead_bytes p =
  let live_bytes = ref 0 in
  for i = 0 to nslots p - 1 do
    if live p i then live_bytes := !live_bytes + slot_len p i
  done;
  size - content p - !live_bytes

(* Would [insert] of a record of [len] bytes succeed (possibly after
   compaction)? *)
let can_insert p len =
  let reuse = ref false in
  (try
     for i = 0 to nslots p - 1 do
       if not (live p i) then begin
         reuse := true;
         raise Exit
       end
     done
   with Exit -> ());
  let need = len + if !reuse then 0 else slot_bytes in
  free_space p + dead_bytes p >= need

let find_dead_slot p =
  let n = nslots p in
  let rec go i = if i >= n then None else if live p i then go (i + 1) else Some i in
  go 0

(* Insert a record, returning its slot index, or [None] if the page is
   full even after compaction. *)
let insert p data =
  let len = String.length data in
  if len > size - header - slot_bytes then None
  else begin
    let slot, slot_cost =
      match find_dead_slot p with Some i -> i, 0 | None -> nslots p, slot_bytes
    in
    if free_space p < len + slot_cost && free_space p + dead_bytes p >= len + slot_cost
    then compact p;
    if free_space p < len + slot_cost then None
    else begin
      if slot = nslots p then set_nslots p (slot + 1);
      let off = content p - len in
      Bytes.blit_string data 0 p off len;
      set_content p off;
      set_slot p slot off len;
      Some slot
    end
  end

let delete p i =
  if i < 0 || i >= nslots p || not (live p i) then false
  else begin
    set_slot p i 0 0;
    true
  end

(* Replace slot [i] in place.  Returns false if it no longer fits, in
   which case the slot is left unchanged and the caller must relocate. *)
let update p i data =
  if i < 0 || i >= nslots p || not (live p i) then false
  else
    let len = String.length data in
    let old = slot_len p i in
    if len <= old then begin
      Bytes.blit_string data 0 p (slot_off p i) len;
      set_slot p i (slot_off p i) len;
      true
    end
    else if free_space p + dead_bytes p + old >= len then begin
      set_slot p i 0 0;
      if free_space p < len then compact p;
      let off = content p - len in
      Bytes.blit_string data 0 p off len;
      set_content p off;
      set_slot p i off len;
      true
    end
    else false

let iter p ~f =
  for i = 0 to nslots p - 1 do
    if live p i then f i (get_exn p i)
  done

(* Ordered insertion: create a gap at slot [i] by shifting the slot
   directory, keeping slot order equal to key order.  Used by B+tree
   nodes (which never have dead slots).  Returns false when the record
   does not fit even after compaction. *)
let insert_at p i data =
  let n = nslots p in
  if i < 0 || i > n then invalid_arg "Page.insert_at: bad position";
  let len = String.length data in
  if len > size - header - slot_bytes then false
  else begin
    if free_space p < len + slot_bytes && free_space p + dead_bytes p >= len + slot_bytes
    then compact p;
    if free_space p < len + slot_bytes then false
    else begin
      let off = content p - len in
      Bytes.blit_string data 0 p off len;
      set_content p off;
      Bytes.blit p (header + (slot_bytes * i)) p
        (header + (slot_bytes * (i + 1)))
        (slot_bytes * (n - i));
      set_nslots p (n + 1);
      set_slot p i off len;
      true
    end
  end

(* Ordered removal: close the slot-directory gap at [i].  The record
   bytes become dead space reclaimed by the next compaction. *)
let remove_at p i =
  let n = nslots p in
  if i < 0 || i >= n then invalid_arg "Page.remove_at: bad position";
  Bytes.blit p
    (header + (slot_bytes * (i + 1)))
    p
    (header + (slot_bytes * i))
    (slot_bytes * (n - i - 1));
  set_nslots p (n - 1)

let copy (p : t) : t = Bytes.copy p
