(** Slotted pages: the fixed-size unit of storage, snapshotting and
    I/O.

    A page is a [size]-byte buffer holding a header, a slot directory
    growing down from the header and a record area growing up from the
    end.  Heap pages keep slot indexes stable (rowids embed them);
    B+tree node pages keep the slot directory dense and sorted via
    {!insert_at}/{!remove_at}. *)

val size : int
(** Page size in bytes (4096). *)

val header : int
(** Header bytes reserved at the start of each page. *)

val slot_bytes : int
(** Bytes per slot-directory entry. *)

type kind = Free | Heap_page | Btree_leaf | Btree_interior | Meta

type t = Bytes.t

(** {1 Header accessors} *)

val kind : t -> kind
val set_kind : t -> kind -> unit

val next : t -> int
(** Chain link: next heap page / next B+tree leaf; [-1] = none. *)

val set_next : t -> int -> unit

val nslots : t -> int

val aux : t -> int
(** Auxiliary header field (B+tree interior: leftmost child). *)

val set_aux : t -> int -> unit

(** {1 Lifecycle} *)

(** Reset [p] to an empty page of the given kind. *)
val init : t -> kind -> unit

val create : kind -> t

(** {1 Records} *)

(** Bytes of slot [i], or [None] if dead/out of range. *)
val get : t -> int -> string option

(** @raise Invalid_argument on a dead slot. *)
val get_exn : t -> int -> string

val live : t -> int -> bool

(** Contiguous free bytes (before compaction). *)
val free_space : t -> int

(** Bytes recoverable by {!compact}. *)
val dead_bytes : t -> int

(** Would an insert of [len] bytes succeed, counting compaction? *)
val can_insert : t -> int -> bool

(** Insert a record, reusing a dead slot if any; returns the slot index
    or [None] if the page is full even after compaction. *)
val insert : t -> string -> int option

(** Kill slot [i]; returns whether it was live. *)
val delete : t -> int -> bool

(** Replace slot [i] in place (compacting if needed); returns [false]
    when the new record no longer fits and the slot is left unchanged. *)
val update : t -> int -> string -> bool

(** Rewrite the record area dropping dead space; slot indexes are
    preserved. *)
val compact : t -> unit

(** Visit live slots in slot order. *)
val iter : t -> f:(int -> string -> unit) -> unit

(** {1 Ordered slot operations (B+tree nodes)} *)

(** Open a gap at slot [i] by shifting the directory, keeping slot order
    equal to key order.  Returns [false] if the record cannot fit. *)
val insert_at : t -> int -> string -> bool

(** Close the directory gap at slot [i]; the record bytes become dead
    space. *)
val remove_at : t -> int -> unit

val copy : t -> t
