(* Value model and row codec.

   The engine uses SQLite-style dynamic typing with four storage classes:
   NULL, INTEGER, REAL and TEXT.  Rows are arrays of values serialized
   into the slotted pages of Page.t.  The ordering used by indexes and by
   ORDER BY follows SQLite: NULL < numeric < TEXT, with INTEGER and REAL
   compared numerically across classes. *)

type value =
  | Null
  | Int of int
  | Real of float
  | Text of string

type row = value array

let type_name = function
  | Null -> "NULL"
  | Int _ -> "INTEGER"
  | Real _ -> "REAL"
  | Text _ -> "TEXT"

let value_to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Real f ->
    (* Render integral floats as "1.0" so output is unambiguous. *)
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.12g" f
  | Text s -> s

let pp_value ppf v = Fmt.string ppf (value_to_string v)

(* Total order over storage classes (SQLite semantics). *)
let compare_value a b =
  let rank = function Null -> 0 | Int _ | Real _ -> 1 | Text _ -> 2 in
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> compare x y
  | Real x, Real y -> Float.compare x y
  | Int x, Real y -> Float.compare (float_of_int x) y
  | Real x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | _ -> compare (rank a) (rank b)

let compare_row (a : row) (b : row) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then compare (Array.length a) (Array.length b)
    else
      let c = compare_value a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal_value a b = compare_value a b = 0

(* --- binary codec --------------------------------------------------- *)

let tag_null = 0
and tag_int = 1
and tag_real = 2
and tag_text = 3

let put_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let put_i64_raw buf (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let put_i64 buf v = put_i64_raw buf (Int64.of_int v)

let encode_value buf = function
  | Null -> Buffer.add_char buf (Char.chr tag_null)
  | Int i ->
    Buffer.add_char buf (Char.chr tag_int);
    put_i64 buf i
  | Real f ->
    Buffer.add_char buf (Char.chr tag_real);
    put_i64_raw buf (Int64.bits_of_float f)
  | Text s ->
    Buffer.add_char buf (Char.chr tag_text);
    put_u16 buf (String.length s);
    Buffer.add_string buf s

let encode_row (r : row) : string =
  let buf = Buffer.create 64 in
  put_u16 buf (Array.length r);
  Array.iter (encode_value buf) r;
  Buffer.contents buf

let get_u16 s pos =
  let v = Char.code s.[!pos] lor (Char.code s.[!pos + 1] lsl 8) in
  pos := !pos + 2;
  v

let get_i64_raw s pos =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (Char.code s.[!pos + i])) (8 * i))
  done;
  pos := !pos + 8;
  !v

let get_i64 s pos = Int64.to_int (get_i64_raw s pos)

let decode_value s pos =
  let tag = Char.code s.[!pos] in
  incr pos;
  if tag = tag_null then Null
  else if tag = tag_int then Int (get_i64 s pos)
  else if tag = tag_real then Real (Int64.float_of_bits (get_i64_raw s pos))
  else if tag = tag_text then begin
    let len = get_u16 s pos in
    let v = Text (String.sub s !pos len) in
    pos := !pos + len;
    v
  end
  else invalid_arg (Printf.sprintf "Record.decode_value: bad tag %d" tag)

let decode_row (s : string) : row =
  let pos = ref 0 in
  let n = get_u16 s pos in
  Array.init n (fun _ -> decode_value s pos)

(* Approximate in-memory footprint of a row in bytes; used by the
   memory-cost experiments (Fig 11, Sec. 5.3). *)
let row_size (r : row) =
  Array.fold_left
    (fun acc v ->
      acc
      + match v with
        | Null -> 1
        | Int _ -> 9
        | Real _ -> 9
        | Text s -> 3 + String.length s)
    2 r
