(** Value model and row codec.

    SQLite-style dynamic typing with four storage classes.  Rows are
    arrays of values serialized into slotted pages; the comparison order
    (NULL < numeric < TEXT, numerics compared across classes) is shared
    by indexes, ORDER BY and expression evaluation. *)

type value =
  | Null
  | Int of int
  | Real of float
  | Text of string

type row = value array

(** Storage-class name, as SQLite's [typeof()] reports it. *)
val type_name : value -> string

(** Render a value for display; [Null] prints as ["NULL"], integral
    reals as ["2.0"]. *)
val value_to_string : value -> string

val pp_value : Format.formatter -> value -> unit

(** Total order over values: NULL first, then numerics (INTEGER and
    REAL compared numerically), then TEXT byte-wise. *)
val compare_value : value -> value -> int

(** Lexicographic row comparison; shorter rows sort first on ties. *)
val compare_row : row -> row -> int

val equal_value : value -> value -> bool

(** Serialize a row to bytes (length-prefixed, little-endian). *)
val encode_row : row -> string

(** Inverse of {!encode_row}.
    @raise Invalid_argument on corrupt input. *)
val decode_row : string -> row

(** Approximate in-memory footprint in bytes (within a few bytes of the
    encoded size); used by the memory-cost experiments. *)
val row_size : row -> int
