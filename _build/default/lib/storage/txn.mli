(** Transactions with page-level before-images.

    A transaction overlays private copies of the pages it writes;
    readers of the committed state never observe uncommitted writes.
    At commit the before-images are handed to the pager's pre-commit
    hook — the interposition point where Retro archives copy-on-write
    pre-states — and the after-images are installed atomically. *)

type t

val begin_txn : Pager.t -> t

(** Transaction-local read: own writes first, then committed state. *)
val read : t -> int -> Bytes.t

val read_ctx : t -> Pager.read

(** Mutable image of a page; the first touch copies the committed image
    and records it as the before-image.
    @raise Invalid_argument if the transaction is not active. *)
val write : t -> int -> Bytes.t

(** Allocate a page (possibly recycling a freed id, whose old committed
    image then becomes the before-image so COW can preserve it for
    older snapshots). *)
val alloc : t -> Page.kind -> int

(** Schedule a page for release at commit. *)
val free : t -> int -> unit

val dirty_count : t -> int

(** Deliver before-images to the pager hook, install after-images,
    release freed pages. *)
val commit : t -> unit

(** Discard all writes; reserved page ids return to the free list. *)
val abort : t -> unit

val is_active : t -> bool

(** Run [f] in a fresh transaction: commit on return, abort if [f]
    raises. *)
val with_txn : Pager.t -> (t -> 'a) -> 'a
