lib/tpch/data.ml: Printf
