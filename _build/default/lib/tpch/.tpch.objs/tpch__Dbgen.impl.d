lib/tpch/dbgen.ml: Array Data Float List Printf Rng Schema Sqldb Storage String
