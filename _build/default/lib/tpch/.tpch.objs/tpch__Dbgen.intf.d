lib/tpch/dbgen.mli: Rng Sqldb Storage
