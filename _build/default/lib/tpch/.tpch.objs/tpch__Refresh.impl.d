lib/tpch/refresh.ml: Array Data Dbgen Hashtbl List Rng Sqldb Storage
