lib/tpch/refresh.mli: Dbgen Sqldb
