lib/tpch/rng.ml: Array Int64
