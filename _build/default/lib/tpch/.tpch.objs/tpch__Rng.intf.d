lib/tpch/rng.mli:
