lib/tpch/schema.ml: Float
