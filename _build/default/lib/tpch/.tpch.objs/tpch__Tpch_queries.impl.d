lib/tpch/tpch_queries.ml: Printf
