lib/tpch/workload.ml: Dbgen Float List Printf Refresh Rql Schema
