lib/tpch/workload.mli: Dbgen Rql
