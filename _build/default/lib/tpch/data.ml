(* Static vocabularies from the TPC-H specification (dbgen's grammar
   sources), trimmed to what the schema columns need. *)

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

(* nation name, region key *)
let nations =
  [| ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1); ("EGYPT", 4);
     ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3); ("INDIA", 2); ("INDONESIA", 2);
     ("IRAN", 4); ("IRAQ", 4); ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0);
     ("MOROCCO", 0); ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
     ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3); ("UNITED KINGDOM", 3);
     ("UNITED STATES", 1) |]

let type_syllable_1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let type_syllable_2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let type_syllable_3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let containers_1 = [| "SM"; "LG"; "MED"; "JUMBO"; "WRAP" |]
let containers_2 = [| "CASE"; "BOX"; "BAG"; "JAR"; "PKG"; "PACK"; "CAN"; "DRUM" |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]

let modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let part_name_words =
  [| "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black"; "blanched";
     "blue"; "blush"; "brown"; "burlywood"; "burnished"; "chartreuse"; "chiffon";
     "chocolate"; "coral"; "cornflower"; "cornsilk"; "cream"; "cyan"; "dark"; "deep";
     "dim"; "dodger"; "drab"; "firebrick"; "floral"; "forest"; "frosted"; "gainsboro";
     "ghost"; "goldenrod"; "green"; "grey"; "honeydew"; "hot"; "hotpink"; "indian";
     "ivory"; "khaki"; "lace"; "lavender"; "lawn"; "lemon"; "light"; "lime"; "linen" |]

let comment_words =
  [| "furiously"; "quickly"; "slyly"; "carefully"; "blithely"; "deposits"; "requests";
     "accounts"; "packages"; "instructions"; "foxes"; "pinto"; "beans"; "theodolites";
     "dependencies"; "excuses"; "platelets"; "asymptotes"; "courts"; "ideas"; "dolphins";
     "sleep"; "nag"; "wake"; "cajole"; "haggle"; "boost"; "final"; "express"; "regular";
     "special"; "pending"; "bold"; "even"; "silent"; "unusual"; "ironic" |]

(* --- dates ------------------------------------------------------------- *)

(* TPC-H order dates span [STARTDATE, ENDDATE]; we use days since
   1992-01-01 and render ISO text so lexicographic comparison equals date
   comparison. *)
let start_year = 1992

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28
  | _ -> invalid_arg "days_in_month"

let date_of_day_number d =
  let rec year y d =
    let len = if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 366 else 365 in
    if d < len then (y, d) else year (y + 1) (d - len)
  in
  let y, d = year start_year d in
  let rec month m d =
    let len = days_in_month y m in
    if d < len then (m, d + 1) else month (m + 1) (d - len)
  in
  let m, dom = month 1 d in
  Printf.sprintf "%04d-%02d-%02d" y m dom

(* 1992-01-01 .. 1998-08-02 is 2406 days. *)
let max_order_day = 2405
