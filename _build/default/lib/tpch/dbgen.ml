(* dbgen: deterministic population of the TPC-H schema at a given scale
   factor, substituting for the TPC-H dbgen tool (DESIGN.md).  Rows are
   inserted through the engine's internal fast path in batched
   transactions; the initial load happens before any snapshot is
   declared, as in the paper's setup. *)

module R = Storage.Record
module Sq = Sqldb

type state = {
  rng : Rng.t;
  sf : float;
  n_supplier : int;
  n_part : int;
  n_customer : int;
  mutable next_orderkey : int;
  (* live order keys in insertion (= key) order.  RF2 deletes from the
     front — dbgen's refresh stream deletes the lowest existing order
     keys, which is what gives the paper's update workloads their
     clustered page-touch pattern and well-defined overwrite cycles. *)
  mutable live : int array;
  mutable live_head : int; (* first live position *)
  mutable live_tail : int; (* one past the last live position *)
}

let n_live st = st.live_tail - st.live_head

let live_orders st = Array.sub st.live st.live_head (n_live st)

let push_live st key =
  if st.live_tail >= Array.length st.live then begin
    (* compact or grow *)
    let n = n_live st in
    let cap = max 64 (max (Array.length st.live) (2 * n)) in
    let a = Array.make cap 0 in
    Array.blit st.live st.live_head a 0 n;
    st.live <- a;
    st.live_head <- 0;
    st.live_tail <- n
  end;
  st.live.(st.live_tail) <- key;
  st.live_tail <- st.live_tail + 1

(* Remove and return the [count] lowest live order keys (dbgen RF2). *)
let take_oldest_live st count =
  let count = min count (n_live st) in
  let out = Array.sub st.live st.live_head count in
  st.live_head <- st.live_head + count;
  out

(* --- row builders ------------------------------------------------------- *)

let comment rng =
  let n = Rng.int_range rng 2 5 in
  String.concat " " (List.init n (fun _ -> Rng.pick rng Data.comment_words))

let phone rng =
  Printf.sprintf "%02d-%03d-%03d-%04d" (Rng.int_range rng 10 34) (Rng.int_range rng 100 999)
    (Rng.int_range rng 100 999) (Rng.int_range rng 1000 9999)

let money rng lo hi = Float.round (Rng.float_range rng lo hi *. 100.) /. 100.

let part_type rng =
  Printf.sprintf "%s %s %s" (Rng.pick rng Data.type_syllable_1)
    (Rng.pick rng Data.type_syllable_2) (Rng.pick rng Data.type_syllable_3)

let make_region i =
  [| R.Int i; R.Text Data.regions.(i); R.Text "regional comment" |]

let make_nation i =
  let name, region = Data.nations.(i) in
  [| R.Int i; R.Text name; R.Int region; R.Text "national comment" |]

let make_supplier st i =
  [| R.Int i;
     R.Text (Printf.sprintf "Supplier#%09d" i);
     R.Text (comment st.rng);
     R.Int (Rng.int_range st.rng 0 24);
     R.Text (phone st.rng);
     R.Real (money st.rng (-999.99) 9999.99);
     R.Text (comment st.rng) |]

let make_part st i =
  let name =
    String.concat " " (List.init 3 (fun _ -> Rng.pick st.rng Data.part_name_words))
  in
  let m = Rng.int_range st.rng 1 5 in
  [| R.Int i;
     R.Text name;
     R.Text (Printf.sprintf "Manufacturer#%d" m);
     R.Text (Printf.sprintf "Brand#%d%d" m (Rng.int_range st.rng 1 5));
     R.Text (part_type st.rng);
     R.Int (Rng.int_range st.rng 1 50);
     R.Text (Rng.pick st.rng Data.containers_1 ^ " " ^ Rng.pick st.rng Data.containers_2);
     R.Real (money st.rng 900. 2000.);
     R.Text (comment st.rng) |]

let make_partsupp st ~partkey ~suppkey =
  [| R.Int partkey;
     R.Int suppkey;
     R.Int (Rng.int_range st.rng 1 9999);
     R.Real (money st.rng 1. 1000.);
     R.Text (comment st.rng) |]

let make_customer st i =
  [| R.Int i;
     R.Text (Printf.sprintf "Customer#%09d" i);
     R.Text (comment st.rng);
     R.Int (Rng.int_range st.rng 0 24);
     R.Text (phone st.rng);
     R.Real (money st.rng (-999.99) 9999.99);
     R.Text (Rng.pick st.rng Data.segments);
     R.Text (comment st.rng) |]

(* Order status distribution: roughly half the order population is
   finished, a quarter open, a quarter partial (dbgen derives this from
   lineitem status; we draw it directly). *)
let order_status rng =
  match Rng.int_range rng 0 3 with 0 -> "O" | 1 -> "P" | _ -> "F"

let make_order st ~key ~status ~day =
  [| R.Int key;
     R.Int (Rng.int_range st.rng 1 st.n_customer);
     R.Text status;
     R.Real (money st.rng 1000. 450000.);
     R.Text (Data.date_of_day_number day);
     R.Text (Rng.pick st.rng Data.priorities);
     R.Text (Printf.sprintf "Clerk#%09d" (Rng.int_range st.rng 1 1000));
     R.Int 0;
     R.Text (comment st.rng) |]

let make_lineitem st ~orderkey ~linenumber ~day =
  let quantity = Rng.int_range st.rng 1 50 in
  let price = money st.rng 900. 105000. in
  let ship = min Data.max_order_day (day + Rng.int_range st.rng 1 121) in
  let commit = min Data.max_order_day (day + Rng.int_range st.rng 30 90) in
  let receipt = min Data.max_order_day (ship + Rng.int_range st.rng 1 30) in
  [| R.Int orderkey;
     R.Int (Rng.int_range st.rng 1 st.n_part);
     R.Int (Rng.int_range st.rng 1 st.n_supplier);
     R.Int linenumber;
     R.Int quantity;
     R.Real price;
     R.Real (float_of_int (Rng.int_range st.rng 0 10) /. 100.);
     R.Real (float_of_int (Rng.int_range st.rng 0 8) /. 100.);
     R.Text (if Rng.int_range st.rng 0 1 = 0 then "R" else "A");
     R.Text (if Rng.int_range st.rng 0 1 = 0 then "O" else "F");
     R.Text (Data.date_of_day_number ship);
     R.Text (Data.date_of_day_number commit);
     R.Text (Data.date_of_day_number receipt);
     R.Text (Rng.pick st.rng Data.instructs);
     R.Text (Rng.pick st.rng Data.modes);
     R.Text (comment st.rng) |]

let lineitems_for st ~orderkey ~day =
  let n = Rng.int_range st.rng 1 7 in
  List.init n (fun i -> make_lineitem st ~orderkey ~linenumber:(i + 1) ~day)

(* --- bulk loading -------------------------------------------------------- *)

let find_table env name =
  match Sq.Catalog.find_table env.Sq.Exec.cat name with
  | Some t -> t
  | None -> invalid_arg ("Dbgen: no such table " ^ name)

(* Insert [rows] into [name] in batched transactions. *)
let bulk_insert db name rows =
  let env = Sq.Exec.current_env db in
  let tbl = find_table env name in
  let batch = 2000 in
  let rec go rows =
    match rows with
    | [] -> ()
    | _ ->
      let now, rest =
        let rec split i acc = function
          | r :: tl when i < batch -> split (i + 1) (r :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        split 0 [] rows
      in
      Sq.Db.with_write_txn db (fun txn ->
          List.iter (fun row -> ignore (Sq.Exec.insert_row_raw env txn tbl row)) now);
      go rest
  in
  go rows

(* Generate the full database at scale factor [sf] into [db].  Returns
   the generator state used by the refresh functions. *)
let generate ?(seed = 42) db ~sf =
  List.iter (fun ddl -> ignore (Sq.Engine.exec db ddl)) Schema.ddl;
  let st =
    { rng = Rng.create seed;
      sf;
      n_supplier = Schema.scaled sf Schema.sf1_supplier 10;
      n_part = Schema.scaled sf Schema.sf1_part 50;
      n_customer = Schema.scaled sf Schema.sf1_customer 30;
      next_orderkey = 1;
      live = Array.make 1024 0;
      live_head = 0;
      live_tail = 0 }
  in
  bulk_insert db "region" (List.init (Array.length Data.regions) make_region);
  bulk_insert db "nation" (List.init (Array.length Data.nations) make_nation);
  bulk_insert db "supplier" (List.init st.n_supplier (fun i -> make_supplier st (i + 1)));
  bulk_insert db "part" (List.init st.n_part (fun i -> make_part st (i + 1)));
  (* partsupp: 4 suppliers per part, as in the spec *)
  let partsupp =
    List.concat_map
      (fun p ->
        List.init 4 (fun _ ->
            make_partsupp st ~partkey:(p + 1) ~suppkey:(Rng.int_range st.rng 1 st.n_supplier)))
      (List.init st.n_part (fun i -> i))
  in
  bulk_insert db "partsupp" partsupp;
  bulk_insert db "customer" (List.init st.n_customer (fun i -> make_customer st (i + 1)));
  let n_orders = Schema.scaled sf Schema.sf1_orders 100 in
  let orders = ref [] and lineitems = ref [] in
  for _ = 1 to n_orders do
    let key = st.next_orderkey in
    st.next_orderkey <- key + 1;
    push_live st key;
    let day = Rng.int_range st.rng 0 Data.max_order_day in
    orders := make_order st ~key ~status:(order_status st.rng) ~day :: !orders;
    lineitems := List.rev_append (lineitems_for st ~orderkey:key ~day) !lineitems
  done;
  bulk_insert db "orders" (List.rev !orders);
  bulk_insert db "lineitem" (List.rev !lineitems);
  st

let order_count st = n_live st
