(** dbgen: deterministic population of the TPC-H schema at a given
    scale factor, substituting for the TPC-H dbgen tool.  Also exposes
    the row builders and bulk-insert path the refresh functions reuse. *)

type state = {
  rng : Rng.t;
  sf : float;
  n_supplier : int;
  n_part : int;
  n_customer : int;
  mutable next_orderkey : int;
  mutable live : int array;
  mutable live_head : int;
  mutable live_tail : int;
}

(** Create all eight tables and populate them; returns the generator
    state driving the refresh functions.  Deterministic per [seed]. *)
val generate : ?seed:int -> Sqldb.Db.t -> sf:float -> state

(** Number of live (non-deleted) orders. *)
val order_count : state -> int

val live_orders : state -> int array

val push_live : state -> int -> unit

(** Remove and return the [count] lowest live order keys (dbgen RF2
    deletes from the low end). *)
val take_oldest_live : state -> int -> int array

(** {1 Row builders / loading (shared with Refresh)} *)

val make_order : state -> key:int -> status:string -> day:int -> Storage.Record.row

val lineitems_for : state -> orderkey:int -> day:int -> Storage.Record.row list

(** Insert rows into a table in batched transactions.
    @raise Invalid_argument on an unknown table. *)
val bulk_insert : Sqldb.Db.t -> string -> Storage.Record.row list -> unit

(** @raise Invalid_argument on an unknown table. *)
val find_table : Sqldb.Exec.env -> string -> Sqldb.Catalog.table
