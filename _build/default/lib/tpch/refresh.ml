(* TPC-H refresh functions.

   RF1 inserts a batch of new orders and their lineitems; RF2 deletes a
   batch of existing orders and their lineitems.  The paper's update
   workload drives these between snapshot declarations.  As in dbgen's
   refresh streams, RF2 deletes the lowest existing order keys: deletes
   are clustered on the oldest heap pages, freed pages are recycled by
   RF1's inserts, and the table is rewritten front-to-back — giving each
   update workload the well-defined overwrite cycle of §4 (UW30: ~50
   snapshots, UW15: ~100). *)

module R = Storage.Record
module Sq = Sqldb

(* RF1: insert [count] new orders with fresh keys.  New orders are open
   ('O'), with recent dates, as the refresh stream produces. *)
let rf1 st db ~count =
  let orders = ref [] and lineitems = ref [] in
  for _ = 1 to count do
    let key = st.Dbgen.next_orderkey in
    st.Dbgen.next_orderkey <- key + 1;
    Dbgen.push_live st key;
    let day = Rng.int_range st.Dbgen.rng (Data.max_order_day - 200) Data.max_order_day in
    orders := Dbgen.make_order st ~key ~status:"O" ~day :: !orders;
    lineitems := List.rev_append (Dbgen.lineitems_for st ~orderkey:key ~day) !lineitems
  done;
  Dbgen.bulk_insert db "orders" (List.rev !orders);
  Dbgen.bulk_insert db "lineitem" (List.rev !lineitems);
  count

(* Delete all rows of [table] whose [keycol] is in [keys], maintaining
   any indexes; one scan, one transaction. *)
let delete_by_key db ~table ~keycol keys =
  let env = Sq.Exec.current_env db in
  let tbl = Dbgen.find_table env table in
  let kpos = Sq.Exec.col_pos tbl keycol in
  let keyset = Hashtbl.create (Array.length keys) in
  Array.iter (fun k -> Hashtbl.replace keyset k ()) keys;
  let victims = ref [] in
  Sq.Exec.scan_heap env tbl ~f:(fun rid row ->
      match row.(kpos) with
      | R.Int k when Hashtbl.mem keyset k -> victims := (rid, row) :: !victims
      | _ -> ());
  Sq.Db.with_write_txn db (fun txn -> Sq.Exec.delete_rows env txn tbl !victims)

(* RF2: delete the [count] oldest live orders and their lineitems. *)
let rf2 st db ~count =
  let keys = Dbgen.take_oldest_live st count in
  let deleted_orders = delete_by_key db ~table:"orders" ~keycol:"o_orderkey" keys in
  let _deleted_items = delete_by_key db ~table:"lineitem" ~keycol:"l_orderkey" keys in
  deleted_orders
