(** TPC-H refresh functions (the paper's update-workload building
    blocks).  RF1 inserts new orders and their lineitems with fresh
    keys; RF2 deletes the lowest existing order keys and their
    lineitems — dbgen's deletion pattern, which gives each update
    workload its clustered page touches and well-defined overwrite
    cycle (§4). *)

(** Insert [count] new open orders (recent dates) and their lineitems;
    returns [count]. *)
val rf1 : Dbgen.state -> Sqldb.Db.t -> count:int -> int

(** Delete all rows of [table] whose [keycol] is in [keys] in one scan
    and one transaction, maintaining indexes; returns rows deleted. *)
val delete_by_key : Sqldb.Db.t -> table:string -> keycol:string -> int array -> int

(** Delete the [count] oldest live orders and their lineitems; returns
    orders deleted. *)
val rf2 : Dbgen.state -> Sqldb.Db.t -> count:int -> int
