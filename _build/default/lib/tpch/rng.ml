(* Deterministic pseudo-random generator (splitmix64) so that data
   generation and refresh streams are reproducible across runs — dbgen's
   property that makes experiments repeatable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range";
  let span = hi - lo + 1 in
  (* mask to 62 bits so the value fits OCaml's 63-bit int non-negatively *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  lo + (r mod span)

let float_range t lo hi =
  let r = Int64.to_float (Int64.logand (next_int64 t) 0xFFFFFFFFFFFFFL) /. 4503599627370496. in
  lo +. (r *. (hi -. lo))

let pick t arr = arr.(int_range t 0 (Array.length arr - 1))

(* Fisher-Yates sample of [k] distinct elements from [arr]. *)
let sample t arr k =
  let n = Array.length arr in
  let k = min k n in
  let a = Array.copy arr in
  for i = 0 to k - 1 do
    let j = int_range t i (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k
