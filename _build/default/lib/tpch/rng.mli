(** Deterministic pseudo-random generator (splitmix64): data generation
    and refresh streams are reproducible per seed, as with dbgen. *)

type t

val create : int -> t

val next_int64 : t -> int64

(** Uniform int in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)
val int_range : t -> int -> int -> int

val float_range : t -> float -> float -> float

val pick : t -> 'a array -> 'a

(** [k] distinct elements, Fisher-Yates style. *)
val sample : t -> 'a array -> int -> 'a array
