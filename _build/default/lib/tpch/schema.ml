(* TPC-H schema DDL (all eight tables, full column sets).  As in the
   paper's setup, the initial database is created without additional
   indices; experiments add native indexes explicitly where evaluated. *)

let ddl =
  [ "CREATE TABLE region (r_regionkey INTEGER, r_name TEXT, r_comment TEXT)";
    "CREATE TABLE nation (n_nationkey INTEGER, n_name TEXT, n_regionkey INTEGER, \
     n_comment TEXT)";
    "CREATE TABLE supplier (s_suppkey INTEGER, s_name TEXT, s_address TEXT, \
     s_nationkey INTEGER, s_phone TEXT, s_acctbal REAL, s_comment TEXT)";
    "CREATE TABLE part (p_partkey INTEGER, p_name TEXT, p_mfgr TEXT, p_brand TEXT, \
     p_type TEXT, p_size INTEGER, p_container TEXT, p_retailprice REAL, p_comment TEXT)";
    "CREATE TABLE partsupp (ps_partkey INTEGER, ps_suppkey INTEGER, ps_availqty INTEGER, \
     ps_supplycost REAL, ps_comment TEXT)";
    "CREATE TABLE customer (c_custkey INTEGER, c_name TEXT, c_address TEXT, \
     c_nationkey INTEGER, c_phone TEXT, c_acctbal REAL, c_mktsegment TEXT, c_comment TEXT)";
    "CREATE TABLE orders (o_orderkey INTEGER, o_custkey INTEGER, o_orderstatus TEXT, \
     o_totalprice REAL, o_orderdate TEXT, o_orderpriority TEXT, o_clerk TEXT, \
     o_shippriority INTEGER, o_comment TEXT)";
    "CREATE TABLE lineitem (l_orderkey INTEGER, l_partkey INTEGER, l_suppkey INTEGER, \
     l_linenumber INTEGER, l_quantity INTEGER, l_extendedprice REAL, l_discount REAL, \
     l_tax REAL, l_returnflag TEXT, l_linestatus TEXT, l_shipdate TEXT, l_commitdate TEXT, \
     l_receiptdate TEXT, l_shipinstruct TEXT, l_shipmode TEXT, l_comment TEXT)" ]

(* Row counts at scale factor 1, per the TPC-H specification.  Scaled
   counts are rounded and floored at small minimums so tiny scale
   factors stay usable. *)
let sf1_supplier = 10_000
let sf1_part = 200_000
let sf1_customer = 150_000
let sf1_orders = 1_500_000

let scaled sf base minimum = max minimum (int_of_float (Float.round (float_of_int base *. sf)))
