(* TPC-H queries runnable on this engine.

   The paper's evaluation uses custom queries because full TPC-H queries
   are CPU-bound and blur the costs under study (§5); still, a credible
   TPC-H substrate should run the benchmark's own queries.  This module
   carries the subset expressible in the engine's dialect, parameterized
   the way dbgen's qgen does.  Each is an ordinary SELECT, so each also
   runs AS OF any snapshot and inside RQL mechanisms. *)

(* Q1: pricing summary report.  [delta] days before the last shipdate
   (qgen default 90); dates are ISO text so plain comparison works. *)
let q1 ?(date = "1998-09-02") () =
  Printf.sprintf
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
     SUM(l_extendedprice) AS sum_base_price, SUM(l_extendedprice * (1 - l_discount)) AS \
     sum_disc_price, SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
     AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, AVG(l_discount) AS \
     avg_disc, COUNT(*) AS count_order FROM lineitem WHERE l_shipdate <= '%s' GROUP BY \
     l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"
    date

(* Q3: shipping priority — top unshipped orders for a market segment. *)
let q3 ?(segment = "BUILDING") ?(date = "1995-03-15") () =
  Printf.sprintf
    "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, o_orderdate, \
     o_shippriority FROM customer, orders, lineitem WHERE c_mktsegment = '%s' AND c_custkey \
     = o_custkey AND l_orderkey = o_orderkey AND o_orderdate < '%s' AND l_shipdate > '%s' \
     GROUP BY l_orderkey, o_orderdate, o_shippriority ORDER BY revenue DESC, o_orderdate \
     LIMIT 10"
    segment date date

(* Q4: order priority checking (rewritten without EXISTS-correlation:
   join + distinct orderkey). *)
let q4 ?(date_lo = "1993-07-01") ?(date_hi = "1993-10-01") () =
  Printf.sprintf
    "SELECT o_orderpriority, COUNT(DISTINCT o_orderkey) AS order_count FROM orders, \
     lineitem WHERE o_orderkey = l_orderkey AND o_orderdate >= '%s' AND o_orderdate < '%s' \
     AND l_commitdate < l_receiptdate GROUP BY o_orderpriority ORDER BY o_orderpriority"
    date_lo date_hi

(* Q5: local supplier volume within a region. *)
let q5 ?(region = "ASIA") ?(date_lo = "1994-01-01") ?(date_hi = "1995-01-01") () =
  Printf.sprintf
    "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM customer, \
     orders, lineitem, supplier, nation, region WHERE c_custkey = o_custkey AND l_orderkey \
     = o_orderkey AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey AND s_nationkey = \
     n_nationkey AND n_regionkey = r_regionkey AND r_name = '%s' AND o_orderdate >= '%s' \
     AND o_orderdate < '%s' GROUP BY n_name ORDER BY revenue DESC"
    region date_lo date_hi

(* Q6: forecasting revenue change — a pure range scan. *)
let q6 ?(date_lo = "1994-01-01") ?(date_hi = "1995-01-01") ?(discount = 0.06)
    ?(quantity = 24) () =
  Printf.sprintf
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE l_shipdate >= \
     '%s' AND l_shipdate < '%s' AND l_discount BETWEEN %g AND %g AND l_quantity < %d"
    date_lo date_hi (discount -. 0.01) (discount +. 0.01) quantity

(* Q10: returned-item reporting. *)
let q10 ?(date_lo = "1993-10-01") ?(date_hi = "1994-01-01") () =
  Printf.sprintf
    "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
     c_acctbal, n_name, c_address, c_phone, c_comment FROM customer, orders, lineitem, \
     nation WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND o_orderdate >= '%s' \
     AND o_orderdate < '%s' AND l_returnflag = 'R' AND c_nationkey = n_nationkey GROUP BY \
     c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment ORDER BY revenue \
     DESC LIMIT 20"
    date_lo date_hi

(* Q12: shipping modes and order priority. *)
let q12 ?(mode1 = "MAIL") ?(mode2 = "SHIP") ?(date_lo = "1994-01-01")
    ?(date_hi = "1995-01-01") () =
  Printf.sprintf
    "SELECT l_shipmode, SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = \
     '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, SUM(CASE WHEN o_orderpriority <> \
     '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count FROM \
     orders, lineitem WHERE o_orderkey = l_orderkey AND l_shipmode IN ('%s', '%s') AND \
     l_commitdate < l_receiptdate AND l_shipdate < l_commitdate AND l_receiptdate >= '%s' \
     AND l_receiptdate < '%s' GROUP BY l_shipmode ORDER BY l_shipmode"
    mode1 mode2 date_lo date_hi

(* Q14: promotion effect. *)
let q14 ?(date_lo = "1995-09-01") ?(date_hi = "1995-10-01") () =
  Printf.sprintf
    "SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%%' THEN l_extendedprice * (1 - \
     l_discount) ELSE 0 END) / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
     FROM lineitem, part WHERE l_partkey = p_partkey AND l_shipdate >= '%s' AND l_shipdate \
     < '%s'"
    date_lo date_hi

(* Q19 (simplified to one branch): discounted revenue for quantity and
   container classes. *)
let q19 ?(brand = "Brand#12") ?(quantity = 10) () =
  Printf.sprintf
    "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM lineitem, part WHERE \
     p_partkey = l_partkey AND p_brand = '%s' AND l_quantity >= %d AND l_quantity <= %d AND \
     p_size BETWEEN 1 AND 15"
    brand quantity (quantity + 10)

(* All queries with their ids, at default (qgen-style) parameters. *)
let all =
  [ ("Q1", q1 ());
    ("Q3", q3 ());
    ("Q4", q4 ());
    ("Q5", q5 ());
    ("Q6", q6 ());
    ("Q10", q10 ());
    ("Q12", q12 ());
    ("Q14", q14 ());
    ("Q19", q19 ()) ]
