(* Update workloads: the paper's UW families (Table 1).

   Between two consecutive snapshot declarations, a constant number of
   orders (and their lineitems) are deleted and inserted.  UW15 deletes
   and inserts 15K orders per snapshot at SF 1 (1% of the order
   population); the family scales with the scale factor so the
   diff(S1,S2)-to-database ratio — what the experiments actually measure
   — is preserved.  UW30's overwrite cycle is ~50 snapshots, UW15's
   ~100, as in §4 of the paper. *)

type uw = {
  uname : string;
  fraction : float; (* of the SF1 order population, per snapshot *)
}

let uw7_5 = { uname = "UW7.5"; fraction = 0.005 }
let uw15 = { uname = "UW15"; fraction = 0.01 }
let uw30 = { uname = "UW30"; fraction = 0.02 }
let uw60 = { uname = "UW60"; fraction = 0.04 }

let of_name = function
  | "UW7.5" -> uw7_5
  | "UW15" -> uw15
  | "UW30" -> uw30
  | "UW60" -> uw60
  | s -> invalid_arg ("Workload.of_name: " ^ s)

let orders_per_snapshot uw ~sf =
  max 1 (int_of_float (Float.round (uw.fraction *. float_of_int Schema.sf1_orders *. sf)))

(* Expected overwrite-cycle length (snapshots until the whole order
   population has been rewritten): 1/fraction. *)
let overwrite_cycle uw = int_of_float (Float.round (1. /. uw.fraction))

(* Run the update workload: [snapshots] rounds of (RF2 delete; RF1
   insert; COMMIT WITH SNAPSHOT), recording each snapshot in SnapIds.
   Returns the declared snapshot ids in order. *)
let run (ctx : Rql.ctx) st ~uw ~snapshots =
  let count = orders_per_snapshot uw ~sf:st.Dbgen.sf in
  let sids = ref [] in
  for i = 1 to snapshots do
    ignore (Refresh.rf2 st ctx.Rql.data ~count);
    ignore (Refresh.rf1 st ctx.Rql.data ~count);
    let name = Printf.sprintf "%s-%d" uw.uname i in
    sids := Rql.declare_snapshot ~name ctx :: !sids
  done;
  List.rev !sids

(* Build a complete experiment fixture: fresh ctx, TPC-H data at [sf],
   then [snapshots] rounds of [uw].  This is the setup phase shared by
   the §5 experiments. *)
let build_history ?(seed = 42) ~sf ~uw ~snapshots () =
  let ctx = Rql.create () in
  let st = Dbgen.generate ~seed ctx.Rql.data ~sf in
  let sids = run ctx st ~uw ~snapshots in
  (ctx, st, sids)
