(** Update workloads: the paper's UW families (Table 1).

    Between consecutive snapshot declarations a constant number of
    orders (and their lineitems) is deleted and inserted.  The family is
    defined as a fraction of the SF1 order population so the
    diff(S1,S2)-to-database ratio the experiments measure is preserved
    across scale factors: UW15 = 1% (overwrite cycle ≈ 100 snapshots),
    UW30 = 2% (≈ 50), as in §4. *)

type uw = {
  uname : string;
  fraction : float; (** of the SF1 order population, per snapshot *)
}

val uw7_5 : uw
val uw15 : uw
val uw30 : uw
val uw60 : uw

(** @raise Invalid_argument on an unknown name. *)
val of_name : string -> uw

val orders_per_snapshot : uw -> sf:float -> int

(** Expected overwrite-cycle length in snapshots (1 / fraction). *)
val overwrite_cycle : uw -> int

(** Run [snapshots] rounds of (RF2; RF1; COMMIT WITH SNAPSHOT),
    recording each snapshot in SnapIds; returns the snapshot ids. *)
val run : Rql.ctx -> Dbgen.state -> uw:uw -> snapshots:int -> int list

(** Fresh context + TPC-H at [sf] + [snapshots] rounds of [uw]: the
    setup phase shared by the §5 experiments. *)
val build_history :
  ?seed:int -> sf:float -> uw:uw -> snapshots:int -> unit ->
  Rql.ctx * Dbgen.state * int list
