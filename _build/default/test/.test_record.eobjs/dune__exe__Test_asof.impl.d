test/test_asof.ml: Alcotest Array List Printf Sqldb Storage
