test/test_asof.mli:
