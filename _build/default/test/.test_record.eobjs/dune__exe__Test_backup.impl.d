test/test_backup.ml: Alcotest Filename Rql Sqldb Storage Sys
