test/test_backup.mli:
