test/test_btree.ml: Alcotest Array List Printf QCheck QCheck_alcotest Storage
