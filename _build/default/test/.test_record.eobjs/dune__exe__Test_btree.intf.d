test/test_btree.mli:
