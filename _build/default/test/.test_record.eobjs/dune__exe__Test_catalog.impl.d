test/test_catalog.ml: Alcotest Array List Printf Retro Sqldb Storage
