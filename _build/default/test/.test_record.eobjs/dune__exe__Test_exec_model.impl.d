test/test_exec_model.ml: Alcotest Hashtbl List Option Printf QCheck QCheck_alcotest Sqldb Storage
