test/test_exec_model.mli:
