test/test_expr.ml: Alcotest Printf QCheck QCheck_alcotest Sqldb Storage
