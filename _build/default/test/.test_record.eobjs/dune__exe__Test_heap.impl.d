test/test_heap.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Storage String
