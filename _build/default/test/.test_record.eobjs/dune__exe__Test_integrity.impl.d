test/test_integrity.ml: Alcotest Filename Option Printf QCheck QCheck_alcotest Random Rql Sqldb Storage Sys Tpch
