test/test_integrity.mli:
