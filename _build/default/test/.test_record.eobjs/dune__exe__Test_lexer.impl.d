test/test_lexer.ml: Alcotest Fmt Sqldb
