test/test_lexer.mli:
