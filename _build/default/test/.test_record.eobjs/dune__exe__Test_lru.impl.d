test/test_lru.ml: Alcotest List QCheck QCheck_alcotest Storage
