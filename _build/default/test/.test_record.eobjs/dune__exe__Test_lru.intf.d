test/test_lru.mli:
