test/test_monoid.ml: Alcotest Float List QCheck QCheck_alcotest Rql Storage String
