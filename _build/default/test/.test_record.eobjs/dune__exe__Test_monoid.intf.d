test/test_monoid.mli:
