test/test_page.ml: Alcotest Hashtbl List Option Printf QCheck QCheck_alcotest Storage String
