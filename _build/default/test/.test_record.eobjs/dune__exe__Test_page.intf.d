test/test_page.mli:
