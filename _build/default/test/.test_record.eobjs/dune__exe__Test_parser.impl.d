test/test_parser.ml: Alcotest List Option Sqldb Storage
