test/test_record.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Storage String
