test/test_record.mli:
