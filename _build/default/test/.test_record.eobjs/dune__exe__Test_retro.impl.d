test/test_retro.ml: Alcotest Char Hashtbl List Printf QCheck QCheck_alcotest Random Retro Storage String
