test/test_retro.mli:
