test/test_rewrite.ml: Alcotest List Option Rql Sqldb
