test/test_robustness.ml: Alcotest List Printf Queue Rql Sqldb Storage String
