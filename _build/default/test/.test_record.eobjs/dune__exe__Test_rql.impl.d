test/test_rql.ml: Alcotest Array List Printf QCheck QCheck_alcotest Random Rql Sqldb Storage
