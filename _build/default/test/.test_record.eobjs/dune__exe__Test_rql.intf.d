test/test_rql.mli:
