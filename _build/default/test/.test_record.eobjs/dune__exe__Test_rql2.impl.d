test/test_rql2.ml: Alcotest Array Float List Printf Retro Rql Sqldb Storage Tpch
