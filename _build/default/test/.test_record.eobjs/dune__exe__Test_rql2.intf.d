test/test_rql2.mli:
