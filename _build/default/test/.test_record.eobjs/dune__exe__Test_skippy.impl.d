test/test_skippy.ml: Alcotest Hashtbl List Printf Retro Storage String
