test/test_skippy.mli:
