test/test_sql.ml: Alcotest Array Hashtbl List Option Printf QCheck QCheck_alcotest Sqldb Storage
