test/test_sql2.ml: Alcotest Array List Sqldb Storage
