test/test_sql2.mli:
