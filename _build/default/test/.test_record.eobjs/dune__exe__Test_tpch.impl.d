test/test_tpch.ml: Alcotest List Printf Rql Sqldb Storage Tpch
