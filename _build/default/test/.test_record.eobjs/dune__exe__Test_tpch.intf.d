test/test_tpch.mli:
