test/test_tpch_queries.ml: Alcotest Array Float Hashtbl Lazy List Option Printf Rql Sqldb Storage Tpch
