test/test_tpch_queries.mli:
