test/test_txn.ml: Alcotest List Storage
