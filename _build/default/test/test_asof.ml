(* AS OF (snapshot query) tests through the SQL engine: historical reads,
   schema evolution across snapshots, snapshotted indexes, interleaving
   with updates, and the paper's Figure 1-3 walkthrough. *)

module R = Storage.Record
module E = Sqldb.Engine

let value = Alcotest.testable R.pp_value R.equal_value
let row = Alcotest.(list value)

let rows_of res = List.map Array.to_list res.E.rows

let snap db =
  match (E.exec db "COMMIT WITH SNAPSHOT").E.snapshot with
  | Some sid -> sid
  | None -> Alcotest.fail "expected a snapshot id"

let tests =
  [ Alcotest.test_case "paper figure 1-3 walkthrough" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)");
        ignore
          (E.exec db
             "INSERT INTO LoggedIn VALUES ('UserA','2008-11-09 13:23:44','USA'), \
              ('UserB','2008-11-09 15:45:21','UK'), ('UserC','2008-11-09 15:45:21','USA')");
        let s1 = snap db in
        ignore (E.exec db "BEGIN");
        ignore (E.exec db "DELETE FROM LoggedIn WHERE l_userid = 'UserA'");
        let s2 = snap db in
        ignore (E.exec db "BEGIN");
        ignore
          (E.exec db
             "INSERT INTO LoggedIn (l_userid, l_time, l_country) VALUES ('UserD','2008-11-11 \
              10:08:04','UK')");
        let s3 = snap db in
        Alcotest.(check (list int)) "snapshot ids" [ 1; 2; 3 ] [ s1; s2; s3 ];
        let users sid =
          rows_of
            (E.exec db (Printf.sprintf "SELECT AS OF %d l_userid FROM LoggedIn ORDER BY l_userid" sid))
        in
        Alcotest.(check (list row)) "S1"
          [ [ R.Text "UserA" ]; [ R.Text "UserB" ]; [ R.Text "UserC" ] ]
          (users 1);
        (* snapshot 2 reflects the declaring transaction's delete *)
        Alcotest.(check (list row)) "S2" [ [ R.Text "UserB" ]; [ R.Text "UserC" ] ] (users 2);
        Alcotest.(check (list row)) "S3"
          [ [ R.Text "UserB" ]; [ R.Text "UserC" ]; [ R.Text "UserD" ] ]
          (users 3));
    Alcotest.test_case "as-of aggregation and joins" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (g TEXT, v INTEGER)");
        ignore (E.exec db "INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 3)");
        let s1 = snap db in
        ignore (E.exec db "UPDATE t SET v = v * 10");
        Alcotest.(check value) "historical sum" (R.Int 3)
          (E.scalar db (Printf.sprintf "SELECT AS OF %d SUM(v) FROM t WHERE g = 'a'" s1));
        Alcotest.(check value) "current sum" (R.Int 30)
          (E.scalar db "SELECT SUM(v) FROM t WHERE g = 'a'"));
    Alcotest.test_case "schema as of snapshot: later table invisible" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE early (x INTEGER)");
        ignore (E.exec db "INSERT INTO early VALUES (1)");
        let s1 = snap db in
        ignore (E.exec db "CREATE TABLE late (y INTEGER)");
        ignore (E.exec db "INSERT INTO late VALUES (2)");
        Alcotest.(check value) "early visible as-of s1" (R.Int 1)
          (E.scalar db (Printf.sprintf "SELECT AS OF %d COUNT(*) FROM early" s1));
        Alcotest.(check bool) "late invisible as-of s1" true
          (try
             ignore (E.exec db (Printf.sprintf "SELECT AS OF %d COUNT(*) FROM late" s1));
             false
           with E.Error _ -> true);
        Alcotest.(check value) "late visible now" (R.Int 1) (E.scalar db "SELECT COUNT(*) FROM late"));
    Alcotest.test_case "dropped table still visible in old snapshot" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE doomed (x INTEGER)");
        ignore (E.exec db "INSERT INTO doomed VALUES (7)");
        let s1 = snap db in
        ignore (E.exec db "DROP TABLE doomed");
        Alcotest.(check value) "historical read" (R.Int 7)
          (E.scalar db (Printf.sprintf "SELECT AS OF %d x FROM doomed" s1)));
    Alcotest.test_case "index as of snapshot serves historical entries" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (k INTEGER, v TEXT)");
        ignore (E.exec db "CREATE INDEX ik ON t (k)");
        for i = 1 to 200 do
          ignore (E.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'v%d')" i i))
        done;
        let s1 = snap db in
        ignore (E.exec db "DELETE FROM t WHERE k <= 100");
        (* the WHERE k = 50 plan uses the index; as-of it must see the
           historical entry *)
        Alcotest.(check value) "historical index hit" (R.Text "v50")
          (E.scalar db (Printf.sprintf "SELECT AS OF %d v FROM t WHERE k = 50" s1));
        Alcotest.(check int) "current index miss" 0
          (E.int_scalar db "SELECT COUNT(*) FROM t WHERE k = 50"));
    Alcotest.test_case "many snapshots, point lookups at each" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE c (n INTEGER)");
        ignore (E.exec db "INSERT INTO c VALUES (0)");
        let sids =
          List.init 20 (fun i ->
              ignore (E.exec db (Printf.sprintf "UPDATE c SET n = %d" (i + 1)));
              snap db)
        in
        List.iteri
          (fun i sid ->
            Alcotest.(check value)
              (Printf.sprintf "as of %d" sid)
              (R.Int (i + 1))
              (E.scalar db (Printf.sprintf "SELECT AS OF %d n FROM c" sid)))
          sids);
    Alcotest.test_case "as-of rejects unknown and future snapshots" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (x INTEGER)");
        let _s1 = snap db in
        List.iter
          (fun sid ->
            Alcotest.(check bool)
              (Printf.sprintf "sid %d" sid)
              true
              (try
                 ignore (E.exec db (Printf.sprintf "SELECT AS OF %d * FROM t" sid));
                 false
               with E.Error _ -> true))
          [ 0; 2; -1; 99 ]);
    Alcotest.test_case "snapshot query does not block later updates" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (x INTEGER)");
        ignore (E.exec db "INSERT INTO t VALUES (1)");
        let s1 = snap db in
        (* interleave: snapshot read, update, snapshot read again *)
        Alcotest.(check value) "read 1" (R.Int 1)
          (E.scalar db (Printf.sprintf "SELECT AS OF %d x FROM t" s1));
        ignore (E.exec db "UPDATE t SET x = 2");
        Alcotest.(check value) "read 2 unchanged" (R.Int 1)
          (E.scalar db (Printf.sprintf "SELECT AS OF %d x FROM t" s1));
        Alcotest.(check value) "current" (R.Int 2) (E.scalar db "SELECT x FROM t"));
    Alcotest.test_case "snapshot outside transaction captures committed state" `Quick
      (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (x INTEGER)");
        ignore (E.exec db "INSERT INTO t VALUES (42)");
        let s = snap db in
        ignore (E.exec db "DELETE FROM t");
        Alcotest.(check value) "captured" (R.Int 42)
          (E.scalar db (Printf.sprintf "SELECT AS OF %d x FROM t" s)));
    Alcotest.test_case "non-snapshot database rejects AS OF" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "CREATE TABLE t (x INTEGER)");
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "SELECT AS OF 1 * FROM t");
             false
           with E.Error _ -> true)) ]

let () = Alcotest.run "asof" [ ("asof", tests) ]
