(* B+tree tests: ordering, duplicates, splits (incl. root), range scans,
   deletion, and a model-based property against a sorted map. *)

module B = Storage.Btree
module T = Storage.Txn
module P = Storage.Pager
module R = Storage.Record

let with_tree f =
  let pager = P.create () in
  let tree = T.with_txn pager (fun txn -> B.create txn) in
  f pager tree

let k i = [| R.Int i |]
let ks s = [| R.Text s |]

let collect_all pager tree =
  let out = ref [] in
  B.iter_all (P.read pager) tree ~f:(fun key rid -> out := (key, rid) :: !out);
  List.rev !out

let basic =
  [ Alcotest.test_case "insert and lookup" `Quick (fun () ->
        with_tree (fun pager t ->
            T.with_txn pager (fun txn -> B.insert txn t (k 5) 50);
            let hits = ref [] in
            B.lookup (P.read pager) t (k 5) ~f:(fun rid -> hits := rid :: !hits);
            Alcotest.(check (list int)) "hit" [ 50 ] !hits));
    Alcotest.test_case "lookup misses" `Quick (fun () ->
        with_tree (fun pager t ->
            T.with_txn pager (fun txn -> B.insert txn t (k 5) 50);
            let hits = ref [] in
            B.lookup (P.read pager) t (k 6) ~f:(fun rid -> hits := rid :: !hits);
            Alcotest.(check (list int)) "none" [] !hits));
    Alcotest.test_case "duplicates keep all rids" `Quick (fun () ->
        with_tree (fun pager t ->
            T.with_txn pager (fun txn ->
                B.insert txn t (k 7) 1;
                B.insert txn t (k 7) 2;
                B.insert txn t (k 7) 3);
            let hits = ref [] in
            B.lookup (P.read pager) t (k 7) ~f:(fun rid -> hits := rid :: !hits);
            Alcotest.(check (list int)) "all" [ 1; 2; 3 ] (List.sort compare !hits)));
    Alcotest.test_case "iteration is sorted after many inserts (splits)" `Quick (fun () ->
        with_tree (fun pager t ->
            let n = 5000 in
            T.with_txn pager (fun txn ->
                List.iter
                  (fun i -> B.insert txn t (k ((i * 7919) mod n)) i)
                  (List.init n (fun i -> i)));
            let keys = List.map (fun (key, _) -> key.(0)) (collect_all pager t) in
            let sorted = List.sort R.compare_value keys in
            Alcotest.(check int) "count" n (List.length keys);
            Alcotest.(check bool) "sorted" true (keys = sorted)));
    Alcotest.test_case "range scan bounds are inclusive" `Quick (fun () ->
        with_tree (fun pager t ->
            T.with_txn pager (fun txn ->
                for i = 1 to 100 do B.insert txn t (k i) i done);
            let out = ref [] in
            B.range (P.read pager) t ~lo:(k 10, min_int) ~hi:(k 13, max_int)
              ~f:(fun _ rid -> out := rid :: !out; true);
            Alcotest.(check (list int)) "range" [ 10; 11; 12; 13 ] (List.rev !out)));
    Alcotest.test_case "text keys order correctly across splits" `Quick (fun () ->
        with_tree (fun pager t ->
            let words = List.init 2000 (fun i -> Printf.sprintf "w%05d" ((i * 37) mod 2000)) in
            T.with_txn pager (fun txn ->
                List.iteri (fun i w -> B.insert txn t (ks w) i) words);
            let keys = List.map (fun (key, _) -> key.(0)) (collect_all pager t) in
            Alcotest.(check bool) "sorted" true (keys = List.sort R.compare_value keys)));
    Alcotest.test_case "delete removes exactly the entry" `Quick (fun () ->
        with_tree (fun pager t ->
            T.with_txn pager (fun txn ->
                B.insert txn t (k 1) 10;
                B.insert txn t (k 1) 11;
                B.insert txn t (k 2) 20);
            let ok = T.with_txn pager (fun txn -> B.delete txn t (k 1) 10) in
            Alcotest.(check bool) "deleted" true ok;
            let hits = ref [] in
            B.lookup (P.read pager) t (k 1) ~f:(fun rid -> hits := rid :: !hits);
            Alcotest.(check (list int)) "remaining" [ 11 ] !hits;
            Alcotest.(check bool) "delete missing fails" false
              (T.with_txn pager (fun txn -> B.delete txn t (k 1) 10))));
    Alcotest.test_case "multi-column composite keys" `Quick (fun () ->
        with_tree (fun pager t ->
            T.with_txn pager (fun txn ->
                B.insert txn t [| R.Text "a"; R.Int 2 |] 1;
                B.insert txn t [| R.Text "a"; R.Int 1 |] 2;
                B.insert txn t [| R.Text "b"; R.Int 0 |] 3);
            let out = collect_all pager t in
            Alcotest.(check (list int)) "order" [ 2; 1; 3 ] (List.map snd out)));
    Alcotest.test_case "page_count grows with content" `Quick (fun () ->
        with_tree (fun pager t ->
            T.with_txn pager (fun txn ->
                for i = 1 to 3000 do B.insert txn t (k i) i done);
            Alcotest.(check bool) "multiple pages" true (B.page_count (P.read pager) t > 3))) ]

(* Model-based property: inserts and deletes against a reference list. *)
type op = Ins of int * int | Del of int

let arb_ops =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l))
    QCheck.Gen.(
      list_size (int_bound 400)
        (frequency
           [ (4, map2 (fun k r -> Ins (k, r)) (int_bound 50) (int_bound 1_000_000));
             (1, map (fun i -> Del i) (int_bound 400)) ]))

let prop_model =
  QCheck.Test.make ~name:"btree matches sorted-multiset model" ~count:80 arb_ops (fun ops ->
      with_tree (fun pager t ->
          let model = ref [] in
          T.with_txn pager (fun txn ->
              List.iter
                (function
                  | Ins (key, rid) ->
                    B.insert txn t (k key) rid;
                    model := (key, rid) :: !model
                  | Del i -> (
                    match List.nth_opt !model (if !model = [] then 0 else i mod List.length !model) with
                    | Some (key, rid) ->
                      ignore (B.delete txn t (k key) rid);
                      model := List.filter (fun e -> e <> (key, rid)) !model
                    | None -> ()))
                ops);
          let expected = List.sort compare !model in
          let actual =
            List.map
              (fun (key, rid) ->
                match key.(0) with R.Int i -> (i, rid) | _ -> assert false)
              (collect_all pager t)
            |> List.sort compare
          in
          expected = actual))

let () =
  Alcotest.run "btree"
    [ ("basic", basic); ("properties", [ QCheck_alcotest.to_alcotest prop_model ]) ]
