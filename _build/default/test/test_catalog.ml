(* System-catalog tests: persistence on pages, round-trips, lookups,
   removal, and historical catalog reads through a snapshot context. *)

module C = Sqldb.Catalog
module T = Storage.Txn
module P = Storage.Pager

let with_db f =
  let pager = P.create () in
  T.with_txn pager (fun txn -> C.bootstrap txn);
  f pager

let mk_table ?(cols = [| ("a", "INTEGER"); ("b", "TEXT") |]) name heap =
  { C.tname = name; tcols = cols; theap = heap }

let tests =
  [ Alcotest.test_case "bootstrap occupies page zero" `Quick (fun () ->
        with_db (fun pager ->
            Alcotest.(check bool) "page 0 allocated" true (P.committed_exists pager 0)));
    Alcotest.test_case "table round-trip" `Quick (fun () ->
        with_db (fun pager ->
            T.with_txn pager (fun txn -> C.add_table txn (mk_table "users" 7));
            let cat = C.load (P.read pager) in
            match C.find_table cat "users" with
            | Some t ->
              Alcotest.(check string) "name" "users" t.C.tname;
              Alcotest.(check int) "heap" 7 t.C.theap;
              Alcotest.(check int) "cols" 2 (Array.length t.C.tcols);
              Alcotest.(check (pair string string)) "col0" ("a", "INTEGER") t.C.tcols.(0)
            | None -> Alcotest.fail "table not found"));
    Alcotest.test_case "lookups are case-insensitive" `Quick (fun () ->
        with_db (fun pager ->
            T.with_txn pager (fun txn -> C.add_table txn (mk_table "MiXeD" 3));
            let cat = C.load (P.read pager) in
            Alcotest.(check bool) "lower" true (C.find_table cat "mixed" <> None);
            Alcotest.(check bool) "upper" true (C.find_table cat "MIXED" <> None)));
    Alcotest.test_case "index round-trip and per-table listing" `Quick (fun () ->
        with_db (fun pager ->
            T.with_txn pager (fun txn ->
                C.add_table txn (mk_table "t1" 3);
                C.add_table txn (mk_table "t2" 4);
                C.add_index txn { C.iname = "i1"; itable = "t1"; icols = [ "a" ]; iroot = 9 };
                C.add_index txn { C.iname = "i2"; itable = "t1"; icols = [ "a"; "b" ]; iroot = 10 };
                C.add_index txn { C.iname = "i3"; itable = "t2"; icols = [ "b" ]; iroot = 11 });
            let cat = C.load (P.read pager) in
            (match C.find_index cat "i2" with
            | Some i ->
              Alcotest.(check (list string)) "cols" [ "a"; "b" ] i.C.icols;
              Alcotest.(check int) "root" 10 i.C.iroot
            | None -> Alcotest.fail "i2 missing");
            Alcotest.(check int) "t1 has two indexes" 2
              (List.length (C.indexes_of_table cat "t1"));
            Alcotest.(check int) "t2 has one" 1 (List.length (C.indexes_of_table cat "t2"))));
    Alcotest.test_case "removal deletes the catalog row" `Quick (fun () ->
        with_db (fun pager ->
            T.with_txn pager (fun txn ->
                C.add_table txn (mk_table "gone" 3);
                C.add_index txn { C.iname = "gi"; itable = "gone"; icols = [ "a" ]; iroot = 9 });
            let cat = C.load (P.read pager) in
            T.with_txn pager (fun txn ->
                Alcotest.(check bool) "table removed" true (C.remove_table cat txn "gone");
                Alcotest.(check bool) "index removed" true (C.remove_index cat txn "gi"));
            let cat = C.load (P.read pager) in
            Alcotest.(check bool) "table gone" true (C.find_table cat "gone" = None);
            Alcotest.(check bool) "index gone" true (C.find_index cat "gi" = None);
            T.with_txn pager (fun txn ->
                Alcotest.(check bool) "double remove is false" false
                  (C.remove_table cat txn "gone"))));
    Alcotest.test_case "table_names lists everything" `Quick (fun () ->
        with_db (fun pager ->
            T.with_txn pager (fun txn ->
                List.iter
                  (fun n -> C.add_table txn (mk_table n 3))
                  [ "alpha"; "beta"; "gamma" ]);
            let cat = C.load (P.read pager) in
            Alcotest.(check (list string)) "names" [ "alpha"; "beta"; "gamma" ]
              (List.sort compare (C.table_names cat))));
    Alcotest.test_case "many tables spill across catalog pages" `Quick (fun () ->
        with_db (fun pager ->
            T.with_txn pager (fun txn ->
                for i = 1 to 300 do
                  C.add_table txn
                    (mk_table (Printf.sprintf "table_with_a_rather_long_name_%03d" i) (i + 1))
                done);
            let cat = C.load (P.read pager) in
            Alcotest.(check int) "all present" 300 (List.length (C.table_names cat))));
    Alcotest.test_case "historical catalog via snapshot read" `Quick (fun () ->
        let pager = P.create () in
        let retro = Retro.attach pager in
        T.with_txn pager (fun txn -> C.bootstrap txn);
        T.with_txn pager (fun txn -> C.add_table txn (mk_table "early" 3));
        let s1 = Retro.declare retro in
        T.with_txn pager (fun txn -> C.add_table txn (mk_table "late" 4));
        let spt = Retro.build_spt retro s1 in
        let cat_then = C.load (Retro.read_ctx retro spt) in
        Alcotest.(check bool) "early visible" true (C.find_table cat_then "early" <> None);
        Alcotest.(check bool) "late invisible" true (C.find_table cat_then "late" = None);
        let cat_now = C.load (P.read pager) in
        Alcotest.(check bool) "late visible now" true (C.find_table cat_now "late" <> None)) ]

let () = Alcotest.run "catalog" [ ("catalog", tests) ]
