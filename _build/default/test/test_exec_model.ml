(* Differential property tests for the executor: random data and random
   query shapes are checked against straightforward OCaml models —
   filtering, projection, DISTINCT, ORDER BY + LIMIT/OFFSET, equi-joins
   and LEFT JOIN, with and without indexes (so both access paths are
   exercised against the same model). *)

module R = Storage.Record
module E = Sqldb.Engine

let gen_rows =
  QCheck.Gen.(
    list_size (int_bound 80)
      (pair (int_bound 12) (pair (int_bound 8) (string_size ~gen:(char_range 'a' 'e') (return 1)))))

let arb_rows =
  QCheck.make ~print:(fun l -> Printf.sprintf "<%d rows>" (List.length l)) gen_rows

let load ?(indexed = false) rows =
  let db = E.create ~snapshots:false () in
  ignore (E.exec db "CREATE TABLE m (a INTEGER, b INTEGER, c TEXT)");
  if indexed then ignore (E.exec db "CREATE INDEX ma ON m (a)");
  List.iter
    (fun (a, (b, c)) ->
      ignore (E.exec db (Printf.sprintf "INSERT INTO m VALUES (%d, %d, '%s')" a b c)))
    rows;
  db

let ints_of rows = List.map (fun r -> match r with [| R.Int i |] -> i | _ -> min_int) rows

(* WHERE + projection against List.filter, with and without an index on
   the filtered column. *)
let prop_where =
  QCheck.Test.make ~name:"WHERE matches model (seq scan and index scan)" ~count:50
    (QCheck.pair arb_rows (QCheck.int_bound 12))
    (fun (rows, k) ->
      let expected =
        List.filter (fun (a, (b, _)) -> a = k && b < 4) rows |> List.map (fun (_, (b, _)) -> b)
        |> List.sort compare
      in
      List.for_all
        (fun indexed ->
          let db = load ~indexed rows in
          let got =
            ints_of (E.exec db (Printf.sprintf "SELECT b FROM m WHERE a = %d AND b < 4" k)).E.rows
            |> List.sort compare
          in
          got = expected)
        [ false; true ])

(* ORDER BY multiple keys + LIMIT/OFFSET against List.sort. *)
let prop_order_limit =
  QCheck.Test.make ~name:"ORDER BY + LIMIT/OFFSET matches model" ~count:50
    (QCheck.triple arb_rows (QCheck.int_bound 10) (QCheck.int_bound 5))
    (fun (rows, limit, offset) ->
      let db = load rows in
      let got =
        (E.exec db
           (Printf.sprintf "SELECT a, b FROM m ORDER BY a DESC, b ASC LIMIT %d OFFSET %d"
              limit offset))
          .E.rows
        |> List.map (fun r -> match r with [| R.Int a; R.Int b |] -> (a, b) | _ -> (0, 0))
      in
      let sorted =
        List.sort
          (fun (a1, b1) (a2, b2) -> if a1 <> a2 then compare a2 a1 else compare b1 b2)
          (List.map (fun (a, (b, _)) -> (a, b)) rows)
      in
      let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
      let rec take n l =
        if n <= 0 then [] else match l with [] -> [] | h :: t -> h :: take (n - 1) t
      in
      got = take limit (drop offset sorted))

(* DISTINCT against a set model. *)
let prop_distinct =
  QCheck.Test.make ~name:"DISTINCT matches model" ~count:50 arb_rows (fun rows ->
      let db = load rows in
      let got = List.sort compare (ints_of (E.exec db "SELECT DISTINCT a FROM m").E.rows) in
      let expected = List.sort_uniq compare (List.map (fun (a, _) -> a) rows) in
      got = expected)

(* Equi-join against a nested-loop model, with and without an index on
   the inner join column. *)
let prop_join =
  QCheck.Test.make ~name:"equi-join matches model" ~count:40 (QCheck.pair arb_rows arb_rows)
    (fun (rows1, rows2) ->
      let expected =
        List.concat_map
          (fun (a1, (b1, _)) ->
            List.filter_map
              (fun (a2, (b2, _)) -> if a1 = a2 then Some (a1, b1, b2) else None)
              rows2)
          rows1
        |> List.sort compare
      in
      List.for_all
        (fun indexed ->
          let db = E.create ~snapshots:false () in
          ignore (E.exec db "CREATE TABLE l (a INTEGER, b INTEGER)");
          ignore (E.exec db "CREATE TABLE r (a INTEGER, b INTEGER)");
          if indexed then ignore (E.exec db "CREATE INDEX ra ON r (a)");
          List.iter
            (fun (a, (b, _)) ->
              ignore (E.exec db (Printf.sprintf "INSERT INTO l VALUES (%d, %d)" a b)))
            rows1;
          List.iter
            (fun (a, (b, _)) ->
              ignore (E.exec db (Printf.sprintf "INSERT INTO r VALUES (%d, %d)" a b)))
            rows2;
          let got =
            (E.exec db "SELECT l.a, l.b, r.b FROM l, r WHERE l.a = r.a").E.rows
            |> List.map (fun row ->
                   match row with
                   | [| R.Int a; R.Int b1; R.Int b2 |] -> (a, b1, b2)
                   | _ -> (min_int, 0, 0))
            |> List.sort compare
          in
          got = expected)
        [ false; true ])

(* LEFT JOIN against a model with null padding. *)
let prop_left_join =
  QCheck.Test.make ~name:"LEFT JOIN matches model" ~count:40 (QCheck.pair arb_rows arb_rows)
    (fun (rows1, rows2) ->
      let db = E.create ~snapshots:false () in
      ignore (E.exec db "CREATE TABLE l (a INTEGER)");
      ignore (E.exec db "CREATE TABLE r (a INTEGER, b INTEGER)");
      List.iter
        (fun (a, _) -> ignore (E.exec db (Printf.sprintf "INSERT INTO l VALUES (%d)" a)))
        rows1;
      List.iter
        (fun (a, (b, _)) ->
          ignore (E.exec db (Printf.sprintf "INSERT INTO r VALUES (%d, %d)" a b)))
        rows2;
      let expected =
        List.concat_map
          (fun (a1, _) ->
            let matches =
              List.filter_map
                (fun (a2, (b2, _)) -> if a1 = a2 then Some (a1, Some b2) else None)
                rows2
            in
            if matches = [] then [ (a1, None) ] else matches)
          rows1
        |> List.sort compare
      in
      let got =
        (E.exec db "SELECT l.a, r.b FROM l LEFT JOIN r ON l.a = r.a").E.rows
        |> List.map (fun row ->
               match row with
               | [| R.Int a; R.Int b |] -> (a, Some b)
               | [| R.Int a; R.Null |] -> (a, None)
               | _ -> (min_int, None))
        |> List.sort compare
      in
      got = expected)

(* Aggregates with HAVING against a model. *)
let prop_having =
  QCheck.Test.make ~name:"GROUP BY + HAVING matches model" ~count:40
    (QCheck.pair arb_rows (QCheck.int_range 1 5))
    (fun (rows, threshold) ->
      let db = load rows in
      let model = Hashtbl.create 8 in
      List.iter
        (fun (a, _) ->
          Hashtbl.replace model a (1 + Option.value (Hashtbl.find_opt model a) ~default:0))
        rows;
      let expected =
        Hashtbl.fold (fun a n acc -> if n >= threshold then (a, n) :: acc else acc) model []
        |> List.sort compare
      in
      let got =
        (E.exec db
           (Printf.sprintf
              "SELECT a, COUNT(*) AS n FROM m GROUP BY a HAVING n >= %d" threshold))
          .E.rows
        |> List.map (fun r -> match r with [| R.Int a; R.Int n |] -> (a, n) | _ -> (0, 0))
        |> List.sort compare
      in
      got = expected)

let () =
  Alcotest.run "exec-model"
    [ ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_where; prop_order_limit; prop_distinct; prop_join; prop_left_join;
            prop_having ] ) ]
