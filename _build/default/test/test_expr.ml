(* Expression evaluation tests: SQL three-valued logic, arithmetic and
   coercions, LIKE matching, CASE, and builtin scalar functions — driven
   through the engine so parsing is exercised too. *)

module R = Storage.Record
module E = Sqldb.Engine

let db = E.create ~snapshots:false ()

let value = Alcotest.testable R.pp_value R.equal_value

let check name sql expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.check value sql expected (E.scalar db ("SELECT " ^ sql)))

let arithmetic =
  [ check "int addition" "1 + 2" (R.Int 3);
    check "mixed promotes to real" "1 + 2.5" (R.Real 3.5);
    check "integer division truncates" "7 / 2" (R.Int 3);
    check "real division" "7.0 / 2" (R.Real 3.5);
    check "division by zero is NULL" "1 / 0" R.Null;
    check "real division by zero is NULL" "1.0 / 0.0" R.Null;
    check "modulo" "7 % 3" (R.Int 1);
    check "unary minus" "-(3 + 4)" (R.Int (-7));
    check "null propagates through arithmetic" "1 + NULL" R.Null;
    check "text coerces numerically" "'3' + 4" (R.Real 7.);
    check "concat" "'foo' || 'bar'" (R.Text "foobar");
    check "concat of number renders" "1 || 2" (R.Text "12");
    check "concat null is null" "'a' || NULL" R.Null ]

let logic =
  [ check "true and true" "1 AND 1" (R.Int 1);
    check "true and false" "1 AND 0" (R.Int 0);
    check "null and false is false" "NULL AND 0" (R.Int 0);
    check "null and true is null" "NULL AND 1" R.Null;
    check "null or true is true" "NULL OR 1" (R.Int 1);
    check "null or false is null" "NULL OR 0" R.Null;
    check "not null is null" "NOT NULL" R.Null;
    check "comparison with null is null" "1 = NULL" R.Null;
    check "is null" "NULL IS NULL" (R.Int 1);
    check "is not null" "3 IS NOT NULL" (R.Int 1);
    check "equality across numeric classes" "1 = 1.0" (R.Int 1);
    check "text compare" "'abc' < 'abd'" (R.Int 1);
    check "between" "5 BETWEEN 1 AND 10" (R.Int 1);
    check "not between" "5 NOT BETWEEN 1 AND 4" (R.Int 1);
    check "in list" "2 IN (1, 2, 3)" (R.Int 1);
    check "not in list" "9 NOT IN (1, 2, 3)" (R.Int 1);
    check "in with null candidate and no match" "9 IN (1, NULL)" R.Null;
    check "in with match beats null" "1 IN (1, NULL)" (R.Int 1) ]

let like =
  [ check "percent wildcard" "'hello' LIKE 'he%'" (R.Int 1);
    check "underscore wildcard" "'cat' LIKE 'c_t'" (R.Int 1);
    check "case insensitive" "'HELLO' LIKE 'hello'" (R.Int 1);
    check "no match" "'hello' LIKE 'x%'" (R.Int 0);
    check "not like" "'hello' NOT LIKE 'x%'" (R.Int 1);
    check "percent in middle" "'2008-11-09 13:23' LIKE '2008-11-09%'" (R.Int 1);
    check "empty pattern" "'' LIKE ''" (R.Int 1);
    check "pathological pattern terminates" "'aaaaaaaaaaaaaaaaaaaab' LIKE '%a%a%a%a%a%a%a%a%c'"
      (R.Int 0) ]

let case_and_functions =
  [ check "case first match wins" "CASE WHEN 1 THEN 'a' WHEN 1 THEN 'b' END" (R.Text "a");
    check "case else" "CASE WHEN 0 THEN 'a' ELSE 'b' END" (R.Text "b");
    check "case no match no else" "CASE WHEN 0 THEN 'a' END" R.Null;
    check "abs" "ABS(-4)" (R.Int 4);
    check "abs real" "ABS(-4.5)" (R.Real 4.5);
    check "length" "LENGTH('hello')" (R.Int 5);
    check "lower/upper" "LOWER('AbC') || UPPER('dEf')" (R.Text "abcDEF");
    check "substr" "SUBSTR('hello', 2, 3)" (R.Text "ell");
    check "substr negative start" "SUBSTR('hello', -3)" (R.Text "llo");
    check "coalesce" "COALESCE(NULL, NULL, 7, 8)" (R.Int 7);
    check "ifnull" "IFNULL(NULL, 'd')" (R.Text "d");
    check "nullif equal" "NULLIF(3, 3)" R.Null;
    check "nullif different" "NULLIF(3, 4)" (R.Int 3);
    check "typeof" "TYPEOF(3.5)" (R.Text "real");
    check "round" "ROUND(3.14159, 2)" (R.Real 3.14);
    check "scalar min/max" "MIN(3, 1, 2) + MAX(3, 1, 2)" (R.Int 4);
    check "instr" "INSTR('hello', 'll')" (R.Int 3);
    check "replace" "REPLACE('aXbXc', 'X', '-')" (R.Text "a-b-c") ]

let errors =
  [ Alcotest.test_case "unknown function" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "SELECT no_such_fn(1)");
             false
           with E.Error _ -> true));
    Alcotest.test_case "aggregate outside aggregation rejected in WHERE" `Quick (fun () ->
        ignore (E.exec db "CREATE TABLE IF NOT EXISTS te (x INTEGER)");
        ignore (E.exec db "INSERT INTO te VALUES (1)");
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "SELECT x FROM te WHERE COUNT(*) > 1");
             false
           with E.Error _ -> true)) ]

(* qcheck: 3VL laws via the evaluator *)
let tri = QCheck.Gen.oneofl [ Some true; Some false; None ]

let lit = function
  | Some true -> "1"
  | Some false -> "0"
  | None -> "NULL"

let prop_de_morgan =
  QCheck.Test.make ~name:"De Morgan under 3VL" ~count:50
    (QCheck.make QCheck.Gen.(pair tri tri))
    (fun (a, b) ->
      let q s = E.scalar db ("SELECT " ^ s) in
      q (Printf.sprintf "NOT (%s AND %s)" (lit a) (lit b))
      = q (Printf.sprintf "(NOT %s) OR (NOT %s)" (lit a) (lit b)))

let () =
  Alcotest.run "expr"
    [ ("arithmetic", arithmetic);
      ("logic", logic);
      ("like", like);
      ("case+functions", case_and_functions);
      ("errors", errors);
      ("properties", [ QCheck_alcotest.to_alcotest prop_de_morgan ]) ]
