(* Heap file tests: chain growth, rid stability, deletion-space reuse,
   updates that relocate, and a model-based property. *)

module H = Storage.Heap
module T = Storage.Txn
module P = Storage.Pager

let with_heap f =
  let pager = P.create () in
  let heap = T.with_txn pager (fun txn -> H.create txn) in
  f pager heap

let basic =
  [ Alcotest.test_case "insert then get" `Quick (fun () ->
        with_heap (fun pager h ->
            let rid = T.with_txn pager (fun txn -> H.insert txn h "hello") in
            Alcotest.(check (option string)) "get" (Some "hello") (H.get (P.read pager) h rid)));
    Alcotest.test_case "iter in insertion order within a page" `Quick (fun () ->
        with_heap (fun pager h ->
            T.with_txn pager (fun txn ->
                for i = 1 to 10 do ignore (H.insert txn h (Printf.sprintf "r%d" i)) done);
            let out = ref [] in
            H.iter (P.read pager) h ~f:(fun _ d -> out := d :: !out);
            Alcotest.(check (list string))
              "order"
              (List.init 10 (fun i -> Printf.sprintf "r%d" (i + 1)))
              (List.rev !out)));
    Alcotest.test_case "chain grows past one page" `Quick (fun () ->
        with_heap (fun pager h ->
            let data = String.make 1000 'x' in
            T.with_txn pager (fun txn ->
                for _ = 1 to 50 do ignore (H.insert txn h data) done);
            Alcotest.(check bool) "several pages" true (H.page_count (P.read pager) h > 5);
            Alcotest.(check int) "all rows" 50 (H.count (P.read pager) h)));
    Alcotest.test_case "delete removes row" `Quick (fun () ->
        with_heap (fun pager h ->
            let rid = T.with_txn pager (fun txn -> H.insert txn h "x") in
            T.with_txn pager (fun txn -> ignore (H.delete txn h rid));
            Alcotest.(check (option string)) "gone" None (H.get (P.read pager) h rid);
            Alcotest.(check int) "count" 0 (H.count (P.read pager) h)));
    Alcotest.test_case "deleted space is reused" `Quick (fun () ->
        with_heap (fun pager h ->
            let data = String.make 1000 'x' in
            let rids =
              T.with_txn pager (fun txn -> List.init 40 (fun _ -> H.insert txn h data))
            in
            let pages_before = H.page_count (P.read pager) h in
            T.with_txn pager (fun txn -> List.iter (fun r -> ignore (H.delete txn h r)) rids);
            T.with_txn pager (fun txn ->
                for _ = 1 to 40 do ignore (H.insert txn h data) done);
            let pages_after = H.page_count (P.read pager) h in
            Alcotest.(check bool) "no significant growth" true (pages_after <= pages_before + 1)));
    Alcotest.test_case "update in place keeps rid" `Quick (fun () ->
        with_heap (fun pager h ->
            let rid = T.with_txn pager (fun txn -> H.insert txn h "abcdef") in
            let res = T.with_txn pager (fun txn -> H.update txn h rid "ab") in
            Alcotest.(check bool) "same rid" true (res = `Same);
            Alcotest.(check (option string)) "value" (Some "ab") (H.get (P.read pager) h rid)));
    Alcotest.test_case "update that outgrows the page moves" `Quick (fun () ->
        with_heap (fun pager h ->
            (* fill the first page almost completely *)
            let rid0 = T.with_txn pager (fun txn -> H.insert txn h (String.make 100 'a')) in
            T.with_txn pager (fun txn ->
                for _ = 1 to 9 do ignore (H.insert txn h (String.make 400 'b')) done);
            let res =
              T.with_txn pager (fun txn -> H.update txn h rid0 (String.make 3000 'c'))
            in
            (match res with
            | `Moved rid' ->
              Alcotest.(check (option string)) "moved value" (Some (String.make 3000 'c'))
                (H.get (P.read pager) h rid')
            | `Same ->
              Alcotest.(check (option string)) "in-place value" (Some (String.make 3000 'c'))
                (H.get (P.read pager) h rid0));
            Alcotest.(check int) "row count stable" 10 (H.count (P.read pager) h)));
    Alcotest.test_case "iter_while stops early" `Quick (fun () ->
        with_heap (fun pager h ->
            T.with_txn pager (fun txn ->
                for i = 1 to 20 do ignore (H.insert txn h (string_of_int i)) done);
            let n = ref 0 in
            H.iter_while (P.read pager) h ~f:(fun _ _ ->
                incr n;
                !n < 5);
            Alcotest.(check int) "stopped at 5" 5 !n)) ]

(* Model-based: random inserts/deletes/updates tracked in a hashtable. *)
type op = Ins of string | Del of int | Upd of int * string

let gen_op =
  QCheck.Gen.(
    frequency
      [ (6, map (fun s -> Ins s) (string_size (int_range 1 300)));
        (3, map (fun i -> Del i) (int_bound 200));
        (2, map2 (fun i s -> Upd (i, s)) (int_bound 200) (string_size (int_range 1 300))) ])

let arb_ops =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l))
    QCheck.Gen.(list_size (int_bound 250) gen_op)

let prop_model =
  QCheck.Test.make ~name:"heap matches model" ~count:60 arb_ops (fun ops ->
      with_heap (fun pager h ->
          let model : (int, string) Hashtbl.t = Hashtbl.create 64 in
          let rids = ref [||] in
          let nth i = if Array.length !rids = 0 then None else Some !rids.(i mod Array.length !rids) in
          let add_rid r = rids := Array.append !rids [| r |] in
          T.with_txn pager (fun txn ->
              List.iter
                (function
                  | Ins s ->
                    let r = H.insert txn h s in
                    add_rid r;
                    Hashtbl.replace model r s
                  | Del i -> (
                    match nth i with
                    | Some r when Hashtbl.mem model r ->
                      ignore (H.delete txn h r);
                      Hashtbl.remove model r
                    | _ -> ())
                  | Upd (i, s) -> (
                    match nth i with
                    | Some r when Hashtbl.mem model r -> (
                      match H.update txn h r s with
                      | `Same -> Hashtbl.replace model r s
                      | `Moved r' ->
                        Hashtbl.remove model r;
                        Hashtbl.replace model r' s;
                        add_rid r')
                    | _ -> ()))
                ops);
          let read = P.read pager in
          let ok = ref (H.count read h = Hashtbl.length model) in
          Hashtbl.iter (fun r s -> if H.get read h r <> Some s then ok := false) model;
          !ok))

let () =
  Alcotest.run "heap"
    [ ("basic", basic); ("properties", [ QCheck_alcotest.to_alcotest prop_model ]) ]
