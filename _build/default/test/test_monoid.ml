(* Aggregate-algebra tests: the abelian-monoid laws the paper requires
   (associativity, commutativity, identity), first-occurrence semantics,
   AVG's (sum, count) special case, and rejection of non-monoid
   functions. *)

module M = Rql.Monoid
module R = Storage.Record

let value = Alcotest.testable R.pp_value R.equal_value

let basic =
  [ Alcotest.test_case "of_string accepts the paper's functions" `Quick (fun () ->
        Alcotest.(check bool) "min" true (M.of_string "MIN" = M.Min);
        Alcotest.(check bool) "max" true (M.of_string "max" = M.Max);
        Alcotest.(check bool) "sum" true (M.of_string " Sum " = M.Sum);
        Alcotest.(check bool) "count" true (M.of_string "count" = M.Count);
        Alcotest.(check bool) "avg" true (M.of_string "avg" = M.Avg));
    Alcotest.test_case "distinct aggregations rejected with guidance" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check bool) s true
              (try
                 ignore (M.of_string s);
                 false
               with M.Not_supported msg ->
                 (* the message points at the CollateData workaround *)
                 String.length msg > 0))
          [ "count distinct"; "sum distinct"; "count_distinct"; "sum_distinct"; "median" ]);
    Alcotest.test_case "avg is not a monoid; others are" `Quick (fun () ->
        Alcotest.(check bool) "avg" false (M.is_monoid M.Avg);
        List.iter (fun m -> Alcotest.(check bool) "monoid" true (M.is_monoid m))
          [ M.Min; M.Max; M.Sum; M.Count ]);
    Alcotest.test_case "count counts values, not their sum" `Quick (fun () ->
        let first = M.init M.Count (R.Int 999) in
        Alcotest.check value "first occurrence is 1" (R.Int 1) first;
        let second = M.combine M.Count first (R.Int 999) in
        Alcotest.check value "second is 2" (R.Int 2) second;
        Alcotest.check value "null does not count" (R.Int 2)
          (M.combine M.Count second R.Null));
    Alcotest.test_case "sum mixes int and real" `Quick (fun () ->
        Alcotest.check value "ints stay int" (R.Int 5)
          (M.combine M.Sum (R.Int 2) (R.Int 3));
        Alcotest.check value "mixed promotes" (R.Real 5.5)
          (M.combine M.Sum (R.Int 2) (R.Real 3.5)));
    Alcotest.test_case "min/max on text" `Quick (fun () ->
        Alcotest.check value "min" (R.Text "2008-11-09")
          (M.combine M.Min (R.Text "2008-11-10") (R.Text "2008-11-09"));
        Alcotest.check value "max" (R.Text "2008-11-10")
          (M.combine M.Max (R.Text "2008-11-10") (R.Text "2008-11-09")));
    Alcotest.test_case "avg state averages and merges" `Quick (fun () ->
        let st = M.avg_create () in
        Alcotest.check value "empty avg is null" R.Null (M.avg_current st);
        M.avg_step st (R.Int 1);
        M.avg_step st (R.Int 2);
        M.avg_step st R.Null;
        Alcotest.check value "avg skips null" (R.Real 1.5) (M.avg_current st);
        let st2 = M.avg_create () in
        M.avg_step st2 (R.Int 3);
        let merged = M.avg_merge st st2 in
        Alcotest.check value "merged avg" (R.Real 2.) (M.avg_current merged)) ]

(* --- monoid laws ------------------------------------------------------ *)

let gen_value =
  QCheck.Gen.(
    frequency
      [ (1, return R.Null);
        (5, map (fun i -> R.Int i) (int_range (-1000) 1000));
        (3, map (fun f -> R.Real (Float.round (f *. 100.) /. 100.)) (float_bound_inclusive 100.)) ])

let arb_value = QCheck.make ~print:R.value_to_string gen_value

let fns = [ M.Min; M.Max; M.Sum ]

(* Equality for combined values: numeric tolerance for float sums. *)
let veq a b =
  match (a, b) with
  | R.Real x, R.Real y -> Float.abs (x -. y) < 1e-9
  | R.Real x, R.Int y | R.Int y, R.Real x -> Float.abs (x -. float_of_int y) < 1e-9
  | _ -> R.equal_value a b

let prop_assoc =
  QCheck.Test.make ~name:"combine is associative" ~count:300
    (QCheck.triple arb_value arb_value arb_value)
    (fun (a, b, c) ->
      List.for_all
        (fun m ->
          veq
            (M.combine m (M.combine m a b) c)
            (M.combine m a (M.combine m b c)))
        fns)

let prop_comm =
  QCheck.Test.make ~name:"combine is commutative" ~count:300 (QCheck.pair arb_value arb_value)
    (fun (a, b) -> List.for_all (fun m -> veq (M.combine m a b) (M.combine m b a)) fns)

let prop_identity =
  QCheck.Test.make ~name:"identity element is neutral" ~count:300 arb_value (fun a ->
      (* NULL itself behaves as an identity (SQL aggregates skip NULL), so
         neutrality is only meaningful on non-null values *)
      a = R.Null
      || List.for_all
           (fun m ->
             veq (M.combine m (M.identity m) a) a && veq (M.combine m a (M.identity m)) a)
           fns)

(* count: combining a fold of n non-null values yields n *)
let prop_count =
  QCheck.Test.make ~name:"count equals number of non-null values" ~count:200
    (QCheck.list arb_value)
    (fun vs ->
      match vs with
      | [] -> true
      | v0 :: rest ->
        let folded = List.fold_left (M.combine M.Count) (M.init M.Count v0) rest in
        let expected = List.length (List.filter (fun v -> v <> R.Null) vs) in
        veq folded (R.Int expected))

(* avg equals the arithmetic mean of numeric inputs *)
let prop_avg =
  QCheck.Test.make ~name:"avg equals arithmetic mean" ~count:200 (QCheck.list arb_value)
    (fun vs ->
      let st = M.avg_create () in
      List.iter (fun v -> M.avg_step st v) vs;
      let nums =
        List.filter_map
          (function R.Int i -> Some (float_of_int i) | R.Real f -> Some f | _ -> None)
          vs
      in
      match nums with
      | [] -> M.avg_current st = R.Null
      | _ ->
        let mean = List.fold_left ( +. ) 0. nums /. float_of_int (List.length nums) in
        veq (M.avg_current st) (R.Real mean))

let () =
  Alcotest.run "monoid"
    [ ("basic", basic);
      ( "laws",
        List.map QCheck_alcotest.to_alcotest
          [ prop_assoc; prop_comm; prop_identity; prop_count; prop_avg ] ) ]
