(* Slotted-page tests: layout invariants, slot reuse, compaction, and a
   model-based property test against a plain association list. *)

module P = Storage.Page

let mk () = P.create P.Heap_page

let basic =
  [ Alcotest.test_case "fresh page" `Quick (fun () ->
        let p = mk () in
        Alcotest.(check int) "nslots" 0 (P.nslots p);
        Alcotest.(check int) "next" (-1) (P.next p);
        Alcotest.(check bool) "kind" true (P.kind p = P.Heap_page);
        Alcotest.(check int) "free" (P.size - P.header) (P.free_space p));
    Alcotest.test_case "insert then get" `Quick (fun () ->
        let p = mk () in
        let s = Option.get (P.insert p "hello") in
        Alcotest.(check (option string)) "get" (Some "hello") (P.get p s));
    Alcotest.test_case "multiple inserts keep distinct slots" `Quick (fun () ->
        let p = mk () in
        let slots = List.init 10 (fun i -> Option.get (P.insert p (Printf.sprintf "rec%d" i))) in
        List.iteri
          (fun i s ->
            Alcotest.(check (option string)) "get" (Some (Printf.sprintf "rec%d" i)) (P.get p s))
          slots);
    Alcotest.test_case "delete frees the slot" `Quick (fun () ->
        let p = mk () in
        let s = Option.get (P.insert p "x") in
        Alcotest.(check bool) "delete ok" true (P.delete p s);
        Alcotest.(check (option string)) "gone" None (P.get p s);
        Alcotest.(check bool) "double delete fails" false (P.delete p s));
    Alcotest.test_case "deleted slot is reused" `Quick (fun () ->
        let p = mk () in
        let s0 = Option.get (P.insert p "a") in
        let _s1 = Option.get (P.insert p "b") in
        ignore (P.delete p s0);
        let s2 = Option.get (P.insert p "c") in
        Alcotest.(check int) "slot reused" s0 s2);
    Alcotest.test_case "update in place" `Quick (fun () ->
        let p = mk () in
        let s = Option.get (P.insert p "abcdef") in
        Alcotest.(check bool) "shrink" true (P.update p s "xy");
        Alcotest.(check (option string)) "value" (Some "xy") (P.get p s);
        Alcotest.(check bool) "grow" true (P.update p s (String.make 100 'z'));
        Alcotest.(check (option string)) "value" (Some (String.make 100 'z')) (P.get p s));
    Alcotest.test_case "page fills up and insert fails" `Quick (fun () ->
        let p = mk () in
        let data = String.make 500 'd' in
        let rec fill n = match P.insert p data with Some _ -> fill (n + 1) | None -> n in
        let n = fill 0 in
        Alcotest.(check bool) "filled several" true (n >= 7);
        Alcotest.(check (option Alcotest.int)) "full" None
          (Option.map (fun _ -> 0) (P.insert p data)));
    Alcotest.test_case "oversized record rejected" `Quick (fun () ->
        let p = mk () in
        Alcotest.(check bool) "reject" true (P.insert p (String.make P.size 'x') = None));
    Alcotest.test_case "compaction reclaims dead space" `Quick (fun () ->
        let p = mk () in
        let data = String.make 400 'd' in
        let slots = List.init 9 (fun _ -> Option.get (P.insert p data)) in
        (* delete every other record, then a 1600-byte insert requires
           compaction to succeed *)
        List.iteri (fun i s -> if i mod 2 = 0 then ignore (P.delete p s)) slots;
        Alcotest.(check bool) "big insert fits after compaction" true
          (P.insert p (String.make 1600 'e') <> None));
    Alcotest.test_case "iter visits live slots in slot order" `Quick (fun () ->
        let p = mk () in
        let s0 = Option.get (P.insert p "a") in
        let _ = Option.get (P.insert p "b") in
        let s2 = Option.get (P.insert p "c") in
        ignore (P.delete p s0);
        ignore s2;
        let seen = ref [] in
        P.iter p ~f:(fun slot data -> seen := (slot, data) :: !seen);
        Alcotest.(check (list (pair int string))) "live" [ (1, "b"); (2, "c") ] (List.rev !seen));
    Alcotest.test_case "header fields survive init round" `Quick (fun () ->
        let p = mk () in
        P.set_next p 77;
        P.set_aux p 123;
        Alcotest.(check int) "next" 77 (P.next p);
        Alcotest.(check int) "aux" 123 (P.aux p)) ]

(* Model-based property: a random sequence of insert/delete/update
   matches an association-list model. *)
type op = Insert of string | Delete of int | Update of int * string

let gen_op =
  QCheck.Gen.(
    frequency
      [ (5, map (fun s -> Insert s) (string_size (int_range 1 60)));
        (2, map (fun i -> Delete i) (int_bound 40));
        (2, map2 (fun i s -> Update (i, s)) (int_bound 40) (string_size (int_range 1 60))) ])

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Insert s -> Printf.sprintf "I%d" (String.length s)
             | Delete i -> Printf.sprintf "D%d" i
             | Update (i, s) -> Printf.sprintf "U%d/%d" i (String.length s))
           ops))
    QCheck.Gen.(list_size (int_bound 120) gen_op)

let prop_model =
  QCheck.Test.make ~name:"page matches model" ~count:300 arb_ops (fun ops ->
      let p = mk () in
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (function
          | Insert s -> (
            match P.insert p s with
            | Some slot -> Hashtbl.replace model slot s
            | None -> ())
          | Delete slot -> if P.delete p slot then Hashtbl.remove model slot
          | Update (slot, s) -> if P.update p slot s then Hashtbl.replace model slot s)
        ops;
      (* every model entry must be readable, and iter must visit exactly
         the model *)
      let ok = ref true in
      Hashtbl.iter (fun slot s -> if P.get p slot <> Some s then ok := false) model;
      let visited = ref 0 in
      P.iter p ~f:(fun slot data ->
          incr visited;
          if Hashtbl.find_opt model slot <> Some data then ok := false);
      !ok && !visited = Hashtbl.length model)

let () =
  Alcotest.run "page"
    [ ("basic", basic);
      ("properties", [ QCheck_alcotest.to_alcotest prop_model ]) ]
