(* Unit and property tests for the value model and row codec. *)

module R = Storage.Record

let value = Alcotest.testable R.pp_value R.equal_value

let check_roundtrip name row =
  Alcotest.test_case name `Quick (fun () ->
      let encoded = R.encode_row row in
      let decoded = R.decode_row encoded in
      Alcotest.(check int) "arity" (Array.length row) (Array.length decoded);
      Array.iteri (fun i v -> Alcotest.check value (Printf.sprintf "col %d" i) v decoded.(i)) row)

let roundtrip_cases =
  [ check_roundtrip "empty row" [||];
    check_roundtrip "single null" [| R.Null |];
    check_roundtrip "ints" [| R.Int 0; R.Int 1; R.Int (-1); R.Int max_int; R.Int min_int |];
    check_roundtrip "reals"
      [| R.Real 0.; R.Real 1.5; R.Real (-1.5); R.Real Float.max_float; R.Real Float.min_float;
         R.Real infinity; R.Real neg_infinity; R.Real 4900.25 |];
    check_roundtrip "texts" [| R.Text ""; R.Text "hello"; R.Text (String.make 1000 'x') |];
    check_roundtrip "unicode-ish text" [| R.Text "caf\xc3\xa9 \xe2\x82\xac" |];
    check_roundtrip "quotes and newlines" [| R.Text "it's\na 'test'" |];
    check_roundtrip "mixed"
      [| R.Null; R.Int 42; R.Real 3.14; R.Text "mixed"; R.Null; R.Int (-7) |] ]

let comparison_cases =
  [ Alcotest.test_case "null sorts first" `Quick (fun () ->
        Alcotest.(check bool) "null < int" true (R.compare_value R.Null (R.Int (-100)) < 0);
        Alcotest.(check bool) "null < text" true (R.compare_value R.Null (R.Text "") < 0);
        Alcotest.(check bool) "null = null" true (R.compare_value R.Null R.Null = 0));
    Alcotest.test_case "numeric cross-class comparison" `Quick (fun () ->
        Alcotest.(check bool) "1 < 1.5" true (R.compare_value (R.Int 1) (R.Real 1.5) < 0);
        Alcotest.(check bool) "2 > 1.5" true (R.compare_value (R.Int 2) (R.Real 1.5) > 0);
        Alcotest.(check bool) "1 = 1.0" true (R.compare_value (R.Int 1) (R.Real 1.0) = 0));
    Alcotest.test_case "numbers before text" `Quick (fun () ->
        Alcotest.(check bool) "int < text" true (R.compare_value (R.Int 9999) (R.Text "0") < 0);
        Alcotest.(check bool) "real < text" true (R.compare_value (R.Real 1e30) (R.Text "") < 0));
    Alcotest.test_case "text is byte order" `Quick (fun () ->
        Alcotest.(check bool) "a < b" true (R.compare_value (R.Text "a") (R.Text "b") < 0);
        Alcotest.(check bool) "A < a" true (R.compare_value (R.Text "A") (R.Text "a") < 0));
    Alcotest.test_case "row comparison is lexicographic" `Quick (fun () ->
        let a = [| R.Int 1; R.Text "b" |] and b = [| R.Int 1; R.Text "c" |] in
        Alcotest.(check bool) "a < b" true (R.compare_row a b < 0);
        Alcotest.(check bool) "prefix < longer" true (R.compare_row [| R.Int 1 |] a < 0));
    Alcotest.test_case "value_to_string" `Quick (fun () ->
        Alcotest.(check string) "int" "42" (R.value_to_string (R.Int 42));
        Alcotest.(check string) "null" "NULL" (R.value_to_string R.Null);
        Alcotest.(check string) "integral real" "2.0" (R.value_to_string (R.Real 2.));
        Alcotest.(check string) "text" "x" (R.value_to_string (R.Text "x"))) ]

(* --- qcheck ------------------------------------------------------------- *)

let gen_value =
  QCheck.Gen.(
    frequency
      [ (1, return R.Null);
        (4, map (fun i -> R.Int i) int);
        (3, map (fun f -> R.Real f) (float_bound_inclusive 1e12));
        (3, map (fun s -> R.Text s) (string_size (int_bound 40))) ])

let arb_row =
  QCheck.make
    ~print:(fun r ->
      "[" ^ String.concat "; " (Array.to_list (Array.map R.value_to_string r)) ^ "]")
    QCheck.Gen.(map Array.of_list (list_size (int_bound 12) gen_value))

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500 arb_row (fun row ->
      let back = R.decode_row (R.encode_row row) in
      R.compare_row row back = 0)

let prop_compare_reflexive =
  QCheck.Test.make ~name:"compare_row is reflexive" ~count:200 arb_row (fun row ->
      R.compare_row row row = 0)

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare_row antisymmetry" ~count:200 (QCheck.pair arb_row arb_row)
    (fun (a, b) -> compare (R.compare_row a b) 0 = compare 0 (R.compare_row b a))

let prop_row_size_bounds =
  QCheck.Test.make ~name:"row_size approximates encoded size" ~count:200 arb_row (fun row ->
      let approx = R.row_size row and actual = String.length (R.encode_row row) in
      abs (approx - actual) <= 2 + Array.length row)

let () =
  Alcotest.run "record"
    [ ("roundtrip", roundtrip_cases);
      ("comparison", comparison_cases);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_compare_reflexive; prop_compare_antisym; prop_row_size_bounds ]
      ) ]
