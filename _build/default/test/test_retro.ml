(* Retro snapshot-system tests: COW archiving, SPT construction, page
   sharing between snapshots and with the current state, the snapshot
   page cache, recycled pages, and the central correctness property —
   reading AS OF any snapshot reproduces the exact historical state. *)

module T = Storage.Txn
module P = Storage.Pager
module Pg = Storage.Page
module H = Storage.Heap
module S = Storage.Stats
module Spt = Retro.Spt

let setup () =
  let pager = P.create () in
  let retro = Retro.attach pager in
  let heap = T.with_txn pager (fun txn -> H.create txn) in
  (pager, retro, heap)

let heap_contents read heap =
  let out = ref [] in
  H.iter read heap ~f:(fun _ d -> out := d :: !out);
  List.sort compare !out

let snapshot_contents retro heap sid =
  let spt = Retro.build_spt retro sid in
  heap_contents (Retro.read_ctx retro spt) heap

let insert pager heap rows =
  T.with_txn pager (fun txn -> List.iter (fun r -> ignore (H.insert txn heap r)) rows)

let basic =
  [ Alcotest.test_case "snapshot preserves pre-update state" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "a"; "b" ];
        let s1 = Retro.declare retro in
        insert pager heap [ "c" ];
        Alcotest.(check (list string)) "snapshot" [ "a"; "b" ] (snapshot_contents retro heap s1);
        Alcotest.(check (list string)) "current" [ "a"; "b"; "c" ]
          (heap_contents (P.read pager) heap));
    Alcotest.test_case "snapshot reflects the declaring state" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "a" ];
        let s1 = Retro.declare retro in
        let s2 = Retro.declare retro in
        Alcotest.(check (list string)) "s1" [ "a" ] (snapshot_contents retro heap s1);
        Alcotest.(check (list string)) "s2 same" [ "a" ] (snapshot_contents retro heap s2));
    Alcotest.test_case "multiple snapshots see distinct histories" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "v1" ];
        let s1 = Retro.declare retro in
        insert pager heap [ "v2" ];
        let s2 = Retro.declare retro in
        insert pager heap [ "v3" ];
        let s3 = Retro.declare retro in
        insert pager heap [ "v4" ];
        Alcotest.(check (list string)) "s1" [ "v1" ] (snapshot_contents retro heap s1);
        Alcotest.(check (list string)) "s2" [ "v1"; "v2" ] (snapshot_contents retro heap s2);
        Alcotest.(check (list string)) "s3" [ "v1"; "v2"; "v3" ] (snapshot_contents retro heap s3));
    Alcotest.test_case "pre-state archived once per epoch (sharing)" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "a" ];
        ignore (Retro.declare retro);
        let s0 = S.copy S.global in
        (* two updates to the same page within one epoch: one archive *)
        insert pager heap [ "b" ];
        insert pager heap [ "c" ];
        let d = S.diff (S.copy S.global) s0 in
        Alcotest.(check int) "one pre-state" 1 d.S.cow_archived);
    Alcotest.test_case "consecutive snapshots share unmodified pre-states" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "a" ];
        let s1 = Retro.declare retro in
        let s2 = Retro.declare retro in
        (* no update between s1 and s2 *)
        insert pager heap [ "b" ];
        let spt1 = Retro.build_spt retro s1 and spt2 = Retro.build_spt retro s2 in
        (* the archived page for the heap page must be the same pagelog
           offset in both SPTs *)
        let off1 = ref None and off2 = ref None in
        Hashtbl.iter (fun pid off -> off1 := Some (pid, off)) spt1.Spt.map;
        Hashtbl.iter (fun pid off -> off2 := Some (pid, off)) spt2.Spt.map;
        ignore s2;
        Alcotest.(check bool) "shared offset" true (!off1 = !off2 && !off1 <> None));
    Alcotest.test_case "unmodified pages served from the database" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "a" ];
        let s1 = Retro.declare retro in
        (* nothing modified since declaration: snapshot read must not
           touch the pagelog *)
        let s0 = S.copy S.global in
        ignore (snapshot_contents retro heap s1);
        let d = S.diff (S.copy S.global) s0 in
        Alcotest.(check int) "no pagelog reads" 0 d.S.pagelog_reads;
        Alcotest.(check bool) "db reads happened" true (d.S.db_page_reads > 0));
    Alcotest.test_case "snapshot cache avoids repeated pagelog reads" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "a" ];
        let s1 = Retro.declare retro in
        insert pager heap [ "b" ];
        Retro.clear_cache retro;
        let s0 = S.copy S.global in
        ignore (snapshot_contents retro heap s1);
        let d1 = S.diff (S.copy S.global) s0 in
        Alcotest.(check bool) "first read hits pagelog" true (d1.S.pagelog_reads > 0);
        let s0 = S.copy S.global in
        ignore (snapshot_contents retro heap s1);
        let d2 = S.diff (S.copy S.global) s0 in
        Alcotest.(check int) "second read cached" 0 d2.S.pagelog_reads);
    Alcotest.test_case "pages created after declaration are excluded" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "a" ];
        let s1 = Retro.declare retro in
        (* grow the heap with big rows so new pages are allocated *)
        insert pager heap (List.init 30 (fun i -> String.make 1000 (Char.chr (65 + (i mod 26)))));
        Alcotest.(check (list string)) "old view intact" [ "a" ]
          (snapshot_contents retro heap s1));
    Alcotest.test_case "snapshot of recycled page preserves old content" `Quick (fun () ->
        let pager, retro, _heap = setup () in
        (* dedicated page outside the heap *)
        let pid = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        T.with_txn pager (fun txn -> ignore (Pg.insert (T.write txn pid) "precious"));
        let s1 = Retro.declare retro in
        T.with_txn pager (fun txn -> T.free txn pid);
        let pid2 = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        Alcotest.(check int) "recycled" pid pid2;
        T.with_txn pager (fun txn -> ignore (Pg.insert (T.write txn pid2) "new tenant"));
        let spt = Retro.build_spt retro s1 in
        let page = Retro.read_page retro spt pid in
        Alcotest.(check (option string)) "old content" (Some "precious") (Pg.get page 0));
    Alcotest.test_case "spt scan length is bounded by maplog suffix" `Quick (fun () ->
        let pager, retro, heap = setup () in
        insert pager heap [ "a" ];
        let _s1 = Retro.declare retro in
        insert pager heap [ "b" ];
        let s2 = Retro.declare retro in
        insert pager heap [ "c" ];
        let spt2 = Retro.build_spt retro s2 in
        Alcotest.(check bool) "suffix only" true
          (spt2.Spt.scan_len <= Retro.maplog_length retro));
    Alcotest.test_case "unknown snapshot id rejected" `Quick (fun () ->
        let _pager, retro, _heap = setup () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Retro.build_spt retro 1);
             false
           with Invalid_argument _ -> true)) ]

(* --- the central property ----------------------------------------------- *)

(* Random history: each round does random inserts/deletes, then maybe
   declares a snapshot recording the expected contents.  At the end,
   every snapshot must read back exactly its recorded contents, in any
   access order, with and without cache. *)
let prop_history =
  QCheck.Test.make ~name:"AS OF reads reproduce recorded history" ~count:40
    QCheck.(pair (int_range 1 20) (int_bound 1000))
    (fun (rounds, seed) ->
      let rng = Random.State.make [| seed |] in
      let pager, retro, heap = setup () in
      let live = ref [] in
      let counter = ref 0 in
      let snapshots = ref [] in
      for _ = 1 to rounds do
        T.with_txn pager (fun txn ->
            let n_ins = Random.State.int rng 20 in
            for _ = 1 to n_ins do
              incr counter;
              let data = Printf.sprintf "row-%06d-%s" !counter (String.make (Random.State.int rng 200) 'x') in
              let rid = H.insert txn heap data in
              live := (rid, data) :: !live
            done;
            let n_del = Random.State.int rng (1 + (List.length !live / 3)) in
            for _ = 1 to n_del do
              match !live with
              | [] -> ()
              | l ->
                let i = Random.State.int rng (List.length l) in
                let rid, _ = List.nth l i in
                ignore (H.delete txn heap rid);
                live := List.filteri (fun j _ -> j <> i) l
            done);
        if Random.State.bool rng then begin
          let sid = Retro.declare retro in
          snapshots := (sid, List.sort compare (List.map snd !live)) :: !snapshots
        end
      done;
      (* verify newest-to-oldest and oldest-to-newest, cold and warm *)
      let verify () =
        List.for_all
          (fun (sid, expected) -> snapshot_contents retro heap sid = expected)
          !snapshots
      in
      Retro.clear_cache retro;
      let ok1 = verify () in
      let ok2 = List.for_all (fun (sid, e) -> snapshot_contents retro heap sid = e) (List.rev !snapshots) in
      ok1 && ok2)

let () =
  Alcotest.run "retro"
    [ ("basic", basic); ("properties", [ QCheck_alcotest.to_alcotest prop_history ]) ]
