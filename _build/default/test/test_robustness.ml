(* Robustness and failure-path tests: malformed SQL, semantic errors,
   transaction misuse, UDF argument errors, storage churn stability, and
   engine behaviour at the edges. *)

module R = Storage.Record
module E = Sqldb.Engine

let raises_error f =
  try
    ignore (f ());
    false
  with E.Error _ -> true

let check_raises name sql =
  Alcotest.test_case name `Quick (fun () ->
      let db = E.create ~snapshots:false () in
      ignore (E.exec db "CREATE TABLE t (a INTEGER, b TEXT)");
      ignore (E.exec db "INSERT INTO t VALUES (1, 'x')");
      Alcotest.(check bool) sql true (raises_error (fun () -> E.exec db sql)))

let sql_errors =
  [ check_raises "unterminated string" "SELECT 'oops";
    check_raises "unknown table" "SELECT * FROM nothing";
    check_raises "unknown column" "SELECT nope FROM t";
    check_raises "qualified unknown column" "SELECT t.nope FROM t";
    check_raises "unknown alias qualifier" "SELECT x.a FROM t";
    check_raises "ambiguous column" "SELECT a FROM t t1, t t2";
    check_raises "insert arity mismatch" "INSERT INTO t VALUES (1)";
    check_raises "insert unknown column" "INSERT INTO t (a, zzz) VALUES (1, 2)";
    check_raises "update unknown column" "UPDATE t SET zzz = 1";
    check_raises "delete unknown table" "DELETE FROM nothing";
    check_raises "drop unknown table" "DROP TABLE nothing";
    check_raises "drop unknown index" "DROP INDEX nothing";
    check_raises "index on unknown table" "CREATE INDEX i ON nothing (a)";
    check_raises "index on unknown column" "CREATE INDEX i ON t (zzz)";
    check_raises "textual limit" "SELECT a FROM t LIMIT 'many'";
    check_raises "group by unknown column" "SELECT COUNT(*) FROM t GROUP BY zzz";
    check_raises "trailing garbage" "SELECT a FROM t;;; nonsense";
    check_raises "commit without begin" "COMMIT";
    check_raises "rollback without begin" "ROLLBACK";
    check_raises "empty statement" "" ]

let txn_misuse =
  [ Alcotest.test_case "double begin rejected" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "BEGIN");
        Alcotest.(check bool) "raises" true (raises_error (fun () -> E.exec db "BEGIN"));
        ignore (E.exec db "ROLLBACK"));
    Alcotest.test_case "snapshot on non-snapshot db rejected" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "BEGIN");
        Alcotest.(check bool) "raises" true
          (raises_error (fun () -> E.exec db "COMMIT WITH SNAPSHOT")));
    Alcotest.test_case "work continues after an error" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        Alcotest.(check bool) "bad statement" true
          (raises_error (fun () -> E.exec db "SELECT zzz FROM t"));
        ignore (E.exec db "INSERT INTO t VALUES (1)");
        Alcotest.(check int) "db still usable" 1 (E.int_scalar db "SELECT COUNT(*) FROM t")) ]

let udf_errors =
  [ Alcotest.test_case "UDF exceptions surface as errors" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        E.register_fn db "boom" (fun _ -> failwith "kaput");
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "SELECT boom()");
             false
           with Failure _ | E.Error _ -> true));
    Alcotest.test_case "UDF shadows nothing and receives args" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        E.register_fn db "triple" (fun args ->
            match args with [| R.Int i |] -> R.Int (3 * i) | _ -> R.Null);
        Alcotest.(check bool) "result" true (E.scalar db "SELECT triple(14)" = R.Int 42);
        Alcotest.(check bool) "builtins intact" true (E.scalar db "SELECT ABS(-1)" = R.Int 1));
    Alcotest.test_case "RQL UDF wrong arity reported" `Quick (fun () ->
        let ctx = Rql.create () in
        ignore (E.exec ctx.Rql.data "CREATE TABLE t (x INTEGER)");
        ignore (Rql.declare_snapshot ctx);
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec ctx.Rql.meta "SELECT CollateData(snap_id) FROM SnapIds");
             false
           with Rql.Error _ | E.Error _ -> true));
    Alcotest.test_case "RQL mechanism rejects non-SELECT Qq" `Quick (fun () ->
        let ctx = Rql.create () in
        ignore (E.exec ctx.Rql.data "CREATE TABLE t (x INTEGER)");
        ignore (Rql.declare_snapshot ctx);
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
                  ~qq:"DELETE FROM t" ~table:"T");
             false
           with Rql.Error _ | Rql.Rewrite.Error _ -> true)) ]

let storage_stability =
  [ Alcotest.test_case "heap churn keeps page count bounded" `Quick (fun () ->
        (* delete-oldest/insert cycles must recycle space through the
           free-space map instead of growing the chain *)
        let pager = Storage.Pager.create () in
        let heap = Storage.Txn.with_txn pager (fun txn -> Storage.Heap.create txn) in
        let fifo = Queue.create () in
        Storage.Txn.with_txn pager (fun txn ->
            for i = 1 to 2000 do
              Queue.add (Storage.Heap.insert txn heap (Printf.sprintf "row%06d-%s" i (String.make 100 'x'))) fifo
            done);
        let pages_before = Storage.Heap.page_count (Storage.Pager.read pager) heap in
        for round = 1 to 30 do
          Storage.Txn.with_txn pager (fun txn ->
              for _ = 1 to 100 do
                ignore (Storage.Heap.delete txn heap (Queue.pop fifo))
              done;
              for i = 1 to 100 do
                Queue.add
                  (Storage.Heap.insert txn heap
                     (Printf.sprintf "new%03d-%03d-%s" round i (String.make 100 'y')))
                  fifo
              done)
        done;
        let pages_after = Storage.Heap.page_count (Storage.Pager.read pager) heap in
        Alcotest.(check bool)
          (Printf.sprintf "%d -> %d pages" pages_before pages_after)
          true
          (pages_after <= pages_before + 2));
    Alcotest.test_case "wide rows spanning most of a page" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "CREATE TABLE w (x TEXT)");
        let big = String.make 3500 'w' in
        ignore (E.exec db (Printf.sprintf "INSERT INTO w VALUES ('%s'), ('%s')" big big));
        Alcotest.(check int) "both stored" 2 (E.int_scalar db "SELECT COUNT(*) FROM w");
        Alcotest.(check int) "length preserved" 3500
          (E.int_scalar db "SELECT LENGTH(x) FROM w LIMIT 1"));
    Alcotest.test_case "oversized row rejected cleanly" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "CREATE TABLE w (x TEXT)");
        let too_big = String.make 5000 'w' in
        Alcotest.(check bool) "raises" true
          (raises_error (fun () -> E.exec db (Printf.sprintf "INSERT INTO w VALUES ('%s')" too_big))));
    Alcotest.test_case "hundreds of snapshots remain readable" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE c (n INTEGER)");
        ignore (E.exec db "INSERT INTO c VALUES (0)");
        for i = 1 to 300 do
          ignore (E.exec db (Printf.sprintf "UPDATE c SET n = %d" i));
          ignore (E.exec db "COMMIT WITH SNAPSHOT")
        done;
        List.iter
          (fun sid ->
            Alcotest.(check int)
              (Printf.sprintf "as of %d" sid)
              sid
              (E.int_scalar db (Printf.sprintf "SELECT AS OF %d n FROM c" sid)))
          [ 1; 2; 77; 150; 299; 300 ]) ]

let () =
  Alcotest.run "robustness"
    [ ("sql-errors", sql_errors);
      ("txn-misuse", txn_misuse);
      ("udf-errors", udf_errors);
      ("storage-stability", storage_stability) ]
