(* RQL mechanism tests: the paper's §2 examples, the SQL-UDF form,
   snapshot-set selection via Qs, result-table management, stats, and
   the central equivalence properties:

   - AggregateDataInVariable(fn)  ==  SQL fn over CollateData output
   - AggregateDataInTable(c,fn)   ==  SQL GROUP BY fn over CollateData
   - CollateDataIntoIntervals     ==  interval reconstruction of CollateData *)

module R = Storage.Record
module E = Sqldb.Engine

let value = Alcotest.testable R.pp_value R.equal_value
let row = Alcotest.(list value)

let rows_of res = List.map Array.to_list res.E.rows

let q ctx sql = rows_of (E.exec ctx.Rql.meta sql)

(* The LoggedIn history from the paper's Figures 1-3. *)
let logged_in_ctx () =
  let ctx = Rql.create () in
  let e sql = ignore (E.exec ctx.Rql.data sql) in
  e "CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)";
  e
    "INSERT INTO LoggedIn VALUES ('UserA','2008-11-09 13:23:44','USA'), ('UserB','2008-11-09 \
     15:45:21','UK'), ('UserC','2008-11-09 15:45:21','USA')";
  ignore (Rql.declare_snapshot ctx);
  e "BEGIN";
  e "DELETE FROM LoggedIn WHERE l_userid = 'UserA'";
  ignore (Rql.declare_snapshot ctx);
  e "BEGIN";
  e "INSERT INTO LoggedIn (l_userid, l_time, l_country) VALUES ('UserD','2008-11-11 10:08:04','UK')";
  ignore (Rql.declare_snapshot ctx);
  ctx

let qs_all = "SELECT snap_id FROM SnapIds"

let mechanisms =
  [ Alcotest.test_case "CollateData collects per-snapshot rows" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        let run =
          Rql.collate_data ctx ~qs:qs_all
            ~qq:"SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn"
            ~table:"Result"
        in
        Alcotest.(check int) "iterations" 3 (List.length run.Rql.Iter_stats.iterations);
        Alcotest.(check int) "rows" 8 run.Rql.Iter_stats.result_rows;
        Alcotest.(check (list row)) "snapshot 2 content"
          [ [ R.Text "UserB" ]; [ R.Text "UserC" ] ]
          (q ctx "SELECT l_userid FROM Result WHERE sid = 2 ORDER BY l_userid"));
    Alcotest.test_case "AggregateDataInVariable sum counts snapshots" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (Rql.aggregate_data_in_variable ctx ~qs:qs_all
             ~qq:"SELECT DISTINCT 1 AS one FROM LoggedIn WHERE l_userid = 'UserB'"
             ~table:"T" ~fn:"sum");
        Alcotest.(check (list row)) "UserB in 3 snapshots" [ [ R.Int 3 ] ] (q ctx "SELECT * FROM T"));
    Alcotest.test_case "AggregateDataInVariable min finds first occurrence" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (Rql.aggregate_data_in_variable ctx ~qs:qs_all
             ~qq:"SELECT DISTINCT current_snapshot() AS sid FROM LoggedIn WHERE l_userid = 'UserD'"
             ~table:"T" ~fn:"min");
        Alcotest.(check (list row)) "first in snapshot 3" [ [ R.Int 3 ] ] (q ctx "SELECT * FROM T"));
    Alcotest.test_case "AggregateDataInVariable avg" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (Rql.aggregate_data_in_variable ctx ~qs:qs_all
             ~qq:"SELECT COUNT(*) AS c FROM LoggedIn" ~table:"T" ~fn:"avg");
        (* 3, 2, 3 logged in across the snapshots *)
        Alcotest.(check (list row)) "avg" [ [ R.Real (8. /. 3.) ] ] (q ctx "SELECT * FROM T"));
    Alcotest.test_case "AggregateDataInVariable rejects multi-row Qq" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Rql.aggregate_data_in_variable ctx ~qs:qs_all
                  ~qq:"SELECT l_userid FROM LoggedIn" ~table:"T" ~fn:"min");
             false
           with Rql.Error _ -> true));
    Alcotest.test_case "AggregateDataInTable first login per user (paper)" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (Rql.aggregate_data_in_table ctx ~qs:qs_all
             ~qq:"SELECT DISTINCT l_userid, l_time FROM LoggedIn" ~table:"T"
             ~aggs:[ ("l_time", "min") ]);
        Alcotest.(check (list row)) "first times"
          [ [ R.Text "UserA"; R.Text "2008-11-09 13:23:44" ];
            [ R.Text "UserB"; R.Text "2008-11-09 15:45:21" ];
            [ R.Text "UserC"; R.Text "2008-11-09 15:45:21" ];
            [ R.Text "UserD"; R.Text "2008-11-11 10:08:04" ] ]
          (q ctx "SELECT l_userid, l_time FROM T ORDER BY l_userid"));
    Alcotest.test_case "AggregateDataInTable max concurrent logins (paper)" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (Rql.aggregate_data_in_table ctx ~qs:qs_all
             ~qq:"SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country" ~table:"T"
             ~aggs:[ ("c", "max") ]);
        Alcotest.(check (list row)) "per-country max"
          [ [ R.Text "UK"; R.Int 2 ]; [ R.Text "USA"; R.Int 2 ] ]
          (q ctx "SELECT l_country, c FROM T ORDER BY l_country"));
    Alcotest.test_case "AggregateDataInTable with avg keeps hidden state" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (Rql.aggregate_data_in_table ctx ~qs:qs_all
             ~qq:"SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country" ~table:"T"
             ~aggs:[ ("c", "avg") ]);
        (* USA: 2,1,1 -> 4/3; UK: 1,1,2 -> 4/3 *)
        Alcotest.(check (list row)) "avg per country"
          [ [ R.Text "UK"; R.Real (4. /. 3.) ]; [ R.Text "USA"; R.Real (4. /. 3.) ] ]
          (q ctx "SELECT l_country, c FROM T ORDER BY l_country"));
    Alcotest.test_case "AggregateDataInTable with no grouping columns" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (Rql.aggregate_data_in_table ctx ~qs:qs_all
             ~qq:"SELECT COUNT(*) AS c FROM LoggedIn" ~table:"T" ~aggs:[ ("c", "max") ]);
        Alcotest.(check (list row)) "global max" [ [ R.Int 3 ] ] (q ctx "SELECT c FROM T"));
    Alcotest.test_case "CollateDataIntoIntervals lifetimes (paper)" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (Rql.collate_data_into_intervals ctx ~qs:qs_all
             ~qq:"SELECT l_userid FROM LoggedIn" ~table:"T");
        Alcotest.(check (list row)) "intervals"
          [ [ R.Text "UserA"; R.Int 1; R.Int 1 ];
            [ R.Text "UserB"; R.Int 1; R.Int 3 ];
            [ R.Text "UserC"; R.Int 1; R.Int 3 ];
            [ R.Text "UserD"; R.Int 3; R.Int 3 ] ]
          (q ctx "SELECT * FROM T ORDER BY l_userid"));
    Alcotest.test_case "intervals split when a record disappears and returns" `Quick (fun () ->
        let ctx = Rql.create () in
        let e sql = ignore (E.exec ctx.Rql.data sql) in
        e "CREATE TABLE t (u TEXT)";
        e "INSERT INTO t VALUES ('x')";
        ignore (Rql.declare_snapshot ctx);
        e "DELETE FROM t";
        ignore (Rql.declare_snapshot ctx);
        e "INSERT INTO t VALUES ('x')";
        ignore (Rql.declare_snapshot ctx);
        ignore
          (Rql.collate_data_into_intervals ctx ~qs:qs_all ~qq:"SELECT u FROM t" ~table:"T");
        Alcotest.(check (list row)) "two intervals"
          [ [ R.Text "x"; R.Int 1; R.Int 1 ]; [ R.Text "x"; R.Int 3; R.Int 3 ] ]
          (q ctx "SELECT * FROM T ORDER BY start_snapshot"));
    Alcotest.test_case "Qs can restrict and skip snapshots" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        let run =
          Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds WHERE snap_id % 2 = 1"
            ~qq:"SELECT l_userid FROM LoggedIn" ~table:"T"
        in
        Alcotest.(check (list int)) "snapshots 1 and 3" [ 1; 3 ]
          (List.map (fun it -> it.Rql.Iter_stats.snap_id) run.Rql.Iter_stats.iterations));
    Alcotest.test_case "empty snapshot set rejected" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds WHERE snap_id > 99"
                  ~qq:"SELECT l_userid FROM LoggedIn" ~table:"T");
             false
           with Rql.Error _ -> true));
    Alcotest.test_case "result table is recreated by a new run" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        let run1 =
          Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT l_userid FROM LoggedIn" ~table:"T"
        in
        let run2 =
          Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT l_userid FROM LoggedIn" ~table:"T"
        in
        Alcotest.(check int) "same size" run1.Rql.Iter_stats.result_rows
          run2.Rql.Iter_stats.result_rows);
    Alcotest.test_case "first iteration is cold, others hot" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        let run =
          Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT l_userid FROM LoggedIn" ~table:"T"
        in
        match run.Rql.Iter_stats.iterations with
        | first :: rest ->
          Alcotest.(check bool) "cold" true first.Rql.Iter_stats.cold;
          List.iter
            (fun it -> Alcotest.(check bool) "hot" false it.Rql.Iter_stats.cold)
            rest
        | [] -> Alcotest.fail "no iterations");
    Alcotest.test_case "snapshot names recorded in SnapIds" `Quick (fun () ->
        let ctx = Rql.create () in
        ignore (E.exec ctx.Rql.data "CREATE TABLE t (x INTEGER)");
        ignore (Rql.declare_snapshot ~name:"before-audit" ctx);
        Alcotest.(check (list row)) "named"
          [ [ R.Int 1; R.Text "before-audit" ] ]
          (q ctx "SELECT snap_id, snap_name FROM SnapIds")) ]

let udf_form =
  [ Alcotest.test_case "CollateData via SQL UDF" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (E.exec ctx.Rql.meta
             "SELECT CollateData(snap_id, 'SELECT DISTINCT l_userid, current_snapshot() AS \
              sid FROM LoggedIn', 'T') FROM SnapIds");
        Alcotest.(check int) "rows" 8 (List.length (q ctx "SELECT * FROM T"));
        match Rql.take_run ctx ~table:"T" with
        | Some run -> Alcotest.(check int) "iterations" 3 (List.length run.Rql.Iter_stats.iterations)
        | None -> Alcotest.fail "run not recorded");
    Alcotest.test_case "AggregateDataInVariable via SQL UDF" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (E.exec ctx.Rql.meta
             "SELECT AggregateDataInVariable(snap_id, 'SELECT DISTINCT current_snapshot() AS \
              sid FROM LoggedIn WHERE l_userid = ''UserB'' ', 'T', 'min') FROM SnapIds");
        Alcotest.(check (list row)) "min" [ [ R.Int 1 ] ] (q ctx "SELECT * FROM T"));
    Alcotest.test_case "AggregateDataInTable via SQL UDF with pair list" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (E.exec ctx.Rql.meta
             "SELECT AggregateDataInTable(snap_id, 'SELECT l_country, COUNT(*) AS c FROM \
              LoggedIn GROUP BY l_country', 'T', '(c,max)') FROM SnapIds");
        Alcotest.(check (list row)) "result"
          [ [ R.Text "UK"; R.Int 2 ]; [ R.Text "USA"; R.Int 2 ] ]
          (q ctx "SELECT l_country, c FROM T ORDER BY l_country"));
    Alcotest.test_case "Qs WHERE clause filters UDF iterations" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        ignore
          (E.exec ctx.Rql.meta
             "SELECT CollateDataIntoIntervals(snap_id, 'SELECT l_userid FROM LoggedIn', 'T') \
              FROM SnapIds WHERE snap_id >= 2");
        Alcotest.(check (list row)) "UserB interval starts at 2"
          [ [ R.Text "UserB"; R.Int 2; R.Int 3 ] ]
          (q ctx "SELECT * FROM T WHERE l_userid = 'UserB'"));
    Alcotest.test_case "re-running the same UDF statement restarts the run" `Quick (fun () ->
        let ctx = logged_in_ctx () in
        let stmt =
          "SELECT CollateData(snap_id, 'SELECT l_userid FROM LoggedIn', 'T') FROM SnapIds"
        in
        ignore (E.exec ctx.Rql.meta stmt);
        ignore (E.exec ctx.Rql.meta stmt);
        Alcotest.(check int) "not duplicated" 8 (List.length (q ctx "SELECT * FROM T"))) ]

(* --- equivalence properties over random histories ------------------------ *)

(* Build a random history over a small (u, g, v) table; returns ctx. *)
let random_history seed rounds =
  let rng = Random.State.make [| seed |] in
  let ctx = Rql.create () in
  ignore (E.exec ctx.Rql.data "CREATE TABLE ev (u TEXT, g TEXT, v INTEGER)");
  let users = [| "u1"; "u2"; "u3"; "u4" |] in
  let groups = [| "g1"; "g2" |] in
  for _ = 1 to rounds do
    let n_ops = 1 + Random.State.int rng 5 in
    for _ = 1 to n_ops do
      if Random.State.bool rng then
        ignore
          (E.exec ctx.Rql.data
             (Printf.sprintf "INSERT INTO ev VALUES ('%s', '%s', %d)"
                users.(Random.State.int rng 4)
                groups.(Random.State.int rng 2)
                (Random.State.int rng 100)))
      else
        ignore
          (E.exec ctx.Rql.data
             (Printf.sprintf "DELETE FROM ev WHERE u = '%s'" users.(Random.State.int rng 4)))
    done;
    ignore (Rql.declare_snapshot ctx)
  done;
  ctx

let sort_rows = List.sort compare

let prop_aggtable_equals_collate =
  QCheck.Test.make ~name:"AggregateDataInTable == CollateData + SQL GROUP BY" ~count:15
    QCheck.(pair (int_bound 10_000) (int_range 2 8))
    (fun (seed, rounds) ->
      let ctx = random_history seed rounds in
      let qq = "SELECT g, COUNT(*) AS c FROM ev GROUP BY g" in
      ignore
        (Rql.aggregate_data_in_table ctx ~qs:qs_all ~qq ~table:"Agg" ~aggs:[ ("c", "max") ]);
      ignore (Rql.collate_data ctx ~qs:qs_all ~qq ~table:"Col");
      let a = sort_rows (q ctx "SELECT g, c FROM Agg") in
      let b = sort_rows (q ctx "SELECT g, MAX(c) FROM Col GROUP BY g") in
      a = b)

let prop_aggvar_equals_collate =
  QCheck.Test.make ~name:"AggregateDataInVariable == CollateData + SQL aggregate" ~count:15
    QCheck.(pair (int_bound 10_000) (int_range 2 8))
    (fun (seed, rounds) ->
      let ctx = random_history seed rounds in
      let qq = "SELECT COUNT(*) AS c FROM ev" in
      ignore (Rql.aggregate_data_in_variable ctx ~qs:qs_all ~qq ~table:"V" ~fn:"max");
      ignore (Rql.collate_data ctx ~qs:qs_all ~qq ~table:"C");
      q ctx "SELECT * FROM V" = q ctx "SELECT MAX(c) FROM C")

(* Interval reconstruction: expanding each [start, end] interval over the
   snapshot ids must reproduce the per-snapshot membership that
   CollateData records. *)
let prop_intervals_reconstruct =
  QCheck.Test.make ~name:"CollateDataIntoIntervals reconstructs CollateData" ~count:15
    QCheck.(pair (int_bound 10_000) (int_range 2 8))
    (fun (seed, rounds) ->
      let ctx = random_history seed rounds in
      ignore
        (Rql.collate_data_into_intervals ctx ~qs:qs_all ~qq:"SELECT DISTINCT u FROM ev"
           ~table:"I");
      ignore
        (Rql.collate_data ctx ~qs:qs_all
           ~qq:"SELECT DISTINCT u, current_snapshot() AS sid FROM ev" ~table:"C");
      let expanded =
        List.concat_map
          (fun r ->
            match r with
            | [ u; R.Int s; R.Int e ] -> List.init (e - s + 1) (fun i -> [ u; R.Int (s + i) ])
            | _ -> assert false)
          (q ctx "SELECT * FROM I")
      in
      sort_rows expanded = sort_rows (q ctx "SELECT u, sid FROM C"))

(* The memory claim of §5.3: the interval table never has more rows than
   the collate table. *)
let prop_intervals_compact =
  QCheck.Test.make ~name:"interval representation is never larger" ~count:15
    QCheck.(pair (int_bound 10_000) (int_range 2 8))
    (fun (seed, rounds) ->
      let ctx = random_history seed rounds in
      let ri =
        Rql.collate_data_into_intervals ctx ~qs:qs_all ~qq:"SELECT DISTINCT u FROM ev"
          ~table:"I"
      in
      let rc =
        Rql.collate_data ctx ~qs:qs_all
          ~qq:"SELECT DISTINCT u, current_snapshot() AS sid FROM ev" ~table:"C"
      in
      ri.Rql.Iter_stats.result_rows <= rc.Rql.Iter_stats.result_rows)

let () =
  Alcotest.run "rql"
    [ ("mechanisms", mechanisms);
      ("udf-form", udf_form);
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [ prop_aggtable_equals_collate; prop_aggvar_equals_collate;
            prop_intervals_reconstruct; prop_intervals_compact ] ) ]
