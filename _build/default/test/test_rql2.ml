(* Second RQL suite: iteration-statistics invariants, snapshot-set
   ordering semantics, the all-cold baseline, AVG's incremental
   behaviour in the SQL-UDF form, multi-column interval keys, and
   non-snapshot isolation of the meta database. *)

module R = Storage.Record
module E = Sqldb.Engine
module IS = Rql.Iter_stats

let value = Alcotest.testable R.pp_value R.equal_value
let row = Alcotest.(list value)

let rows_of res = List.map Array.to_list res.E.rows
let q ctx sql = rows_of (E.exec ctx.Rql.meta sql)

(* A small history with churn on a two-column table. *)
let history () =
  let ctx = Rql.create () in
  let e sql = ignore (E.exec ctx.Rql.data sql) in
  e "CREATE TABLE ev (u TEXT, g TEXT, v INTEGER)";
  e "INSERT INTO ev VALUES ('u1','g1',10), ('u2','g1',20), ('u3','g2',30)";
  ignore (Rql.declare_snapshot ctx);
  e "UPDATE ev SET v = v + 1 WHERE u = 'u1'";
  e "DELETE FROM ev WHERE u = 'u3'";
  ignore (Rql.declare_snapshot ctx);
  e "INSERT INTO ev VALUES ('u3','g2',99), ('u4','g2',5)";
  ignore (Rql.declare_snapshot ctx);
  ctx

let qs_all = "SELECT snap_id FROM SnapIds"

let stats_invariants =
  [ Alcotest.test_case "iteration components are non-negative and counted" `Quick (fun () ->
        let ctx = history () in
        let run = Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT u, v FROM ev" ~table:"T" in
        List.iter
          (fun (it : IS.iteration) ->
            Alcotest.(check bool) "io >= 0" true (it.IS.io_s >= 0.);
            Alcotest.(check bool) "spt >= 0" true (it.IS.spt_build_s >= 0.);
            Alcotest.(check bool) "query >= 0" true (it.IS.query_eval_s >= 0.);
            Alcotest.(check bool) "udf >= 0" true (it.IS.udf_s >= 0.);
            Alcotest.(check int) "collate inserts = rows" it.IS.udf_rows it.IS.udf_inserts;
            Alcotest.(check bool) "total = components" true
              (Float.abs (IS.iteration_total it
                          -. (it.IS.io_s +. it.IS.spt_build_s +. it.IS.index_build_s
                              +. it.IS.query_eval_s +. it.IS.udf_s))
               < 1e-9))
          run.IS.iterations;
        Alcotest.(check int) "result rows = total inserts"
          (List.fold_left (fun a it -> a + it.IS.udf_inserts) 0 run.IS.iterations)
          run.IS.result_rows);
    Alcotest.test_case "total_s sums iterations plus finalize" `Quick (fun () ->
        let ctx = history () in
        let run = Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT u FROM ev" ~table:"T" in
        let sum =
          List.fold_left (fun a it -> a +. IS.iteration_total it) run.IS.finalize_s
            run.IS.iterations
        in
        Alcotest.(check bool) "equal" true (Float.abs (sum -. IS.total_s run) < 1e-9));
    Alcotest.test_case "breakdown_of aggregates components" `Quick (fun () ->
        let ctx = history () in
        let run = Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT u FROM ev" ~table:"T" in
        let b = IS.breakdown_of run.IS.iterations in
        Alcotest.(check bool) "matches total" true
          (Float.abs (IS.breakdown_total b +. run.IS.finalize_s -. IS.total_s run) < 1e-9)) ]

let ordering =
  [ Alcotest.test_case "Qs in descending order still collates everything" `Quick (fun () ->
        let ctx = history () in
        let asc = Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT u FROM ev" ~table:"A" in
        let desc =
          Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds ORDER BY snap_id DESC"
            ~qq:"SELECT u FROM ev" ~table:"D"
        in
        Alcotest.(check int) "same rows" asc.IS.result_rows desc.IS.result_rows;
        Alcotest.(check (list int)) "iterated descending" [ 3; 2; 1 ]
          (List.map (fun it -> it.IS.snap_id) desc.IS.iterations));
    Alcotest.test_case "aggregation order does not change monoid results" `Quick (fun () ->
        let ctx = history () in
        ignore
          (Rql.aggregate_data_in_table ctx ~qs:qs_all
             ~qq:"SELECT g, COUNT(*) AS c FROM ev GROUP BY g" ~table:"A"
             ~aggs:[ ("c", "max") ]);
        ignore
          (Rql.aggregate_data_in_table ctx
             ~qs:"SELECT snap_id FROM SnapIds ORDER BY snap_id DESC"
             ~qq:"SELECT g, COUNT(*) AS c FROM ev GROUP BY g" ~table:"D"
             ~aggs:[ ("c", "max") ]);
        Alcotest.(check (list row)) "commutative"
          (q ctx "SELECT g, c FROM A ORDER BY g")
          (q ctx "SELECT g, c FROM D ORDER BY g")) ]

let all_cold =
  [ Alcotest.test_case "all-cold run costs at least the shared run" `Quick (fun () ->
        let ctx, _st, _ =
          Tpch.Workload.build_history ~sf:0.002 ~uw:Tpch.Workload.uw30 ~snapshots:8 ()
        in
        let qq = "SELECT COUNT(*) AS c FROM orders" in
        let shared =
          Rql.aggregate_data_in_variable ctx ~qs:qs_all ~qq ~table:"S" ~fn:"avg"
        in
        let cold =
          Rql.aggregate_data_in_variable ~all_cold:true ctx ~qs:qs_all ~qq ~table:"C" ~fn:"avg"
        in
        let reads run = List.fold_left (fun a it -> a + it.IS.pagelog_reads) 0 run.IS.iterations in
        Alcotest.(check bool)
          (Printf.sprintf "cold %d >= shared %d" (reads cold) (reads shared))
          true
          (reads cold >= reads shared);
        (* identical results either way *)
        Alcotest.(check (list row)) "same answer" (q ctx "SELECT * FROM S")
          (q ctx "SELECT * FROM C")) ]

let avg_udf =
  [ Alcotest.test_case "SQL-form AggVar avg is correct without an end-of-run signal" `Quick
      (fun () ->
        let ctx = history () in
        ignore
          (E.exec ctx.Rql.meta
             "SELECT AggregateDataInVariable(snap_id, 'SELECT COUNT(*) AS c FROM ev', 'T', \
              'avg') FROM SnapIds");
        (* counts are 3, 2, 4 -> avg 3.0 *)
        Alcotest.(check (list row)) "avg" [ [ R.Real 3.0 ] ] (q ctx "SELECT * FROM T"));
    Alcotest.test_case "AggTable avg visible value stays current per iteration" `Quick
      (fun () ->
        let ctx = history () in
        ignore
          (Rql.aggregate_data_in_table ctx ~qs:qs_all
             ~qq:"SELECT g, COUNT(*) AS c FROM ev GROUP BY g" ~table:"T"
             ~aggs:[ ("c", "avg") ]);
        (* g1: 2,2,2 -> 2.0; g2: 1,(absent),2 -> 1.5 *)
        Alcotest.(check (list row)) "avgs"
          [ [ R.Text "g1"; R.Real 2.0 ]; [ R.Text "g2"; R.Real 1.5 ] ]
          (q ctx "SELECT g, c FROM T ORDER BY g")) ]

let intervals =
  [ Alcotest.test_case "multi-column interval keys" `Quick (fun () ->
        let ctx = history () in
        ignore
          (Rql.collate_data_into_intervals ctx ~qs:qs_all ~qq:"SELECT u, g FROM ev"
             ~table:"T");
        (* u3 is deleted before snapshot 2 and reinserted before 3 *)
        Alcotest.(check (list row)) "lifetimes"
          [ [ R.Text "u1"; R.Text "g1"; R.Int 1; R.Int 3 ];
            [ R.Text "u2"; R.Text "g1"; R.Int 1; R.Int 3 ];
            [ R.Text "u3"; R.Text "g2"; R.Int 1; R.Int 1 ];
            [ R.Text "u3"; R.Text "g2"; R.Int 3; R.Int 3 ];
            [ R.Text "u4"; R.Text "g2"; R.Int 3; R.Int 3 ] ]
          (q ctx "SELECT * FROM T ORDER BY u, start_snapshot"));
    Alcotest.test_case "sparse Qs yields per-selected-snapshot contiguity" `Quick (fun () ->
        (* with snapshots {1,3}, u3 disappears at 2 but is present in
           both selected snapshots: the interval spans them because
           contiguity is relative to the iterated set (prev iteration),
           matching the paper's operational definition *)
        let ctx = history () in
        ignore
          (Rql.collate_data_into_intervals ctx
             ~qs:"SELECT snap_id FROM SnapIds WHERE snap_id <> 2"
             ~qq:"SELECT u FROM ev WHERE u = 'u3'" ~table:"T");
        Alcotest.(check (list row)) "one interval over the selected set"
          [ [ R.Text "u3"; R.Int 1; R.Int 3 ] ]
          (q ctx "SELECT * FROM T")) ]

let isolation =
  [ Alcotest.test_case "meta database rows are not snapshotted" `Quick (fun () ->
        let ctx = history () in
        ignore (Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT u FROM ev" ~table:"T");
        (* data db snapshots know nothing about T *)
        Alcotest.(check bool) "T not in data db" true
          (try
             ignore (E.exec ctx.Rql.data "SELECT * FROM T");
             false
           with E.Error _ -> true);
        Alcotest.(check bool) "meta db refuses AS OF" true
          (try
             ignore (E.exec ctx.Rql.meta "SELECT AS OF 1 * FROM SnapIds");
             false
           with E.Error _ -> true));
    Alcotest.test_case "mechanism runs do not disturb data-db snapshots" `Quick (fun () ->
        let ctx = history () in
        let before = q ctx "SELECT snap_id FROM SnapIds" in
        ignore (Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT u FROM ev" ~table:"T");
        ignore
          (Rql.aggregate_data_in_table ctx ~qs:qs_all
             ~qq:"SELECT g, COUNT(*) AS c FROM ev GROUP BY g" ~table:"T2"
             ~aggs:[ ("c", "sum") ]);
        Alcotest.(check (list row)) "snapids unchanged" before
          (q ctx "SELECT snap_id FROM SnapIds");
        Alcotest.(check int) "snapshot count unchanged" 3
          (Retro.snapshot_count (Sqldb.Db.retro_exn ctx.Rql.data));
        Alcotest.(check (list string)) "data db integrity" []
          (Sqldb.Integrity.check ctx.Rql.data);
        Alcotest.(check (list string)) "meta db integrity" []
          (Sqldb.Integrity.check ctx.Rql.meta)) ]

let () =
  Alcotest.run "rql2"
    [ ("stats-invariants", stats_invariants);
      ("ordering", ordering);
      ("all-cold", all_cold);
      ("avg-udf", avg_udf);
      ("intervals", intervals);
      ("isolation", isolation) ]
