(* Skippy skip-index tests: the skip-structured scan must produce
   exactly the same SPTs as the linear suffix scan, while visiting no
   more (and for old snapshots far fewer) entries. *)

module T = Storage.Txn
module P = Storage.Pager
module H = Storage.Heap
module S = Storage.Stats
module Spt = Retro.Spt

let build_history ~snapshots ~rows_per_snap =
  let pager = P.create () in
  let retro = Retro.attach pager in
  let heap = T.with_txn pager (fun txn -> H.create txn) in
  let expected = ref [] in
  let live = ref [] in
  let counter = ref 0 in
  for _ = 1 to snapshots do
    T.with_txn pager (fun txn ->
        for _ = 1 to rows_per_snap do
          incr counter;
          let data = Printf.sprintf "row-%06d-%s" !counter (String.make 150 'x') in
          let rid = H.insert txn heap data in
          live := (rid, data) :: !live
        done;
        (* delete the oldest third to force page churn *)
        let n_del = List.length !live / 3 in
        let rec split i acc = function
          | l when i = 0 -> (List.rev acc, l)
          | x :: tl -> split (i - 1) (x :: acc) tl
          | [] -> (List.rev acc, [])
        in
        let keep, doomed = split (List.length !live - n_del) [] !live in
        List.iter (fun (rid, _) -> ignore (H.delete txn heap rid)) doomed;
        live := keep);
    let sid = Retro.declare retro in
    expected := (sid, List.sort compare (List.map snd !live)) :: !expected
  done;
  (pager, retro, heap, List.rev !expected)

let contents retro heap sid =
  let spt = Retro.build_spt retro sid in
  let out = ref [] in
  H.iter (Retro.read_ctx retro spt) heap ~f:(fun _ d -> out := d :: !out);
  List.sort compare !out

let spt_pairs retro sid =
  let spt = Retro.build_spt retro sid in
  Hashtbl.fold (fun pid off acc -> (pid, off) :: acc) spt.Spt.map []
  |> List.sort compare

let tests =
  [ Alcotest.test_case "skippy SPTs equal linear SPTs" `Quick (fun () ->
        let _pager, retro, _heap, expected = build_history ~snapshots:40 ~rows_per_snap:120 in
        List.iter
          (fun (sid, _) ->
            Retro.set_skippy retro true;
            let a = spt_pairs retro sid in
            Retro.set_skippy retro false;
            let b = spt_pairs retro sid in
            Alcotest.(check (list (pair int int))) (Printf.sprintf "spt %d" sid) b a)
          expected);
    Alcotest.test_case "skippy reads reproduce history" `Quick (fun () ->
        let _pager, retro, heap, expected = build_history ~snapshots:30 ~rows_per_snap:100 in
        Retro.set_skippy retro true;
        List.iter
          (fun (sid, want) ->
            Alcotest.(check (list string)) (Printf.sprintf "snap %d" sid) want
              (contents retro heap sid))
          expected);
    Alcotest.test_case "skippy visits far fewer entries for old snapshots" `Quick (fun () ->
        let _pager, retro, _heap, _ = build_history ~snapshots:60 ~rows_per_snap:200 in
        let visited skippy =
          Retro.set_skippy retro skippy;
          let s0 = S.copy S.global in
          ignore (Retro.build_spt retro 1);
          (S.diff (S.copy S.global) s0).S.maplog_scanned
        in
        let linear = visited false in
        let skip = visited true in
        Alcotest.(check bool)
          (Printf.sprintf "skip %d < linear %d / 2" skip linear)
          true
          (skip * 2 < linear));
    Alcotest.test_case "digests are stable as the log grows" `Quick (fun () ->
        let pager, retro, heap, _ = build_history ~snapshots:20 ~rows_per_snap:200 in
        Retro.set_skippy retro true;
        let before = spt_pairs retro 3 in
        (* grow the history; snapshot 3's SPT gains mappings for pages
           archived later, but stays consistent with linear scans *)
        T.with_txn pager (fun txn ->
            for _ = 1 to 300 do
              ignore (H.insert txn heap (String.make 150 'y'))
            done);
        ignore (Retro.declare retro);
        ignore before;
        Retro.set_skippy retro true;
        let a = spt_pairs retro 3 in
        Retro.set_skippy retro false;
        let b = spt_pairs retro 3 in
        Alcotest.(check (list (pair int int))) "still equal" b a) ]

let () = Alcotest.run "skippy" [ ("skippy", tests) ]
