(* End-to-end SQL engine tests: DDL, DML, scans, index usage, joins,
   aggregation, ordering, DISTINCT, LIMIT, transactions, and a
   differential property against an in-memory relational model. *)

module R = Storage.Record
module E = Sqldb.Engine

let value = Alcotest.testable R.pp_value R.equal_value
let row = Alcotest.(list value)

let rows_of res = List.map Array.to_list res.E.rows

let fresh () = E.create ~snapshots:false ()

let setup_people db =
  ignore (E.exec db "CREATE TABLE people (id INTEGER, name TEXT, age INTEGER, city TEXT)");
  ignore
    (E.exec db
       "INSERT INTO people VALUES (1,'alice',30,'paris'), (2,'bob',25,'london'), \
        (3,'carol',35,'paris'), (4,'dave',25,'berlin'), (5,'eve',NULL,'paris')")

let basic =
  [ Alcotest.test_case "create, insert, select" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT name FROM people WHERE age > 26 ORDER BY name" in
        Alcotest.(check (list row)) "names"
          [ [ R.Text "alice" ]; [ R.Text "carol" ] ]
          (rows_of res));
    Alcotest.test_case "select expression columns and aliases" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT id * 10 AS tens FROM people WHERE id <= 2 ORDER BY id" in
        Alcotest.(check (array string)) "header" [| "tens" |] res.E.columns;
        Alcotest.(check (list row)) "values" [ [ R.Int 10 ]; [ R.Int 20 ] ] (rows_of res));
    Alcotest.test_case "null comparisons exclude rows" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        Alcotest.(check int) "age > 0 excludes null age" 4
          (E.int_scalar db "SELECT COUNT(*) FROM people WHERE age > 0"));
    Alcotest.test_case "update" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "UPDATE people SET age = age + 1 WHERE city = 'paris'" in
        Alcotest.(check int) "affected (null age row too)" 3 res.E.rows_affected;
        Alcotest.(check value) "alice is 31" (R.Int 31)
          (E.scalar db "SELECT age FROM people WHERE name = 'alice'");
        Alcotest.(check value) "eve still null" R.Null
          (E.scalar db "SELECT age FROM people WHERE name = 'eve'"));
    Alcotest.test_case "delete" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "DELETE FROM people WHERE age = 25" in
        Alcotest.(check int) "affected" 2 res.E.rows_affected;
        Alcotest.(check int) "remaining" 3 (E.int_scalar db "SELECT COUNT(*) FROM people"));
    Alcotest.test_case "insert partial columns fills nulls" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "INSERT INTO people (id, name) VALUES (9, 'zoe')");
        Alcotest.(check value) "city null" R.Null
          (E.scalar db "SELECT city FROM people WHERE id = 9"));
    Alcotest.test_case "insert from select" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "CREATE TABLE parisians (id INTEGER, name TEXT)");
        let res =
          E.exec db "INSERT INTO parisians SELECT id, name FROM people WHERE city = 'paris'"
        in
        Alcotest.(check int) "inserted" 3 res.E.rows_affected);
    Alcotest.test_case "create table as select" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "CREATE TABLE older AS SELECT name, age FROM people WHERE age >= 30");
        Alcotest.(check int) "rows" 2 (E.int_scalar db "SELECT COUNT(*) FROM older");
        let res = E.exec db "SELECT * FROM older LIMIT 1" in
        Alcotest.(check (array string)) "header" [| "name"; "age" |] res.E.columns);
    Alcotest.test_case "drop table" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "DROP TABLE people");
        Alcotest.(check bool) "gone" true
          (try
             ignore (E.exec db "SELECT * FROM people");
             false
           with E.Error _ -> true));
    Alcotest.test_case "duplicate table rejected, IF NOT EXISTS tolerated" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        Alcotest.(check bool) "dup raises" true
          (try
             ignore (E.exec db "CREATE TABLE people (x INTEGER)");
             false
           with E.Error _ -> true);
        ignore (E.exec db "CREATE TABLE IF NOT EXISTS people (x INTEGER)")) ]

let aggregation =
  [ Alcotest.test_case "group by with count and avg" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res =
          E.exec db
            "SELECT city, COUNT(*) AS n, AVG(age) AS a FROM people GROUP BY city ORDER BY city"
        in
        Alcotest.(check (list row)) "groups"
          [ [ R.Text "berlin"; R.Int 1; R.Real 25. ];
            [ R.Text "london"; R.Int 1; R.Real 25. ];
            [ R.Text "paris"; R.Int 3; R.Real 32.5 ] ]
          (rows_of res));
    Alcotest.test_case "aggregates ignore nulls" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        Alcotest.(check value) "count(age)" (R.Int 4) (E.scalar db "SELECT COUNT(age) FROM people");
        Alcotest.(check value) "count(*)" (R.Int 5) (E.scalar db "SELECT COUNT(*) FROM people"));
    Alcotest.test_case "aggregate over empty input" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT COUNT(*), SUM(age), MIN(age) FROM people WHERE id > 100" in
        Alcotest.(check (list row)) "one row" [ [ R.Int 0; R.Null; R.Null ] ] (rows_of res));
    Alcotest.test_case "group by empty input yields no groups" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT city, COUNT(*) FROM people WHERE id > 100 GROUP BY city" in
        Alcotest.(check int) "no rows" 0 (List.length res.E.rows));
    Alcotest.test_case "having filters groups" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res =
          E.exec db "SELECT city FROM people GROUP BY city HAVING COUNT(*) > 1 ORDER BY city"
        in
        Alcotest.(check (list row)) "paris only" [ [ R.Text "paris" ] ] (rows_of res));
    Alcotest.test_case "count distinct" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        Alcotest.(check value) "distinct ages" (R.Int 3)
          (E.scalar db "SELECT COUNT(DISTINCT age) FROM people"));
    Alcotest.test_case "sum distinct" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        Alcotest.(check value) "sum distinct ages" (R.Int 90)
          (E.scalar db "SELECT SUM(DISTINCT age) FROM people")) ]

let joins =
  [ Alcotest.test_case "equi join via WHERE (comma form)" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "CREATE TABLE cities (cname TEXT, country TEXT)");
        ignore
          (E.exec db
             "INSERT INTO cities VALUES ('paris','fr'), ('london','uk'), ('berlin','de')");
        let res =
          E.exec db
            "SELECT name, country FROM people, cities WHERE city = cname AND age >= 30 ORDER \
             BY name"
        in
        Alcotest.(check (list row)) "joined"
          [ [ R.Text "alice"; R.Text "fr" ]; [ R.Text "carol"; R.Text "fr" ] ]
          (rows_of res));
    Alcotest.test_case "JOIN ... ON form" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "CREATE TABLE cities (cname TEXT, country TEXT)");
        ignore (E.exec db "INSERT INTO cities VALUES ('paris','fr')");
        Alcotest.(check int) "count" 3
          (E.int_scalar db
             "SELECT COUNT(*) FROM people JOIN cities ON people.city = cities.cname"));
    Alcotest.test_case "self join with aliases" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        (* bob (25) and dave (25); NULL ages never match *)
        Alcotest.(check int) "same-age pairs" 1
          (E.int_scalar db
             "SELECT COUNT(*) FROM people a, people b WHERE a.age = b.age AND a.id < b.id"));
    Alcotest.test_case "cross join" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "CREATE TABLE two (x INTEGER)");
        ignore (E.exec db "INSERT INTO two VALUES (1), (2)");
        Alcotest.(check int) "product" 10 (E.int_scalar db "SELECT COUNT(*) FROM people, two"));
    Alcotest.test_case "three-way join" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "CREATE TABLE a (x INTEGER)");
        ignore (E.exec db "CREATE TABLE b (x INTEGER, y INTEGER)");
        ignore (E.exec db "CREATE TABLE c (y INTEGER)");
        ignore (E.exec db "INSERT INTO a VALUES (1), (2)");
        ignore (E.exec db "INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)");
        ignore (E.exec db "INSERT INTO c VALUES (10), (30)");
        Alcotest.(check int) "chain" 1
          (E.int_scalar db "SELECT COUNT(*) FROM a, b, c WHERE a.x = b.x AND b.y = c.y")) ]

let indexes =
  [ Alcotest.test_case "index scan matches seq scan results" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "CREATE TABLE nums (n INTEGER, s TEXT)");
        for i = 1 to 500 do
          ignore (E.exec db (Printf.sprintf "INSERT INTO nums VALUES (%d, 'v%d')" (i mod 97) i))
        done;
        let before = E.exec db "SELECT s FROM nums WHERE n = 13 ORDER BY s" in
        ignore (E.exec db "CREATE INDEX idx_n ON nums (n)");
        let after = E.exec db "SELECT s FROM nums WHERE n = 13 ORDER BY s" in
        Alcotest.(check (list row)) "same result" (rows_of before) (rows_of after);
        let before_r = E.exec db "SELECT s FROM nums WHERE n > 90 ORDER BY s" in
        let after_r = E.exec db "SELECT s FROM nums WHERE n > 90 ORDER BY s" in
        Alcotest.(check (list row)) "range same" (rows_of before_r) (rows_of after_r));
    Alcotest.test_case "index maintained by DML" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "CREATE TABLE t (k INTEGER, v TEXT)");
        ignore (E.exec db "CREATE INDEX ik ON t (k)");
        ignore (E.exec db "INSERT INTO t VALUES (1,'a'), (2,'b'), (3,'c')");
        ignore (E.exec db "UPDATE t SET k = 10 WHERE v = 'b'");
        ignore (E.exec db "DELETE FROM t WHERE v = 'c'");
        Alcotest.(check int) "k=10 via index" 1 (E.int_scalar db "SELECT COUNT(*) FROM t WHERE k = 10");
        Alcotest.(check int) "k=2 gone" 0 (E.int_scalar db "SELECT COUNT(*) FROM t WHERE k = 2");
        Alcotest.(check int) "k=3 deleted" 0 (E.int_scalar db "SELECT COUNT(*) FROM t WHERE k = 3"));
    Alcotest.test_case "drop index keeps data" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "CREATE TABLE t (k INTEGER)");
        ignore (E.exec db "CREATE INDEX ik ON t (k)");
        ignore (E.exec db "INSERT INTO t VALUES (5)");
        ignore (E.exec db "DROP INDEX ik");
        Alcotest.(check int) "still there" 1 (E.int_scalar db "SELECT COUNT(*) FROM t WHERE k = 5")) ]

let ordering =
  [ Alcotest.test_case "order by multiple keys with desc" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT name FROM people ORDER BY city ASC, age DESC, name" in
        Alcotest.(check (list row)) "order"
          [ [ R.Text "dave" ]; [ R.Text "bob" ]; [ R.Text "carol" ]; [ R.Text "alice" ];
            [ R.Text "eve" ] ]
          (rows_of res));
    Alcotest.test_case "nulls sort first ascending" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT name FROM people ORDER BY age, name LIMIT 1" in
        Alcotest.(check (list row)) "eve first" [ [ R.Text "eve" ] ] (rows_of res));
    Alcotest.test_case "order by output position" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT name, age FROM people WHERE age IS NOT NULL ORDER BY 2 DESC LIMIT 1" in
        Alcotest.(check (list row)) "oldest" [ [ R.Text "carol"; R.Int 35 ] ] (rows_of res));
    Alcotest.test_case "limit and offset" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 1" in
        Alcotest.(check (list row)) "window" [ [ R.Int 2 ]; [ R.Int 3 ] ] (rows_of res));
    Alcotest.test_case "limit without order stops the scan early" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT id FROM people LIMIT 3" in
        Alcotest.(check int) "three" 3 (List.length res.E.rows));
    Alcotest.test_case "distinct" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let res = E.exec db "SELECT DISTINCT city FROM people ORDER BY city" in
        Alcotest.(check (list row)) "cities"
          [ [ R.Text "berlin" ]; [ R.Text "london" ]; [ R.Text "paris" ] ]
          (rows_of res)) ]

let transactions =
  [ Alcotest.test_case "rollback undoes changes" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "BEGIN");
        ignore (E.exec db "DELETE FROM people");
        Alcotest.(check int) "empty inside txn" 0 (E.int_scalar db "SELECT COUNT(*) FROM people");
        ignore (E.exec db "ROLLBACK");
        Alcotest.(check int) "restored" 5 (E.int_scalar db "SELECT COUNT(*) FROM people"));
    Alcotest.test_case "commit persists changes" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        ignore (E.exec db "BEGIN");
        ignore (E.exec db "INSERT INTO people (id, name) VALUES (6, 'frank')");
        ignore (E.exec db "COMMIT");
        Alcotest.(check int) "persisted" 6 (E.int_scalar db "SELECT COUNT(*) FROM people"));
    Alcotest.test_case "ddl inside transaction rolls back" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "BEGIN");
        ignore (E.exec db "CREATE TABLE temp_t (x INTEGER)");
        ignore (E.exec db "ROLLBACK");
        Alcotest.(check bool) "table gone" true
          (try
             ignore (E.exec db "SELECT * FROM temp_t");
             false
           with E.Error _ -> true));
    Alcotest.test_case "exec_rows streams with header" `Quick (fun () ->
        let db = fresh () in
        setup_people db;
        let seen = ref [] in
        E.exec_rows db "SELECT name FROM people WHERE city = 'paris' ORDER BY name"
          ~f:(fun header r ->
            Alcotest.(check (array string)) "header" [| "name" |] header;
            seen := R.value_to_string r.(0) :: !seen);
        Alcotest.(check (list string)) "rows" [ "alice"; "carol"; "eve" ] (List.rev !seen)) ]

(* Differential property: random single-table queries vs a list model. *)
let prop_filter_matches_model =
  QCheck.Test.make ~name:"WHERE filtering matches list model" ~count:60
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 60) (pair (int_bound 20) (int_bound 5)))
              (int_bound 20))
    (fun (rows, threshold) ->
      let db = fresh () in
      ignore (E.exec db "CREATE TABLE m (a INTEGER, b INTEGER)");
      List.iter
        (fun (a, b) -> ignore (E.exec db (Printf.sprintf "INSERT INTO m VALUES (%d, %d)" a b)))
        rows;
      let expected =
        List.length (List.filter (fun (a, b) -> a > threshold && b < 3) rows)
      in
      E.int_scalar db
        (Printf.sprintf "SELECT COUNT(*) FROM m WHERE a > %d AND b < 3" threshold)
      = expected)

let prop_groupby_matches_model =
  QCheck.Test.make ~name:"GROUP BY sums match model" ~count:40
    QCheck.(list_of_size (QCheck.Gen.int_range 0 60) (pair (int_bound 5) (int_bound 100)))
    (fun rows ->
      let db = fresh () in
      ignore (E.exec db "CREATE TABLE m (g INTEGER, v INTEGER)");
      List.iter
        (fun (g, v) -> ignore (E.exec db (Printf.sprintf "INSERT INTO m VALUES (%d, %d)" g v)))
        rows;
      let model = Hashtbl.create 8 in
      List.iter
        (fun (g, v) -> Hashtbl.replace model g (v + Option.value (Hashtbl.find_opt model g) ~default:0))
        rows;
      let res = E.exec db "SELECT g, SUM(v) FROM m GROUP BY g" in
      List.length res.E.rows = Hashtbl.length model
      && List.for_all
           (fun r ->
             match (r.(0), r.(1)) with
             | R.Int g, R.Int s -> Hashtbl.find_opt model g = Some s
             | _ -> false)
           res.E.rows)

let () =
  Alcotest.run "sql"
    [ ("basic", basic);
      ("aggregation", aggregation);
      ("joins", joins);
      ("indexes", indexes);
      ("ordering", ordering);
      ("transactions", transactions);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_filter_matches_model; prop_groupby_matches_model ] ) ]
