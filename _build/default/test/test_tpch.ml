(* TPC-H substrate tests: schema and population, determinism, refresh
   functions, update-workload histories and their snapshot behaviour. *)

module R = Storage.Record
module E = Sqldb.Engine

(* a small scale factor keeps the suite fast *)
let sf = 0.002

let tests =
  [ Alcotest.test_case "dbgen populates all eight tables at scale" `Quick (fun () ->
        let ctx = Rql.create () in
        let st = Tpch.Dbgen.generate ctx.Rql.data ~sf in
        let count t = E.int_scalar ctx.Rql.data (Printf.sprintf "SELECT COUNT(*) FROM %s" t) in
        Alcotest.(check int) "region" 5 (count "region");
        Alcotest.(check int) "nation" 25 (count "nation");
        Alcotest.(check int) "supplier" (Tpch.Schema.scaled sf Tpch.Schema.sf1_supplier 10)
          (count "supplier");
        Alcotest.(check int) "part" (Tpch.Schema.scaled sf Tpch.Schema.sf1_part 50) (count "part");
        Alcotest.(check int) "customer" (Tpch.Schema.scaled sf Tpch.Schema.sf1_customer 30)
          (count "customer");
        let n_orders = Tpch.Schema.scaled sf Tpch.Schema.sf1_orders 100 in
        Alcotest.(check int) "orders" n_orders (count "orders");
        Alcotest.(check int) "partsupp is 4x part"
          (4 * Tpch.Schema.scaled sf Tpch.Schema.sf1_part 50)
          (count "partsupp");
        Alcotest.(check int) "state live orders" n_orders (Tpch.Dbgen.order_count st);
        (* lineitems: 1..7 per order *)
        let n_items = count "lineitem" in
        Alcotest.(check bool) "lineitem bounds" true
          (n_items >= n_orders && n_items <= 7 * n_orders));
    Alcotest.test_case "generation is deterministic per seed" `Quick (fun () ->
        let gen seed =
          let ctx = Rql.create () in
          ignore (Tpch.Dbgen.generate ~seed ctx.Rql.data ~sf);
          E.exec ctx.Rql.data "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_orderkey LIMIT 20"
        in
        let a = gen 7 and b = gen 7 and c = gen 8 in
        Alcotest.(check bool) "same seed same data" true (a.E.rows = b.E.rows);
        Alcotest.(check bool) "different seed differs" true (a.E.rows <> c.E.rows));
    Alcotest.test_case "column domains" `Quick (fun () ->
        let ctx = Rql.create () in
        ignore (Tpch.Dbgen.generate ctx.Rql.data ~sf);
        let bad =
          E.int_scalar ctx.Rql.data
            "SELECT COUNT(*) FROM orders WHERE o_orderstatus <> 'O' AND o_orderstatus <> 'F' \
             AND o_orderstatus <> 'P'"
        in
        Alcotest.(check int) "statuses" 0 bad;
        let types =
          E.int_scalar ctx.Rql.data "SELECT COUNT(DISTINCT p_type) FROM part"
        in
        Alcotest.(check bool) "p_type variety" true (types > 10);
        let dates =
          E.int_scalar ctx.Rql.data
            "SELECT COUNT(*) FROM orders WHERE o_orderdate < '1992-01-01' OR o_orderdate > \
             '1998-08-03'"
        in
        Alcotest.(check int) "date range" 0 dates);
    Alcotest.test_case "rf1 inserts orders and lineitems with fresh keys" `Quick (fun () ->
        let ctx = Rql.create () in
        let st = Tpch.Dbgen.generate ctx.Rql.data ~sf in
        let before = E.int_scalar ctx.Rql.data "SELECT COUNT(*) FROM orders" in
        let maxkey = E.int_scalar ctx.Rql.data "SELECT MAX(o_orderkey) FROM orders" in
        ignore (Tpch.Refresh.rf1 st ctx.Rql.data ~count:10);
        Alcotest.(check int) "orders +10" (before + 10)
          (E.int_scalar ctx.Rql.data "SELECT COUNT(*) FROM orders");
        Alcotest.(check int) "new keys above max" 10
          (E.int_scalar ctx.Rql.data
             (Printf.sprintf "SELECT COUNT(*) FROM orders WHERE o_orderkey > %d" maxkey));
        Alcotest.(check int) "new orders are open" 10
          (E.int_scalar ctx.Rql.data
             (Printf.sprintf
                "SELECT COUNT(*) FROM orders WHERE o_orderkey > %d AND o_orderstatus = 'O'"
                maxkey)));
    Alcotest.test_case "rf2 deletes orders and their lineitems" `Quick (fun () ->
        let ctx = Rql.create () in
        let st = Tpch.Dbgen.generate ctx.Rql.data ~sf in
        let orders_before = E.int_scalar ctx.Rql.data "SELECT COUNT(*) FROM orders" in
        let deleted = Tpch.Refresh.rf2 st ctx.Rql.data ~count:20 in
        Alcotest.(check int) "deleted count" 20 deleted;
        Alcotest.(check int) "orders shrunk" (orders_before - 20)
          (E.int_scalar ctx.Rql.data "SELECT COUNT(*) FROM orders");
        (* no orphan lineitems: every l_orderkey still has its order
           (checked via a join; the engine has no IN-subquery form) *)
        let item_orders =
          E.int_scalar ctx.Rql.data
            "SELECT COUNT(DISTINCT l_orderkey) FROM lineitem"
        in
        let matched =
          E.int_scalar ctx.Rql.data
            "SELECT COUNT(DISTINCT l_orderkey) FROM lineitem, orders WHERE l_orderkey = \
             o_orderkey"
        in
        Alcotest.(check int) "all lineitems have orders" item_orders matched);
    Alcotest.test_case "workload parameters match the paper" `Quick (fun () ->
        Alcotest.(check int) "UW15 at SF1" 15_000
          (Tpch.Workload.orders_per_snapshot Tpch.Workload.uw15 ~sf:1.0);
        Alcotest.(check int) "UW30 at SF1" 30_000
          (Tpch.Workload.orders_per_snapshot Tpch.Workload.uw30 ~sf:1.0);
        Alcotest.(check int) "UW30 overwrite cycle" 50
          (Tpch.Workload.overwrite_cycle Tpch.Workload.uw30);
        Alcotest.(check int) "UW15 overwrite cycle" 100
          (Tpch.Workload.overwrite_cycle Tpch.Workload.uw15);
        Alcotest.(check int) "UW7.5 overwrite cycle" 200
          (Tpch.Workload.overwrite_cycle Tpch.Workload.uw7_5);
        Alcotest.(check int) "UW60 overwrite cycle" 25
          (Tpch.Workload.overwrite_cycle Tpch.Workload.uw60));
    Alcotest.test_case "build_history declares snapshots and keeps sizes stable" `Quick
      (fun () ->
        let ctx, st, sids =
          Tpch.Workload.build_history ~sf ~uw:Tpch.Workload.uw30 ~snapshots:5 ()
        in
        Alcotest.(check (list int)) "snapshot ids" [ 1; 2; 3; 4; 5 ] sids;
        Alcotest.(check int) "SnapIds rows" 5
          (E.int_scalar ctx.Rql.meta "SELECT COUNT(*) FROM SnapIds");
        (* delete+insert keeps the order population constant *)
        let n_orders = Tpch.Schema.scaled sf Tpch.Schema.sf1_orders 100 in
        Alcotest.(check int) "orders constant" n_orders
          (E.int_scalar ctx.Rql.data "SELECT COUNT(*) FROM orders");
        Alcotest.(check int) "state agrees" n_orders (Tpch.Dbgen.order_count st));
    Alcotest.test_case "snapshots of the history read consistently" `Quick (fun () ->
        let ctx, _st, sids =
          Tpch.Workload.build_history ~sf ~uw:Tpch.Workload.uw30 ~snapshots:4 ()
        in
        let n_orders = Tpch.Schema.scaled sf Tpch.Schema.sf1_orders 100 in
        List.iter
          (fun sid ->
            Alcotest.(check int)
              (Printf.sprintf "count as of %d" sid)
              n_orders
              (E.int_scalar ctx.Rql.data
                 (Printf.sprintf "SELECT AS OF %d COUNT(*) FROM orders" sid)))
          sids);
    Alcotest.test_case "consecutive snapshots differ by the refresh batch" `Quick (fun () ->
        let ctx, st, _sids =
          Tpch.Workload.build_history ~sf ~uw:Tpch.Workload.uw30 ~snapshots:3 ()
        in
        let batch = Tpch.Workload.orders_per_snapshot Tpch.Workload.uw30 ~sf:st.Tpch.Dbgen.sf in
        (* orders in snapshot 3 but not in snapshot 2 = the inserted batch *)
        ignore
          (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds WHERE snap_id >= 2"
             ~qq:"SELECT o_orderkey, current_snapshot() AS sid FROM orders" ~table:"CD");
        let n_orders = Tpch.Schema.scaled sf Tpch.Schema.sf1_orders 100 in
        let intersection =
          E.int_scalar ctx.Rql.meta
            "SELECT COUNT(*) FROM CD a, CD b WHERE a.o_orderkey = b.o_orderkey AND a.sid = 2 \
             AND b.sid = 3"
        in
        Alcotest.(check int) "diff equals refresh batch" batch (n_orders - intersection)) ]

let () = Alcotest.run "tpch" [ ("tpch", tests) ]
