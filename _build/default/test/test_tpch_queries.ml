(* TPC-H query tests: every query in Tpch.Tpch_queries runs on the
   engine; Q1 and Q6 are verified differentially against straightforward
   OCaml computations over the raw rows; and queries run AS OF past
   snapshots return the historical answers. *)

module R = Storage.Record
module E = Sqldb.Engine



let ctx_and_state =
  lazy
    (let ctx = Rql.create () in
     let st = Tpch.Dbgen.generate ctx.Rql.data ~sf:0.005 in
     (ctx, st))

let db () = (fst (Lazy.force ctx_and_state)).Rql.data

let veq a b =
  match (a, b) with
  | R.Real x, R.Real y -> Float.abs (x -. y) <= 1e-6 *. Float.max 1. (Float.abs x)
  | _ -> R.equal_value a b

let run_all =
  List.map
    (fun (id, sql) ->
      Alcotest.test_case (id ^ " runs") `Quick (fun () ->
          let res = E.exec (db ()) sql in
          Alcotest.(check bool) "has header" true (Array.length res.E.columns > 0);
          match id with
          | "Q1" ->
            (* at most |returnflag| x |linestatus| groups, all non-empty *)
            Alcotest.(check bool) "groups" true
              (List.length res.E.rows >= 1 && List.length res.E.rows <= 4)
          | "Q3" -> Alcotest.(check bool) "top-10" true (List.length res.E.rows <= 10)
          | "Q4" -> Alcotest.(check bool) "priorities" true (List.length res.E.rows <= 5)
          | "Q5" -> Alcotest.(check bool) "nations" true (List.length res.E.rows <= 25)
          | "Q6" | "Q14" | "Q19" -> Alcotest.(check int) "single row" 1 (List.length res.E.rows)
          | "Q10" -> Alcotest.(check bool) "top-20" true (List.length res.E.rows <= 20)
          | "Q12" -> Alcotest.(check bool) "two modes" true (List.length res.E.rows <= 2)
          | _ -> ()))
    Tpch.Tpch_queries.all

(* Differential check for Q6: fold the predicate by hand over raw rows. *)
let q6_expected db ~date_lo ~date_hi ~disc_lo ~disc_hi ~quantity =
  let total = ref 0.0 and seen = ref false in
  E.exec_rows db
    "SELECT l_shipdate, l_discount, l_quantity, l_extendedprice FROM lineitem"
    ~f:(fun _ row ->
      match row with
      | [| R.Text ship; R.Real disc; R.Int qty; R.Real price |] ->
        if
          ship >= date_lo && ship < date_hi
          && disc >= disc_lo -. 1e-9
          && disc <= disc_hi +. 1e-9
          && qty < quantity
        then begin
          seen := true;
          total := !total +. (price *. disc)
        end
      | _ -> Alcotest.fail "unexpected row shape");
  if !seen then R.Real !total else R.Null

let differential =
  [ Alcotest.test_case "Q6 matches a hand computation" `Quick (fun () ->
        let db = db () in
        let got = E.scalar db (Tpch.Tpch_queries.q6 ()) in
        let want =
          q6_expected db ~date_lo:"1994-01-01" ~date_hi:"1995-01-01" ~disc_lo:0.05
            ~disc_hi:0.07 ~quantity:24
        in
        Alcotest.(check bool)
          (Printf.sprintf "got %s want %s" (R.value_to_string got) (R.value_to_string want))
          true (veq got want));
    Alcotest.test_case "Q1 count_order matches a hand computation" `Quick (fun () ->
        let db = db () in
        let model = Hashtbl.create 8 in
        E.exec_rows db "SELECT l_returnflag, l_linestatus, l_shipdate FROM lineitem"
          ~f:(fun _ row ->
            match row with
            | [| R.Text rf; R.Text ls; R.Text ship |] ->
              if ship <= "1998-09-02" then
                Hashtbl.replace model (rf, ls)
                  (1 + Option.value (Hashtbl.find_opt model (rf, ls)) ~default:0)
            | _ -> Alcotest.fail "unexpected row shape");
        let res = E.exec db (Tpch.Tpch_queries.q1 ()) in
        Alcotest.(check int) "group count" (Hashtbl.length model) (List.length res.E.rows);
        List.iter
          (fun row ->
            match (row.(0), row.(1), row.(Array.length row - 1)) with
            | R.Text rf, R.Text ls, R.Int n ->
              Alcotest.(check (option int))
                (Printf.sprintf "group %s/%s" rf ls)
                (Some n)
                (Hashtbl.find_opt model (rf, ls))
            | _ -> Alcotest.fail "unexpected Q1 row")
          res.E.rows);
    Alcotest.test_case "Q5 revenue is consistent with Q5 re-aggregated" `Quick (fun () ->
        let db = db () in
        let res = E.exec db (Tpch.Tpch_queries.q5 ()) in
        (* revenues are sorted descending *)
        let revs =
          List.map
            (fun r -> match r.(1) with R.Real f -> f | R.Int i -> float_of_int i | _ -> nan)
            res.E.rows
        in
        let rec sorted = function
          | a :: b :: tl -> a >= b && sorted (b :: tl)
          | _ -> true
        in
        Alcotest.(check bool) "descending" true (sorted revs)) ]

let retrospective =
  [ Alcotest.test_case "Q6 AS OF returns the historical answer" `Quick (fun () ->
        let ctx, st = Lazy.force ctx_and_state in
        let db = ctx.Rql.data in
        let before = E.scalar db (Tpch.Tpch_queries.q6 ()) in
        let sid = Rql.declare_snapshot ctx in
        (* churn the database *)
        ignore (Tpch.Refresh.rf2 st db ~count:200);
        ignore (Tpch.Refresh.rf1 st db ~count:200);
        let current = E.scalar db (Tpch.Tpch_queries.q6 ()) in
        let as_of =
          E.scalar db (Rql.Rewrite.rewrite (Tpch.Tpch_queries.q6 ()) ~sid)
        in
        Alcotest.(check bool) "historical matches pre-churn" true (veq before as_of);
        Alcotest.(check bool) "current differs (churned)" true (not (veq before current)));
    Alcotest.test_case "Q1 inside an RQL mechanism across snapshots" `Quick (fun () ->
        let ctx, st = Lazy.force ctx_and_state in
        (* two more snapshots *)
        ignore (Tpch.Refresh.rf2 st ctx.Rql.data ~count:100);
        ignore (Tpch.Refresh.rf1 st ctx.Rql.data ~count:100);
        ignore (Rql.declare_snapshot ctx);
        let run =
          Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
            ~qq:
              ("SELECT current_snapshot() AS sid, l_returnflag, l_linestatus, COUNT(*) AS \
                count_order FROM lineitem WHERE l_shipdate <= '1998-09-02' GROUP BY \
                l_returnflag, l_linestatus")
            ~table:"q1_series"
        in
        Alcotest.(check bool) "iterated" true (List.length run.Rql.Iter_stats.iterations >= 2);
        Alcotest.(check bool) "collected" true (run.Rql.Iter_stats.result_rows >= 4)) ]

let () =
  Alcotest.run "tpch-queries"
    [ ("run-all", run_all); ("differential", differential); ("retrospective", retrospective) ]
