(* Transaction tests: isolation of uncommitted writes, abort semantics,
   before-images delivered to the commit hook, page allocation and
   recycling. *)

module T = Storage.Txn
module P = Storage.Pager
module Pg = Storage.Page

let tests =
  [ Alcotest.test_case "committed write is visible" `Quick (fun () ->
        let pager = P.create () in
        let pid = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        T.with_txn pager (fun txn ->
            let p = T.write txn pid in
            ignore (Pg.insert p "hello"));
        Alcotest.(check (option string)) "visible" (Some "hello")
          (Pg.get (P.read_committed pager pid) 0));
    Alcotest.test_case "uncommitted write is invisible to committed readers" `Quick (fun () ->
        let pager = P.create () in
        let pid = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        let txn = T.begin_txn pager in
        let p = T.write txn pid in
        ignore (Pg.insert p "dirty");
        Alcotest.(check (option string)) "hidden" None (Pg.get (P.read_committed pager pid) 0);
        Alcotest.(check (option string)) "own write visible" (Some "dirty")
          (Pg.get (T.read txn pid) 0);
        T.abort txn);
    Alcotest.test_case "abort discards writes" `Quick (fun () ->
        let pager = P.create () in
        let pid = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        let txn = T.begin_txn pager in
        ignore (Pg.insert (T.write txn pid) "x");
        T.abort txn;
        Alcotest.(check (option string)) "gone" None (Pg.get (P.read_committed pager pid) 0));
    Alcotest.test_case "with_txn aborts on exception" `Quick (fun () ->
        let pager = P.create () in
        let pid = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        (try
           T.with_txn pager (fun txn ->
               ignore (Pg.insert (T.write txn pid) "x");
               failwith "boom")
         with Failure _ -> ());
        Alcotest.(check (option string)) "rolled back" None
          (Pg.get (P.read_committed pager pid) 0));
    Alcotest.test_case "commit hook receives before-images" `Quick (fun () ->
        let pager = P.create () in
        let pid = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        T.with_txn pager (fun txn -> ignore (Pg.insert (T.write txn pid) "v1"));
        let captured = ref [] in
        pager.P.pre_commit_hook <- (fun events -> captured := events);
        T.with_txn pager (fun txn -> ignore (Pg.insert (T.write txn pid) "v2"));
        (match !captured with
        | [ ev ] ->
          Alcotest.(check int) "pid" pid ev.P.pid;
          (match ev.P.before with
          | Some before ->
            Alcotest.(check (option string)) "before-image has v1 only" (Some "v1")
              (Pg.get before 0);
            Alcotest.(check (option string)) "before-image lacks v2" None (Pg.get before 1)
          | None -> Alcotest.fail "expected a before-image")
        | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)));
    Alcotest.test_case "fresh pages have no before-image" `Quick (fun () ->
        let pager = P.create () in
        let captured = ref [] in
        pager.P.pre_commit_hook <- (fun events -> captured := events);
        ignore (T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page));
        (match !captured with
        | [ ev ] -> Alcotest.(check bool) "no before" true (ev.P.before = None)
        | _ -> Alcotest.fail "expected 1 event"));
    Alcotest.test_case "aborted allocation recycles the page id" `Quick (fun () ->
        let pager = P.create () in
        let txn = T.begin_txn pager in
        let pid = T.alloc txn Pg.Heap_page in
        T.abort txn;
        let pid2 = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        Alcotest.(check int) "recycled" pid pid2);
    Alcotest.test_case "freed page recycled with old image as before" `Quick (fun () ->
        let pager = P.create () in
        let pid = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        T.with_txn pager (fun txn -> ignore (Pg.insert (T.write txn pid) "old"));
        T.with_txn pager (fun txn -> T.free txn pid);
        let captured = ref [] in
        pager.P.pre_commit_hook <- (fun events -> captured := events);
        let pid2 = T.with_txn pager (fun txn -> T.alloc txn Pg.Heap_page) in
        Alcotest.(check int) "same id" pid pid2;
        (match !captured with
        | [ ev ] -> (
          match ev.P.before with
          | Some before ->
            Alcotest.(check (option string)) "old content preserved" (Some "old")
              (Pg.get before 0)
          | None -> Alcotest.fail "recycled page must carry its old image")
        | _ -> Alcotest.fail "expected 1 event"));
    Alcotest.test_case "double commit rejected" `Quick (fun () ->
        let pager = P.create () in
        let txn = T.begin_txn pager in
        T.commit txn;
        Alcotest.check_raises "second commit" (Invalid_argument "Txn: transaction is not active")
          (fun () -> T.commit txn));
    Alcotest.test_case "stats count commits and aborts" `Quick (fun () ->
        let pager = P.create () in
        let s0 = Storage.Stats.copy Storage.Stats.global in
        T.with_txn pager (fun _ -> ());
        (try T.with_txn pager (fun _ -> failwith "x") with Failure _ -> ());
        let d = Storage.Stats.diff (Storage.Stats.copy Storage.Stats.global) s0 in
        Alcotest.(check int) "commits" 1 d.Storage.Stats.txn_commits;
        Alcotest.(check int) "aborts" 1 d.Storage.Stats.txn_aborts) ]

let () = Alcotest.run "txn" [ ("txn", tests) ]
