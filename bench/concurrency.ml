(* AS OF read-scaling benchmark: N reader sessions on N domains over
   one shared core, each replaying the same historical-aggregate
   workload against every snapshot of a UW history.

   The container pins the process to one core, so the scaling being
   measured is I/O overlap, not CPU parallelism: with
   [Stats.Cost_model.real_read_latency] on, every snapshot-archive read
   spends its modeled device time as a real sleep outside all locks —
   exactly the wait a real SSD would impose — and concurrent readers
   overlap those waits where a single session would serialize them.
   The archive page cache is pinned tiny so the workload stays
   read-dominated instead of converging to a warm cache.

   The run also cross-checks the Domain-parallel RQL snapshot loop:
   for each UW class, CollateData with [--domains] workers must produce
   a byte-identical result table to the sequential loop.

     concurrency.exe --readers 4 --json out.json

   exits non-zero if any RQL cross-check diverges, if checksum
   failures appear, or (with --gate X) if speedup < X. *)

module E = Sqldb.Engine
module R = Storage.Record
module S = Sqldb.Session
module Stats = Storage.Stats

let now () = Unix.gettimeofday ()

(* --- fixture ------------------------------------------------------------ *)

let build ~sf ~uw ~snapshots =
  let ctx, _st, sids = Tpch.Workload.build_history ~sf ~uw ~snapshots () in
  (match Sqldb.Db.(ctx.Rql.data.retro) with
  | Some retro -> Retro.set_cache_pages retro 2 (* keep reads archive-bound *)
  | None -> ());
  (ctx, sids)

let asof_query sid =
  Printf.sprintf "SELECT AS OF %d COUNT(*), SUM(o_totalprice) FROM orders" sid

(* --- AS OF read scaling ------------------------------------------------- *)

(* Each reader runs [rounds] passes over every snapshot on its own
   session.  Work per domain is constant, so throughput(N readers) /
   throughput(1 reader) isolates the overlap win. *)
let run_readers ctx sids ~readers ~rounds =
  let db = ctx.Rql.data in
  let queries = ref 0 in
  let reader () =
    S.with_session db (fun s ->
        let n = ref 0 in
        for _ = 1 to rounds do
          List.iter (fun sid -> ignore (E.exec s (asof_query sid)); Stdlib.incr n) sids
        done;
        !n)
  in
  let t0 = now () in
  let counts =
    if readers = 1 then [ reader () ]
    else List.map Domain.join (List.init readers (fun _ -> Domain.spawn reader))
  in
  let dt = now () -. t0 in
  queries := List.fold_left ( + ) 0 counts;
  (!queries, dt, float_of_int !queries /. dt)

(* --- parallel-vs-sequential RQL cross-check ----------------------------- *)

let table_rows ctx table =
  (E.exec ctx.Rql.meta (Printf.sprintf "SELECT * FROM %s" table)).E.rows

let rql_identical ~sf ~domains uw =
  let ctx, _sids = build ~sf ~uw ~snapshots:5 in
  let qs = "SELECT snap_id FROM SnapIds" in
  let qq = "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000" in
  ignore (Rql.collate_data ctx ~qs ~qq ~table:"Cseq");
  ignore (Rql.collate_data ~domains ctx ~qs ~qq ~table:"Cpar");
  table_rows ctx "Cseq" = table_rows ctx "Cpar"

(* --- entry point -------------------------------------------------------- *)

open Cmdliner

let readers =
  let doc = "Reader domains for the scaling measurement." in
  Arg.(value & opt int 4 & info [ "readers" ] ~docv:"N" ~doc)

let rounds =
  let doc = "Passes over the snapshot set per reader." in
  Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N" ~doc)

let domains =
  let doc = "Worker domains for the parallel-RQL cross-check." in
  Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N" ~doc)

let sf =
  let doc = "TPC-H scale factor of the fixture." in
  Arg.(value & opt float 0.002 & info [ "sf" ] ~docv:"SF" ~doc)

let latency_us =
  let doc = "Simulated archive read latency in microseconds.  The default \
             makes the workload read-dominated so the overlap win is \
             stable against CPU noise; the engine default (250us, the \
             paper's calibration) still applies outside this bench." in
  Arg.(value & opt float 1000. & info [ "latency-us" ] ~docv:"US" ~doc)

let gate =
  let doc = "Fail unless speedup >= this factor (0 = report only)." in
  Arg.(value & opt float 0. & info [ "gate" ] ~docv:"X" ~doc)

let json_path =
  let doc = "Write results as JSON to this path." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

let main readers rounds domains sf latency_us gate json_path =
  Stats.Cost_model.real_read_latency := true;
  Stats.Cost_model.ssd_read_s := latency_us *. 1e-6;
  let cf0 = Obs.Metrics.Counter.get (Obs.Metrics.counter "retro.checksum_failures") in
  let ctx, sids = build ~sf ~uw:Tpch.Workload.uw30 ~snapshots:8 in
  Printf.printf "fixture: sf=%g snapshots=%d, archive read latency %gus\n%!" sf
    (List.length sids)
    (!Stats.Cost_model.ssd_read_s *. 1e6);
  (* One untimed pass amortizes SPT builds and JIT-ish warmup equally
     into both measurements. *)
  ignore (run_readers ctx sids ~readers:1 ~rounds:1);
  let q1, t1, thr1 = run_readers ctx sids ~readers:1 ~rounds in
  Printf.printf "1 reader : %4d queries in %6.2fs  (%7.1f q/s)\n%!" q1 t1 thr1;
  let qn, tn, thrn = run_readers ctx sids ~readers ~rounds in
  Printf.printf "%d readers: %4d queries in %6.2fs  (%7.1f q/s)\n%!" readers qn tn thrn;
  let speedup = thrn /. thr1 in
  Printf.printf "speedup: %.2fx\n%!" speedup;
  let uws = [ Tpch.Workload.uw15; Tpch.Workload.uw30; Tpch.Workload.uw60 ] in
  let checks =
    List.map
      (fun uw ->
        let ok = rql_identical ~sf ~domains uw in
        Printf.printf "parallel RQL (%s): %s\n%!" uw.Tpch.Workload.uname
          (if ok then "identical" else "DIVERGED");
        (uw.Tpch.Workload.uname, ok))
      uws
  in
  let failures =
    Obs.Metrics.Counter.get (Obs.Metrics.counter "retro.checksum_failures") - cf0
  in
  Printf.printf "retro.checksum_failures: %d\n%!" failures;
  (match json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"readers\": %d,\n  \"rounds\": %d,\n  \"queries_1\": %d,\n  \
       \"seconds_1\": %.4f,\n  \"throughput_1\": %.2f,\n  \"queries_n\": %d,\n  \
       \"seconds_n\": %.4f,\n  \"throughput_n\": %.2f,\n  \"speedup\": %.3f,\n  \
       \"checksum_failures\": %d,\n  \"rql_identical\": {%s}\n}\n"
      readers rounds q1 t1 thr1 qn tn thrn speedup failures
      (String.concat ", "
         (List.map (fun (n, ok) -> Printf.sprintf "\"%s\": %b" n ok) checks));
    close_out oc;
    Printf.printf "wrote %s\n%!" path);
  let rql_ok = List.for_all snd checks in
  if not rql_ok then begin
    prerr_endline "FAIL: parallel RQL diverged from sequential";
    exit 1
  end;
  if failures > 0 then begin
    prerr_endline "FAIL: checksum failures during concurrent reads";
    exit 1
  end;
  if gate > 0. && speedup < gate then begin
    Printf.eprintf "FAIL: speedup %.2fx below gate %.2fx\n" speedup gate;
    exit 1
  end

let cmd =
  let doc = "AS OF read scaling across reader domains + parallel-RQL cross-check" in
  Cmd.v (Cmd.info "concurrency" ~doc)
    Term.(const main $ readers $ rounds $ domains $ sf $ latency_us $ gate $ json_path)

let () = exit (Cmd.eval cmd)
