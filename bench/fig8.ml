(* Figure 8: single-iteration cost breakdown for
   AggregateDataInVariable(Qs, Qq_io, AVG) under UW30.

   Bars: old cold, old hot, Slast-50 cold/hot, Slast-25 cold/hot, Slast
   hot, and the same query on the current state.  Components: modeled
   I/O, SPT build, query evaluation, RQL UDF. *)

let run () =
  Util.section "Figure 8 — Single-iteration cost breakdown, AggVar(Qq_io, AVG), UW30";
  Util.expectation
    "old cold dominated by I/O; old hot roughly halves it; iterations near Slast fetch \
     mostly from the database and get cheap; current state is cheapest";
  let uw = Tpch.Workload.uw30 in
  let fx = Fixtures.main uw in
  let history = fx.Fixtures.config.Fixtures.snapshots in
  let ctx = fx.Fixtures.ctx in
  let interval = 25 in
  let run_range start =
    Rql.aggregate_data_in_variable ctx
      ~qs:(Queries.qs_range ~start ~len:interval)
      ~qq:Queries.qq_io ~table:"bench_f8" ~fn:"avg"
  in
  let old_run = Util.record ~experiment:"fig8" ~label:"old" (run_range 1) in
  let r50 = Util.record ~experiment:"fig8" ~label:"Slast-50" (run_range (history - 50)) in
  let r25 = Util.record ~experiment:"fig8" ~label:"Slast-25" (run_range (history - 25)) in
  Util.print_breakdown_header ();
  let cold, hot = Util.cold_hot old_run in
  Util.print_breakdown "old snapshot, cold iteration" cold;
  Util.print_breakdown "old snapshot, hot iteration" hot;
  let cold, hot = Util.cold_hot r50 in
  Util.print_breakdown "Slast-50, cold iteration" cold;
  Util.print_breakdown "Slast-50, hot iteration" hot;
  let cold, hot = Util.cold_hot r25 in
  Util.print_breakdown "Slast-25, cold iteration" cold;
  Util.print_breakdown "Slast-25, hot iteration" hot;
  (* the most recent iteration of the interval ending at Slast *)
  (match List.rev r25.Rql.Iter_stats.iterations with
  | last :: _ ->
    Util.print_breakdown "Slast, hot iteration" (Rql.Iter_stats.breakdown_of [ last ])
  | [] -> ());
  (* current state: the same Qq without a snapshot *)
  let t0 = Unix.gettimeofday () in
  ignore (Sqldb.Engine.exec ctx.Rql.data Queries.qq_io);
  let dt = Unix.gettimeofday () -. t0 in
  Util.print_breakdown "current state"
    { Rql.Iter_stats.b_io = 0.; b_spt = 0.; b_index = 0.; b_query = dt; b_udf = 0. }
