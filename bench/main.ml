(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation (§5).

     dune exec bench/main.exe                 all experiments, quick scale
     dune exec bench/main.exe -- --full       larger scale
     dune exec bench/main.exe -- --only fig6,fig8
     dune exec bench/main.exe -- --skip-micro

   Absolute numbers differ from the paper (different hardware, a
   simulated SSD, a scaled-down TPC-H); the shapes the paper reports are
   the reproduction target.  EXPERIMENTS.md records paper-vs-measured
   for every experiment. *)

let experiments : (string * string * (unit -> unit)) list =
  [ ("fig6", "ratio C vs interval length (old snapshots)", Fig6.run);
    ("fig7", "ratio C vs interval start (recent snapshots)", Fig7.run);
    ("fig8", "single-iteration breakdown, Qq_io", Fig8.run);
    ("fig9", "CPU-intensive Qq_cpu, index effects", Fig9.run);
    ("fig10", "CollateData vs Qq output size", Fig10.run);
    ("fig11", "AggTable vs Collate+SQL, memory", Fig11.run);
    ("fig12", "per-iteration Collate vs AggTable", Fig12.run);
    ("fig13", "AggTable MAX vs SUM", Fig13.run);
    ("sec5.3", "interval result sizes across workloads", Intervals_table.run);
    ("ablation", "Skippy skip index; snapshot cache size (extensions)", Ablation.run) ]

let print_table1 () =
  Util.section "Table 1 — Parameters and notations";
  List.iter (fun (name, text) -> Printf.printf "%-22s %s\n" name text) Queries.table_1

open Cmdliner

let full =
  let doc = "Run at a larger scale (slower, closer to the paper's setup)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let only =
  let doc =
    "Comma-separated experiment ids to run (fig6..fig13, sec5.3, ablation, micro). Default: all."
  in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"IDS" ~doc)

let skip_micro =
  let doc = "Skip the bechamel micro-benchmark suite." in
  Arg.(value & flag & info [ "skip-micro" ] ~doc)

let analyze =
  let doc =
    "Replace the bechamel micro suite with the EXPLAIN ANALYZE observability smoke: \
     seeded fixtures, one analyzed statement per plan shape, one analyzed RQL run; \
     analyses land under the \"analysis\" key of --json output."
  in
  Arg.(value & flag & info [ "analyze" ] ~doc)

let scope_smoke =
  let doc =
    "Replace the bechamel micro suite with the scoped-instrumentation smoke: \
     Qq_cpu with a child scope installed vs. the root-only baseline (gate: within 5%), \
     plus the sys_heat = storage.page_reads partition check."
  in
  Arg.(value & flag & info [ "scope-smoke" ] ~doc)

let opt_smoke =
  let doc =
    "Replace the bechamel micro suite with the plan-IR optimizer smoke: a foldable \
     Qq_cpu through the snapshot loop must advance the fold/hoist counters, match \
     the $(b,PRAGMA optimize=off) results exactly, and not run slower (p50 gate)."
  in
  Arg.(value & flag & info [ "opt-smoke" ] ~doc)

let json_path =
  let doc = "Write recorded runs and the metrics registry as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

let prom_path =
  let doc = "Write the final metrics registry in Prometheus text exposition format to $(docv)." in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"PATH" ~doc)

let sample_every =
  let doc = "Sample the metrics registry into the time-series ring every $(docv) SQL statements (0 = only the final sample)." in
  Arg.(value & opt int 1000 & info [ "sample-every" ] ~docv:"N" ~doc)

let main full only skip_micro analyze scope_smoke opt_smoke json_path prom_path sample_every =
  if full then Params.current := Params.full;
  Obs.Timeseries.set_interval sample_every;
  let selected =
    match only with
    | None -> None
    | Some s -> Some (String.split_on_char ',' (String.lowercase_ascii s))
  in
  let wanted id = match selected with None -> true | Some ids -> List.mem id ids in
  let t0 = Unix.gettimeofday () in
  Printf.printf
    "RQL benchmark harness — reproducing the EDBT'18 evaluation (TPC-H SF %g, %s scale)\n"
    (Params.p ()).Params.sf
    (if full then "full" else "quick");
  if selected = None then print_table1 ();
  List.iter (fun (id, _, run) -> if wanted id then run ()) experiments;
  if (not skip_micro) && wanted "micro" then
    if analyze then Micro.run_analyze ()
    else if scope_smoke then Micro.run_scope_smoke ()
    else if opt_smoke then Micro.run_opt_smoke ()
    else Micro.run ();
  (match json_path with Some path -> Util.write_json path | None -> ());
  (match prom_path with
  | Some path ->
    Obs.Metrics.write_prometheus ~path;
    Printf.printf "wrote Prometheus exposition to %s\n" path
  | None -> ());
  Printf.printf "\nall experiments done in %.1fs\n" (Unix.gettimeofday () -. t0)

let cmd =
  let doc = "reproduce the RQL paper's performance evaluation" in
  Cmd.v
    (Cmd.info "rql-bench" ~doc)
    Term.(
      const main $ full $ only $ skip_micro $ analyze $ scope_smoke $ opt_smoke $ json_path
      $ prom_path $ sample_every)

let () = exit (Cmd.eval cmd)
