(* Bechamel micro-benchmarks for the primitive operations underlying
   the experiments: row codec, slotted-page insert, B+tree insert and
   lookup, SPT construction, snapshot page fetch, Qq parsing and
   rewriting.  One Test.make per primitive, all in one executable. *)

open Bechamel
open Toolkit

module R = Storage.Record

let sample_row : R.row =
  [| R.Int 42; R.Text "Customer#000000042"; R.Real 3141.59; R.Null; R.Text "1995-03-15" |]

let encoded = R.encode_row sample_row

let test_encode =
  Test.make ~name:"record.encode_row" (Staged.stage (fun () -> ignore (R.encode_row sample_row)))

let test_decode =
  Test.make ~name:"record.decode_row" (Staged.stage (fun () -> ignore (R.decode_row encoded)))

let test_page_insert =
  let page = Storage.Page.create Storage.Page.Heap_page in
  Test.make ~name:"page.insert+delete"
    (Staged.stage (fun () ->
         match Storage.Page.insert page encoded with
         | Some slot -> ignore (Storage.Page.delete page slot)
         | None -> Storage.Page.init page Storage.Page.Heap_page))

(* A pre-filled B+tree for lookups and (churning) inserts. *)
let btree_fixture =
  lazy
    (let pager = Storage.Pager.create () in
     let tree = Storage.Txn.with_txn pager (fun txn -> Storage.Btree.create txn) in
     Storage.Txn.with_txn pager (fun txn ->
         for i = 1 to 20_000 do
           Storage.Btree.insert txn tree [| R.Int ((i * 7919) mod 20_000) |] i
         done);
     (pager, tree))

let test_btree_lookup =
  Test.make ~name:"btree.lookup (20k entries)"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          let pager, tree = Lazy.force btree_fixture in
          incr counter;
          Storage.Btree.lookup (Storage.Pager.read pager) tree
            [| R.Int (!counter mod 20_000) |]
            ~f:(fun _ -> ())))

let test_btree_insert =
  Test.make ~name:"btree.insert+delete (20k entries)"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          let pager, tree = Lazy.force btree_fixture in
          incr counter;
          let key = [| R.Int (20_000 + (!counter mod 1000)) |] in
          Storage.Txn.with_txn pager (fun txn ->
              Storage.Btree.insert txn tree key 999_999;
              ignore (Storage.Btree.delete txn tree key 999_999))))

(* A small Retro history for SPT construction and snapshot reads. *)
let retro_fixture =
  lazy
    (let pager = Storage.Pager.create () in
     let retro = Retro.attach pager in
     let heap = Storage.Txn.with_txn pager (fun txn -> Storage.Heap.create txn) in
     for _ = 1 to 50 do
       Storage.Txn.with_txn pager (fun txn ->
           for _ = 1 to 50 do
             ignore (Storage.Heap.insert txn heap (String.make 200 'x'))
           done);
       ignore (Retro.declare retro)
     done;
     (retro, heap))

let test_spt_build =
  Test.make ~name:"retro.build_spt (50-snapshot history)"
    (Staged.stage (fun () ->
         let retro, _ = Lazy.force retro_fixture in
         ignore (Retro.build_spt retro 10)))

let test_snapshot_read =
  Test.make ~name:"retro snapshot heap scan"
    (Staged.stage
       (let spt = lazy (Retro.build_spt (fst (Lazy.force retro_fixture)) 10) in
        fun () ->
          let retro, heap = Lazy.force retro_fixture in
          let n = ref 0 in
          Storage.Heap.iter (Retro.read_ctx retro (Lazy.force spt)) heap ~f:(fun _ _ -> incr n)))

let test_parse =
  Test.make ~name:"sql.parse (Qq_agg)"
    (Staged.stage (fun () -> ignore (Sqldb.Parser.parse_one Queries.qq_agg)))

let test_rewrite =
  Test.make ~name:"rql.rewrite (Qq with current_snapshot)"
    (Staged.stage (fun () ->
         ignore
           (Rql.Rewrite.rewrite
              "SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn" ~sid:42)))

let tests =
  [ test_encode; test_decode; test_page_insert; test_btree_lookup; test_btree_insert;
    test_spt_build; test_snapshot_read; test_parse; test_rewrite ]

(* --- EXPLAIN ANALYZE smoke (bench --analyze) ---------------------------- *)

module E = Sqldb.Engine

(* Seed small fixtures, EXPLAIN ANALYZE one statement per plan shape
   (scan / filter / join / agg), then an analyzed RQL run; each analysis
   document is recorded for the --json output so CI can assert on the
   per-operator actuals. *)
let run_analyze () =
  Util.section "EXPLAIN ANALYZE: per-operator actuals on seeded fixtures";
  let ctx = Rql.create () in
  let db = ctx.Rql.data in
  ignore (E.exec db "CREATE TABLE t (a INTEGER, b INTEGER)");
  ignore (E.exec db "CREATE TABLE u (a INTEGER, c INTEGER)");
  ignore (E.exec db "BEGIN");
  for i = 1 to 200 do
    ignore (E.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i mod 10)))
  done;
  for i = 1 to 50 do
    ignore (E.exec db (Printf.sprintf "INSERT INTO u VALUES (%d, %d)" i (i * 2)))
  done;
  ignore (E.exec db "COMMIT");
  ignore (Rql.declare_snapshot ctx);
  let stmts =
    [ ("scan", "SELECT * FROM t");
      ("filter", "SELECT * FROM t, u WHERE t.a = u.a AND t.b + u.c > 0");
      ("join", "SELECT t.a, u.c FROM t, u WHERE t.a = u.a");
      ("agg", "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b") ]
  in
  List.iter
    (fun (label, sql) ->
      Util.subsection label;
      let res = E.exec db ("EXPLAIN ANALYZE " ^ sql) in
      List.iter (fun row -> print_endline (R.value_to_string row.(0))) res.E.rows;
      match E.last_analysis db with
      | Some az -> Util.record_analysis ~label (Sqldb.Plan.analysis_to_json az)
      | None -> ())
    stmts;
  (* An analyzed RQL run: the Qq's operator actuals accumulate across
     the snapshot loop into the per-mechanism run report. *)
  ignore (E.exec db "INSERT INTO t VALUES (999, 1)");
  ignore (Rql.declare_snapshot ctx);
  ignore
    (Rql.collate_data ~analyze:true ctx ~qs:"SELECT snap_id FROM SnapIds"
       ~qq:"SELECT a, b FROM t WHERE b > 0" ~table:"AnalyzeOut");
  match Rql.run_report () with
  | Some r ->
    Util.subsection "rql run report";
    Printf.printf "%s over %d iterations: %d operators instrumented\n" r.Rql.rr_mechanism
      r.Rql.rr_iterations (List.length r.Rql.rr_ops);
    List.iter
      (fun (a : Sqldb.Plan.op_actual) ->
        Printf.printf "  op %d %-12s rows=%d loops=%d time=%.3fms pages=%d\n"
          a.Sqldb.Plan.a_id a.Sqldb.Plan.a_kind a.Sqldb.Plan.a_rows a.Sqldb.Plan.a_loops
          (a.Sqldb.Plan.a_elapsed_s *. 1e3) a.Sqldb.Plan.a_pages)
      r.Rql.rr_ops;
    Util.record_analysis ~label:"rql_run" (Rql.run_report_to_json r)
  | None -> print_endline "no run report (Qq fell back to textual rewrite)"

(* --- scoped-instrumentation smoke (bench --scope-smoke) ----------------- *)

(* CI gate for the scope layer: Qq_cpu with a child scope installed must
   cost within 5% of the root-only baseline (the hot instrumentation
   path adds one physical-equality test plus a pre-resolved chain walk),
   and the heat matrix must partition storage.page_reads exactly — every
   page read attributed to some (table, snapshot) cell, none counted
   twice. *)
let run_scope_smoke () =
  Util.section "Scope smoke: scoped-instrumentation overhead + heat attribution";
  let fx =
    Fixtures.get
      { Fixtures.uw = Tpch.Workload.uw30; snapshots = 8; native_lineitem_index = false }
  in
  let db = fx.Fixtures.ctx.Rql.data in
  let workload () =
    ignore
      (Rql.aggregate_data_in_variable fx.Fixtures.ctx ~qs:(Queries.qs_n 5)
         ~qq:Queries.qq_cpu ~table:"bench_scope" ~fn:"sum")
  in
  let scope = Obs.Scope.create "bench.scope_smoke" in
  let scoped () =
    Sqldb.Db.set_scope db scope;
    Fun.protect ~finally:(fun () -> Sqldb.Db.set_scope db Obs.Scope.root) workload
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Warm both variants (covering-index build, plan and snapshot caches),
     then alternate measurements and keep the minimum — the low-noise
     estimator for a CPU-bound loop. *)
  workload ();
  scoped ();
  let reps = 5 in
  let base_min = ref infinity and scope_min = ref infinity in
  for _ = 1 to reps do
    base_min := Float.min !base_min (time workload);
    scope_min := Float.min !scope_min (time scoped)
  done;
  let ratio = !scope_min /. !base_min in
  Printf.printf "Qq_cpu min-of-%d: baseline %.4fs, scoped %.4fs, ratio %.3f (gate: <= 1.05)\n"
    reps !base_min !scope_min ratio;
  let heat = Obs.Scope.heat_total Obs.Scope.root in
  let reads = Obs.Scope.page_reads_total () in
  Printf.printf "heat partition: root heat total %d, storage.page_reads %d\n" heat reads;
  (* The same equality through SQL: warm sys_heat's plan and the catalog
     so the measured re-run performs zero page reads, then the virtual
     table must report exactly the live total. *)
  let sql_total () = E.int_scalar db "SELECT SUM(reads) FROM sys_heat WHERE scope_id = 0" in
  ignore (sql_total ());
  let expected = Obs.Scope.page_reads_total () in
  let via_sql = sql_total () in
  Printf.printf "sys_heat via SQL: %d (live total %d)\n" via_sql expected;
  Util.record_analysis ~label:"scope_smoke"
    (Obs.Json.Obj
       [ ("baseline_s", Obs.Json.Float !base_min);
         ("scoped_s", Obs.Json.Float !scope_min);
         ("ratio", Obs.Json.Float ratio);
         ("heat_total", Obs.Json.Int heat);
         ("page_reads", Obs.Json.Int reads);
         ("heat_total_sql", Obs.Json.Int via_sql);
         ("page_reads_at_sql", Obs.Json.Int expected) ]);
  if heat <> reads then
    failwith "scope smoke: heat matrix does not partition storage.page_reads";
  if via_sql <> expected then
    failwith "scope smoke: sys_heat SQL total diverges from storage.page_reads";
  if ratio > 1.05 then
    failwith
      (Printf.sprintf "scope smoke: scoped overhead %.1f%% exceeds the 5%% gate"
         ((ratio -. 1.) *. 100.))

(* --- optimizer smoke (bench --opt-smoke) -------------------------------- *)

(* Qq_cpu with foldable constants: the multiplier, the concatenated
   type literal and the tautological conjunct are all compile-time
   facts the optimizer removes (§16).  Result-identical to Qq_cpu. *)
let qq_cpu_opt =
  "SELECT SUM(l_extendedprice * (1.0 + 0.0)) AS revenue FROM part, lineitem \
   WHERE p_partkey = l_partkey AND p_type = 'STANDARD' || ' POLISHED TIN' \
   AND 1 + 1 = 2"

(* CI gate for the plan-IR optimizer: running the foldable Qq_cpu
   through the snapshot loop must advance sql.opt_folds and — because
   the prepared Qq carries AS OF, so the folds are amortized over the
   loop — sql.opt_invariant_hoists; the optimized run must not be
   slower than `PRAGMA optimize = off` (gate: p50 on <= 1.05 x off);
   and both settings must produce the identical result table (the
   differential contract of test_opt.ml, re-checked on TPC-H data). *)
let run_opt_smoke () =
  Util.section "Optimizer smoke: fold/hoist counters + optimized Qq_cpu latency";
  let fx =
    Fixtures.get
      { Fixtures.uw = Tpch.Workload.uw30; snapshots = 8; native_lineitem_index = false }
  in
  let ctx = fx.Fixtures.ctx in
  let db = ctx.Rql.data in
  let set on =
    ignore (E.exec db (if on then "PRAGMA optimize = on" else "PRAGMA optimize = off"))
  in
  let workload () =
    ignore
      (Rql.aggregate_data_in_variable ctx ~qs:(Queries.qs_n 5) ~qq:qq_cpu_opt
         ~table:"bench_opt" ~fn:"sum")
  in
  let result () =
    let res = E.exec ctx.Rql.meta "SELECT * FROM bench_opt ORDER BY 1" in
    String.concat "\n"
      (List.map
         (fun row ->
           String.concat "|" (Array.to_list (Array.map R.value_to_string row)))
         res.E.rows)
  in
  let c_folds = Obs.Metrics.counter "sql.opt_folds" in
  let c_hoists = Obs.Metrics.counter "sql.opt_invariant_hoists" in
  let folds0 = Obs.Metrics.Counter.get c_folds in
  let hoists0 = Obs.Metrics.Counter.get c_hoists in
  (* Warm both variants (covering-index build, snapshot cache) and take
     the differential identity check from the warm runs. *)
  set true;
  workload ();
  let rows_on = result () in
  set false;
  workload ();
  let rows_off = result () in
  let identical = rows_on = rows_off in
  let folds = Obs.Metrics.Counter.get c_folds - folds0 in
  let hoists = Obs.Metrics.Counter.get c_hoists - hoists0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let reps = 5 in
  let sample on =
    set on;
    time workload
  in
  let p50 samples =
    let a = Array.of_list samples in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (* Interleave the two settings so slow drift (cache warming, CPU
     frequency) biases neither side. *)
  let pairs = List.init reps (fun _ -> let on = sample true in (on, sample false)) in
  let on_times = List.map fst pairs and off_times = List.map snd pairs in
  set true;
  let p50_on = p50 on_times and p50_off = p50 off_times in
  let ratio = p50_on /. p50_off in
  Printf.printf "optimizer counters over the smoke: folds=%d invariant_hoists=%d\n" folds hoists;
  Printf.printf "Qq_cpu(foldable) p50-of-%d: optimize=on %.4fs, off %.4fs, ratio %.3f (gate: <= 1.05)\n"
    reps p50_on p50_off ratio;
  Printf.printf "result tables identical across settings: %b\n" identical;
  Util.record_analysis ~label:"opt_smoke"
    (Obs.Json.Obj
       [ ("opt_folds", Obs.Json.Int folds);
         ("opt_invariant_hoists", Obs.Json.Int hoists);
         ("p50_on_s", Obs.Json.Float p50_on);
         ("p50_off_s", Obs.Json.Float p50_off);
         ("ratio", Obs.Json.Float ratio);
         ("identical", Obs.Json.Bool identical) ]);
  if folds <= 0 then failwith "opt smoke: sql.opt_folds did not advance";
  if hoists <= 0 then failwith "opt smoke: sql.opt_invariant_hoists did not advance";
  if not identical then failwith "opt smoke: optimize=on and off results diverge";
  if ratio > 1.05 then
    failwith
      (Printf.sprintf "opt smoke: optimized p50 %.1f%% over the optimize=off baseline"
         ((ratio -. 1.) *. 100.))

let run () =
  Util.section "Micro-benchmarks (bechamel): primitive operation costs";
  (* force the fixtures outside the measured region *)
  ignore (Lazy.force btree_fixture);
  ignore (Lazy.force retro_fixture);
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  Printf.printf "%-44s %14s\n" "operation" "ns/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-44s %14.1f\n%!" name est
          | _ -> Printf.printf "%-44s %14s\n%!" name "n/a")
        analyzed)
    tests
