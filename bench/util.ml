(* Shared reporting helpers for the figure reproductions. *)

module IS = Rql.Iter_stats

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let subsection title = Printf.printf "\n--- %s ---\n%!" title

(* Run an AggregateDataInVariable twice — normally and all-cold — and
   return (run, all_cold_run, ratio C).  Ratio C is the paper's §5.1
   metric: latency of the RQL query over the latency of an all-cold run
   on the same snapshot set. *)
let ratio_c_agg_var ctx ~qs ~qq ~fn =
  let run = Rql.aggregate_data_in_variable ctx ~qs ~qq ~table:"bench_shared" ~fn in
  let cold = Rql.aggregate_data_in_variable ~all_cold:true ctx ~qs ~qq ~table:"bench_cold" ~fn in
  let c = IS.total_s run /. IS.total_s cold in
  (run, cold, c)

(* Mean component breakdown over a list of iterations. *)
let mean_breakdown iters =
  let n = max 1 (List.length iters) in
  let b = IS.breakdown_of iters in
  let s x = x /. float_of_int n in
  { IS.b_io = s b.IS.b_io;
    b_spt = s b.IS.b_spt;
    b_index = s b.IS.b_index;
    b_query = s b.IS.b_query;
    b_udf = s b.IS.b_udf }

let print_breakdown_header () =
  Printf.printf "%-34s %9s %9s %9s %9s %9s %9s\n" "iteration" "io(s)" "spt(s)" "index(s)"
    "query(s)" "udf(s)" "total(s)"

let print_breakdown label (b : IS.breakdown) =
  Printf.printf "%-34s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f\n" label b.IS.b_io b.IS.b_spt
    b.IS.b_index b.IS.b_query b.IS.b_udf (IS.breakdown_total b)

(* cold = first iteration; hot = mean of the rest. *)
let cold_hot (run : IS.run) =
  match run.IS.iterations with
  | [] -> invalid_arg "cold_hot: empty run"
  | first :: rest ->
    (IS.breakdown_of [ first ], mean_breakdown (if rest = [] then [ first ] else rest))

let hot_iterations (run : IS.run) =
  match run.IS.iterations with [] -> [] | _ :: rest -> rest

let mb bytes = float_of_int bytes /. 1e6

let expectation text = Printf.printf "expected shape: %s\n" text

(* --- machine-readable run recording (bench --json PATH) ---------------- *)

let recorded : (string * string * IS.run) list ref = ref []

(* Tag a run for the JSON report and pass it through, so call sites can
   wrap an existing binding without restructuring. *)
let record ~experiment ~label (run : IS.run) =
  recorded := (experiment, label, run) :: !recorded;
  run

(* EXPLAIN ANALYZE / run-report documents recorded by --analyze; they
   ride along in the --json output under an "analysis" key. *)
let recorded_analyses : (string * Obs.Json.t) list ref = ref []

let record_analysis ~label json = recorded_analyses := (label, json) :: !recorded_analyses

let write_json path =
  let runs =
    List.rev_map
      (fun (experiment, label, run) -> IS.json_of_run ~experiment ~label run)
      !recorded
  in
  let analyses =
    List.rev_map
      (fun (label, j) -> Obs.Json.Obj [ ("label", Obs.Json.Str label); ("analysis", j) ])
      !recorded_analyses
  in
  (* Always close the trajectory with a final sample, so even a run with
     automatic sampling off carries at least one time-series point. *)
  ignore (Obs.Timeseries.sample_now ());
  let doc =
    Obs.Json.Obj
      [ ("runs", Obs.Json.List runs);
        ("analysis", Obs.Json.List analyses);
        ("metrics", Obs.Metrics.to_json ());
        ("timeseries", Obs.Timeseries.to_json ()) ]
  in
  match Obs.Json.write_file path doc with
  | () -> Printf.printf "\nwrote %d recorded runs to %s\n" (List.length runs) path
  | exception Sys_error msg ->
    (* don't lose a whole bench run to a bad output path *)
    Printf.eprintf "could not write --json output: %s\n" msg
