(* Crash-matrix harness: prove the durability contract under injected
   faults.

   The harness runs a snapshot-declaring workload three ways:

   1. an oracle run (no faults) recording every declared snapshot's AS
      OF contents and the final state;
   2. a counting run with a fault injector attached but never armed, to
      learn how many write-path injection points the workload has;
   3. one run per injection point k: crash at the k-th operation
      (alternating clean and torn-tail crashes), recover from the WAL,
      and check the recovered database — integrity clean, committed
      transactions all-or-nothing, every recovered snapshot
      byte-identical to the oracle, and the database usable for new
      transactions and snapshots afterwards.  A sample of points also
      gets a post-crash bit flip in the log body, which recovery must
      truncate at the damaged frame.

   Everything is seeded; a failure reproduces bit-for-bit with the same
   --seed.  Exit status is nonzero if any point fails. *)

module E = Sqldb.Engine
module R = Storage.Record

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL: %s\n%!" s)
    fmt

(* --- the workload -------------------------------------------------------- *)

let n_rounds = 6

let setup_sql =
  [ "CREATE TABLE acct (id INTEGER, bal INTEGER)";
    "CREATE TABLE journal (seq INTEGER, note TEXT)";
    "CREATE TABLE pair_a (i INTEGER)";
    "CREATE TABLE pair_b (i INTEGER)";
    "CREATE INDEX acct_id ON acct (id)";
    "INSERT INTO acct VALUES (1, 100), (2, 200), (3, 300)" ]

(* Each round is one transaction touching all four tables; pair_a and
   pair_b get the same value inside the same transaction, so after any
   recovery their contents must be equal — the all-or-nothing witness. *)
let round_sql i =
  [ "BEGIN";
    Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d" i (1 + (i mod 3));
    Printf.sprintf "INSERT INTO journal VALUES (%d, 'round %d')" i i;
    Printf.sprintf "INSERT INTO pair_a VALUES (%d)" i;
    Printf.sprintf "INSERT INTO pair_b VALUES (%d)" i;
    "COMMIT WITH SNAPSHOT" ]

let tables = [ "acct"; "journal"; "pair_a"; "pair_b" ]

(* Runs to completion unless a fault crashes it. *)
let run_workload db =
  List.iter (fun sql -> ignore (E.exec db sql)) setup_sql;
  for i = 1 to n_rounds do
    List.iter (fun sql -> ignore (E.exec db sql)) (round_sql i)
  done

(* --- observation helpers ------------------------------------------------- *)

let row_str row =
  String.concat "," (Array.to_list (Array.map R.value_to_string row))

(* Sorted contents of [t] (optionally AS OF a snapshot); [None] when the
   query fails — compared verbatim, so oracle and recovered runs must
   fail identically too. *)
let table_contents db ?as_of t : string list option =
  let sql =
    match as_of with
    | None -> Printf.sprintf "SELECT * FROM %s" t
    | Some sid -> Printf.sprintf "SELECT AS OF %d * FROM %s" sid t
  in
  match E.exec db sql with
  | res -> Some (List.sort compare (List.map row_str res.E.rows))
  | exception E.Error _ -> None

let snapshot_count db =
  match db.Sqldb.Db.retro with Some r -> Retro.snapshot_count r | None -> 0

(* Remove the WAL and every lifecycle sidecar (checkpoint image, its
   temp stages, the truncation swap file), so no state leaks between
   matrix points. *)
let fresh_path path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".swap"; path ^ ".ckpt"; path ^ ".ckpt.new"; path ^ ".ckpt.tmp" ];
  path

let wal_of db =
  match Sqldb.Db.wal db with
  | Some w -> w
  | None -> failwith "crash_matrix: database has no WAL"

(* --- consistency checks on a recovered database -------------------------- *)

(* [valid_first_live] is the set of acceptable oldest-retained snapshot
   ids: [1] for the durability matrix, [1; keep_from] for the lifecycle
   matrix — a vacuum either committed entirely (the WAL swap landed) or
   not at all, so any other value is a hybrid archive. *)
let check_recovered ~label ~oracle ?(valid_first_live = [ 1 ]) db =
  (match Sqldb.Integrity.check db with
  | [] -> ()
  | problems ->
    fail "%s: integrity check found %d problems (first: %s)" label (List.length problems)
      (List.hd problems));
  (* all-or-nothing: pair_a and pair_b were written in the same
     transactions, so they must be identical prefixes; journal and the
     acct balance sum must agree with how many rounds committed *)
  (match (table_contents db "pair_a", table_contents db "pair_b") with
  | Some a, Some b ->
    if a <> b then fail "%s: pair_a %s vs pair_b %s (torn transaction?)" label
        (String.concat ";" a) (String.concat ";" b);
    let m = List.length a in
    (match table_contents db "journal" with
    | Some j when List.length j <> m ->
      fail "%s: %d journal rows vs %d pair rows" label (List.length j) m
    | _ -> ());
    (match E.exec db "SELECT SUM(bal) FROM acct" with
    | res -> (
      let expect = 600 + (m * (m + 1) / 2) in
      match res.E.rows with
      | [ [| R.Int got |] ] when got <> expect ->
        fail "%s: acct balance sum %d, expected %d after %d rounds" label got expect m
      | _ -> ())
    | exception E.Error _ -> fail "%s: acct unreadable after recovery" label)
  (* the two CREATE TABLEs are separate autocommits, so a crash between
     them legitimately leaves exactly one pair table — but it must still
     be empty (no round ran before both existed) *)
  | Some [], None | None, Some [] -> ()
  | Some a, None | None, Some a ->
    fail "%s: one pair table is missing but the other has %d rows (torn transaction?)"
      label (List.length a)
  | None, None -> () (* crashed before the pair tables were committed *));
  (* every recovered snapshot must read back exactly as the oracle saw
     it when it was declared; a vacuumed prefix must refuse reads
     cleanly (old-or-new, never a partially compacted archive) *)
  let snaps = snapshot_count db in
  let fl =
    match db.Sqldb.Db.retro with Some r -> Retro.first_live r | None -> 1
  in
  if not (List.mem fl valid_first_live) then
    fail "%s: first live snapshot is %d, expected one of {%s} (hybrid vacuum?)" label
      fl
      (String.concat ", " (List.map string_of_int valid_first_live));
  if fl > 1 && snaps <> Array.length oracle then
    fail "%s: hybrid archive: vacuumed to %d but only %d of %d snapshots exist" label
      fl snaps (Array.length oracle);
  Array.iteri
    (fun i oracle_snap ->
      let sid = i + 1 in
      if sid <= snaps then
        if sid < fl then
          List.iter
            (fun t ->
              match table_contents db ~as_of:sid t with
              | None -> ()
              | Some _ ->
                fail "%s: vacuumed snapshot %d is still readable (table %s)" label sid
                  t)
            tables
        else
          List.iter
            (fun t ->
              let got = table_contents db ~as_of:sid t in
              let want = List.assoc t oracle_snap in
              if got <> want then
                fail "%s: snapshot %d table %s diverges from oracle" label sid t)
            tables)
    oracle;
  if snaps > Array.length oracle then
    fail "%s: recovered %d snapshots, oracle declared only %d" label snaps
      (Array.length oracle);
  (* the recovered database must accept new transactions and snapshots *)
  match
    ignore (E.exec db "BEGIN");
    ignore (E.exec db "CREATE TABLE post_check (x INTEGER)");
    ignore (E.exec db "INSERT INTO post_check VALUES (42)");
    E.exec db "COMMIT WITH SNAPSHOT"
  with
  | res -> (
    match res.E.snapshot with
    | None -> fail "%s: post-recovery COMMIT WITH SNAPSHOT declared nothing" label
    | Some sid -> (
      match table_contents db ~as_of:sid "post_check" with
      | Some [ "42" ] -> ()
      | _ -> fail "%s: post-recovery snapshot %d does not read back" label sid))
  | exception E.Error m -> fail "%s: post-recovery write failed: %s" label m

(* --- the matrix ---------------------------------------------------------- *)

let () =
  let seed = ref 42 in
  let group_commit = ref 1 in
  Arg.parse
    [ ("--seed", Arg.Set_int seed, "SEED deterministic fault-injection seed (default 42)");
      ("--group-commit", Arg.Set_int group_commit,
       "N batch N commits per fsync during the matrix (default 1)") ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "crash_matrix [--seed N] [--group-commit N]";
  let dir = Filename.temp_file "rql_crash" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path name = Filename.concat dir name in

  (* 1. oracle run: no faults, full workload *)
  let oracle_db, _ = Sqldb.Db.open_wal ~path:(fresh_path (path "oracle.wal")) () in
  run_workload oracle_db;
  let oracle =
    Array.init (snapshot_count oracle_db) (fun i ->
        List.map (fun t -> (t, table_contents oracle_db ~as_of:(i + 1) t)) tables)
  in
  Sqldb.Db.close_wal oracle_db;
  Printf.printf "oracle: %d snapshots declared over %d rounds\n%!" (Array.length oracle)
    n_rounds;

  (* 2. counting run: injector attached, never armed *)
  let count_db, _ =
    Sqldb.Db.open_wal ~group_commit:!group_commit ~path:(fresh_path (path "count.wal")) ()
  in
  let counter = Storage.Fault.create ~seed:!seed () in
  Storage.Wal.set_fault (wal_of count_db) (Some counter);
  run_workload count_db;
  (* count before close: close's own flush ticks are not reachable by
     the crash runs, which only ever execute [run_workload] *)
  let n_ops = Storage.Fault.op_count counter in
  Sqldb.Db.close_wal count_db;
  Printf.printf "workload has %d WAL injection points (seed %d, group_commit %d)\n%!" n_ops
    !seed !group_commit;

  (* 3. crash at every point; bit-flip the log afterwards at a sample *)
  for k = 1 to n_ops do
    let wal_path = fresh_path (path "crash.wal") in
    let db, _ = Sqldb.Db.open_wal ~group_commit:!group_commit ~path:wal_path () in
    let fault = Storage.Fault.create ~seed:(!seed + k) () in
    Storage.Fault.arm_crash fault ~after_ops:k ~torn:(k mod 2 = 0);
    Storage.Wal.set_fault (wal_of db) (Some fault);
    (match run_workload db with
    | () -> fail "k=%d: workload survived an armed crash" k
    | exception Storage.Fault.Crash -> ());
    let flip = k mod 7 = 3 in
    if flip then
      (* corrupt one bit of the log body (header kept identifiable) *)
      ignore (Storage.Fault.flip_bit_in_file fault ~path:wal_path ~min_off:12);
    let label = Printf.sprintf "k=%d%s" k (if flip then "+flip" else "") in
    (match Sqldb.Db.open_wal ~path:wal_path () with
    | db2, Some _ ->
      check_recovered ~label ~oracle db2;
      Sqldb.Db.close_wal db2
    | _, None -> fail "%s: recovery reported a fresh database" label
    | exception Storage.Wal.Error m -> fail "%s: recovery rejected the log: %s" label m)
  done;

  (* 4. archive-lifecycle matrix: the same workload, then CHECKPOINT,
     two more rounds, and VACUUM SNAPSHOTS — crash at every write-path
     injection point of that sequence (the checkpoint image stages, the
     WAL swap, every compaction block copy) and require the recovered
     archive to be entirely pre-vacuum or entirely post-vacuum.  No
     bit-flip variants here: a flipped Checkpoint frame by design
     degrades recovery to an empty-prefix replay, which would defeat
     the strict old-or-new check this phase exists for. *)
  let keep_last = 3 in
  let lc_extra_rounds = 2 in
  let lc_total = n_rounds + lc_extra_rounds in
  let run_lifecycle db =
    run_workload db;
    ignore (E.exec db "CHECKPOINT");
    for i = n_rounds + 1 to lc_total do
      List.iter (fun sql -> ignore (E.exec db sql)) (round_sql i)
    done;
    ignore (E.exec db (Printf.sprintf "VACUUM SNAPSHOTS KEEPING LAST %d" keep_last))
  in
  (* lifecycle oracle: record every snapshot BEFORE the vacuum drops the
     prefix, then vacuum and verify the survivors read back unchanged —
     the no-crash byte-identity baseline *)
  let lc_db, _ = Sqldb.Db.open_wal ~path:(fresh_path (path "lc_oracle.wal")) () in
  run_workload lc_db;
  ignore (E.exec lc_db "CHECKPOINT");
  for i = n_rounds + 1 to lc_total do
    List.iter (fun sql -> ignore (E.exec lc_db sql)) (round_sql i)
  done;
  let lc_oracle =
    Array.init (snapshot_count lc_db) (fun i ->
        List.map (fun t -> (t, table_contents lc_db ~as_of:(i + 1) t)) tables)
  in
  let keep_from = Array.length lc_oracle - keep_last + 1 in
  ignore (E.exec lc_db (Printf.sprintf "VACUUM SNAPSHOTS KEEPING LAST %d" keep_last));
  for sid = keep_from to Array.length lc_oracle do
    List.iter
      (fun t ->
        if table_contents lc_db ~as_of:sid t <> List.assoc t lc_oracle.(sid - 1) then
          fail "lc-oracle: snapshot %d table %s changed across the vacuum" sid t)
      tables
  done;
  Sqldb.Db.close_wal lc_db;

  let lc_count_db, _ =
    Sqldb.Db.open_wal ~group_commit:!group_commit
      ~path:(fresh_path (path "lc_count.wal"))
      ()
  in
  let lc_counter = Storage.Fault.create ~seed:!seed () in
  Storage.Wal.set_fault (wal_of lc_count_db) (Some lc_counter);
  run_lifecycle lc_count_db;
  let lc_ops = Storage.Fault.op_count lc_counter in
  Sqldb.Db.close_wal lc_count_db;
  Printf.printf "lifecycle workload has %d WAL injection points (seed %d, group_commit %d)\n%!"
    lc_ops !seed !group_commit;

  for k = 1 to lc_ops do
    let wal_path = fresh_path (path "lc_crash.wal") in
    let db, _ = Sqldb.Db.open_wal ~group_commit:!group_commit ~path:wal_path () in
    let fault = Storage.Fault.create ~seed:(!seed + k) () in
    Storage.Fault.arm_crash fault ~after_ops:k ~torn:(k mod 2 = 0);
    Storage.Wal.set_fault (wal_of db) (Some fault);
    (match run_lifecycle db with
    | () -> fail "lc k=%d: workload survived an armed crash" k
    | exception Storage.Fault.Crash -> ());
    let label = Printf.sprintf "lc k=%d" k in
    (match Sqldb.Db.open_wal ~path:wal_path () with
    | db2, Some r ->
      (* a checkpoint-framed log replays only post-checkpoint commits *)
      (match r.Sqldb.Db.rec_report.Storage.Wal.rep_checkpoint with
      | Some _ ->
        if r.Sqldb.Db.rec_report.Storage.Wal.rep_commits > lc_extra_rounds then
          fail "%s: checkpointed log still replayed %d commits (expected <= %d)" label
            r.Sqldb.Db.rec_report.Storage.Wal.rep_commits lc_extra_rounds
      | None -> ());
      check_recovered ~label ~oracle:lc_oracle ~valid_first_live:[ 1; keep_from ] db2;
      Sqldb.Db.close_wal db2
    | _, None -> fail "%s: recovery reported a fresh database" label
    | exception Storage.Wal.Error m -> fail "%s: recovery rejected the log: %s" label m)
  done;

  (* clean up the scratch directory *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  if !failures = 0 then begin
    Printf.printf
      "crash matrix passed: %d durability points (+%d bit-flip variants) and %d \
       lifecycle points all recovered\n"
      n_ops (n_ops / 7) lc_ops;
    exit 0
  end
  else begin
    Printf.printf "crash matrix: %d failures\n" !failures;
    exit 1
  end
