(* Repository lint gate.

   Scans OCaml sources for patterns this codebase bans outright:

     - catch-all exception handlers (a bare underscore after [with]),
       which swallow programming errors (Assert_failure, Stack_overflow,
       Out_of_memory) along with the failure they meant to handle;
     - unsafe casts through the Obj module, which defeat the type system;
     - asserting falsehood as a dispatch fallback — the engine has a
       typed Internal_error for impossible arms, so reaching one should
       name the statement kind that got there, not abort the process;
     - raw mutex acquisition in lib/ outside a [Fun.protect] guard —
       an exception between lock and unlock leaves the mutex held
       forever, so every section goes through a locked_* helper (the
       condition-variable sites that genuinely need the raw form carry
       waivers naming why);
     - archive reads inside a Retro [locked_rt] section — the simulated
       device sleeps in Pagelog reads, and holding rt_mu across one
       serializes every concurrent AS OF reader behind the sleep.

   A site may opt out with a waiver comment containing the marker
   spelled in [waiver] below plus a justification; the waiver covers
   its own line and the two lines after it, so a short comment directly
   above the flagged expression works.  The waiver is the audit trail.

     dune exec bin/lint.exe -- lib bin     (what `make lint` runs)

   Exit status 1 when any finding survives, 0 when clean — so the CI
   step is just the command itself.

   The banned substrings below are spliced from halves so this file
   does not flag itself. *)

type rule = {
  rid : string;
  needle : string;
  why : string;
  (* When non-empty, the rule applies only to files whose path ends
     with one of these suffixes; an entry ending in "/" is instead a
     directory prefix (path-scoped rules). *)
  paths : string list;
  (* When true, only lines that start (after whitespace-squeezing) with
     "let " are checked: module-level definitions, not local bindings. *)
  anchored : bool;
}

let rules =
  [ { rid = "catch-all";
      needle = "with _ " ^ "->";
      why = "catch-all handler swallows asserts and OOM; match specific exceptions";
      paths = [];
      anchored = false };
    { rid = "catch-all";
      needle = "with _" ^ "->";
      why = "catch-all handler swallows asserts and OOM; match specific exceptions";
      paths = [];
      anchored = false };
    { rid = "obj-magic";
      needle = "Obj." ^ "magic";
      why = "defeats the type system";
      paths = [];
      anchored = false };
    { rid = "assert-false";
      needle = "assert " ^ "false";
      why = "use a typed internal error that names the impossible state";
      paths = [];
      anchored = false };
    (* The stats shims are views over the root metric scope: a fresh ref
       or hash table there would be an independent mutable total the
       scope tree cannot see, silently breaking scoped attribution. *)
    { rid = "stats-shadow-state";
      needle = "= " ^ "ref";
      why = "stats shims hold no independent mutable totals; use an Obs.Scope handle";
      paths = [ "lib/storage/stats.ml"; "lib/sql/exec_stats.ml" ];
      anchored = false };
    { rid = "stats-shadow-state";
      needle = "Hashtbl." ^ "create";
      why = "stats shims hold no independent mutable totals; use an Obs.Scope handle";
      paths = [ "lib/storage/stats.ml"; "lib/sql/exec_stats.ml" ];
      anchored = false };
    (* The engine core is shared across session domains: module-level
       refs and hash tables in lib/ are cross-domain shared state and
       must sit behind a mutex (or be domain-local) — the waiver names
       the guard, and is the audit trail for it. *)
    { rid = "module-mutable-state";
      needle = "= " ^ "ref";
      why = "module-level mutable state in shared code; guard it and waive with the guard's name";
      paths = [ "lib/" ];
      anchored = true };
    { rid = "module-mutable-state";
      needle = "Hashtbl." ^ "create";
      why = "module-level mutable state in shared code; guard it and waive with the guard's name";
      paths = [ "lib/" ];
      anchored = true } ]

let waiver = "lint: " ^ "allow"

(* Squeeze runs of whitespace to single spaces so extra spacing between
   tokens cannot hide a match from the needles above. *)
let squeeze s =
  let buf = Buffer.create (String.length s) in
  let last_ws = ref false in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' then begin
        if not !last_ws then Buffer.add_char buf ' ';
        last_ws := true
      end
      else begin
        Buffer.add_char buf c;
        last_ws := false
      end)
    s;
  Buffer.contents buf

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl > 0 && at 0

let is_ml_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

(* Recursively collect sources, skipping build output and dot-dirs. *)
let rec collect path acc =
  if Sys.is_directory path then
    let base = Filename.basename path in
    if base = "_build" || (String.length base > 1 && base.[0] = '.') then acc
    else
      Array.fold_left
        (fun acc entry -> collect (Filename.concat path entry) acc)
        acc
        (let es = Sys.readdir path in
         Array.sort compare es;
         es)
  else if is_ml_source path then path :: acc
  else acc

let findings = ref 0

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let rule_applies path r =
  (* collect_files yields paths as given on the command line; strip a
     leading "./" so prefix entries match either spelling. *)
  let path = if has_prefix ~prefix:"./" path then String.sub path 2 (String.length path - 2) else path in
  r.paths = []
  || List.exists
       (fun pat ->
         if String.length pat > 0 && pat.[String.length pat - 1] = '/' then
           has_prefix ~prefix:pat path
         else Filename.check_suffix path pat)
       r.paths

(* --- lock discipline (stateful, so not expressible as a needle rule) --- *)

(* Both the plain mutex and the readers-writer lock count as raw
   acquisition; [with_read]/[with_write] are the guarded forms. *)
let lock_needles =
  [ "Mutex." ^ "lock"; "Rwlock." ^ "read_lock"; "Rwlock." ^ "write_lock" ]

let protect_needle = "Fun." ^ "protect"
let rt_guard = "locked" ^ "_rt"
let archive_needle = "Pagelog." ^ "read"

(* A waiver on line [i], [i-1] or [i-2] covers line [i] — the same
   window the needle rules use. *)
let waived_at lines i =
  let covers k = k >= 0 && contains ~needle:waiver (squeeze lines.(k)) in
  covers i || covers (i - 1) || covers (i - 2)

(* Raw mutex acquisition must be the first half of a guard: the very
   next line (or the same one) holds the [Fun.protect] that releases it
   on every exit path.  Anything else either goes through a locked_*
   helper or carries a waiver saying why it cannot (Condition.wait). *)
let check_lock_guards path lines =
  Array.iteri
    (fun i line ->
      let sq = squeeze line in
      if List.exists (fun needle -> contains ~needle sq) lock_needles
         && not (waived_at lines i) then
        let next = if i + 1 < Array.length lines then squeeze lines.(i + 1) else "" in
        if not (contains ~needle:protect_needle sq || contains ~needle:protect_needle next)
        then begin
          incr findings;
          Printf.printf
            "%s:%d: [lock-guard] raw mutex acquisition outside a Fun.protect guard; use a locked_* helper or waive with the reason\n"
            path (i + 1)
        end)
    lines

(* Track the extent of each [locked_rt t (fun () -> ...)] closure by
   parenthesis balance and flag archive reads inside it.  The balance
   starts at the guard call site, so nested parens within the guarded
   closure keep the span open across lines. *)
let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = if i + nl > hl then None else if String.sub hay i nl = needle then Some i else at (i + 1) in
  at 0

let check_archive_reads path lines =
  let depth = ref 0 in
  Array.iteri
    (fun i line ->
      let scan_from =
        if !depth > 0 then Some 0
        else
          match find_sub line rt_guard with
          | Some j -> Some (j + String.length rt_guard)
          | None -> None
      in
      match scan_from with
      | None -> ()
      | Some j ->
        let inside = ref (!depth > 0) in
        String.iteri
          (fun k c ->
            if k >= j then
              if c = '(' then begin incr depth; inside := true end
              else if c = ')' then decr depth)
          line;
        if (!inside || !depth > 0)
           && contains ~needle:archive_needle (squeeze line)
           && not (waived_at lines i)
        then begin
          incr findings;
          Printf.printf
            "%s:%d: [archive-read-under-lock] Pagelog read while holding rt_mu; the simulated device sleep would serialize concurrent AS OF readers\n"
            path (i + 1)
        end;
        if !depth < 0 then depth := 0)
    lines

(* Path-scoped like the needle rules: a leading "lib/" or any "/lib/"
   segment, so fixture trees (the CI bite test) scope the same way. *)
let under dir path =
  let path = if has_prefix ~prefix:"./" path then String.sub path 2 (String.length path - 2) else path in
  has_prefix ~prefix:dir path || contains ~needle:("/" ^ dir) path

let check_file path =
  let active = List.filter (rule_applies path) rules in
  let lines =
    In_channel.with_open_text path (fun ic ->
        Array.of_list (In_channel.input_lines ic))
  in
  (* > 0 while a waiver is in force (its line plus the two after) *)
  let waived = ref 0 in
  Array.iteri
    (fun i line ->
      let sq = squeeze line in
      if contains ~needle:waiver sq then waived := 3;
      if !waived = 0 then
        List.iter
          (fun r ->
            if (not r.anchored || has_prefix ~prefix:"let " sq)
               && contains ~needle:r.needle sq then begin
              incr findings;
              Printf.printf "%s:%d: [%s] %s\n" path (i + 1) r.rid r.why
            end)
          active
      else decr waived)
    lines;
  if under "lib/" path then check_lock_guards path lines;
  if under "lib/retro/" path then check_archive_reads path lines

let () =
  let dirs =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "lib"; "bin" ] | _ :: rest -> rest
  in
  let files =
    List.concat_map
      (fun d ->
        if Sys.file_exists d then List.rev (collect d [])
        else begin
          Printf.eprintf "lint: no such path %s\n" d;
          exit 2
        end)
      dirs
  in
  List.iter check_file files;
  if !findings > 0 then begin
    Printf.printf "lint: %d finding(s) in %d file(s) scanned\n" !findings (List.length files);
    exit 1
  end
  else Printf.printf "lint: clean (%d files scanned)\n" (List.length files)
