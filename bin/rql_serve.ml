(* Multi-client RQL server: one engine, one session per connection.

   A single process owns the shared immutable core (both the data and
   the meta database); every accepted connection gets its own
   [Sqldb.Session] pair and its own domain, so concurrent clients read
   in parallel under the pager's reader lock while writes serialize
   through commit (DESIGN.md §15).

   Line protocol (newline-terminated, UTF-8):

     client -> server   one SQL statement per line; a leading "@meta "
                        routes the statement to the meta database;
                        ".quit" closes the connection
     server -> client   "ok <ncols> <nrows>" then one tab-separated
                        header line and <nrows> tab-separated data
                        lines, or "error <message>" on failure; each
                        reply ends with an empty line

   On connect the server sends "rql <session_id>".

     rql_serve --port 7877
     rql_serve --self-test --clients 4   # in-process smoke, exits 0/1
*)

module E = Sqldb.Engine
module R = Storage.Record
module S = Sqldb.Session

let send oc fmt = Printf.ksprintf (fun s -> output_string oc s; output_char oc '\n') fmt

let reply oc (res : E.result) =
  send oc "ok %d %d" (Array.length res.E.columns) (List.length res.E.rows);
  send oc "%s" (String.concat "\t" (Array.to_list res.E.columns));
  List.iter
    (fun row ->
      send oc "%s"
        (String.concat "\t" (Array.to_list (Array.map R.value_to_string row))))
    res.E.rows;
  send oc "";
  flush oc

let reply_error oc msg =
  (* Keep the protocol line-oriented even for multi-line messages. *)
  let msg = String.map (function '\n' | '\r' -> ' ' | c -> c) msg in
  send oc "error %s" msg;
  send oc "";
  flush oc

(* One connection: a session on each database, statements executed on
   the session so sys_sessions / sys_scopes attribute its load. *)
let serve_client (ctx : Rql.ctx) fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  S.with_session ctx.Rql.data (fun data ->
      S.with_session ctx.Rql.meta (fun meta ->
          send oc "rql %d" (S.id data);
          flush oc;
          let rec loop () =
            match input_line ic with
            | exception End_of_file -> ()
            | line ->
              let line = String.trim line in
              if line = ".quit" then ()
              else begin
                (if line = "" then reply_error oc "empty statement"
                 else
                   let db, sql =
                     if String.length line > 5 && String.sub line 0 5 = "@meta" then
                       (meta, String.trim (String.sub line 5 (String.length line - 5)))
                     else (data, line)
                   in
                   match E.exec db sql with
                   | res -> reply oc res
                   | exception E.Error msg -> reply_error oc msg
                   | exception Failure msg -> reply_error oc msg);
                loop ()
              end
          in
          loop ()));
  (try Unix.close fd with Unix.Unix_error _ -> ())

let listen_socket port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  sock

let bound_port sock =
  match Unix.getsockname sock with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> failwith "rql_serve: listening socket is not ADDR_INET"

(* Accept loop: domain per connection.  Finished domains are reaped on
   every accept so a long-lived server does not accumulate them. *)
let accept_loop ctx sock ~max_conns =
  let live = ref [] in
  let reap () =
    live :=
      List.filter
        (fun (done_, d) -> if Atomic.get done_ then (Domain.join d; false) else true)
        !live
  in
  let rec go accepted =
    if max_conns > 0 && accepted >= max_conns then begin
      List.iter (fun (_, d) -> Domain.join d) !live;
      live := []
    end
    else begin
      let fd, _addr = Unix.accept sock in
      reap ();
      let done_ = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.set done_ true)
              (fun () ->
                try serve_client ctx fd
                with
                | Unix.Unix_error _ | Sys_error _ | End_of_file ->
                  (try Unix.close fd with Unix.Unix_error _ -> ())))
      in
      live := (done_, d) :: !live;
      go (accepted + 1)
    end
  in
  go 0

(* --- self-test ---------------------------------------------------------- *)

(* Build a small snapshot history, serve it, and drive [clients]
   concurrent connections each reading every snapshot AS OF; verify all
   replies against the single-threaded oracle. *)
let self_test ~clients =
  let ctx = Rql.create () in
  ignore (E.exec ctx.Rql.data "CREATE TABLE ev (u TEXT, v INTEGER)");
  let sids =
    List.map
      (fun i ->
        ignore
          (E.exec ctx.Rql.data
             (Printf.sprintf "INSERT INTO ev VALUES ('u%d', %d)" i (i * 10)));
        Rql.declare_snapshot ctx)
      [ 1; 2; 3; 4 ]
  in
  let query sid = Printf.sprintf "SELECT AS OF %d COUNT(*), SUM(v) FROM ev" sid in
  let oracle =
    List.map
      (fun sid ->
        let res = E.exec ctx.Rql.data (query sid) in
        List.map (fun r -> Array.to_list (Array.map R.value_to_string r)) res.E.rows)
      sids
  in
  let sock = listen_socket 0 in
  let port = bound_port sock in
  let server = Domain.spawn (fun () -> accept_loop ctx sock ~max_conns:clients) in
  let client _i () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let banner = input_line ic in
    if String.length banner < 4 || String.sub banner 0 4 <> "rql " then
      failwith ("bad banner: " ^ banner);
    let got =
      List.map
        (fun sid ->
          send oc "%s" (query sid);
          flush oc;
          let status = input_line ic in
          (match String.split_on_char ' ' status with
          | "ok" :: _ -> ()
          | _ -> failwith ("bad status: " ^ status));
          let _header = input_line ic in
          let row = input_line ic in
          let blank = input_line ic in
          if blank <> "" then failwith "missing terminator";
          [ String.split_on_char '\t' row ])
        sids
    in
    send oc ".quit";
    flush oc;
    Unix.close fd;
    got = oracle
  in
  let doms = List.init clients (fun i -> Domain.spawn (client i)) in
  let oks = List.map Domain.join doms in
  Domain.join server;
  Unix.close sock;
  if List.for_all Fun.id oks then begin
    Printf.printf "self-test ok: %d clients x %d snapshots match the oracle\n"
      clients (List.length sids);
    exit 0
  end
  else begin
    prerr_endline "self-test FAILED: client results diverge from the oracle";
    exit 1
  end

(* --- entry point -------------------------------------------------------- *)

open Cmdliner

let port =
  let doc = "TCP port to listen on (loopback only)." in
  Arg.(value & opt int 7877 & info [ "port" ] ~docv:"PORT" ~doc)

let max_conns =
  let doc = "Exit after serving this many connections (0 = serve forever)." in
  Arg.(value & opt int 0 & info [ "max-conns" ] ~docv:"N" ~doc)

let selftest =
  let doc = "Run the in-process concurrency smoke test and exit." in
  Arg.(value & flag & info [ "self-test" ] ~doc)

let clients =
  let doc = "Number of concurrent clients for --self-test." in
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc)

let wal_path =
  let doc =
    "Open the served data database against a write-ahead log at $(docv), recovering \
     it if the file exists."
  in
  Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"PATH" ~doc)

let checkpoint_bytes =
  let doc =
    "With --wal, auto-checkpoint after the log grows past $(docv) bytes (0 = only \
     explicit CHECKPOINT statements)."
  in
  Arg.(value & opt int 0 & info [ "checkpoint-bytes" ] ~docv:"BYTES" ~doc)

let main port max_conns selftest clients wal checkpoint_bytes =
  if selftest then self_test ~clients
  else begin
    let ctx =
      match wal with
      | Some path ->
        let db, recovery = Sqldb.Db.open_wal ~path () in
        (match recovery with
        | Some r ->
          Printf.printf "rql_serve: recovered %s (%d snapshots)\n%!" path
            r.Sqldb.Db.rec_snapshots
        | None -> Printf.printf "rql_serve: created WAL-backed database at %s\n%!" path);
        Rql.create ~data:db ()
      | None -> Rql.create ()
    in
    if checkpoint_bytes > 0 then
      Sqldb.Db.set_checkpoint_threshold ctx.Rql.data checkpoint_bytes;
    let sock = listen_socket port in
    Printf.printf "rql_serve: listening on 127.0.0.1:%d (one session per connection)\n%!"
      (bound_port sock);
    accept_loop ctx sock ~max_conns;
    Sqldb.Db.close_wal ctx.Rql.data
  end

let cmd =
  let doc = "Serve the RQL engine to concurrent clients over a line protocol" in
  Cmd.v (Cmd.info "rql_serve" ~doc)
    Term.(const main $ port $ max_conns $ selftest $ clients $ wal_path $ checkpoint_bytes)

let () = exit (Cmd.eval cmd)
