(* Interactive RQL shell.

   A REPL over an RQL context: SQL statements run against the
   snapshottable data database; lines prefixed with "@meta" run against
   the non-snapshottable database that holds SnapIds and result tables
   (where the RQL UDFs are registered).  Dot-commands manage snapshots
   and inspection; the single [commands] table below is both the
   dispatcher and the .help text, so the two cannot drift apart.

     dune exec bin/rql_shell.exe            empty database
     dune exec bin/rql_shell.exe -- --tpch 0.002 --snapshots 5

   Introspection is also available in SQL: the sys_ virtual tables
   (sys_metrics, sys_snapshots, ...) and ANALYZE ARCHIVE work in any
   SELECT context, and EXPLAIN PROFILE <select> runs a statement with
   tracing forced on and prints the span tree plus counter deltas. *)

module R = Storage.Record
module E = Sqldb.Engine

let print_result (res : E.result) =
  if Array.length res.E.columns > 0 then begin
    print_endline (String.concat " | " (Array.to_list res.E.columns));
    List.iter
      (fun row ->
        print_endline
          (String.concat " | " (Array.to_list (Array.map R.value_to_string row))))
      res.E.rows;
    Printf.printf "(%d rows)\n" (List.length res.E.rows)
  end
  else begin
    (match res.E.snapshot with
    | Some sid -> Printf.printf "declared snapshot %d\n" sid
    | None -> ());
    if res.E.rows_affected > 0 then Printf.printf "(%d rows affected)\n" res.E.rows_affected
  end

(* Catalog tables plus the sys_ virtual tables (always queryable). *)
let list_tables db =
  let cat = Sqldb.Db.catalog db in
  List.iter print_endline (List.sort compare (Sqldb.Catalog.table_names cat));
  List.iter print_endline (Sqldb.Systables.names ())

(* --- dot-command table ------------------------------------------------- *)

type command = {
  cname : string; (* the dot-word; dispatch is an exact match on it *)
  cargs : string; (* argument synopsis, for .help only *)
  chelp : string;
  crun : ctx_ref:Rql.ctx ref -> args:string -> unit;
}

(* Filled below; a forward reference so .help can render the table it
   lives in. *)
let commands : command list ref = ref []

let print_help () =
  List.iter
    (fun c ->
      Printf.printf "  %-24s %s\n"
        (if c.cargs = "" then c.cname else c.cname ^ " " ^ c.cargs)
        c.chelp)
    !commands;
  print_endline
    "\n\
     SQL goes to the data database; prefix with @meta for the SnapIds/result database.\n\
     Introspection in SQL: SELECT ... FROM sys_metrics | sys_histograms | sys_spans |\n\
     sys_snapshots | sys_cache | sys_tables | sys_timeseries | sys_plans | sys_scopes |\n\
     sys_heat | sys_progress; ANALYZE ARCHIVE;\n\
     EXPLAIN [QUERY PLAN] <select> — show the compiled physical plan (access paths,\n\
     join strategies, temp b-trees); EXPLAIN PROFILE <select> — run with tracing and\n\
     print span tree + counter deltas; EXPLAIN ANALYZE <select> — run with per-operator\n\
     instrumentation and print the plan annotated with actual rows/loops/time/pages;\n\
     EXPLAIN LINT <stmt> — static diagnostics as rows\n\
     (same analysis as .lint, without executing the statement).\n\
     Statement statistics aggregate per fingerprint in sys_statements (.statements);\n\
     .slowlog logs statements over a threshold to the structured event log (sys_events).\n\
     RQL mechanisms are UDFs on @meta, e.g.:\n\
     @meta SELECT CollateData(snap_id, 'SELECT ... current_snapshot() ...', 'T') FROM SnapIds;"

let run_stats (ctx : Rql.ctx) =
  Fmt.pr "%a@." Storage.Stats.pp Storage.Stats.global;
  match Sqldb.Db.(ctx.Rql.data.retro) with
  | Some retro ->
    Printf.printf "snapshots=%d pagelog=%d pages (%.1f MB) maplog=%d entries\n"
      (Retro.snapshot_count retro)
      (Retro.Pagelog.length retro.Retro.pagelog)
      (float_of_int (Retro.pagelog_size_bytes retro) /. 1e6)
      (Retro.maplog_length retro)
  | None -> ()

let run_metrics args =
  match String.split_on_char ' ' (String.trim args) |> List.filter (( <> ) "") with
  | [] -> Fmt.pr "%a@." Obs.Metrics.pp ()
  | [ "prom" ] -> print_string (Obs.Metrics.to_prometheus ())
  | [ "prom"; path ] ->
    Obs.Metrics.write_prometheus ~path;
    Printf.printf "wrote Prometheus exposition to %s\n" path
  | _ -> print_endline "usage: .metrics [prom [PATH]]"

let run_profile args =
  match String.trim args with
  | "on" ->
    Obs.Trace.set_enabled true;
    print_endline "profiling on (spans are being recorded; .trace dump PATH to export)"
  | "off" ->
    Obs.Trace.set_enabled false;
    print_endline "profiling off"
  | "" ->
    Printf.printf "profiling is %s (%d spans recorded)\n"
      (if Obs.Trace.is_enabled () then "on" else "off")
      (List.length (Obs.Trace.spans ()))
  | _ -> print_endline "usage: .profile [on|off]"

(* Top statements by total time, via the sys_statements virtual table
   (the registry is process-wide, so either database sees the same rows;
   we query the data one to keep its own plan/statement accounting). *)
let run_statements db =
  print_result
    (E.exec db
       "SELECT fingerprint, calls, rows, total_s, max_s, plan_hits, query \
        FROM sys_statements ORDER BY total_s DESC, fingerprint LIMIT 20")

let run_slowlog ctx args =
  let db = ctx.Rql.data in
  match String.split_on_char ' ' (String.trim args) |> List.filter (( <> ) "") with
  | [ "on" ] ->
    E.set_slow_query_threshold db (Some 0.1);
    print_endline "slow-query log on (threshold 100 ms)"
  | [ "on"; ms ] -> (
    match float_of_string_opt ms with
    | Some ms when ms >= 0. ->
      E.set_slow_query_threshold db (Some (ms /. 1e3));
      Printf.printf "slow-query log on (threshold %g ms)\n" ms
    | Some _ | None -> print_endline "usage: .slowlog [on [MS] | off]")
  | [ "off" ] ->
    E.set_slow_query_threshold db None;
    print_endline "slow-query log off"
  | [] ->
    (match E.slow_query_threshold db with
    | Some thr -> Printf.printf "slow-query log on (threshold %g ms)\n" (thr *. 1e3)
    | None -> print_endline "slow-query log off");
    let slow =
      List.filter
        (fun (e : Obs.Eventlog.event) -> e.Obs.Eventlog.ev_kind = "slow_query")
        (Obs.Eventlog.events ())
    in
    List.iter
      (fun e -> print_endline (Obs.Json.to_string (Obs.Eventlog.event_to_json e)))
      slow;
    Printf.printf "(%d slow-query events)\n" (List.length slow)
  | _ -> print_endline "usage: .slowlog [on [MS] | off]"

(* One line per retained RQL run, newest last (same rows as
   sys_progress). *)
let run_progress () =
  let runs = Obs.Progress.runs () in
  if runs = [] then print_endline "no RQL runs recorded"
  else
    List.iter
      (fun (p : Obs.Progress.t) ->
        let total =
          if p.Obs.Progress.pr_total > 0 then string_of_int p.Obs.Progress.pr_total
          else "?"
        in
        Printf.printf "run %d [%s] %s: %d/%s iterations, %d pages, %.3fs elapsed%s%s\n"
          p.Obs.Progress.pr_id
          (Obs.Progress.status_to_string p.Obs.Progress.pr_status)
          p.Obs.Progress.pr_mechanism p.Obs.Progress.pr_done total
          p.Obs.Progress.pr_pages p.Obs.Progress.pr_elapsed
          (if p.Obs.Progress.pr_status = Obs.Progress.Running && p.Obs.Progress.pr_eta > 0.
           then Printf.sprintf ", ~%.3fs left" p.Obs.Progress.pr_eta
           else "")
          (if p.Obs.Progress.pr_cancel && p.Obs.Progress.pr_status = Obs.Progress.Running
           then " (cancel requested)"
           else ""))
      runs

let run_cancel args =
  let flag id = Obs.Progress.request_cancel ?id () in
  match String.trim args with
  | "" -> (
    match flag None with
    | 0 -> print_endline "no running RQL run to cancel"
    | n -> Printf.printf "cancel requested for %d run%s (takes effect within one iteration)\n"
             n (if n = 1 then "" else "s"))
  | s -> (
    match int_of_string_opt s with
    | None -> print_endline "usage: .cancel [RUN_ID]"
    | Some id -> (
      match flag (Some id) with
      | 0 -> Printf.printf "run %d is not running (or unknown)\n" id
      | _ -> Printf.printf "cancel requested for run %d (takes effect within one iteration)\n" id))

let run_trace ctx args =
  match String.split_on_char ' ' (String.trim args) |> List.filter (( <> ) "") with
  | "dump" :: path :: _ ->
    Rql.flush_traces ctx;
    Obs.Trace.dump ~path;
    Printf.printf "wrote %d spans to %s (load in chrome://tracing or Perfetto)\n"
      (List.length (Obs.Trace.spans ())) path
  | _ -> print_endline "usage: .trace dump PATH"

let () =
  let quit ~ctx_ref:_ ~args:_ = raise Exit in
  commands :=
    [ { cname = ".snapshot"; cargs = "[name]";
        chelp = "COMMIT WITH SNAPSHOT + record in SnapIds";
        crun =
          (fun ~ctx_ref ~args ->
            let name = String.trim args in
            let sid = Rql.declare_snapshot ~name !ctx_ref in
            Printf.printf "declared snapshot %d%s\n" sid
              (if name = "" then "" else " (" ^ name ^ ")")) };
      { cname = ".snapshots"; cargs = ""; chelp = "list SnapIds";
        crun =
          (fun ~ctx_ref ~args:_ ->
            print_result (E.exec !ctx_ref.Rql.meta "SELECT * FROM SnapIds")) };
      { cname = ".tables"; cargs = "[@meta]";
        chelp = "list tables (catalog + sys_ virtual tables)";
        crun =
          (fun ~ctx_ref ~args ->
            match String.trim args with
            | "" -> list_tables !ctx_ref.Rql.data
            | "@meta" -> list_tables !ctx_ref.Rql.meta
            | _ -> print_endline "usage: .tables [@meta]") };
      { cname = ".stats"; cargs = ""; chelp = "storage/Retro counters";
        crun = (fun ~ctx_ref ~args:_ -> run_stats !ctx_ref) };
      { cname = ".metrics"; cargs = "[prom [PATH]]";
        chelp = "metrics registry; prom = Prometheus text exposition (to stdout or PATH)";
        crun = (fun ~ctx_ref:_ ~args -> run_metrics args) };
      { cname = ".plans"; cargs = "[@meta]";
        chelp = "plan-cache statistics incl. delta-safe plan count (sys_plans)";
        crun =
          (fun ~ctx_ref ~args ->
            let db =
              match String.trim args with
              | "@meta" -> !ctx_ref.Rql.meta
              | _ -> !ctx_ref.Rql.data
            in
            print_result (E.exec db "SELECT * FROM sys_plans")) };
      { cname = ".lint"; cargs = "[@meta] SQL";
        chelp = "static analysis only: print diagnostics without executing";
        crun =
          (fun ~ctx_ref ~args ->
            let sql = String.trim args in
            let db, sql =
              if String.length sql >= 5 && String.sub sql 0 5 = "@meta" then
                (!ctx_ref.Rql.meta, String.trim (String.sub sql 5 (String.length sql - 5)))
              else (!ctx_ref.Rql.data, sql)
            in
            if sql = "" then print_endline "usage: .lint [@meta] SQL"
            else
              match E.analyze db sql with
              | [] -> print_endline "ok"
              | diags -> List.iter (fun d -> print_endline (Sqldb.Diag.render d)) diags) };
      { cname = ".integrity"; cargs = ""; chelp = "run the on-disk integrity checker";
        crun =
          (fun ~ctx_ref ~args:_ ->
            match
              Sqldb.Integrity.check !ctx_ref.Rql.data @ Sqldb.Integrity.check !ctx_ref.Rql.meta
            with
            | [] -> print_endline "ok"
            | problems -> List.iter (fun p -> print_endline ("PROBLEM: " ^ p)) problems) };
      { cname = ".wal"; cargs = "[sync]";
        chelp = "write-ahead log status; sync = flush+fsync the pending tail";
        crun =
          (fun ~ctx_ref ~args ->
            let db = !ctx_ref.Rql.data in
            match (String.trim args, Sqldb.Db.wal_status db) with
            | _, None -> print_endline "no WAL attached (start the shell with --wal PATH)"
            | "sync", Some _ ->
              Sqldb.Db.sync_wal db;
              print_endline "synced"
            | "", Some s ->
              Printf.printf
                "wal %s: group_commit=%d appends=%d bytes=%d fsyncs=%d pending=%d \
                 since_checkpoint=%d bytes\n"
                s.Storage.Wal.st_path s.Storage.Wal.st_group_commit s.Storage.Wal.st_appends
                s.Storage.Wal.st_bytes s.Storage.Wal.st_fsyncs s.Storage.Wal.st_pending_bytes
                s.Storage.Wal.st_since_checkpoint
            | _, Some _ -> print_endline "usage: .wal [sync]") };
      { cname = ".checkpoint"; cargs = "";
        chelp = "materialize the WAL into a durable image and truncate it";
        crun =
          (fun ~ctx_ref ~args:_ ->
            let db = !ctx_ref.Rql.data in
            match Sqldb.Db.wal db with
            | None -> print_endline "no WAL attached (start the shell with --wal PATH)"
            | Some _ ->
              let seq, dropped = Sqldb.Db.checkpoint db in
              Printf.printf "checkpoint %d: truncated %d WAL bytes\n" seq dropped) };
      { cname = ".statements"; cargs = "";
        chelp = "top statements by total time (per-fingerprint, sys_statements)";
        crun = (fun ~ctx_ref ~args:_ -> run_statements !ctx_ref.Rql.data) };
      { cname = ".slowlog"; cargs = "[on [MS] | off]";
        chelp = "slow-query log: set/clear the threshold, or print logged events";
        crun = (fun ~ctx_ref ~args -> run_slowlog !ctx_ref args) };
      { cname = ".sessions"; cargs = "[@meta]";
        chelp = "live sessions of the data (or @meta) database (sys_sessions)";
        crun =
          (fun ~ctx_ref ~args ->
            let db =
              match String.trim args with
              | "@meta" -> !ctx_ref.Rql.meta
              | _ -> !ctx_ref.Rql.data
            in
            print_result
              (E.exec db
                 "SELECT session_id, prepared, plans, hits, misses, scope_id, current \
                  FROM sys_sessions ORDER BY session_id")) };
      { cname = ".progress"; cargs = "";
        chelp = "live + recent RQL runs (iterations, pages, ETA; sys_progress)";
        crun = (fun ~ctx_ref:_ ~args:_ -> run_progress ()) };
      { cname = ".cancel"; cargs = "[RUN_ID]";
        chelp = "request cooperative cancellation of a running RQL run (all, or one id)";
        crun = (fun ~ctx_ref:_ ~args -> run_cancel args) };
      { cname = ".profile"; cargs = "[on|off]"; chelp = "enable/disable span tracing";
        crun = (fun ~ctx_ref:_ ~args -> run_profile args) };
      { cname = ".trace"; cargs = "dump PATH"; chelp = "write collected spans as Chrome trace JSON";
        crun = (fun ~ctx_ref ~args -> run_trace !ctx_ref args) };
      { cname = ".save"; cargs = "PATH"; chelp = "save both databases to a backup file";
        crun =
          (fun ~ctx_ref ~args ->
            let path = String.trim args in
            Rql.save !ctx_ref ~path;
            Printf.printf "saved to %s\n" path) };
      { cname = ".open"; cargs = "PATH"; chelp = "replace the session with a saved backup";
        crun =
          (fun ~ctx_ref ~args ->
            let path = String.trim args in
            ctx_ref := Rql.load ~path;
            Printf.printf "opened %s\n" path) };
      { cname = ".help"; cargs = ""; chelp = "this text";
        crun = (fun ~ctx_ref:_ ~args:_ -> print_help ()) };
      { cname = ".quit"; cargs = ""; chelp = "exit"; crun = quit };
      { cname = ".exit"; cargs = ""; chelp = "exit"; crun = quit } ]

let run_line ctx_ref line =
  let line = String.trim line in
  if line = "" then ()
  else if line.[0] = '.' then begin
    let word, args =
      match String.index_opt line ' ' with
      | Some i -> (String.sub line 0 i, String.sub line i (String.length line - i))
      | None -> (line, "")
    in
    match List.find_opt (fun c -> c.cname = word) !commands with
    | Some c -> c.crun ~ctx_ref ~args
    | None -> Printf.printf "unknown command %s (.help for the list)\n" word
  end
  else if String.length line >= 5 && String.sub line 0 5 = "@meta" then
    print_result
      (E.exec_script !ctx_ref.Rql.meta (String.sub line 5 (String.length line - 5)))
  else print_result (E.exec_script !ctx_ref.Rql.data line)

let repl ctx =
  let ctx_ref = ref ctx in
  print_endline "RQL shell — .help for commands, .quit to exit";
  (try
     while true do
       print_string "rql> ";
       flush stdout;
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line -> (
         try run_line ctx_ref line with
         | E.Error msg | Rql.Error msg -> Printf.printf "error: %s\n" msg
         | Rql.Cancelled { mechanism; iterations_done; run_id } ->
           Printf.printf "run %d (%s) cancelled after %d iteration%s (.progress for details)\n"
             run_id mechanism iterations_done
             (if iterations_done = 1 then "" else "s")
         | Rql.Monoid.Not_supported msg -> Printf.printf "error: %s\n" msg
         | Rql.Rewrite.Error msg -> Printf.printf "error: %s\n" msg)
     done
   with Exit -> ());
  print_endline "bye"

open Cmdliner

let tpch_sf =
  let doc = "Pre-load a TPC-H database at the given scale factor." in
  Arg.(value & opt (some float) None & info [ "tpch" ] ~docv:"SF" ~doc)

let snapshots =
  let doc = "With --tpch, run this many UW30 refresh+snapshot rounds." in
  Arg.(value & opt int 0 & info [ "snapshots" ] ~docv:"N" ~doc)

let wal_path =
  let doc =
    "Open the data database against a write-ahead log at $(docv): recover it if the \
     file exists (replaying committed transactions and snapshots, discarding a torn \
     tail), create it otherwise.  Commits and snapshot declarations are then durable."
  in
  Arg.(value & opt (some string) None & info [ "wal" ] ~docv:"PATH" ~doc)

let group_commit =
  let doc = "With --wal, batch this many commits per modeled fsync (group commit)." in
  Arg.(value & opt int 1 & info [ "group-commit" ] ~docv:"N" ~doc)

let checkpoint_bytes =
  let doc =
    "With --wal, auto-checkpoint after the log grows past $(docv) bytes (0 = only \
     explicit .checkpoint / CHECKPOINT statements; same knob as PRAGMA \
     checkpoint_threshold)."
  in
  Arg.(value & opt int 0 & info [ "checkpoint-bytes" ] ~docv:"BYTES" ~doc)

(* Open (or recover) the WAL-backed data database and print the
   recovery report the durability contract promises on open. *)
let open_wal_data ~group_commit path =
  match Sqldb.Db.open_wal ~group_commit ~path () with
  | db, None ->
    Printf.printf "created WAL-backed database at %s\n" path;
    db
  | db, Some r ->
    let rep = r.Sqldb.Db.rec_report in
    Printf.printf "recovered %s: %d commits, %d snapshots replayed (%d of %d bytes valid)\n"
      path rep.Storage.Wal.rep_commits r.Sqldb.Db.rec_snapshots
      rep.Storage.Wal.rep_valid_bytes rep.Storage.Wal.rep_total_bytes;
    (match rep.Storage.Wal.rep_checkpoint with
    | Some seq -> Printf.printf "  restored checkpoint image %d, replayed the suffix\n" seq
    | None -> ());
    if rep.Storage.Wal.rep_torn then
      print_endline "  torn tail discarded (incomplete final record)";
    if rep.Storage.Wal.rep_corrupt then
      print_endline "  corrupt tail discarded (checksum mismatch)";
    (match r.Sqldb.Db.rec_damaged with
    | [] -> ()
    | ds ->
      Printf.printf "  damaged snapshots (corrupt archive blocks): %s\n"
        (String.concat ", " (List.map string_of_int ds)));
    db

let main tpch snapshots wal group_commit checkpoint_bytes =
  let ctx =
    match wal with
    | Some path -> Rql.create ~data:(open_wal_data ~group_commit path) ()
    | None -> Rql.create ()
  in
  if checkpoint_bytes > 0 then
    Sqldb.Db.set_checkpoint_threshold ctx.Rql.data checkpoint_bytes;
  (match tpch with
  | Some sf ->
    Printf.printf "generating TPC-H at SF %g...\n%!" sf;
    let st = Tpch.Dbgen.generate ctx.Rql.data ~sf in
    if snapshots > 0 then begin
      Printf.printf "running %d UW30 refresh rounds...\n%!" snapshots;
      ignore (Tpch.Workload.run ctx st ~uw:Tpch.Workload.uw30 ~snapshots)
    end
  | None -> ());
  repl ctx;
  Sqldb.Db.close_wal ctx.Rql.data

let cmd =
  let doc = "interactive shell for the RQL retrospective query system" in
  Cmd.v (Cmd.info "rql_shell" ~doc)
    Term.(const main $ tpch_sf $ snapshots $ wal_path $ group_commit $ checkpoint_bytes)

let () = exit (Cmd.eval cmd)
