(* Interactive RQL shell.

   A REPL over an RQL context: SQL statements run against the
   snapshottable data database; lines prefixed with "@meta" run against
   the non-snapshottable database that holds SnapIds and result tables
   (where the RQL UDFs are registered).  Dot-commands manage snapshots
   and inspection.

     dune exec bin/rql_shell.exe            empty database
     dune exec bin/rql_shell.exe -- --tpch 0.002 --snapshots 5

   Commands:
     .snapshot [name]    COMMIT WITH SNAPSHOT + record in SnapIds
     .snapshots          list SnapIds
     .tables [@meta]     list tables
     .stats              storage/Retro counters
     .metrics            full Obs metrics registry (counters + histograms)
     .profile on|off     enable/disable span tracing
     .trace dump PATH    write collected spans as Chrome trace JSON
     .help               this text
     .quit               exit

   EXPLAIN PROFILE <select> runs the statement with tracing forced on
   and prints the span tree plus counter deltas. *)

module R = Storage.Record
module E = Sqldb.Engine

let print_result (res : E.result) =
  if Array.length res.E.columns > 0 then begin
    print_endline (String.concat " | " (Array.to_list res.E.columns));
    List.iter
      (fun row ->
        print_endline
          (String.concat " | " (Array.to_list (Array.map R.value_to_string row))))
      res.E.rows;
    Printf.printf "(%d rows)\n" (List.length res.E.rows)
  end
  else begin
    (match res.E.snapshot with
    | Some sid -> Printf.printf "declared snapshot %d\n" sid
    | None -> ());
    if res.E.rows_affected > 0 then Printf.printf "(%d rows affected)\n" res.E.rows_affected
  end

let list_tables db =
  let cat = Sqldb.Db.catalog db in
  List.iter print_endline (List.sort compare (Sqldb.Catalog.table_names cat))

let run_line ctx_ref line =
  let ctx : Rql.ctx = !ctx_ref in
  let line = String.trim line in
  if line = "" then ()
  else if line = ".quit" || line = ".exit" then raise Exit
  else if line = ".help" then
    print_endline
      ".snapshot [name] | .snapshots | .tables [@meta] | .stats | .metrics | .integrity | .save PATH | .open PATH | .quit\n\
       .profile on|off — enable/disable span tracing; .trace dump PATH — write Chrome trace JSON\n\
       EXPLAIN PROFILE <select> — run with tracing and print span tree + counter deltas\n\
       SQL goes to the data database; prefix with @meta for the SnapIds/result database.\n\
       RQL mechanisms are UDFs on @meta, e.g.:\n\
       @meta SELECT CollateData(snap_id, 'SELECT ... current_snapshot() ...', 'T') FROM SnapIds;"
  else if line = ".snapshots" then print_result (E.exec ctx.Rql.meta "SELECT * FROM SnapIds")
  else if line = ".tables" then list_tables ctx.Rql.data
  else if line = ".tables @meta" then list_tables ctx.Rql.meta
  else if line = ".integrity" then begin
    match Sqldb.Integrity.check ctx.Rql.data @ Sqldb.Integrity.check ctx.Rql.meta with
    | [] -> print_endline "ok"
    | problems -> List.iter (fun p -> print_endline ("PROBLEM: " ^ p)) problems
  end
  else if line = ".stats" then begin
    Fmt.pr "%a@." Storage.Stats.pp Storage.Stats.global;
    match Sqldb.Db.(ctx.Rql.data.retro) with
    | Some retro ->
      Printf.printf "snapshots=%d pagelog=%d pages (%.1f MB) maplog=%d entries\n"
        (Retro.snapshot_count retro)
        (Retro.Pagelog.length retro.Retro.pagelog)
        (float_of_int (Retro.pagelog_size_bytes retro) /. 1e6)
        (Retro.maplog_length retro)
    | None -> ()
  end
  else if line = ".metrics" then Fmt.pr "%a@." Obs.Metrics.pp ()
  else if line = ".profile on" then begin
    Obs.Trace.set_enabled true;
    print_endline "profiling on (spans are being recorded; .trace dump PATH to export)"
  end
  else if line = ".profile off" then begin
    Obs.Trace.set_enabled false;
    print_endline "profiling off"
  end
  else if line = ".profile" then
    Printf.printf "profiling is %s (%d spans recorded)\n"
      (if Obs.Trace.is_enabled () then "on" else "off")
      (List.length (Obs.Trace.spans ()))
  else if String.length line >= 11 && String.sub line 0 11 = ".trace dump" then begin
    let path = String.trim (String.sub line 11 (String.length line - 11)) in
    if path = "" then print_endline "usage: .trace dump PATH"
    else begin
      Rql.flush_traces ctx;
      Obs.Trace.dump ~path;
      Printf.printf "wrote %d spans to %s (load in chrome://tracing or Perfetto)\n"
        (List.length (Obs.Trace.spans ())) path
    end
  end
  else if String.length line >= 9 && String.sub line 0 9 = ".snapshot" then begin
    let name = String.trim (String.sub line 9 (String.length line - 9)) in
    let sid = Rql.declare_snapshot ~name ctx in
    Printf.printf "declared snapshot %d%s\n" sid (if name = "" then "" else " (" ^ name ^ ")")
  end
  else if String.length line >= 6 && String.sub line 0 5 = ".save" then begin
    let path = String.trim (String.sub line 5 (String.length line - 5)) in
    Rql.save ctx ~path;
    Printf.printf "saved to %s\n" path
  end
  else if String.length line >= 6 && String.sub line 0 5 = ".open" then begin
    let path = String.trim (String.sub line 5 (String.length line - 5)) in
    ctx_ref := Rql.load ~path;
    Printf.printf "opened %s\n" path
  end
  else if String.length line >= 5 && String.sub line 0 5 = "@meta" then
    print_result (E.exec_script ctx.Rql.meta (String.sub line 5 (String.length line - 5)))
  else print_result (E.exec_script ctx.Rql.data line)

let repl ctx =
  let ctx_ref = ref ctx in
  print_endline "RQL shell — .help for commands, .quit to exit";
  (try
     while true do
       print_string "rql> ";
       flush stdout;
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line -> (
         try run_line ctx_ref line with
         | E.Error msg | Rql.Error msg -> Printf.printf "error: %s\n" msg
         | Rql.Monoid.Not_supported msg -> Printf.printf "error: %s\n" msg
         | Rql.Rewrite.Error msg -> Printf.printf "error: %s\n" msg)
     done
   with Exit -> ());
  print_endline "bye"

open Cmdliner

let tpch_sf =
  let doc = "Pre-load a TPC-H database at the given scale factor." in
  Arg.(value & opt (some float) None & info [ "tpch" ] ~docv:"SF" ~doc)

let snapshots =
  let doc = "With --tpch, run this many UW30 refresh+snapshot rounds." in
  Arg.(value & opt int 0 & info [ "snapshots" ] ~docv:"N" ~doc)

let main tpch snapshots =
  let ctx = Rql.create () in
  (match tpch with
  | Some sf ->
    Printf.printf "generating TPC-H at SF %g...\n%!" sf;
    let st = Tpch.Dbgen.generate ctx.Rql.data ~sf in
    if snapshots > 0 then begin
      Printf.printf "running %d UW30 refresh rounds...\n%!" snapshots;
      ignore (Tpch.Workload.run ctx st ~uw:Tpch.Workload.uw30 ~snapshots)
    end
  | None -> ());
  repl ctx

let cmd =
  let doc = "interactive shell for the RQL retrospective query system" in
  Cmd.v (Cmd.info "rql_shell" ~doc) Term.(const main $ tpch_sf $ snapshots)

let () = exit (Cmd.eval cmd)
