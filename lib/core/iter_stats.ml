(* Per-iteration cost breakdown for RQL runs.

   The benchmarks reproduce the paper's stacked bars (Figs 8-13), which
   attribute each iteration's latency to I/O, SPT build, (covering)
   index creation, query evaluation and RQL UDF processing.  I/O is
   modeled from the simulated device counters (see DESIGN.md); the other
   components are measured wall-clock. *)

type iteration = {
  snap_id : int;
  cold : bool;                 (* first iteration of the run *)
  pagelog_reads : int;
  db_reads : int;
  cache_hits : int;
  cache_misses : int;
  io_s : float;                (* modeled: pagelog reads x device latency *)
  spt_build_s : float;
  spt_entries : int;           (* maplog entries scanned *)
  index_build_s : float;       (* automatic covering-index creation *)
  query_eval_s : float;        (* Qq evaluation minus the other parts *)
  udf_s : float;               (* mechanism row processing (loop body) *)
  udf_rows : int;              (* Qq rows processed by the loop body *)
  udf_inserts : int;           (* result-table inserts *)
  udf_updates : int;           (* result-table updates *)
}

let iteration_total it =
  it.io_s +. it.spt_build_s +. it.index_build_s +. it.query_eval_s +. it.udf_s

type run = {
  mechanism : string;
  qq : string;
  iterations : iteration list; (* in execution order *)
  result_rows : int;
  result_bytes : int;          (* approximate result-table footprint *)
  finalize_s : float;          (* post-loop work (e.g. AVG finalization) *)
}

let total_s run =
  List.fold_left (fun acc it -> acc +. iteration_total it) run.finalize_s run.iterations

let total_io_reads run = List.fold_left (fun acc it -> acc + it.pagelog_reads) 0 run.iterations

let pp_iteration ppf it =
  Fmt.pf ppf
    "snap=%d %s io=%.4fs (%d pagelog reads) spt=%.4fs (%d entries) idx=%.4fs \
     query=%.4fs udf=%.4fs total=%.4fs"
    it.snap_id
    (if it.cold then "cold" else "hot ")
    it.io_s it.pagelog_reads it.spt_build_s it.spt_entries it.index_build_s it.query_eval_s
    it.udf_s (iteration_total it);
  if it.udf_rows > 0 then
    Fmt.pf ppf " rows=%d ins=%d upd=%d" it.udf_rows it.udf_inserts it.udf_updates

let pp_run ppf run =
  Fmt.pf ppf "@[<v>%s over %d snapshots: total=%.4fs result_rows=%d result_bytes=%d@,%a@]"
    run.mechanism (List.length run.iterations) (total_s run) run.result_rows run.result_bytes
    (Fmt.list pp_iteration) run.iterations

(* Aggregate breakdown over a run's iterations (for bar charts). *)
type breakdown = {
  b_io : float;
  b_spt : float;
  b_index : float;
  b_query : float;
  b_udf : float;
}

let breakdown_of iterations =
  List.fold_left
    (fun b it ->
      { b_io = b.b_io +. it.io_s;
        b_spt = b.b_spt +. it.spt_build_s;
        b_index = b.b_index +. it.index_build_s;
        b_query = b.b_query +. it.query_eval_s;
        b_udf = b.b_udf +. it.udf_s })
    { b_io = 0.; b_spt = 0.; b_index = 0.; b_query = 0.; b_udf = 0. }
    iterations

let breakdown_total b = b.b_io +. b.b_spt +. b.b_index +. b.b_query +. b.b_udf

(* --- JSON export --------------------------------------------------------- *)

(* Structured form of the per-iteration breakdown: what `bench --json`
   writes.  [total_s] repeats the component sum so consumers need not
   recompute it; the numbers are exactly the ones the printed tables
   show. *)
let json_of_iteration (it : iteration) : Obs.Json.t =
  Obs.Json.Obj
    [ ("snap_id", Obs.Json.Int it.snap_id);
      ("cold", Obs.Json.Bool it.cold);
      ("pagelog_reads", Obs.Json.Int it.pagelog_reads);
      ("db_reads", Obs.Json.Int it.db_reads);
      ("cache_hits", Obs.Json.Int it.cache_hits);
      ("cache_misses", Obs.Json.Int it.cache_misses);
      ("io_s", Obs.Json.Float it.io_s);
      ("spt_build_s", Obs.Json.Float it.spt_build_s);
      ("spt_entries", Obs.Json.Int it.spt_entries);
      ("index_build_s", Obs.Json.Float it.index_build_s);
      ("query_eval_s", Obs.Json.Float it.query_eval_s);
      ("udf_s", Obs.Json.Float it.udf_s);
      ("udf_rows", Obs.Json.Int it.udf_rows);
      ("udf_inserts", Obs.Json.Int it.udf_inserts);
      ("udf_updates", Obs.Json.Int it.udf_updates);
      ("total_s", Obs.Json.Float (iteration_total it)) ]

let json_of_breakdown (b : breakdown) : Obs.Json.t =
  Obs.Json.Obj
    [ ("io_s", Obs.Json.Float b.b_io);
      ("spt_build_s", Obs.Json.Float b.b_spt);
      ("index_build_s", Obs.Json.Float b.b_index);
      ("query_eval_s", Obs.Json.Float b.b_query);
      ("udf_s", Obs.Json.Float b.b_udf);
      ("total_s", Obs.Json.Float (breakdown_total b)) ]

let json_of_run ?experiment ?label (run : run) : Obs.Json.t =
  let tag k v = match v with Some s -> [ (k, Obs.Json.Str s) ] | None -> [] in
  Obs.Json.Obj
    (tag "experiment" experiment
    @ tag "label" label
    @ [ ("mechanism", Obs.Json.Str run.mechanism);
        ("qq", Obs.Json.Str run.qq);
        ("result_rows", Obs.Json.Int run.result_rows);
        ("result_bytes", Obs.Json.Int run.result_bytes);
        ("finalize_s", Obs.Json.Float run.finalize_s);
        ("total_s", Obs.Json.Float (total_s run));
        ("breakdown", json_of_breakdown (breakdown_of run.iterations));
        ("iterations", Obs.Json.List (List.map json_of_iteration run.iterations)) ])

(* --- modeled trace emission ----------------------------------------------- *)

(* Lay the run's cost attribution out on the modeled trace track
   (tid 2): run -> iteration -> {io, spt_build, index_build, query_eval,
   udf}, durations from the attributed breakdown rather than the host
   clock (I/O time is the simulated-device model), tiled sequentially so
   the spans nest exactly.  [start_s] anchors the modeled track at the
   run's real start so the wall-clock track lines up roughly. *)
let emit_trace ~start_s (run : run) =
  if Obs.Trace.is_enabled () then begin
    let tid = Obs.Trace.tid_modeled in
    let us0 = Obs.Trace.us_of_s start_s in
    let run_id =
      Obs.Trace.emit ~tid ~parent:(-1) ~name:"rql.run"
        ~attrs:
          [ ("mechanism", Obs.Trace.Str run.mechanism);
            ("qq", Obs.Trace.Str run.qq);
            ("result_rows", Obs.Trace.Int run.result_rows) ]
        ~ts_us:us0
        ~dur_us:(total_s run *. 1e6)
        ()
    in
    let cursor = ref us0 in
    List.iter
      (fun it ->
        let it_us = iteration_total it *. 1e6 in
        let it_id =
          Obs.Trace.emit ~tid ~parent:run_id ~name:"rql.iteration"
            ~attrs:
              [ ("snap_id", Obs.Trace.Int it.snap_id);
                ("cold", Obs.Trace.Bool it.cold);
                ("pagelog_reads", Obs.Trace.Int it.pagelog_reads) ]
            ~ts_us:!cursor ~dur_us:it_us ()
        in
        let sub = ref !cursor in
        let component name s attrs =
          ignore
            (Obs.Trace.emit ~tid ~parent:it_id ~name ~attrs ~ts_us:!sub ~dur_us:(s *. 1e6) ());
          sub := !sub +. (s *. 1e6)
        in
        component "io" it.io_s [ ("pagelog_reads", Obs.Trace.Int it.pagelog_reads) ];
        component "spt_build" it.spt_build_s [ ("entries", Obs.Trace.Int it.spt_entries) ];
        component "index_build" it.index_build_s [];
        component "query_eval" it.query_eval_s [];
        component "udf" it.udf_s [ ("rows", Obs.Trace.Int it.udf_rows) ];
        cursor := !cursor +. it_us)
      run.iterations
  end
