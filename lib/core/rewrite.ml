(* Qq rewriting (paper §3).

   Before each iteration, the "loop body" rewrites the programmer's Qq,
   binding it to the iteration's snapshot identifier:
   - "AS OF <sid>" is injected after the first SELECT keyword, and
   - every occurrence of current_snapshot() is replaced by the literal
     snapshot id.

   The paper performs this rewriting at the SQL-text level; so do we.
   The scanner below is quote- and comment-aware so that string literals
   containing "select" or "current_snapshot()" are left alone. *)

exception Error of string

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Scan [sql] and return the spans (start, length) of every top-level
   occurrence of identifier [word] (case-insensitive), skipping string
   literals, quoted identifiers and comments. *)
let ident_spans sql word =
  let n = String.length sql in
  let wl = String.length word in
  let word = String.lowercase_ascii word in
  let spans = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = sql.[!i] in
    if c = '\'' then begin
      (* string literal: '' escapes *)
      incr i;
      let rec skip () =
        if !i >= n then raise (Error "unterminated string literal in Qq")
        else if sql.[!i] = '\'' then
          if !i + 1 < n && sql.[!i + 1] = '\'' then begin
            i := !i + 2;
            skip ()
          end
          else incr i
        else begin
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if c = '"' then begin
      incr i;
      while !i < n && sql.[!i] <> '"' do incr i done;
      incr i
    end
    else if c = '-' && !i + 1 < n && sql.[!i + 1] = '-' then begin
      while !i < n && sql.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && sql.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (sql.[!i] = '*' && sql.[!i + 1] = '/') do incr i done;
      i := min n (!i + 2)
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char sql.[!i] do incr i done;
      let len = !i - start in
      (* a dot-qualified name (t.current_snapshot) is a different
         identifier: substituting inside it would corrupt the query *)
      let qualified = start > 0 && sql.[start - 1] = '.' in
      if (not qualified) && len = wl && String.lowercase_ascii (String.sub sql start len) = word
      then spans := (start, len) :: !spans
    end
    else incr i
  done;
  List.rev !spans

(* Replace every call current_snapshot() with the literal [sid]. *)
let substitute_current_snapshot sql ~sid =
  let spans = ident_spans sql "current_snapshot" in
  if spans = [] then sql
  else begin
    let buf = Buffer.create (String.length sql) in
    let pos = ref 0 in
    List.iter
      (fun (start, len) ->
        Buffer.add_substring buf sql !pos (start - !pos);
        (* consume the trailing () if present *)
        let after = ref (start + len) in
        let n = String.length sql in
        let skip_ws () = while !after < n && (sql.[!after] = ' ' || sql.[!after] = '\t' || sql.[!after] = '\n' || sql.[!after] = '\r') do incr after done in
        skip_ws ();
        if !after < n && sql.[!after] = '(' then begin
          incr after;
          skip_ws ();
          if !after < n && sql.[!after] = ')' then begin
            incr after;
            Buffer.add_string buf (string_of_int sid);
            pos := !after
          end
          else raise (Error "current_snapshot takes no arguments")
        end
        else begin
          (* bare identifier use: also substitute *)
          Buffer.add_string buf (string_of_int sid);
          pos := start + len
        end)
      spans;
    Buffer.add_substring buf sql !pos (String.length sql - !pos);
    Buffer.contents buf
  end

(* Inject "AS OF <sid>" after the first top-level SELECT keyword. *)
let inject_as_of sql ~sid =
  match ident_spans sql "select" with
  | [] -> raise (Error "Qq must be a SELECT statement")
  | (start, len) :: _ ->
    let insert_at = start + len in
    String.sub sql 0 insert_at
    ^ Printf.sprintf " AS OF %d" sid
    ^ String.sub sql insert_at (String.length sql - insert_at)

(* Full per-iteration rewrite, e.g. for sid = 5:
     SELECT DISTINCT current_snapshot() FROM LoggedIn
   becomes
     SELECT AS OF 5 DISTINCT 5 FROM LoggedIn *)
let rewrite sql ~sid = inject_as_of (substitute_current_snapshot sql ~sid) ~sid

(* AST-level binding for the prepared path: the parsed Qq becomes a
   parameterized statement — every current_snapshot() call (or bare
   identifier use) becomes parameter 0, and AS OF ? is attached to the
   outermost select — so the loop binds the snapshot id per iteration
   instead of re-rewriting and re-parsing text. *)
let parameterize (sel : Sqldb.Ast.select) : Sqldb.Ast.select =
  let open Sqldb.Ast in
  let is_cs name = String.lowercase_ascii name = "current_snapshot" in
  let subst = function
    | Call (name, []) when is_cs name -> Param 0
    | Col (None, name) when is_cs name -> Param 0
    | e -> e
  in
  let sel = Sqldb.Expr.map_select subst sel in
  { sel with as_of = Some (Param 0) }
