(** Qq rewriting (paper §3): before each iteration the loop body binds
    the programmer's Qq to the iteration's snapshot id by injecting
    [AS OF <sid>] after the first SELECT keyword and replacing every
    [current_snapshot()] call with the literal id.  Rewriting is
    performed at the SQL-text level, as in the paper, with a quote- and
    comment-aware scanner. *)

exception Error of string

(** Spans (offset, length) of top-level occurrences of identifier
    [word], skipping strings, quoted identifiers and comments. *)
val ident_spans : string -> string -> (int * int) list

(** Replace every [current_snapshot()] call (and bare identifier use)
    with the literal [sid]. *)
val substitute_current_snapshot : string -> sid:int -> string

(** Inject [AS OF sid] after the first top-level SELECT.
    @raise Error if the statement is not a SELECT. *)
val inject_as_of : string -> sid:int -> string

(** Full per-iteration rewrite, e.g. for sid = 5:
    ["SELECT DISTINCT current_snapshot() FROM LoggedIn"] becomes
    ["SELECT AS OF 5 DISTINCT 5 FROM LoggedIn"]. *)
val rewrite : string -> sid:int -> string

(** AST-level binding for the prepared path: replace every
    [current_snapshot()] call (or bare identifier use) with parameter 0
    and attach [AS OF ?] to the outermost select, so the loop body binds
    the snapshot id per iteration instead of re-rewriting and re-parsing
    the Qq text. *)
val parameterize : Sqldb.Ast.select -> Sqldb.Ast.select
