(* RQL: retrospective computations over snapshot sets (paper §2-3).

   An RQL computation iterates over the snapshot set returned by a
   snapshot query Qs, and for each snapshot executes a "loop body" that
   rewrites Qq (injecting AS OF and binding current_snapshot()), runs it
   on that snapshot, and processes the result rows in a
   mechanism-specific way:

   - CollateData(Qs, Qq, T)                    collect rows into T
   - AggregateDataInVariable(Qs, Qq, T, fn)    fold a single value
   - AggregateDataInTable(Qs, Qq, T, pairs)    cross-snapshot GROUP BY
   - CollateDataIntoIntervals(Qs, Qq, T)       record-lifetime intervals

   As in the paper, SnapIds and the result tables live in a separate
   non-snapshottable database, and the mechanisms are also registered as
   UDFs on that database so they can be invoked in the paper's SQL form:

     SELECT CollateData(snap_id, '<Qq>', 'Result') FROM SnapIds WHERE ...;

   Aggregation functions must form an abelian monoid (Monoid.t); AVG is
   supported as the paper's special case via hidden (sum, count)
   columns maintained in the result table. *)

module R = Storage.Record
module Sq = Sqldb

(* Re-export the companion modules: [rql.ml] is the library root, so
   these are only reachable through it. *)
module Monoid = Sqldb.Monoid
module Rewrite = Rewrite
module Iter_stats = Iter_stats

exception Error of string

(* A run stopped by {!Obs.Progress.request_cancel}: the loop checks the
   flag once per iteration, so every completed iteration is durable (each
   is transactionally self-contained) and [iterations_done] is exact. *)
exception
  Cancelled of { mechanism : string; iterations_done : int; run_id : int }

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type mech_kind =
  | Collate
  | Agg_var of Monoid.t
  | Agg_table of (string * Monoid.t) list
  | Intervals

let mech_name = function
  | Collate -> "CollateData"
  | Agg_var _ -> "AggregateDataInVariable"
  | Agg_table _ -> "AggregateDataInTable"
  | Intervals -> "CollateDataIntoIntervals"

(* Prepared-Qq state of a run: the Qq is parsed and parameterized once
   (first iteration) and the compiled plan is then reused across the
   snapshot loop; if the AST path cannot represent the Qq we fall back
   to the legacy per-iteration textual rewrite. *)
type prep_state =
  | Prep_pending
  | Prep_ready of Sq.Engine.prepared
  | Prep_fallback

type run_state = {
  kind : mech_kind;
  qq : string;
  table : string;
  data : Sq.Db.t;
  meta : Sq.Db.t;
  rs_analyze : bool; (* per-operator instrumentation for this run *)
  mutable prepared : prep_state;
  (* Qq result hoisted out of the snapshot loop: when the optimizer
     classified the prepared plan as snapshot-invariant, the first
     iteration's rows are stashed here and every later iteration replays
     them instead of re-evaluating. *)
  mutable invariant_rows : (string array * R.row list) option;
  t_start : float; (* wall-clock run start; anchors the modeled trace track *)
  mutable iterations : Iter_stats.iteration list; (* reversed *)
  mutable first_done : bool;
  mutable prev_sid : int;
  mutable last_sid : int option;
  mutable header : string array;
  mutable tbl : Sq.Catalog.table option;
  mutable env_meta : Sq.Exec.env option;
  mutable group_pos : int list;              (* grouping column positions (Qq output) *)
  mutable agg_specs : (int * Monoid.t) list; (* aggregated column positions *)
  mutable avg_hidden : (int * int * int) list; (* visible, sum, cnt positions in T *)
  mutable index : Sq.Catalog.index option;
  mutable single_rid : int option;           (* Agg_table with no grouping columns *)
  (* AggregateDataInVariable running state *)
  mutable var_value : R.value;
  mutable var_seen : bool;
  var_avg : Monoid.avg_state;
  mutable var_rid : int option;
  mutable finalize_s : float;
  (* per-iteration loop-body operation counters *)
  mutable cur_rows : int;
  mutable cur_inserts : int;
  mutable cur_updates : int;
  (* Live progress handle (sys_progress / .progress / .cancel). *)
  mutable rs_progress : Obs.Progress.t option;
}

type ctx = {
  data : Sq.Db.t;
  meta : Sq.Db.t;
  runs : (string, run_state) Hashtbl.t; (* active SQL-form UDF runs *)
}

(* --- helpers --------------------------------------------------------- *)

let now = Unix.gettimeofday

let stream_select db sql =
  match Sq.Parser.parse_one sql with
  | Sq.Ast.Select sel ->
    let env = Sq.Exec.env_of_select db sel in
    Sq.Exec.select_stream env sel
  | _ -> error "Qq must be a SELECT statement"

(* Parse and parameterize the Qq once per run, preparing it against the
   data database under a stable plan-cache key; iterations then bind the
   snapshot id as parameter 0.  Any failure on this path (beyond Qq not
   being a SELECT, which is a user error either way) falls back to the
   per-iteration textual rewrite so no previously-working Qq regresses. *)
let qq_key (rs : run_state) = "rql-qq:" ^ rs.qq

let qq_prepared (rs : run_state) =
  match rs.prepared with
  | Prep_ready p -> Some p
  | Prep_fallback -> None
  | Prep_pending -> (
    try
      match Sq.Engine.parse rs.qq with
      | Sq.Ast.Select sel ->
        let p = Sq.Engine.prepare_select rs.data ~key:(qq_key rs) (Rewrite.parameterize sel) in
        rs.prepared <- Prep_ready p;
        Some p
      | _ -> error "Qq must be a SELECT statement"
    with
    | Error _ as e -> raise e
    | _ ->
      rs.prepared <- Prep_fallback;
      None)

let meta_env (rs : run_state) =
  match rs.env_meta with
  | Some env -> env
  | None ->
    let env = Sq.Exec.current_env rs.meta in
    rs.env_meta <- Some env;
    env

let refresh_meta_env (rs : run_state) =
  rs.env_meta <- None;
  ignore (meta_env rs)

let table_exn (rs : run_state) =
  match rs.tbl with
  | Some t -> t
  | None -> error "%s: result table %s not initialized" (mech_name rs.kind) rs.table

let meta_heap (rs : run_state) = Sq.Db.heap_handle rs.meta (table_exn rs).Sq.Catalog.theap

let create_result_table (rs : run_state) cols =
  ignore (Sq.Engine.drop_table rs.meta ~name:rs.table ~if_exists:true);
  ignore (Sq.Engine.drop_index rs.meta ~name:(rs.table ^ "__rql_key") ~if_exists:true);
  (match Sq.Engine.create_table rs.meta ~name:rs.table ~cols ~if_not_exists:false with
  | Some tbl -> rs.tbl <- Some tbl
  | None -> error "could not create result table %s" rs.table);
  refresh_meta_env rs

let norm = String.lowercase_ascii

(* --- first-iteration initialization --------------------------------- *)

let init_run (rs : run_state) (header : string array) =
  rs.header <- header;
  match rs.kind with
  | Collate ->
    create_result_table rs (Array.to_list (Array.map (fun h -> (h, "")) header))
  | Agg_var _ ->
    if Array.length header <> 1 then
      error "AggregateDataInVariable: Qq must return a single column (got %d)"
        (Array.length header);
    let col = if header.(0) = "" then "value" else header.(0) in
    create_result_table rs [ (col, "") ];
    let env = meta_env rs in
    let rid =
      Sq.Db.with_write_txn rs.meta (fun txn ->
          Sq.Exec.insert_row_raw env txn (table_exn rs) [| R.Null |])
    in
    rs.var_rid <- Some rid
  | Agg_table pairs ->
    let find_pos c =
      let rec go i =
        if i >= Array.length header then
          error "AggregateDataInTable: Qq output has no column %s" c
        else if norm header.(i) = norm c then i
        else go (i + 1)
      in
      go 0
    in
    rs.agg_specs <- List.map (fun (c, fn) -> (find_pos c, fn)) pairs;
    let agg_pos = List.map fst rs.agg_specs in
    rs.group_pos <-
      List.filter
        (fun i -> not (List.mem i agg_pos))
        (List.init (Array.length header) (fun i -> i));
    (* visible columns, then hidden (sum, count) pairs for AVG *)
    let visible = Array.to_list (Array.map (fun h -> (h, "")) header) in
    let hidden =
      List.concat_map
        (fun (pos, fn) ->
          if fn = Monoid.Avg then
            [ (Printf.sprintf "__avg_sum_%s" header.(pos), "");
              (Printf.sprintf "__avg_cnt_%s" header.(pos), "") ]
          else [])
        rs.agg_specs
    in
    create_result_table rs (visible @ hidden);
    let next = ref (Array.length header) in
    rs.avg_hidden <-
      List.filter_map
        (fun (pos, fn) ->
          if fn = Monoid.Avg then begin
            let s = !next and c = !next + 1 in
            next := !next + 2;
            Some (pos, s, c)
          end
          else None)
        rs.agg_specs
  | Intervals ->
    rs.group_pos <- List.init (Array.length header) (fun i -> i);
    let cols =
      Array.to_list (Array.map (fun h -> (h, "")) header)
      @ [ ("start_snapshot", ""); ("end_snapshot", "") ]
    in
    create_result_table rs cols

(* Index creation at the end of the first iteration (paper §3): the key
   is the grouping columns of the result table. *)
let post_first (rs : run_state) =
  match rs.kind with
  | Collate | Agg_var _ -> ()
  | Agg_table _ | Intervals ->
    if rs.group_pos <> [] then begin
      let name = rs.table ^ "__rql_key" in
      Sq.Engine.create_index rs.meta ~name ~table:rs.table
        ~columns:(List.map (fun i -> rs.header.(i)) rs.group_pos)
        ~if_not_exists:false;
      refresh_meta_env rs;
      rs.tbl <- Sq.Catalog.find_table (meta_env rs).Sq.Exec.cat rs.table;
      rs.index <- Sq.Catalog.find_index (meta_env rs).Sq.Exec.cat name
    end

(* --- row processing --------------------------------------------------- *)

let to_num v = match Sq.Expr.to_number v with Some f -> R.Real f | None -> R.Null

(* The T row stored when a group is seen for the first time. *)
let first_row (rs : run_state) ~sid (row : R.row) : R.row =
  match rs.kind with
  | Agg_table _ ->
    let n_hidden = 2 * List.length rs.avg_hidden in
    let out = Array.make (Array.length row + n_hidden) R.Null in
    Array.blit row 0 out 0 (Array.length row);
    List.iter
      (fun (pos, fn) -> if fn <> Monoid.Avg then out.(pos) <- Monoid.init fn row.(pos))
      rs.agg_specs;
    List.iter
      (fun (vis, sum, cnt) ->
        let v = row.(vis) in
        out.(sum) <- to_num v;
        out.(cnt) <- R.Int (if v = R.Null then 0 else 1);
        out.(vis) <- to_num v)
      rs.avg_hidden;
    out
  | Intervals -> Array.append row [| R.Int sid; R.Int sid |]
  | Collate | Agg_var _ -> row

let group_key (rs : run_state) (row : R.row) = Array.of_list (List.map (fun i -> row.(i)) rs.group_pos)

(* All result-table rids whose grouping columns equal [key]. *)
let probe (rs : run_state) read key =
  match rs.index with
  | Some idx ->
    let bt = Storage.Btree.open_existing idx.Sq.Catalog.iroot in
    let hits = ref [] in
    Storage.Btree.lookup read bt key ~f:(fun rid -> hits := rid :: !hits);
    List.rev !hits
  | None -> ( match rs.single_rid with Some rid -> [ rid ] | None -> [])

let fetch (rs : run_state) read rid =
  match Storage.Heap.get read (meta_heap rs) rid with
  | Some data -> R.decode_row data
  | None -> error "%s: dangling result rid %d" (mech_name rs.kind) rid

(* Update a result row in place, repairing the index entry if the row
   had to move. *)
let update_row (rs : run_state) txn ~rid ~key (row' : R.row) =
  match Storage.Heap.update txn (meta_heap rs) rid (R.encode_row row') with
  | `Same -> rid
  | `Moved rid' ->
    (match rs.index with
    | Some idx ->
      let bt = Storage.Btree.open_existing idx.Sq.Catalog.iroot in
      ignore (Storage.Btree.delete txn bt key rid);
      Storage.Btree.insert txn bt key rid'
    | None -> ());
    rid'

let insert_new (rs : run_state) txn (t_row : R.row) =
  let rid = Sq.Exec.insert_row_raw (meta_env rs) txn (table_exn rs) t_row in
  rs.cur_inserts <- rs.cur_inserts + 1;
  if rs.group_pos = [] then rs.single_rid <- Some rid;
  rid

(* Combine a fresh Qq row into the stored accumulator row. *)
let combined_row (rs : run_state) (stored : R.row) (row : R.row) : R.row =
  let out = Array.copy stored in
  List.iter
    (fun (pos, fn) ->
      if fn <> Monoid.Avg then out.(pos) <- Monoid.combine fn stored.(pos) row.(pos))
    rs.agg_specs;
  List.iter
    (fun (vis, sum, cnt) ->
      let v = row.(vis) in
      if v <> R.Null then begin
        out.(sum) <- Monoid.add stored.(sum) (to_num v);
        out.(cnt) <- Monoid.add stored.(cnt) (R.Int 1);
        match out.(sum), out.(cnt) with
        | R.Real s, R.Int c when c > 0 -> out.(vis) <- R.Real (s /. float_of_int c)
        | R.Int s, R.Int c when c > 0 ->
          out.(vis) <- R.Real (float_of_int s /. float_of_int c)
        | _ -> ()
      end)
    rs.avg_hidden;
  out

let step_agg_table (rs : run_state) txn ~sid ~first (row : R.row) =
  rs.cur_rows <- rs.cur_rows + 1;
  if first then ignore (insert_new rs txn (first_row rs ~sid row))
  else begin
    let key = group_key rs row in
    let read = Storage.Txn.read_ctx txn in
    match probe rs read key with
    | rid :: _ ->
      let stored = fetch rs read rid in
      let row' = combined_row rs stored row in
      (* write back only when the accumulator changed: this is why hot
         iterations with MAX are much cheaper than with SUM (Fig 13) *)
      if R.compare_row row' stored <> 0 then begin
        ignore (update_row rs txn ~rid ~key row');
        rs.cur_updates <- rs.cur_updates + 1
      end
    | [] -> ignore (insert_new rs txn (first_row rs ~sid row))
  end

let step_intervals (rs : run_state) txn ~sid ~first (row : R.row) =
  rs.cur_rows <- rs.cur_rows + 1;
  if first then ignore (insert_new rs txn (first_row rs ~sid row))
  else begin
    let key = group_key rs row in
    let read = Storage.Txn.read_ctx txn in
    let end_pos = Array.length rs.header + 1 in
    let candidates = probe rs read key in
    let matching =
      List.filter_map
        (fun rid ->
          let stored = fetch rs read rid in
          if stored.(end_pos) = R.Int rs.prev_sid then Some (rid, stored) else None)
        candidates
    in
    match matching with
    | (rid, stored) :: _ ->
      let row' = Array.copy stored in
      row'.(end_pos) <- R.Int sid;
      ignore (update_row rs txn ~rid ~key row');
      rs.cur_updates <- rs.cur_updates + 1
    | [] -> ignore (insert_new rs txn (first_row rs ~sid row))
  end

let step_var (rs : run_state) ~rows_seen (row : R.row) =
  rs.cur_rows <- rs.cur_rows + 1;
  incr rows_seen;
  if !rows_seen > 1 then
    error "AggregateDataInVariable: Qq returned more than one row for a snapshot";
  let v = row.(0) in
  match rs.kind with
  | Agg_var Monoid.Avg -> Monoid.avg_step rs.var_avg v
  | Agg_var fn ->
    if rs.var_seen then rs.var_value <- Monoid.combine fn rs.var_value v
    else begin
      rs.var_value <- Monoid.init fn v;
      rs.var_seen <- true
    end
  | Collate | Agg_table _ | Intervals ->
    error "internal: step_var dispatched on %s" (mech_name rs.kind)

let var_current (rs : run_state) =
  match rs.kind with
  | Agg_var Monoid.Avg -> Monoid.avg_current rs.var_avg
  | Agg_var _ -> if rs.var_seen then rs.var_value else R.Null
  | Collate | Agg_table _ | Intervals ->
    error "internal: var_current dispatched on %s" (mech_name rs.kind)

(* Keep the single-row result table current after every iteration so the
   SQL-form UDF needs no end-of-run signal. *)
let write_var_result (rs : run_state) txn =
  match rs.var_rid with
  | None -> ()
  | Some rid ->
    let rid' =
      match Storage.Heap.update txn (meta_heap rs) rid (R.encode_row [| var_current rs |]) with
      | `Same -> rid
      | `Moved r -> r
    in
    rs.var_rid <- Some rid'

(* --- run reports (EXPLAIN ANALYZE over the loop) ----------------------- *)

(* Per-mechanism run report of an analyzed run.  The prepared Qq's plan
   is shared across every iteration (plan-cache slot sharing), so its
   operator slots accumulate actuals over the whole snapshot loop; the
   report snapshots them once the loop finishes. *)
type run_report = {
  rr_mechanism : string;
  rr_qq : string;
  rr_iterations : int;
  rr_ops : Sq.Plan.op_actual list; (* accumulated across all iterations *)
}

(* lint: allow — written by [run_mechanism] on the driving domain only;
   worker domains never touch the report *)
let last_run_report : run_report option ref = ref None
let run_report () = !last_run_report

let run_report_to_json (r : run_report) =
  Obs.Json.Obj
    [ ("mechanism", Obs.Json.Str r.rr_mechanism);
      ("qq", Obs.Json.Str r.rr_qq);
      ("iterations", Obs.Json.Int r.rr_iterations);
      ("ops", Obs.Json.List (List.map Sq.Plan.op_actual_to_json r.rr_ops)) ]

(* The prepared Qq's cached plan, when present and fresh. *)
let qq_plan (rs : run_state) = Sq.Engine.cached_plan rs.data ~key:(qq_key rs)

(* Iterations that replayed a hoisted snapshot-invariant Qq result
   instead of re-evaluating it (sequential loop only). *)
let c_invariant_reuses = Obs.Scope.counter "rql.qq_invariant_reuses"

(* Did the optimizer classify this run's prepared Qq plan as
   snapshot-invariant?  (No table access, no snapshot-dependent
   expressions — the result is identical for every snapshot id.) *)
let qq_invariant (rs : run_state) =
  match qq_plan rs with
  | Some p -> (
    match p.Sq.Plan.p_opt with
    | Some oi -> oi.Sq.Plan.oi_invariant
    | None -> false)
  | None -> false

(* Chrome counter track: one sample of the cumulative per-operator row
   counts per iteration, so the operator-level progress of an analyzed
   run is visible on the trace timeline. *)
let emit_op_counters (rs : run_state) =
  if Obs.Trace.is_enabled () then
    match qq_plan rs with
    | Some plan ->
      Obs.Trace.emit_counter ~name:"rql.op_rows"
        (List.map
           (fun (a : Sq.Plan.op_actual) ->
             (Printf.sprintf "op%d %s" a.Sq.Plan.a_id a.Sq.Plan.a_kind,
              float_of_int a.Sq.Plan.a_rows))
           (Sq.Plan.actuals plan))
    | None -> ()

(* --- the loop body ----------------------------------------------------- *)

let make_run ?(analyze = false) ~kind ~data ~meta ~qq ~table () =
  (match kind with
  | Agg_table [] -> error "AggregateDataInTable requires at least one (column, function) pair"
  | _ -> ());
  (* Static gate (both the API form and the SQL-form UDFs construct
     their run here): a malformed Qq — unknown column, bad arity,
     non-SELECT — fails now, before any snapshot iteration spends SPT
     builds or page reads.  Diagnostics surface as RQL errors: to the
     caller this is the loop mechanism rejecting its Qq argument. *)
  (try Sq.Engine.analyze_qq data qq
   with Sq.Engine.Error msg -> error "Qq rejected: %s" msg);
  { kind;
    qq;
    table;
    data;
    meta;
    rs_analyze = analyze;
    prepared = Prep_pending;
    invariant_rows = None;
    t_start = now ();
    iterations = [];
    first_done = false;
    prev_sid = -1;
    last_sid = None;
    header = [||];
    tbl = None;
    env_meta = None;
    group_pos = [];
    agg_specs = [];
    avg_hidden = [];
    index = None;
    single_rid = None;
    var_value = R.Null;
    var_seen = false;
    var_avg = Monoid.avg_create ();
    var_rid = None;
    finalize_s = 0.;
    cur_rows = 0;
    cur_inserts = 0;
    cur_updates = 0;
    rs_progress = None }

(* A snapshot's Qq output evaluated ahead of its loop-body application
   by a worker domain (the parallel AS OF reader pool).  The worker
   evaluates inside a private metric scope confined to its domain, so
   the per-iteration I/O counters here are exact even while other
   workers run — the main domain's global-counter diffs would interleave
   every concurrent evaluation. *)
type eval_result = {
  ev_header : string array;
  ev_rows : R.row list;
  ev_pagelog_reads : int;
  ev_db_reads : int;
  ev_cache_hits : int;
  ev_cache_misses : int;
  ev_spt_entries : int;
  ev_eval_s : float; (* wall-clock Qq evaluation time on the worker *)
}

let scope_counter sc name =
  match List.assoc_opt name (Obs.Scope.metric_items sc) with
  | Some (Obs.Metrics.M_counter c) -> Obs.Metrics.Counter.get c
  | _ -> 0

(* One RQL iteration over snapshot [sid].  [cold] empties the snapshot
   page cache first (used by the all-cold baseline runs in §5.1).
   With [eval] the Qq was already evaluated by a worker domain: only
   the loop-body application runs here (in snapshot order, so results
   are byte-identical to the sequential loop), and the iteration's I/O
   attribution comes from the worker's own measurements. *)
let step_body ?eval (rs : run_state) ~sid ~cold =
  (* One timeseries sample per iteration, so sys_timeseries resolves the
     inside of a snapshot loop rather than only statement boundaries. *)
  Obs.Timeseries.tick ();
  (match Sq.Db.(rs.data.retro) with
  | Some retro when cold -> Retro.clear_cache retro
  | _ -> ());
  let stats0 = Storage.Stats.copy Storage.Stats.global in
  let exec0 = Sq.Exec_stats.copy Sq.Exec_stats.global in
  let t0 = now () in
  let udf_s = ref 0. in
  let udf_timed f =
    let t = now () in
    let r = f () in
    udf_s := !udf_s +. (now () -. t);
    r
  in
  let first = not rs.first_done in
  rs.cur_rows <- 0;
  rs.cur_inserts <- 0;
  rs.cur_updates <- 0;
  let header, run_rows =
    match eval with
    | Some ev -> (ev.ev_header, fun f -> List.iter f ev.ev_rows)
    | None -> (
      match rs.invariant_rows with
      | Some (h, rows) ->
        (* Hoisted: the optimizer proved the Qq snapshot-invariant, so
           replay the first iteration's rows instead of re-evaluating. *)
        Obs.Scope.incr c_invariant_reuses;
        (h, fun f -> List.iter f rows)
      | None -> (
        let header, run =
          match qq_prepared rs with
          | Some p -> Sq.Engine.prepared_stream ~params:[| R.Int sid |] p
          | None -> stream_select rs.data (Rewrite.rewrite rs.qq ~sid)
        in
        if qq_invariant rs then begin
          let acc = ref [] in
          run (fun r -> acc := r :: !acc);
          let rows = List.rev !acc in
          rs.invariant_rows <- Some (header, rows);
          (header, fun f -> List.iter f rows)
        end
        else (header, run)))
  in
  if first then udf_timed (fun () -> init_run rs header);
  (match rs.kind with
  | Agg_var _ ->
    let rows_seen = ref 0 in
    run_rows (fun row -> udf_timed (fun () -> step_var rs ~rows_seen row));
    udf_timed (fun () ->
        Sq.Db.with_write_txn rs.meta (fun txn -> write_var_result rs txn))
  | Collate ->
    Sq.Db.with_write_txn rs.meta (fun txn ->
        run_rows (fun row ->
            udf_timed (fun () ->
                rs.cur_rows <- rs.cur_rows + 1;
                rs.cur_inserts <- rs.cur_inserts + 1;
                ignore (Sq.Exec.insert_row_raw (meta_env rs) txn (table_exn rs) row))))
  | Agg_table _ ->
    Sq.Db.with_write_txn rs.meta (fun txn ->
        run_rows (fun row -> udf_timed (fun () -> step_agg_table rs txn ~sid ~first row)))
  | Intervals ->
    Sq.Db.with_write_txn rs.meta (fun txn ->
        run_rows (fun row -> udf_timed (fun () -> step_intervals rs txn ~sid ~first row))));
  if first then udf_timed (fun () -> post_first rs);
  rs.first_done <- true;
  rs.prev_sid <- sid;
  rs.last_sid <- Some sid;
  let total = now () -. t0 in
  let sd = Storage.Stats.diff (Storage.Stats.copy Storage.Stats.global) stats0 in
  let ed = Sq.Exec_stats.diff (Sq.Exec_stats.copy Sq.Exec_stats.global) exec0 in
  let io_s = Storage.Stats.Cost_model.io_seconds sd in
  let other = ed.Sq.Exec_stats.spt_build_s +. ed.Sq.Exec_stats.index_build_s +. !udf_s in
  let it =
    match eval with
    | None ->
      { Iter_stats.snap_id = sid;
        cold = first || cold;
        pagelog_reads = sd.Storage.Stats.pagelog_reads;
        db_reads = sd.Storage.Stats.db_page_reads;
        cache_hits = sd.Storage.Stats.snap_cache_hits;
        cache_misses = sd.Storage.Stats.snap_cache_misses;
        io_s;
        spt_build_s = ed.Sq.Exec_stats.spt_build_s;
        spt_entries = sd.Storage.Stats.maplog_scanned;
        index_build_s = ed.Sq.Exec_stats.index_build_s;
        query_eval_s = Float.max 0. (total -. other);
        udf_s = !udf_s;
        udf_rows = rs.cur_rows;
        udf_inserts = rs.cur_inserts;
        udf_updates = rs.cur_updates }
    | Some ev ->
      (* Worker-measured evaluation, main-measured application.  SPT
         build and index-build time happen on the worker inside
         [ev_eval_s]; the modeled I/O time comes from the worker's
         exact read counters. *)
      { Iter_stats.snap_id = sid;
        cold = first || cold;
        pagelog_reads = ev.ev_pagelog_reads;
        db_reads = ev.ev_db_reads;
        cache_hits = ev.ev_cache_hits;
        cache_misses = ev.ev_cache_misses;
        io_s = float_of_int ev.ev_pagelog_reads *. !Storage.Stats.Cost_model.ssd_read_s;
        spt_build_s = 0.;
        spt_entries = ev.ev_spt_entries;
        index_build_s = 0.;
        query_eval_s = ev.ev_eval_s;
        udf_s = !udf_s;
        udf_rows = rs.cur_rows;
        udf_inserts = rs.cur_inserts;
        udf_updates = rs.cur_updates }
  in
  Obs.Trace.set_attrs
    [ ("cold", Obs.Trace.Bool it.Iter_stats.cold);
      ("pagelog_reads", Obs.Trace.Int it.Iter_stats.pagelog_reads);
      ("udf_rows", Obs.Trace.Int it.Iter_stats.udf_rows);
      ("modeled_io_s", Obs.Trace.Float it.Iter_stats.io_s) ];
  rs.iterations <- it :: rs.iterations;
  if rs.rs_analyze then emit_op_counters rs

(* --- progress and cancellation ----------------------------------------- *)

(* Per-iteration ETA weights: iteration cost tracks the number of pages
   archived behind each snapshot (ANALYZE ARCHIVE's per-snapshot delta),
   so remaining time is scaled by remaining archived pages rather than a
   flat per-iteration average.  Snapshot ids outside the analyzed range
   (possible only with a hand-written Qs) weigh as 1. *)
let snapshot_weights (data : Sq.Db.t) sids =
  match data.Sq.Db.retro with
  | None -> [||]
  | Some retro ->
    let snaps = (Retro.analyze retro).Retro.an_snapshots in
    (* an_snapshots covers live snapshots only, so look up by id (after
       a vacuum, index != id - 1). *)
    Array.of_list
      (List.map
         (fun sid ->
           match Array.find_opt (fun si -> si.Retro.si_id = sid) snaps with
           | Some si -> 1. +. float_of_int si.Retro.si_delta_pages
           | None -> 1.)
         sids)

(* Progress rows in the event log: one at every run-status transition,
   so the slow-query log tells the story of a long retrospective run. *)
let progress_event (pg : Obs.Progress.t) =
  Obs.Eventlog.log ~kind:"rql_progress"
    [ ("run", Obs.Json.Int pg.Obs.Progress.pr_id);
      ("mechanism", Obs.Json.Str pg.Obs.Progress.pr_mechanism);
      ("status", Obs.Json.Str (Obs.Progress.status_to_string pg.Obs.Progress.pr_status));
      ("iterations_done", Obs.Json.Int pg.Obs.Progress.pr_done);
      ("iterations_total", Obs.Json.Int pg.Obs.Progress.pr_total);
      ("pages_read", Obs.Json.Int pg.Obs.Progress.pr_pages);
      ("elapsed_s", Obs.Json.Float pg.Obs.Progress.pr_elapsed) ]

(* The once-per-iteration cancellation point: checked before the
   iteration starts, so a flagged run stops within one iteration and
   never leaves a partial one behind. *)
let cancel_check (rs : run_state) =
  match rs.rs_progress with
  | Some pg when Obs.Progress.cancel_requested pg ->
    Obs.Progress.finish pg Obs.Progress.Cancelled;
    progress_event pg;
    raise
      (Cancelled
         { mechanism = mech_name rs.kind;
           iterations_done = pg.Obs.Progress.pr_done;
           run_id = pg.Obs.Progress.pr_id })
  | _ -> ()

let progress (rs : run_state) = rs.rs_progress

let step ?eval (rs : run_state) ~sid ~cold =
  cancel_check rs;
  let body () =
    Obs.Trace.with_span ~name:"rql.iteration"
      ~attrs:[ ("snap_id", Obs.Trace.Int sid) ]
      (fun () -> step_body ?eval rs ~sid ~cold)
  in
  match rs.rs_progress with
  | None -> body ()
  | Some pg ->
    Obs.Progress.with_active pg body;
    (match rs.iterations with
    | it :: _ ->
      Obs.Progress.note_iteration pg
        ~pages:
          (pg.Obs.Progress.pr_pages + it.Iter_stats.db_reads
         + it.Iter_stats.pagelog_reads)
    | [] -> ())

(* Result-table footprint (rows and approximate bytes). *)
let result_metrics (rs : run_state) =
  match rs.tbl with
  | None -> (0, 0)
  | Some tbl ->
    let read = Sq.Db.read_current rs.meta in
    let rows = ref 0 and bytes = ref 0 in
    Storage.Heap.iter read (Storage.Heap.open_existing tbl.Sq.Catalog.theap)
      ~f:(fun _rid data ->
        incr rows;
        bytes := !bytes + String.length data);
    (!rows, !bytes)

let finish (rs : run_state) : Iter_stats.run =
  let result_rows, result_bytes = result_metrics rs in
  let run =
    { Iter_stats.mechanism = mech_name rs.kind;
      qq = rs.qq;
      iterations = List.rev rs.iterations;
      result_rows;
      result_bytes;
      finalize_s = rs.finalize_s }
  in
  (* Modeled-attribution track: only worth emitting when tracing is on. *)
  if Obs.Trace.is_enabled () then Iter_stats.emit_trace ~start_s:rs.t_start run;
  if rs.rs_analyze then
    last_run_report :=
      Some
        { rr_mechanism = mech_name rs.kind;
          rr_qq = rs.qq;
          rr_iterations = List.length run.Iter_stats.iterations;
          rr_ops = (match qq_plan rs with Some p -> Sq.Plan.actuals p | None -> []) };
  run

(* --- snapshot management ---------------------------------------------- *)

let snapids_ddl = "CREATE TABLE IF NOT EXISTS SnapIds (snap_id INTEGER, snap_ts TEXT, snap_name TEXT)"

let format_ts ts =
  let tm = Unix.localtime ts in
  Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

(* Declare a snapshot: COMMIT WITH SNAPSHOT on the data database (commits
   the open transaction if any), then record the id in SnapIds. *)
let declare_snapshot ?name (ctx : ctx) =
  let sid =
    match Sq.Db.commit ctx.data ~snapshot:true with
    | Some sid -> sid
    | None -> error "internal: COMMIT WITH SNAPSHOT returned no snapshot id"
  in
  let retro = Sq.Db.retro_exn ctx.data in
  let ts = format_ts (Retro.snapshot_ts retro sid) in
  let name = Option.value name ~default:"" in
  ignore
    (Sq.Engine.exec ctx.meta
       (Printf.sprintf "INSERT INTO SnapIds VALUES (%d, '%s', '%s')" sid ts
          (String.concat "''" (String.split_on_char '\'' name))));
  sid

(* Snapshot ids returned by a snapshot query Qs over SnapIds.  The
   static gate enforces the paper's Qs contract — a SELECT projecting
   exactly one snapshot-id column — before anything executes. *)
let snapshot_set (ctx : ctx) qs =
  (try Sq.Engine.analyze_qs ctx.meta qs
   with Sq.Engine.Error msg -> error "Qs rejected: %s" msg);
  let res = Sq.Engine.exec ctx.meta qs in
  List.map
    (fun row ->
      if Array.length row < 1 then error "Qs returned an empty row"
      else
        match row.(0) with
        | R.Int sid -> sid
        | v -> error "Qs must return snapshot ids; got %s" (R.value_to_string v))
    res.Sq.Engine.rows

(* --- parallel AS OF evaluation ----------------------------------------- *)

(* Evaluate the Qq over one snapshot on a worker domain, collecting the
   full row set.  [wdb] is the worker's private session (own plan cache
   and prepared statement) over the shared data core.  The engine runs
   every statement inside the session's metric scope, and that scope is
   driven by exactly one domain, so diffing its local counters around
   the evaluation gives the iteration's exact I/O attribution — the
   global registry totals would interleave across concurrent domains. *)
let eval_snapshot wdb prep (rs : run_state) sid =
  let sc = wdb.Sq.Db.scope in
  let c name = scope_counter sc name in
  let plr0 = c "storage.pagelog_reads" in
  let dbr0 = c "storage.db_page_reads" in
  let hit0 = c "retro.snap_cache_hits" in
  let mis0 = c "retro.snap_cache_misses" in
  let spt0 = c "retro.maplog_scanned" in
  let header = ref [||] in
  let rows = ref [] in
  let t0 = now () in
  (* prepared_stream runs inside the session scope on its own; the
     textual-rewrite fallback streams through Exec directly and needs
     the scope installed here. *)
  (match prep with
  | Some p ->
    let h, run = Sq.Engine.prepared_stream ~params:[| R.Int sid |] p in
    header := h;
    run (fun row -> rows := row :: !rows)
  | None ->
    Obs.Scope.with_scope sc (fun () ->
        let h, run = stream_select wdb (Rewrite.rewrite rs.qq ~sid) in
        header := h;
        run (fun row -> rows := row :: !rows)));
  { ev_header = !header;
    ev_rows = List.rev !rows;
    ev_pagelog_reads = c "storage.pagelog_reads" - plr0;
    ev_db_reads = c "storage.db_page_reads" - dbr0;
    ev_cache_hits = c "retro.snap_cache_hits" - hit0;
    ev_cache_misses = c "retro.snap_cache_misses" - mis0;
    ev_spt_entries = c "retro.maplog_scanned" - spt0;
    ev_eval_s = now () -. t0 }

(* The Domain-parallel snapshot loop: [domains] workers evaluate the Qq
   over disjoint snapshots concurrently (overlapping their archive-read
   waits), while the main domain applies each evaluated row set through
   the ordinary loop body in snapshot order.  Ordered application makes
   the result table byte-identical to the sequential loop for every
   mechanism — including order-sensitive ones like intervals — because
   the loop body never observes a reordering.

   Shared SPT caching is enabled for the duration of the run so workers
   re-reading the same declared snapshot share its table; the prior
   setting is restored on exit. *)
let parallel_loop (rs : run_state) ~domains ~sids =
  let arr = Array.of_list sids in
  let n = Array.length arr in
  let slots : eval_result option array = Array.make n None in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let stop = ref false in
  let failure : exn option ref = ref None in
  let worker w () =
    let wdb = Sq.Db.session rs.data in
    Fun.protect
      ~finally:(fun () -> Sq.Db.close_session wdb)
      (fun () ->
        (* Per-worker prepared Qq, mirroring [qq_prepared]'s fallback:
           a Qq the rewriter cannot parameterize falls back to the
           textual per-snapshot rewrite in [eval_snapshot]. *)
        let prep =
          try
            match Sq.Engine.parse rs.qq with
            | Sq.Ast.Select sel ->
              Some (Sq.Engine.prepare_select wdb ~key:(qq_key rs) (Rewrite.parameterize sel))
            | _ -> None
          with
          | Sq.Engine.Error _ | Rewrite.Error _ -> None
        in
        try
          let i = ref w in
          while !i < n && not !stop do
            let ev = eval_snapshot wdb prep rs arr.(!i) in
            (* lint: allow — producer/consumer handoff: Condition needs
               the raw mutex, and the section is two writes. *)
            Mutex.lock mu;
            slots.(!i) <- Some ev;
            Condition.broadcast cv;
            Mutex.unlock mu;
            i := !i + domains
          done
        with e ->
          (* lint: allow — failure publication under the raw condition
             mutex; two writes, no I/O. *)
          Mutex.lock mu;
          if !failure = None then failure := Some e;
          stop := true;
          Condition.broadcast cv;
          Mutex.unlock mu)
  in
  (match Sq.Db.(rs.data.retro) with
  | Some retro -> Retro.set_spt_cache retro true
  | None -> ());
  let dms = List.init (min domains n) (fun w -> Domain.spawn (worker w)) in
  let wait_slot i =
    (* lint: allow — Condition.wait requires the raw mutex; every exit
       path of [go] unlocks before returning or raising. *)
    Mutex.lock mu;
    let rec go () =
      match slots.(i) with
      | Some ev ->
        slots.(i) <- None; (* free the rows once applied *)
        Mutex.unlock mu;
        ev
      | None -> (
        match !failure with
        | Some e ->
          Mutex.unlock mu;
          raise e
        | None ->
          Condition.wait cv mu;
          go ())
    in
    go ()
  in
  Fun.protect
    ~finally:(fun () ->
      (* lint: allow — shutdown broadcast under the raw condition mutex. *)
      Mutex.lock mu;
      stop := true;
      Condition.broadcast cv;
      Mutex.unlock mu;
      List.iter Domain.join dms;
      match Sq.Db.(rs.data.retro) with
      | Some retro -> Retro.set_spt_cache retro false
      | None -> ())
    (fun () ->
      Array.iteri
        (fun i sid ->
          let ev = wait_slot i in
          step ~eval:ev rs ~sid ~cold:false)
        arr)

(* --- public mechanisms -------------------------------------------------- *)

let run_mechanism ?(all_cold = false) ?(analyze = false) ?(domains = 1) ctx kind ~qs ~qq ~table =
  (* make_run first: its Qq gate must fire before the Qs executes (a
     bad Qq spends zero page reads, not even SnapIds ones). *)
  let rs = make_run ~analyze ~kind ~data:ctx.data ~meta:ctx.meta ~qq ~table () in
  let sids = snapshot_set ctx qs in
  if sids = [] then error "%s: Qs returned no snapshots" (mech_name kind);
  (match Sq.Db.(ctx.data.retro) with
  | Some retro -> Retro.clear_cache retro (* paper: cache is cold at RQL query start *)
  | None -> ());
  let pg =
    Obs.Progress.start ~total:(List.length sids) ~mechanism:(mech_name kind)
      ~detail:qq ()
  in
  Obs.Progress.set_weights pg (snapshot_weights ctx.data sids);
  rs.rs_progress <- Some pg;
  Obs.Trace.with_span ~name:"rql.run"
    ~attrs:
      [ ("mechanism", Obs.Trace.Str (mech_name kind));
        ("snapshots", Obs.Trace.Int (List.length sids)) ]
    (fun () ->
      (* The parallel loop needs per-iteration independence: the
         all-cold baseline (a cache clear between iterations) and
         EXPLAIN ANALYZE accumulation (per-operator actuals on one
         shared plan) are driven sequentially by construction. *)
      let loop () =
        if domains > 1 && (not all_cold) && not analyze then parallel_loop rs ~domains ~sids
        else List.iter (fun sid -> step rs ~sid ~cold:all_cold) sids;
        finish rs
      in
      let run () =
        if not analyze then loop ()
        else begin
          (* The Qq may already be cached from an earlier run: start the
             accumulators at zero so the report covers exactly this run. *)
          (match qq_plan rs with Some p -> Sq.Plan.reset_actuals p | None -> ());
          let was = ctx.data.Sq.Db.analyze in
          ctx.data.Sq.Db.analyze <- true;
          Fun.protect ~finally:(fun () -> ctx.data.Sq.Db.analyze <- was) loop
        end
      in
      match run () with
      | r ->
        Obs.Progress.finish pg Obs.Progress.Done;
        progress_event pg;
        r
      | exception e ->
        (* A cancel already marked (and logged) the run; anything else
           that escapes the loop failed it. *)
        if pg.Obs.Progress.pr_status = Obs.Progress.Running then begin
          Obs.Progress.finish pg Obs.Progress.Failed;
          progress_event pg
        end;
        raise e)

let collate_data ?all_cold ?analyze ?domains ctx ~qs ~qq ~table =
  run_mechanism ?all_cold ?analyze ?domains ctx Collate ~qs ~qq ~table

let aggregate_data_in_variable ?all_cold ?analyze ?domains ctx ~qs ~qq ~table ~fn =
  run_mechanism ?all_cold ?analyze ?domains ctx (Agg_var (Monoid.of_string fn)) ~qs ~qq ~table

let aggregate_data_in_table ?all_cold ?analyze ?domains ctx ~qs ~qq ~table ~aggs =
  let aggs = List.map (fun (c, fn) -> (c, Monoid.of_string fn)) aggs in
  run_mechanism ?all_cold ?analyze ?domains ctx (Agg_table aggs) ~qs ~qq ~table

let collate_data_into_intervals ?all_cold ?analyze ?domains ctx ~qs ~qq ~table =
  run_mechanism ?all_cold ?analyze ?domains ctx Intervals ~qs ~qq ~table

(* --- SQL-form UDFs ------------------------------------------------------ *)

(* Parse the paper's ListOfColFuncPairs syntax: "(c,max):(av,min)". *)
let parse_pairs s =
  let parts = String.split_on_char ':' (String.trim s) in
  List.map
    (fun p ->
      let p = String.trim p in
      let p =
        if String.length p >= 2 && p.[0] = '(' && p.[String.length p - 1] = ')' then
          String.sub p 1 (String.length p - 2)
        else p
      in
      match String.split_on_char ',' p with
      | [ col; fn ] -> (String.trim col, Monoid.of_string fn)
      | _ -> error "bad column/function pair: %s" p)
    parts

let run_key kind qq table =
  mech_name kind ^ "\x00" ^ qq ^ "\x00" ^ String.lowercase_ascii table

(* A loop-body invocation arriving from the SQL form.  A fresh run starts
   when no run exists for (mechanism, Qq, T) or when the snapshot id does
   not advance (the statement was re-executed). *)
let udf_step ctx kind ~qq ~table ~sid =
  let key = run_key kind qq table in
  let rs =
    match Hashtbl.find_opt ctx.runs key with
    | Some rs when (match rs.last_sid with Some last -> sid > last | None -> true) -> rs
    | prev ->
      (* The statement was re-executed: the superseded run is complete. *)
      (match prev with
      | Some old -> Option.iter (fun p -> Obs.Progress.finish p Obs.Progress.Done) old.rs_progress
      | None -> ());
      let rs = make_run ~kind ~data:ctx.data ~meta:ctx.meta ~qq ~table () in
      (match Sq.Db.(ctx.data.retro) with
      | Some retro -> Retro.clear_cache retro
      | None -> ());
      (* The SQL form has no snapshot-set argument, so the total is
         unknown (0): progress still counts iterations and pages. *)
      rs.rs_progress <-
        Some (Obs.Progress.start ~mechanism:(mech_name kind) ~detail:qq ());
      Hashtbl.replace ctx.runs key rs;
      rs
  in
  try step rs ~sid ~cold:false
  with Cancelled _ as e ->
    (* Drop the run so a later invocation starts fresh rather than
       resuming a cancelled loop. *)
    Hashtbl.remove ctx.runs key;
    raise e

(* Emit the modeled-attribution trace for every active SQL-form run
   without retiring it.  The SQL form has no end-of-run signal, so the
   shell calls this right before a trace dump; API-form runs emit in
   [finish] instead. *)
let flush_traces (ctx : ctx) =
  if Obs.Trace.is_enabled () then
    Hashtbl.iter
      (fun _ rs ->
        Iter_stats.emit_trace ~start_s:rs.t_start
          { Iter_stats.mechanism = mech_name rs.kind;
            qq = rs.qq;
            iterations = List.rev rs.iterations;
            result_rows = 0;
            result_bytes = 0;
            finalize_s = rs.finalize_s })
      ctx.runs

(* Retrieve (and retire) the statistics of the most recent SQL-form run
   that produced result table [table]. *)
let take_run ctx ~table =
  let found = ref None in
  Hashtbl.iter
    (fun key rs ->
      if norm rs.table = norm table then found := Some (key, rs))
    ctx.runs;
  match !found with
  | Some (key, rs) ->
    Hashtbl.remove ctx.runs key;
    Option.iter (fun p -> Obs.Progress.finish p Obs.Progress.Done) rs.rs_progress;
    Some (finish rs)
  | None -> None

let int_arg name = function
  | R.Int i -> i
  | v -> error "%s: expected an integer argument, got %s" name (R.value_to_string v)

let text_arg name = function
  | R.Text s -> s
  | v -> error "%s: expected a text argument, got %s" name (R.value_to_string v)

let register_udfs ctx =
  Sq.Engine.register_fn ctx.meta "CollateData" (fun args ->
      match args with
      | [| sid; qq; t |] ->
        udf_step ctx Collate ~qq:(text_arg "CollateData" qq) ~table:(text_arg "CollateData" t)
          ~sid:(int_arg "CollateData" sid);
        R.Null
      | _ -> error "CollateData expects (snap_id, Qq, T)");
  Sq.Engine.register_fn ctx.meta "AggregateDataInVariable" (fun args ->
      match args with
      | [| sid; qq; t; fn |] ->
        udf_step ctx
          (Agg_var (Monoid.of_string (text_arg "AggregateDataInVariable" fn)))
          ~qq:(text_arg "AggregateDataInVariable" qq)
          ~table:(text_arg "AggregateDataInVariable" t)
          ~sid:(int_arg "AggregateDataInVariable" sid);
        R.Null
      | _ -> error "AggregateDataInVariable expects (snap_id, Qq, T, AggFunc)");
  Sq.Engine.register_fn ctx.meta "AggregateDataInTable" (fun args ->
      match args with
      | [| sid; qq; t; pairs |] ->
        udf_step ctx
          (Agg_table (parse_pairs (text_arg "AggregateDataInTable" pairs)))
          ~qq:(text_arg "AggregateDataInTable" qq)
          ~table:(text_arg "AggregateDataInTable" t)
          ~sid:(int_arg "AggregateDataInTable" sid);
        R.Null
      | _ -> error "AggregateDataInTable expects (snap_id, Qq, T, ListOfColFuncPairs)");
  Sq.Engine.register_fn ctx.meta "CollateDataIntoIntervals" (fun args ->
      match args with
      | [| sid; qq; t |] ->
        udf_step ctx Intervals
          ~qq:(text_arg "CollateDataIntoIntervals" qq)
          ~table:(text_arg "CollateDataIntoIntervals" t)
          ~sid:(int_arg "CollateDataIntoIntervals" sid);
        R.Null
      | _ -> error "CollateDataIntoIntervals expects (snap_id, Qq, T)")

(* --- context creation ---------------------------------------------------- *)

let create ?data () =
  let data = match data with Some d -> d | None -> Sq.Db.create ~snapshots:true () in
  let meta = Sq.Db.create ~snapshots:false () in
  ignore (Sq.Engine.exec meta snapids_ddl);
  let ctx = { data; meta; runs = Hashtbl.create 8 } in
  register_udfs ctx;
  (* current_snapshot() is only meaningful inside a Qq: the loop body
     substitutes it before execution.  A direct call is a usage error. *)
  Sq.Engine.register_fn data "current_snapshot" (fun _ ->
      error "current_snapshot() is only valid inside an RQL Qq query");
  ctx

(* Convenience wrappers for the two databases. *)
let exec_data ctx sql = Sq.Engine.exec ctx.data sql
let exec_meta ctx sql = Sq.Engine.exec ctx.meta sql

(* --- persistence ---------------------------------------------------------- *)

let ctx_magic = "RQLCTX02"

(* Save the whole context — the application database with its complete
   snapshot history, and the SnapIds/result database — to [path].
   Written through Backup's framed container (magic, version, length,
   whole-payload CRC32), so a truncated or bit-flipped file fails typed
   at load instead of decoding garbage. *)
let save (ctx : ctx) ~path =
  let data_img = Sq.Backup.snapshot_image ctx.data in
  let meta_img = Sq.Backup.snapshot_image ctx.meta in
  Sq.Backup.write_framed ~magic:ctx_magic ~path (Marshal.to_string (data_img, meta_img) [])

(* Reopen a context saved by {!save}: AS OF queries over the restored
   history work immediately, mechanisms and current_snapshot() are
   re-registered, and new snapshots can be declared on top. *)
let load ~path =
  let payload =
    match Sq.Backup.read_framed ~magic:ctx_magic ~path with
    | p -> p
    | exception Sq.Backup.Error m -> error "%s" m
  in
  let data_img, meta_img =
    match (Marshal.from_string payload 0 : Sq.Backup.image * Sq.Backup.image) with
    | v -> v
    | exception Failure m -> error "%s: context payload does not unmarshal: %s" path m
  in
  let ctx =
    { data = Sq.Backup.restore_image data_img;
      meta = Sq.Backup.restore_image meta_img;
      runs = Hashtbl.create 8 }
  in
  register_udfs ctx;
  Sq.Engine.register_fn ctx.data "current_snapshot" (fun _ ->
      error "current_snapshot() is only valid inside an RQL Qq query");
  ctx
