(* Bounded structured event log.

   A process-wide ring of structured events, each a kind tag plus a flat
   list of JSON fields.  The primary producer is the SQL engine's
   slow-query hook (kind "slow_query"); the log is generic so future
   subsystems (recovery, checkpointing) can reuse it.

   Events render as JSON-lines: one self-contained JSON object per
   event, suitable for `grep`/`jq` and for appending to a sink file.
   The ring is bounded (default 1024 events); older events are dropped
   silently.  An optional file sink receives every event as it is
   logged, independent of the ring bound. *)

type event = {
  ev_seq : int;                       (* monotonic, never reused *)
  ev_ts : float;                      (* unix epoch seconds *)
  ev_kind : string;
  ev_scope : int;                     (* owning metric scope at log time *)
  ev_run : int;                       (* active RQL run id, -1 if none *)
  ev_fields : (string * Json.t) list;
}

let default_capacity = 1024

(* lint: allow — guarded by [mu] below (every read/write goes through [locked]) *)
let capacity = ref default_capacity

(* Ring storage: [buf] holds the most recent [count] events ending at
   position [head - 1] (mod capacity).
   lint: allow — ring state guarded by [mu] below, accessed via [locked] *)
let buf : event option array ref = ref (Array.make default_capacity None)
let head = ref 0
(* lint: allow — guarded by [mu] below *)
let count = ref 0
let seq = ref 0

(* Optional JSON-lines sink: events are appended as they are logged.
   lint: allow — guarded by [mu] below *)
let sink : out_channel option ref = ref None

(* The ring is shared across sessions and domains: every producer and
   reader serializes on this lock, so interleaved slow-query events from
   concurrent connections cannot tear the ring indices. *)
let mu = Mutex.create ()

let locked f = Mutex.lock mu; Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let clear () =
  locked (fun () ->
      Array.fill !buf 0 (Array.length !buf) None;
      head := 0;
      count := 0)

let set_capacity n =
  let n = max 1 n in
  locked (fun () ->
      capacity := n;
      buf := Array.make n None;
      head := 0;
      count := 0)

let close_sink () =
  locked (fun () ->
      match !sink with
      | Some oc ->
        close_out_noerr oc;
        sink := None
      | None -> ())

(* Open [path] in append mode and mirror every subsequent event to it. *)
let set_sink_file path =
  close_sink ();
  locked (fun () ->
      sink := Some (open_out_gen [ Open_append; Open_creat ] 0o644 path))

let event_to_json (e : event) =
  Json.Obj
    (("seq", Json.Int e.ev_seq)
     :: ("ts", Json.Float e.ev_ts)
     :: ("kind", Json.Str e.ev_kind)
     :: ("scope", Json.Int e.ev_scope)
     :: (if e.ev_run >= 0 then [ ("rql_run", Json.Int e.ev_run) ] else [])
    @ e.ev_fields)

(* Every event carries the ambient scope id and (when one is active)
   the RQL run id, so slowlog lines stay attributable when several
   sessions / long retrospective runs interleave. *)
let log ~kind fields =
  (* Ambient ids are domain-local: resolve them outside the lock. *)
  let scope_id = Scope.current_id () and run_id = Progress.current_run_id () in
  locked (fun () ->
      incr seq;
      let e =
        { ev_seq = !seq;
          ev_ts = Unix.gettimeofday ();
          ev_kind = kind;
          ev_scope = scope_id;
          ev_run = run_id;
          ev_fields = fields }
      in
      !buf.(!head) <- Some e;
      head := (!head + 1) mod !capacity;
      if !count < !capacity then incr count;
      match !sink with
      | Some oc ->
        output_string oc (Json.to_string (event_to_json e));
        output_char oc '\n';
        flush oc
      | None -> ())

(* Oldest-first list of retained events. *)
let events () =
  locked (fun () ->
      let cap = !capacity in
      let start = (!head - !count + cap * 2) mod cap in
      let out = ref [] in
      for k = !count - 1 downto 0 do
        match !buf.((start + k) mod cap) with
        | Some e -> out := e :: !out
        | None -> ()
      done;
      !out)

let to_json () = Json.List (List.map event_to_json (events ()))

(* JSON-lines rendering: one object per line, oldest first. *)
let to_lines () = List.map (fun e -> Json.to_string (event_to_json e)) (events ())
