(* Minimal JSON values, serializer and parser.

   The observability layer exports machine-readable artifacts — Chrome
   trace_event files, metric dumps, bench breakdowns — and the test
   suite needs to check their well-formedness, so both directions live
   here rather than pulling in an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- serialization --------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must stay valid JSON: no nan/inf literals, always a parseable
   number. *)
let float_str f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_str f)
  | Str s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf v;
      Buffer.output_buffer oc buf;
      output_char oc '\n')

(* --- accessors -------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None

let number_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect_char st c =
  match peek_char st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_raw st =
  expect_char st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek_char st with
      | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
      | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
      | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
      | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
      | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; go ()
      | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; go ()
      | Some 'u' ->
        if st.pos + 5 > String.length st.src then fail st "bad \\u escape";
        let hex = String.sub st.src (st.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex) with Failure _ -> fail st "bad \\u escape"
        in
        (* keep it simple: escape back to UTF-8 for the BMP *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end;
        st.pos <- st.pos + 5;
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek_char st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '"' -> Str (parse_string_raw st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek_char st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec go acc =
        let v = parse_value st in
        skip_ws st;
        match peek_char st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          go (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (go [])
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek_char st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec go acc =
        skip_ws st;
        let k = parse_string_raw st in
        skip_ws st;
        expect_char st ':';
        let v = parse_value st in
        skip_ws st;
        match peek_char st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          go ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (go [])
    end
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage"
    else Ok v
  | exception Parse_error msg -> Error msg
