(* Global metrics registry: named counters, gauges and log-scale latency
   histograms.

   This registry is the single source of truth for the cost accounting
   that used to live in ad-hoc mutable structs (Storage.Stats,
   Sqldb.Exec_stats); those modules are now thin compatibility shims
   over these metrics.  The engine is single-process and the hot paths
   (per-page, per-row) increment a pre-looked-up counter, so an
   increment is exactly one mutable-field write — the same cost as the
   old struct fields. *)

module Counter = struct
  type t = { name : string; mutable v : int }

  let incr t = t.v <- t.v + 1
  let add t n = t.v <- t.v + n
  let get t = t.v
  let set t n = t.v <- n
  let name t = t.name
end

module Gauge = struct
  type t = { name : string; mutable v : float }

  let add t x = t.v <- t.v +. x
  let set t x = t.v <- x
  let get t = t.v
  let name t = t.name
end

(* Log-scale histogram for latencies in seconds: 10 buckets per decade
   over [1e-7, 1e3) (0.1us .. ~16min), plus exact count/sum/min/max.
   Quantiles are estimated as the geometric midpoint of the bucket the
   target rank falls in, clamped to the observed [min, max] — a ~12%
   relative-error estimate, plenty for p50/p95/p99 reporting. *)
module Histogram = struct
  let decades = 10
  let per_decade = 10
  let n_buckets = decades * per_decade
  let lo_exp = -7. (* first bucket lower bound = 1e-7 *)

  type t = {
    name : string;
    buckets : int array; (* n_buckets + underflow/overflow slots at 0 and n+1 *)
    mutable count : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let make name =
    { name;
      buckets = Array.make (n_buckets + 2) 0;
      count = 0;
      sum = 0.;
      vmin = Float.infinity;
      vmax = Float.neg_infinity }

  let bucket_of v =
    if v < 1e-7 then 0
    else
      let i = int_of_float (Float.floor (float_of_int per_decade *. (Float.log10 v -. lo_exp))) in
      (* log10 rounding can put a value exactly on the first bound (1e-7)
         a hair below it; such a value is >= 1e-7, so it belongs in the
         first real bucket, not the underflow slot. *)
      let i = max 0 i in
      if i >= n_buckets then n_buckets + 1 else i + 1

  let observe t v =
    if Float.is_nan v then ()
    else begin
      let v = Float.max v 0. in
      let b = bucket_of v in
      t.buckets.(b) <- t.buckets.(b) + 1;
      t.count <- t.count + 1;
      t.sum <- t.sum +. v;
      if v < t.vmin then t.vmin <- v;
      if v > t.vmax then t.vmax <- v
    end

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
  let min_value t = if t.count = 0 then 0. else t.vmin
  let max_value t = if t.count = 0 then 0. else t.vmax
  let name t = t.name

  (* Lower bound of bucket slot [i] (1-based over the log range). *)
  let bucket_lo i = Float.pow 10. (lo_exp +. (float_of_int (i - 1) /. float_of_int per_decade))

  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let target = q *. float_of_int t.count in
      let est = ref t.vmax in
      (try
         let seen = ref 0. in
         for i = 0 to n_buckets + 1 do
           seen := !seen +. float_of_int t.buckets.(i);
           if !seen >= target then begin
             (est :=
                if i = 0 then t.vmin
                else if i = n_buckets + 1 then t.vmax
                else
                  (* geometric midpoint of the bucket *)
                  let lo = bucket_lo i in
                  lo *. Float.pow 10. (0.5 /. float_of_int per_decade));
             raise Exit
           end
         done
       with Exit -> ());
      Float.min t.vmax (Float.max t.vmin !est)
    end

  (* Cumulative counts at decade upper bounds, Prometheus-style: the
     entry for bound b counts observations <= b; the underflow slot
     folds into the first bound and only the overflow slot lies beyond
     the last.  Always monotone non-decreasing. *)
  let cumulative_buckets t =
    let out = ref [] in
    let acc = ref t.buckets.(0) in
    for d = 0 to decades - 1 do
      for j = 1 to per_decade do
        acc := !acc + t.buckets.((d * per_decade) + j)
      done;
      let bound = Float.pow 10. (lo_exp +. float_of_int (d + 1)) in
      out := (bound, !acc) :: !out
    done;
    List.rev !out

  let reset t =
    Array.fill t.buckets 0 (Array.length t.buckets) 0;
    t.count <- 0;
    t.sum <- 0.;
    t.vmin <- Float.infinity;
    t.vmax <- Float.neg_infinity

  (* Fold [src] into [into], bucket-wise.  Every histogram shares the
     same fixed bucket layout, so merging per-scope histograms is exact
     at bucket granularity: quantiles of the merge equal quantiles of
     recording every observation into one histogram, up to the bucket
     resolution (the property the scope roll-up relies on). *)
  let merge ~into src =
    for i = 0 to Array.length src.buckets - 1 do
      into.buckets.(i) <- into.buckets.(i) + src.buckets.(i)
    done;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
end

(* --- registry --------------------------------------------------------- *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

(* A metric table: the process registry is one (the root scope); every
   child Obs.Scope owns another with the same shape, so creation,
   merging, reset and JSON rendering are shared. *)
type table = (string, metric) Hashtbl.t

(* lint: allow — constructor; each table is owned by one scope and its
   entry creation is serialized by [create_mu] (see [counter_in]) *)
let make_table () : table = Hashtbl.create 16

(* lint: allow — entry creation serialized by [create_mu]; established
   entries are immutable handles (their values are word-atomic) *)
let registry : table = Hashtbl.create 64

exception Error of string

(* Guards metric *creation* (table inserts), which can race when two
   domains materialize the same scope-local metric concurrently.
   Increments on existing metrics stay lock-free mutable-field writes:
   word-atomic in OCaml 5, with lost-update imprecision under contention
   accepted (the documented counter semantics). *)
let create_mu = Mutex.create ()

(* Guarded section helper — lock-discipline lint keys on [Fun.protect]. *)
let locked_create f =
  Mutex.lock create_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock create_mu) f

(* Creation is idempotent: looking up an existing name of the same kind
   returns the registered instance, so modules can own their counters as
   top-level bindings. *)
let counter_in (tbl : table) name =
  match Hashtbl.find_opt tbl name with
  | Some (M_counter c) -> c
  | Some _ -> raise (Error (Printf.sprintf "metric %s exists with another kind" name))
  | None ->
    locked_create (fun () ->
        match Hashtbl.find_opt tbl name with
        | Some (M_counter c) -> c
        | _ ->
          let c = { Counter.name; v = 0 } in
          Hashtbl.replace tbl name (M_counter c);
          c)

let gauge_in (tbl : table) name =
  match Hashtbl.find_opt tbl name with
  | Some (M_gauge g) -> g
  | Some _ -> raise (Error (Printf.sprintf "metric %s exists with another kind" name))
  | None ->
    locked_create (fun () ->
        match Hashtbl.find_opt tbl name with
        | Some (M_gauge g) -> g
        | _ ->
          let g = { Gauge.name; v = 0. } in
          Hashtbl.replace tbl name (M_gauge g);
          g)

let histogram_in (tbl : table) name =
  match Hashtbl.find_opt tbl name with
  | Some (M_histogram h) -> h
  | Some _ -> raise (Error (Printf.sprintf "metric %s exists with another kind" name))
  | None ->
    locked_create (fun () ->
        match Hashtbl.find_opt tbl name with
        | Some (M_histogram h) -> h
        | _ ->
          let h = Histogram.make name in
          Hashtbl.replace tbl name (M_histogram h);
          h)

let counter name = counter_in registry name
let gauge name = gauge_in registry name
let histogram name = histogram_in registry name

(* Fold every metric of [src] into [into], creating destination metrics
   as needed: counters and gauges add, histograms bucket-merge.  Used by
   the scope layer to retire a dropped child's distribution into its
   parent without losing it from the roll-up.
   @raise Error if a name exists in [into] with a different kind. *)
let merge ~into (src : table) =
  Hashtbl.iter
    (fun name m ->
      match m with
      | M_counter c -> Counter.add (counter_in into name) (Counter.get c)
      | M_gauge g -> Gauge.add (gauge_in into name) (Gauge.get g)
      | M_histogram h -> Histogram.merge ~into:(histogram_in into name) h)
    src

let sorted_table_items (tbl : table) =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let sorted_items () = sorted_table_items registry

(* Name -> value view of every counter (sorted); the unit of counter
   delta attribution: snapshot before a region, snapshot after, diff. *)
let counters () =
  List.filter_map
    (fun (k, m) -> match m with M_counter c -> Some (k, c.Counter.v) | _ -> None)
    (sorted_items ())

(* Nonzero deltas of [after] relative to [before] (missing names in
   [before] count from 0). *)
let diff_counters ~before ~after =
  List.filter_map
    (fun (k, v) ->
      let v0 = match List.assoc_opt k before with Some v0 -> v0 | None -> 0 in
      if v - v0 <> 0 then Some (k, v - v0) else None)
    after

let reset_table (tbl : table) =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Counter.set c 0
      | M_gauge g -> Gauge.set g 0.
      | M_histogram h -> Histogram.reset h)
    tbl

(* Layers above (the scope tree) register here so a registry-wide reset
   also zeroes their derived state instead of leaving it stale. *)
(* lint: allow — registration happens at module init on the main domain *)
let reset_hooks : (unit -> unit) list ref = ref []

let on_reset f = reset_hooks := f :: !reset_hooks

let reset_all () =
  reset_table registry;
  List.iter (fun f -> f ()) !reset_hooks

(* --- export ----------------------------------------------------------- *)

let metric_to_json = function
  | M_counter c -> Json.Int c.Counter.v
  | M_gauge g -> Json.Float g.Gauge.v
  | M_histogram h ->
    Json.Obj
      [ ("count", Json.Int (Histogram.count h));
        ("sum", Json.Float (Histogram.sum h));
        ("mean", Json.Float (Histogram.mean h));
        ("min", Json.Float (Histogram.min_value h));
        ("max", Json.Float (Histogram.max_value h));
        ("p50", Json.Float (Histogram.quantile h 0.5));
        ("p95", Json.Float (Histogram.quantile h 0.95));
        ("p99", Json.Float (Histogram.quantile h 0.99)) ]

let to_json () = Json.Obj (List.map (fun (k, m) -> (k, metric_to_json m)) (sorted_items ()))

(* --- Prometheus text exposition ---------------------------------------- *)

(* Registry names are dotted ("sql.stmt_latency"); Prometheus names are
   [a-zA-Z_:][a-zA-Z0-9_:]*.  Dots (and any other illegal character)
   become underscores, and everything is prefixed "rql_". *)
let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      in
      if not ok then Bytes.set b i '_')
    b;
  "rql_" ^ Bytes.to_string b

(* Label values are free-form (scope and table names): the text
   exposition format requires backslash, double-quote and newline to be
   escaped inside the quoted value. *)
let prom_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Render a label set as [{k="v",...}]; label *names* share the metric-
   name grammar, so they go through the same sanitizer (minus the
   prefix). *)
let prom_labels = function
  | [] -> ""
  | kvs ->
    let clean_key k =
      let pk = prom_name k in
      String.sub pk 4 (String.length pk - 4)
    in
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (clean_key k) (prom_label_value v)) kvs)
    ^ "}"

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* Extra sections appended to the exposition by higher layers (the
   scope tree adds scope-labeled series and the page-heat matrix). *)
(* lint: allow — registration happens at module init on the main domain *)
let prom_exporters : (Buffer.t -> unit) list ref = ref []

let add_prom_exporter f = prom_exporters := !prom_exporters @ [ f ]

(* Extra labeled samples emitted inside a metric's family, keyed by
   registry name — how per-scope values appear under the same family as
   the root sample (the exposition format groups a family's samples). *)
(* lint: allow — registration happens at module init on the main domain *)
let prom_extra_samples : (string -> ((string * string) list * float) list) ref = ref (fun _ -> [])

let set_prom_extra_samples f = prom_extra_samples := f

(* The registry in Prometheus text exposition format: counters and
   gauges as single samples, histograms with cumulative [_bucket]
   series at decade bounds plus [_sum]/[_count]. *)
let to_prometheus () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, m) ->
      let pn = prom_name name in
      let extra () =
        List.iter
          (fun (labels, v) -> line "%s%s %s" pn (prom_labels labels) (prom_float v))
          (!prom_extra_samples name)
      in
      match m with
      | M_counter c ->
        line "# TYPE %s counter" pn;
        line "%s %d" pn (Counter.get c);
        extra ()
      | M_gauge g ->
        line "# TYPE %s gauge" pn;
        line "%s %s" pn (prom_float (Gauge.get g));
        extra ()
      | M_histogram h ->
        line "# TYPE %s histogram" pn;
        List.iter
          (fun (bound, cum) -> line "%s_bucket{le=\"%s\"} %d" pn (prom_float bound) cum)
          (Histogram.cumulative_buckets h);
        line "%s_bucket{le=\"+Inf\"} %d" pn (Histogram.count h);
        line "%s_sum %s" pn (prom_float (Histogram.sum h));
        line "%s_count %d" pn (Histogram.count h))
    (sorted_items ());
  List.iter (fun f -> f buf) !prom_exporters;
  Buffer.contents buf

let write_prometheus ~path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (to_prometheus ()))

let pp ppf () =
  List.iter
    (fun (k, m) ->
      match m with
      | M_counter c -> Format.fprintf ppf "%-36s %d@." k c.Counter.v
      | M_gauge g -> Format.fprintf ppf "%-36s %.6f@." k g.Gauge.v
      | M_histogram h ->
        if Histogram.count h > 0 then
          Format.fprintf ppf "%-36s n=%d mean=%.6fs p50=%.6fs p95=%.6fs p99=%.6fs max=%.6fs@." k
            (Histogram.count h) (Histogram.mean h)
            (Histogram.quantile h 0.5) (Histogram.quantile h 0.95) (Histogram.quantile h 0.99)
            (Histogram.max_value h))
    (sorted_items ())
