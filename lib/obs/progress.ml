(* Live progress and cooperative cancellation for retrospective (RQL)
   runs.

   The RQL layer lives above the SQL engine, but the surfaces that
   report progress — sys_progress, the shell, the event log — live
   below it, so the registry of runs lives here in obs: Rql drives it,
   everything else reads it.

   A run advertises iterations done/total, pages read so far, and an
   ETA extrapolated from per-snapshot archive deltas (the weights
   ANALYZE ARCHIVE computes): iteration cost tracks the number of
   archived pages behind each snapshot, so elapsed time is scaled by
   remaining weight over completed weight rather than a flat per-
   iteration average.

   Cancellation is cooperative: {!request_cancel} raises a flag that
   the RQL loop checks once per iteration; the loop stops between
   iterations (each iteration is transactionally self-contained) and
   marks the run {!Cancelled} with an accurate done-count. *)

type status = Running | Done | Cancelled | Failed

let status_to_string = function
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"
  | Failed -> "failed"

type t = {
  pr_id : int;
  pr_mechanism : string;
  pr_detail : string; (* the Qq text (or result-table name) *)
  pr_scope : int;     (* owning scope id at start *)
  mutable pr_total : int;
  mutable pr_done : int;
  mutable pr_pages : int; (* page reads attributed so far *)
  pr_started : float;
  mutable pr_elapsed : float;
  mutable pr_eta : float; (* estimated seconds remaining (0 = unknown/done) *)
  mutable pr_status : status;
  mutable pr_cancel : bool;
  mutable pr_weights : float array; (* per-iteration cost weights ([||] = uniform) *)
}

(* Bounded retention: finished runs stay visible in sys_progress until
   pushed out by newer ones. *)
let max_retained = 64

(* lint: allow — both guarded by [mu] below, accessed via [locked] *)
let runs_newest_first : t list ref = ref []
let next_id = ref 1

(* Guards the registry list and id allocation; per-run mutable fields
   are written only by the domain driving that run, so they stay
   unlocked (sys_progress may read an iteration count one step stale,
   never a torn value). *)
let mu = Mutex.create ()

let locked f = Mutex.lock mu; Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* The run currently executing an iteration, per domain: event-log
   lines produced during an iteration carry its id.  Parallel RQL
   worker domains evaluating on behalf of a run install it here. *)
let active : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_run_id () =
  match Domain.DLS.get active with Some p -> p.pr_id | None -> -1

let trim () =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | p :: rest -> p :: take (n - 1) rest
  in
  if List.length !runs_newest_first > max_retained then
    runs_newest_first := take max_retained !runs_newest_first

let start ?(total = 0) ~mechanism ~detail () =
  locked (fun () ->
  let p =
    { pr_id = !next_id;
      pr_mechanism = mechanism;
      pr_detail = detail;
      pr_scope = Scope.current_id ();
      pr_total = total;
      pr_done = 0;
      pr_pages = 0;
      pr_started = Unix.gettimeofday ();
      pr_elapsed = 0.;
      pr_eta = 0.;
      pr_status = Running;
      pr_cancel = false;
      pr_weights = [||] }
  in
  incr next_id;
  runs_newest_first := p :: !runs_newest_first;
  trim ();
  p)

let set_total p n = p.pr_total <- n
let set_weights p w = p.pr_weights <- w

let with_active p f =
  let prev = Domain.DLS.get active in
  Domain.DLS.set active (Some p);
  match f () with
  | r ->
    Domain.DLS.set active prev;
    r
  | exception e ->
    Domain.DLS.set active prev;
    raise e

(* Weighted remaining-work extrapolation; falls back to a flat per-
   iteration average when no weights were supplied (or they are
   degenerate). *)
let recompute_eta p =
  let eta =
    if p.pr_done = 0 || p.pr_total <= p.pr_done then 0.
    else
      let n = Array.length p.pr_weights in
      if n >= p.pr_total then begin
        let sum a b =
          let acc = ref 0. in
          for i = a to b - 1 do
            acc := !acc +. p.pr_weights.(i)
          done;
          !acc
        in
        let w_done = sum 0 p.pr_done and w_rem = sum p.pr_done p.pr_total in
        if w_done > 0. then p.pr_elapsed *. w_rem /. w_done
        else p.pr_elapsed *. float_of_int (p.pr_total - p.pr_done) /. float_of_int p.pr_done
      end
      else p.pr_elapsed *. float_of_int (p.pr_total - p.pr_done) /. float_of_int p.pr_done
  in
  p.pr_eta <- eta

let note_iteration p ~pages =
  p.pr_done <- p.pr_done + 1;
  p.pr_pages <- pages;
  p.pr_elapsed <- Unix.gettimeofday () -. p.pr_started;
  recompute_eta p

let finish p status =
  if p.pr_status = Running then begin
    p.pr_status <- status;
    p.pr_elapsed <- Unix.gettimeofday () -. p.pr_started;
    p.pr_eta <- 0.
  end

let cancel_requested p = p.pr_cancel

(* Raise the cancellation flag on run [id], or on every running run
   when no id is given; returns how many runs were flagged. *)
let request_cancel ?id () =
  let n = ref 0 in
  List.iter
    (fun p ->
      let wanted = match id with None -> true | Some i -> p.pr_id = i in
      if wanted && p.pr_status = Running && not p.pr_cancel then begin
        p.pr_cancel <- true;
        incr n
      end)
    (locked (fun () -> !runs_newest_first));
  !n

(* Oldest-first, so sys_progress reads chronologically. *)
let runs () = List.rev (locked (fun () -> !runs_newest_first))

let find id =
  List.find_opt (fun p -> p.pr_id = id) (locked (fun () -> !runs_newest_first))

let clear () =
  locked (fun () -> runs_newest_first := []);
  Domain.DLS.set active None
