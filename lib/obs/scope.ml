(* Hierarchical metric scopes.

   A scope is a lightweight registry node: a named table of counters /
   gauges / histograms with a parent pointer.  The process-wide
   {!Metrics} registry is the *root* scope's table, so "global metrics"
   and "root scope" are the same storage — the Storage.Stats and
   Sqldb.Exec_stats shims remain views over it.

   Charging is eager: an increment through a scope {!counter} handle
   always bumps the pre-looked-up root metric (one mutable-field write,
   same as before scopes existed) and, when a non-root scope is active,
   the local metric of every scope on the chain from the active scope up
   to (excluding) the root.  A scope's local totals are therefore
   subtree-inclusive, and the root is exact by construction.  Handles
   cache the resolved chain per active scope, so the unscoped hot path
   costs one extra physical-equality test.

   Attribution labels ride alongside: the executor marks the table being
   scanned and the Retro layer marks the snapshot being read, and every
   page read is charged to a (table, snapshot) *heat cell* in the root
   and each active scope.  The same code path that increments the page
   counters fills the cells, with fallback labels ("" / -1) for reads
   outside any scan, so the root heat matrix partitions the global
   [storage.page_reads] counter exactly — nothing double-counted,
   nothing lost.

   Scope lifecycle: {!drop} detaches a scope from the tree; its
   distribution is folded (via {!Metrics.merge}) into a synthetic
   "(dropped)" bucket under its parent so the roll-up keeps the detail
   without retaining stale child rows.  A registry-wide
   {!Metrics.reset_all} zeroes every scope's local table and heat via a
   reset hook. *)

module M = Metrics

type heat_cell = { mutable ht_db : int; mutable ht_pagelog : int }

type t = {
  sc_id : int;
  sc_name : string;
  sc_parent : t option;
  sc_depth : int;
  sc_metrics : M.table; (* for the root: the process registry itself *)
  sc_heat : (string * int, heat_cell) Hashtbl.t;
  mutable sc_children : t list;
  mutable sc_live : bool;
}

let root =
  { sc_id = 0;
    sc_name = "root";
    sc_parent = None;
    sc_depth = 0;
    sc_metrics = M.registry;
    sc_heat = Hashtbl.create 64;
    sc_children = [];
    sc_live = true }

(* lint: allow — guarded by [mu]: ids are only drawn inside [create] *)
let next_id = ref 1

(* Guards structural mutation shared across domains: the scope tree
   (id allocation, child lists) and every heat-cell table.  Counter
   increments stay lock-free — a plain mutable-field add is word-atomic
   in OCaml 5 (no torn values; a lost increment under contention is the
   documented precision trade, matching plain Metrics counters). *)
let mu = Mutex.create ()

(* All [mu] sections go through this guard (the lock-discipline lint
   rule keys on the [Fun.protect] spelling). *)
let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* The active scope: engine entry points set it from the handle's scope
   for the duration of a statement.  Domain-local, so concurrent AS OF
   readers on separate domains each carry their own ambient scope. *)
let current = Domain.DLS.new_key (fun () -> root)

(* Ambient attribution labels for heat cells: the table being scanned
   ("" = none) and the snapshot being read (-1 = current state). *)
let cur_table = Domain.DLS.new_key (fun () -> "")
let cur_snap = Domain.DLS.new_key (fun () -> -1)

let create_unlocked ?(parent = root) name =
  let s =
    { sc_id = !next_id;
      sc_name = name;
      sc_parent = Some parent;
      sc_depth = parent.sc_depth + 1;
      sc_metrics = M.make_table ();
      sc_heat = Hashtbl.create 16;
      sc_children = [];
      sc_live = true }
  in
  incr next_id;
  parent.sc_children <- s :: parent.sc_children;
  s

let create ?parent name = locked (fun () -> create_unlocked ?parent name)

let id s = s.sc_id
let scope_name s = s.sc_name
let parent_id s = match s.sc_parent with None -> -1 | Some p -> p.sc_id
let depth s = s.sc_depth
let is_live s = s.sc_live
let is_root s = s == root
let current_scope () = Domain.DLS.get current
let current_id () = (Domain.DLS.get current).sc_id

let with_scope s f =
  let prev = Domain.DLS.get current in
  Domain.DLS.set current s;
  match f () with
  | r ->
    Domain.DLS.set current prev;
    r
  | exception e ->
    Domain.DLS.set current prev;
    raise e

let with_table name f =
  let prev = Domain.DLS.get cur_table in
  Domain.DLS.set cur_table name;
  match f () with
  | r ->
    Domain.DLS.set cur_table prev;
    r
  | exception e ->
    Domain.DLS.set cur_table prev;
    raise e

let with_snapshot sid f =
  let prev = Domain.DLS.get cur_snap in
  Domain.DLS.set cur_snap sid;
  match f () with
  | r ->
    Domain.DLS.set cur_snap prev;
    r
  | exception e ->
    Domain.DLS.set cur_snap prev;
    raise e

(* --- scoped metric handles --------------------------------------------- *)

(* The chain of local metrics for the scopes from [s] up to (excluding)
   the root, resolved once per (handle, active-scope) pair. *)
let build_chain make name s =
  let rec go s acc =
    match s.sc_parent with None -> acc | Some p -> go p (make s.sc_metrics name :: acc)
  in
  Array.of_list (go s [])

(* The (scope -> chain) cache is domain-local: with parallel reader
   domains each under its own scope, a shared cache slot would race and
   charge one domain's increments to another domain's scope. *)
type counter = {
  cn_name : string;
  cn_root : M.Counter.t;
  cn_cache : (t * M.Counter.t array) ref Domain.DLS.key;
}

let counter name =
  { cn_name = name;
    cn_root = M.counter name;
    cn_cache = Domain.DLS.new_key (fun () -> ref (root, [||])) }

let add h n =
  M.Counter.add h.cn_root n;
  let s = Domain.DLS.get current in
  if s != root then begin
    let cache = Domain.DLS.get h.cn_cache in
    let cs, cached = !cache in
    let chain =
      if cs == s then cached
      else begin
        let chain = build_chain M.counter_in h.cn_name s in
        cache := (s, chain);
        chain
      end
    in
    Array.iter (fun c -> M.Counter.add c n) chain
  end

let incr h = add h 1
let get h = M.Counter.get h.cn_root

(* Root-level assignment (the reset path of the Stats shims); scope
   locals are zeroed by the registry-wide reset hook, not here. *)
let set h n = M.Counter.set h.cn_root n

type gauge = {
  ga_name : string;
  ga_root : M.Gauge.t;
  mutable ga_for : t;
  mutable ga_chain : M.Gauge.t array;
}

let gauge name = { ga_name = name; ga_root = M.gauge name; ga_for = root; ga_chain = [||] }

let gauge_add h x =
  M.Gauge.add h.ga_root x;
  let s = Domain.DLS.get current in
  if s != root then begin
    if h.ga_for != s then begin
      h.ga_for <- s;
      h.ga_chain <- build_chain M.gauge_in h.ga_name s
    end;
    Array.iter (fun g -> M.Gauge.add g x) h.ga_chain
  end

let gauge_get h = M.Gauge.get h.ga_root
let gauge_set h x = M.Gauge.set h.ga_root x

type histogram = {
  hi_name : string;
  hi_root : M.Histogram.t;
  mutable hi_for : t;
  mutable hi_chain : M.Histogram.t array;
}

let histogram name =
  { hi_name = name; hi_root = M.histogram name; hi_for = root; hi_chain = [||] }

let observe h v =
  M.Histogram.observe h.hi_root v;
  let s = Domain.DLS.get current in
  if s != root then begin
    if h.hi_for != s then begin
      h.hi_for <- s;
      h.hi_chain <- build_chain M.histogram_in h.hi_name s
    end;
    Array.iter (fun hg -> M.Histogram.observe hg v) h.hi_chain
  end

let hist_root h = h.hi_root

(* --- page-read heat ---------------------------------------------------- *)

type io = Db_read | Archive_read

(* Combined page-read total (current-state + archive): the counter the
   root heat matrix partitions exactly. *)
let c_page_reads = counter "storage.page_reads"

let heat_cell sc key =
  match Hashtbl.find_opt sc.sc_heat key with
  | Some c -> c
  | None ->
    let c = { ht_db = 0; ht_pagelog = 0 } in
    Hashtbl.replace sc.sc_heat key c;
    c

(* A page read of kind [io] through handle [h]: bumps the per-device
   counter and the combined total (both scope-charged), then fills the
   (table, snapshot) heat cell of the root and of every active scope —
   one code path, so attribution cannot drift from the counters. *)
let page_read io h =
  incr h;
  incr c_page_reads;
  let key = (Domain.DLS.get cur_table, Domain.DLS.get cur_snap) in
  let charge sc =
    let c = heat_cell sc key in
    match io with
    | Db_read -> c.ht_db <- c.ht_db + 1
    | Archive_read -> c.ht_pagelog <- c.ht_pagelog + 1
  in
  (* Heat tables are shared Hashtbls: serialize cell creation/update. *)
  locked (fun () ->
      charge root;
      let rec up s = match s.sc_parent with None -> () | Some _ -> charge s; up (Option.get s.sc_parent) in
      up (Domain.DLS.get current))

(* --- lifecycle --------------------------------------------------------- *)

let dropped_bucket_name = "(dropped)"

let dropped_bucket parent =
  match List.find_opt (fun c -> c.sc_name = dropped_bucket_name) parent.sc_children with
  | Some b -> b
  | None -> create_unlocked ~parent dropped_bucket_name

let rec detach s =
  s.sc_live <- false;
  List.iter detach s.sc_children;
  s.sc_children <- []

(* Detach [s] from the tree.  Its local totals (subtree-inclusive, so
   its children's too) are merged into the parent's "(dropped)" bucket;
   every ancestor — the root in particular — already holds them via
   eager roll-up, so dropping a scope never loses counts. *)
let drop s =
  match s.sc_parent with
  | None -> invalid_arg "Scope.drop: cannot drop the root scope"
  | Some p ->
    locked @@ fun () ->
    if s.sc_live then begin
      p.sc_children <- List.filter (fun c -> c != s) p.sc_children;
      let b = dropped_bucket p in
      M.merge ~into:b.sc_metrics s.sc_metrics;
      Hashtbl.iter
        (fun key (c : heat_cell) ->
          let d = heat_cell b key in
          d.ht_db <- d.ht_db + c.ht_db;
          d.ht_pagelog <- d.ht_pagelog + c.ht_pagelog)
        s.sc_heat;
      detach s;
      if Domain.DLS.get current == s then Domain.DLS.set current root
    end

let rec reset_scope s =
  if s != root then M.reset_table s.sc_metrics;
  Hashtbl.reset s.sc_heat;
  List.iter reset_scope s.sc_children

(* Registry-wide reset (Metrics.reset_all) also zeroes every scope's
   local table and all heat cells: sys_scopes reports zeroed children
   after a reset, never stale totals. *)
let () = M.on_reset (fun () -> reset_scope root)

(* Zero the combined page-read counter and every heat cell together
   (the Stats shim's global reset), keeping the partition invariant
   [heat(root) = storage.page_reads] intact across partial resets. *)
let reset_heat () =
  set c_page_reads 0;
  locked (fun () ->
      let rec clear s =
        Hashtbl.reset s.sc_heat;
        List.iter clear s.sc_children
      in
      clear root)

(* --- introspection (sys_scopes / sys_heat / Prometheus) ---------------- *)

let rec fold_scopes f acc s = List.fold_left (fold_scopes f) (f acc s) s.sc_children

(* Every scope in the tree, root first, parents before children. *)
let scopes () =
  locked (fun () -> List.rev (fold_scopes (fun acc s -> s :: acc) [] root))

let metric_items s = M.sorted_table_items s.sc_metrics

(* ((table, snapshot), db_reads, archive_reads) rows, sorted. *)
let heat_items s =
  let items =
    locked (fun () ->
        Hashtbl.fold (fun key c acc -> (key, c.ht_db, c.ht_pagelog) :: acc) s.sc_heat [])
  in
  List.sort compare items

let heat_total s =
  locked (fun () -> Hashtbl.fold (fun _ c acc -> acc + c.ht_db + c.ht_pagelog) s.sc_heat 0)

let page_reads_total () = get c_page_reads

(* --- Prometheus integration -------------------------------------------- *)

let scope_labels s =
  [ ("scope", s.sc_name); ("scope_id", string_of_int s.sc_id) ]

let () =
  (* Scope-local counters and gauges as labeled samples inside the
     metric's own family (grouping keeps the exposition parseable). *)
  M.set_prom_extra_samples (fun name ->
      List.concat_map
        (fun s ->
          if s == root then []
          else
            match Hashtbl.find_opt s.sc_metrics name with
            | Some (M.M_counter c) -> [ (scope_labels s, float_of_int (M.Counter.get c)) ]
            | Some (M.M_gauge g) -> [ (scope_labels s, M.Gauge.get g) ]
            | _ -> [])
        (scopes ()));
  (* The heat matrix as its own family. *)
  M.add_prom_exporter (fun buf ->
      Buffer.add_string buf "# TYPE rql_page_reads_heat counter\n";
      List.iter
        (fun s ->
          List.iter
            (fun ((tbl, snap), db, pl) ->
              let labels device =
                M.prom_labels
                  (scope_labels s
                  @ [ ("table", (if tbl = "" then "-" else tbl));
                      ("snapshot", string_of_int snap); ("device", device) ])
              in
              if db > 0 then
                Buffer.add_string buf (Printf.sprintf "rql_page_reads_heat%s %d\n" (labels "db") db);
              if pl > 0 then
                Buffer.add_string buf
                  (Printf.sprintf "rql_page_reads_heat%s %d\n" (labels "pagelog") pl))
            (heat_items s))
        (scopes ()))
