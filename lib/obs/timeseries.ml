(* Bounded time-series sampler over the metrics registry.

   A sample is a flat (name -> float) snapshot of every counter and
   gauge, plus count / sum / p99 summaries of every histogram, stamped
   with a wall-clock timestamp and a monotone sequence number.  Samples
   land in a bounded ring (oldest overwritten), so a long-running
   process carries a fixed-size perf trajectory that the engine can
   query back out through the [sys_timeseries] virtual table and the
   benchmark harness embeds in its --json report.

   Sampling is driven by [tick], called once per executed SQL statement:
   every [interval] ticks one sample is taken.  [interval = 0] disables
   automatic sampling; [sample_now] always works. *)

type sample = {
  seq : int;                      (* monotone sample number *)
  ts : float;                     (* Unix.gettimeofday at capture *)
  values : (string * float) list; (* sorted by name *)
}

let default_capacity = 512

type ring = {
  mutable slots : sample option array;
  mutable taken : int;        (* total samples ever taken *)
  mutable interval : int;     (* sample every N ticks; 0 = off *)
  mutable ticks : int;        (* statements since the last sample *)
}

let ring =
  { slots = Array.make default_capacity None; taken = 0; interval = 0; ticks = 0 }

let capacity () = Array.length ring.slots

let set_capacity n =
  if n < 1 then invalid_arg "Timeseries.set_capacity";
  ring.slots <- Array.make n None;
  ring.taken <- 0

let interval () = ring.interval

let set_interval n =
  if n < 0 then invalid_arg "Timeseries.set_interval";
  ring.interval <- n;
  ring.ticks <- 0

let clear () =
  Array.fill ring.slots 0 (Array.length ring.slots) None;
  ring.taken <- 0;
  ring.ticks <- 0

(* Flatten the registry into (name, float) pairs. *)
let capture_values () =
  List.concat_map
    (fun (name, m) ->
      match m with
      | Metrics.M_counter c -> [ (name, float_of_int (Metrics.Counter.get c)) ]
      | Metrics.M_gauge g -> [ (name, Metrics.Gauge.get g) ]
      | Metrics.M_histogram h ->
        [ (name ^ ".count", float_of_int (Metrics.Histogram.count h));
          (name ^ ".sum", Metrics.Histogram.sum h);
          (name ^ ".p99", Metrics.Histogram.quantile h 0.99) ])
    (Metrics.sorted_items ())

let sample_now () =
  let s = { seq = ring.taken; ts = Unix.gettimeofday (); values = capture_values () } in
  ring.slots.(ring.taken mod Array.length ring.slots) <- Some s;
  ring.taken <- ring.taken + 1;
  s

(* One statement executed; samples when the interval elapses. *)
let tick () =
  if ring.interval > 0 then begin
    ring.ticks <- ring.ticks + 1;
    if ring.ticks >= ring.interval then begin
      ring.ticks <- 0;
      ignore (sample_now ())
    end
  end

(* Buffered samples, oldest first. *)
let samples () =
  let out = ref [] in
  Array.iter (fun slot -> match slot with Some s -> out := s :: !out | None -> ()) ring.slots;
  List.sort (fun a b -> compare a.seq b.seq) !out

let sample_count () = ring.taken

let sample_to_json s =
  Json.Obj
    [ ("seq", Json.Int s.seq);
      ("ts", Json.Float s.ts);
      ("values", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.values)) ]

let to_json () = Json.List (List.map sample_to_json (samples ()))
