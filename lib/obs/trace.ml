(* Hierarchical tracing with a bounded ring buffer of completed spans.

   Design constraints:
   - disabled tracing must be a no-op guarded by one flag check, with no
     allocation on per-page / per-row hot paths (those paths only bump
     Metrics counters; spans are taken at statement / SPT-build /
     RQL-iteration granularity);
   - spans nest: an open-span stack links children to parents, and
     [with_span] records the span even when the body raises;
   - the buffer is bounded: the most recent [capacity] completed spans
     are kept, older ones are overwritten (wraparound);
   - the whole buffer exports as Chrome trace_event JSON, so a dump
     opens directly in chrome://tracing or Perfetto.

   Spans carry a [tid] (Chrome track id).  Track 1 holds wall-clock
   spans; track 2 holds the RQL layer's modeled per-iteration cost
   attribution, where I/O time comes from the simulated-device cost
   model rather than the host clock (see DESIGN.md). *)

type attr =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type span = {
  id : int;
  parent : int; (* span id, or -1 for a root *)
  tid : int;
  name : string;
  ts_us : float; (* start, microseconds since the trace epoch *)
  mutable dur_us : float;
  mutable attrs : (string * attr) list;
  mutable seq : int; (* completion order; -1 while open *)
}

let tid_wall = 1
let tid_modeled = 2

(* lint: allow — span tracing is a main-domain profiling facility (shell
   .profile); worker domains do not record spans *)
let enabled = ref false
let is_enabled () = !enabled
let set_enabled on = enabled := on

(* Trace epoch: set when the first event is recorded, so timestamps are
   small and the dump starts near t=0. *)
(* lint: allow — main-domain profiling facility (see [enabled]) *)
let epoch = ref Float.nan

let now_s = Unix.gettimeofday

let us_of_s s =
  if Float.is_nan !epoch then epoch := s;
  (s -. !epoch) *. 1e6

let now_us () = us_of_s (now_s ())

(* Chrome "C" (counter) events: a named set of values sampled over time,
   rendered by chrome://tracing as stacked counter tracks.  The RQL loop
   exports cumulative per-operator row counts here, one sample per
   iteration.  Bounded like the span ring; drops when tracing is off. *)
type counter_event = {
  c_name : string;
  c_tid : int;
  c_ts_us : float;
  c_values : (string * float) list;
}

let counter_capacity = 4096
let counter_slots : counter_event option array = Array.make counter_capacity None
(* lint: allow — main-domain profiling facility (see [enabled]) *)
let counters_recorded = ref 0

let clear_counters () =
  Array.fill counter_slots 0 counter_capacity None;
  counters_recorded := 0

(* --- ring buffer of completed spans ----------------------------------- *)

let default_capacity = 1 lsl 16

type ring = {
  mutable slots : span option array;
  mutable completed : int; (* total spans ever completed *)
}

let ring = { slots = Array.make default_capacity None; completed = 0 }

let capacity () = Array.length ring.slots

let clear () =
  Array.fill ring.slots 0 (Array.length ring.slots) None;
  ring.completed <- 0;
  epoch := Float.nan;
  clear_counters ()

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity";
  ring.slots <- Array.make n None;
  ring.completed <- 0

let push_completed sp =
  sp.seq <- ring.completed;
  ring.slots.(ring.completed mod Array.length ring.slots) <- Some sp;
  ring.completed <- ring.completed + 1

(* A position in the completion sequence; [spans_since] returns every
   still-buffered span completed at or after the mark. *)
let mark () = ring.completed

let spans_since m =
  let out = ref [] in
  Array.iter
    (fun slot ->
      match slot with
      | Some sp when sp.seq >= m -> out := sp :: !out
      | _ -> ())
    ring.slots;
  List.sort
    (fun a b ->
      let c = compare a.ts_us b.ts_us in
      if c <> 0 then c else compare a.id b.id)
    !out

let spans () = spans_since 0

(* --- span recording ---------------------------------------------------- *)

(* lint: allow — main-domain profiling facility (see [enabled]) *)
let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

(* Stack of open spans (innermost first).
   lint: allow — main-domain profiling facility (see [enabled]) *)
let stack : span list ref = ref []

let current_parent () = match !stack with sp :: _ -> sp.id | [] -> -1

let start_span ?(tid = tid_wall) ?(attrs = []) name =
  let sp =
    { id = fresh_id ();
      parent = current_parent ();
      tid;
      name;
      ts_us = now_us ();
      dur_us = 0.;
      attrs;
      seq = -1 }
  in
  stack := sp :: !stack;
  sp

let finish_span sp =
  sp.dur_us <- now_us () -. sp.ts_us;
  (match !stack with
  | top :: rest when top == sp -> stack := rest
  | _ -> stack := List.filter (fun s -> not (s == sp)) !stack);
  push_completed sp

(* Attach attributes to the innermost open span (no-op when disabled or
   outside any span). *)
let set_attrs attrs =
  if !enabled then
    match !stack with
    | sp :: _ -> sp.attrs <- sp.attrs @ attrs
    | [] -> ()

let with_span ?attrs ~name f =
  if not !enabled then f ()
  else begin
    let sp = start_span ?attrs name in
    match f () with
    | r ->
      finish_span sp;
      r
    | exception e ->
      sp.attrs <- sp.attrs @ [ ("error", Str (Printexc.to_string e)) ];
      finish_span sp;
      raise e
  end

(* Record an already-measured (or modeled) interval as a completed span.
   Returns the span id so callers can parent further synthetic spans
   under it; returns -1 when tracing is disabled. *)
let emit ?(tid = tid_wall) ?parent ?(attrs = []) ~name ~ts_us ~dur_us () =
  if not !enabled then -1
  else begin
    let parent = match parent with Some p -> p | None -> current_parent () in
    let sp = { id = fresh_id (); parent; tid; name; ts_us; dur_us; attrs; seq = -1 } in
    push_completed sp;
    sp.id
  end

(* --- counter tracks ----------------------------------------------------- *)

let emit_counter ?(tid = tid_modeled) ~name values =
  if !enabled then begin
    let ev = { c_name = name; c_tid = tid; c_ts_us = now_us (); c_values = values } in
    counter_slots.(!counters_recorded mod counter_capacity) <- Some ev;
    incr counters_recorded
  end

(* Retained counter events, oldest first. *)
let counter_events () =
  let total = !counters_recorded in
  let kept = min total counter_capacity in
  let out = ref [] in
  for k = kept - 1 downto 0 do
    match counter_slots.((total - 1 - k) mod counter_capacity) with
    | Some ev -> out := ev :: !out
    | None -> ()
  done;
  List.rev !out

(* --- Chrome trace_event export ----------------------------------------- *)

let attr_to_json = function
  | Str s -> Json.Str s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

let span_event sp =
  Json.Obj
    [ ("name", Json.Str sp.name);
      ("cat", Json.Str "rql");
      ("ph", Json.Str "X");
      ("ts", Json.Float sp.ts_us);
      ("dur", Json.Float sp.dur_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int sp.tid);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) sp.attrs)) ]

let thread_name_event tid name =
  Json.Obj
    [ ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]) ]

let counter_event_json ev =
  Json.Obj
    [ ("name", Json.Str ev.c_name);
      ("cat", Json.Str "rql");
      ("ph", Json.Str "C");
      ("ts", Json.Float ev.c_ts_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.c_tid);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) ev.c_values)) ]

let to_chrome_json () =
  let events =
    thread_name_event tid_wall "wall clock"
    :: thread_name_event tid_modeled "rql modeled attribution"
    :: (List.map span_event (spans ()) @ List.map counter_event_json (counter_events ()))
  in
  Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.Str "ms") ]

let dump ~path = Json.write_file path (to_chrome_json ())

(* --- tree rendering (EXPLAIN PROFILE, shell) ---------------------------- *)

let attr_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b

let render_span sp =
  let attrs =
    match sp.attrs with
    | [] -> ""
    | l ->
      "  ["
      ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ attr_to_string v) l)
      ^ "]"
  in
  Printf.sprintf "%s  %.3f ms%s" sp.name (sp.dur_us /. 1e3) attrs

(* Indented textual tree of [spans] (children grouped under parents,
   siblings in start order).  Spans whose parent is not in the list are
   roots. *)
let render_tree spans =
  let ids = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace ids sp.id ()) spans;
  let children = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun sp ->
      if sp.parent >= 0 && Hashtbl.mem ids sp.parent then begin
        let l = try Hashtbl.find children sp.parent with Not_found -> [] in
        Hashtbl.replace children sp.parent (l @ [ sp ])
      end
      else roots := sp :: !roots)
    spans;
  let out = ref [] in
  let rec go depth sp =
    out := (String.make (2 * depth) ' ' ^ render_span sp) :: !out;
    List.iter (go (depth + 1)) (try Hashtbl.find children sp.id with Not_found -> [])
  in
  List.iter (go 0) (List.rev !roots);
  List.rev !out
