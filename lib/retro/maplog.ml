(* Maplog: the log-structured list of (page id -> Pagelog location)
   mappings (paper §4, [23]).  A mapping is appended when a page's
   pre-state is copied out; a snapshot declaration records the current
   log position so that SPT(S) can be constructed by scanning the suffix
   that starts at S's position, taking the first mapping seen for each
   page.  Pages with no mapping in the suffix are shared with the current
   database. *)

type entry = { pid : int; pl_off : int }

type boundary = {
  pos : int;      (* maplog position at declaration *)
  db_pages : int; (* database size (pages) at declaration *)
  ts : float;     (* declaration timestamp *)
}

type t = {
  mutable entries : entry array;
  mutable n_entries : int;
  mutable boundaries : boundary array; (* index = snapshot id - 1 *)
  mutable n_boundaries : int;
  (* Lowest snapshot id still readable.  VACUUM drops a *prefix* of the
     history: ids below this are gone (their boundary slots retain only
     the declaration timestamp for introspection), ids at or above it
     keep their identity — snapshot numbering never shifts. *)
  mutable first_live : int;
  (* Skippy-style skip levels ([23]): memoized first-occurrence-per-page
     digests of fixed-size entry segments.  The log is append-only, so a
     full segment's digest never changes. *)
  mutable skippy : bool;
  l1 : (int, entry array) Hashtbl.t; (* segment index -> digest *)
  l2 : (int, entry array) Hashtbl.t;
  (* Digests are memoized lazily by read-side scans, so concurrent SPT
     builds race on the two tables above without this lock.  Appends and
     declarations stay outside it: they are serialized by the pager's
     writer lock, and scans only touch the immutable prefix. *)
  dg_mu : Mutex.t;
}

(* L1 digests cover [l1_size] raw entries; L2 digests cover [l2_factor]
   L1 segments. *)
let l1_size = 1024
let l2_factor = 16

let create () =
  { entries = Array.make 256 { pid = 0; pl_off = 0 };
    n_entries = 0;
    boundaries = Array.make 16 { pos = 0; db_pages = 0; ts = 0. };
    n_boundaries = 0;
    first_live = 1;
    skippy = true;
    l1 = Hashtbl.create 64;
    l2 = Hashtbl.create 16;
    dg_mu = Mutex.create () }

let set_skippy t on = t.skippy <- on

let append t e =
  if t.n_entries >= Array.length t.entries then begin
    let a = Array.make (2 * Array.length t.entries) e in
    Array.blit t.entries 0 a 0 t.n_entries;
    t.entries <- a
  end;
  t.entries.(t.n_entries) <- e;
  t.n_entries <- t.n_entries + 1;
  Obs.Scope.incr Storage.Stats.c_maplog_appends

(* Record a snapshot declaration; returns the new snapshot id (1-based). *)
let declare t ~db_pages ~ts =
  let b = { pos = t.n_entries; db_pages; ts } in
  if t.n_boundaries >= Array.length t.boundaries then begin
    let a = Array.make (2 * Array.length t.boundaries) b in
    Array.blit t.boundaries 0 a 0 t.n_boundaries;
    t.boundaries <- a
  end;
  t.boundaries.(t.n_boundaries) <- b;
  t.n_boundaries <- t.n_boundaries + 1;
  t.n_boundaries

let snapshot_count t = t.n_boundaries

let first_live t = t.first_live

let boundary t snap_id =
  if snap_id < 1 || snap_id > t.n_boundaries then
    invalid_arg (Printf.sprintf "Maplog.boundary: unknown snapshot %d" snap_id);
  if snap_id < t.first_live then
    invalid_arg (Printf.sprintf "Maplog.boundary: snapshot %d has been vacuumed" snap_id);
  t.boundaries.(snap_id - 1)

(* Boundary slot without the vacuumed guard: positions of vacuumed
   snapshots are stale (compaction shifts only live boundaries), but the
   declaration timestamp stays valid — introspection (sys_snapshots)
   reads it through this. *)
let raw_boundary t snap_id =
  if snap_id < 1 || snap_id > t.n_boundaries then
    invalid_arg (Printf.sprintf "Maplog.raw_boundary: unknown snapshot %d" snap_id);
  t.boundaries.(snap_id - 1)

(* First-occurrence-per-page digest of raw entries [lo, hi). *)
let dedup_range t lo hi =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  for i = lo to hi - 1 do
    let e = t.entries.(i) in
    if not (Hashtbl.mem seen e.pid) then begin
      Hashtbl.add seen e.pid ();
      out := e :: !out
    end
  done;
  Array.of_list (List.rev !out)

(* Digest of the [n]-th full L1 segment (memoized; segments are
   immutable once the log has grown past them).  [_unlocked]: caller
   holds [dg_mu]. *)
let l1_digest_unlocked t n =
  match Hashtbl.find_opt t.l1 n with
  | Some d -> d
  | None ->
    let d = dedup_range t (n * l1_size) ((n + 1) * l1_size) in
    Hashtbl.add t.l1 n d;
    d

(* Digest-memo guard: every dg_mu section takes it (lock-discipline
   lint rule keys on the [Fun.protect] spelling). *)
let locked_dg t f =
  Mutex.lock t.dg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.dg_mu) f

let l1_digest t n = locked_dg t (fun () -> l1_digest_unlocked t n)

(* Digest of the [n]-th L2 segment: the merged first-wins digest of its
   L1 segments. *)
let l2_digest t n =
  locked_dg t @@ fun () ->
  match Hashtbl.find_opt t.l2 n with
    | Some d -> d
    | None ->
      let seen = Hashtbl.create 256 in
      let out = ref [] in
      for k = n * l2_factor to ((n + 1) * l2_factor) - 1 do
        Array.iter
          (fun (e : entry) ->
            if not (Hashtbl.mem seen e.pid) then begin
              Hashtbl.add seen e.pid ();
              out := e :: !out
            end)
          (l1_digest_unlocked t k)
      done;
      let d = Array.of_list (List.rev !out) in
      Hashtbl.add t.l2 n d;
      d

(* Scan the suffix starting at snapshot [snap_id]'s position, calling
   [f pid pl_off] for the *first* mapping of each page only.  Returns the
   number of entries visited (the SPT build cost).

   With [skippy] on, the scan hops to memoized segment digests once it
   reaches a segment boundary — the multi-level skip structure of [23]
   that keeps the scan near n log n instead of proportional to the whole
   history suffix. *)
let scan_from t snap_id ~f =
  let b = boundary t snap_id in
  let seen = Hashtbl.create 256 in
  let visited = ref 0 in
  let visit (e : entry) =
    incr visited;
    if e.pid < b.db_pages && not (Hashtbl.mem seen e.pid) then begin
      Hashtbl.add seen e.pid ();
      f e.pid e.pl_off
    end
  in
  let n = t.n_entries in
  if not t.skippy then
    for i = b.pos to n - 1 do
      visit t.entries.(i)
    done
  else begin
    let l2_span = l1_size * l2_factor in
    let i = ref b.pos in
    while !i < n do
      if !i mod l2_span = 0 && !i + l2_span <= n then begin
        Array.iter visit (l2_digest t (!i / l2_span));
        i := !i + l2_span
      end
      else if !i mod l1_size = 0 && !i + l1_size <= n then begin
        Array.iter visit (l1_digest t (!i / l1_size));
        i := !i + l1_size
      end
      else begin
        visit t.entries.(!i);
        incr i
      end
    done
  end;
  Obs.Scope.add Storage.Stats.c_maplog_scanned !visited;
  !visited

let length t = t.n_entries

let entry t i =
  if i < 0 || i >= t.n_entries then
    invalid_arg (Printf.sprintf "Maplog.entry: index %d out of bounds" i);
  t.entries.(i)

let skippy_enabled t = t.skippy

(* Skip-index footprint: (memoized L1 segments, memoized L2 segments,
   total digest entries held).  Digests are built lazily by scans, so
   these numbers reflect actual SPT-build traffic, not log size. *)
let skippy_stats t =
  locked_dg t (fun () ->
      let sum tbl = Hashtbl.fold (fun _ d acc -> acc + Array.length d) tbl 0 in
      (Hashtbl.length t.l1, Hashtbl.length t.l2, sum t.l1 + sum t.l2))

(* Drop the history prefix before snapshot [keep_from] after a Pagelog
   compaction: keep only the entry suffix from [keep_from]'s boundary,
   rewriting each kept entry's Pagelog offset through [remap] (the
   compaction's old-offset -> new-offset map), shift live boundaries to
   the new origin, and reset the memoized skip digests (they index raw
   entry positions, all of which just moved).  Vacuumed boundary slots
   are left as they are — [boundary] refuses them, [raw_boundary] still
   serves the declaration timestamp.  Returns the number of entries
   dropped.  Caller holds the pager's writer lock (this moves the
   ground under concurrent SPT scans). *)
let compact t ~keep_from ~remap =
  let keep_pos = (boundary t keep_from).pos in
  let n = t.n_entries - keep_pos in
  let entries = Array.make (max 256 n) { pid = 0; pl_off = 0 } in
  for i = 0 to n - 1 do
    let e = t.entries.(keep_pos + i) in
    entries.(i) <- { e with pl_off = remap e.pl_off }
  done;
  t.entries <- entries;
  t.n_entries <- n;
  for s = keep_from to t.n_boundaries do
    let b = t.boundaries.(s - 1) in
    t.boundaries.(s - 1) <- { b with pos = b.pos - keep_pos }
  done;
  t.first_live <- keep_from;
  locked_dg t (fun () ->
      Hashtbl.reset t.l1;
      Hashtbl.reset t.l2);
  keep_pos

(* Portable image (for backup/restore); skip digests are rebuilt on
   demand after restore. *)
type image = {
  img_entries : entry array;
  img_boundaries : boundary array;
  img_first_live : int;
}

let dump t =
  { img_entries = Array.sub t.entries 0 t.n_entries;
    img_boundaries = Array.sub t.boundaries 0 t.n_boundaries;
    img_first_live = t.first_live }

let restore img =
  let t = create () in
  Array.iter (fun e ->
      (* re-append without recounting stats *)
      if t.n_entries >= Array.length t.entries then begin
        let a = Array.make (2 * Array.length t.entries) e in
        Array.blit t.entries 0 a 0 t.n_entries;
        t.entries <- a
      end;
      t.entries.(t.n_entries) <- e;
      t.n_entries <- t.n_entries + 1)
    img.img_entries;
  Array.iter (fun b ->
      if t.n_boundaries >= Array.length t.boundaries then begin
        let a = Array.make (2 * Array.length t.boundaries) b in
        Array.blit t.boundaries 0 a 0 t.n_boundaries;
        t.boundaries <- a
      end;
      t.boundaries.(t.n_boundaries) <- b;
      t.n_boundaries <- t.n_boundaries + 1)
    img.img_boundaries;
  t.first_live <- img.img_first_live;
  t
