(** Maplog: the log-structured list of page-id → Pagelog-location
    mappings (paper §4, [23]).

    A mapping is appended when a page's pre-state is copied out; a
    snapshot declaration records the log position, so SPT(S) is the
    first-mapping-per-page over the suffix starting at S's position.
    Pages absent from the suffix are shared with the current database.

    A Skippy-style skip structure (memoized per-segment digests, [23])
    accelerates the suffix scan for old snapshots; it can be toggled for
    the ablation benchmark. *)

type entry = { pid : int; pl_off : int }

type boundary = {
  pos : int;      (** maplog position at declaration *)
  db_pages : int; (** database size (pages) at declaration *)
  ts : float;     (** declaration timestamp *)
}

type t

val create : unit -> t

(** Enable/disable the skip index (on by default). *)
val set_skippy : t -> bool -> unit

val append : t -> entry -> unit

(** Record a snapshot declaration; returns the new 1-based snapshot
    id. *)
val declare : t -> db_pages:int -> ts:float -> int

val snapshot_count : t -> int

(** Lowest snapshot id still readable (1 until a vacuum drops a
    prefix).  Snapshot ids never renumber. *)
val first_live : t -> int

(** @raise Invalid_argument on an unknown or vacuumed snapshot id. *)
val boundary : t -> int -> boundary

(** Boundary slot without the vacuumed guard: a vacuumed snapshot's
    position is stale, but its declaration timestamp stays valid
    (introspection reads it).
    @raise Invalid_argument on an unknown snapshot id. *)
val raw_boundary : t -> int -> boundary

(** Drop the history prefix before snapshot [keep_from] after a Pagelog
    compaction: keep only the entry suffix from its boundary, rewriting
    kept entries' Pagelog offsets through [remap], shift live boundaries
    to the new origin, reset the skip digests and advance [first_live].
    Returns the number of entries dropped.  Caller holds the pager's
    writer lock.
    @raise Invalid_argument on an unknown or vacuumed [keep_from]. *)
val compact : t -> keep_from:int -> remap:(int -> int) -> int

(** Scan the suffix for snapshot [snap_id], calling [f pid pl_off] for
    the first mapping of each page (pages beyond the declaration-time
    database size are skipped).  Returns the number of entries visited —
    the SPT build cost, accumulated into {!Storage.Stats.global}. *)
val scan_from : t -> int -> f:(int -> int -> unit) -> int

(** Total mappings appended. *)
val length : t -> int

(** Raw log entry at position [i] (archive analysis).
    @raise Invalid_argument out of bounds. *)
val entry : t -> int -> entry

val skippy_enabled : t -> bool

(** Skip-index footprint: (memoized L1 segments, memoized L2 segments,
    total digest entries held).  Digests are built lazily by scans. *)
val skippy_stats : t -> int * int * int

(** {1 Backup} *)

type image = {
  img_entries : entry array;
  img_boundaries : boundary array;
  img_first_live : int;
}

val dump : t -> image

(** Skip digests are rebuilt lazily after restore. *)
val restore : image -> t
