(* Pagelog: the log-structured on-disk archive of copied-out pre-state
   pages (paper §4).  Pre-states are appended as transactions commit and
   fetched by snapshot queries through the snapshot page table.  Lives on
   the simulated SSD (Storage.Disk), whose counters drive the modeled I/O
   costs in the benchmarks. *)

type t = { disk : Storage.Disk.t }

let create () = { disk = Storage.Disk.create ~name:"pagelog" () }

(* Append a pre-state page; returns its Pagelog offset (block index). *)
let append t (page : Bytes.t) = Storage.Disk.append t.disk page

let read t off = Storage.Disk.read t.disk off

let length t = Storage.Disk.length t.disk

(* Offsets of blocks failing their checksum (offline scrub). *)
let verify_all t = Storage.Disk.verify_all t.disk

(* Test hook: flip one bit of an archived block without updating its
   CRC. *)
let corrupt_block t off ~bit = Storage.Disk.corrupt_block t.disk off ~bit

(* Arm fault-injected read errors on the archive device. *)
let set_fault t f = Storage.Disk.set_fault t.disk f

let size_bytes t = Storage.Disk.size_bytes t.disk

let dump t = Storage.Disk.dump t.disk

let restore blocks = { disk = Storage.Disk.restore ~name:"pagelog" blocks }

(* Raw (stored-CRC-preserving) access for compaction and checkpoint
   images: a latent checksum mismatch must survive the copy as a
   mismatch, never be re-blessed by a recomputed CRC. *)
let raw_block t off = Storage.Disk.raw_block t.disk off

let append_raw t b ~crc = Storage.Disk.append_raw t.disk b ~crc

let dump_raw t = Storage.Disk.dump_raw t.disk

let restore_raw pairs = { disk = Storage.Disk.restore_raw ~name:"pagelog" pairs }

(* The attached fault injector (compaction hands it to the replacement
   device so armed faults survive a vacuum). *)
let fault t = Storage.Disk.fault t.disk
