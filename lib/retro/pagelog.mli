(** Pagelog: the log-structured on-disk archive of copied-out pre-state
    pages (paper §4).  Pre-states are appended as transactions commit
    and fetched by snapshot queries through the snapshot page table.
    Lives on the simulated SSD whose counters drive the modeled I/O
    costs. *)

type t

val create : unit -> t

(** Append a pre-state page; returns its Pagelog offset. *)
val append : t -> Bytes.t -> int

val read : t -> int -> Bytes.t

(** Pages archived so far. *)
val length : t -> int

val size_bytes : t -> int

(** Offsets of archived blocks failing their checksum (offline scrub:
    no counters, no fault injection). *)
val verify_all : t -> int list

(** Test hook: flip one bit of an archived block without updating its
    CRC. *)
val corrupt_block : t -> int -> bit:int -> unit

(** Arm fault-injected read errors on the archive device. *)
val set_fault : t -> Storage.Fault.t option -> unit

(** {1 Backup} *)

val dump : t -> Bytes.t array
val restore : Bytes.t array -> t
