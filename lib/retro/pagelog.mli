(** Pagelog: the log-structured on-disk archive of copied-out pre-state
    pages (paper §4).  Pre-states are appended as transactions commit
    and fetched by snapshot queries through the snapshot page table.
    Lives on the simulated SSD whose counters drive the modeled I/O
    costs. *)

type t

val create : unit -> t

(** Append a pre-state page; returns its Pagelog offset. *)
val append : t -> Bytes.t -> int

val read : t -> int -> Bytes.t

(** Pages archived so far. *)
val length : t -> int

val size_bytes : t -> int

(** Offsets of archived blocks failing their checksum (offline scrub:
    no counters, no fault injection). *)
val verify_all : t -> int list

(** Test hook: flip one bit of an archived block without updating its
    CRC. *)
val corrupt_block : t -> int -> bit:int -> unit

(** Arm fault-injected read errors on the archive device. *)
val set_fault : t -> Storage.Fault.t option -> unit

(** The attached fault injector, if any (compaction hands it to the
    replacement device so armed faults survive a vacuum). *)
val fault : t -> Storage.Fault.t option

(** {1 Backup} *)

val dump : t -> Bytes.t array
val restore : Bytes.t array -> t

(** {1 Raw (stored-CRC-preserving) access}

    Compaction and checkpoint images copy blocks with these so a latent
    checksum mismatch survives the copy as a mismatch (see
    {!Storage.Disk.raw_block}). *)

val raw_block : t -> int -> Bytes.t * int
val append_raw : t -> Bytes.t -> crc:int -> int
val dump_raw : t -> (Bytes.t * int) array
val restore_raw : (Bytes.t * int) array -> t
