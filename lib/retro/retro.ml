(* Retro: page-level copy-on-write snapshots for the storage manager
   (paper §4; Shaull et al. [21-23]).

   Retro interposes on transaction commit: the first time a page is
   modified after a snapshot declaration, its pre-state is copied out to
   the Pagelog and a mapping is appended to the Maplog.  A pre-state
   archived at epoch e is shared by every snapshot declared since the
   page's previous archiving — the Maplog suffix scan recovers exactly
   this sharing.  Snapshot queries fetch mapped pages from the Pagelog
   (through the snapshot page cache) and unmapped pages from the current
   database, which is how recent snapshots become cheap to read. *)

(* Re-export the submodules: [retro.ml] is the library root, so they are
   only reachable through it. *)
module Pagelog = Pagelog
module Maplog = Maplog
module Spt = Spt

type t = {
  pagelog : Pagelog.t;
  maplog : Maplog.t;
  pager : Storage.Pager.t;
  mutable saved_epoch : int array; (* per page: last epoch whose pre-state is archived *)
  snap_cache : Bytes.t Storage.Lru.t; (* keyed by pagelog offset *)
  mutable clock : unit -> float; (* timestamp source for SnapIds entries *)
}

let default_cache_pages = 1 lsl 16

let saved_epoch t pid = if pid < Array.length t.saved_epoch then t.saved_epoch.(pid) else 0

let set_saved_epoch t pid e =
  if pid >= Array.length t.saved_epoch then begin
    let a = Array.make (max (2 * Array.length t.saved_epoch) (pid + 1)) 0 in
    Array.blit t.saved_epoch 0 a 0 (Array.length t.saved_epoch);
    t.saved_epoch <- a
  end;
  t.saved_epoch.(pid) <- e

let current_epoch t = Maplog.snapshot_count t.maplog

(* The commit interposition: archive pre-states for pages modified for
   the first time since the latest snapshot declaration. *)
let on_commit t (events : Storage.Pager.commit_event list) =
  let epoch = current_epoch t in
  if epoch > 0 then
    List.iter
      (fun (ev : Storage.Pager.commit_event) ->
        match ev.before with
        | None -> () (* page id did not exist in any snapshot *)
        | Some before ->
          if saved_epoch t ev.pid < epoch then begin
            let off = Pagelog.append t.pagelog before in
            Maplog.append t.maplog { Maplog.pid = ev.pid; pl_off = off };
            set_saved_epoch t ev.pid epoch;
            Obs.Metrics.Counter.incr Storage.Stats.c_cow_archived
          end)
      events

(* Attach a Retro instance to a pager, interposing on commit. *)
let attach ?(cache_pages = default_cache_pages) pager =
  let t =
    { pagelog = Pagelog.create ();
      maplog = Maplog.create ();
      pager;
      saved_epoch = Array.make 256 0;
      snap_cache = Storage.Lru.create cache_pages;
      clock = Unix.gettimeofday }
  in
  pager.Storage.Pager.pre_commit_hook <- on_commit t;
  t

(* Declare a snapshot reflecting the current committed state (called by
   COMMIT WITH SNAPSHOT just after the transaction installs).  Returns
   the new snapshot identifier. *)
let declare t =
  Maplog.declare t.maplog ~db_pages:(Storage.Pager.n_pages t.pager) ~ts:(t.clock ())

let snapshot_count t = Maplog.snapshot_count t.maplog

let snapshot_ts t snap_id = (Maplog.boundary t.maplog snap_id).Maplog.ts

(* Wrapped in a trace span: SPT construction is one of the paper's
   attributed cost components, and the span lets EXPLAIN PROFILE and
   trace dumps show it nested under the statement / RQL iteration. *)
let build_spt t snap_id =
  Obs.Trace.with_span ~name:"spt_build"
    ~attrs:[ ("snap_id", Obs.Trace.Int snap_id) ]
    (fun () ->
      let scanned0 = Obs.Metrics.Counter.get Storage.Stats.c_maplog_scanned in
      let spt = Spt.build t.maplog snap_id in
      Obs.Trace.set_attrs
        [ ("maplog_scanned",
           Obs.Trace.Int (Obs.Metrics.Counter.get Storage.Stats.c_maplog_scanned - scanned0)) ];
      spt)

(* Toggle the Skippy skip index on the Maplog (on by default); the
   ablation benchmark compares SPT-build costs with and without it. *)
let set_skippy t on = Maplog.set_skippy t.maplog on

(* Fetch page [pid] as of the snapshot described by [spt]. *)
let read_page t (spt : Spt.t) pid =
  if not (Spt.in_snapshot spt pid) then
    invalid_arg
      (Printf.sprintf "Retro.read_page: page %d beyond snapshot %d (db_pages=%d)" pid
         spt.Spt.snap_id spt.Spt.db_pages);
  match Spt.find spt pid with
  | Some off -> (
    match Storage.Lru.find t.snap_cache off with
    | Some page ->
      Obs.Metrics.Counter.incr Storage.Stats.c_snap_cache_hits;
      page
    | None ->
      Obs.Metrics.Counter.incr Storage.Stats.c_snap_cache_misses;
      let page = Pagelog.read t.pagelog off in
      Storage.Lru.add t.snap_cache off page;
      page)
  | None ->
    (* Shared with the current database: served from memory. *)
    Storage.Pager.read_committed t.pager pid

let read_ctx t spt : Storage.Pager.read = fun pid -> read_page t spt pid

(* Empty the snapshot page cache: the paper's experiments assume the
   cache is cold at the start of each RQL query. *)
let clear_cache t = Storage.Lru.clear t.snap_cache

let set_cache_pages t n = Storage.Lru.set_capacity t.snap_cache n

let pagelog_size_bytes t = Pagelog.size_bytes t.pagelog
let maplog_length t = Maplog.length t.maplog

(* --- backup/restore ----------------------------------------------------- *)

(* Portable image of the whole snapshot system: the archive, the mapping
   log and the per-page COW bookkeeping. *)
type image = {
  img_pagelog : Bytes.t array;
  img_maplog : Maplog.image;
  img_saved_epoch : int array;
}

let export t =
  { img_pagelog = Pagelog.dump t.pagelog;
    img_maplog = Maplog.dump t.maplog;
    img_saved_epoch = Array.copy t.saved_epoch }

(* Attach a restored snapshot system to a (restored) pager. *)
let import ?(cache_pages = default_cache_pages) pager img =
  let t =
    { pagelog = Pagelog.restore img.img_pagelog;
      maplog = Maplog.restore img.img_maplog;
      pager;
      saved_epoch = Array.copy img.img_saved_epoch;
      snap_cache = Storage.Lru.create cache_pages;
      clock = Unix.gettimeofday }
  in
  pager.Storage.Pager.pre_commit_hook <- on_commit t;
  t
