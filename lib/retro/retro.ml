(* Retro: page-level copy-on-write snapshots for the storage manager
   (paper §4; Shaull et al. [21-23]).

   Retro interposes on transaction commit: the first time a page is
   modified after a snapshot declaration, its pre-state is copied out to
   the Pagelog and a mapping is appended to the Maplog.  A pre-state
   archived at epoch e is shared by every snapshot declared since the
   page's previous archiving — the Maplog suffix scan recovers exactly
   this sharing.  Snapshot queries fetch mapped pages from the Pagelog
   (through the snapshot page cache) and unmapped pages from the current
   database, which is how recent snapshots become cheap to read. *)

(* Re-export the submodules: [retro.ml] is the library root, so they are
   only reachable through it. *)
module Pagelog = Pagelog
module Maplog = Maplog
module Spt = Spt

type t = {
  (* [pagelog] is mutable for exactly one writer: [vacuum] installs the
     compacted replacement device under the pager's writer lock. *)
  mutable pagelog : Pagelog.t;
  maplog : Maplog.t;
  pager : Storage.Pager.t;
  mutable saved_epoch : int array; (* per page: last epoch whose pre-state is archived *)
  snap_cache : Bytes.t Storage.Lru.t; (* keyed by pagelog offset *)
  mutable clock : unit -> float; (* timestamp source for SnapIds entries *)
  mutable last_spt : (int * int) option;
      (* (snap_id, maplog length) of the most recently built SPT; a
         record only — build_spt never reuses it — so introspection can
         report whether a snapshot's SPT is current without perturbing
         the measured build costs. *)
  damaged : (int, unit) Hashtbl.t;
      (* snapshots known to reference a corrupt Pagelog block; their AS
         OF reads fail typed, everything else keeps working *)
  (* Guards the shared read-side mutable state: the snapshot page cache
     (Lru.find reorders its recency list even on hits), the damaged set
     and the SPT cache.  Never held across Pagelog reads — the simulated
     device may sleep there (Cost_model.real_read_latency). *)
  rt_mu : Mutex.t;
  (* Opt-in cross-session SPT cache: snap_id -> (maplog length at
     build, SPT).  Off by default so the paper's SPT-build cost
     attribution is untouched; concurrent AS OF readers (bench, server)
     turn it on to share builds of the same declared snapshot. *)
  mutable spt_cache_on : bool;
  spt_cache : (int, int * Spt.t) Hashtbl.t;
}

exception Snapshot_damaged of { snap_id : int; pl_off : int; reason : string }
(** An [AS OF] read hit a corrupt or unreadable archived page.  The
    failure is scoped: only snapshots whose SPT references the bad
    block raise; current-state queries and other snapshots are
    unaffected. *)

let default_cache_pages = 1 lsl 16

let saved_epoch t pid = if pid < Array.length t.saved_epoch then t.saved_epoch.(pid) else 0

let set_saved_epoch t pid e =
  if pid >= Array.length t.saved_epoch then begin
    let a = Array.make (max (2 * Array.length t.saved_epoch) (pid + 1)) 0 in
    Array.blit t.saved_epoch 0 a 0 (Array.length t.saved_epoch);
    t.saved_epoch <- a
  end;
  t.saved_epoch.(pid) <- e

let current_epoch t = Maplog.snapshot_count t.maplog

(* The commit interposition: archive pre-states for pages modified for
   the first time since the latest snapshot declaration. *)
let on_commit t (events : Storage.Pager.commit_event list) =
  let epoch = current_epoch t in
  if epoch > 0 then
    List.iter
      (fun (ev : Storage.Pager.commit_event) ->
        match ev.before with
        | None -> () (* page id did not exist in any snapshot *)
        | Some before ->
          if saved_epoch t ev.pid < epoch then begin
            let off = Pagelog.append t.pagelog before in
            Maplog.append t.maplog { Maplog.pid = ev.pid; pl_off = off };
            set_saved_epoch t ev.pid epoch;
            Obs.Scope.incr Storage.Stats.c_cow_archived
          end)
      events

(* Attach a Retro instance to a pager, interposing on commit. *)
let attach ?(cache_pages = default_cache_pages) pager =
  let t =
    { pagelog = Pagelog.create ();
      maplog = Maplog.create ();
      pager;
      saved_epoch = Array.make 256 0;
      snap_cache = Storage.Lru.create cache_pages;
      clock = Unix.gettimeofday;
      last_spt = None;
      damaged = Hashtbl.create 4;
      rt_mu = Mutex.create ();
      spt_cache_on = false;
      spt_cache = Hashtbl.create 16 }
  in
  pager.Storage.Pager.pre_commit_hook <- on_commit t;
  t

(* Declare a snapshot reflecting the current committed state (called by
   COMMIT WITH SNAPSHOT just after the transaction installs).  Returns
   the new snapshot identifier.  When a WAL is attached, the boundary is
   logged and made durable — the archive appends themselves are not
   logged, because replaying the commit/declare sequence reproduces
   them. *)
let declare t =
  (* A declaration moves the maplog boundary concurrent SPT builds scan
     against: run it as the pager's writer, like a commit body. *)
  Storage.Pager.with_write_lock t.pager (fun () ->
      let snap_id =
        Maplog.declare t.maplog ~db_pages:(Storage.Pager.n_pages t.pager) ~ts:(t.clock ())
      in
      (match t.pager.Storage.Pager.wal with
       | Some w ->
         let b = Maplog.boundary t.maplog snap_id in
         w.Storage.Pager.wal_declare ~db_pages:b.Maplog.db_pages ~ts:b.Maplog.ts;
         w.Storage.Pager.wal_barrier ()
       | None -> ());
      snap_id)

(* Replay path: re-declare a snapshot with its WAL-logged boundary
   values.  Never logged (the record being replayed IS the log);
   [db_pages] comes from the record rather than the replayed pager,
   whose n_pages can legitimately differ (aborted reservations grow it
   without ever reaching the log). *)
let declare_at t ~db_pages ~ts = Maplog.declare t.maplog ~db_pages ~ts

(* Every rt_mu section goes through this guard: the lock is released on
   any exit path, and the lint gate's lock-discipline rule keys on the
   [Fun.protect] spelling.  Keep the guarded closure free of Pagelog
   reads — the simulated device may sleep there. *)
let locked_rt t f =
  Mutex.lock t.rt_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.rt_mu) f

let snapshot_count t = Maplog.snapshot_count t.maplog

(* Lowest snapshot id still readable; ids below it were vacuumed.
   Snapshot ids never renumber, so [first_live]..[snapshot_count] is
   exactly the readable range. *)
let first_live t = Maplog.first_live t.maplog

let live_snapshot_count t = Maplog.snapshot_count t.maplog - Maplog.first_live t.maplog + 1

let is_vacuumed t snap_id =
  snap_id >= 1 && snap_id <= Maplog.snapshot_count t.maplog
  && snap_id < Maplog.first_live t.maplog

let snapshot_ts t snap_id = (Maplog.boundary t.maplog snap_id).Maplog.ts

(* Declaration timestamp that also works for vacuumed snapshots (their
   boundary slots keep it); sys_snapshots reads this. *)
let snapshot_ts_raw t snap_id = (Maplog.raw_boundary t.maplog snap_id).Maplog.ts

(* Wrapped in a trace span: SPT construction is one of the paper's
   attributed cost components, and the span lets EXPLAIN PROFILE and
   trace dumps show it nested under the statement / RQL iteration. *)
let build_spt t snap_id =
  let cached =
    if not t.spt_cache_on then None
    else begin
      locked_rt t (fun () ->
          match Hashtbl.find_opt t.spt_cache snap_id with
          | Some (len, spt) when len = Maplog.length t.maplog -> Some spt
          | _ -> None)
    end
  in
  match cached with
  | Some spt -> spt
  | None ->
    Obs.Trace.with_span ~name:"spt_build"
      ~attrs:[ ("snap_id", Obs.Trace.Int snap_id) ]
      (fun () ->
        let scanned0 = Obs.Scope.get Storage.Stats.c_maplog_scanned in
        let spt = Spt.build t.maplog snap_id in
        Obs.Trace.set_attrs
          [ ("maplog_scanned",
             Obs.Trace.Int (Obs.Scope.get Storage.Stats.c_maplog_scanned - scanned0)) ];
        let len = Maplog.length t.maplog in
        t.last_spt <- Some (snap_id, len);
        if t.spt_cache_on then
          locked_rt t (fun () -> Hashtbl.replace t.spt_cache snap_id (len, spt));
        spt)

(* Enable/disable sharing built SPTs across sessions (declared
   snapshots are immutable, so a cached SPT is valid until the maplog
   grows).  Off by default: caching would hide the per-iteration SPT
   build cost the paper attributes. *)
let set_spt_cache t on =
  locked_rt t (fun () ->
      t.spt_cache_on <- on;
      if not on then Hashtbl.reset t.spt_cache)

(* Whether the most recently built SPT belongs to [snap_id] and is still
   current (no mappings appended since the build).  Reported by
   sys_snapshots. *)
let spt_cached t snap_id =
  match t.last_spt with
  | Some (sid, len) -> sid = snap_id && len = Maplog.length t.maplog
  | None -> false

(* Toggle the Skippy skip index on the Maplog (on by default); the
   ablation benchmark compares SPT-build costs with and without it. *)
let set_skippy t on = Maplog.set_skippy t.maplog on

(* --- damage tracking ----------------------------------------------------- *)

let mark_damaged t snap_id = locked_rt t (fun () -> Hashtbl.replace t.damaged snap_id ())

let is_damaged t snap_id = locked_rt t (fun () -> Hashtbl.mem t.damaged snap_id)

let damaged_snapshots t =
  let l = locked_rt t (fun () -> Hashtbl.fold (fun s () acc -> s :: acc) t.damaged []) in
  List.sort compare l

(* Fetch page [pid] as of the snapshot described by [spt].  A corrupt
   archived block fails only this snapshot (typed, and recorded as
   damaged) — never a silently-wrong page. *)
let read_page t (spt : Spt.t) pid =
  if not (Spt.in_snapshot spt pid) then
    invalid_arg
      (Printf.sprintf "Retro.read_page: page %d beyond snapshot %d (db_pages=%d)" pid
         spt.Spt.snap_id spt.Spt.db_pages);
  match Spt.find spt pid with
  | Some off -> (
    (* Lru.find reorders the recency list even on a hit: lock around
       cache probes and inserts, but never across the Pagelog read —
       that is where the simulated device may sleep, and concurrent
       readers overlapping those sleeps is the whole point. *)
    let hit = locked_rt t (fun () -> Storage.Lru.find t.snap_cache off) in
    match hit with
    | Some page ->
      Obs.Scope.incr Storage.Stats.c_snap_cache_hits;
      page
    | None ->
      Obs.Scope.incr Storage.Stats.c_snap_cache_misses;
      (match Pagelog.read t.pagelog off with
       | page ->
         locked_rt t (fun () -> Storage.Lru.add t.snap_cache off page);
         page
       | exception Storage.Disk.Corruption { block; detail; _ } ->
         Obs.Scope.incr Storage.Stats.c_checksum_failures;
         mark_damaged t spt.Spt.snap_id;
         raise
           (Snapshot_damaged
              { snap_id = spt.Spt.snap_id; pl_off = block; reason = detail })
       | exception Storage.Disk.Read_error { block; _ } ->
         raise
           (Snapshot_damaged
              { snap_id = spt.Spt.snap_id; pl_off = block; reason = "read error" })))
  | None ->
    (* Shared with the current database: served from memory. *)
    Storage.Pager.read_committed t.pager pid

let read_ctx t spt : Storage.Pager.read = fun pid -> read_page t spt pid

(* Empty the snapshot page cache: the paper's experiments assume the
   cache is cold at the start of each RQL query. *)
let clear_cache t =
  locked_rt t (fun () ->
      Storage.Lru.clear t.snap_cache;
      Hashtbl.reset t.spt_cache)

let set_cache_pages t n = locked_rt t (fun () -> Storage.Lru.set_capacity t.snap_cache n)

(* Per-instance snapshot-cache statistics; also refreshes the
   corresponding gauges in the metrics registry so Prometheus scrapes
   and sys_metrics see current occupancy. *)
let g_cache_capacity = Obs.Metrics.gauge "retro.snap_cache.capacity"
let g_cache_occupancy = Obs.Metrics.gauge "retro.snap_cache.occupancy"
let g_cache_evictions = Obs.Metrics.gauge "retro.snap_cache.evictions"

let cache_stats t =
  let s = locked_rt t (fun () -> Storage.Lru.stat_record t.snap_cache) in
  Obs.Metrics.Gauge.set g_cache_capacity (float_of_int s.Storage.Lru.s_capacity);
  Obs.Metrics.Gauge.set g_cache_occupancy (float_of_int s.Storage.Lru.s_occupancy);
  Obs.Metrics.Gauge.set g_cache_evictions (float_of_int s.Storage.Lru.s_evictions);
  s

let pagelog_size_bytes t = Pagelog.size_bytes t.pagelog
let maplog_length t = Maplog.length t.maplog

(* --- archive health analysis (ANALYZE ARCHIVE, sys_snapshots) ----------- *)

(* Per-snapshot view of the archive: its Maplog boundary, the size of
   its SPT, and the delta (pages archived during its epoch, i.e. between
   its declaration and the next one). *)
type snapshot_info = {
  si_id : int;
  si_ts : float;
  si_boundary : int;      (* maplog position at declaration *)
  si_db_pages : int;      (* database size (pages) at declaration *)
  si_pages_mapped : int;  (* |SPT|: distinct mapped pages in the suffix *)
  si_delta_entries : int; (* mappings appended during this snapshot's epoch *)
  si_delta_pages : int;   (* distinct pages among them *)
  si_delta_bytes : int;   (* pre-state bytes archived during the epoch *)
}

type analysis = {
  an_snapshots : snapshot_info array; (* live (non-vacuumed) snapshots, oldest first *)
  an_maplog_entries : int;
  an_pagelog_pages : int;
  an_pagelog_bytes : int;
  an_db_pages : int;
  an_distinct_pages : int;            (* pages with at least one archived pre-state *)
  an_chain_max : int;                 (* longest page version chain *)
  an_chain_mean : float;              (* mean chain length over archived pages *)
  an_space_amplification : float;     (* archived copies per distinct archived page *)
  an_skippy_enabled : bool;
  an_skippy_l1 : int;                 (* memoized L1 segment digests *)
  an_skippy_l2 : int;
  an_skippy_entries : int;            (* total digest entries held *)
}

(* Scan the Maplog once (plus one backward pass for SPT sizes) and
   aggregate the archive's health picture.  Costs O(entries +
   snapshots * distinct pages); independent of the Pagelog contents, so
   it never touches the simulated SSD. *)
let analyze t =
  let n = Maplog.length t.maplog in
  let count = Maplog.snapshot_count t.maplog in
  let fl = Maplog.first_live t.maplog in
  (* page version-chain lengths over the whole log *)
  let chains : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  for i = 0 to n - 1 do
    let e = Maplog.entry t.maplog i in
    Hashtbl.replace chains e.Maplog.pid
      (1 + Option.value (Hashtbl.find_opt chains e.Maplog.pid) ~default:0)
  done;
  let distinct = Hashtbl.length chains in
  let chain_max = Hashtbl.fold (fun _ c acc -> max c acc) chains 0 in
  let chain_mean = if distinct = 0 then 0. else float_of_int n /. float_of_int distinct in
  (* per-snapshot SPT sizes: walk the log backwards, accumulating the
     distinct-pid set; at each boundary the set is exactly the suffix's
     first-occurrence domain *)
  let pages_mapped = Array.make (count + 1) 0 in
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let idx = ref (n - 1) in
  for s = count downto fl do
    let b = Maplog.boundary t.maplog s in
    while !idx >= b.Maplog.pos do
      Hashtbl.replace seen (Maplog.entry t.maplog !idx).Maplog.pid ();
      decr idx
    done;
    pages_mapped.(s) <-
      Hashtbl.fold (fun pid () acc -> if pid < b.Maplog.db_pages then acc + 1 else acc) seen 0
  done;
  let snapshots =
    Array.init (count - fl + 1) (fun i ->
        let s = fl + i in
        let b = Maplog.boundary t.maplog s in
        let next = if s = count then n else (Maplog.boundary t.maplog (s + 1)).Maplog.pos in
        let delta : (int, unit) Hashtbl.t = Hashtbl.create 64 in
        for j = b.Maplog.pos to next - 1 do
          Hashtbl.replace delta (Maplog.entry t.maplog j).Maplog.pid ()
        done;
        { si_id = s;
          si_ts = b.Maplog.ts;
          si_boundary = b.Maplog.pos;
          si_db_pages = b.Maplog.db_pages;
          si_pages_mapped = pages_mapped.(s);
          si_delta_entries = next - b.Maplog.pos;
          si_delta_pages = Hashtbl.length delta;
          si_delta_bytes = (next - b.Maplog.pos) * Storage.Page.size })
  in
  let l1, l2, skippy_entries = Maplog.skippy_stats t.maplog in
  { an_snapshots = snapshots;
    an_maplog_entries = n;
    an_pagelog_pages = Pagelog.length t.pagelog;
    an_pagelog_bytes = Pagelog.size_bytes t.pagelog;
    an_db_pages = Storage.Pager.n_pages t.pager;
    an_distinct_pages = distinct;
    an_chain_max = chain_max;
    an_chain_mean = chain_mean;
    an_space_amplification =
      (if distinct = 0 then 0. else float_of_int n /. float_of_int distinct);
    an_skippy_enabled = Maplog.skippy_enabled t.maplog;
    an_skippy_l1 = l1;
    an_skippy_l2 = l2;
    an_skippy_entries = skippy_entries }

(* Human-readable ANALYZE ARCHIVE report. *)
let render_analysis (a : analysis) : string list =
  let mb b = float_of_int b /. 1e6 in
  [ Printf.sprintf "snapshots: %d" (Array.length a.an_snapshots);
    Printf.sprintf "maplog entries: %d" a.an_maplog_entries;
    Printf.sprintf "pagelog: %d pages, %d bytes (%.2f MB)" a.an_pagelog_pages
      a.an_pagelog_bytes (mb a.an_pagelog_bytes);
    Printf.sprintf "current database: %d pages (%.2f MB)" a.an_db_pages
      (mb (a.an_db_pages * Storage.Page.size));
    Printf.sprintf "archived pages: %d distinct, chain length mean %.2f max %d"
      a.an_distinct_pages a.an_chain_mean a.an_chain_max;
    Printf.sprintf "space amplification: %.2f archived copies per archived page"
      a.an_space_amplification;
    Printf.sprintf "skippy: %s, %d L1 + %d L2 segment digests, %d digest entries"
      (if a.an_skippy_enabled then "on" else "off")
      a.an_skippy_l1 a.an_skippy_l2 a.an_skippy_entries ]
  @ (Array.to_list a.an_snapshots
    |> List.map (fun si ->
           Printf.sprintf
             "snapshot %d: boundary=%d db_pages=%d spt=%d delta=%d pages (%.2f MB)%s"
             si.si_id si.si_boundary si.si_db_pages si.si_pages_mapped si.si_delta_pages
             (mb si.si_delta_bytes)
             (if si.si_delta_entries <> si.si_delta_pages then
                Printf.sprintf " entries=%d" si.si_delta_entries
              else "")))

(* --- archive scrub (corruption -> affected snapshots) ------------------- *)

(* Verify every Pagelog block and map each corrupt one to the snapshots
   whose SPT references it.  Returns (snap_id, pl_off) problems, sorted,
   and marks those snapshots damaged.

   A snapshot s references maplog entry j (mapping pid -> pl_off) iff j
   is the first occurrence of pid at or after s's boundary and pid
   existed at declaration: prev_occ(j) < boundary(s).pos <= j and
   pid < boundary(s).db_pages.  Computed with one forward pass for
   previous occurrences — deliberately not via Maplog.scan_from, which
   would distort the maplog_scanned counter the benchmarks attribute to
   SPT builds. *)
let scrub t =
  let bad = Pagelog.verify_all t.pagelog in
  if bad = [] then []
  else begin
    let bad_offs = Hashtbl.create 8 in
    List.iter (fun off -> Hashtbl.replace bad_offs off ()) bad;
    let n = Maplog.length t.maplog in
    let last_occ : (int, int) Hashtbl.t = Hashtbl.create 256 in
    (* (maplog index, pid, pl_off, previous occurrence of pid or -1) *)
    let bad_entries = ref [] in
    for j = 0 to n - 1 do
      let e = Maplog.entry t.maplog j in
      if Hashtbl.mem bad_offs e.Maplog.pl_off then
        bad_entries :=
          ( j,
            e.Maplog.pid,
            e.Maplog.pl_off,
            Option.value (Hashtbl.find_opt last_occ e.Maplog.pid) ~default:(-1) )
          :: !bad_entries;
      Hashtbl.replace last_occ e.Maplog.pid j
    done;
    let problems = ref [] in
    for s = Maplog.snapshot_count t.maplog downto Maplog.first_live t.maplog do
      let b = Maplog.boundary t.maplog s in
      List.iter
        (fun (j, pid, off, prev) ->
          if b.Maplog.pos <= j && prev < b.Maplog.pos && pid < b.Maplog.db_pages then begin
            mark_damaged t s;
            problems := (s, off) :: !problems
          end)
        !bad_entries
    done;
    List.sort_uniq compare !problems
  end

(* --- vacuum: drop a history prefix and compact the Pagelog --------------- *)

type vacuum_result = {
  vr_snapshots : int; (* snapshots dropped *)
  vr_blocks : int;    (* pagelog blocks reclaimed *)
  vr_bytes : int;     (* = vr_blocks * page size *)
}

(* Pagelog blocks that would be reclaimed by [vacuum ~keep_from]: the
   entries before [keep_from]'s boundary, each of which owns exactly one
   archived block (appends are 1:1 with mappings).  This is the dry-run
   estimate, and the live run reclaims exactly this many blocks. *)
let reclaimable_blocks t ~keep_from =
  (Maplog.boundary t.maplog keep_from).Maplog.pos
  - (Maplog.boundary t.maplog (Maplog.first_live t.maplog)).Maplog.pos

(* Drop every snapshot below [keep_from] and compact the archive.
   Retention is prefix-only (a snapshot's pages may be shared with every
   older snapshot, so dropping from the middle cannot reclaim), and
   surviving snapshots keep their ids and their exact page images.

   The rewrite builds a fresh device on the side — raw block copies, so
   a latent checksum mismatch in a *surviving* snapshot stays detectable
   while mismatches confined to dropped snapshots are reclaimed — and
   only then installs it together with the compacted Maplog: a crash
   anywhere before the install point leaves the in-memory archive
   untouched, and durability of the installed state comes from the
   checkpoint the caller (Db.vacuum_snapshots) takes right after.

   [tick] is called once per copied block and once before the install —
   the crash matrix's mid-rewrite / pre-install injection points.

   Caller must hold the pager's writer lock: readers never observe a
   half-compacted archive. *)
let vacuum ?(tick = fun () -> ()) t ~keep_from =
  let count = Maplog.snapshot_count t.maplog in
  let fl = Maplog.first_live t.maplog in
  if keep_from < 1 || keep_from > count then
    invalid_arg (Printf.sprintf "Retro.vacuum: unknown snapshot %d" keep_from);
  if keep_from < fl then
    invalid_arg (Printf.sprintf "Retro.vacuum: snapshot %d has been vacuumed" keep_from);
  if keep_from = fl then { vr_snapshots = 0; vr_blocks = 0; vr_bytes = 0 }
  else begin
    let keep_pos = (Maplog.boundary t.maplog keep_from).Maplog.pos in
    let fresh = Pagelog.restore_raw [||] in
    Pagelog.set_fault fresh (Pagelog.fault t.pagelog);
    let remap : (int, int) Hashtbl.t = Hashtbl.create 1024 in
    let n = Maplog.length t.maplog in
    for i = keep_pos to n - 1 do
      tick ();
      let e = Maplog.entry t.maplog i in
      if not (Hashtbl.mem remap e.Maplog.pl_off) then begin
        let b, crc = Pagelog.raw_block t.pagelog e.Maplog.pl_off in
        let off = Pagelog.append_raw fresh b ~crc in
        Hashtbl.add remap e.Maplog.pl_off off
      end
    done;
    let reclaimed = Pagelog.length t.pagelog - Pagelog.length fresh in
    tick (); (* pre-install point: the old archive is still whole *)
    ignore (Maplog.compact t.maplog ~keep_from ~remap:(fun off -> Hashtbl.find remap off));
    t.pagelog <- fresh;
    t.last_spt <- None;
    locked_rt t (fun () ->
        Storage.Lru.clear t.snap_cache;
        Hashtbl.reset t.spt_cache;
        let stale =
          Hashtbl.fold (fun s () acc -> if s < keep_from then s :: acc else acc) t.damaged []
        in
        List.iter (fun s -> Hashtbl.remove t.damaged s) stale);
    let dropped = keep_from - fl in
    Obs.Scope.add Storage.Stats.c_snapshots_vacuumed dropped;
    Obs.Scope.add Storage.Stats.c_blocks_reclaimed reclaimed;
    { vr_snapshots = dropped;
      vr_blocks = reclaimed;
      vr_bytes = reclaimed * Storage.Page.size }
  end

(* Test hooks on the archive device (Pagelog/Maplog are private to this
   library; fault-injection tests reach them through these). *)
let corrupt_archive_block t off ~bit = Pagelog.corrupt_block t.pagelog off ~bit
let set_archive_fault t f = Pagelog.set_fault t.pagelog f
let verify_archive t = Pagelog.verify_all t.pagelog
let archive_device = "pagelog"

(* --- backup/restore ----------------------------------------------------- *)

(* Portable image of the whole snapshot system: the archive, the mapping
   log and the per-page COW bookkeeping. *)
type image = {
  img_pagelog : Bytes.t array;
  img_maplog : Maplog.image;
  img_saved_epoch : int array;
}

let export t =
  { img_pagelog = Pagelog.dump t.pagelog;
    img_maplog = Maplog.dump t.maplog;
    img_saved_epoch = Array.copy t.saved_epoch }

(* Raw image for checkpoints: blocks carry their *stored* CRCs, so a
   latent archive corruption survives a checkpoint/restore round trip as
   a corruption (the post-recovery scrub re-finds it) instead of being
   blessed by a recomputed checksum, as [export]'s bytes-only image
   would do. *)
type raw_image = {
  ri_pagelog : (Bytes.t * int) array; (* (block bytes, stored CRC) *)
  ri_maplog : Maplog.image;
  ri_saved_epoch : int array;
}

let export_raw t =
  { ri_pagelog = Pagelog.dump_raw t.pagelog;
    ri_maplog = Maplog.dump t.maplog;
    ri_saved_epoch = Array.copy t.saved_epoch }

let import_raw ?(cache_pages = default_cache_pages) pager img =
  let t =
    { pagelog = Pagelog.restore_raw img.ri_pagelog;
      maplog = Maplog.restore img.ri_maplog;
      pager;
      saved_epoch = Array.copy img.ri_saved_epoch;
      snap_cache = Storage.Lru.create cache_pages;
      clock = Unix.gettimeofday;
      last_spt = None;
      damaged = Hashtbl.create 4;
      rt_mu = Mutex.create ();
      spt_cache_on = false;
      spt_cache = Hashtbl.create 16 }
  in
  pager.Storage.Pager.pre_commit_hook <- on_commit t;
  t

(* Attach a restored snapshot system to a (restored) pager. *)
let import ?(cache_pages = default_cache_pages) pager img =
  let t =
    { pagelog = Pagelog.restore img.img_pagelog;
      maplog = Maplog.restore img.img_maplog;
      pager;
      saved_epoch = Array.copy img.img_saved_epoch;
      snap_cache = Storage.Lru.create cache_pages;
      clock = Unix.gettimeofday;
      last_spt = None;
      damaged = Hashtbl.create 4;
      rt_mu = Mutex.create ();
      spt_cache_on = false;
      spt_cache = Hashtbl.create 16 }
  in
  pager.Storage.Pager.pre_commit_hook <- on_commit t;
  t
