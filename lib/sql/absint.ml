(* Abstract interpretation over plan expression trees.

   The simplifier rewrites an expression into an equivalent one using a
   value lattice with two kinds of facts:

     - constancy: an expression proven to evaluate to exactly one value
       for every row and parameter binding is replaced by that literal.
       The proof is by construction: a node whose children are all
       literals is handed to [Expr.eval_const] — the real evaluator —
       so a folded result is byte-identical to the unoptimized one.
       Null-ness is the [Lit Null] point of this lattice, propagated
       through the evaluator's strict positions (arithmetic,
       comparisons, LIKE, BETWEEN, ||) without needing the other
       operand to be known.

     - dynamic-type sets ([tyset]): an over-approximation of the
       runtime types an expression can produce, derived only from
       guaranteed sources (literals, operator result types) — never
       from column declarations, which SQLite-style flexible typing
       makes unreliable.  Type sets gate the strength reductions
       (x+0, x*1, --x, NOT NOT x) that are only identities on some
       types: e.g. [x+0 -> x] is unsound for REAL because
       [-0.0 +. 0.0 = +0.0].

   Integer/real interval facts are deliberately *not* tracked here:
   they live at the conjunct level in [Opt], where the total order of
   [R.compare_value] makes bound reasoning sound for every runtime
   type at once.

   Soundness ground rules, mirroring [Expr.eval] exactly:
     - a subtree may only be dropped (its evaluation skipped) when it
       is [droppable]: total and pure.  Function calls, subqueries and
       parameters are never droppable — a call may raise or have
       effects, and binding-arity errors must keep firing;
     - [Call] nodes fold only for known builtins not shadowed by a
       session UDF ([pure_fn]); everything else is left for runtime so
       its errors and effects are preserved;
     - AND/OR use the evaluator's own short-circuit order, so the left
       operand of a false-AND never needs a droppability check, while
       the right operand folding away the left does. *)

module R = Storage.Record
open Ast

(* --- dynamic type sets ------------------------------------------------ *)

type tyset = {
  can_int : bool;
  can_real : bool;
  can_text : bool;
  can_null : bool;
  boolish : bool; (* every possible value is Int 0, Int 1 or Null *)
}

let ty_top = { can_int = true; can_real = true; can_text = true; can_null = true; boolish = false }

let ty_of_value = function
  | R.Int i ->
    { can_int = true; can_real = false; can_text = false; can_null = false;
      boolish = i = 0 || i = 1 }
  | R.Real _ ->
    { can_int = false; can_real = true; can_text = false; can_null = false; boolish = false }
  | R.Text _ ->
    { can_int = false; can_real = false; can_text = true; can_null = false; boolish = false }
  | R.Null ->
    { can_int = false; can_real = false; can_text = false; can_null = true; boolish = true }

let ty_join a b =
  { can_int = a.can_int || b.can_int;
    can_real = a.can_real || b.can_real;
    can_text = a.can_text || b.can_text;
    can_null = a.can_null || b.can_null;
    boolish = a.boolish && b.boolish }

(* of_truth: Int 0 / Int 1 / Null *)
let ty_truth =
  { can_int = true; can_real = false; can_text = false; can_null = true; boolish = true }

(* of_bool: Int 0 / Int 1, never Null (IS NULL) *)
let ty_bool01 =
  { can_int = true; can_real = false; can_text = false; can_null = false; boolish = true }

(* numeric2 / Neg results *)
let ty_num =
  { can_int = true; can_real = true; can_text = false; can_null = true; boolish = false }

let ty_text_null =
  { can_int = false; can_real = false; can_text = true; can_null = true; boolish = false }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Result type of CAST, mirroring [Expr.cast_to]'s affinity dispatch;
   an unrecognized target type is a no-op cast, hence Top. *)
let cast_ty ty =
  let ty = String.uppercase_ascii (String.trim ty) in
  let has sub = contains_sub ty sub in
  if has "INT" then
    { can_int = true; can_real = false; can_text = false; can_null = true; boolish = false }
  else if has "REAL" || has "FLOA" || has "DOUB" then
    { can_int = false; can_real = true; can_text = false; can_null = true; boolish = false }
  else if has "CHAR" || has "TEXT" || has "CLOB" then ty_text_null
  else ty_top

(* Over-approximate the runtime types of [e].  Pure and cheap: used by
   the strength reductions to check identities like [x * 1 -> x]. *)
let rec ty_of = function
  | Lit v -> ty_of_value v
  | Unop (Neg, _) -> ty_num
  | Unop (Not, _) -> ty_truth
  | Binop ((Add | Sub | Mul | Div | Mod), _, _) -> ty_num
  | Binop (Concat, _, _) -> ty_text_null
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> ty_truth
  | Like _ | Between _ | In_list _ | In_set _ -> ty_truth
  | Is_null _ -> ty_bool01
  | Cast (_, ty) -> cast_ty ty
  | Case { branches; else_ } ->
    let else_ty = match else_ with Some e -> ty_of e | None -> ty_of_value R.Null in
    List.fold_left (fun acc (_, v) -> ty_join acc (ty_of v)) else_ty branches
  | Col _ | Colidx _ | Aggref _ | Param _ | Agg _ | Call _ | Subquery _
  | In_select _ | Exists _ ->
    ty_top

(* x+0 is only an identity for INTEGER/NULL (REAL breaks on -0.0) *)
let int_or_null ty = (not ty.can_real) && not ty.can_text

(* x*1, x/1, x-0, --x are identities for any numeric-or-null value *)
let numeric_or_null ty = not ty.can_text

(* --- droppability ------------------------------------------------------ *)

(* Can evaluation of [e] be skipped without observable difference?
   Only expressions that cannot raise and have no side effects qualify:
   no function calls (a UDF may be impure; even a builtin may reject
   its arguments at runtime), no subqueries, no unresolved columns, and
   no parameters (dropping one would silence binding-arity errors). *)
let rec droppable = function
  | Lit _ | Colidx _ | Aggref _ -> true
  | Col _ | Param _ | Call _ | Agg _ | Subquery _ | In_select _ | Exists _ -> false
  | Unop (_, e) -> droppable e
  | Binop (_, a, b) -> droppable a && droppable b
  | Like { subject; pattern; _ } -> droppable subject && droppable pattern
  | In_list { subject; candidates; _ } ->
    droppable subject && List.for_all droppable candidates
  | Between { subject; low; high; _ } -> droppable subject && droppable low && droppable high
  | Is_null { subject; _ } -> droppable subject
  | Case { branches; else_ } ->
    List.for_all (fun (c, v) -> droppable c && droppable v) branches
    && (match else_ with Some e -> droppable e | None -> true)
  | Cast (e, _) -> droppable e
  | In_set { subject; _ } -> droppable subject

(* --- the simplifier ---------------------------------------------------- *)

type ctx = {
  fnctx : Expr.fn_ctx;
  (* foldable at plan time: a known builtin not shadowed by a UDF *)
  pure_fn : string -> bool;
  mutable folds : int; (* rewrites performed (folds + strength reductions) *)
}

let make_ctx ~fnctx ~pure_fn = { fnctx; pure_fn; folds = 0 }

let is_lit = function Lit _ -> true | _ -> false

(* Evaluate a node whose children are all literals with the real
   evaluator; on success the fold is exact by construction.  Failure
   (e.g. a builtin rejecting its arguments) leaves the node in place so
   the runtime error surfaces exactly as on the unoptimized path. *)
let fold ctx e =
  match Expr.eval_const ctx.fnctx e with
  | v ->
    ctx.folds <- ctx.folds + 1;
    Lit v
  | exception (Expr.Error _ | Func.Error _) -> e

let reduced ctx e =
  ctx.folds <- ctx.folds + 1;
  e

let lit_null ctx = reduced ctx (Lit R.Null)

let rec go ctx e =
  match e with
  | Lit _ | Col _ | Colidx _ | Aggref _ | Param _ | Agg _ | Subquery _ | In_select _
  | Exists _ | In_set _ ->
    e
  | Unop (op, a) -> simp_unop ctx op (go ctx a)
  | Binop (op, a, b) -> simp_binop ctx op (go ctx a) (go ctx b)
  | Like l -> (
    let subject = go ctx l.subject and pattern = go ctx l.pattern in
    let e' = Like { l with subject; pattern } in
    match subject, pattern with
    | Lit _, Lit _ -> fold ctx e'
    | Lit R.Null, p when droppable p -> lit_null ctx
    | s, Lit R.Null when droppable s -> lit_null ctx
    | _ -> e')
  | In_list l -> (
    let subject = go ctx l.subject in
    let candidates = List.map (go ctx) l.candidates in
    let e' = In_list { l with subject; candidates } in
    match subject with
    (* the evaluator returns NULL before touching the candidates *)
    | Lit R.Null -> lit_null ctx
    | Lit _ when List.for_all is_lit candidates -> fold ctx e'
    | _ -> e')
  | Between b -> (
    let subject = go ctx b.subject and low = go ctx b.low and high = go ctx b.high in
    let e' = Between { b with subject; low; high } in
    match subject with
    | Lit _ when is_lit low && is_lit high -> fold ctx e'
    (* NULL subject makes both bound comparisons NULL, hence NULL *)
    | Lit R.Null when droppable low && droppable high -> lit_null ctx
    | _ -> e')
  | Is_null i ->
    let subject = go ctx i.subject in
    let e' = Is_null { i with subject } in
    if is_lit subject then fold ctx e' else e'
  | Case { branches; else_ } -> simp_case ctx branches else_
  | Call (name, args) ->
    let args = List.map (go ctx) args in
    let e' = Call (name, args) in
    if ctx.pure_fn name && List.for_all is_lit args then fold ctx e' else e'
  | Cast (inner, ty) ->
    let inner = go ctx inner in
    let e' = Cast (inner, ty) in
    if is_lit inner then fold ctx e' else e'

and simp_unop ctx op a =
  let e' = Unop (op, a) in
  match op, a with
  | _, Lit _ -> fold ctx e'
  | Neg, Unop (Neg, x) when numeric_or_null (ty_of x) -> reduced ctx x
  | Not, Unop (Not, x) when (ty_of x).boolish -> reduced ctx x
  | _ -> e'

and simp_binop ctx op a b =
  let e' = Binop (op, a, b) in
  match op with
  | And -> (
    match a, b with
    | Lit _, Lit _ -> fold ctx e'
    (* the evaluator short-circuits a false left operand *)
    | Lit v, _ when Expr.truth v = Some false -> reduced ctx (Lit (Expr.of_bool false))
    | _, Lit v when Expr.truth v = Some false && droppable a ->
      reduced ctx (Lit (Expr.of_bool false))
    (* TRUE AND x = of_truth (truth x), the identity on boolish x *)
    | Lit v, _ when Expr.truth v = Some true && (ty_of b).boolish -> reduced ctx b
    | _, Lit v when Expr.truth v = Some true && (ty_of a).boolish -> reduced ctx a
    | _ -> e')
  | Or -> (
    match a, b with
    | Lit _, Lit _ -> fold ctx e'
    | Lit v, _ when Expr.truth v = Some true -> reduced ctx (Lit (Expr.of_bool true))
    | _, Lit v when Expr.truth v = Some true && droppable a ->
      reduced ctx (Lit (Expr.of_bool true))
    | Lit v, _ when Expr.truth v = Some false && (ty_of b).boolish -> reduced ctx b
    | _, Lit v when Expr.truth v = Some false && (ty_of a).boolish -> reduced ctx a
    | _ -> e')
  | Concat -> (
    match a, b with
    | Lit _, Lit _ -> fold ctx e'
    | Lit R.Null, x when droppable x -> lit_null ctx
    | x, Lit R.Null when droppable x -> lit_null ctx
    | _ -> e')
  | Add | Sub | Mul | Div | Mod -> (
    match a, b with
    | Lit _, Lit _ -> fold ctx e'
    (* a non-numeric operand (NULL, or text with no numeric value)
       forces the whole arithmetic node to NULL *)
    | Lit v, x when Expr.to_number v = None && droppable x -> lit_null ctx
    | x, Lit v when Expr.to_number v = None && droppable x -> lit_null ctx
    (* division / modulus by a constant zero is NULL, never an error *)
    | x, Lit v when (op = Div || op = Mod) && Expr.to_number v = Some 0. && droppable x ->
      lit_null ctx
    (* strength reduction; type-gated, see [int_or_null] *)
    | x, Lit (R.Int 0) when op = Add && int_or_null (ty_of x) -> reduced ctx x
    | Lit (R.Int 0), x when op = Add && int_or_null (ty_of x) -> reduced ctx x
    | x, Lit (R.Int 0) when op = Sub && numeric_or_null (ty_of x) -> reduced ctx x
    | x, Lit (R.Int 1) when (op = Mul || op = Div) && numeric_or_null (ty_of x) ->
      reduced ctx x
    | Lit (R.Int 1), x when op = Mul && numeric_or_null (ty_of x) -> reduced ctx x
    | _ -> e')
  | Eq | Ne | Lt | Le | Gt | Ge -> (
    match a, b with
    | Lit _, Lit _ -> fold ctx e'
    | Lit R.Null, x when droppable x -> lit_null ctx
    | x, Lit R.Null when droppable x -> lit_null ctx
    | _ -> e')

(* CASE: a branch whose condition is a literal non-true can never be
   taken; a literal true condition turns its value into the
   unconditional tail (the evaluator stops there, so the rest is dead).
   A CASE left with no branches is its ELSE (or NULL). *)
and simp_case ctx branches else_ =
  let rec walk = function
    | [] -> ([], Option.map (go ctx) else_)
    | (c, v) :: rest -> (
      match go ctx c with
      | Lit cv when Expr.truth cv <> Some true ->
        ctx.folds <- ctx.folds + 1;
        walk rest
      | Lit _ ->
        ctx.folds <- ctx.folds + 1;
        ([], Some (go ctx v))
      | c ->
        let v = go ctx v in
        let bs, el = walk rest in
        ((c, v) :: bs, el))
  in
  match walk branches with
  | [], Some e -> e
  | [], None -> Lit R.Null
  | bs, el -> Case { branches = bs; else_ = el }

(* Simplify [e] into an equivalent expression; rewrites are counted in
   [ctx.folds]. *)
let simplify ctx e = go ctx e
