(* Static semantic analysis: the pass between Parser and Planner.

   Every statement path — exec, exec_script, exec_rows, prepare, the
   shell, and all four RQL loop mechanisms — runs this analysis before
   any planning or page access.  It mirrors the planner's and
   executor's name-resolution and evaluation rules without reading any
   data, so a statement it rejects would have failed at plan or eval
   time anyway, only later (possibly mid-loop, after SPT builds and
   page I/O, or mid-DML after rows were already touched).

   The checks are deliberately *sound with respect to execution*: the
   analyzer never rejects a statement the engine would execute
   successfully.  Where static knowledge runs out (parameters, UDF
   result types, AS OF statements whose historical schema may differ
   from the current catalog) it degrades to "unknown" and stays quiet.

   Diagnostics (Diag.t) carry stable codes:

     E001 no such table                  E010 AS OF must be an integer
     E002 no such column                 E011 LIMIT/OFFSET must be an integer
     E003 ambiguous column name          E012 UNION members differ in width
     E004 no such function               E013 sys_ namespace is reserved
     E005 wrong builtin arity            E020 current_snapshot() outside a loop
     E006 malformed aggregate            E021 Qs must project one snapshot id
     E007 aggregate not allowed here     E022 Qq must be a SELECT
     E008 subquery must be one column
     E009 INSERT arity mismatch
     E030 VACUUM SNAPSHOTS retention must be a positive integer constant

     W101 subquery comparison defeats an index (filter, not a bound)
     W102 predicate is constant false/NULL
     W103 cross-affinity comparison (type ranks never match)
     W104 duplicate column name in CREATE TABLE
     W105 Qs snapshot-id column is not integer-typed
     W106 Qq carries its own AS OF (the loop overrides it per snapshot)

   Positions: the AST carries no spans, so the analyzer re-tokenizes
   the statement text (when available) and attaches the position of
   the first occurrence of the offending identifier.  Good enough for
   "where do I look", with no AST surgery. *)

module R = Storage.Record
open Ast

(* Stmt = ordinary statement; Qq = the body of an RQL loop, where
   current_snapshot() is legal and non-SELECT statements are not. *)
type mode = Stmt | Qq

(* --- value-type lattice ----------------------------------------------- *)

(* Tany is "statically unknown" (parameters, UDF results, untyped
   columns); Tnull is the type of the NULL literal. *)
type ty = Tint | Treal | Ttext | Tnull | Tany

let ty_name = function
  | Tint -> "integer"
  | Treal -> "real"
  | Ttext -> "text"
  | Tnull -> "null"
  | Tany -> "unknown"

let is_definite_num = function Tint | Treal -> true | _ -> false

let join a b =
  match a, b with
  | Tnull, t | t, Tnull -> t
  | a, b when a = b -> a
  | (Tint | Treal), (Tint | Treal) -> Treal
  | _ -> Tany

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* SQLite-style affinity from a declared column type; "" (RQL result
   tables, CTAS) means untyped. *)
let affinity decl =
  if decl = "" then Tany
  else
    let u = String.uppercase_ascii decl in
    if contains_sub u "INT" then Tint
    else if contains_sub u "CHAR" || contains_sub u "TEXT" || contains_sub u "CLOB" then Ttext
    else if
      contains_sub u "REAL" || contains_sub u "FLOA" || contains_sub u "DOUB"
      || contains_sub u "DEC" || contains_sub u "NUM"
    then Treal
    else Tany

let ty_of_value = function
  | R.Null -> Tnull
  | R.Int _ -> Tint
  | R.Real _ -> Treal
  | R.Text _ -> Ttext

(* --- builtin signatures ------------------------------------------------ *)

(* (min arity, max arity, result type); must agree with Func.builtins. *)
let builtin_sigs =
  [ ("abs", (1, 1, Tany));
    ("length", (1, 1, Tint));
    ("lower", (1, 1, Ttext));
    ("upper", (1, 1, Ttext));
    ("substr", (2, 3, Ttext));
    ("coalesce", (1, max_int, Tany));
    ("ifnull", (2, 2, Tany));
    ("nullif", (2, 2, Tany));
    ("typeof", (1, 1, Ttext));
    ("round", (1, 2, Treal));
    ("min", (2, max_int, Tany));
    ("max", (2, max_int, Tany));
    ("instr", (2, 2, Tint));
    ("trim", (1, 1, Ttext));
    ("replace", (3, 3, Ttext)) ]

let describe_arity lo hi =
  if hi = max_int then Printf.sprintf "at least %d argument%s" lo (if lo = 1 then "" else "s")
  else if lo = hi then Printf.sprintf "%d argument%s" lo (if lo = 1 then "" else "s")
  else Printf.sprintf "%d to %d arguments" lo hi

let aggregate_fns = [ "count"; "sum"; "avg"; "min"; "max"; "total" ]

(* --- analysis state ---------------------------------------------------- *)

type t = {
  cat : Catalog.t;
  has_fn : string -> bool;          (* UDFs + builtins on the handle *)
  mode : mode;
  span_of : string -> Lexer.pos option;
  mutable diags : Diag.t list;
}

let lc = String.lowercase_ascii

let emit ctx d = ctx.diags <- d :: ctx.diags

(* [at] names the identifier whose source position the diagnostic
   should point at. *)
let errf ctx ?at code fmt =
  Printf.ksprintf
    (fun m ->
      emit ctx (Diag.v ?pos:(Option.bind at ctx.span_of) ~severity:Diag.Error code m))
    fmt

let warnf ctx ?at code fmt =
  Printf.ksprintf
    (fun m ->
      emit ctx (Diag.v ?pos:(Option.bind at ctx.span_of) ~severity:Diag.Warning code m))
    fmt

(* Identifier -> first source position, from re-tokenizing the
   statement text.  Tokenization already succeeded once to parse the
   statement, so the Lexer.Error guard is belt-and-braces for callers
   analyzing an AST under unrelated text. *)
let span_map sql =
  match sql with
  | None -> fun _ -> None
  | Some sql ->
    let tbl = Hashtbl.create 16 in
    (try
       List.iter
         (fun (tok, pos) ->
           match tok with
           | Lexer.Ident n ->
             let key = lc n in
             if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key pos
           | _ -> ())
         (Lexer.tokenize_pos sql)
     with Lexer.Error _ -> ());
    fun name -> Hashtbl.find_opt tbl (lc name)

(* --- name resolution --------------------------------------------------- *)

(* A FROM source: alias (lowercased) + resolved table. *)
type source = { a_alias : string; a_tbl : Catalog.table }

(* scope of one SELECT core: its sources, whether they all resolved
   (unresolved FROM suppresses column-level diagnostics to avoid
   cascades), and whether name diagnostics apply at all (they do not
   under AS OF: a snapshot's catalog may differ from the current one,
   and tables dropped since are still legally queryable there). *)
type scope = { sources : source list; resolved : bool; strict : bool }

let no_sources = { sources = []; resolved = true; strict = true }

let lookup_table ctx name =
  match Catalog.find_table ctx.cat name with
  | Some t -> Some t
  | None -> Systables.lookup name

let col_ty (t : Catalog.table) i = affinity (snd t.Catalog.tcols.(i))

(* Mirror of Planner.find_col: qualified references filter by alias,
   duplicates across remaining sources are ambiguous. *)
let find_col sources q n =
  let n = lc n in
  let matches =
    List.concat_map
      (fun s ->
        match q with
        | Some q when lc q <> s.a_alias -> []
        | _ ->
          let hits = ref [] in
          Array.iteri
            (fun i (cn, _) -> if lc cn = n then hits := (s, i) :: !hits)
            s.a_tbl.Catalog.tcols;
          !hits)
      sources
  in
  match matches with
  | [ (s, i) ] -> `One (col_ty s.a_tbl i)
  | [] -> `None
  | _ -> `Many

let table_has_col (tbl : Catalog.table) c =
  Array.exists (fun (cn, _) -> lc cn = lc c) tbl.Catalog.tcols

(* --- expression scanners ----------------------------------------------- *)

let contains_subquery e =
  let exception Found in
  try
    ignore
      (Expr.map
         (function
           | Subquery _ | In_select _ | Exists _ | In_set _ -> raise_notrace Found
           | e -> e)
         e);
    false
  with Found -> true

(* Same value for every row: no column references, aggregates,
   parameters or subqueries anywhere. *)
let row_independent e =
  let exception No in
  try
    ignore
      (Expr.map
         (function
           | ( Col _ | Colidx _ | Agg _ | Aggref _ | Param _ | Subquery _ | In_select _
             | Exists _ | In_set _ ) ->
             raise_notrace No
           | e -> e)
         e);
    true
  with No -> false

(* First column name mentioned in [e], as a position anchor for
   diagnostics about whole predicates. *)
let first_col_name e =
  let found = ref None in
  ignore
    (Expr.map
       (function
         | Col (_, n) as c ->
           if !found = None then found := Some n;
           c
         | e -> e)
       e);
  !found

(* Constant folding for W102 uses only the builtins: UDF calls are not
   row-independent in any useful static sense. *)
let builtin_ctx = { Expr.lookup_fn = Func.find }

(* --- expression checking ----------------------------------------------- *)

(* Infer the type of [e] under [sc], emitting diagnostics along the
   way.  [agg_ok] is whether an aggregate call is legal in this
   position (output items, HAVING, ORDER BY keys — not WHERE, GROUP BY
   or DML expressions). *)
let rec check_expr ctx (sc : scope) ~agg_ok (e : expr) : ty =
  match e with
  | Lit v -> ty_of_value v
  | Param _ | Colidx _ | Aggref _ | In_set _ -> Tany
  | Col (q, n) -> (
    match find_col sc.sources q n with
    | `One t -> t
    | `None ->
      if sc.strict && sc.resolved then
        errf ctx ~at:n "E002" "no such column: %s%s"
          (match q with Some q -> q ^ "." | None -> "")
          n;
      Tany
    | `Many ->
      if sc.strict && sc.resolved then errf ctx ~at:n "E003" "ambiguous column name: %s" n;
      Tany)
  | Unop (Neg, e1) -> (
    match check_expr ctx sc ~agg_ok e1 with
    | (Tint | Treal | Tnull) as t -> t
    | _ -> Tany)
  | Unop (Not, e1) ->
    ignore (check_expr ctx sc ~agg_ok e1);
    Tint
  | Binop (op, a, b) -> (
    let ta = check_expr ctx sc ~agg_ok a in
    let tb = check_expr ctx sc ~agg_ok b in
    match op with
    | Add | Sub | Mul | Div | Mod -> (
      match ta, tb with
      | Tint, Tint -> Tint
      | Tnull, _ | _, Tnull -> Tnull
      | (Tint | Treal), (Tint | Treal) -> Treal
      | _ -> Tany)
    | Concat -> Ttext
    | Eq | Ne | Lt | Le | Gt | Ge ->
      if
        sc.strict
        && ((is_definite_num ta && tb = Ttext) || (ta = Ttext && is_definite_num tb))
      then
        warnf ctx ?at:(first_col_name e) "W103"
          "comparison between %s and %s operands: values of different affinity compare \
           by type rank and never match"
          (ty_name ta) (ty_name tb);
      Tint
    | And | Or -> Tint)
  | Like { subject; pattern; _ } ->
    ignore (check_expr ctx sc ~agg_ok subject);
    ignore (check_expr ctx sc ~agg_ok pattern);
    Tint
  | In_list { subject; candidates; _ } ->
    ignore (check_expr ctx sc ~agg_ok subject);
    List.iter (fun c -> ignore (check_expr ctx sc ~agg_ok c)) candidates;
    Tint
  | Between { subject; low; high; _ } ->
    ignore (check_expr ctx sc ~agg_ok subject);
    ignore (check_expr ctx sc ~agg_ok low);
    ignore (check_expr ctx sc ~agg_ok high);
    Tint
  | Is_null { subject; _ } ->
    ignore (check_expr ctx sc ~agg_ok subject);
    Tint
  | Call (name, args) when lc name = "current_snapshot" ->
    List.iter (fun a -> ignore (check_expr ctx sc ~agg_ok a)) args;
    if args <> [] then errf ctx ~at:name "E005" "current_snapshot expects 0 arguments";
    if ctx.mode <> Qq then
      errf ctx ~at:name "E020"
        "current_snapshot() is only valid inside an RQL Qq query";
    Tint
  | Call (name, args) -> (
    let n = List.length args in
    List.iter (fun a -> ignore (check_expr ctx sc ~agg_ok a)) args;
    match List.assoc_opt (lc name) builtin_sigs with
    | Some (lo, hi, ret) ->
      if n < lo || n > hi then
        errf ctx ~at:name "E005" "%s expects %s, got %d" name (describe_arity lo hi) n;
      ret
    | None ->
      if not (ctx.has_fn name) then errf ctx ~at:name "E004" "no such function: %s" name;
      Tany)
  | Agg a -> (
    let fn = lc a.agg_fn in
    if not agg_ok then
      errf ctx ~at:a.agg_fn "E007" "aggregate %s(...) is not allowed in this clause"
        a.agg_fn;
    if not (List.mem fn aggregate_fns) then
      errf ctx ~at:a.agg_fn "E006" "no such aggregate function: %s" a.agg_fn;
    match a.agg_arg with
    | None ->
      if fn <> "count" then
        errf ctx ~at:a.agg_fn "E006" "%s requires an argument" a.agg_fn;
      Tint
    | Some arg -> (
      if Expr.has_aggregate arg then
        errf ctx ~at:a.agg_fn "E006" "aggregate calls cannot nest";
      (* agg_ok:true so a nested aggregate reports E006 once, not an
         extra E007 *)
      let t = check_expr ctx sc ~agg_ok:true arg in
      match fn with
      | "count" -> Tint
      | "avg" | "total" -> Treal
      | "sum" -> ( match t with Tint -> Tint | Treal -> Treal | _ -> Tany)
      | "min" | "max" -> t
      | _ -> Tany))
  | Case { branches; else_ } ->
    let t =
      List.fold_left
        (fun acc (cond, v) ->
          ignore (check_expr ctx sc ~agg_ok cond);
          join acc (check_expr ctx sc ~agg_ok v))
        Tnull branches
    in
    (match else_ with
    | Some e1 -> join t (check_expr ctx sc ~agg_ok e1)
    | None -> t)
  | Cast (e1, tyname) ->
    ignore (check_expr ctx sc ~agg_ok e1);
    affinity tyname
  | Subquery sub -> (
    match check_select ctx ~outer_strict:sc.strict sub with
    | Some [ (_, t) ] -> t
    | Some outs ->
      errf ctx "E008" "scalar subquery must return a single column (got %d)"
        (List.length outs);
      Tany
    | None -> Tany)
  | In_select { subject; sub; _ } ->
    ignore (check_expr ctx sc ~agg_ok subject);
    (match check_select ctx ~outer_strict:sc.strict sub with
    | Some outs when List.length outs <> 1 ->
      errf ctx "E008" "IN (SELECT ...) must return a single column (got %d)"
        (List.length outs)
    | _ -> ());
    Tint
  | Exists { sub; _ } ->
    ignore (check_select ctx ~outer_strict:sc.strict sub);
    Tint

(* --- predicate warnings ------------------------------------------------ *)

(* Is [n] (optionally qualified by [q]) the leading column of a native
   index on one of the scoped tables?  Then an equality/range conjunct
   on it is the planner's index-bound candidate. *)
and col_is_indexed ctx sc q n =
  let ln = lc n in
  let srcs =
    match q with
    | Some q -> List.filter (fun s -> s.a_alias = lc q) sc.sources
    | None -> sc.sources
  in
  List.exists
    (fun s ->
      table_has_col s.a_tbl n
      && List.exists
           (fun (ix : Catalog.index) ->
             match ix.Catalog.icols with
             | lead :: _ -> lc lead = ln
             | [] -> false)
           (Catalog.indexes_of_table ctx.cat s.a_tbl.Catalog.tname))
    srcs

(* WHERE-conjunct warnings: W102 (constant false/NULL) and W101 (the
   PR-3 sargability hazard: a subquery-derived comparison value is a
   filter, not an index bound, so the index on that column goes
   unused). *)
and check_predicate_warnings ctx sc w =
  List.iter
    (fun conj ->
      (if row_independent conj then
         match
           try Some (Expr.eval_const builtin_ctx conj) with Expr.Error _ -> None
         with
         | Some v -> (
           match Expr.truth v with
           | Some true -> ()
           | Some false ->
             warnf ctx ?at:(first_col_name conj) "W102"
               "predicate is constant and always false"
           | None ->
             warnf ctx ?at:(first_col_name conj) "W102"
               "predicate is constant NULL (never true)")
         | None -> ());
      match conj with
      | Binop ((Eq | Lt | Le | Gt | Ge), a, b) -> (
        let probe col_e other =
          match col_e with
          | Col (q, n) when contains_subquery other && col_is_indexed ctx sc q n ->
            warnf ctx ~at:n "W101"
              "the index on %s cannot serve this comparison: a subquery-derived value \
               is a filter, not an index bound (materialize it into a literal or \
               parameter first)"
              n
          | _ -> ()
        in
        probe a b;
        probe b a)
      | _ -> ())
    (Expr.conjuncts w)

(* --- SELECT checking --------------------------------------------------- *)

(* Returns the output shape (name, type) when statically known; None
   when a FROM table did not resolve (then width-dependent checks are
   skipped).  [outer_strict] is false inside AS OF scopes. *)
and check_select ctx ~outer_strict (sel : select) : (string * ty) list option =
  if sel.union_with = [] then check_core ctx ~outer_strict sel
  else begin
    (* compound: the first member owns DISTINCT/GROUP BY; trailing
       ORDER BY / LIMIT belong to the whole compound and must
       reference output columns (same rule as the planner). *)
    let base = { sel with union_with = []; order_by = []; limit = None; offset = None } in
    let outs = check_core ctx ~outer_strict base in
    let member_outs =
      List.map (fun (_all, m) -> check_select ctx ~outer_strict m) sel.union_with
    in
    (match outs with
    | Some o ->
      List.iter
        (function
          | Some m when List.length m <> List.length o ->
            errf ctx "E012" "UNION members must return the same number of columns (%d vs %d)"
              (List.length o) (List.length m)
          | _ -> ())
        member_outs;
      let hdr = List.map (fun (n, _) -> lc n) o in
      List.iter
        (fun oi ->
          match oi.ord_expr with
          | Lit (R.Int k) when k >= 1 && k <= List.length o -> ()
          | Lit (R.Int k) ->
            errf ctx "E002" "compound ORDER BY position %d is out of range (1..%d)" k
              (List.length o)
          | Col (None, n) when List.mem (lc n) hdr -> ()
          | Col (_, n) ->
            errf ctx ~at:n "E002" "no such output column in compound ORDER BY: %s" n
          | _ ->
            errf ctx "E002"
              "compound ORDER BY must reference output columns by name or position")
        sel.order_by
    | None -> ());
    check_limit_offset ctx sel;
    outs
  end

and check_limit_offset ctx (sel : select) =
  let chk what eo =
    Option.iter
      (fun e ->
        match check_expr ctx { no_sources with strict = false } ~agg_ok:false e with
        | Tint | Tany -> ()
        | t -> errf ctx "E011" "%s must be an integer (got %s)" what (ty_name t))
      eo
  in
  chk "LIMIT" sel.limit;
  chk "OFFSET" sel.offset

and check_core ctx ~outer_strict (sel : select) : (string * ty) list option =
  let strict = outer_strict && sel.as_of = None in
  (* AS OF binds before the FROM environment exists; it must be a
     constant (or parameter) integer snapshot id. *)
  (match sel.as_of with
  | Some e -> (
    match check_expr ctx { no_sources with strict = false } ~agg_ok:false e with
    | Tint | Tany -> ()
    | t -> errf ctx "E010" "AS OF must be an integer snapshot id (got %s)" (ty_name t))
  | None -> ());
  let joins = match sel.from with Some (_, js) -> js | None -> [] in
  let refs =
    match sel.from with
    | None -> []
    | Some (first, js) -> first :: List.map (fun j -> j.join_table) js
  in
  let width_known = ref true in
  let sources =
    List.filter_map
      (fun (tr : table_ref) ->
        match lookup_table ctx tr.tbl_name with
        | Some t ->
          Some { a_alias = lc (Option.value tr.tbl_alias ~default:tr.tbl_name); a_tbl = t }
        | None ->
          width_known := false;
          if strict then errf ctx ~at:tr.tbl_name "E001" "no such table: %s" tr.tbl_name;
          None)
      refs
  in
  let sc = { sources; resolved = !width_known; strict } in
  (* ON clauses: checked against the full source list — necessary but
     not sufficient (the planner resolves them against sources
     accumulated so far), so the analyzer stays permissive. *)
  List.iter
    (fun j -> Option.iter (fun e -> ignore (check_expr ctx sc ~agg_ok:false e)) j.join_on)
    joins;
  (match sel.where with
  | Some w ->
    ignore (check_expr ctx sc ~agg_ok:false w);
    if sc.strict && sc.resolved then check_predicate_warnings ctx sc w
  | None -> ());
  (* output items, star-expanded so the width is static *)
  let outs =
    List.concat_map
      (fun item ->
        match item with
        | Star ->
          List.concat_map
            (fun s ->
              Array.to_list
                (Array.map (fun (n, d) -> (n, affinity d)) s.a_tbl.Catalog.tcols))
            sc.sources
        | Table_star a -> (
          match List.find_opt (fun s -> s.a_alias = lc a) sc.sources with
          | Some s ->
            Array.to_list
              (Array.map (fun (n, d) -> (n, affinity d)) s.a_tbl.Catalog.tcols)
          | None ->
            width_known := false;
            if sc.strict && sc.resolved then errf ctx ~at:a "E001" "no such table: %s" a;
            [])
        | Sel_expr (e, alias) ->
          let t = check_expr ctx sc ~agg_ok:true e in
          let name =
            match alias, e with
            | Some a, _ -> a
            | None, Col (_, n) -> n
            | None, _ -> ""
          in
          [ (name, t) ])
      sel.items
  in
  (* GROUP BY / HAVING / ORDER BY may reference output aliases when the
     name is not a FROM column (SQLite rule, mirrored from the
     planner's alias_subst). *)
  let named_items =
    List.filter_map
      (function
        | Sel_expr (e, alias) ->
          let name =
            match alias, e with
            | Some a, _ -> a
            | None, Col (_, n) -> n
            | None, _ -> ""
          in
          if name = "" then None else Some (lc name, e)
        | _ -> None)
      sel.items
  in
  let alias_subst e =
    Expr.map
      (function
        | Col (None, n) as c
          when (match find_col sc.sources None n with `One _ -> false | _ -> true) -> (
          match List.assoc_opt (lc n) named_items with
          | Some aliased -> aliased
          | None -> c)
        | e -> e)
      e
  in
  List.iter (fun e -> ignore (check_expr ctx sc ~agg_ok:false (alias_subst e))) sel.group_by;
  Option.iter
    (fun e -> ignore (check_expr ctx sc ~agg_ok:true (alias_subst e)))
    sel.having;
  (* ORDER BY: positional literals and pure output-alias references
     resolve to output columns; everything else resolves against the
     FROM columns (no alias substitution — same as the planner). *)
  let hdr_lc =
    List.mapi
      (fun i (n, _) -> lc (if n = "" then Printf.sprintf "expr_%d" (i + 1) else n))
      outs
  in
  List.iter
    (fun o ->
      match o.ord_expr with
      | Lit (R.Int k) when k >= 1 && k <= List.length outs -> ()
      | Col (None, n)
        when List.mem (lc n) hdr_lc
             && (match find_col sc.sources None n with `One _ -> false | _ -> true) ->
        ()
      | e -> ignore (check_expr ctx sc ~agg_ok:true e))
    sel.order_by;
  check_limit_offset ctx sel;
  if !width_known then Some outs else None

(* --- statement checking ------------------------------------------------ *)

let dml_scope (tbl : Catalog.table) =
  { sources = [ { a_alias = lc tbl.Catalog.tname; a_tbl = tbl } ];
    resolved = true;
    strict = true }

let check_values_exprs ctx exprs =
  (* INSERT ... VALUES expressions evaluate with no row in scope;
     subqueries inside them are fine, bare columns are not. *)
  List.iter (fun e -> ignore (check_expr ctx no_sources ~agg_ok:false e)) exprs

let rec check_stmt ctx (s : stmt) : unit =
  match s with
  | Select sel | Explain sel | Explain_profile sel | Explain_analyze sel ->
    ignore (check_select ctx ~outer_strict:true sel)
  | Explain_lint inner -> check_stmt ctx inner
  | Insert { table; columns; values; from_select } -> (
    match lookup_table ctx table with
    | None -> errf ctx ~at:table "E001" "no such table: %s" table
    | Some tbl ->
      if Systables.is_virtual_name table then
        errf ctx ~at:table "E013" "%s is a read-only system table" table
      else begin
        let width =
          match columns with
          | None -> Array.length tbl.Catalog.tcols
          | Some cols ->
            List.iter
              (fun c ->
                if not (table_has_col tbl c) then
                  errf ctx ~at:c "E002" "table %s has no column %s" table c)
              cols;
            List.length cols
        in
        List.iter
          (fun row ->
            check_values_exprs ctx row;
            if List.length row <> width then
              errf ctx "E009" "INSERT expects %d values, got %d" width (List.length row))
          values;
        match from_select with
        | Some sel -> (
          match check_select ctx ~outer_strict:true sel with
          | Some outs when List.length outs <> width ->
            errf ctx "E009" "INSERT expects %d columns, got %d from SELECT" width
              (List.length outs)
          | _ -> ())
        | None -> ()
      end)
  | Delete { table; where } -> (
    match lookup_table ctx table with
    | None -> errf ctx ~at:table "E001" "no such table: %s" table
    | Some tbl ->
      if Systables.is_virtual_name table then
        errf ctx ~at:table "E013" "%s is a read-only system table" table
      else
        Option.iter
          (fun w ->
            let sc = dml_scope tbl in
            ignore (check_expr ctx sc ~agg_ok:false w);
            check_predicate_warnings ctx sc w)
          where)
  | Update { table; sets; where } -> (
    match lookup_table ctx table with
    | None -> errf ctx ~at:table "E001" "no such table: %s" table
    | Some tbl ->
      if Systables.is_virtual_name table then
        errf ctx ~at:table "E013" "%s is a read-only system table" table
      else begin
        let sc = dml_scope tbl in
        List.iter
          (fun (c, e) ->
            if not (table_has_col tbl c) then
              errf ctx ~at:c "E002" "table %s has no column %s" table c;
            ignore (check_expr ctx sc ~agg_ok:false e))
          sets;
        Option.iter
          (fun w ->
            ignore (check_expr ctx sc ~agg_ok:false w);
            check_predicate_warnings ctx sc w)
          where
      end)
  | Create_table { table; cols; as_select; if_not_exists = _ } ->
    if String.length (lc table) >= 4 && String.sub (lc table) 0 4 = "sys_" then
      errf ctx ~at:table "E013" "%s: the sys_ prefix is reserved for system tables" table;
    let seen = Hashtbl.create 8 in
    List.iter
      (fun c ->
        let k = lc c.col_name in
        if k <> "" then begin
          if Hashtbl.mem seen k then
            warnf ctx "W104"
              "duplicate column name %s in CREATE TABLE %s (it will be renamed)"
              c.col_name table;
          Hashtbl.replace seen k ()
        end)
      cols;
    Option.iter (fun sel -> ignore (check_select ctx ~outer_strict:true sel)) as_select
  | Create_index { index = _; table; columns; if_not_exists = _ } -> (
    match Catalog.find_table ctx.cat table with
    | None ->
      if Systables.is_virtual_name table then
        errf ctx ~at:table "E013" "%s is a read-only system table" table
      else errf ctx ~at:table "E001" "no such table: %s" table
    | Some tbl ->
      List.iter
        (fun c ->
          if not (table_has_col tbl c) then
            errf ctx ~at:c "E002" "table %s has no column %s" table c)
        columns)
  | Drop_table { table; if_exists } ->
    if (not if_exists) && Catalog.find_table ctx.cat table = None then
      errf ctx ~at:table "E001" "no such table: %s" table
  | Drop_index { index; if_exists } ->
    if (not if_exists) && Catalog.find_index ctx.cat index = None then
      errf ctx ~at:index "E001" "no such index: %s" index
  | Vacuum_snapshots { older_than; keeping_last; dry_run = _ } ->
    (* The retention operand is resolved before any page access, so it
       must be statically evaluable: a positive integer literal (or a
       parameter, checked at bind time). *)
    let check_retention what e =
      match e with
      | Lit (R.Int n) when n >= 1 -> ()
      | Param _ -> ()
      | _ ->
        errf ctx "E030" "VACUUM SNAPSHOTS %s must be a positive integer constant"
          what
    in
    Option.iter (check_retention "OLDER THAN") older_than;
    Option.iter (check_retention "KEEPING LAST") keeping_last
  | Begin_txn | Commit _ | Rollback | Analyze_archive | Checkpoint | Pragma _ -> ()

(* --- entry points ------------------------------------------------------ *)

let finish ctx =
  let ds = List.rev ctx.diags in
  let errs, warns = List.partition Diag.is_error ds in
  errs @ warns

(* Analyze one parsed statement.  [sql] (the statement text, when
   known) gives diagnostics source positions; [mode] Qq enables
   current_snapshot() and restricts the statement to SELECT. *)
let analyze ?sql ~cat ~has_fn ?(mode = Stmt) (s : stmt) : Diag.t list =
  let ctx = { cat; has_fn; mode; span_of = span_map sql; diags = [] } in
  (match mode, s with
  | Qq, Select sel ->
    if sel.as_of <> None then
      warnf ctx "W106"
        "Qq carries its own AS OF; the RQL loop overrides it with each snapshot id";
    ignore (check_select ctx ~outer_strict:true sel)
  | Qq, _ -> errf ctx "E022" "Qq must be a SELECT statement"
  | Stmt, _ -> check_stmt ctx s);
  finish ctx

(* Analyze an RQL Qs: an ordinary statement that must additionally be a
   SELECT projecting exactly one (integer-typed) snapshot-id column. *)
let analyze_qs ?sql ~cat ~has_fn (s : stmt) : Diag.t list =
  let ctx = { cat; has_fn; mode = Stmt; span_of = span_map sql; diags = [] } in
  (match s with
  | Select sel -> (
    match check_select ctx ~outer_strict:true sel with
    | Some [ (_, t) ] -> (
      match t with
      | Tint | Tany | Tnull -> ()
      | t ->
        warnf ctx "W105" "Qs snapshot-id column is %s-typed, not integer" (ty_name t))
    | Some outs ->
      errf ctx "E021" "Qs must project a single snapshot-id column (got %d)"
        (List.length outs)
    | None -> ())
  | _ -> errf ctx "E021" "Qs must be a SELECT statement over the snapshot set");
  finish ctx
