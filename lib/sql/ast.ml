(* Abstract syntax for the SQL dialect.

   The dialect is the SQLite subset the paper's programs need, plus
   Retro's [AS OF] extension: SELECT with joins / GROUP BY / HAVING /
   ORDER BY / LIMIT / DISTINCT, scalar and aggregate functions, UDF
   calls, INSERT / UPDATE / DELETE, CREATE TABLE [AS] / CREATE INDEX /
   DROP, and BEGIN / COMMIT [WITH SNAPSHOT] / ROLLBACK. *)

type value = Storage.Record.value

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod | Concat
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Lit of value
  | Col of string option * string (* optional table qualifier, column name *)
  | Colidx of int                 (* resolved positional reference (internal) *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Like of { subject : expr; pattern : expr; negated : bool }
  | In_list of { subject : expr; candidates : expr list; negated : bool }
  | Between of { subject : expr; low : expr; high : expr; negated : bool }
  | Is_null of { subject : expr; negated : bool }
  | Call of string * expr list    (* scalar builtin or UDF *)
  | Agg of agg                    (* aggregate function call *)
  | Case of { branches : (expr * expr) list; else_ : expr option }
  | Cast of expr * string         (* CAST(e AS type) *)
  | Subquery of select            (* scalar subquery (uncorrelated) *)
  | In_select of { subject : expr; sub : select; negated : bool }
  | Exists of { sub : select; negated : bool }
  | Aggref of int                 (* resolved aggregate slot (internal) *)
  | Param of int                  (* positional parameter (? placeholder), 0-based *)
  | In_set of {                   (* internal: materialized IN (SELECT ...) *)
      subject : expr;
      set : (string, unit) Hashtbl.t;
      has_null : bool;
      negated : bool;
    }

and agg = {
  agg_fn : string;            (* count, sum, avg, min, max, total *)
  agg_arg : expr option;      (* None = COUNT star *)
  agg_distinct : bool;
}

and sel_item =
  | Star
  | Table_star of string
  | Sel_expr of expr * string option (* expr AS alias *)

and order_item = { ord_expr : expr; ord_desc : bool }

and table_ref = { tbl_name : string; tbl_alias : string option }

and join_kind = Join_inner | Join_left

and join_clause = { join_table : table_ref; join_on : expr option; join_kind : join_kind }

and select = {
  as_of : expr option;  (* SELECT AS OF <snapshot id> ... (Retro) *)
  distinct : bool;
  items : sel_item list;
  from : (table_ref * join_clause list) option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : order_item list;
  limit : expr option;
  offset : expr option;
  union_with : (bool * select) list; (* UNION (false) / UNION ALL (true) chain *)
}

type col_def = { col_name : string; col_type : string }

type stmt =
  | Select of select
  | Explain of select
  | Explain_profile of select (* EXPLAIN PROFILE: run and print span tree + counter deltas *)
  | Explain_analyze of select (* EXPLAIN ANALYZE: run and annotate the plan with actuals *)
  | Explain_lint of stmt      (* EXPLAIN LINT: analyze only, report diagnostics as rows *)
  | Insert of {
      table : string;
      columns : string list option;
      values : expr list list;     (* VALUES rows *)
      from_select : select option; (* INSERT INTO t SELECT ... *)
    }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Create_table of {
      table : string;
      cols : col_def list;
      if_not_exists : bool;
      as_select : select option;
    }
  | Create_index of {
      index : string;
      table : string;
      columns : string list;
      if_not_exists : bool;
    }
  | Drop_table of { table : string; if_exists : bool }
  | Drop_index of { index : string; if_exists : bool }
  | Begin_txn
  | Commit of { with_snapshot : bool }
  | Rollback
  | Analyze_archive (* ANALYZE ARCHIVE: snapshot-archive health report *)
  | Vacuum_snapshots of {
      older_than : expr option;   (* OLDER THAN n: drop ids < n *)
      keeping_last : expr option; (* KEEPING LAST n: retain the n newest *)
      dry_run : bool;             (* report reclaimable space, change nothing *)
    } (* VACUUM SNAPSHOTS: drop an archive prefix and compact the Pagelog *)
  | Checkpoint (* CHECKPOINT: materialize the WAL into an image and truncate it *)
  | Pragma of string (* PRAGMA integrity_check etc. *)
