(* Database backup/restore.

   A database image captures the committed pages and, for snapshottable
   databases, the whole Retro state (Pagelog, Maplog, COW bookkeeping) —
   so a saved database reopens with its entire snapshot history intact
   and AS OF queries keep working.  Registered functions are not part of
   the image and must be re-registered by the caller (Rql.load does).

   On disk an image is a framed container:

     magic (8 bytes) | u32 LE format version | u32 LE payload length |
     u32 LE CRC32(payload) | payload (Marshal)

   so a truncated or bit-flipped file fails with a typed {!Error}
   before Marshal ever sees it — never decoded into garbage. *)

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type image = {
  img_pager : Storage.Pager.image;
  img_retro : Retro.image option;
}

let magic = "RQLDB002"
let version = 2
let header_size = 20 (* magic + version + length + crc *)

(* --- the framed container (shared with Rql context save/load) ----------- *)

let put_u32 oc v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  output_bytes oc b

let get_u32 (b : Bytes.t) off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

(* Write [payload] at [path] under [magic] (8 bytes) with version,
   length and whole-payload CRC32. *)
let write_framed ~magic ~path (payload : string) =
  if String.length magic <> 8 then invalid_arg "Backup.write_framed: magic must be 8 bytes";
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      put_u32 oc version;
      put_u32 oc (String.length payload);
      put_u32 oc (Storage.Crc32.string payload);
      output_string oc payload)

(* Read and verify a framed payload; every failure mode is a distinct
   typed error. *)
let read_framed ~magic ~path : string =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let total = in_channel_length ic in
      if total < header_size then error "%s: too short to be an image (%d bytes)" path total;
      let hdr = Bytes.create header_size in
      really_input ic hdr 0 header_size;
      let m = Bytes.sub_string hdr 0 8 in
      if m <> magic then error "%s: not a database image (bad magic %S)" path m;
      let v = get_u32 hdr 8 in
      if v <> version then error "%s: unsupported image format version %d" path v;
      let len = get_u32 hdr 12 in
      let crc = get_u32 hdr 16 in
      if total - header_size <> len then
        error "%s: truncated image (%d payload bytes, expected %d)" path
          (total - header_size) len;
      let payload = Bytes.create len in
      really_input ic payload 0 len;
      if Storage.Crc32.bytes payload <> crc then
        error "%s: image checksum mismatch (corrupt or bit-flipped)" path;
      Bytes.unsafe_to_string payload)

(* --- database images ----------------------------------------------------- *)

(* Capture a consistent image of the committed state. *)
let snapshot_image (db : Db.t) : image =
  if Db.in_txn db then error "cannot back up a database with an open transaction";
  { img_pager = Storage.Pager.dump db.Db.pager;
    img_retro = Option.map Retro.export db.Db.retro }

(* Materialize an image as a fresh database handle. *)
let restore_image (img : image) : Db.t =
  let pager = Storage.Pager.restore img.img_pager in
  let retro = Option.map (fun r -> Retro.import pager r) img.img_retro in
  Db.of_parts ~pager ~retro

(* Save the database to [path] (overwriting). *)
let save (db : Db.t) ~path =
  write_framed ~magic ~path (Marshal.to_string (snapshot_image db) [])

(* Load a database saved by {!save}. *)
let load ~path : Db.t =
  let payload = read_framed ~magic ~path in
  let img =
    (* the frame's CRC already vouched for the bytes; a Marshal failure
       here means a same-size forgery or an incompatible runtime *)
    match (Marshal.from_string payload 0 : image) with
    | img -> img
    | exception Failure m -> error "%s: image payload does not unmarshal: %s" path m
  in
  restore_image img
