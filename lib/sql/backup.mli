(** Database backup/restore.

    An image captures the committed pages and, for snapshottable
    databases, the whole Retro state (Pagelog, Maplog, COW bookkeeping):
    a saved database reopens with its complete snapshot history and
    AS OF queries keep working.  Registered functions are not part of
    the image; callers re-register them (Rql.load does). *)

exception Error of string

type image

(** {1 Framed container}

    On disk every image is [magic (8 bytes) | u32 version | u32 payload
    length | u32 CRC32(payload) | payload], so truncation and bit flips
    fail typed before any decoding.  Exposed for other persisted
    artifacts (Rql context files) to share the same hardening. *)

(** Write [payload] at [path] under an 8-byte [magic]. *)
val write_framed : magic:string -> path:string -> string -> unit

(** Read and verify a framed payload.
    @raise Error on bad magic, bad version, truncation or checksum
    mismatch. *)
val read_framed : magic:string -> path:string -> string

(** Capture a consistent image.
    @raise Error if a transaction is open. *)
val snapshot_image : Db.t -> image

(** Materialize an image as a fresh handle. *)
val restore_image : image -> Db.t

(** Save to [path], overwriting. *)
val save : Db.t -> path:string -> unit

(** Load a database saved by {!save}.
    @raise Error on a malformed or foreign file. *)
val load : path:string -> Db.t
