(* Checkpoint images: the durable materialization that lets the WAL be
   truncated (bounding recovery replay) and makes VACUUM's Pagelog
   compaction crash-atomic.

   File layout (the image lives beside the log, at <wal>.ckpt):

     magic "RQLCKPT1" (8 bytes) | u32 LE format version | u32 LE seq
     | u32 LE payload length | u32 LE CRC32(payload)
     | payload (marshalled {!image})

   The image carries the committed pager state and the Retro archive
   with *stored* block CRCs (Retro.export_raw), so a latent archive
   corruption survives checkpoint + recovery as a corruption the scrub
   re-finds — never silently blessed.

   Write protocol (Db.checkpoint drives it, under the pager's writer
   lock, with every step a fault-injection point):

     1. Wal.sync                 — every logged commit is on the medium
     2. serialize the image      -> <ckpt>.tmp   (torn crash point inside)
     3. rename <ckpt>.tmp        -> <ckpt>.new   (image durable, not yet live)
     4. Wal.truncate_to_checkpoint seq           — WAL swap rename: COMMIT POINT
     5. rename <ckpt>.new        -> <ckpt>

   Crash safety: before step 4's rename the old log — a complete record
   of every commit — is still in force, and recovery ignores .tmp/.new
   leftovers; from step 4 on, the log's Checkpoint frame names seq N
   and the matching image is durable at <ckpt>.new or <ckpt> (step 3
   happened-before step 4), so recovery always finds it.  A crash can
   therefore yield the pre-checkpoint world or the post-checkpoint
   world, never a hybrid — which is exactly the old-or-new guarantee
   VACUUM inherits by committing through a checkpoint. *)

let magic = "RQLCKPT1"
let version = 1
let header_size = 24 (* magic + version + seq + payload len + payload crc *)

type image = {
  ck_seq : int;                       (* pairs with the WAL Checkpoint frame *)
  ck_pager : Storage.Pager.image;     (* committed current state + free list *)
  ck_retro : Retro.raw_image;         (* archive with stored block CRCs *)
}

(* The image path for a WAL at [wal_path]. *)
let path_for wal_path = wal_path ^ ".ckpt"

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let get_u32 (b : Bytes.t) off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

(* Serialize [img] to <path>.tmp and rename it to <path>.new.  [tick]
   is the fault-injection hook: it fires once *mid-record* (so a crash
   leaves a torn image, which recovery never reads — only .ckpt/.new
   are consulted) and once before the rename. *)
let write ~tick ~path (img : image) =
  let payload = Marshal.to_bytes img [] in
  let buf = Buffer.create (Bytes.length payload + header_size) in
  Buffer.add_string buf magic;
  add_u32 buf version;
  add_u32 buf img.ck_seq;
  add_u32 buf (Bytes.length payload);
  add_u32 buf (Storage.Crc32.bytes payload);
  Buffer.add_bytes buf payload;
  let bytes = Buffer.contents buf in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let half = String.length bytes / 2 in
      output_string oc (String.sub bytes 0 half);
      tick (); (* torn-checkpoint-record injection point *)
      output_string oc (String.sub bytes half (String.length bytes - half));
      flush oc);
  tick ();
  Sys.rename tmp (path ^ ".new")

(* Promote the durably written image to its live name — the final step
   of the protocol, after the WAL swap made it authoritative. *)
let promote ~tick ~path =
  tick ();
  if Sys.file_exists (path ^ ".new") then Sys.rename (path ^ ".new") path

(* Parse one candidate file.  [None] for anything not a complete,
   checksum-valid image — a torn or bit-flipped file never yields a
   state. *)
let load file : image option =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let read_exact n =
          let b = Bytes.create n in
          really_input ic b 0 n;
          b
        in
        match read_exact header_size with
        | exception End_of_file -> None
        | hdr ->
          if Bytes.sub_string hdr 0 8 <> magic then None
          else if get_u32 hdr 8 <> version then None
          else begin
            let plen = get_u32 hdr 16 in
            let crc = get_u32 hdr 20 in
            if plen > in_channel_length ic - header_size then None
            else
              match read_exact plen with
              | exception End_of_file -> None
              | payload ->
                if Storage.Crc32.bytes payload <> crc then None
                else Some (Marshal.from_bytes payload 0 : image)
          end)

(* The image matching WAL checkpoint frame [seq]: the live file or, in
   the window between the WAL swap and the final promote, the .new
   file.  The protocol guarantees one of them exists with this seq. *)
let load_for ~wal_path ~seq : image option =
  let path = path_for wal_path in
  let matching file =
    match load file with
    | Some img when img.ck_seq = seq -> Some img
    | _ -> None
  in
  match matching path with
  | Some img -> Some img
  | None -> matching (path ^ ".new")

(* Post-recovery cleanup: delete the write-in-progress temp file, and
   either finish an interrupted promote (.new matches the recovered
   frame) or discard a stale .new from a checkpoint that never reached
   its WAL swap. *)
let finish ~wal_path ~seq =
  let path = path_for wal_path in
  if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp");
  if Sys.file_exists (path ^ ".new") then begin
    let keep =
      match (seq, load (path ^ ".new")) with
      | Some s, Some img -> img.ck_seq = s
      | _ -> false
    in
    if keep then Sys.rename (path ^ ".new") path else Sys.remove (path ^ ".new")
  end
