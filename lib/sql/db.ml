(* Database handle: a per-session view over a shared database core.

   The [core] owns everything that is a property of the database itself
   — the pager (optionally with a Retro snapshot system attached), the
   WAL, registered functions, the one explicit transaction, the
   current-state catalog cache and the schema generation counter.  A
   [t] is a session over that core: it owns the prepared-plan cache and
   its hit/miss counters, the observability knobs (EXPLAIN ANALYZE
   state, slow-query threshold), the metric scope statements charge,
   and a private heap-handle cache.  [session] derives a fresh session
   from any handle; [create] returns the database's root session.

   Cross-session plan invalidation rides on the shared generation
   counter: DDL through any session bumps [core.generation], and every
   session's cached plans carry the generation they were built under,
   so they re-plan on next use no matter which session compiled them.

   A handle created with [snapshots:false] is a non-snapshottable
   database; RQL stores SnapIds and result tables in such a database, as
   the paper describes (§3). *)

module R = Storage.Record

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type fn = R.value array -> R.value

type core = {
  c_pager : Storage.Pager.t;
  c_retro : Retro.t option;
  mutable c_wal : Storage.Wal.t option;       (* durability log (open_wal) *)
  c_funcs : (string, fn) Hashtbl.t;
  mutable c_txn : Storage.Txn.t option;       (* explicit BEGIN..COMMIT *)
  (* Catalog cache tagged with the epoch it was loaded under; a commit
     or schema change from any session advances the epoch, so a slow
     concurrent loader cannot install a stale catalog afterwards. *)
  mutable c_catalog_cache : (int * Catalog.t) option;
  mutable c_catalog_epoch : int;
  mutable c_generation : int;                 (* plan-cache schema generation *)
  mutable c_ckpt_seq : int;                   (* last completed checkpoint seq *)
  mutable c_ckpt_threshold : int;             (* auto-checkpoint WAL bytes; 0 = off *)
  mutable c_maint : bool;                     (* a VACUUM/CHECKPOINT is running *)
  (* Guards the mutable core fields above plus the session registry;
     never held across page I/O or statement execution. *)
  c_lock : Mutex.t;
  mutable c_next_session : int;
  mutable c_sessions : session_info list;
}

and t = {
  core : core;
  (* The shared structures, re-exposed as handle fields: they are
     immutable properties of the core, and nearly every consumer
     reaches them as [db.Db.pager] / [db.Db.retro]. *)
  pager : Storage.Pager.t;
  retro : Retro.t option;
  session_id : int;
  mutable prepared_count : int;               (* statements prepared here *)
  (* Prepared-plan cache, keyed by statement text.  [core.c_generation]
     counts schema changes; a cached plan whose generation differs is
     stale. *)
  plan_cache : (string, Plan.cached) Hashtbl.t;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plan_invalidations : int;
  heap_handles : (int, Storage.Heap.t) Hashtbl.t; (* first page -> handle *)
  (* Observability knobs.  [analyze] turns on per-operator plan
     instrumentation for executions through this handle (EXPLAIN
     ANALYZE / analyzed RQL runs flip it for the duration);
     [slow_query_s] is the slow-query log threshold (None = off);
     [last_analysis] holds the most recent instrumented run. *)
  mutable analyze : bool;
  mutable slow_query_s : float option;
  mutable last_analysis : Plan.analysis option;
  (* Plan-IR optimizer gate (PRAGMA optimize=off flips it).  Cached
     plans are optimized, so toggling also resets [plan_cache]. *)
  mutable optimize : bool;
  (* The metric scope charged for work done through this handle; the
     engine activates it around every statement.  Defaults to the root
     scope (process-wide accounting, exactly the pre-scope behavior);
     a per-connection session installs a child scope here. *)
  mutable scope : Obs.Scope.t;
}

and session_info = { si_id : int; si_handle : t }

(* Every c_lock section goes through this guard (the lint gate's
   lock-discipline rule keys on the [Fun.protect] spelling). *)
let locked_core (core : core) f =
  Mutex.lock core.c_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock core.c_lock) f

let make_session core =
  locked_core core @@ fun () ->
  let id = core.c_next_session in
  core.c_next_session <- id + 1;
  let db =
    { core;
      pager = core.c_pager;
      retro = core.c_retro;
      session_id = id;
      prepared_count = 0;
      plan_cache = Hashtbl.create 32;
      plan_hits = 0;
      plan_misses = 0;
      plan_invalidations = 0;
      heap_handles = Hashtbl.create 16;
      analyze = false;
      slow_query_s = None;
      last_analysis = None;
      optimize = true;
      scope = Obs.Scope.root }
  in
  core.c_sessions <- { si_id = id; si_handle = db } :: core.c_sessions;
  db

(* Assemble a handle from restored parts (Backup). *)
let of_parts ~pager ~retro =
  let core =
    { c_pager = pager;
      c_retro = retro;
      c_wal = None;
      c_funcs = Hashtbl.create 16;
      c_txn = None;
      c_catalog_cache = None;
      c_catalog_epoch = 0;
      c_generation = 0;
      c_ckpt_seq = 0;
      c_ckpt_threshold = 0;
      c_maint = false;
      c_lock = Mutex.create ();
      c_next_session = 1;
      c_sessions = [] }
  in
  make_session core

(* Derive a fresh session over the same core: shared pages, snapshots,
   functions and schema generation; private plan cache, scope and
   observability state.  Derived sessions charge a child scope named
   after their id, so sys_scopes / sys_sessions attribute per-connection
   load; the root session keeps the root scope (process-wide totals,
   exactly the single-handle behavior). *)
let session t =
  let s = make_session t.core in
  s.scope <- Obs.Scope.create (Printf.sprintf "session:%d" s.session_id);
  s

let session_id t = t.session_id
let note_prepared t = t.prepared_count <- t.prepared_count + 1

(* Live sessions of this handle's core, oldest first (sys_sessions). *)
let sessions t =
  let ss = locked_core t.core (fun () -> List.rev t.core.c_sessions) in
  List.map (fun si -> si.si_handle) ss

(* Forget a derived session (a disconnected client); its plan cache and
   counters drop out of sys_sessions. *)
let close_session t =
  locked_core t.core (fun () ->
      t.core.c_sessions <-
        List.filter (fun si -> si.si_id <> t.session_id) t.core.c_sessions)

let generation t = t.core.c_generation

let create ?(snapshots = true) () =
  let pager = Storage.Pager.create () in
  let retro = if snapshots then Some (Retro.attach pager) else None in
  let db = of_parts ~pager ~retro in
  Storage.Txn.with_txn pager (fun txn -> Catalog.bootstrap txn);
  db

let retro_exn t =
  match t.retro with
  | Some r -> r
  | None -> error "this database has no snapshot system attached"

(* --- durability (WAL-backed databases) ----------------------------------- *)

type recovery = {
  rec_report : Storage.Wal.report;
  rec_snapshots : int;   (* snapshots recovered *)
  rec_damaged : int list; (* snapshots referencing corrupt archive blocks *)
}

(* Open a WAL-backed snapshottable database at [path].

   Fresh (missing or empty) path: create the log first, then bootstrap
   the catalog *through* it, so the log is a complete record from page
   zero and recovery is pure replay.

   Existing path: scan the log (truncating a torn/corrupt tail to the
   last complete commit).  If the log opens with a Checkpoint frame,
   restore the matching durable image (pager + raw-CRC Retro archive,
   see Ckpt) and replay only the frames after it; otherwise rebuild by
   replaying the full commit sequence — which re-drives Retro's COW
   archiver and reproduces the Pagelog/Maplog byte-for-byte.  Either
   way, scrub the archive afterwards so damaged snapshots are known
   before the first AS OF read.  Returns the recovery report; [None]
   when the database is fresh.

   @raise Storage.Wal.Error when [path] exists but is not a WAL, or
   when its Checkpoint frame has no matching valid image. *)
let open_wal ?(group_commit = 1) ~path () : t * recovery option =
  let exists = Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 in
  if not exists then begin
    let pager = Storage.Pager.create () in
    let retro = Retro.attach pager in
    let wal = Storage.Wal.create ~group_commit ~path () in
    Storage.Wal.attach wal pager;
    let db = of_parts ~pager ~retro:(Some retro) in
    db.core.c_wal <- Some wal;
    Storage.Txn.with_txn pager (fun txn -> Catalog.bootstrap txn);
    (db, None)
  end
  else begin
    let records, report = Storage.Wal.recover ~path in
    let pager, retro, suffix =
      match report.Storage.Wal.rep_checkpoint with
      | None ->
        let pager = Storage.Pager.create () in
        (pager, Retro.attach pager, records)
      | Some seq -> (
        match Ckpt.load_for ~wal_path:path ~seq with
        | None ->
          raise
            (Storage.Wal.Error
               (Printf.sprintf
                  "Wal %s: checkpoint %d has no matching image at %s" path seq
                  (Ckpt.path_for path)))
        | Some img ->
          let pager = Storage.Pager.restore img.Ckpt.ck_pager in
          let retro = Retro.import_raw pager img.Ckpt.ck_retro in
          (* Replay only the frames after the last Checkpoint —
             everything before it is already in the image. *)
          let after =
            List.fold_left
              (fun acc r ->
                match r with Storage.Wal.Checkpoint _ -> [] | r -> r :: acc)
              [] records
            |> List.rev
          in
          (pager, retro, after))
    in
    (* pager.wal is still None here: replay must not re-log itself *)
    Storage.Wal.replay ~pager
      ~declare:(fun ~db_pages ~ts -> ignore (Retro.declare_at retro ~db_pages ~ts))
      suffix;
    Obs.Scope.incr Storage.Stats.c_recoveries;
    (* Finish an interrupted image promote / drop stale temp files. *)
    Ckpt.finish ~wal_path:path ~seq:report.Storage.Wal.rep_checkpoint;
    let damaged = List.sort_uniq compare (List.map fst (Retro.scrub retro)) in
    let wal = Storage.Wal.open_append ~group_commit ~path () in
    Storage.Wal.attach wal pager;
    let db = of_parts ~pager ~retro:(Some retro) in
    db.core.c_wal <- Some wal;
    db.core.c_ckpt_seq <-
      Option.value report.Storage.Wal.rep_checkpoint ~default:0;
    (* If no commit survived (the catalog-bootstrap commit itself was
       lost to an unflushed batch or a damaged tail), the valid prefix
       describes an empty database: bootstrap again, through the log. *)
    if Storage.Pager.n_pages pager = 0 then
      Storage.Txn.with_txn pager (fun txn -> Catalog.bootstrap txn);
    ( db,
      Some
        { rec_report = report;
          rec_snapshots = Retro.snapshot_count retro;
          rec_damaged = damaged } )
  end

let wal t = t.core.c_wal
let wal_status t = Option.map Storage.Wal.status t.core.c_wal

(* Flush + fsync any pending WAL tail (e.g. group-commit remainder). *)
let sync_wal t = Option.iter Storage.Wal.sync t.core.c_wal

let close_wal t =
  Option.iter Storage.Wal.close t.core.c_wal;
  t.core.c_wal <- None

let in_txn t =
  match t.core.c_txn with Some txn -> Storage.Txn.is_active txn | None -> false

(* --- archive lifecycle (CHECKPOINT / VACUUM SNAPSHOTS) ------------------- *)

(* Auto-checkpoint trigger: WAL frame bytes since the last checkpoint
   that cause a commit to checkpoint afterwards (0 = disabled;
   PRAGMA checkpoint_threshold). *)
let checkpoint_threshold t = t.core.c_ckpt_threshold

let set_checkpoint_threshold t n =
  if n < 0 then error "checkpoint_threshold must be >= 0";
  t.core.c_ckpt_threshold <- n

let checkpoint_seq t = t.core.c_ckpt_seq

(* One maintenance operation (vacuum or checkpoint) at a time, database-
   wide: the second errors instead of blocking, mirroring the explicit-
   transaction discipline (detected, never deadlocked). *)
let with_maintenance t name f =
  let core = t.core in
  locked_core core (fun () ->
      if core.c_maint then
        error "%s: another maintenance operation is in progress" name;
      core.c_maint <- true);
  Fun.protect
    ~finally:(fun () -> locked_core core (fun () -> core.c_maint <- false))
    f

(* The checkpoint protocol (see Ckpt for the crash-safety argument):
   sync the log, write the image beside it, swap in a truncated log —
   the commit point — then promote the image.  Caller holds the pager's
   writer lock and the maintenance flag.  Returns (seq, WAL bytes
   dropped). *)
let checkpoint_locked t wal =
  let retro = retro_exn t in
  let tick () = Storage.Wal.injection_point wal in
  Storage.Wal.sync wal;
  let seq = t.core.c_ckpt_seq + 1 in
  let img =
    { Ckpt.ck_seq = seq;
      ck_pager = Storage.Pager.dump t.pager;
      ck_retro = Retro.export_raw retro }
  in
  let path = Ckpt.path_for (Storage.Wal.path wal) in
  Ckpt.write ~tick ~path img;
  let dropped = Storage.Wal.truncate_to_checkpoint wal ~seq in
  Ckpt.promote ~tick ~path;
  t.core.c_ckpt_seq <- seq;
  Obs.Scope.incr Storage.Stats.c_checkpoints;
  (seq, dropped)

(* CHECKPOINT: materialize every logged commit into a durable image and
   truncate the WAL behind it.  Errors without a WAL (nothing to
   truncate) and inside an explicit transaction (the image must hold
   committed state only). *)
let checkpoint t =
  match t.core.c_wal with
  | None -> error "CHECKPOINT: this database has no write-ahead log"
  | Some wal ->
    if in_txn t then error "CHECKPOINT: cannot run inside a transaction";
    with_maintenance t "CHECKPOINT" (fun () ->
        Storage.Pager.with_write_lock t.pager (fun () ->
            checkpoint_locked t wal))

(* VACUUM SNAPSHOTS: drop every snapshot before [keep_from], rewrite the
   Pagelog down to the live blocks (Retro.vacuum), and — when WAL-backed
   — commit the compacted archive through a checkpoint, whose WAL swap
   is the durable commit point: a crash recovers the old archive or the
   new one, never a hybrid.  Runs as a pager writer, so it waits for
   in-flight AS OF readers and blocks new ones until installed. *)
let vacuum_snapshots t ~keep_from =
  let retro = retro_exn t in
  if in_txn t then error "VACUUM SNAPSHOTS: cannot run inside a transaction";
  with_maintenance t "VACUUM SNAPSHOTS" (fun () ->
      Storage.Pager.with_write_lock t.pager (fun () ->
          let tick =
            match t.core.c_wal with
            | Some wal -> fun () -> Storage.Wal.injection_point wal
            | None -> fun () -> ()
          in
          let res = Retro.vacuum ~tick retro ~keep_from in
          (match t.core.c_wal with
          | Some wal when res.Retro.vr_snapshots > 0 ->
            ignore (checkpoint_locked t wal)
          | _ -> ());
          res))

(* Post-commit hook: checkpoint when the log has outgrown the threshold.
   Skips silently when an explicit maintenance operation already owns
   the flag. *)
let maybe_auto_checkpoint t =
  match t.core.c_wal with
  | Some wal
    when t.core.c_ckpt_threshold > 0
         && (not (in_txn t))
         && Storage.Wal.bytes_since_checkpoint wal >= t.core.c_ckpt_threshold ->
    let claimed =
      locked_core t.core (fun () ->
          if t.core.c_maint then false
          else begin
            t.core.c_maint <- true;
            true
          end)
    in
    if claimed then
      Fun.protect
        ~finally:(fun () ->
          locked_core t.core (fun () -> t.core.c_maint <- false))
        (fun () ->
          Storage.Pager.with_write_lock t.pager (fun () ->
              ignore (checkpoint_locked t wal)))
  | _ -> ()

(* Install the scope statements through this handle charge (root by
   default); the engine wraps every execution in it. *)
let set_scope t scope = t.scope <- scope
let scope t = t.scope

(* Function registry is core-wide: a UDF registered through any session
   is visible to all of them (RQL registers its loop-body UDFs once and
   evaluates through derived sessions).  Registration is expected at
   setup time — it is not synchronized against concurrent lookups. *)
let register_fn t name fn =
  Hashtbl.replace t.core.c_funcs (String.lowercase_ascii name) fn

(* A handle-registered function (as opposed to a pure builtin).  UDFs
   run arbitrary code — the RQL mechanisms registered on the meta
   database write tables — so the engine must not classify a SELECT
   calling one as a pure reader. *)
let is_udf t name = Hashtbl.mem t.core.c_funcs (String.lowercase_ascii name)

let lookup_fn t name =
  let name = String.lowercase_ascii name in
  match Hashtbl.find_opt t.core.c_funcs name with
  | Some f -> Some f
  | None -> Func.find name

let fn_ctx t : Expr.fn_ctx = { Expr.lookup_fn = (fun name -> lookup_fn t name) }

(* Read context for the current state: the open transaction's view if
   one is active, otherwise the committed state. *)
let read_current t : Storage.Pager.read =
  match t.core.c_txn with
  | Some txn when Storage.Txn.is_active txn -> Storage.Txn.read_ctx txn
  | _ -> Storage.Pager.read t.pager

let invalidate_catalog t =
  locked_core t.core (fun () ->
      t.core.c_catalog_cache <- None;
      t.core.c_catalog_epoch <- t.core.c_catalog_epoch + 1)

(* The schema changed (DDL or rollback of possible DDL): drop the
   catalog cache and advance the plan-cache generation so every cached
   plan — in every session — re-plans on next use. *)
let schema_changed t =
  locked_core t.core (fun () ->
      t.core.c_catalog_cache <- None;
      t.core.c_catalog_epoch <- t.core.c_catalog_epoch + 1;
      t.core.c_generation <- t.core.c_generation + 1)

let catalog t =
  match t.core.c_txn with
  | Some txn when Storage.Txn.is_active txn ->
    (* Inside a transaction the catalog may contain uncommitted DDL;
       don't cache. *)
    Catalog.load (Storage.Txn.read_ctx txn)
  | _ -> (
    let core = t.core in
    let cached, epoch =
      locked_core core (fun () -> (core.c_catalog_cache, core.c_catalog_epoch))
    in
    match cached with
    | Some (e, c) when e = epoch -> c
    | _ ->
      let c = Catalog.load (Storage.Pager.read t.pager) in
      (* Only install if nothing invalidated the catalog while we were
         loading it — otherwise we would cache a stale schema. *)
      locked_core core (fun () ->
          if core.c_catalog_epoch = epoch then core.c_catalog_cache <- Some (epoch, c));
      c)

(* Cached heap handle (keeps insert hints warm across statements);
   session-private, so concurrent readers never share insert hints. *)
let heap_handle t first_page =
  match Hashtbl.find_opt t.heap_handles first_page with
  | Some h -> h
  | None ->
    let h = Storage.Heap.open_existing first_page in
    Hashtbl.add t.heap_handles first_page h;
    h

let drop_heap_handle t first_page = Hashtbl.remove t.heap_handles first_page

(* Run [f] in the open transaction, or wrap it in an autocommit
   transaction if none is open. *)
let with_write_txn t f =
  match t.core.c_txn with
  | Some txn when Storage.Txn.is_active txn -> f txn
  | _ -> Storage.Txn.with_txn t.pager f

(* The explicit transaction slot is a property of the database, not the
   session: a second BEGIN — from this session or any other — errors
   rather than blocks (one writer at a time, detected, never deadlocked). *)
let begin_txn t =
  (match t.core.c_txn with
  | Some txn when Storage.Txn.is_active txn -> error "transaction already open"
  | _ -> ());
  t.core.c_txn <- Some (Storage.Txn.begin_txn t.pager)

(* Commit; with [snapshot] also declares a Retro snapshot reflecting the
   committed state and returns its id. *)
let commit t ~snapshot =
  let sid =
    match t.core.c_txn with
    | Some txn when Storage.Txn.is_active txn ->
      Storage.Txn.commit txn;
      t.core.c_txn <- None;
      if snapshot then Some (Retro.declare (retro_exn t)) else None
    | _ ->
      (* COMMIT WITH SNAPSHOT outside BEGIN declares a snapshot of the
         current committed state. *)
      if snapshot then Some (Retro.declare (retro_exn t))
      else error "no transaction is open"
  in
  invalidate_catalog t;
  maybe_auto_checkpoint t;
  sid

let rollback t =
  (match t.core.c_txn with
  | Some txn when Storage.Txn.is_active txn ->
    Storage.Txn.abort txn;
    t.core.c_txn <- None
  | _ -> error "no transaction is open");
  schema_changed t
