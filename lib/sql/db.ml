(* Database handle: a pager (optionally with a Retro snapshot system
   attached), the current explicit transaction, registered functions and
   cached handles.

   A handle created with [snapshots:false] is a non-snapshottable
   database; RQL stores SnapIds and result tables in such a database, as
   the paper describes (§3). *)

module R = Storage.Record

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type fn = R.value array -> R.value

type t = {
  pager : Storage.Pager.t;
  retro : Retro.t option;
  mutable wal : Storage.Wal.t option;         (* durability log (open_wal) *)
  funcs : (string, fn) Hashtbl.t;
  mutable txn : Storage.Txn.t option;         (* explicit BEGIN..COMMIT *)
  mutable catalog_cache : Catalog.t option;   (* current-state catalog *)
  heap_handles : (int, Storage.Heap.t) Hashtbl.t; (* first page -> handle *)
  (* Prepared-plan cache, keyed by statement text.  [generation] counts
     schema changes; a cached plan whose generation differs is stale. *)
  plan_cache : (string, Plan.cached) Hashtbl.t;
  mutable generation : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plan_invalidations : int;
  (* Observability knobs.  [analyze] turns on per-operator plan
     instrumentation for executions through this handle (EXPLAIN
     ANALYZE / analyzed RQL runs flip it for the duration);
     [slow_query_s] is the slow-query log threshold (None = off);
     [last_analysis] holds the most recent instrumented run. *)
  mutable analyze : bool;
  mutable slow_query_s : float option;
  mutable last_analysis : Plan.analysis option;
  (* The metric scope charged for work done through this handle; the
     engine activates it around every statement.  Defaults to the root
     scope (process-wide accounting, exactly the pre-scope behavior);
     a per-connection session would install a child scope here. *)
  mutable scope : Obs.Scope.t;
}

(* Assemble a handle from restored parts (Backup). *)
let of_parts ~pager ~retro =
  { pager;
    retro;
    wal = None;
    funcs = Hashtbl.create 16;
    txn = None;
    catalog_cache = None;
    heap_handles = Hashtbl.create 16;
    plan_cache = Hashtbl.create 32;
    generation = 0;
    plan_hits = 0;
    plan_misses = 0;
    plan_invalidations = 0;
    analyze = false;
    slow_query_s = None;
    last_analysis = None;
    scope = Obs.Scope.root }

let create ?(snapshots = true) () =
  let pager = Storage.Pager.create () in
  let retro = if snapshots then Some (Retro.attach pager) else None in
  let db = of_parts ~pager ~retro in
  Storage.Txn.with_txn pager (fun txn -> Catalog.bootstrap txn);
  db

let retro_exn t =
  match t.retro with
  | Some r -> r
  | None -> error "this database has no snapshot system attached"

(* --- durability (WAL-backed databases) ----------------------------------- *)

type recovery = {
  rec_report : Storage.Wal.report;
  rec_snapshots : int;   (* snapshots recovered *)
  rec_damaged : int list; (* snapshots referencing corrupt archive blocks *)
}

(* Open a WAL-backed snapshottable database at [path].

   Fresh (missing or empty) path: create the log first, then bootstrap
   the catalog *through* it, so the log is a complete record from page
   zero and recovery is pure replay.

   Existing path: scan the log (truncating a torn/corrupt tail to the
   last complete commit), rebuild the pager by replaying the commit
   sequence — which re-drives Retro's COW archiver and reproduces the
   Pagelog/Maplog byte-for-byte — then scrub the rebuilt archive so
   damaged snapshots are known before the first AS OF read.  Returns
   the recovery report; [None] when the database is fresh.

   @raise Storage.Wal.Error when [path] exists but is not a WAL. *)
let open_wal ?(group_commit = 1) ~path () : t * recovery option =
  let exists = Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 in
  let pager = Storage.Pager.create () in
  let retro = Retro.attach pager in
  if not exists then begin
    let wal = Storage.Wal.create ~group_commit ~path () in
    Storage.Wal.attach wal pager;
    let db = of_parts ~pager ~retro:(Some retro) in
    db.wal <- Some wal;
    Storage.Txn.with_txn pager (fun txn -> Catalog.bootstrap txn);
    (db, None)
  end
  else begin
    let records, report = Storage.Wal.recover ~path in
    (* pager.wal is still None here: replay must not re-log itself *)
    Storage.Wal.replay ~pager
      ~declare:(fun ~db_pages ~ts -> ignore (Retro.declare_at retro ~db_pages ~ts))
      records;
    Obs.Scope.incr Storage.Stats.c_recoveries;
    let damaged = List.sort_uniq compare (List.map fst (Retro.scrub retro)) in
    let wal = Storage.Wal.open_append ~group_commit ~path () in
    Storage.Wal.attach wal pager;
    let db = of_parts ~pager ~retro:(Some retro) in
    db.wal <- Some wal;
    (* If no commit survived (the catalog-bootstrap commit itself was
       lost to an unflushed batch or a damaged tail), the valid prefix
       describes an empty database: bootstrap again, through the log. *)
    if Storage.Pager.n_pages pager = 0 then
      Storage.Txn.with_txn pager (fun txn -> Catalog.bootstrap txn);
    ( db,
      Some
        { rec_report = report;
          rec_snapshots = Retro.snapshot_count retro;
          rec_damaged = damaged } )
  end

let wal_status t = Option.map Storage.Wal.status t.wal

(* Flush + fsync any pending WAL tail (e.g. group-commit remainder). *)
let sync_wal t = Option.iter Storage.Wal.sync t.wal

let close_wal t =
  Option.iter Storage.Wal.close t.wal;
  t.wal <- None

(* Install the scope statements through this handle charge (root by
   default); the engine wraps every execution in it. *)
let set_scope t scope = t.scope <- scope
let scope t = t.scope

let register_fn t name fn = Hashtbl.replace t.funcs (String.lowercase_ascii name) fn

let lookup_fn t name =
  let name = String.lowercase_ascii name in
  match Hashtbl.find_opt t.funcs name with
  | Some f -> Some f
  | None -> Func.find name

let fn_ctx t : Expr.fn_ctx = { Expr.lookup_fn = (fun name -> lookup_fn t name) }

(* Read context for the current state: the open transaction's view if
   one is active, otherwise the committed state. *)
let read_current t : Storage.Pager.read =
  match t.txn with
  | Some txn when Storage.Txn.is_active txn -> Storage.Txn.read_ctx txn
  | _ -> Storage.Pager.read t.pager

let invalidate_catalog t = t.catalog_cache <- None

(* The schema changed (DDL or rollback of possible DDL): drop the
   catalog cache and advance the plan-cache generation so every cached
   plan re-plans on next use. *)
let schema_changed t =
  t.catalog_cache <- None;
  t.generation <- t.generation + 1

let catalog t =
  match t.txn with
  | Some txn when Storage.Txn.is_active txn ->
    (* Inside a transaction the catalog may contain uncommitted DDL;
       don't cache. *)
    Catalog.load (Storage.Txn.read_ctx txn)
  | _ -> (
    match t.catalog_cache with
    | Some c -> c
    | None ->
      let c = Catalog.load (Storage.Pager.read t.pager) in
      t.catalog_cache <- Some c;
      c)

(* Cached heap handle (keeps insert hints warm across statements). *)
let heap_handle t first_page =
  match Hashtbl.find_opt t.heap_handles first_page with
  | Some h -> h
  | None ->
    let h = Storage.Heap.open_existing first_page in
    Hashtbl.add t.heap_handles first_page h;
    h

let drop_heap_handle t first_page = Hashtbl.remove t.heap_handles first_page

(* Run [f] in the open transaction, or wrap it in an autocommit
   transaction if none is open. *)
let with_write_txn t f =
  match t.txn with
  | Some txn when Storage.Txn.is_active txn -> f txn
  | _ -> Storage.Txn.with_txn t.pager f

let begin_txn t =
  (match t.txn with
  | Some txn when Storage.Txn.is_active txn -> error "transaction already open"
  | _ -> ());
  t.txn <- Some (Storage.Txn.begin_txn t.pager)

(* Commit; with [snapshot] also declares a Retro snapshot reflecting the
   committed state and returns its id. *)
let commit t ~snapshot =
  let sid =
    match t.txn with
    | Some txn when Storage.Txn.is_active txn ->
      Storage.Txn.commit txn;
      t.txn <- None;
      if snapshot then Some (Retro.declare (retro_exn t)) else None
    | _ ->
      (* COMMIT WITH SNAPSHOT outside BEGIN declares a snapshot of the
         current committed state. *)
      if snapshot then Some (Retro.declare (retro_exn t))
      else error "no transaction is open"
  in
  invalidate_catalog t;
  sid

let rollback t =
  (match t.txn with
  | Some txn when Storage.Txn.is_active txn ->
    Storage.Txn.abort txn;
    t.txn <- None
  | _ -> error "no transaction is open");
  schema_changed t

let in_txn t = match t.txn with Some txn -> Storage.Txn.is_active txn | None -> false
