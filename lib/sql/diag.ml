(* Diagnostics emitted by the static analyzer.

   Every diagnostic carries a stable code (E0xx = error, W1xx =
   warning), an optional 1-based source position (line:col of the
   offending identifier, when the statement text is known), and a
   human-readable message.  The catalogue of codes lives in DESIGN.md
   §7; codes are stable across releases so tests and tooling can match
   on them. *)

type severity = Error | Warning

type t = {
  code : string;            (* stable code, e.g. "E002" or "W101" *)
  severity : severity;
  pos : Lexer.pos option;   (* position of the offending token, if known *)
  message : string;
}

let v ?pos ~severity code message = { code; severity; pos; message }

let is_error d = d.severity = Error

let severity_name = function Error -> "error" | Warning -> "warning"

(* "E002 at 1:8: no such column: zzz" — the form embedded in raised
   Engine.Error messages. *)
let to_string d =
  match d.pos with
  | Some p -> Printf.sprintf "%s at %s: %s" d.code (Lexer.pos_to_string p) d.message
  | None -> Printf.sprintf "%s: %s" d.code d.message

(* "error E002 at 1:8: no such column: zzz" — the form the shell's
   .lint prints, severity first. *)
let render d = Printf.sprintf "%s %s" (severity_name d.severity) (to_string d)
