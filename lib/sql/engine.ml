(* Public SQL engine API: parse and execute statements against a
   database handle, in the style of the sqlite3 C API the paper builds
   on.  [exec_rows] is the analogue of sqlite3_exec: it invokes a
   callback for every result row, which is how RQL mechanisms process
   snapshot-query output. *)

module R = Storage.Record
open Ast

exception Error of string

(* A dispatch invariant was violated — a bug in the engine, not a user
   error; carries the statement kind that reached the wrong handler. *)
exception Internal_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type db = Db.t

type result = {
  columns : string array;
  rows : R.row list;
  rows_affected : int;
  snapshot : int option; (* id returned by COMMIT WITH SNAPSHOT *)
}

let empty_result = { columns = [||]; rows = []; rows_affected = 0; snapshot = None }

let create = Db.create
let register_fn = Db.register_fn

(* --- DDL ------------------------------------------------------------- *)

let sanitize_cols cols =
  let seen = Hashtbl.create 8 in
  List.mapi
    (fun i (name, ty) ->
      let name = if name = "" then Printf.sprintf "column_%d" (i + 1) else name in
      let key = String.lowercase_ascii name in
      let name =
        if Hashtbl.mem seen key then Printf.sprintf "%s_%d" name (i + 1) else name
      in
      Hashtbl.replace seen (String.lowercase_ascii name) ();
      (name, ty))
    cols

(* The sys_ namespace belongs to the virtual system tables; reserving
   the whole prefix keeps future additions from colliding with user
   tables created under older versions. *)
let check_not_reserved name =
  let l = String.lowercase_ascii name in
  if String.length l >= 4 && String.sub l 0 4 = "sys_" then
    error "%s: the sys_ prefix is reserved for system tables" name

let check_not_virtual name =
  if Systables.is_virtual_name name then error "%s is a read-only system table" name

let create_table db ~name ~cols ~if_not_exists =
  check_not_reserved name;
  let cat = Db.catalog db in
  match Catalog.find_table cat name with
  | Some _ ->
    if if_not_exists then None
    else error "table %s already exists" name
  | None ->
    if cols = [] then error "table %s must have at least one column" name;
    let tbl =
      Db.with_write_txn db (fun txn ->
          let heap = Storage.Heap.create txn in
          let tbl =
            { Catalog.tname = name;
              tcols = Array.of_list (sanitize_cols cols);
              theap = Storage.Heap.first_page heap }
          in
          Catalog.add_table txn tbl;
          tbl)
    in
    Db.schema_changed db;
    Some tbl

let create_index db ~name ~table ~columns ~if_not_exists =
  let cat = Db.catalog db in
  match Catalog.find_index cat name with
  | Some _ -> if if_not_exists then () else error "index %s already exists" name
  | None ->
    let tbl =
      match Catalog.find_table cat table with
      | Some t -> t
      | None -> error "no such table: %s" table
    in
    List.iter (fun c -> ignore (Exec.col_pos tbl c)) columns;
    Db.with_write_txn db (fun txn ->
        let bt = Storage.Btree.create txn in
        let idx =
          { Catalog.iname = name; itable = tbl.Catalog.tname; icols = columns;
            iroot = Storage.Btree.root bt }
        in
        Catalog.add_index txn idx;
        (* populate from existing rows *)
        let read = Storage.Txn.read_ctx txn in
        Storage.Heap.iter read (Storage.Heap.open_existing tbl.Catalog.theap)
          ~f:(fun rid data ->
            let row = R.decode_row data in
            Storage.Btree.insert txn bt (Exec.index_key tbl idx row) rid));
    Db.schema_changed db

let drop_table db ~name ~if_exists =
  let cat = Db.catalog db in
  match Catalog.find_table cat name with
  | None -> if if_exists then 0 else error "no such table: %s" name
  | Some tbl ->
    Db.with_write_txn db (fun txn ->
        List.iter
          (fun idx ->
            Storage.Btree.drop txn (Storage.Btree.open_existing idx.Catalog.iroot);
            ignore (Catalog.remove_index cat txn idx.Catalog.iname))
          (Catalog.indexes_of_table cat tbl.Catalog.tname);
        Storage.Heap.drop txn (Storage.Heap.open_existing tbl.Catalog.theap);
        ignore (Catalog.remove_table cat txn name));
    Db.drop_heap_handle db tbl.Catalog.theap;
    Db.schema_changed db;
    1

let drop_index db ~name ~if_exists =
  let cat = Db.catalog db in
  match Catalog.find_index cat name with
  | None -> if if_exists then 0 else error "no such index: %s" name
  | Some idx ->
    Db.with_write_txn db (fun txn ->
        Storage.Btree.drop txn (Storage.Btree.open_existing idx.Catalog.iroot);
        ignore (Catalog.remove_index cat txn name));
    Db.schema_changed db;
    1

(* --- statement dispatch ---------------------------------------------- *)

let c_statements = Obs.Scope.counter "sql.statements"
let h_parse = Obs.Scope.histogram "sql.parse_latency"
let h_stmt = Obs.Scope.histogram "sql.stmt_latency"
let c_plan_hits = Obs.Scope.counter "sql.plan_cache_hits"
let c_plan_misses = Obs.Scope.counter "sql.plan_cache_misses"
let c_plan_invalidations = Obs.Scope.counter "sql.plan_cache_invalidations"
let c_analyzer_errors = Obs.Scope.counter "sql.analyzer_errors"
let c_analyzer_warnings = Obs.Scope.counter "sql.analyzer_warnings"

(* --- static analysis gate --------------------------------------------- *)

let has_fn db name = Db.lookup_fn db name <> None

(* Run the static analyzer over a parsed statement.  [sql] — the
   statement text, when the caller has it — lets diagnostics carry
   source positions. *)
let analyze_stmt db ?sql ?(mode = Analyzer.Stmt) (s : stmt) : Diag.t list =
  Analyzer.analyze ?sql ~cat:(Db.catalog db) ~has_fn:(has_fn db) ~mode s

let count_and_raise (diags : Diag.t list) : unit =
  List.iter
    (fun d ->
      Obs.Scope.incr
        (if Diag.is_error d then c_analyzer_errors else c_analyzer_warnings))
    diags;
  match List.filter Diag.is_error diags with
  | [] -> ()
  | errs -> raise (Error (String.concat "; " (List.map Diag.to_string errs)))

(* The hard gate every execution path passes through: warnings are
   counted, errors are counted and raised before any planning or page
   access.  EXPLAIN LINT is exempt — its job is to report, not
   refuse. *)
let analyzer_gate db ?sql ?mode (s : stmt) : unit =
  match s with
  | Explain_lint _ -> ()
  | _ -> count_and_raise (analyze_stmt db ?sql ?mode s)

(* Keep a runaway statement generator (e.g. textual SQL with inlined
   constants) from growing the cache without bound. *)
let plan_cache_cap = 512

(* Plan [sel] for execution against [env], through the per-handle plan
   cache when [key] (normally the statement text) is given.  A cache
   entry is valid while the handle's catalog generation is unchanged;
   DDL and rollback advance the generation, so stale plans re-plan on
   next use and are counted as invalidations. *)
(* Plan and run the abstract-interpretation optimizer over the result
   (unless PRAGMA optimize=off disabled it on this handle).  Everything
   downstream — execution, EXPLAIN rendering, the plan cache — sees the
   optimized tree, so cached plans are cached *optimized*. *)
let plan_optimized db ~cat (sel : select) : Plan.t =
  let plan = Planner.plan ~cat ~fnctx:(Db.fn_ctx db) sel in
  if db.Db.optimize then
    fst (Opt.optimize ~fnctx:(Db.fn_ctx db) ~is_udf:(fun n -> Db.is_udf db n) plan)
  else plan

(* Optimizer diagnostics (W2xx) for lint paths: plan the select against
   the current catalog and collect what the optimizer would warn about.
   Planning failures are the analyzer's department, not lint's, so any
   error here just yields no extra diagnostics. *)
let opt_diags db (s : stmt) : Diag.t list =
  if not db.Db.optimize then []
  else
    let of_sel sel =
      match
        let plan = Planner.plan ~cat:(Db.catalog db) ~fnctx:(Db.fn_ctx db) sel in
        snd (Opt.optimize ~fnctx:(Db.fn_ctx db) ~is_udf:(fun n -> Db.is_udf db n) plan)
      with
      | ds -> ds
      | exception (Planner.Error _ | Exec.Error _ | Db.Error _ | Expr.Error _) -> []
    in
    match s with
    | Select sel | Explain sel | Explain_analyze sel | Explain_profile sel -> of_sel sel
    | _ -> []

let plan_for db ?key (env : Exec.env) (sel : select) : Plan.t =
  let build () = plan_optimized db ~cat:env.Exec.cat sel in
  match key with
  | None -> build ()
  | Some key -> (
    let store p =
      if Hashtbl.length db.Db.plan_cache >= plan_cache_cap then Hashtbl.reset db.Db.plan_cache;
      Hashtbl.replace db.Db.plan_cache key { Plan.cp_plan = p; cp_gen = Db.generation db };
      p
    in
    match Hashtbl.find_opt db.Db.plan_cache key with
    | Some c when c.Plan.cp_gen = Db.generation db ->
      Obs.Scope.incr c_plan_hits;
      db.Db.plan_hits <- db.Db.plan_hits + 1;
      c.Plan.cp_plan
    | Some _ ->
      Obs.Scope.incr c_plan_invalidations;
      db.Db.plan_invalidations <- db.Db.plan_invalidations + 1;
      store (build ())
    | None ->
      Obs.Scope.incr c_plan_misses;
      db.Db.plan_misses <- db.Db.plan_misses + 1;
      store (build ()))

(* Plan (or fetch the cached plan), bind [params], and stream.  The
   environment is resolved first — binding the AS OF expression alone —
   so the same compiled plan executes against the current state or any
   snapshot. *)
let run_select db ?key ?(params = [||]) (sel : select) :
    string array * ((R.row -> unit) -> unit) =
  let env =
    match sel.as_of with
    | None -> Exec.current_env db
    | Some e -> Exec.env_of_as_of db (Plan.bind_expr params e)
  in
  let plan = plan_for db ?key env sel in
  Exec.stream_plan env (Plan.bind params plan)

let collect (columns, run) =
  let rows = ref [] in
  run (fun r -> rows := r :: !rows);
  { empty_result with columns; rows = List.rev !rows }

(* Does this select call a handle-registered UDF anywhere (including
   subqueries)?  A UDF body is arbitrary code — the RQL mechanisms
   registered on the meta database create and commit tables — so such a
   select cannot hold the statement-level read lock: its inner commits
   take the same lock in write mode and would deadlock on the
   statement's own read hold. *)
let select_calls_udf db (sel : select) =
  let found = ref false in
  ignore
    (Expr.map_select
       (fun e ->
         (match e with
          | Call (n, _) when Db.is_udf db n -> found := true
          | _ -> ());
         e)
       sel);
  !found

(* Statements that never mutate committed pages run as readers of the
   pager's rwlock, so concurrent sessions can overlap them; mutating
   statements take the lock in write mode inside Txn.commit (holding a
   read lock across a whole write statement would self-deadlock at its
   own commit).  The lock is reader-preferring, so the nested read
   sections this classification produces (e.g. a prepared statement
   evaluated inside a read statement) are safe. *)
let stmt_takes_read_lock db = function
  | Select s | Explain_profile s | Explain_analyze s -> not (select_calls_udf db s)
  | Explain _ | Explain_lint _ | Analyze_archive | Pragma _ -> true
  (* A dry-run vacuum only reads the archive; a live one (and a
     checkpoint) takes the write lock itself inside Db. *)
  | Vacuum_snapshots { dry_run; _ } -> dry_run
  | Insert _ | Delete _ | Update _ | Create_table _ | Create_index _
  | Drop_table _ | Drop_index _ | Begin_txn | Commit _ | Rollback
  | Checkpoint -> false

let stmt_kind = function
  | Select _ -> "select"
  | Explain _ -> "explain"
  | Explain_profile _ -> "explain_profile"
  | Explain_analyze _ -> "explain_analyze"
  | Explain_lint _ -> "explain_lint"
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Update _ -> "update"
  | Create_table _ -> "create_table"
  | Create_index _ -> "create_index"
  | Drop_table _ -> "drop_table"
  | Drop_index _ -> "drop_index"
  | Begin_txn -> "begin"
  | Commit _ -> "commit"
  | Rollback -> "rollback"
  | Analyze_archive -> "analyze_archive"
  | Vacuum_snapshots _ -> "vacuum_snapshots"
  | Checkpoint -> "checkpoint"
  | Pragma _ -> "pragma"

let parse_one sql =
  Exec_stats.time_into (fun dt -> Obs.Scope.observe h_parse dt) (fun () ->
      Parser.parse_one sql)

let parse_many sql =
  Exec_stats.time_into (fun dt -> Obs.Scope.observe h_parse dt) (fun () ->
      Parser.parse_many sql)

let run_insert db (i : stmt) =
  match i with
  | Insert { table; columns; values; from_select } ->
    check_not_virtual table;
    let env = Exec.current_env db in
    let tbl =
      match Catalog.find_table env.Exec.cat table with
      | Some t -> t
      | None -> error "no such table: %s" table
    in
    let ncols = Array.length tbl.Catalog.tcols in
    let positions =
      match columns with
      | None -> Array.init ncols (fun i -> i)
      | Some cols -> Array.of_list (List.map (Exec.col_pos tbl) cols)
    in
    let make_row (vals : R.value list) =
      if List.length vals <> Array.length positions then
        error "INSERT expects %d values, got %d" (Array.length positions) (List.length vals);
      let row = Array.make ncols R.Null in
      List.iteri (fun i v -> row.(positions.(i)) <- v) vals;
      row
    in
    let rows =
      match from_select with
      | None ->
        let fnctx = Db.fn_ctx db in
        List.map
          (fun exprs ->
            make_row
              (List.map (fun e -> Expr.eval_const fnctx (Exec.expand_sub env e)) exprs))
          values
      | Some sel ->
        let senv = Exec.env_of_select db sel in
        let _, rows = Exec.select_all senv sel in
        List.map (fun r -> make_row (Array.to_list r)) rows
    in
    let n =
      Db.with_write_txn db (fun txn ->
          List.iter (fun row -> ignore (Exec.insert_row_raw env txn tbl row)) rows;
          List.length rows)
    in
    { empty_result with rows_affected = n }
  | s -> raise (Internal_error ("run_insert dispatched on " ^ stmt_kind s))

let run_stmt_core db ?key (s : stmt) : result =
  match s with
  | Select sel -> collect (run_select db ?key sel)
  | Explain sel ->
    (* Render the real plan tree (the one execution would use), built
       fresh against the statement's environment. *)
    let env = Exec.env_of_select db sel in
    let plan = plan_optimized db ~cat:env.Exec.cat sel in
    { empty_result with
      columns = [| "detail" |];
      rows = List.map (fun n -> [| R.Text n |]) (Plan.render plan) }
  | Explain_analyze sel ->
    (* Execute the statement with operator instrumentation on, then
       render the plan tree annotated with the recorded actuals.  The
       plan is built fresh (not through the cache), so its slots start
       at zero and the actuals belong to exactly this execution. *)
    let env0 = Exec.env_of_select db sel in
    let plan = plan_optimized db ~cat:env0.Exec.cat sel in
    let was = db.Db.analyze in
    db.Db.analyze <- true;
    let env = { env0 with Exec.analyze = true } in
    let t0 = Unix.gettimeofday () in
    let n_rows =
      Fun.protect
        ~finally:(fun () -> db.Db.analyze <- was)
        (fun () ->
          let _, run = Exec.stream_plan env plan in
          let n = ref 0 in
          run (fun _ -> incr n);
          !n)
    in
    let dt = Unix.gettimeofday () -. t0 in
    let az =
      { Plan.az_sql = (match key with Some k -> k | None -> "");
        az_rows = n_rows;
        az_elapsed_s = dt;
        az_snapshot = env.Exec.as_of;
        az_ops = Plan.actuals plan }
    in
    db.Db.last_analysis <- Some az;
    let lines =
      Printf.sprintf "%d row%s in %.3f ms%s" n_rows
        (if n_rows = 1 then "" else "s")
        (dt *. 1e3)
        (match env.Exec.as_of with
        | Some sid -> Printf.sprintf " (AS OF %d)" sid
        | None -> "")
      :: Plan.render_analyzed plan
    in
    { empty_result with
      columns = [| "detail" |];
      rows = List.map (fun l -> [| R.Text l |]) lines }
  | Explain_profile sel ->
    (* Run the statement with tracing forced on, then report its span
       tree and the registry counter deltas it caused.  Planning goes
       through the plan cache (keyed by the full statement text), so
       repeated profiles show plan-cache hits like normal execution. *)
    let was = Obs.Trace.is_enabled () in
    Obs.Trace.set_enabled true;
    let m = Obs.Trace.mark () in
    let before = Obs.Metrics.counters () in
    let t0 = Unix.gettimeofday () in
    let n_rows =
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_enabled was)
        (fun () ->
          Obs.Trace.with_span ~name:"statement" (fun () ->
              let _, run = run_select db ?key sel in
              let n = ref 0 in
              run (fun _ -> incr n);
              !n))
    in
    let dt = Unix.gettimeofday () -. t0 in
    let after = Obs.Metrics.counters () in
    let tree = Obs.Trace.render_tree (Obs.Trace.spans_since m) in
    let deltas = Obs.Metrics.diff_counters ~before ~after in
    (* plan provenance always shows, even when a delta is zero *)
    let ensure name ds = if List.mem_assoc name ds then ds else ds @ [ (name, 0) ] in
    let deltas =
      List.sort compare (ensure "sql.plans_built" (ensure "sql.plan_cache_hits" deltas))
    in
    let lines =
      (Printf.sprintf "%d row%s in %.3f ms" n_rows (if n_rows = 1 then "" else "s") (dt *. 1e3)
      :: tree)
      @ ("-- counter deltas --"
        :: List.map (fun (k, v) -> Printf.sprintf "%-36s %+d" k v) deltas)
    in
    { empty_result with
      columns = [| "profile" |];
      rows = List.map (fun l -> [| R.Text l |]) lines }
  | Explain_lint inner ->
    (* Analyze only — nothing plans or executes.  Rendered as rows so
       every client (shell, exec_rows, tests) consumes diagnostics like
       any other result set; zero rows means the statement is clean. *)
    let diags = analyze_stmt db ?sql:key inner @ opt_diags db inner in
    { empty_result with
      columns = [| "severity"; "code"; "pos"; "message" |];
      rows =
        List.map
          (fun (d : Diag.t) ->
            [| R.Text (Diag.severity_name d.Diag.severity);
               R.Text d.Diag.code;
               (match d.Diag.pos with
               | Some p -> R.Text (Lexer.pos_to_string p)
               | None -> R.Null);
               R.Text d.Diag.message |])
          diags }
  | Insert _ -> run_insert db s
  | Delete { table; where } ->
    check_not_virtual table;
    let env = Exec.current_env db in
    let tbl =
      match Catalog.find_table env.Exec.cat table with
      | Some t -> t
      | None -> error "no such table: %s" table
    in
    let rows = Exec.matching_rows env tbl where in
    let n = Db.with_write_txn db (fun txn -> Exec.delete_rows env txn tbl rows) in
    { empty_result with rows_affected = n }
  | Update { table; sets; where } ->
    check_not_virtual table;
    let env = Exec.current_env db in
    let tbl =
      match Catalog.find_table env.Exec.cat table with
      | Some t -> t
      | None -> error "no such table: %s" table
    in
    let rows = Exec.matching_rows env tbl where in
    let n = Db.with_write_txn db (fun txn -> Exec.update_rows env txn tbl sets rows) in
    { empty_result with rows_affected = n }
  | Create_table { table; cols; if_not_exists; as_select = None } ->
    ignore
      (create_table db ~name:table
         ~cols:(List.map (fun c -> (c.col_name, c.col_type)) cols)
         ~if_not_exists);
    empty_result
  | Create_table { table; if_not_exists; as_select = Some sel; _ } ->
    let senv = Exec.env_of_select db sel in
    let columns, rows = Exec.select_all senv sel in
    let cols = Array.to_list (Array.map (fun c -> (c, "")) columns) in
    (match create_table db ~name:table ~cols ~if_not_exists with
    | None -> empty_result
    | Some tbl ->
      let env = Exec.current_env db in
      let n =
        Db.with_write_txn db (fun txn ->
            List.iter (fun row -> ignore (Exec.insert_row_raw env txn tbl row)) rows;
            List.length rows)
      in
      { empty_result with rows_affected = n })
  | Create_index { index; table; columns; if_not_exists } ->
    create_index db ~name:index ~table ~columns ~if_not_exists;
    empty_result
  | Drop_table { table; if_exists } ->
    let n = drop_table db ~name:table ~if_exists in
    { empty_result with rows_affected = n }
  | Drop_index { index; if_exists } ->
    let n = drop_index db ~name:index ~if_exists in
    { empty_result with rows_affected = n }
  | Begin_txn ->
    Db.begin_txn db;
    empty_result
  | Commit { with_snapshot } ->
    let snapshot = Db.commit db ~snapshot:with_snapshot in
    { empty_result with snapshot }
  | Rollback ->
    Db.rollback db;
    empty_result
  | Analyze_archive ->
    (* Archive health report (also the producer behind sys_snapshots);
       rendered as rows so every client — shell, exec_rows, RQL — can
       consume it like any other result set. *)
    let a = Retro.analyze (Db.retro_exn db) in
    { empty_result with
      columns = [| "analyze" |];
      rows = List.map (fun l -> [| R.Text l |]) (Retro.render_analysis a) }
  | Vacuum_snapshots { older_than; keeping_last; dry_run } ->
    let retro = Db.retro_exn db in
    let count = Retro.snapshot_count retro in
    if count = 0 then error "VACUUM SNAPSHOTS: no snapshots have been declared";
    let fl = Retro.first_live retro in
    let retention what e =
      match Expr.eval_const (Db.fn_ctx db) e with
      | R.Int n when n >= 1 -> n
      | _ -> error "VACUUM SNAPSHOTS %s must be a positive integer" what
    in
    (* Resolve retention to [keep_from], the oldest snapshot id kept.
       OLDER THAN n drops ids below n; KEEPING LAST n retains the n
       newest; bare VACUUM SNAPSHOTS keeps only the newest.  Already-
       vacuumed prefixes clamp to a no-op rather than erroring, so the
       statement is idempotent. *)
    let keep_from =
      match (older_than, keeping_last) with
      | Some e, _ ->
        let n = retention "OLDER THAN" e in
        if n > count then
          error "VACUUM SNAPSHOTS OLDER THAN %d: no such snapshot (newest is %d)"
            n count;
        max n fl
      | None, Some e ->
        let n = retention "KEEPING LAST" e in
        max (count - n + 1) fl
      | None, None -> count
    in
    if dry_run then begin
      (* Report only; per-candidate reclaimable space.  The estimate is
         exact: Pagelog blocks and Maplog entries are appended 1:1, so a
         snapshot's delta-entry count is precisely the blocks a live run
         reclaims for it. *)
      let a = Retro.analyze retro in
      let rows =
        Array.to_list a.Retro.an_snapshots
        |> List.filter (fun si -> si.Retro.si_id < keep_from)
        |> List.map (fun si ->
               [| R.Int si.Retro.si_id;
                  R.Int si.Retro.si_delta_entries;
                  R.Int si.Retro.si_delta_bytes |])
      in
      { empty_result with
        columns = [| "snapshot"; "blocks_reclaimable"; "bytes_reclaimable" |];
        rows }
    end
    else begin
      let res = Db.vacuum_snapshots db ~keep_from in
      { empty_result with
        columns = [| "snapshots_vacuumed"; "blocks_reclaimed"; "bytes_reclaimed" |];
        rows =
          [ [| R.Int res.Retro.vr_snapshots;
               R.Int res.Retro.vr_blocks;
               R.Int res.Retro.vr_bytes |] ] }
    end
  | Checkpoint ->
    let seq, dropped = Db.checkpoint db in
    { empty_result with
      columns = [| "checkpoint_seq"; "wal_truncated_bytes" |];
      rows = [ [| R.Int seq; R.Int dropped |] ] }
  | Pragma name -> (
    match String.lowercase_ascii name with
    | "integrity_check" ->
      (* One problem per row; a single "ok" row when healthy — so CI
         scripts can assert health in plain SQL. *)
      let problems = Integrity.check db in
      { empty_result with
        columns = [| "integrity_check" |];
        rows =
          (match problems with
          | [] -> [ [| R.Text "ok" |] ]
          | ps -> List.map (fun p -> [| R.Text p |]) ps) }
    | "optimize" ->
      { empty_result with
        columns = [| "optimize" |];
        rows = [ [| R.Text (if db.Db.optimize then "on" else "off") |] ] }
    | ("optimize=on" | "optimize=1" | "optimize=true" | "optimize=off" | "optimize=0"
      | "optimize=false") as kv ->
      let on = match kv with
        | "optimize=on" | "optimize=1" | "optimize=true" -> true
        | _ -> false
      in
      (* Cached plans were built under the old setting; drop them so the
         next use replans under the new one. *)
      if db.Db.optimize <> on then Hashtbl.reset db.Db.plan_cache;
      db.Db.optimize <- on;
      { empty_result with
        columns = [| "optimize" |];
        rows = [ [| R.Text (if on then "on" else "off") |] ] }
    | "checkpoint_threshold" ->
      { empty_result with
        columns = [| "checkpoint_threshold" |];
        rows = [ [| R.Int (Db.checkpoint_threshold db) |] ] }
    | s
      when String.length s > 21 && String.sub s 0 21 = "checkpoint_threshold=" -> (
      (* WAL bytes after which a commit triggers an auto-checkpoint;
         0 disables the trigger (the default). *)
      let v = String.sub s 21 (String.length s - 21) in
      match int_of_string_opt v with
      | Some n when n >= 0 ->
        Db.set_checkpoint_threshold db n;
        { empty_result with
          columns = [| "checkpoint_threshold" |];
          rows = [ [| R.Int n |] ] }
      | _ -> error "checkpoint_threshold must be a non-negative integer: %s" v)
    | other -> error "unknown pragma: %s" other)

(* --- per-statement observability -------------------------------------- *)

(* Rows a result stands for: returned rows for queries, affected rows
   for DML. *)
let result_rows (res : result) =
  if res.rows <> [] then List.length res.rows else res.rows_affected

(* Snapshot id of a statement's AS OF clause, when it is a constant
   (or parameter-bound) expression; None otherwise. *)
let as_of_sid db ?(params = [||]) (s : stmt) =
  match s with
  | Select sel | Explain_analyze sel -> (
    match sel.as_of with
    | None -> None
    | Some e -> (
      match Expr.eval_const (Db.fn_ctx db) (Plan.bind_expr params e) with
      | R.Int sid -> Some sid
      | _ -> None
      | exception Expr.Error _ -> None
      | exception Invalid_argument _ -> None))
  | _ -> None

(* Post-execution accounting: fingerprint statistics for every keyed
   statement, and a structured slow-query event when the handle's
   threshold is set and exceeded.  Slow EXPLAIN ANALYZE statements
   carry a per-operator actuals summary (from [last_analysis]). *)
let observe_stmt db ?key ?(params = [||]) ~(s : stmt) ~plan_hit ~elapsed_s (res : result) =
  let rows = result_rows res in
  (match key with
  | Some sql -> Fingerprint.record ~sql ~rows ~elapsed_s ~plan_hit
  | None -> ());
  match db.Db.slow_query_s with
  | Some thr when elapsed_s >= thr ->
    let fields =
      [ ("statement", Obs.Json.Str (stmt_kind s));
        ("duration_ms", Obs.Json.Float (elapsed_s *. 1000.));
        ("rows", Obs.Json.Int rows) ]
      @ (match key with
        | Some sql ->
          let norm = Fingerprint.normalized_of sql in
          [ ("fingerprint", Obs.Json.Str (Fingerprint.fingerprint_of norm));
            ("query", Obs.Json.Str norm) ]
        | None -> [])
      @ (match as_of_sid db ~params s with
        | Some sid -> [ ("snapshot", Obs.Json.Int sid) ]
        | None -> [])
      @
      match (s, db.Db.last_analysis) with
      | Explain_analyze _, Some az ->
        [ ("ops", Obs.Json.List (List.map Plan.op_actual_to_json az.Plan.az_ops)) ]
      | _ -> []
    in
    Obs.Eventlog.log ~kind:"slow_query" fields
  | _ -> ()

(* Every statement passes the analyzer gate first (errors raise before
   any planning or page access), then is counted, its end-to-end
   latency observed, and — when tracing is on — wrapped in a
   [sql.stmt] span.  The handle's metric scope is active for the whole
   statement, so every counter increment, page read and slow-query
   event below is attributed to it. *)
let run_stmt db ?key (s : stmt) : result =
  Obs.Scope.with_scope db.Db.scope (fun () ->
      analyzer_gate db ?sql:key s;
      Obs.Scope.incr c_statements;
      Obs.Timeseries.tick ();
      let hits0 = db.Db.plan_hits in
      let t0 = Unix.gettimeofday () in
      let res =
        Exec_stats.time_into
          (fun dt -> Obs.Scope.observe h_stmt dt)
          (fun () ->
            Obs.Trace.with_span ~name:"sql.stmt"
              ~attrs:[ ("kind", Obs.Trace.Str (stmt_kind s)) ]
              (fun () ->
                if stmt_takes_read_lock db s then
                  Storage.Pager.with_read_lock db.Db.pager (fun () ->
                      run_stmt_core db ?key s)
                else run_stmt_core db ?key s))
      in
      observe_stmt db ?key ~s ~plan_hit:(db.Db.plan_hits > hits0)
        ~elapsed_s:(Unix.gettimeofday () -. t0)
        res;
      res)

let wrap_errors f =
  try f () with
  | Lexer.Error m -> raise (Error ("SQL lexer: " ^ m))
  | Parser.Error m -> raise (Error ("SQL parser: " ^ m))
  | Expr.Error m -> raise (Error m)
  | Planner.Error m -> raise (Error m)
  | Exec.Error m -> raise (Error m)
  | Db.Error m -> raise (Error m)
  | Invalid_argument m -> raise (Error m)
  | Retro.Snapshot_damaged { snap_id; pl_off; reason } ->
    raise
      (Error
         (Printf.sprintf
            "snapshot %d is damaged: archived page at pagelog offset %d unreadable (%s); \
             current-state queries and other snapshots are unaffected"
            snap_id pl_off reason))
  | Storage.Disk.Corruption { device; block; detail } ->
    raise (Error (Printf.sprintf "%s block %d is corrupt: %s" device block detail))

(* Execute a single SQL statement.  SELECTs are planned through the
   plan cache keyed by the statement text. *)
let exec db sql : result = wrap_errors (fun () -> run_stmt db ~key:sql (parse_one sql))

(* Execute a script of semicolon-separated statements; returns the last
   statement's result.  A single-statement script keeps its text so
   diagnostics carry positions (a multi-statement script cannot: the
   per-statement offsets are lost in the split). *)
let exec_script db sql : result =
  wrap_errors (fun () ->
      match parse_many sql with
      | [ s ] -> run_stmt db ~key:sql s
      | stmts -> List.fold_left (fun _ s -> run_stmt db s) empty_result stmts)

(* sqlite3_exec analogue: stream result rows of a SELECT through [f].
   Non-SELECT statements execute normally and invoke [f] zero times. *)
let exec_rows db sql ~(f : string array -> R.row -> unit) : unit =
  wrap_errors (fun () ->
      match parse_one sql with
      | Select sel ->
        Obs.Scope.with_scope db.Db.scope (fun () ->
            analyzer_gate db ~sql (Select sel);
            let locked g =
              if select_calls_udf db sel then g ()
              else Storage.Pager.with_read_lock db.Db.pager g
            in
            locked (fun () ->
                let header, run = run_select db ~key:sql sel in
                run (fun row -> f header row)))
      | other -> ignore (run_stmt db other))

(* --- prepared statements --------------------------------------------- *)

(* A prepared statement: parsed once, planned on first execution, and
   re-planned only when the schema generation moves.  Parameters ([?]
   placeholders, 0-based [Param] slots) are bound per execution with
   {!Plan.bind}, so one prepared statement can run against the current
   database or — when its AS OF is a parameter — any snapshot. *)
type prepared = {
  pr_db : db;
  pr_key : string; (* plan-cache key *)
  pr_sel : select;
  pr_read_lock : bool; (* false when the select calls a UDF (may write) *)
}

let prepare_select db ~key (sel : select) : prepared =
  analyzer_gate db (Select sel);
  Db.note_prepared db;
  { pr_db = db; pr_key = key; pr_sel = sel;
    pr_read_lock = not (select_calls_udf db sel) }

let prepare db sql : prepared =
  wrap_errors (fun () ->
      match parse_one sql with
      | Select sel ->
        analyzer_gate db ~sql (Select sel);
        Db.note_prepared db;
        { pr_db = db; pr_key = sql; pr_sel = sel;
          pr_read_lock = not (select_calls_udf db sel) }
      | _ -> error "only SELECT statements can be prepared")

let prepared_locked (p : prepared) g =
  if p.pr_read_lock then Storage.Pager.with_read_lock p.pr_db.Db.pager g
  else g ()

(* Stream a prepared statement's rows (no statement accounting).  Both
   planning and the returned runner activate the handle's scope — the
   runner is invoked later, outside this call. *)
let prepared_stream ?(params = [||]) (p : prepared) :
    string array * ((R.row -> unit) -> unit) =
  wrap_errors (fun () ->
      let header, run =
        Obs.Scope.with_scope p.pr_db.Db.scope (fun () ->
            prepared_locked p (fun () ->
                run_select p.pr_db ~key:p.pr_key ~params p.pr_sel))
      in
      ( header,
        fun f ->
          Obs.Scope.with_scope p.pr_db.Db.scope (fun () ->
              prepared_locked p (fun () -> run f)) ))

(* Execute a prepared statement with full statement accounting, like
   [exec] minus the parse. *)
let exec_prepared ?(params = [||]) (p : prepared) : result =
  wrap_errors (fun () ->
      Obs.Scope.with_scope p.pr_db.Db.scope (fun () ->
      Obs.Scope.incr c_statements;
      Obs.Timeseries.tick ();
      let db = p.pr_db in
      let hits0 = db.Db.plan_hits in
      let t0 = Unix.gettimeofday () in
      let res =
        Exec_stats.time_into
          (fun dt -> Obs.Scope.observe h_stmt dt)
          (fun () ->
            Obs.Trace.with_span ~name:"sql.stmt"
              ~attrs:[ ("kind", Obs.Trace.Str "select") ]
              (fun () ->
                prepared_locked p (fun () ->
                    collect (run_select db ~key:p.pr_key ~params p.pr_sel))))
      in
      observe_stmt db ~key:p.pr_key ~params ~s:(Select p.pr_sel)
        ~plan_hit:(db.Db.plan_hits > hits0)
        ~elapsed_s:(Unix.gettimeofday () -. t0)
        res;
      res))

(* Parse a single statement (timed into sql.parse_latency) without
   executing it; used by callers that prepare from a larger text. *)
let parse sql : stmt = wrap_errors (fun () -> parse_one sql)

(* --- static analysis entry points ------------------------------------- *)

(* Parse and analyze one statement without executing it: the shell's
   .lint; EXPLAIN LINT renders the same analysis as rows.  Does not
   touch the analyzer counters (only the execution gate does). *)
let analyze db sql : Diag.t list =
  wrap_errors (fun () ->
      match parse_one sql with
      | Explain_lint inner -> analyze_stmt db ~sql inner @ opt_diags db inner
      | s -> analyze_stmt db ~sql s @ opt_diags db s)

(* RQL front doors: validate a Qq / Qs before the loop touches any
   snapshot.  Errors raise with E-coded, positioned diagnostics and
   count into sql.analyzer_errors.  The parse here is analysis-only —
   the loop parses the statement again on its execution path — so it
   stays out of the sql.parse_latency histogram to keep that metric a
   count of executed-statement parses. *)
let analyze_qq db sql : unit =
  wrap_errors (fun () ->
      count_and_raise (analyze_stmt db ~sql ~mode:Analyzer.Qq (Parser.parse_one sql)))

let analyze_qs db sql : unit =
  wrap_errors (fun () ->
      count_and_raise
        (Analyzer.analyze_qs ~sql ~cat:(Db.catalog db) ~has_fn:(has_fn db)
           (Parser.parse_one sql)))

(* Convenience accessors used by tests and examples. *)
let query db sql : R.row list = (exec db sql).rows

let query_one db sql : R.row =
  match (exec db sql).rows with
  | [ r ] -> r
  | rows -> error "expected exactly one row, got %d" (List.length rows)

let scalar db sql : R.value =
  match query_one db sql with
  | [| v |] -> v
  | r -> error "expected a single column, got %d" (Array.length r)

let int_scalar db sql : int =
  match scalar db sql with
  | R.Int i -> i
  | v -> error "expected an integer, got %s" (R.value_to_string v)

(* --- observability accessors ------------------------------------------- *)

(* The most recent instrumented (EXPLAIN ANALYZE) run on this handle. *)
let last_analysis db : Plan.analysis option = db.Db.last_analysis

(* Slow-query log threshold in seconds; None disables slow logging. *)
let set_slow_query_threshold db thr = db.Db.slow_query_s <- thr
let slow_query_threshold db = db.Db.slow_query_s

(* Master switch for per-operator plan instrumentation on this handle.
   EXPLAIN ANALYZE and analyzed RQL runs flip it for their duration;
   leaving it on instruments every subsequent execution. *)
let set_analyze db on = db.Db.analyze <- on

(* The plan currently cached for [key], when present and fresh.  Gives
   structural access to accumulated operator actuals of prepared /
   repeated statements (the RQL run report reads its Qq plan here). *)
let cached_plan db ~key : Plan.t option =
  match Hashtbl.find_opt db.Db.plan_cache key with
  | Some c when c.Plan.cp_gen = Db.generation db -> Some c.Plan.cp_plan
  | _ -> None
