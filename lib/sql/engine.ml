(* Public SQL engine API: parse and execute statements against a
   database handle, in the style of the sqlite3 C API the paper builds
   on.  [exec_rows] is the analogue of sqlite3_exec: it invokes a
   callback for every result row, which is how RQL mechanisms process
   snapshot-query output. *)

module R = Storage.Record
open Ast

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type db = Db.t

type result = {
  columns : string array;
  rows : R.row list;
  rows_affected : int;
  snapshot : int option; (* id returned by COMMIT WITH SNAPSHOT *)
}

let empty_result = { columns = [||]; rows = []; rows_affected = 0; snapshot = None }

let create = Db.create
let register_fn = Db.register_fn

(* --- DDL ------------------------------------------------------------- *)

let sanitize_cols cols =
  let seen = Hashtbl.create 8 in
  List.mapi
    (fun i (name, ty) ->
      let name = if name = "" then Printf.sprintf "column_%d" (i + 1) else name in
      let key = String.lowercase_ascii name in
      let name =
        if Hashtbl.mem seen key then Printf.sprintf "%s_%d" name (i + 1) else name
      in
      Hashtbl.replace seen (String.lowercase_ascii name) ();
      (name, ty))
    cols

(* The sys_ namespace belongs to the virtual system tables; reserving
   the whole prefix keeps future additions from colliding with user
   tables created under older versions. *)
let check_not_reserved name =
  let l = String.lowercase_ascii name in
  if String.length l >= 4 && String.sub l 0 4 = "sys_" then
    error "%s: the sys_ prefix is reserved for system tables" name

let check_not_virtual name =
  if Systables.is_virtual_name name then error "%s is a read-only system table" name

let create_table db ~name ~cols ~if_not_exists =
  check_not_reserved name;
  let cat = Db.catalog db in
  match Catalog.find_table cat name with
  | Some _ ->
    if if_not_exists then None
    else error "table %s already exists" name
  | None ->
    if cols = [] then error "table %s must have at least one column" name;
    let tbl =
      Db.with_write_txn db (fun txn ->
          let heap = Storage.Heap.create txn in
          let tbl =
            { Catalog.tname = name;
              tcols = Array.of_list (sanitize_cols cols);
              theap = Storage.Heap.first_page heap }
          in
          Catalog.add_table txn tbl;
          tbl)
    in
    Db.invalidate_catalog db;
    Some tbl

let create_index db ~name ~table ~columns ~if_not_exists =
  let cat = Db.catalog db in
  match Catalog.find_index cat name with
  | Some _ -> if if_not_exists then () else error "index %s already exists" name
  | None ->
    let tbl =
      match Catalog.find_table cat table with
      | Some t -> t
      | None -> error "no such table: %s" table
    in
    List.iter (fun c -> ignore (Exec.col_pos tbl c)) columns;
    Db.with_write_txn db (fun txn ->
        let bt = Storage.Btree.create txn in
        let idx =
          { Catalog.iname = name; itable = tbl.Catalog.tname; icols = columns;
            iroot = Storage.Btree.root bt }
        in
        Catalog.add_index txn idx;
        (* populate from existing rows *)
        let read = Storage.Txn.read_ctx txn in
        Storage.Heap.iter read (Storage.Heap.open_existing tbl.Catalog.theap)
          ~f:(fun rid data ->
            let row = R.decode_row data in
            Storage.Btree.insert txn bt (Exec.index_key tbl idx row) rid));
    Db.invalidate_catalog db

let drop_table db ~name ~if_exists =
  let cat = Db.catalog db in
  match Catalog.find_table cat name with
  | None -> if if_exists then 0 else error "no such table: %s" name
  | Some tbl ->
    Db.with_write_txn db (fun txn ->
        List.iter
          (fun idx ->
            Storage.Btree.drop txn (Storage.Btree.open_existing idx.Catalog.iroot);
            ignore (Catalog.remove_index cat txn idx.Catalog.iname))
          (Catalog.indexes_of_table cat tbl.Catalog.tname);
        Storage.Heap.drop txn (Storage.Heap.open_existing tbl.Catalog.theap);
        ignore (Catalog.remove_table cat txn name));
    Db.drop_heap_handle db tbl.Catalog.theap;
    Db.invalidate_catalog db;
    1

let drop_index db ~name ~if_exists =
  let cat = Db.catalog db in
  match Catalog.find_index cat name with
  | None -> if if_exists then 0 else error "no such index: %s" name
  | Some idx ->
    Db.with_write_txn db (fun txn ->
        Storage.Btree.drop txn (Storage.Btree.open_existing idx.Catalog.iroot);
        ignore (Catalog.remove_index cat txn name));
    Db.invalidate_catalog db;
    1

(* --- statement dispatch ---------------------------------------------- *)

let c_statements = Obs.Metrics.counter "sql.statements"
let h_parse = Obs.Metrics.histogram "sql.parse_latency"
let h_stmt = Obs.Metrics.histogram "sql.stmt_latency"

let stmt_kind = function
  | Select _ -> "select"
  | Explain _ -> "explain"
  | Explain_profile _ -> "explain_profile"
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Update _ -> "update"
  | Create_table _ -> "create_table"
  | Create_index _ -> "create_index"
  | Drop_table _ -> "drop_table"
  | Drop_index _ -> "drop_index"
  | Begin_txn -> "begin"
  | Commit _ -> "commit"
  | Rollback -> "rollback"
  | Analyze_archive -> "analyze_archive"

let parse_one sql =
  Exec_stats.time_into (fun dt -> Obs.Metrics.Histogram.observe h_parse dt) (fun () ->
      Parser.parse_one sql)

let parse_many sql =
  Exec_stats.time_into (fun dt -> Obs.Metrics.Histogram.observe h_parse dt) (fun () ->
      Parser.parse_many sql)

let run_insert db (i : stmt) =
  match i with
  | Insert { table; columns; values; from_select } ->
    check_not_virtual table;
    let env = Exec.current_env db in
    let tbl =
      match Catalog.find_table env.Exec.cat table with
      | Some t -> t
      | None -> error "no such table: %s" table
    in
    let ncols = Array.length tbl.Catalog.tcols in
    let positions =
      match columns with
      | None -> Array.init ncols (fun i -> i)
      | Some cols -> Array.of_list (List.map (Exec.col_pos tbl) cols)
    in
    let make_row (vals : R.value list) =
      if List.length vals <> Array.length positions then
        error "INSERT expects %d values, got %d" (Array.length positions) (List.length vals);
      let row = Array.make ncols R.Null in
      List.iteri (fun i v -> row.(positions.(i)) <- v) vals;
      row
    in
    let rows =
      match from_select with
      | None ->
        let fnctx = Db.fn_ctx db in
        List.map
          (fun exprs ->
            make_row
              (List.map (fun e -> Expr.eval_const fnctx (Exec.expand_sub env e)) exprs))
          values
      | Some sel ->
        let senv = Exec.env_of_select db sel in
        let _, rows = Exec.select_all senv sel in
        List.map (fun r -> make_row (Array.to_list r)) rows
    in
    let n =
      Db.with_write_txn db (fun txn ->
          List.iter (fun row -> ignore (Exec.insert_row_raw env txn tbl row)) rows;
          List.length rows)
    in
    { empty_result with rows_affected = n }
  | _ -> assert false

let run_stmt_core db (s : stmt) : result =
  match s with
  | Select sel ->
    let env = Exec.env_of_select db sel in
    let columns, rows = Exec.select_all env sel in
    { empty_result with columns; rows }
  | Explain sel ->
    let env = Exec.env_of_select db sel in
    let notes = Exec.explain env sel in
    { empty_result with
      columns = [| "detail" |];
      rows = List.map (fun n -> [| R.Text n |]) notes }
  | Explain_profile sel ->
    (* Run the statement with tracing forced on, then report its span
       tree and the registry counter deltas it caused. *)
    let was = Obs.Trace.is_enabled () in
    Obs.Trace.set_enabled true;
    let m = Obs.Trace.mark () in
    let before = Obs.Metrics.counters () in
    let t0 = Unix.gettimeofday () in
    let n_rows =
      Fun.protect
        ~finally:(fun () -> Obs.Trace.set_enabled was)
        (fun () ->
          Obs.Trace.with_span ~name:"statement" (fun () ->
              let env = Exec.env_of_select db sel in
              let _, rows = Exec.select_all env sel in
              List.length rows))
    in
    let dt = Unix.gettimeofday () -. t0 in
    let after = Obs.Metrics.counters () in
    let tree = Obs.Trace.render_tree (Obs.Trace.spans_since m) in
    let deltas = Obs.Metrics.diff_counters ~before ~after in
    let lines =
      (Printf.sprintf "%d row%s in %.3f ms" n_rows (if n_rows = 1 then "" else "s") (dt *. 1e3)
      :: tree)
      @ ("-- counter deltas --"
        :: List.map (fun (k, v) -> Printf.sprintf "%-36s %+d" k v) deltas)
    in
    { empty_result with
      columns = [| "profile" |];
      rows = List.map (fun l -> [| R.Text l |]) lines }
  | Insert _ -> run_insert db s
  | Delete { table; where } ->
    check_not_virtual table;
    let env = Exec.current_env db in
    let tbl =
      match Catalog.find_table env.Exec.cat table with
      | Some t -> t
      | None -> error "no such table: %s" table
    in
    let rows = Exec.matching_rows env tbl where in
    let n = Db.with_write_txn db (fun txn -> Exec.delete_rows env txn tbl rows) in
    { empty_result with rows_affected = n }
  | Update { table; sets; where } ->
    check_not_virtual table;
    let env = Exec.current_env db in
    let tbl =
      match Catalog.find_table env.Exec.cat table with
      | Some t -> t
      | None -> error "no such table: %s" table
    in
    let rows = Exec.matching_rows env tbl where in
    let n = Db.with_write_txn db (fun txn -> Exec.update_rows env txn tbl sets rows) in
    { empty_result with rows_affected = n }
  | Create_table { table; cols; if_not_exists; as_select = None } ->
    ignore
      (create_table db ~name:table
         ~cols:(List.map (fun c -> (c.col_name, c.col_type)) cols)
         ~if_not_exists);
    empty_result
  | Create_table { table; if_not_exists; as_select = Some sel; _ } ->
    let senv = Exec.env_of_select db sel in
    let columns, rows = Exec.select_all senv sel in
    let cols = Array.to_list (Array.map (fun c -> (c, "")) columns) in
    (match create_table db ~name:table ~cols ~if_not_exists with
    | None -> empty_result
    | Some tbl ->
      let env = Exec.current_env db in
      let n =
        Db.with_write_txn db (fun txn ->
            List.iter (fun row -> ignore (Exec.insert_row_raw env txn tbl row)) rows;
            List.length rows)
      in
      { empty_result with rows_affected = n })
  | Create_index { index; table; columns; if_not_exists } ->
    create_index db ~name:index ~table ~columns ~if_not_exists;
    empty_result
  | Drop_table { table; if_exists } ->
    let n = drop_table db ~name:table ~if_exists in
    { empty_result with rows_affected = n }
  | Drop_index { index; if_exists } ->
    let n = drop_index db ~name:index ~if_exists in
    { empty_result with rows_affected = n }
  | Begin_txn ->
    Db.begin_txn db;
    empty_result
  | Commit { with_snapshot } ->
    let snapshot = Db.commit db ~snapshot:with_snapshot in
    { empty_result with snapshot }
  | Rollback ->
    Db.rollback db;
    empty_result
  | Analyze_archive ->
    (* Archive health report (also the producer behind sys_snapshots);
       rendered as rows so every client — shell, exec_rows, RQL — can
       consume it like any other result set. *)
    let a = Retro.analyze (Db.retro_exn db) in
    { empty_result with
      columns = [| "analyze" |];
      rows = List.map (fun l -> [| R.Text l |]) (Retro.render_analysis a) }

(* Every statement is counted, its end-to-end latency observed, and —
   when tracing is on — wrapped in a [sql.stmt] span. *)
let run_stmt db (s : stmt) : result =
  Obs.Metrics.Counter.incr c_statements;
  Obs.Timeseries.tick ();
  Exec_stats.time_into
    (fun dt -> Obs.Metrics.Histogram.observe h_stmt dt)
    (fun () ->
      Obs.Trace.with_span ~name:"sql.stmt"
        ~attrs:[ ("kind", Obs.Trace.Str (stmt_kind s)) ]
        (fun () -> run_stmt_core db s))

let wrap_errors f =
  try f () with
  | Lexer.Error m -> raise (Error ("SQL lexer: " ^ m))
  | Parser.Error m -> raise (Error ("SQL parser: " ^ m))
  | Expr.Error m -> raise (Error m)
  | Exec.Error m -> raise (Error m)
  | Db.Error m -> raise (Error m)
  | Invalid_argument m -> raise (Error m)

(* Execute a single SQL statement. *)
let exec db sql : result = wrap_errors (fun () -> run_stmt db (parse_one sql))

(* Execute a script of semicolon-separated statements; returns the last
   statement's result. *)
let exec_script db sql : result =
  wrap_errors (fun () ->
      List.fold_left (fun _ s -> run_stmt db s) empty_result (parse_many sql))

(* sqlite3_exec analogue: stream result rows of a SELECT through [f].
   Non-SELECT statements execute normally and invoke [f] zero times. *)
let exec_rows db sql ~(f : string array -> R.row -> unit) : unit =
  wrap_errors (fun () ->
      match parse_one sql with
      | Select sel ->
        let env = Exec.env_of_select db sel in
        let header, run = Exec.select_stream env sel in
        run (fun row -> f header row)
      | other -> ignore (run_stmt db other))

(* Convenience accessors used by tests and examples. *)
let query db sql : R.row list = (exec db sql).rows

let query_one db sql : R.row =
  match (exec db sql).rows with
  | [ r ] -> r
  | rows -> error "expected exactly one row, got %d" (List.length rows)

let scalar db sql : R.value =
  match query_one db sql with
  | [| v |] -> v
  | r -> error "expected a single column, got %d" (Array.length r)

let int_scalar db sql : int =
  match scalar db sql with
  | R.Int i -> i
  | v -> error "expected an integer, got %s" (R.value_to_string v)
