(** Public SQL engine API, in the style of the sqlite3 C API the paper
    builds on: parse and execute statements against a database handle;
    {!exec_rows} is the analogue of [sqlite3_exec], invoking a callback
    per result row — the interface the RQL loop bodies use.

    The dialect covers the SQLite subset the paper's programs need plus
    Retro's extensions: SELECT with joins (incl. LEFT JOIN), GROUP
    BY/HAVING, ORDER BY/LIMIT/OFFSET, DISTINCT, UNION [ALL],
    (uncorrelated) subqueries, CAST, aggregate and scalar functions,
    DML, DDL, EXPLAIN (plus EXPLAIN PROFILE / ANALYZE / LINT),
    [SELECT AS OF sid] and [COMMIT WITH SNAPSHOT]. *)

exception Error of string

(** Raised when an internal dispatch invariant is violated (a bug in
    the engine, not a user error); carries the statement kind that
    reached the wrong handler. *)
exception Internal_error of string

type db = Db.t

type result = {
  columns : string array;   (** header (empty for non-SELECT) *)
  rows : Storage.Record.row list;
  rows_affected : int;
  snapshot : int option;    (** id returned by COMMIT WITH SNAPSHOT *)
}

val empty_result : result

(** Create a database.  [snapshots:false] yields a non-snapshottable
    database (no Retro attached), as RQL uses for SnapIds and result
    tables. *)
val create : ?snapshots:bool -> unit -> db

(** Register (or replace) a scalar function / UDF. *)
val register_fn : db -> string -> (Storage.Record.row -> Storage.Record.value) -> unit

(** {1 Statement execution} *)

(** Execute a single SQL statement.
    @raise Error on parse, resolution or execution failure. *)
val exec : db -> string -> result

(** Execute a semicolon-separated script; returns the last statement's
    result. *)
val exec_script : db -> string -> result

(** [sqlite3_exec] analogue: stream result rows of a SELECT through
    [f header row]; non-SELECT statements execute normally and invoke
    [f] zero times. *)
val exec_rows : db -> string -> f:(string array -> Storage.Record.row -> unit) -> unit

(** {1 Prepared statements}

    A prepared statement is parsed once; its physical plan is built on
    first execution and reused until DDL (or a rollback) advances the
    handle's schema generation, at which point it is transparently
    re-planned.  [?] placeholders in the SQL become positional
    parameters bound at execution time — including in the [AS OF]
    position, so one prepared statement can run against any snapshot. *)

type prepared

(** Parse and prepare a single SELECT statement.
    @raise Error on parse failure or for non-SELECT statements. *)
val prepare : db -> string -> prepared

(** Prepare an already-parsed SELECT under an explicit plan-cache
    [key] (used by the RQL layer, which rewrites before preparing). *)
val prepare_select : db -> key:string -> Ast.select -> prepared

(** Execute with [params] bound to the [?] placeholders in order.
    @raise Error if a referenced parameter has no binding. *)
val exec_prepared : ?params:Storage.Record.value array -> prepared -> result

(** Streaming variant of {!exec_prepared}: returns the header and a
    row-push runner (no per-statement accounting). *)
val prepared_stream :
  ?params:Storage.Record.value array -> prepared ->
  string array * ((Storage.Record.row -> unit) -> unit)

(** Parse a single statement (timed into [sql.parse_latency]) without
    executing it. *)
val parse : string -> Ast.stmt

(** {1 Static analysis}

    Every execution path — {!exec}, {!exec_script}, {!exec_rows},
    {!prepare}, {!prepare_select}, and (via {!analyze_qq} /
    {!analyze_qs}) all four RQL loop mechanisms — runs the static
    analyzer between parsing and planning.  Statements with E-coded
    diagnostics raise {!Error} before any page is touched; counts land
    in the [sql.analyzer_errors] / [sql.analyzer_warnings] metrics. *)

(** Parse and analyze one statement without executing it; returns the
    full diagnostic list, errors first.  [EXPLAIN LINT <stmt>] and the
    shell's [.lint] render the same analysis.
    @raise Error on lexer/parser failure. *)
val analyze : db -> string -> Diag.t list

(** Validate an RQL Qq before the first snapshot iteration:
    Qq-mode analysis ([current_snapshot()] is legal; non-SELECT is
    E022; unknown columns are E002).
    @raise Error on any E-coded diagnostic. *)
val analyze_qq : db -> string -> unit

(** Validate an RQL Qs: an ordinary SELECT that must project exactly
    one (integer-typed) snapshot-id column (E021/W105).
    @raise Error on any E-coded diagnostic. *)
val analyze_qs : db -> string -> unit

(** {1 Programmatic DDL} (used by the RQL layer) *)

(** Returns the created table, or [None] when it existed and
    [if_not_exists] was set. *)
val create_table :
  db -> name:string -> cols:(string * string) list -> if_not_exists:bool ->
  Catalog.table option

val create_index :
  db -> name:string -> table:string -> columns:string list -> if_not_exists:bool -> unit

(** Returns the number of tables dropped (0 or 1). *)
val drop_table : db -> name:string -> if_exists:bool -> int

val drop_index : db -> name:string -> if_exists:bool -> int

(** {1 Convenience accessors} *)

val query : db -> string -> Storage.Record.row list

(** @raise Error unless exactly one row results. *)
val query_one : db -> string -> Storage.Record.row

(** @raise Error unless exactly one row with one column results. *)
val scalar : db -> string -> Storage.Record.value

(** @raise Error unless the scalar is an integer. *)
val int_scalar : db -> string -> int

(** {1 Query observability}

    [EXPLAIN ANALYZE <select>] executes the statement with every plan
    operator instrumented (rows produced, loops, inclusive elapsed
    time, page-read delta, probes) and renders the plan tree annotated
    with those actuals; the same data is stored on the handle for
    structural consumption.  Statement-level statistics aggregate per
    normalized-text fingerprint in the process-wide {!Fingerprint}
    registry, exposed as the [sys_statements] virtual table.  When a
    slow-query threshold is set, statements at or above it log a
    structured [slow_query] event to {!Obs.Eventlog}. *)

(** The most recent EXPLAIN ANALYZE result on this handle. *)
val last_analysis : db -> Plan.analysis option

(** Set / read the slow-query threshold in seconds ([None] = off). *)
val set_slow_query_threshold : db -> float option -> unit
val slow_query_threshold : db -> float option

(** Master switch for per-operator instrumentation on this handle.
    EXPLAIN ANALYZE and analyzed RQL runs manage it themselves; turning
    it on manually instruments every subsequent execution. *)
val set_analyze : db -> bool -> unit

(** The plan currently cached for [key], when present and fresh —
    structural access to the accumulated operator actuals of prepared /
    repeated statements (the RQL run report reads its Qq plan here). *)
val cached_plan : db -> key:string -> Plan.t option
