(* Plan execution.

   Planning lives in Planner (producing typed Plan.t values); this
   module evaluates plan values against an [env] — the current database
   state or any snapshot environment — as push-style iterators.  Because
   a plan contains no executor state and all value positions are
   expressions, the same compiled plan can be executed repeatedly with
   different parameter bindings and against different snapshots; only
   uncorrelated subqueries are (re-)expanded per execution.

   The ephemeral hash indexes built for equi-joins (SQLite's
   automatic-index analogue, whose construction cost the paper's Fig 9
   isolates) are timed into Exec_stats.index_build_s. *)

module R = Storage.Record
open Ast

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- environments ----------------------------------------------------- *)

type env = {
  db : Db.t;
  read : Storage.Pager.read;
  cat : Catalog.t;
  as_of : int option;
  analyze : bool; (* fill per-operator plan instrumentation slots *)
}

let current_env db =
  { db; read = Db.read_current db; cat = Db.catalog db; as_of = None;
    analyze = db.Db.analyze }

(* Environment reading as of snapshot [sid]: builds the SPT (timed as
   "SPT build") and resolves the catalog from the snapshot itself. *)
let snapshot_env db sid =
  let retro = Db.retro_exn db in
  if sid < 1 || sid > Retro.snapshot_count retro then
    error "AS OF %d: no such snapshot" sid;
  if Retro.is_vacuumed retro sid then
    error "AS OF %d: snapshot has been vacuumed (oldest retained is %d)" sid
      (Retro.first_live retro);
  (* the SPT build's page reads (maplog scan) are charged to the snapshot *)
  let spt =
    Obs.Scope.with_snapshot sid (fun () ->
        Exec_stats.time_spt (fun () -> Retro.build_spt retro sid))
  in
  let read = Retro.read_ctx retro spt in
  { db; read; cat = Catalog.load read; as_of = Some sid; analyze = db.Db.analyze }

(* Environment for an evaluated AS OF expression (parameters must have
   been bound). *)
let env_of_as_of db (e : expr) =
  match Expr.eval_const (Db.fn_ctx db) e with
  | R.Int sid -> snapshot_env db sid
  | v -> error "AS OF requires an integer snapshot id, got %s" (R.value_to_string v)

let env_of_select db (sel : select) =
  match sel.as_of with None -> current_env db | Some e -> env_of_as_of db e

(* --- source scans ------------------------------------------------------ *)

let heap_of env (tbl : Catalog.table) =
  match env.as_of with
  | None -> Db.heap_handle env.db tbl.theap
  | Some _ -> Storage.Heap.open_existing tbl.theap

let c_rows_scanned = Obs.Scope.counter "sql.rows_scanned"
let c_rows_returned = Obs.Scope.counter "sql.rows_returned"

(* --- operator instrumentation ------------------------------------------

   Total pages read so far (current-state pager + snapshot archive);
   per-operator page-read deltas are differences of this sum.  Counter
   reads are single field loads, so an instrumented run stays cheap. *)
let pages_now () =
  Obs.Scope.get Storage.Stats.c_db_page_reads
  + Obs.Scope.get Storage.Stats.c_pagelog_reads

(* Heat attribution: the scan marks its table (and, under AS OF, its
   snapshot) for the duration, so every page read below lands in the
   right (table, snapshot) cell. *)
let attributed env (tbl : Catalog.table) f =
  Obs.Scope.with_table tbl.Catalog.tname
    (match env.as_of with
    | Some sid -> fun () -> Obs.Scope.with_snapshot sid f
    | None -> f)

let scan_heap env tbl ~f =
  attributed env tbl (fun () ->
      Storage.Heap.iter env.read (heap_of env tbl) ~f:(fun rid data ->
          Obs.Scope.incr c_rows_scanned;
          f rid (R.decode_row data)))

let is_virtual (tbl : Catalog.table) = tbl.theap < 0

(* Scan dispatcher: virtual system tables materialize their rows from
   live engine state (rid -1: they have no storage, and no DML path
   accepts them); real tables stream from the heap.  Virtual tables
   also never have indexes, so every index-based access path passes
   them by without a check. *)
let scan_rows env (tbl : Catalog.table) ~f =
  if is_virtual tbl then
    List.iter
      (fun row ->
        Obs.Scope.incr c_rows_scanned;
        f (-1) row)
      (Systables.rows env.db tbl)
  else scan_heap env tbl ~f

let fetch_row env (tbl : Catalog.table) rid =
  attributed env tbl (fun () ->
      match Storage.Heap.get env.read (heap_of env tbl) rid with
      | Some data -> Some (R.decode_row data)
      | None -> None)

let col_pos (tbl : Catalog.table) name =
  let n = String.lowercase_ascii name in
  let rec go i =
    if i >= Array.length tbl.tcols then error "table %s has no column %s" tbl.tname name
    else if String.lowercase_ascii (fst tbl.tcols.(i)) = n then i
    else go (i + 1)
  in
  go 0

let index_key (tbl : Catalog.table) (idx : Catalog.index) (row : R.row) : R.row =
  Array.of_list (List.map (fun c -> row.(col_pos tbl c)) idx.Catalog.icols)

(* Iterate rids of [tbl] matching the (evaluated) leading-column bounds
   via [idx]. *)
let index_scan env (tbl : Catalog.table) (idx : Catalog.index) bounds ~f =
  let bt = Storage.Btree.open_existing idx.Catalog.iroot in
  let lo = ref ([||], min_int) and hi = ref None in
  List.iter
    (fun (_, op, v) ->
      match op with
      | Eq ->
        lo := ([| v |], min_int);
        hi := Some ([| v |], max_int)
      | Gt -> lo := ([| v |], max_int)
      | Ge -> lo := ([| v |], min_int)
      | Lt -> hi := Some ([| v |], min_int)
      | Le -> hi := Some ([| v |], max_int)
      | _ -> ())
    bounds;
  (* The composite bounds are [lo, hi]; Gt uses ([v],max_int) so real
     entries ([v],rid) fall below it, and Lt uses ([v],min_int)
     symmetrically. *)
  attributed env tbl (fun () ->
      match !hi with
      | Some hi -> Storage.Btree.range env.read bt ~lo:!lo ~hi ~f:(fun _k rid -> f rid; true)
      | None -> Storage.Btree.iter_from env.read bt ~lo:!lo ~f:(fun _k rid -> f rid; true))

(* Evaluate the bound expressions of an index search (parameters are
   already bound; values may come from constant function calls). *)
let eval_bounds fnctx bounds =
  List.map (fun (i, op, e) -> (i, op, Expr.eval_const fnctx e)) bounds

(* --- aggregation -------------------------------------------------------- *)

type agg_acc = {
  spec : agg; (* with resolved argument *)
  mutable a_count : int;
  mutable a_sum_i : int;
  mutable a_sum_f : float;
  mutable a_real : bool;
  mutable a_mm : R.value;
  a_distinct : (string, unit) Hashtbl.t option;
}

let new_acc spec =
  { spec;
    a_count = 0;
    a_sum_i = 0;
    a_sum_f = 0.;
    a_real = false;
    a_mm = R.Null;
    a_distinct = (if spec.agg_distinct then Some (Hashtbl.create 16) else None) }

let acc_step fnctx acc row =
  let v =
    match acc.spec.agg_arg with
    | None -> R.Int 1 (* COUNT star *)
    | Some e -> Expr.eval fnctx ~row ~aggs:[||] e
  in
  let proceed =
    match acc.a_distinct with
    | None -> v <> R.Null || acc.spec.agg_arg = None
    | Some tbl ->
      if v = R.Null then false
      else begin
        let k = R.encode_row [| v |] in
        if Hashtbl.mem tbl k then false
        else begin
          Hashtbl.add tbl k ();
          true
        end
      end
  in
  if proceed then begin
    acc.a_count <- acc.a_count + 1;
    (match v with
    | R.Int i ->
      acc.a_sum_i <- acc.a_sum_i + i;
      acc.a_sum_f <- acc.a_sum_f +. float_of_int i
    | R.Real f ->
      acc.a_real <- true;
      acc.a_sum_f <- acc.a_sum_f +. f
    | R.Text _ | R.Null -> (
      match Expr.to_number v with
      | Some f ->
        acc.a_real <- true;
        acc.a_sum_f <- acc.a_sum_f +. f
      | None -> ()));
    match acc.spec.agg_fn with
    | "min" -> if acc.a_mm = R.Null || R.compare_value v acc.a_mm < 0 then acc.a_mm <- v
    | "max" -> if acc.a_mm = R.Null || R.compare_value v acc.a_mm > 0 then acc.a_mm <- v
    | _ -> ()
  end

let acc_final acc =
  match acc.spec.agg_fn with
  | "count" -> R.Int acc.a_count
  | "sum" ->
    if acc.a_count = 0 then R.Null
    else if acc.a_real then R.Real acc.a_sum_f
    else R.Int acc.a_sum_i
  | "total" -> R.Real acc.a_sum_f
  | "avg" -> if acc.a_count = 0 then R.Null else R.Real (acc.a_sum_f /. float_of_int acc.a_count)
  | "min" | "max" -> acc.a_mm
  | fn -> error "unknown aggregate function %s" fn

(* --- subquery expansion and plan evaluation ----------------------------- *)

(* The environment a nested select runs in: its own AS OF if it has one,
   else the enclosing statement's (snapshot queries are statement-wide,
   matching the AS OF semantics of §3). *)
let rec member_env env (sub : select) =
  match sub.as_of with None -> env | Some _ -> env_of_select env.db sub

(* Replace (uncorrelated) subquery nodes by their values: scalar
   subqueries become literals, IN (SELECT ...) becomes a materialized
   set, EXISTS becomes a boolean.  Correlated references fail inside the
   subquery's own resolution with a "no such column" error.  Expansion
   happens per execution — nested selects are planned fresh against the
   environment they run in, and the enclosing cached plan is never
   mutated. *)
and expand_sub env e =
  Expr.map
    (function
      | Subquery sub -> (
        let senv = member_env env sub in
        match select_all senv sub with
        | _, [] -> Lit R.Null
        | header, row :: _ ->
          if Array.length header <> 1 then error "scalar subquery must return a single column";
          Lit row.(0))
      | In_select { subject; sub; negated } ->
        let senv = member_env env sub in
        let header, rows = select_all senv sub in
        if Array.length header <> 1 then
          error "IN (SELECT ...) must return a single column";
        let set = Hashtbl.create (max 16 (List.length rows)) in
        let has_null = ref false in
        List.iter
          (fun (r : R.row) ->
            match r.(0) with
            | R.Null -> has_null := true
            | v -> Hashtbl.replace set (R.encode_row [| v |]) ())
          rows;
        In_set { subject; set; has_null = !has_null; negated }
      | Exists { sub; negated } ->
        let senv = member_env env sub in
        let sub = { sub with limit = Some (Lit (R.Int 1)); order_by = [] } in
        let _, rows = select_all senv sub in
        Expr.of_bool ((rows <> []) <> negated) |> fun v -> Lit v
      | e -> e)
    e

(* Plan and run a SELECT against [env] (the unprepared path). *)
and select_stream env (sel : select) : string array * ((R.row -> unit) -> unit) =
  stream_plan env (Planner.plan ~cat:env.cat ~fnctx:(Db.fn_ctx env.db) sel)

and select_all env sel : string array * R.row list =
  let header, run = select_stream env sel in
  let rows = ref [] in
  run (fun r -> rows := r :: !rows);
  (header, List.rev !rows)

(* Execute a compiled plan against [env].  Parameters must have been
   bound with Plan.bind. *)
and stream_plan env (p : Plan.t) : string array * ((R.row -> unit) -> unit) =
  let header, run =
    if p.Plan.p_members = [] then stream_core env p.Plan.p_core else stream_compound env p
  in
  ( header,
    fun f ->
      run (fun row ->
          Obs.Scope.incr c_rows_returned;
          f row) )

(* UNION / UNION ALL, left-associative as in SQLite: each non-ALL member
   deduplicates everything accumulated so far.  A member with its own
   AS OF is re-planned against its snapshot catalog. *)
and stream_compound env (p : Plan.t) =
  let collect (header, run) =
    let rows = ref [] in
    run (fun r -> rows := r :: !rows);
    (header, List.rev !rows)
  in
  let base =
    { p with Plan.p_members = []; p_corder = []; p_climit = None; p_coffset = None }
  in
  let header, first_rows = collect (stream_plan env base) in
  let dedupe rows =
    let seen = Hashtbl.create 256 in
    List.filter
      (fun r ->
        let k = R.encode_row r in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      rows
  in
  let rows =
    List.fold_left
      (fun acc (all, (m : Plan.t)) ->
        let menv, mplan =
          match m.Plan.p_as_of with
          | None -> (env, m)
          | Some _ ->
            let menv = env_of_select env.db m.Plan.p_src in
            (menv, Planner.plan ~cat:menv.cat ~fnctx:(Db.fn_ctx env.db) m.Plan.p_src)
        in
        let mh, mrows = collect (stream_plan menv mplan) in
        if Array.length mh <> Array.length header then
          error "UNION members must return the same number of columns";
        let combined = acc @ mrows in
        if all then combined else dedupe combined)
      first_rows p.Plan.p_members
  in
  let fnctx = Db.fn_ctx env.db in
  let rows =
    if p.Plan.p_corder = [] then rows
    else
      List.stable_sort
        (fun (a : R.row) b ->
          let rec go = function
            | [] -> 0
            | (i, desc) :: rest ->
              let c = R.compare_value a.(i) b.(i) in
              if c <> 0 then if desc then -c else c else go rest
          in
          go p.Plan.p_corder)
        rows
  in
  let limit =
    Option.map
      (fun e ->
        match Expr.eval_const fnctx e with
        | R.Int n -> n
        | v -> error "LIMIT requires an integer, got %s" (R.value_to_string v))
      p.Plan.p_climit
  in
  let offset =
    match p.Plan.p_coffset with
    | None -> 0
    | Some e -> (
      match Expr.eval_const fnctx e with
      | R.Int n -> n
      | v -> error "OFFSET requires an integer, got %s" (R.value_to_string v))
  in
  let rows =
    let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
    let taken = drop offset rows in
    match limit with
    | None -> taken
    | Some l ->
      let rec take n l =
        if n <= 0 then [] else match l with [] -> [] | h :: t -> h :: take (n - 1) t
      in
      take l taken
  in
  (header, fun f -> List.iter f rows)

(* Evaluate one plan core: FROM pipeline, then projection, aggregation,
   DISTINCT, ORDER BY and LIMIT. *)
and stream_core env (c : Plan.core) : string array * ((R.row -> unit) -> unit) =
  let fnctx = Db.fn_ctx env.db in
  (* Expand uncorrelated subqueries against this execution's environment
     (fresh copy of the core; the cached plan stays pristine). *)
  let c = Plan.map_core (expand_sub env) c in
  let feval row e = Expr.eval fnctx ~row ~aggs:[||] e in
  let pass filters row = List.for_all (fun r -> Expr.truth (feval row r) = Some true) filters in
  let instr = env.analyze in
  (* Instrumentation wrappers.  All three are decided at pipeline
     construction time: with [analyze] off they return their argument
     unchanged, so the executed closure chain is the uninstrumented one
     (zero-overhead path).

     [stage] records rows produced, loops, and elapsed/page-read cost
     inclusive of upstream stages (Postgres EXPLAIN ANALYZE node
     semantics): the bracket around the whole emit run minus the time
     and pages observed inside the downstream consumer callback. *)
  let stage (op : Plan.op) emit =
    if not instr then emit
    else
      fun f ->
        let sl = op.Plan.op_slot in
        sl.Plan.o_loops <- sl.Plan.o_loops + 1;
        let t0 = Exec_stats.now () and p0 = pages_now () in
        let down_t = ref 0. and down_p = ref 0 in
        emit (fun row ->
            sl.Plan.o_rows <- sl.Plan.o_rows + 1;
            let ti = Exec_stats.now () and pi = pages_now () in
            f row;
            down_t := !down_t +. (Exec_stats.now () -. ti);
            down_p := !down_p + (pages_now () - pi));
        sl.Plan.o_elapsed_s <- sl.Plan.o_elapsed_s +. (Exec_stats.now () -. t0 -. !down_t);
        sl.Plan.o_pages <- sl.Plan.o_pages + (pages_now () - p0 - !down_p)
  in
  (* One probe per outer row driven into a lookup-style join. *)
  let probed (op : Plan.op) emit =
    if not instr then emit
    else
      fun f ->
        emit (fun row ->
            op.Plan.op_slot.Plan.o_probes <- op.Plan.op_slot.Plan.o_probes + 1;
            f row)
  in
  (* Charge inner-side build cost (hash table / materialization, done
     once at pipeline construction) to the join operator. *)
  let charge_build (op : Plan.op) build =
    if not instr then build ()
    else begin
      let sl = op.Plan.op_slot in
      let t0 = Exec_stats.now () and p0 = pages_now () in
      build ();
      sl.Plan.o_elapsed_s <- sl.Plan.o_elapsed_s +. (Exec_stats.now () -. t0);
      sl.Plan.o_pages <- sl.Plan.o_pages + (pages_now () - p0)
    end
  in
  let emit =
    match c.Plan.c_from with
    | _ when c.Plan.c_empty -> fun _f -> ()
    | Plan.From_none -> fun f -> f [||]
    | Plan.From_scan { first; joins; residual } ->
      let t0 = first.Plan.sc_src.Plan.s_tbl in
      let emit0 f =
        match first.Plan.sc_access with
        | Plan.Index_search { ix; bounds } ->
          index_scan env t0 ix (eval_bounds fnctx bounds) ~f:(fun rid ->
              match fetch_row env t0 rid with
              | Some row -> if pass first.Plan.sc_filters row then f row
              | None -> ())
        | Plan.Seq_scan ->
          scan_rows env t0 ~f:(fun _rid row -> if pass first.Plan.sc_filters row then f row)
      in
      let emit0 = stage first.Plan.sc_op emit0 in
      let add_join emit (js : Plan.join_step) =
        let t = js.Plan.j_src.Plan.s_tbl in
        match js.Plan.j_plan with
        | Plan.Left_hash { equi; inner_filters; residual } ->
          let n_inner = Array.length t.Catalog.tcols in
          let nulls = Array.make n_inner R.Null in
          let right_key_of row =
            R.encode_row (Array.of_list (List.map (fun (_, rb) -> feval row rb) equi))
          in
          let left_key_of row =
            R.encode_row (Array.of_list (List.map (fun (la, _) -> feval row la) equi))
          in
          (* materialize the (filtered) inner side, hashed when equi keys
             exist — the automatic-index analogue, timed as index build *)
          let tbl_hash : (string, R.row list ref) Hashtbl.t = Hashtbl.create 256 in
          let all_inner = ref [] in
          let build () =
            scan_rows env t ~f:(fun _rid row ->
                if pass inner_filters row then
                  if equi = [] then all_inner := row :: !all_inner
                  else
                    let k = right_key_of row in
                    match Hashtbl.find_opt tbl_hash k with
                    | Some l -> l := row :: !l
                    | None -> Hashtbl.add tbl_hash k (ref [ row ]))
          in
          charge_build js.Plan.j_op (fun () -> Exec_stats.time_index build);
          let emit = probed js.Plan.j_op emit in
          fun f ->
            emit (fun lrow ->
                let candidates =
                  if equi = [] then List.rev !all_inner
                  else
                    match Hashtbl.find_opt tbl_hash (left_key_of lrow) with
                    | Some l -> List.rev !l
                    | None -> []
                in
                let matched = ref false in
                List.iter
                  (fun rrow ->
                    let row = Array.append lrow rrow in
                    if pass residual row then begin
                      matched := true;
                      f row
                    end)
                  candidates;
                if not !matched then f (Array.append lrow nulls))
        | Plan.Nested_loop { filters } ->
          (* cross/theta join: materialize the (filtered) inner table *)
          let inner = ref [] in
          charge_build js.Plan.j_op (fun () ->
              scan_rows env t ~f:(fun _rid row -> if pass filters row then inner := row :: !inner));
          let inner = Array.of_list (List.rev !inner) in
          fun f -> emit (fun lrow -> Array.iter (fun rrow -> f (Array.append lrow rrow)) inner)
        | Plan.Index_probe { ix; equi; filters } ->
          let left_keys = List.map fst equi in
          let bt = Storage.Btree.open_existing ix.Catalog.iroot in
          let emit = probed js.Plan.j_op emit in
          fun f ->
            emit (fun lrow ->
                let kv = Array.of_list (List.map (fun e -> feval lrow e) left_keys) in
                Storage.Btree.lookup env.read bt kv ~f:(fun rid ->
                    match fetch_row env t rid with
                    | Some rrow -> if pass filters rrow then f (Array.append lrow rrow)
                    | None -> ()))
        | Plan.Hash_join { equi; filters } ->
          (* automatic ephemeral index over the inner table (SQLite's
             covering-index analogue); built once per execution. *)
          let left_keys = List.map fst equi and right_keys = List.map snd equi in
          let right_key_of row =
            R.encode_row (Array.of_list (List.map (feval row) right_keys))
          in
          let left_key_of row =
            R.encode_row (Array.of_list (List.map (feval row) left_keys))
          in
          let tbl_hash : (string, R.row list ref) Hashtbl.t = Hashtbl.create 1024 in
          let build () =
            scan_rows env t ~f:(fun _rid row ->
                if pass filters row then
                  let k = right_key_of row in
                  match Hashtbl.find_opt tbl_hash k with
                  | Some l -> l := row :: !l
                  | None -> Hashtbl.add tbl_hash k (ref [ row ]))
          in
          charge_build js.Plan.j_op (fun () -> Exec_stats.time_index build);
          let emit = probed js.Plan.j_op emit in
          fun f ->
            emit (fun lrow ->
                match Hashtbl.find_opt tbl_hash (left_key_of lrow) with
                | Some l -> List.iter (fun rrow -> f (Array.append lrow rrow)) !l
                | None -> ())
      in
      let emit =
        List.fold_left (fun emit js -> stage js.Plan.j_op (add_join emit js)) emit0 joins
      in
      let filtered f = emit (fun row -> if pass residual row then f row) in
      if residual = [] then filtered else stage c.Plan.c_filter_op filtered
  in
  let out_exprs = c.Plan.c_out in
  let order_resolved = c.Plan.c_order in
  let limit =
    Option.map
      (fun e ->
        match Expr.eval_const fnctx e with
        | R.Int n -> n
        | v -> error "LIMIT requires an integer, got %s" (R.value_to_string v))
      c.Plan.c_limit
  in
  let offset =
    match c.Plan.c_offset with
    | None -> 0
    | Some e -> (
      match Expr.eval_const fnctx e with
      | R.Int n -> n
      | v -> error "OFFSET requires an integer, got %s" (R.value_to_string v))
  in
  (* Produce (out_row, sort_key) pairs. *)
  let produce (push : R.row -> R.row -> unit) =
    let eval_out row aggs =
      let out = Array.of_list (List.map (fun e -> Expr.eval fnctx ~row ~aggs e) out_exprs) in
      let key =
        Array.of_list
          (List.map
             (fun (k, _) ->
               match k with
               | Plan.Out_col i -> out.(i)
               | Plan.Key_expr e -> Expr.eval fnctx ~row ~aggs e)
             order_resolved)
      in
      (out, key)
    in
    if c.Plan.c_has_agg then begin
      let groups : (string, R.row * agg_acc array) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      emit (fun row ->
          let gkey =
            R.encode_row (Array.of_list (List.map (fun e -> feval row e) c.Plan.c_group))
          in
          let _, accs =
            match Hashtbl.find_opt groups gkey with
            | Some ga -> ga
            | None ->
              let accs = Array.of_list (List.map new_acc c.Plan.c_aggs) in
              Hashtbl.add groups gkey (row, accs);
              order := gkey :: !order;
              (row, accs)
          in
          Array.iter (fun acc -> acc_step fnctx acc row) accs);
      let emit_group gkey =
        let repr, accs = Hashtbl.find groups gkey in
        let aggs = Array.map acc_final accs in
        let keep =
          match c.Plan.c_having with
          | None -> true
          | Some h -> Expr.truth (Expr.eval fnctx ~row:repr ~aggs h) = Some true
        in
        if keep then begin
          let out, key = eval_out repr aggs in
          push out key
        end
      in
      if Hashtbl.length groups = 0 && c.Plan.c_group = [] then begin
        (* aggregate over an empty input: one row *)
        let accs = Array.of_list (List.map new_acc c.Plan.c_aggs) in
        let aggs = Array.map acc_final accs in
        let keep =
          match c.Plan.c_having with
          | None -> true
          | Some h -> Expr.truth (Expr.eval fnctx ~row:[||] ~aggs h) = Some true
        in
        if keep then begin
          let out, key = eval_out [||] aggs in
          push out key
        end
      end
      else List.iter emit_group (List.rev !order)
    end
    else
      emit (fun row ->
          let out, key = eval_out row [||] in
          push out key)
  in
  (* When aggregating, record the groups produced (post-HAVING) and the
     cost of the blocking aggregation stage. *)
  let produce =
    if not (instr && c.Plan.c_has_agg) then produce
    else
      fun push ->
        let sl = c.Plan.c_agg_op.Plan.op_slot in
        sl.Plan.o_loops <- sl.Plan.o_loops + 1;
        let t0 = Exec_stats.now () and p0 = pages_now () in
        produce (fun out key ->
            sl.Plan.o_rows <- sl.Plan.o_rows + 1;
            push out key);
        sl.Plan.o_elapsed_s <- sl.Plan.o_elapsed_s +. (Exec_stats.now () -. t0);
        sl.Plan.o_pages <- sl.Plan.o_pages + (pages_now () - p0)
  in
  let run f =
    let need_sort = order_resolved <> [] in
    let need_distinct = c.Plan.c_distinct in
    if need_sort || need_distinct then begin
      let t_sort = if instr then Exec_stats.now () else 0. in
      let rows = ref [] in
      let seen = Hashtbl.create 64 in
      produce (fun out key ->
          if need_distinct then begin
            let k = R.encode_row out in
            if not (Hashtbl.mem seen k) then begin
              Hashtbl.add seen k ();
              rows := (out, key) :: !rows
            end
          end
          else rows := (out, key) :: !rows);
      let rows = Array.of_list (List.rev !rows) in
      if need_sort then begin
        let cmp (_, ka) (_, kb) =
          let rec go i =
            if i >= Array.length ka then 0
            else
              let _, desc = List.nth order_resolved i in
              let c = R.compare_value ka.(i) kb.(i) in
              if c <> 0 then if desc then -c else c else go (i + 1)
          in
          go 0
        in
        Array.stable_sort cmp rows
      end;
      if instr then begin
        (* rows held by the sort/distinct buffer, inclusive time up to
           and including the sort itself *)
        let sl = c.Plan.c_sort_op.Plan.op_slot in
        sl.Plan.o_loops <- sl.Plan.o_loops + 1;
        sl.Plan.o_rows <- sl.Plan.o_rows + Array.length rows;
        sl.Plan.o_elapsed_s <- sl.Plan.o_elapsed_s +. (Exec_stats.now () -. t_sort)
      end;
      let n = Array.length rows in
      let stop = match limit with Some l -> min n (offset + l) | None -> n in
      for i = offset to stop - 1 do
        f (fst rows.(i))
      done
    end
    else begin
      (* streaming with early stop on LIMIT *)
      let exception Stop in
      let count = ref 0 in
      let emitted = ref 0 in
      (try
         produce (fun out _ ->
             incr count;
             if !count > offset then begin
               (match limit with
               | Some l when !emitted >= l -> raise Stop
               | _ -> ());
               incr emitted;
               f out
             end)
       with Stop -> ())
    end
  in
  (* Final output operator: rows delivered to the consumer (post
     LIMIT/OFFSET), timed inclusively of the whole core. *)
  let run =
    if not instr then run
    else
      fun f ->
        let sl = c.Plan.c_out_op.Plan.op_slot in
        sl.Plan.o_loops <- sl.Plan.o_loops + 1;
        let t0 = Exec_stats.now () and p0 = pages_now () in
        run (fun row ->
            sl.Plan.o_rows <- sl.Plan.o_rows + 1;
            f row);
        sl.Plan.o_elapsed_s <- sl.Plan.o_elapsed_s +. (Exec_stats.now () -. t0);
        sl.Plan.o_pages <- sl.Plan.o_pages + (pages_now () - p0)
  in
  (c.Plan.c_header, run)

(* --- DML ------------------------------------------------------------------ *)

let insert_row_raw env txn (tbl : Catalog.table) (row : R.row) =
  if Array.length row <> Array.length tbl.tcols then
    error "table %s expects %d values, got %d" tbl.tname (Array.length tbl.tcols)
      (Array.length row);
  let rid = Storage.Heap.insert txn (Db.heap_handle env.db tbl.theap) (R.encode_row row) in
  List.iter
    (fun idx ->
      let bt = Storage.Btree.open_existing idx.Catalog.iroot in
      Storage.Btree.insert txn bt (index_key tbl idx row) rid)
    (Catalog.indexes_of_table env.cat tbl.tname);
  rid

(* Rows (with rids) matching [where] on a single table, using an index
   when one applies.  Materialized to allow subsequent mutation.
   Subqueries are expanded before planning, so subquery-derived
   constants stay sargable here. *)
let matching_rows env (tbl : Catalog.table) (where : expr option) =
  let fnctx = Db.fn_ctx env.db in
  let where = Option.map (expand_sub env) where in
  let sc = Planner.plan_table ~cat:env.cat ~fnctx tbl where in
  let keep row =
    List.for_all
      (fun r -> Expr.truth (Expr.eval fnctx ~row ~aggs:[||] r) = Some true)
      sc.Plan.sc_filters
  in
  let out = ref [] in
  (match sc.Plan.sc_access with
  | Plan.Index_search { ix; bounds } ->
    index_scan env tbl ix (eval_bounds fnctx bounds) ~f:(fun rid ->
        match fetch_row env tbl rid with
        | Some row -> if keep row then out := (rid, row) :: !out
        | None -> ())
  | Plan.Seq_scan -> scan_heap env tbl ~f:(fun rid row -> if keep row then out := (rid, row) :: !out));
  List.rev !out

let delete_rows env txn (tbl : Catalog.table) rows =
  let heap = Db.heap_handle env.db tbl.theap in
  let indexes = Catalog.indexes_of_table env.cat tbl.tname in
  List.iter
    (fun (rid, row) ->
      ignore (Storage.Heap.delete txn heap rid);
      List.iter
        (fun idx ->
          let bt = Storage.Btree.open_existing idx.Catalog.iroot in
          ignore (Storage.Btree.delete txn bt (index_key tbl idx row) rid))
        indexes)
    rows;
  List.length rows

let update_rows env txn (tbl : Catalog.table) sets rows =
  let fnctx = Db.fn_ctx env.db in
  let heap = Db.heap_handle env.db tbl.theap in
  let indexes = Catalog.indexes_of_table env.cat tbl.tname in
  let sets =
    List.map
      (fun (c, e) -> (col_pos tbl c, Planner.resolve_against_table tbl (expand_sub env e)))
      sets
  in
  List.iter
    (fun (rid, row) ->
      let row' = Array.copy row in
      List.iter (fun (i, e) -> row'.(i) <- Expr.eval fnctx ~row ~aggs:[||] e) sets;
      let rid' =
        match Storage.Heap.update txn heap rid (R.encode_row row') with
        | `Same -> rid
        | `Moved r -> r
      in
      List.iter
        (fun idx ->
          let bt = Storage.Btree.open_existing idx.Catalog.iroot in
          let k = index_key tbl idx row and k' = index_key tbl idx row' in
          if rid <> rid' || R.compare_row k k' <> 0 then begin
            ignore (Storage.Btree.delete txn bt k rid);
            Storage.Btree.insert txn bt k' rid'
          end)
        indexes)
    rows;
  List.length rows
