(* Statement execution: planning and evaluation.

   SELECT pipelines are built as push-style iterators.  Planning is
   deliberately SQLite-flavoured:
   - single-table predicates choose a native index when one matches the
     leading index column, else a sequential heap scan;
   - equi-joins probe a native index when the inner table has one on the
     join column, and otherwise build an ephemeral hash index over the
     inner table — the analogue of SQLite's automatic covering index,
     whose construction cost the paper's Fig 9 isolates (timed into
     Exec_stats.index_build_s). *)

module R = Storage.Record
open Ast

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- environments ----------------------------------------------------- *)

type env = {
  db : Db.t;
  read : Storage.Pager.read;
  cat : Catalog.t;
  as_of : int option;
}

let current_env db = { db; read = Db.read_current db; cat = Db.catalog db; as_of = None }

(* Environment reading as of snapshot [sid]: builds the SPT (timed as
   "SPT build") and resolves the catalog from the snapshot itself. *)
let snapshot_env db sid =
  let retro = Db.retro_exn db in
  if sid < 1 || sid > Retro.snapshot_count retro then
    error "AS OF %d: no such snapshot" sid;
  let spt = Exec_stats.time_spt (fun () -> Retro.build_spt retro sid) in
  let read = Retro.read_ctx retro spt in
  { db; read; cat = Catalog.load read; as_of = Some sid }

let env_of_select db (sel : select) =
  match sel.as_of with
  | None -> current_env db
  | Some e -> (
    match Expr.eval_const (Db.fn_ctx db) e with
    | R.Int sid -> snapshot_env db sid
    | v -> error "AS OF requires an integer snapshot id, got %s" (R.value_to_string v))

(* --- column resolution ------------------------------------------------ *)

type src_table = {
  alias : string;              (* lowercase *)
  tbl : Catalog.table;
  offset : int;                (* position of this table's first column in the combined row *)
}

let col_names (t : Catalog.table) =
  Array.map (fun (n, _) -> String.lowercase_ascii n) t.tcols

let find_col tables q n =
  let n = String.lowercase_ascii n in
  let matches =
    List.concat_map
      (fun st ->
        match q with
        | Some q when String.lowercase_ascii q <> st.alias -> []
        | _ ->
          let names = col_names st.tbl in
          let hits = ref [] in
          Array.iteri (fun i cn -> if cn = n then hits := (st.offset + i) :: !hits) names;
          !hits)
      tables
  in
  match matches with
  | [ i ] -> i
  | [] ->
    error "no such column: %s%s" (match q with Some q -> q ^ "." | None -> "") n
  | _ -> error "ambiguous column name: %s" n

(* Rewrite Col nodes to positional Colidx against [tables]. *)
let resolve tables e =
  Expr.map (function Col (q, n) -> Colidx (find_col tables q n) | e -> e) e

(* Try to resolve [e] against only [tables]; None if it references other
   columns. *)
let try_resolve tables e = try Some (resolve tables e) with Error _ -> None

(* --- source scans ------------------------------------------------------ *)

let heap_of env (tbl : Catalog.table) =
  match env.as_of with
  | None -> Db.heap_handle env.db tbl.theap
  | Some _ -> Storage.Heap.open_existing tbl.theap

let c_rows_scanned = Obs.Metrics.counter "sql.rows_scanned"
let c_rows_returned = Obs.Metrics.counter "sql.rows_returned"

let scan_heap env tbl ~f =
  Storage.Heap.iter env.read (heap_of env tbl) ~f:(fun rid data ->
      Obs.Metrics.Counter.incr c_rows_scanned;
      f rid (R.decode_row data))

let is_virtual (tbl : Catalog.table) = tbl.theap < 0

(* Scan dispatcher: virtual system tables materialize their rows from
   live engine state (rid -1: they have no storage, and no DML path
   accepts them); real tables stream from the heap.  Virtual tables
   also never have indexes, so every index-based access path passes
   them by without a check. *)
let scan_rows env (tbl : Catalog.table) ~f =
  if is_virtual tbl then
    List.iter
      (fun row ->
        Obs.Metrics.Counter.incr c_rows_scanned;
        f (-1) row)
      (Systables.rows env.db tbl)
  else scan_heap env tbl ~f

let fetch_row env (tbl : Catalog.table) rid =
  match Storage.Heap.get env.read (heap_of env tbl) rid with
  | Some data -> Some (R.decode_row data)
  | None -> None

let col_pos (tbl : Catalog.table) name =
  let n = String.lowercase_ascii name in
  let rec go i =
    if i >= Array.length tbl.tcols then error "table %s has no column %s" tbl.tname name
    else if String.lowercase_ascii (fst tbl.tcols.(i)) = n then i
    else go (i + 1)
  in
  go 0

let index_key (tbl : Catalog.table) (idx : Catalog.index) (row : R.row) : R.row =
  Array.of_list (List.map (fun c -> row.(col_pos tbl c)) idx.Catalog.icols)

(* --- single-table access path ------------------------------------------ *)

(* A sargable bound extracted from a conjunct on the leading column of an
   index: (column position in table, operator, constant). *)
type bound = Bnd_eq of R.value | Bnd_lt of R.value | Bnd_le of R.value | Bnd_gt of R.value | Bnd_ge of R.value

let extract_bound (tbl_tables : src_table list) fnctx conj =
  (* conj resolved against the single table *)
  let const e =
    match e with
    | Lit v -> Some v
    | _ -> ( try Some (Expr.eval_const fnctx e) with _ -> None)
  in
  let flip = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | op -> op in
  match try_resolve tbl_tables conj with
  | None -> None
  | Some r -> (
    match r with
    | Binop (((Eq | Lt | Le | Gt | Ge) as op), Colidx i, rhs) -> (
      match const rhs with Some v when v <> R.Null -> Some (i, op, v) | _ -> None)
    | Binop (((Eq | Lt | Le | Gt | Ge) as op), lhs, Colidx i) -> (
      match const lhs with Some v when v <> R.Null -> Some (i, flip op, v) | _ -> None)
    | _ -> None)

(* Pick a native index for a single-table scan given resolved
   single-table conjuncts; returns (index, bounds on leading column). *)
let pick_index env (tbl : Catalog.table) bounds =
  let indexes = Catalog.indexes_of_table env.cat tbl.tname in
  let rec go = function
    | [] -> None
    | idx :: rest -> (
      match idx.Catalog.icols with
      | lead :: _ ->
        let lead_pos = col_pos tbl lead in
        let applicable = List.filter (fun (i, _, _) -> i = lead_pos) bounds in
        if applicable = [] then go rest
        else
          (* prefer equality *)
          let eqs = List.filter (fun (_, op, _) -> op = Eq) applicable in
          Some (idx, (if eqs <> [] then eqs else applicable))
      | [] -> go rest)
  in
  go indexes

(* Iterate rids of [tbl] matching the leading-column bounds via [idx]. *)
let index_scan env (_tbl : Catalog.table) (idx : Catalog.index) bounds ~f =
  let bt = Storage.Btree.open_existing idx.Catalog.iroot in
  let lo = ref ([||], min_int) and hi = ref None in
  List.iter
    (fun (_, op, v) ->
      match op with
      | Eq ->
        lo := ([| v |], min_int);
        hi := Some ([| v |], max_int)
      | Gt -> lo := ([| v |], max_int)
      | Ge -> lo := ([| v |], min_int)
      | Lt -> hi := Some ([| v |], min_int)
      | Le -> hi := Some ([| v |], max_int)
      | _ -> ())
    bounds;
  (* The composite bounds are [lo, hi]; Gt uses ([v],max_int) so real
     entries ([v],rid) fall below it, and Lt uses ([v],min_int)
     symmetrically. *)
  match !hi with
  | Some hi -> Storage.Btree.range env.read bt ~lo:!lo ~hi ~f:(fun _k rid -> f rid; true)
  | None -> Storage.Btree.iter_from env.read bt ~lo:!lo ~f:(fun _k rid -> f rid; true)

(* --- select pipeline ---------------------------------------------------- *)

(* Access-path decisions recorded during pipeline construction, surfaced
   by EXPLAIN (in the spirit of SQLite's EXPLAIN QUERY PLAN). *)
let plan_log : string list ref = ref []
let plan_note fmt = Printf.ksprintf (fun s -> plan_log := s :: !plan_log) fmt

type conjunct = { mutable used : bool; cexpr : expr }

(* Build the FROM pipeline: returns (tables in join order, emit) where
   emit pushes combined rows (all tables' columns concatenated). *)
let build_from env (sel : select) =
  let fnctx = Db.fn_ctx env.db in
  match sel.from with
  | None ->
    ([], fun f -> f [||])
  | Some (first_ref, joins) ->
    let lookup_table (tr : table_ref) =
      match Catalog.find_table env.cat tr.tbl_name with
      | Some t -> t
      | None -> (
        (* catalog miss: sys_* virtual tables, resolved the same under
           AS OF (they reflect current process state, not history) *)
        match Systables.lookup tr.tbl_name with
        | Some t -> t
        | None -> error "no such table: %s" tr.tbl_name)
    in
    let alias_of (tr : table_ref) =
      String.lowercase_ascii (Option.value tr.tbl_alias ~default:tr.tbl_name)
    in
    (* conjunct pool: WHERE plus all ON conditions *)
    let pool =
      List.map
        (fun e -> { used = false; cexpr = e })
        (List.concat_map Expr.conjuncts
           ((match sel.where with Some w -> [ w ] | None -> [])
           @ List.filter_map
               (fun j -> if j.join_kind = Join_inner then j.join_on else None)
               joins))
    in
    let eval1 tables row e = Expr.eval fnctx ~row ~aggs:[||] (resolve tables e) in
    ignore eval1;
    (* first table *)
    let t0 = lookup_table first_ref in
    let st0 = { alias = alias_of first_ref; tbl = t0; offset = 0 } in
    let local0 = [ { st0 with offset = 0 } ] in
    (* single-table conjuncts for the first table *)
    let bounds0 =
      List.filter_map
        (fun c ->
          match extract_bound local0 fnctx c.cexpr with
          | Some b when not c.used -> Some (c, b)
          | _ -> None)
        pool
    in
    let filters0 =
      List.filter_map
        (fun c ->
          if c.used then None
          else
            match try_resolve local0 c.cexpr with
            | Some r -> Some (c, r)
            | None -> None)
        pool
    in
    let access0 = pick_index env t0 (List.map (fun (_, b) -> b) bounds0) in
    (* mark conjuncts consumed as filters (they are applied locally) *)
    List.iter (fun (c, _) -> c.used <- true) filters0;
    let filter_row0 row =
      List.for_all
        (fun (_, r) -> Expr.truth (Expr.eval fnctx ~row ~aggs:[||] r) = Some true)
        filters0
    in
    (match access0 with
    | Some (idx, _) ->
      plan_note "SEARCH %s USING INDEX %s" st0.tbl.Catalog.tname idx.Catalog.iname
    | None ->
      plan_note "SCAN %s%s" st0.tbl.Catalog.tname
        (if is_virtual st0.tbl then " (virtual)" else ""));
    let emit0 f =
      match access0 with
      | Some (idx, bnds) ->
        index_scan env t0 idx (List.map (fun (i, op, v) -> (i, op, v)) bnds) ~f:(fun rid ->
            match fetch_row env t0 rid with
            | Some row -> if filter_row0 row then f row
            | None -> ())
      | None -> scan_rows env t0 ~f:(fun _rid row -> if filter_row0 row then f row)
    in
    (* fold joins *)
    let add_join (tables, emit) (j : join_clause) =
      let t = lookup_table j.join_table in
      let st = { alias = alias_of j.join_table; tbl = t;
                 offset =
                   List.fold_left (fun acc s -> acc + Array.length s.tbl.Catalog.tcols) 0 tables }
      in
      let local = [ { st with offset = 0 } ] in
      let tables' = tables @ [ st ] in
      if j.join_kind = Join_left then begin
        (* LEFT JOIN: the ON conjuncts define the match; unmatched left
           rows are padded with NULLs.  WHERE conjuncts touching this
           table stay in the pool and filter after the join. *)
        let conjs = Expr.conjuncts (Option.get j.join_on) in
        let inner_filters, rest =
          List.partition (fun c -> try_resolve local c <> None) conjs
        in
        let inner_filters = List.filter_map (try_resolve local) inner_filters in
        let equi, residual_raw =
          List.partition_map
            (fun c ->
              match c with
              | Binop (Eq, a, b) -> (
                match try_resolve tables a, try_resolve local b with
                | Some la, Some rb -> Left (la, rb)
                | _ -> (
                  match try_resolve tables b, try_resolve local a with
                  | Some lb, Some ra -> Left (lb, ra)
                  | _ -> Right c))
              | c -> Right c)
            rest
        in
        let residual = List.map (resolve tables') residual_raw in
        let keep_inner row =
          List.for_all
            (fun r -> Expr.truth (Expr.eval fnctx ~row ~aggs:[||] r) = Some true)
            inner_filters
        in
        let n_inner = Array.length t.Catalog.tcols in
        let nulls = Array.make n_inner R.Null in
        (* materialize the (filtered) inner side, hashed when equi keys
           exist — the automatic-index analogue, timed as index build *)
        let right_key_of row =
          R.encode_row
            (Array.of_list
               (List.map (fun (_, rb) -> Expr.eval fnctx ~row ~aggs:[||] rb) equi))
        in
        let left_key_of row =
          R.encode_row
            (Array.of_list
               (List.map (fun (la, _) -> Expr.eval fnctx ~row ~aggs:[||] la) equi))
        in
        plan_note "LEFT JOIN %s%s" t.Catalog.tname
          (if equi = [] then " (materialized scan)" else " USING AUTOMATIC HASH INDEX");
        let tbl_hash : (string, R.row list ref) Hashtbl.t = Hashtbl.create 256 in
        let all_inner = ref [] in
        let build () =
          scan_rows env t ~f:(fun _rid row ->
              if keep_inner row then
                if equi = [] then all_inner := row :: !all_inner
                else
                  let k = right_key_of row in
                  match Hashtbl.find_opt tbl_hash k with
                  | Some l -> l := row :: !l
                  | None -> Hashtbl.add tbl_hash k (ref [ row ]))
        in
        Exec_stats.time_index build;
        let emit' f =
          emit (fun lrow ->
              let candidates =
                if equi = [] then List.rev !all_inner
                else
                  match Hashtbl.find_opt tbl_hash (left_key_of lrow) with
                  | Some l -> List.rev !l
                  | None -> []
              in
              let matched = ref false in
              List.iter
                (fun rrow ->
                  let row = Array.append lrow rrow in
                  if
                    List.for_all
                      (fun r -> Expr.truth (Expr.eval fnctx ~row ~aggs:[||] r) = Some true)
                      residual
                  then begin
                    matched := true;
                    f row
                  end)
                candidates;
              if not !matched then f (Array.append lrow nulls))
        in
        (tables', emit')
      end
      else begin
      (* single-table predicates for the new table *)
      let filters =
        List.filter_map
          (fun c ->
            if c.used then None
            else
              match try_resolve local c.cexpr with
              | Some r ->
                c.used <- true;
                Some r
              | None -> None)
          pool
      in
      let filter_row row =
        List.for_all (fun r -> Expr.truth (Expr.eval fnctx ~row ~aggs:[||] r) = Some true) filters
      in
      (* equi-join keys: conjunct  left_expr = right_col_expr *)
      let equi =
        List.filter_map
          (fun c ->
            if c.used then None
            else
              match c.cexpr with
              | Binop (Eq, a, b) -> (
                match try_resolve tables a, try_resolve local b with
                | Some la, Some rb ->
                  c.used <- true;
                  Some (la, rb)
                | _ -> (
                  match try_resolve tables b, try_resolve local a with
                  | Some lb, Some ra ->
                    c.used <- true;
                    Some (lb, ra)
                  | _ -> None))
              | _ -> None)
          pool
      in
      (match equi with
      | [] -> plan_note "SCAN %s (nested loop)" t.Catalog.tname
      | _ -> (
        match
          (match List.map snd equi with
          | [ Colidx i ] ->
            let cname = fst t.Catalog.tcols.(i) in
            List.find_opt
              (fun idx ->
                match idx.Catalog.icols with
                | [ c ] -> String.lowercase_ascii c = String.lowercase_ascii cname
                | _ -> false)
              (Catalog.indexes_of_table env.cat t.Catalog.tname)
          | _ -> None)
        with
        | Some idx -> plan_note "SEARCH %s USING INDEX %s (join)" t.Catalog.tname idx.Catalog.iname
        | None -> plan_note "JOIN %s USING AUTOMATIC HASH INDEX" t.Catalog.tname));
      let emit' f =
        match equi with
        | [] ->
          (* cross/theta join: materialize the (filtered) inner table *)
          let inner = ref [] in
          scan_rows env t ~f:(fun _rid row -> if filter_row row then inner := row :: !inner);
          let inner = Array.of_list (List.rev !inner) in
          emit (fun lrow -> Array.iter (fun rrow -> f (Array.append lrow rrow)) inner)
        | _ ->
          let left_keys = List.map fst equi and right_keys = List.map snd equi in
          let right_key_of row =
            R.encode_row
              (Array.of_list (List.map (fun e -> Expr.eval fnctx ~row ~aggs:[||] e) right_keys))
          in
          let left_key_of row =
            R.encode_row
              (Array.of_list (List.map (fun e -> Expr.eval fnctx ~row ~aggs:[||] e) left_keys))
          in
          (* native index probe if the inner side is a single indexed column *)
          let native =
            match right_keys with
            | [ Colidx i ] -> (
              let cname = fst t.Catalog.tcols.(i) in
              let indexes = Catalog.indexes_of_table env.cat t.Catalog.tname in
              List.find_opt
                (fun idx ->
                  match idx.Catalog.icols with
                  | [ c ] -> String.lowercase_ascii c = String.lowercase_ascii cname
                  | _ -> false)
                indexes)
            | _ -> None
          in
          (match native with
          | Some idx ->
            let bt = Storage.Btree.open_existing idx.Catalog.iroot in
            emit (fun lrow ->
                let kv =
                  Array.of_list
                    (List.map (fun e -> Expr.eval fnctx ~row:lrow ~aggs:[||] e) left_keys)
                in
                Storage.Btree.lookup env.read bt kv ~f:(fun rid ->
                    match fetch_row env t rid with
                    | Some rrow -> if filter_row rrow then f (Array.append lrow rrow)
                    | None -> ()))
          | None ->
            (* automatic ephemeral index over the inner table (SQLite's
               covering-index analogue); built once per statement. *)
            let tbl_hash : (string, R.row list ref) Hashtbl.t = Hashtbl.create 1024 in
            let build () =
              scan_rows env t ~f:(fun _rid row ->
                  if filter_row row then
                    let k = right_key_of row in
                    match Hashtbl.find_opt tbl_hash k with
                    | Some l -> l := row :: !l
                    | None -> Hashtbl.add tbl_hash k (ref [ row ]))
            in
            Exec_stats.time_index build;
            emit (fun lrow ->
                match Hashtbl.find_opt tbl_hash (left_key_of lrow) with
                | Some l -> List.iter (fun rrow -> f (Array.append lrow rrow)) !l
                | None -> ()))
        in
        (tables', emit')
      end
    in
    let tables, emit = List.fold_left add_join ([ st0 ], emit0) joins in
    (* residual conjuncts against the combined row *)
    let residual =
      List.filter_map (fun c -> if c.used then None else Some (resolve tables c.cexpr)) pool
    in
    let emit_final f =
      emit (fun row ->
          if
            List.for_all
              (fun r -> Expr.truth (Expr.eval fnctx ~row ~aggs:[||] r) = Some true)
              residual
          then f row)
    in
    (tables, emit_final)

(* --- aggregation -------------------------------------------------------- *)

type agg_acc = {
  spec : agg; (* with resolved argument *)
  mutable a_count : int;
  mutable a_sum_i : int;
  mutable a_sum_f : float;
  mutable a_real : bool;
  mutable a_mm : R.value;
  a_distinct : (string, unit) Hashtbl.t option;
}

let new_acc spec =
  { spec;
    a_count = 0;
    a_sum_i = 0;
    a_sum_f = 0.;
    a_real = false;
    a_mm = R.Null;
    a_distinct = (if spec.agg_distinct then Some (Hashtbl.create 16) else None) }

let acc_step fnctx acc row =
  let v =
    match acc.spec.agg_arg with
    | None -> R.Int 1 (* COUNT star *)
    | Some e -> Expr.eval fnctx ~row ~aggs:[||] e
  in
  let proceed =
    match acc.a_distinct with
    | None -> v <> R.Null || acc.spec.agg_arg = None
    | Some tbl ->
      if v = R.Null then false
      else begin
        let k = R.encode_row [| v |] in
        if Hashtbl.mem tbl k then false
        else begin
          Hashtbl.add tbl k ();
          true
        end
      end
  in
  if proceed then begin
    acc.a_count <- acc.a_count + 1;
    (match v with
    | R.Int i ->
      acc.a_sum_i <- acc.a_sum_i + i;
      acc.a_sum_f <- acc.a_sum_f +. float_of_int i
    | R.Real f ->
      acc.a_real <- true;
      acc.a_sum_f <- acc.a_sum_f +. f
    | R.Text _ | R.Null -> (
      match Expr.to_number v with
      | Some f ->
        acc.a_real <- true;
        acc.a_sum_f <- acc.a_sum_f +. f
      | None -> ()));
    match acc.spec.agg_fn with
    | "min" -> if acc.a_mm = R.Null || R.compare_value v acc.a_mm < 0 then acc.a_mm <- v
    | "max" -> if acc.a_mm = R.Null || R.compare_value v acc.a_mm > 0 then acc.a_mm <- v
    | _ -> ()
  end

let acc_final acc =
  match acc.spec.agg_fn with
  | "count" -> R.Int acc.a_count
  | "sum" ->
    if acc.a_count = 0 then R.Null
    else if acc.a_real then R.Real acc.a_sum_f
    else R.Int acc.a_sum_i
  | "total" -> R.Real acc.a_sum_f
  | "avg" -> if acc.a_count = 0 then R.Null else R.Real (acc.a_sum_f /. float_of_int acc.a_count)
  | "min" | "max" -> acc.a_mm
  | fn -> error "unknown aggregate function %s" fn

(* Replace Agg nodes with Aggref slots, collecting specs (deduplicated
   structurally). *)
let lift_aggs specs e =
  Expr.map
    (function
      | Agg a ->
        let rec find i = function
          | [] ->
            specs := !specs @ [ a ];
            Aggref i
          | s :: _ when s = a -> Aggref i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 !specs
      | e -> e)
    e

(* --- SELECT entry point -------------------------------------------------- *)

let expand_items tables (items : sel_item list) =
  List.concat_map
    (fun item ->
      match item with
      | Star ->
        List.concat_map
          (fun st ->
            Array.to_list
              (Array.mapi (fun i (n, _) -> (Colidx (st.offset + i), n)) st.tbl.Catalog.tcols))
          tables
      | Table_star a ->
        let a = String.lowercase_ascii a in
        let st =
          match List.find_opt (fun st -> st.alias = a) tables with
          | Some st -> st
          | None -> error "no such table: %s" a
        in
        Array.to_list
          (Array.mapi (fun i (n, _) -> (Colidx (st.offset + i), n)) st.tbl.Catalog.tcols)
      | Sel_expr (e, alias) ->
        let name =
          match alias, e with
          | Some a, _ -> a
          | None, Col (_, n) -> n
          | None, _ -> ""
        in
        [ (e, name) ])
    items

(* --- subquery expansion and compound selects ---------------------------- *)

(* The environment a nested select runs in: its own AS OF if it has one,
   else the enclosing statement's (snapshot queries are statement-wide,
   matching the AS OF semantics of §3). *)
let rec member_env env (sub : select) =
  match sub.as_of with None -> env | Some _ -> env_of_select env.db sub

(* Replace (uncorrelated) subquery nodes by their values: scalar
   subqueries become literals, IN (SELECT ...) becomes a materialized
   set, EXISTS becomes a boolean.  Correlated references fail inside the
   subquery's own resolution with a "no such column" error. *)
and expand_sub env e =
  Expr.map
    (function
      | Subquery sub -> (
        let senv = member_env env sub in
        match select_all senv sub with
        | _, [] -> Lit R.Null
        | header, row :: _ ->
          if Array.length header <> 1 then error "scalar subquery must return a single column";
          Lit row.(0))
      | In_select { subject; sub; negated } ->
        let senv = member_env env sub in
        let header, rows = select_all senv sub in
        if Array.length header <> 1 then
          error "IN (SELECT ...) must return a single column";
        let set = Hashtbl.create (max 16 (List.length rows)) in
        let has_null = ref false in
        List.iter
          (fun (r : R.row) ->
            match r.(0) with
            | R.Null -> has_null := true
            | v -> Hashtbl.replace set (R.encode_row [| v |]) ())
          rows;
        In_set { subject; set; has_null = !has_null; negated }
      | Exists { sub; negated } ->
        let senv = member_env env sub in
        let sub = { sub with limit = Some (Lit (R.Int 1)); order_by = [] } in
        let _, rows = select_all senv sub in
        Expr.of_bool ((rows <> []) <> negated) |> fun v -> Lit v
      | e -> e)
    e

and preprocess env (sel : select) : select =
  let ex e = expand_sub env e in
  { sel with
    items = List.map (function Sel_expr (e, a) -> Sel_expr (ex e, a) | i -> i) sel.items;
    from =
      Option.map
        (fun (t, js) -> (t, List.map (fun j -> { j with join_on = Option.map ex j.join_on }) js))
        sel.from;
    where = Option.map ex sel.where;
    group_by = List.map ex sel.group_by;
    having = Option.map ex sel.having;
    order_by = List.map (fun o -> { o with ord_expr = ex o.ord_expr }) sel.order_by }

(* Run a SELECT and push result rows to [f]. *)
and select_stream env (sel : select) : string array * ((R.row -> unit) -> unit) =
  let sel = preprocess env sel in
  let header, run =
    if sel.union_with = [] then select_stream_core env sel else select_compound env sel
  in
  ( header,
    fun f ->
      run (fun row ->
          Obs.Metrics.Counter.incr c_rows_returned;
          f row) )

(* UNION / UNION ALL, left-associative as in SQLite: each non-ALL member
   deduplicates everything accumulated so far. *)
and select_compound env (sel : select) =
  let base = { sel with union_with = []; order_by = []; limit = None; offset = None } in
  let header, first_rows = select_all env base in
  let dedupe rows =
    let seen = Hashtbl.create 256 in
    List.filter
      (fun r ->
        let k = R.encode_row r in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      rows
  in
  let rows =
    List.fold_left
      (fun acc (all, member) ->
        let menv = member_env env member in
        let mh, mrows = select_all menv member in
        if Array.length mh <> Array.length header then
          error "UNION members must return the same number of columns";
        let combined = acc @ mrows in
        if all then combined else dedupe combined)
      first_rows sel.union_with
  in
  (* compound ORDER BY / LIMIT reference output columns only *)
  let fnctx = Db.fn_ctx env.db in
  let out_index (o : order_item) =
    match o.ord_expr with
    | Lit (R.Int k) when k >= 1 && k <= Array.length header -> k - 1
    | Col (None, n) ->
      let found = ref (-1) in
      Array.iteri
        (fun i h -> if String.lowercase_ascii h = String.lowercase_ascii n then found := i)
        header;
      if !found < 0 then error "no such output column in compound ORDER BY: %s" n;
      !found
    | _ -> error "compound ORDER BY must reference output columns by name or position"
  in
  let rows =
    if sel.order_by = [] then rows
    else begin
      let keys = List.map (fun o -> (out_index o, o.ord_desc)) sel.order_by in
      List.stable_sort
        (fun (a : R.row) b ->
          let rec go = function
            | [] -> 0
            | (i, desc) :: rest ->
              let c = R.compare_value a.(i) b.(i) in
              if c <> 0 then if desc then -c else c else go rest
          in
          go keys)
        rows
    end
  in
  let limit =
    Option.map
      (fun e ->
        match Expr.eval_const fnctx e with
        | R.Int n -> n
        | v -> error "LIMIT requires an integer, got %s" (R.value_to_string v))
      sel.limit
  in
  let offset =
    match sel.offset with
    | None -> 0
    | Some e -> (
      match Expr.eval_const fnctx e with
      | R.Int n -> n
      | v -> error "OFFSET requires an integer, got %s" (R.value_to_string v))
  in
  let rows =
    let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
    let taken = drop offset rows in
    match limit with
    | None -> taken
    | Some l ->
      let rec take n l = if n <= 0 then [] else match l with [] -> [] | h :: t -> h :: take (n - 1) t in
      take l taken
  in
  (header, fun f -> List.iter f rows)

and select_all env sel : string array * R.row list =
  let header, run = select_stream env sel in
  let rows = ref [] in
  run (fun r -> rows := r :: !rows);
  (header, List.rev !rows)

and select_stream_core env (sel : select) : string array * ((R.row -> unit) -> unit) =
  let fnctx = Db.fn_ctx env.db in
  let tables, emit = build_from env sel in
  let items = expand_items tables sel.items in
  (* name anonymous expression columns *)
  let header =
    Array.of_list
      (List.mapi (fun i (_, n) -> if n = "" then Printf.sprintf "expr_%d" (i + 1) else n) items)
  in
  let raw_exprs = List.map fst items in
  (* SQLite lets GROUP BY / HAVING / ORDER BY reference output aliases;
     substitute the aliased expression when the name is not a FROM
     column. *)
  let alias_subst e =
    Expr.map
      (function
        | Col (None, n) as c
          when (try ignore (find_col tables None n); false with Error _ -> true) -> (
          let n = String.lowercase_ascii n in
          match
            List.find_opt (fun (_, name) -> String.lowercase_ascii name = n) items
          with
          | Some (aliased, _) -> aliased
          | None -> c)
        | e -> e)
      e
  in
  let specs = ref [] in
  let out_exprs = List.map (fun e -> lift_aggs specs (resolve tables e)) raw_exprs in
  let group_exprs = List.map (fun e -> resolve tables (alias_subst e)) sel.group_by in
  let having_expr =
    Option.map (fun e -> lift_aggs specs (resolve tables (alias_subst e))) sel.having
  in
  (* ORDER BY: positional literals and output aliases resolve to output
     columns; anything else resolves against the FROM columns. *)
  let order_resolved =
    List.map
      (fun o ->
        match o.ord_expr with
        | Lit (R.Int k) when k >= 1 && k <= List.length out_exprs ->
          (`Output (k - 1), o.ord_desc)
        | Col (None, n)
          when Array.exists (fun h -> String.lowercase_ascii h = String.lowercase_ascii n) header
               && (try ignore (find_col tables None n); false with Error _ -> true) ->
          let idx = ref 0 in
          Array.iteri
            (fun i h -> if String.lowercase_ascii h = String.lowercase_ascii n then idx := i)
            header;
          (`Output !idx, o.ord_desc)
        | e -> (`Expr (lift_aggs specs (resolve tables e)), o.ord_desc))
      sel.order_by
  in
  let has_agg =
    sel.group_by <> [] || !specs <> []
    || List.exists Expr.has_aggregate raw_exprs
    || (match sel.having with Some h -> Expr.has_aggregate h | None -> false)
  in
  let limit =
    Option.map
      (fun e ->
        match Expr.eval_const fnctx e with
        | R.Int n -> n
        | v -> error "LIMIT requires an integer, got %s" (R.value_to_string v))
      sel.limit
  in
  let offset =
    match sel.offset with
    | None -> 0
    | Some e -> (
      match Expr.eval_const fnctx e with
      | R.Int n -> n
      | v -> error "OFFSET requires an integer, got %s" (R.value_to_string v))
  in
  (* Produce (out_row, sort_key) pairs. *)
  let produce (push : R.row -> R.row -> unit) =
    let eval_out row aggs =
      let out = Array.of_list (List.map (fun e -> Expr.eval fnctx ~row ~aggs e) out_exprs) in
      let key =
        Array.of_list
          (List.map
             (fun (k, _) ->
               match k with
               | `Output i -> out.(i)
               | `Expr e -> Expr.eval fnctx ~row ~aggs e)
             order_resolved)
      in
      (out, key)
    in
    if has_agg then begin
      let groups : (string, R.row * agg_acc array) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      emit (fun row ->
          let gkey =
            R.encode_row
              (Array.of_list (List.map (fun e -> Expr.eval fnctx ~row ~aggs:[||] e) group_exprs))
          in
          let _, accs =
            match Hashtbl.find_opt groups gkey with
            | Some ga -> ga
            | None ->
              let accs = Array.of_list (List.map new_acc !specs) in
              Hashtbl.add groups gkey (row, accs);
              order := gkey :: !order;
              (row, accs)
          in
          Array.iter (fun acc -> acc_step fnctx acc row) accs);
      let emit_group gkey =
        let repr, accs = Hashtbl.find groups gkey in
        let aggs = Array.map acc_final accs in
        let keep =
          match having_expr with
          | None -> true
          | Some h -> Expr.truth (Expr.eval fnctx ~row:repr ~aggs h) = Some true
        in
        if keep then begin
          let out, key = eval_out repr aggs in
          push out key
        end
      in
      if Hashtbl.length groups = 0 && sel.group_by = [] then begin
        (* aggregate over an empty input: one row *)
        let accs = Array.of_list (List.map new_acc !specs) in
        let aggs = Array.map acc_final accs in
        let keep =
          match having_expr with
          | None -> true
          | Some h -> Expr.truth (Expr.eval fnctx ~row:[||] ~aggs h) = Some true
        in
        if keep then begin
          let out, key = eval_out [||] aggs in
          push out key
        end
      end
      else List.iter emit_group (List.rev !order)
    end
    else
      emit (fun row ->
          let out, key = eval_out row [||] in
          push out key)
  in
  let run f =
    let need_sort = order_resolved <> [] in
    let need_distinct = sel.distinct in
    if need_sort || need_distinct then begin
      let rows = ref [] in
      let seen = Hashtbl.create 64 in
      produce (fun out key ->
          if need_distinct then begin
            let k = R.encode_row out in
            if not (Hashtbl.mem seen k) then begin
              Hashtbl.add seen k ();
              rows := (out, key) :: !rows
            end
          end
          else rows := (out, key) :: !rows);
      let rows = Array.of_list (List.rev !rows) in
      if need_sort then begin
        let cmp (_, ka) (_, kb) =
          let rec go i =
            if i >= Array.length ka then 0
            else
              let _, desc = List.nth order_resolved i in
              let c = R.compare_value ka.(i) kb.(i) in
              if c <> 0 then if desc then -c else c else go (i + 1)
          in
          go 0
        in
        Array.stable_sort cmp rows
      end;
      let n = Array.length rows in
      let stop = match limit with Some l -> min n (offset + l) | None -> n in
      for i = offset to stop - 1 do
        f (fst rows.(i))
      done
    end
    else begin
      (* streaming with early stop on LIMIT *)
      let exception Stop in
      let count = ref 0 in
      let emitted = ref 0 in
      (try
         produce (fun out _ ->
             incr count;
             if !count > offset then begin
               (match limit with
               | Some l when !emitted >= l -> raise Stop
               | _ -> ());
               incr emitted;
               f out
             end)
       with Stop -> ())
    end
  in
  (header, run)

(* --- DML ------------------------------------------------------------------ *)

let insert_row_raw env txn (tbl : Catalog.table) (row : R.row) =
  if Array.length row <> Array.length tbl.tcols then
    error "table %s expects %d values, got %d" tbl.tname (Array.length tbl.tcols)
      (Array.length row);
  let rid = Storage.Heap.insert txn (Db.heap_handle env.db tbl.theap) (R.encode_row row) in
  List.iter
    (fun idx ->
      let bt = Storage.Btree.open_existing idx.Catalog.iroot in
      Storage.Btree.insert txn bt (index_key tbl idx row) rid)
    (Catalog.indexes_of_table env.cat tbl.tname);
  rid

(* Rows (with rids) matching [where] on a single table, using an index
   when one applies.  Materialized to allow subsequent mutation. *)
let matching_rows env (tbl : Catalog.table) (where : expr option) =
  let fnctx = Db.fn_ctx env.db in
  let where = Option.map (expand_sub env) where in
  let st = { alias = String.lowercase_ascii tbl.tname; tbl; offset = 0 } in
  let local = [ st ] in
  let conjs = match where with None -> [] | Some w -> Expr.conjuncts w in
  let resolved = List.map (resolve local) conjs in
  let bounds = List.filter_map (fun c -> extract_bound local fnctx c) conjs in
  let keep row =
    List.for_all (fun r -> Expr.truth (Expr.eval fnctx ~row ~aggs:[||] r) = Some true) resolved
  in
  let out = ref [] in
  (match pick_index env tbl bounds with
  | Some (idx, bnds) ->
    index_scan env tbl idx bnds ~f:(fun rid ->
        match fetch_row env tbl rid with
        | Some row -> if keep row then out := (rid, row) :: !out
        | None -> ())
  | None -> scan_heap env tbl ~f:(fun rid row -> if keep row then out := (rid, row) :: !out));
  List.rev !out

let delete_rows env txn (tbl : Catalog.table) rows =
  let heap = Db.heap_handle env.db tbl.theap in
  let indexes = Catalog.indexes_of_table env.cat tbl.tname in
  List.iter
    (fun (rid, row) ->
      ignore (Storage.Heap.delete txn heap rid);
      List.iter
        (fun idx ->
          let bt = Storage.Btree.open_existing idx.Catalog.iroot in
          ignore (Storage.Btree.delete txn bt (index_key tbl idx row) rid))
        indexes)
    rows;
  List.length rows

let update_rows env txn (tbl : Catalog.table) sets rows =
  let fnctx = Db.fn_ctx env.db in
  let heap = Db.heap_handle env.db tbl.theap in
  let indexes = Catalog.indexes_of_table env.cat tbl.tname in
  let st = { alias = String.lowercase_ascii tbl.tname; tbl; offset = 0 } in
  let sets =
    List.map (fun (c, e) -> (col_pos tbl c, resolve [ st ] e)) sets
  in
  List.iter
    (fun (rid, row) ->
      let row' = Array.copy row in
      List.iter (fun (i, e) -> row'.(i) <- Expr.eval fnctx ~row ~aggs:[||] e) sets;
      let rid' =
        match Storage.Heap.update txn heap rid (R.encode_row row') with
        | `Same -> rid
        | `Moved r -> r
      in
      List.iter
        (fun idx ->
          let bt = Storage.Btree.open_existing idx.Catalog.iroot in
          let k = index_key tbl idx row and k' = index_key tbl idx row' in
          if rid <> rid' || R.compare_row k k' <> 0 then begin
            ignore (Storage.Btree.delete txn bt k rid);
            Storage.Btree.insert txn bt k' rid'
          end)
        indexes)
    rows;
  List.length rows


(* EXPLAIN: construct the pipeline (without running it) and report the
   recorded access-path decisions. *)
let explain env (sel : select) : string list =
  let sel = preprocess env sel in
  let base = { sel with union_with = [] } in
  plan_log := [];
  ignore (build_from env base);
  let notes = List.rev !plan_log in
  let notes =
    if sel.union_with = [] then notes
    else notes @ [ Printf.sprintf "COMPOUND (%d UNION members)" (List.length sel.union_with) ]
  in
  let extra =
    (if sel.group_by <> [] then [ "USE TEMP B-TREE FOR GROUP BY" ] else [])
    @ (if sel.distinct then [ "USE TEMP B-TREE FOR DISTINCT" ] else [])
    @ if sel.order_by <> [] then [ "USE TEMP B-TREE FOR ORDER BY" ] else []
  in
  notes @ extra
