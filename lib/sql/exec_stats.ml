(* Executor-side timing attribution.  The paper's per-iteration cost
   breakdown (Figs 8-13) splits time into I/O, SPT build, index creation
   and query evaluation; the executor accumulates the SPT-build and
   index-creation components and the RQL layer reads the deltas.

   The accumulators live in the Obs.Metrics registry — the root metric
   scope — reached through Obs.Scope handles (gauges for the elapsed
   seconds, counters for the event counts, plus log-scale latency
   histograms), so SPT and index builds are charged to whatever scope
   is active.  This module holds no independent mutable totals; it is
   the compatibility shim over the root scope, mirroring Storage.Stats. *)

let g_spt_build_s = Obs.Scope.gauge "sql.spt_build_s"
let g_index_build_s = Obs.Scope.gauge "sql.index_build_s"
let c_spt_builds = Obs.Scope.counter "sql.spt_builds"
let c_index_builds = Obs.Scope.counter "sql.index_builds"
let h_spt_build = Obs.Scope.histogram "sql.spt_build_latency"
let h_index_build = Obs.Scope.histogram "sql.index_build_latency"

type t = {
  mutable spt_build_s : float;     (* snapshot page table construction *)
  mutable index_build_s : float;   (* automatic (covering) index creation *)
  mutable spt_builds : int;
  mutable index_builds : int;
}

let make () = { spt_build_s = 0.; index_build_s = 0.; spt_builds = 0; index_builds = 0 }

let snapshot () =
  { spt_build_s = Obs.Scope.gauge_get g_spt_build_s;
    index_build_s = Obs.Scope.gauge_get g_index_build_s;
    spt_builds = Obs.Scope.get c_spt_builds;
    index_builds = Obs.Scope.get c_index_builds }

(* Legacy global handle: [copy global] materializes the registry,
   [reset global] zeroes it (see Storage.Stats for the pattern). *)
let global = make ()

let reset t =
  if t == global then begin
    Obs.Scope.gauge_set g_spt_build_s 0.;
    Obs.Scope.gauge_set g_index_build_s 0.;
    Obs.Scope.set c_spt_builds 0;
    Obs.Scope.set c_index_builds 0
  end
  else begin
    t.spt_build_s <- 0.;
    t.index_build_s <- 0.;
    t.spt_builds <- 0;
    t.index_builds <- 0
  end

let copy t = if t == global then snapshot () else { t with spt_build_s = t.spt_build_s }

let diff a b =
  { spt_build_s = a.spt_build_s -. b.spt_build_s;
    index_build_s = a.index_build_s -. b.index_build_s;
    spt_builds = a.spt_builds - b.spt_builds;
    index_builds = a.index_builds - b.index_builds }

let now () = Unix.gettimeofday ()

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Run [f], crediting its elapsed time to [record] even when [f] raises
   (the old [timed]-based accounting lost the partial elapsed time of a
   failing build, skewing deltas for the surviving iterations). *)
let time_into record f =
  let t0 = now () in
  match f () with
  | r ->
    record (now () -. t0);
    r
  | exception e ->
    record (now () -. t0);
    raise e

(* Account an SPT construction: seconds gauge + count + latency
   histogram, raise-safe. *)
let time_spt f =
  time_into
    (fun dt ->
      Obs.Scope.gauge_add g_spt_build_s dt;
      Obs.Scope.incr c_spt_builds;
      Obs.Scope.observe h_spt_build dt)
    f

(* Account an automatic (covering) index construction; also emits a
   trace span so index builds show up in EXPLAIN PROFILE / trace dumps. *)
let time_index f =
  Obs.Trace.with_span ~name:"index_build" (fun () ->
      time_into
        (fun dt ->
          Obs.Scope.gauge_add g_index_build_s dt;
          Obs.Scope.incr c_index_builds;
          Obs.Scope.observe h_index_build dt)
        f)
