(** Executor-side timing attribution: the SPT-build and (automatic)
    index-creation components of the paper's per-iteration cost
    breakdown (Figs 8-13), accumulated in the {!Obs.Metrics} registry
    (the root metric scope, charged through {!Obs.Scope} handles so
    active scopes see the same attribution) and read as deltas by the
    RQL layer through this compatibility shim, which holds no
    independent mutable totals. *)

type t = {
  mutable spt_build_s : float;
  mutable index_build_s : float;
  mutable spt_builds : int;
  mutable index_builds : int;
}

val make : unit -> t

(** Materialize the live registry accumulators. *)
val snapshot : unit -> t

(** Legacy global handle: [copy global] materializes the registry,
    [reset global] zeroes it. *)
val global : t

val reset : t -> unit
val copy : t -> t

(** Fieldwise [a - b]. *)
val diff : t -> t -> t

val now : unit -> float

(** Run [f], returning its result and elapsed wall-clock seconds.
    Prefer {!time_spt} / {!time_index}: [timed] cannot account the
    elapsed time when [f] raises. *)
val timed : (unit -> 'a) -> 'a * float

(** Run [f], crediting elapsed seconds to the callback even when [f]
    raises (the exception is re-raised after accounting). *)
val time_into : (float -> unit) -> (unit -> 'a) -> 'a

(** Raise-safe accounting of an SPT construction (seconds, count,
    latency histogram). *)
val time_spt : (unit -> 'a) -> 'a

(** Raise-safe accounting of an automatic-index construction; also
    emits an [index_build] trace span. *)
val time_index : (unit -> 'a) -> 'a
