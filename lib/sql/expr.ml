(* Expression evaluation with SQLite-style dynamic typing and SQL
   three-valued logic.  Column references must have been resolved to
   positional [Colidx] nodes and aggregate calls to [Aggref] slots by the
   executor before evaluation. *)

module R = Storage.Record
open Ast

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type fn_ctx = { lookup_fn : string -> (R.value array -> R.value) option }

let empty_ctx = { lookup_fn = (fun _ -> None) }

(* SQL truth: NULL is unknown. *)
let truth (v : R.value) : bool option =
  match v with
  | R.Null -> None
  | R.Int 0 -> Some false
  | R.Int _ -> Some true
  | R.Real f -> Some (f <> 0.)
  | R.Text s -> (
    (* SQLite coerces text through numeric affinity *)
    match float_of_string_opt (String.trim s) with
    | Some f -> Some (f <> 0.)
    | None -> Some false)

let of_bool b = R.Int (if b then 1 else 0)
let of_truth = function None -> R.Null | Some b -> of_bool b

let to_number (v : R.value) : float option =
  match v with
  | R.Null -> None
  | R.Int i -> Some (float_of_int i)
  | R.Real f -> Some f
  | R.Text s -> float_of_string_opt (String.trim s)

let numeric2 op_int op_float a b =
  match a, b with
  | R.Null, _ | _, R.Null -> R.Null
  | R.Int x, R.Int y -> op_int x y
  | _ -> (
    match to_number a, to_number b with
    | Some x, Some y -> op_float x y
    | _ -> R.Null)

let arith op a b =
  match op with
  | Add -> numeric2 (fun x y -> R.Int (x + y)) (fun x y -> R.Real (x +. y)) a b
  | Sub -> numeric2 (fun x y -> R.Int (x - y)) (fun x y -> R.Real (x -. y)) a b
  | Mul -> numeric2 (fun x y -> R.Int (x * y)) (fun x y -> R.Real (x *. y)) a b
  | Div ->
    numeric2
      (fun x y -> if y = 0 then R.Null else R.Int (x / y))
      (fun x y -> if y = 0. then R.Null else R.Real (x /. y))
      a b
  | Mod ->
    numeric2
      (fun x y -> if y = 0 then R.Null else R.Int (x mod y))
      (fun x y -> if y = 0. then R.Null else R.Real (Float.rem x y))
      a b
  | Concat | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> error "arith: not an arithmetic operator"

let comparison op a b =
  match a, b with
  | R.Null, _ | _, R.Null -> R.Null
  | _ ->
    let c = R.compare_value a b in
    of_bool
      (match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | Add | Sub | Mul | Div | Mod | Concat | And | Or -> error "comparison: bad operator")

(* SQL LIKE with % and _ wildcards; ASCII case-insensitive, as SQLite's
   default. *)
let like_match ~pattern ~subject =
  let p = String.lowercase_ascii pattern and s = String.lowercase_ascii subject in
  let np = String.length p and ns = String.length s in
  (* memoized recursive match *)
  let memo = Hashtbl.create 64 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then si = ns
        else
          match p.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

(* Longest numeric prefix of a string, as SQLite's text-to-number casts
   use ("12abc" -> 12.). *)
let numeric_prefix s =
  let s = String.trim s in
  let n = String.length s in
  let is_digit c = c >= '0' && c <= '9' in
  let i = ref 0 in
  if !i < n && (s.[!i] = '-' || s.[!i] = '+') then incr i;
  while !i < n && is_digit s.[!i] do incr i done;
  if !i < n && s.[!i] = '.' then begin
    incr i;
    while !i < n && is_digit s.[!i] do incr i done
  end;
  if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
    let mark = !i in
    incr i;
    if !i < n && (s.[!i] = '-' || s.[!i] = '+') then incr i;
    let digits = ref 0 in
    while !i < n && is_digit s.[!i] do incr i; incr digits done;
    if !digits = 0 then i := mark
  end;
  float_of_string_opt (String.sub s 0 !i)

(* CAST with SQLite affinity rules (simplified): INTEGER truncates,
   REAL parses the numeric prefix, TEXT renders, anything else is a
   no-op. *)
let cast_to ty v =
  let ty = String.uppercase_ascii (String.trim ty) in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let num v =
    match v with
    | R.Text s -> Option.value (numeric_prefix s) ~default:0.
    | v -> Option.value (to_number v) ~default:0.
  in
  if v = R.Null then R.Null
  else if contains ty "INT" then R.Int (int_of_float (num v))
  else if contains ty "REAL" || contains ty "FLOA" || contains ty "DOUB" then R.Real (num v)
  else if contains ty "CHAR" || contains ty "TEXT" || contains ty "CLOB" then
    R.Text (R.value_to_string v)
  else v

(* Evaluate [e] over [row]; [aggs] supplies values for resolved
   aggregate slots. *)
let rec eval (ctx : fn_ctx) ~(row : R.row) ~(aggs : R.row) (e : expr) : R.value =
  match e with
  | Lit v -> v
  | Colidx i -> row.(i)
  | Aggref i -> aggs.(i)
  | Col (q, n) ->
    error "unresolved column reference %s%s"
      (match q with Some t -> t ^ "." | None -> "")
      n
  | Unop (Neg, e) -> (
    match eval ctx ~row ~aggs e with
    | R.Null -> R.Null
    | R.Int i -> R.Int (-i)
    | R.Real f -> R.Real (-.f)
    | R.Text _ as v -> (
      match to_number v with Some f -> R.Real (-.f) | None -> R.Null))
  | Unop (Not, e) -> of_truth (Option.map not (truth (eval ctx ~row ~aggs e)))
  | Binop (And, a, b) -> (
    match truth (eval ctx ~row ~aggs a) with
    | Some false -> of_bool false
    | Some true -> of_truth (truth (eval ctx ~row ~aggs b))
    | None -> (
      match truth (eval ctx ~row ~aggs b) with
      | Some false -> of_bool false
      | _ -> R.Null))
  | Binop (Or, a, b) -> (
    match truth (eval ctx ~row ~aggs a) with
    | Some true -> of_bool true
    | Some false -> of_truth (truth (eval ctx ~row ~aggs b))
    | None -> (
      match truth (eval ctx ~row ~aggs b) with
      | Some true -> of_bool true
      | _ -> R.Null))
  | Binop (Concat, a, b) -> (
    match eval ctx ~row ~aggs a, eval ctx ~row ~aggs b with
    | R.Null, _ | _, R.Null -> R.Null
    | x, y -> R.Text (R.value_to_string x ^ R.value_to_string y))
  | Binop (((Add | Sub | Mul | Div | Mod) as op), a, b) ->
    arith op (eval ctx ~row ~aggs a) (eval ctx ~row ~aggs b)
  | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) ->
    comparison op (eval ctx ~row ~aggs a) (eval ctx ~row ~aggs b)
  | Like { subject; pattern; negated } -> (
    match eval ctx ~row ~aggs subject, eval ctx ~row ~aggs pattern with
    | R.Null, _ | _, R.Null -> R.Null
    | s, p ->
      let m = like_match ~pattern:(R.value_to_string p) ~subject:(R.value_to_string s) in
      of_bool (if negated then not m else m))
  | In_list { subject; candidates; negated } -> (
    match eval ctx ~row ~aggs subject with
    | R.Null -> R.Null
    | s ->
      let saw_null = ref false in
      let found =
        List.exists
          (fun c ->
            match eval ctx ~row ~aggs c with
            | R.Null ->
              saw_null := true;
              false
            | v -> R.equal_value v s)
          candidates
      in
      if found then of_bool (not negated)
      else if !saw_null then R.Null
      else of_bool negated)
  | Between { subject; low; high; negated } ->
    let s = eval ctx ~row ~aggs subject in
    let lo = eval ctx ~row ~aggs low in
    let hi = eval ctx ~row ~aggs high in
    let ge = comparison Ge s lo and le = comparison Le s hi in
    let v =
      match truth ge, truth le with
      | Some false, _ | _, Some false -> Some false
      | Some true, Some true -> Some true
      | _ -> None
    in
    of_truth (match v with Some b when negated -> Some (not b) | v -> v)
  | Is_null { subject; negated } ->
    let isnull = eval ctx ~row ~aggs subject = R.Null in
    of_bool (if negated then not isnull else isnull)
  | Case { branches; else_ } ->
    let rec go = function
      | [] -> ( match else_ with Some e -> eval ctx ~row ~aggs e | None -> R.Null)
      | (cond, v) :: rest ->
        if truth (eval ctx ~row ~aggs cond) = Some true then eval ctx ~row ~aggs v else go rest
    in
    go branches
  | Call (name, args) -> (
    match ctx.lookup_fn name with
    | Some f -> f (Array.of_list (List.map (eval ctx ~row ~aggs) args))
    | None -> error "no such function: %s" name)
  | Cast (e, ty) -> cast_to ty (eval ctx ~row ~aggs e)
  | In_set { subject; set; has_null; negated } -> (
    match eval ctx ~row ~aggs subject with
    | R.Null -> R.Null
    | v ->
      if Hashtbl.mem set (R.encode_row [| v |]) then of_bool (not negated)
      else if has_null then R.Null
      else of_bool negated)
  | Subquery _ | In_select _ | Exists _ ->
    error "subqueries must be expanded before evaluation (internal error)"
  | Param i -> error "unbound parameter ?%d" (i + 1)
  | Agg _ -> error "aggregate used outside of an aggregation context"

let no_row : R.row = [||]

(* Evaluate a row-independent expression (literals, functions). *)
let eval_const ctx e = eval ctx ~row:no_row ~aggs:no_row e

(* --- static analysis helpers ---------------------------------------- *)

(* Does the expression contain any aggregate call? *)
let rec has_aggregate = function
  | Lit _ | Col _ | Colidx _ | Param _ -> false
  | Agg _ | Aggref _ -> true
  | Unop (_, e) -> has_aggregate e
  | Binop (_, a, b) -> has_aggregate a || has_aggregate b
  | Like { subject; pattern; _ } -> has_aggregate subject || has_aggregate pattern
  | In_list { subject; candidates; _ } ->
    has_aggregate subject || List.exists has_aggregate candidates
  | Between { subject; low; high; _ } ->
    has_aggregate subject || has_aggregate low || has_aggregate high
  | Is_null { subject; _ } -> has_aggregate subject
  | Case { branches; else_ } ->
    List.exists (fun (c, v) -> has_aggregate c || has_aggregate v) branches
    || (match else_ with Some e -> has_aggregate e | None -> false)
  | Call (_, args) -> List.exists has_aggregate args
  | Cast (e, _) -> has_aggregate e
  | In_set { subject; _ } -> has_aggregate subject
  (* aggregates inside a subquery belong to the subquery *)
  | Subquery _ -> false
  | In_select { subject; _ } -> has_aggregate subject
  | Exists _ -> false

(* Map over an expression bottom-up. *)
let rec map f e =
  let e' =
    match e with
    | Lit _ | Col _ | Colidx _ | Aggref _ | Param _ -> e
    | Unop (op, a) -> Unop (op, map f a)
    | Binop (op, a, b) -> Binop (op, map f a, map f b)
    | Like l -> Like { l with subject = map f l.subject; pattern = map f l.pattern }
    | In_list l ->
      In_list { l with subject = map f l.subject; candidates = List.map (map f) l.candidates }
    | Between b ->
      Between { b with subject = map f b.subject; low = map f b.low; high = map f b.high }
    | Is_null i -> Is_null { i with subject = map f i.subject }
    | Case { branches; else_ } ->
      Case
        { branches = List.map (fun (c, v) -> (map f c, map f v)) branches;
          else_ = Option.map (map f) else_ }
    | Agg a -> Agg { a with agg_arg = Option.map (map f) a.agg_arg }
    | Call (n, args) -> Call (n, List.map (map f) args)
    | Cast (e, ty) -> Cast (map f e, ty)
    | In_set s -> In_set { s with subject = map f s.subject }
    | Subquery _ | Exists _ -> e
    | In_select s -> In_select { s with subject = map f s.subject }
  in
  f e'

(* Map over an expression bottom-up, descending into subquery selects
   (every expression position of the nested select, including its AS OF,
   and of its UNION members).  [map] deliberately stops at subquery
   boundaries; use this variant when a rewrite must reach parameters or
   other leaves wherever they occur. *)
let rec map_deep f e =
  let e' =
    match e with
    | Lit _ | Col _ | Colidx _ | Aggref _ | Param _ -> e
    | Unop (op, a) -> Unop (op, map_deep f a)
    | Binop (op, a, b) -> Binop (op, map_deep f a, map_deep f b)
    | Like l -> Like { l with subject = map_deep f l.subject; pattern = map_deep f l.pattern }
    | In_list l ->
      In_list
        { l with
          subject = map_deep f l.subject;
          candidates = List.map (map_deep f) l.candidates }
    | Between b ->
      Between
        { b with
          subject = map_deep f b.subject;
          low = map_deep f b.low;
          high = map_deep f b.high }
    | Is_null i -> Is_null { i with subject = map_deep f i.subject }
    | Case { branches; else_ } ->
      Case
        { branches = List.map (fun (c, v) -> (map_deep f c, map_deep f v)) branches;
          else_ = Option.map (map_deep f) else_ }
    | Agg a -> Agg { a with agg_arg = Option.map (map_deep f) a.agg_arg }
    | Call (n, args) -> Call (n, List.map (map_deep f) args)
    | Cast (e, ty) -> Cast (map_deep f e, ty)
    | In_set s -> In_set { s with subject = map_deep f s.subject }
    | Subquery sub -> Subquery (map_select f sub)
    | In_select s -> In_select { s with subject = map_deep f s.subject; sub = map_select f s.sub }
    | Exists s -> Exists { s with sub = map_select f s.sub }
  in
  f e'

(* Apply [map_deep f] to every expression position of a select. *)
and map_select f (sel : select) : select =
  let e = map_deep f in
  { sel with
    as_of = Option.map e sel.as_of;
    items =
      List.map
        (function Sel_expr (x, a) -> Sel_expr (e x, a) | (Star | Table_star _) as i -> i)
        sel.items;
    from =
      Option.map
        (fun (t, js) -> (t, List.map (fun j -> { j with join_on = Option.map e j.join_on }) js))
        sel.from;
    where = Option.map e sel.where;
    group_by = List.map e sel.group_by;
    having = Option.map e sel.having;
    order_by = List.map (fun o -> { o with ord_expr = e o.ord_expr }) sel.order_by;
    limit = Option.map e sel.limit;
    offset = Option.map e sel.offset;
    union_with = List.map (fun (all, m) -> (all, map_select f m)) sel.union_with }

(* Split a WHERE into its AND-ed conjuncts. *)
let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]
