(* Statement fingerprinting and per-fingerprint execution statistics
   (the pg_stat_statements analogue).

   A statement's fingerprint is a 64-bit FNV-1a hash (rendered as hex)
   of its *normalized* text: the token stream with every literal and
   parameter placeholder replaced by [?], identifiers and keywords
   case-folded, and whitespace/comments collapsed to single spaces.
   "SELECT A FROM t WHERE a=1" and "select a from t where a = 42"
   therefore share a fingerprint.

   The registry aggregates calls / rows / total+max elapsed time /
   plan-cache hits per fingerprint.  It is process-wide (statements
   from every open database handle aggregate together, like the rest
   of the Obs registries) and bounded: beyond [capacity] fingerprints,
   the least-called entry is evicted. *)

type stat = {
  fp : string;   (* hex fingerprint of the normalized text *)
  norm : string; (* normalized statement text *)
  mutable calls : int;
  mutable rows : int;          (* rows returned / affected, summed *)
  mutable total_s : float;
  mutable max_s : float;
  mutable plan_hits : int;     (* executions served from the plan cache *)
}

(* Normalized token spelling; [None] drops the token. *)
let token_norm = function
  | Lexer.Ident s -> Some (String.lowercase_ascii s)
  | Lexer.Str _ | Lexer.Int_lit _ | Lexer.Float_lit _ | Lexer.Question -> Some "?"
  | Lexer.Eof -> None
  | t -> Some (Lexer.token_to_string t)

(* Fallback for text the lexer rejects: case-fold and collapse runs of
   whitespace, so near-identical malformed inputs still coalesce. *)
let collapse_ws s =
  let buf = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length buf > 0 then pending := true
      | ch ->
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf (Char.lowercase_ascii ch))
    s;
  Buffer.contents buf

(* --- fold-aware collapse ----------------------------------------------- *)

(* The optimizer replaces whole constant expressions by their folded
   literal, so "WHERE a > 1 + 1" and "WHERE a > 2" compile to the same
   plan — they should land on the same fingerprint too.  After literal
   replacement, constant expressions *over* [?] are collapsed to a
   single [?] as a fixpoint: parenthesized [?], binary combinations of
   [?] (respecting operator precedence so "? + ? * a" keeps its shape),
   unary minus / NOT on [?], and builtin calls with all-constant
   arguments. *)

(* Keywords never end a value, so "WHERE - ?" may collapse while
   "a - ?" must not. *)
let keywords =
  [ "select"; "from"; "where"; "and"; "or"; "not"; "in"; "like"; "between"; "is";
    "null"; "case"; "when"; "then"; "else"; "end"; "group"; "by"; "having"; "order";
    "limit"; "offset"; "union"; "all"; "distinct"; "as"; "on"; "join"; "left";
    "inner"; "cross"; "values"; "set"; "asc"; "desc"; "of" ]

let ends_value t =
  t = "?" || t = ")"
  || (String.length t > 0
      && (let c = t.[0] in (c >= 'a' && c <= 'z') || c = '_')
      && not (List.mem t keywords))

(* Binding strength; 0 = not a binary operator. *)
let prec = function
  | "*" | "/" | "%" -> 5
  | "+" | "-" | "||" -> 4
  | "=" | "<>" | "<" | "<=" | ">" | ">=" -> 3
  | "and" -> 2
  | "or" -> 1
  | _ -> 0

let collapse_folds (toks : string list) : string list =
  let changed = ref true in
  let cur = ref toks in
  (* [name ( ?, ?, ... )] with every argument constant -> rest *)
  let const_call rest =
    let rec args = function
      | "?" :: ")" :: tl -> Some tl
      | "?" :: "," :: tl -> args tl
      | _ -> None
    in
    match rest with
    | "(" :: tl -> args tl
    | _ -> None
  in
  while !changed do
    changed := false;
    let rec rw prev toks =
      match toks with
      | [] -> []
      | (name :: rest) when Func.find name <> None && const_call rest <> None ->
        changed := true;
        rw prev ("?" :: Option.get (const_call rest))
      | "(" :: "?" :: ")" :: rest when not (ends_value prev) ->
        changed := true;
        rw prev ("?" :: rest)
      | "?" :: op :: "?" :: rest when prec op > 0 ->
        (* Collapse only when this application really is one constant
           subtree: a tighter operator on either side would have been
           parsed inside it. *)
        let nextp = match rest with nx :: _ -> prec nx | [] -> 0 in
        if prec prev >= prec op || nextp > prec op then "?" :: rw "?" (op :: "?" :: rest)
        else begin
          changed := true;
          rw prev ("?" :: rest)
        end
      | ("-" | "not") :: "?" :: rest when not (ends_value prev) && prec (List.nth_opt rest 0 |> Option.value ~default:"") = 0 ->
        changed := true;
        rw prev ("?" :: rest)
      | t :: rest -> t :: rw t rest
    in
    cur := rw "" !cur
  done;
  !cur

let normalize (sql : string) : string =
  match Lexer.tokenize sql with
  | toks -> String.concat " " (collapse_folds (List.filter_map token_norm toks))
  | exception Lexer.Error _ -> collapse_ws sql

(* 64-bit FNV-1a. *)
let fingerprint_of (norm : string) : string =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001b3L)
    norm;
  Printf.sprintf "%016Lx" !h

(* lint: allow — guarded by [mu] below, accessed via [locked] *)
let capacity = ref 512

(* The registry is process-wide and fed by every session on every
   domain: all access to the two tables below goes through [mu].
   Per-stat field bumps also happen under it — [record] is one lock
   round-trip per statement, far off the page-read hot path. *)
let mu = Mutex.create ()

let locked f = Mutex.lock mu; Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* norm text -> stat.  lint: allow — all access mutex-protected above *)
let registry : (string, stat) Hashtbl.t = Hashtbl.create 64

(* raw sql -> norm memo, so the per-statement hot path re-lexes only
   texts it has never seen.  Reset wholesale when it outgrows its cap.
   lint: allow — all access mutex-protected above *)
let memo : (string, string) Hashtbl.t = Hashtbl.create 256
let memo_cap = 2048

let reset () =
  locked (fun () ->
      Hashtbl.reset registry;
      Hashtbl.reset memo)

let normalized_of_unlocked sql =
  match Hashtbl.find_opt memo sql with
  | Some n -> n
  | None ->
    let n = normalize sql in
    if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
    Hashtbl.add memo sql n;
    n

let normalized_of sql = locked (fun () -> normalized_of_unlocked sql)

let evict_coldest () =
  let victim = ref None in
  Hashtbl.iter
    (fun k st ->
      match !victim with
      | Some (_, c) when c <= st.calls -> ()
      | _ -> victim := Some (k, st.calls))
    registry;
  match !victim with Some (k, _) -> Hashtbl.remove registry k | None -> ()

(* Record one completed execution of [sql]. *)
let record ~sql ~rows ~elapsed_s ~plan_hit =
  locked (fun () ->
      let norm = normalized_of_unlocked sql in
      let st =
        match Hashtbl.find_opt registry norm with
        | Some st -> st
        | None ->
          if Hashtbl.length registry >= !capacity then evict_coldest ();
          let st =
            { fp = fingerprint_of norm; norm; calls = 0; rows = 0; total_s = 0.;
              max_s = 0.; plan_hits = 0 }
          in
          Hashtbl.add registry norm st;
          st
      in
      st.calls <- st.calls + 1;
      st.rows <- st.rows + rows;
      st.total_s <- st.total_s +. elapsed_s;
      if elapsed_s > st.max_s then st.max_s <- elapsed_s;
      if plan_hit then st.plan_hits <- st.plan_hits + 1)

(* All fingerprints, most total time first. *)
let stats () : stat list =
  let all = locked (fun () -> Hashtbl.fold (fun _ st acc -> st :: acc) registry []) in
  List.sort (fun a b -> compare b.total_s a.total_s) all

let find ~sql =
  locked (fun () -> Hashtbl.find_opt registry (normalized_of_unlocked sql))
