(* Statement fingerprinting and per-fingerprint execution statistics
   (the pg_stat_statements analogue).

   A statement's fingerprint is a 64-bit FNV-1a hash (rendered as hex)
   of its *normalized* text: the token stream with every literal and
   parameter placeholder replaced by [?], identifiers and keywords
   case-folded, and whitespace/comments collapsed to single spaces.
   "SELECT A FROM t WHERE a=1" and "select a from t where a = 42"
   therefore share a fingerprint.

   The registry aggregates calls / rows / total+max elapsed time /
   plan-cache hits per fingerprint.  It is process-wide (statements
   from every open database handle aggregate together, like the rest
   of the Obs registries) and bounded: beyond [capacity] fingerprints,
   the least-called entry is evicted. *)

type stat = {
  fp : string;   (* hex fingerprint of the normalized text *)
  norm : string; (* normalized statement text *)
  mutable calls : int;
  mutable rows : int;          (* rows returned / affected, summed *)
  mutable total_s : float;
  mutable max_s : float;
  mutable plan_hits : int;     (* executions served from the plan cache *)
}

(* Normalized token spelling; [None] drops the token. *)
let token_norm = function
  | Lexer.Ident s -> Some (String.lowercase_ascii s)
  | Lexer.Str _ | Lexer.Int_lit _ | Lexer.Float_lit _ | Lexer.Question -> Some "?"
  | Lexer.Eof -> None
  | t -> Some (Lexer.token_to_string t)

(* Fallback for text the lexer rejects: case-fold and collapse runs of
   whitespace, so near-identical malformed inputs still coalesce. *)
let collapse_ws s =
  let buf = Buffer.create (String.length s) in
  let pending = ref false in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | '\n' | '\r' -> if Buffer.length buf > 0 then pending := true
      | ch ->
        if !pending then Buffer.add_char buf ' ';
        pending := false;
        Buffer.add_char buf (Char.lowercase_ascii ch))
    s;
  Buffer.contents buf

let normalize (sql : string) : string =
  match Lexer.tokenize sql with
  | toks -> String.concat " " (List.filter_map token_norm toks)
  | exception Lexer.Error _ -> collapse_ws sql

(* 64-bit FNV-1a. *)
let fingerprint_of (norm : string) : string =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001b3L)
    norm;
  Printf.sprintf "%016Lx" !h

(* lint: allow — guarded by [mu] below, accessed via [locked] *)
let capacity = ref 512

(* The registry is process-wide and fed by every session on every
   domain: all access to the two tables below goes through [mu].
   Per-stat field bumps also happen under it — [record] is one lock
   round-trip per statement, far off the page-read hot path. *)
let mu = Mutex.create ()

let locked f = Mutex.lock mu; Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* norm text -> stat.  lint: allow — all access mutex-protected above *)
let registry : (string, stat) Hashtbl.t = Hashtbl.create 64

(* raw sql -> norm memo, so the per-statement hot path re-lexes only
   texts it has never seen.  Reset wholesale when it outgrows its cap.
   lint: allow — all access mutex-protected above *)
let memo : (string, string) Hashtbl.t = Hashtbl.create 256
let memo_cap = 2048

let reset () =
  locked (fun () ->
      Hashtbl.reset registry;
      Hashtbl.reset memo)

let normalized_of_unlocked sql =
  match Hashtbl.find_opt memo sql with
  | Some n -> n
  | None ->
    let n = normalize sql in
    if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
    Hashtbl.add memo sql n;
    n

let normalized_of sql = locked (fun () -> normalized_of_unlocked sql)

let evict_coldest () =
  let victim = ref None in
  Hashtbl.iter
    (fun k st ->
      match !victim with
      | Some (_, c) when c <= st.calls -> ()
      | _ -> victim := Some (k, st.calls))
    registry;
  match !victim with Some (k, _) -> Hashtbl.remove registry k | None -> ()

(* Record one completed execution of [sql]. *)
let record ~sql ~rows ~elapsed_s ~plan_hit =
  locked (fun () ->
      let norm = normalized_of_unlocked sql in
      let st =
        match Hashtbl.find_opt registry norm with
        | Some st -> st
        | None ->
          if Hashtbl.length registry >= !capacity then evict_coldest ();
          let st =
            { fp = fingerprint_of norm; norm; calls = 0; rows = 0; total_s = 0.;
              max_s = 0.; plan_hits = 0 }
          in
          Hashtbl.add registry norm st;
          st
      in
      st.calls <- st.calls + 1;
      st.rows <- st.rows + rows;
      st.total_s <- st.total_s +. elapsed_s;
      if elapsed_s > st.max_s then st.max_s <- elapsed_s;
      if plan_hit then st.plan_hits <- st.plan_hits + 1)

(* All fingerprints, most total time first. *)
let stats () : stat list =
  let all = locked (fun () -> Hashtbl.fold (fun _ st acc -> st :: acc) registry []) in
  List.sort (fun a b -> compare b.total_s a.total_s) all

let find ~sql =
  locked (fun () -> Hashtbl.find_opt registry (normalized_of_unlocked sql))
