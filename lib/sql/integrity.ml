(* Database integrity checking (the PRAGMA integrity_check analogue).

   Walks the catalog, every heap chain and every index B+tree, and
   verifies the structural invariants the engine relies on:
   - heap chains are acyclic and made of heap pages;
   - every stored row decodes and matches its table's arity;
   - B+tree pages have the right kinds, leaves are sorted, and interior
     separators route correctly;
   - every index entry points at a live heap row whose key columns
     equal the entry key, and the entry count equals the row count;
   - no page is claimed by two structures;
   - every committed page matches its install-time checksum, and every
     archived Pagelog block matches its append-time checksum (with the
     snapshots referencing a corrupt block named).

   Returns a list of problem descriptions; empty means healthy. *)

module R = Storage.Record

let check (db : Db.t) : string list =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let read = Db.read_current db in
  let cat = try Some (Catalog.load read) with e ->
    problem "catalog unreadable: %s" (Printexc.to_string e);
    None
  in
  (match cat with
  | None -> ()
  | Some cat ->
    let owner : (int, string) Hashtbl.t = Hashtbl.create 64 in
    let claim pid who =
      match Hashtbl.find_opt owner pid with
      | Some other -> problem "page %d claimed by both %s and %s" pid other who
      | None -> Hashtbl.add owner pid who
    in
    (* heaps (including the catalog heap itself) *)
    let check_heap ~who ~arity first =
      let rows = ref 0 in
      let rec walk pid hops =
        if hops > 1_000_000 then problem "%s: heap chain too long (cycle?)" who
        else begin
          claim pid who;
          (* a corrupted page can make any of these raise (bad kind
             byte, garbled slot directory); report and stop the chain
             rather than abort the whole check *)
          match
            let p = read pid in
            (match Storage.Page.kind p with
            | Storage.Page.Heap_page -> ()
            | _ -> problem "%s: page %d is not a heap page" who pid);
            Storage.Page.iter p ~f:(fun slot data ->
                incr rows;
                match R.decode_row data with
                | row ->
                  if arity > 0 && Array.length row <> arity then
                    problem "%s: row at (%d,%d) has %d columns, expected %d" who pid slot
                      (Array.length row) arity
                | exception e ->
                  problem "%s: row at (%d,%d) does not decode: %s" who pid slot
                    (Printexc.to_string e));
            Storage.Page.next p
          with
          | next -> if next >= 0 then walk next (hops + 1)
          | exception e -> problem "%s: page %d unreadable: %s" who pid (Printexc.to_string e)
        end
      in
      walk first 0;
      !rows
    in
    ignore (check_heap ~who:"catalog" ~arity:0 Catalog.catalog_root);
    let table_rows : (string, int) Hashtbl.t = Hashtbl.create 16 in
    Catalog.iter_tables cat ~f:(fun (tbl : Catalog.table) ->
        let who = "table " ^ tbl.Catalog.tname in
        let rows =
          check_heap ~who ~arity:(Array.length tbl.Catalog.tcols) tbl.Catalog.theap
        in
        Hashtbl.replace table_rows (String.lowercase_ascii tbl.Catalog.tname) rows);
    (* indexes *)
    Catalog.iter_indexes cat ~f:(fun (idx : Catalog.index) ->
        let who = "index " ^ idx.Catalog.iname in
        match Catalog.find_table cat idx.Catalog.itable with
        | None -> problem "%s references missing table %s" who idx.Catalog.itable
        | Some tbl ->
          let heap = Storage.Heap.open_existing tbl.Catalog.theap in
          let bt = Storage.Btree.open_existing idx.Catalog.iroot in
          (* page kinds along the tree *)
          let rec walk pid depth =
            if depth > 64 then problem "%s: tree too deep (cycle?)" who
            else begin
              claim pid who;
              match
                let p = read pid in
                Storage.Page.kind p
              with
              | Storage.Page.Btree_leaf -> ()
              | Storage.Page.Btree_interior ->
                let p = read pid in
                walk (Storage.Page.aux p) (depth + 1);
                Storage.Page.iter p ~f:(fun _ data ->
                    match R.decode_row data with
                    | row -> (
                      match row.(Array.length row - 1) with
                      | R.Int child -> walk child (depth + 1)
                      | _ -> problem "%s: malformed interior entry" who)
                    | exception _ -> problem "%s: undecodable interior entry" who)
              | _ -> problem "%s: page %d is not an index page" who pid
              | exception e ->
                problem "%s: page %d unreadable: %s" who pid (Printexc.to_string e)
            end
          in
          walk idx.Catalog.iroot 0;
          (* ordered, and every entry backed by a matching heap row *)
          let entries = ref 0 in
          let last = ref None in
          (try
            Storage.Btree.iter_all read bt ~f:(fun key rid ->
              incr entries;
              (match !last with
              | Some prev when R.compare_row prev key > 0 ->
                problem "%s: entries out of order" who
              | _ -> ());
              last := Some key;
              match Storage.Heap.get read heap rid with
              | None -> problem "%s: entry (%s, rid %d) has no heap row" who
                          (String.concat "," (Array.to_list (Array.map R.value_to_string key)))
                          rid
              | Some data ->
                let row = R.decode_row data in
                let want = Exec.index_key tbl idx row in
                if R.compare_row want key <> 0 then
                  problem "%s: entry key mismatch at rid %d" who rid)
          with e -> problem "%s: scan failed: %s" who (Printexc.to_string e));
          let rows =
            Option.value
              (Hashtbl.find_opt table_rows (String.lowercase_ascii tbl.Catalog.tname))
              ~default:0
          in
          if !entries <> rows then
            problem "%s: %d entries vs %d table rows" who !entries rows));
  (* page-image checksums: a committed page mutated behind the pager's
     back (or flipped in memory) no longer matches its install-time CRC *)
  List.iter
    (fun pid -> problem "page %d fails checksum" pid)
    (Storage.Pager.verify_checksums db.Db.pager);
  (* archive checksums, scoped to the snapshots they damage *)
  (match db.Db.retro with
  | None -> ()
  | Some retro ->
    List.iter
      (fun (snap_id, pl_off) ->
        problem "snapshot %d references corrupt pagelog block %d" snap_id pl_off)
      (Retro.scrub retro));
  List.rev !problems

(* Convenience wrapper that raises on corruption. *)
let check_exn db =
  match check db with
  | [] -> ()
  | problems ->
    raise (Db.Error ("integrity check failed:\n  " ^ String.concat "\n  " problems))
