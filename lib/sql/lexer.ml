(* SQL tokenizer.  Keywords are returned as [Ident] and matched
   case-insensitively by the parser, as SQLite does.

   Every token carries a source span: the 1-based (line, col) of its
   first character.  The parser threads spans into its error messages
   ("parse error at 3:17: ...") and the analyzer uses them to attach
   positions to diagnostics. *)

type token =
  | Ident of string
  | Str of string      (* 'single quoted', '' escapes a quote *)
  | Int_lit of int
  | Float_lit of float
  | Lparen | Rparen | Comma | Dot | Semi
  | Star | Plus | Minus | Slash | Percent
  | Eq | Ne | Lt | Le | Gt | Ge
  | Concat_op
  | Question          (* positional parameter placeholder *)
  | Eof

(* 1-based source position of a token's first character. *)
type pos = { line : int; col : int }

let pos_to_string p = Printf.sprintf "%d:%d" p.line p.col

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokenize [s] fully, pairing each token with its source position. *)
let tokenize_pos (s : string) : (token * pos) list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  (* line/bol track the current line number and the offset of its first
     character; the column of offset [o] on the current line is
     [o - bol + 1]. *)
  let line = ref 1 in
  let bol = ref 0 in
  let advance () =
    if !i < n && s.[!i] = '\n' then begin
      incr line;
      bol := !i + 1
    end;
    incr i
  in
  let advance_by k = for _ = 1 to k do advance () done in
  let pos_at off = { line = !line; col = off - !bol + 1 } in
  let push_at p t = toks := (t, p) :: !toks in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  while !i < n do
    let c = s.[!i] in
    let start_pos = pos_at !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !i < n && s.[!i] <> '\n' do advance () done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      advance_by 2;
      let rec skip () =
        if !i + 1 >= n then
          error "unterminated /* comment at %s" (pos_to_string start_pos)
        else if s.[!i] = '*' && s.[!i + 1] = '/' then advance_by 2
        else begin advance (); skip () end
      in
      skip ()
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do advance () done;
      push_at start_pos (Ident (String.sub s start (!i - start)))
    end
    else if is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do advance () done;
      let is_float = ref false in
      if !i < n && s.[!i] = '.' then begin
        is_float := true;
        advance ();
        while !i < n && is_digit s.[!i] do advance () done
      end;
      if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
        is_float := true;
        advance ();
        if !i < n && (s.[!i] = '+' || s.[!i] = '-') then advance ();
        while !i < n && is_digit s.[!i] do advance () done
      end;
      let text = String.sub s start (!i - start) in
      if !is_float then push_at start_pos (Float_lit (float_of_string text))
      else
        match int_of_string_opt text with
        | Some v -> push_at start_pos (Int_lit v)
        | None -> push_at start_pos (Float_lit (float_of_string text))
    end
    else if c = '\'' then begin
      advance ();
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then
          error "unterminated string literal at %s" (pos_to_string start_pos)
        else if s.[!i] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            advance_by 2;
            go ()
          end
          else advance ()
        else begin
          Buffer.add_char buf s.[!i];
          advance ();
          go ()
        end
      in
      go ();
      push_at start_pos (Str (Buffer.contents buf))
    end
    else if c = '"' then begin
      (* double-quoted identifier *)
      advance ();
      let start = !i in
      while !i < n && s.[!i] <> '"' do advance () done;
      if !i >= n then error "unterminated quoted identifier at %s" (pos_to_string start_pos);
      push_at start_pos (Ident (String.sub s start (!i - start)));
      advance ()
    end
    else begin
      let two a b t =
        if c = a && peek 1 = Some b then begin
          push_at start_pos t;
          advance_by 2;
          true
        end
        else false
      in
      if two '<' '=' Le || two '>' '=' Ge || two '<' '>' Ne || two '!' '=' Ne
         || two '|' '|' Concat_op || two '=' '=' Eq
      then ()
      else begin
        (match c with
        | '(' -> push_at start_pos Lparen
        | ')' -> push_at start_pos Rparen
        | ',' -> push_at start_pos Comma
        | '.' -> push_at start_pos Dot
        | ';' -> push_at start_pos Semi
        | '*' -> push_at start_pos Star
        | '+' -> push_at start_pos Plus
        | '-' -> push_at start_pos Minus
        | '/' -> push_at start_pos Slash
        | '%' -> push_at start_pos Percent
        | '=' -> push_at start_pos Eq
        | '<' -> push_at start_pos Lt
        | '>' -> push_at start_pos Gt
        | '?' -> push_at start_pos Question
        | c -> error "unexpected character %C at %s" c (pos_to_string start_pos));
        advance ()
      end
    end
  done;
  let eof_pos = pos_at n in
  List.rev ((Eof, eof_pos) :: !toks)

(* Positions dropped, for callers that only need the token stream. *)
let tokenize (s : string) : token list = List.map fst (tokenize_pos s)

let token_to_string = function
  | Ident s -> s
  | Str s -> Printf.sprintf "'%s'" s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Lparen -> "(" | Rparen -> ")" | Comma -> "," | Dot -> "." | Semi -> ";"
  | Star -> "*" | Plus -> "+" | Minus -> "-" | Slash -> "/" | Percent -> "%"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Concat_op -> "||"
  | Question -> "?"
  | Eof -> "<eof>"
