(* SQL tokenizer.  Keywords are returned as [Ident] and matched
   case-insensitively by the parser, as SQLite does. *)

type token =
  | Ident of string
  | Str of string      (* 'single quoted', '' escapes a quote *)
  | Int_lit of int
  | Float_lit of float
  | Lparen | Rparen | Comma | Dot | Semi
  | Star | Plus | Minus | Slash | Percent
  | Eq | Ne | Lt | Le | Gt | Ge
  | Concat_op
  | Question          (* positional parameter placeholder *)
  | Eof

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokenize [s] fully; positions are not tracked beyond error offsets. *)
let tokenize (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some s.[!i + k] else None in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then error "unterminated /* comment"
        else if s.[!i] = '*' && s.[!i + 1] = '/' then i := !i + 2
        else begin incr i; skip () end
      in
      skip ()
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      push (Ident (String.sub s start (!i - start)))
    end
    else if is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false))
    then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && s.[!i] = '.' then begin
        is_float := true;
        incr i;
        while !i < n && is_digit s.[!i] do incr i done
      end;
      if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
        while !i < n && is_digit s.[!i] do incr i done
      end;
      let text = String.sub s start (!i - start) in
      if !is_float then push (Float_lit (float_of_string text))
      else
        match int_of_string_opt text with
        | Some v -> push (Int_lit v)
        | None -> push (Float_lit (float_of_string text))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then error "unterminated string literal"
        else if s.[!i] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2;
            go ()
          end
          else incr i
        else begin
          Buffer.add_char buf s.[!i];
          incr i;
          go ()
        end
      in
      go ();
      push (Str (Buffer.contents buf))
    end
    else if c = '"' then begin
      (* double-quoted identifier *)
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '"' do incr i done;
      if !i >= n then error "unterminated quoted identifier";
      push (Ident (String.sub s start (!i - start)));
      incr i
    end
    else begin
      let two a b t = if c = a && peek 1 = Some b then (push t; i := !i + 2; true) else false in
      if two '<' '=' Le || two '>' '=' Ge || two '<' '>' Ne || two '!' '=' Ne
         || two '|' '|' Concat_op || two '=' '=' Eq
      then ()
      else begin
        (match c with
        | '(' -> push Lparen
        | ')' -> push Rparen
        | ',' -> push Comma
        | '.' -> push Dot
        | ';' -> push Semi
        | '*' -> push Star
        | '+' -> push Plus
        | '-' -> push Minus
        | '/' -> push Slash
        | '%' -> push Percent
        | '=' -> push Eq
        | '<' -> push Lt
        | '>' -> push Gt
        | '?' -> push Question
        | c -> error "unexpected character %C at offset %d" c !i);
        incr i
      end
    end
  done;
  List.rev (Eof :: !toks)

let token_to_string = function
  | Ident s -> s
  | Str s -> Printf.sprintf "'%s'" s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Lparen -> "(" | Rparen -> ")" | Comma -> "," | Dot -> "." | Semi -> ";"
  | Star -> "*" | Plus -> "+" | Minus -> "-" | Slash -> "/" | Percent -> "%"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Concat_op -> "||"
  | Question -> "?"
  | Eof -> "<eof>"
