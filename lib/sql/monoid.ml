(* The aggregate-function algebra for RQL's aggregation mechanisms.

   The paper requires AggFunc to be definable by an abelian monoid
   (X, op, e): op associative and commutative with identity e.  MIN, MAX,
   SUM and COUNT qualify; AVG does not, but is supported as a special
   case by carrying a (sum, count) pair; COUNT DISTINCT / SUM DISTINCT
   are rejected with the paper's suggested alternative (CollateData plus
   a SQL aggregate over the result). *)

module R = Storage.Record

type t = Min | Max | Sum | Count | Avg

exception Not_supported of string

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "min" -> Min
  | "max" -> Max
  | "sum" -> Sum
  | "count" -> Count
  | "avg" | "average" -> Avg
  | ("count distinct" | "count_distinct" | "sum distinct" | "sum_distinct") as d ->
    raise
      (Not_supported
         (d
        ^ " is not an abelian monoid; use CollateData to collect the elements and \
           aggregate with SQL"))
  | s -> raise (Not_supported ("unknown aggregate function " ^ s))

let to_string = function
  | Min -> "min"
  | Max -> "max"
  | Sum -> "sum"
  | Count -> "count"
  | Avg -> "avg"

(* Does the function satisfy the monoid requirement directly (without the
   AVG special case)? *)
let is_monoid = function Min | Max | Sum | Count -> true | Avg -> false

(* Identity element.  NULL is the identity for MIN/MAX under [combine]'s
   NULL handling; 0 for SUM and COUNT. *)
let identity = function
  | Min | Max -> R.Null
  | Sum | Count -> R.Int 0
  | Avg -> R.Null

let add a b =
  match a, b with
  | R.Null, v | v, R.Null -> v
  | R.Int x, R.Int y -> R.Int (x + y)
  | x, y -> (
    match Expr.to_number x, Expr.to_number y with
    | Some fx, Some fy -> R.Real (fx +. fy)
    | _ -> R.Null)

(* First-occurrence transform: the value stored when a group is first
   seen.  COUNT counts values, so its first occurrence is 1 (or 0 for
   NULL), matching SQL COUNT semantics. *)
let init t v =
  match t with
  | Min | Max | Sum -> v
  | Count -> R.Int (if v = R.Null then 0 else 1)
  | Avg -> v

(* Fold a new per-snapshot value into the running value.  NULL behaves as
   the identity: SQL aggregates ignore NULL inputs. *)
let combine t stored v =
  match t with
  | Min -> (
    match stored, v with
    | R.Null, v -> v
    | s, R.Null -> s
    | s, v -> if R.compare_value v s < 0 then v else s)
  | Max -> (
    match stored, v with
    | R.Null, v -> v
    | s, R.Null -> s
    | s, v -> if R.compare_value v s > 0 then v else s)
  | Sum -> add stored v
  | Count -> (
    match stored, v with
    | R.Null, v -> R.Int (if v = R.Null then 0 else 1)
    | s, R.Null -> s
    | s, _ -> add s (R.Int 1))
  | Avg -> invalid_arg "Monoid.combine: AVG requires the (sum, count) special case"

(* --- AVG special case -------------------------------------------------- *)

(* Running AVG state: (sum, count) — an abelian monoid product. *)
type avg_state = { mutable sum : float; mutable count : int }

let avg_create () = { sum = 0.; count = 0 }

let avg_step st v =
  match Expr.to_number v with
  | Some f ->
    st.sum <- st.sum +. f;
    st.count <- st.count + 1
  | None -> ()

let avg_current st = if st.count = 0 then R.Null else R.Real (st.sum /. float_of_int st.count)

let avg_merge a b = { sum = a.sum +. b.sum; count = a.count + b.count }
