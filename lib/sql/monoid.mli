(** The aggregate-function algebra for RQL's aggregation mechanisms.

    The paper requires AggFunc to be definable by an abelian monoid
    (X, op, e) — op associative and commutative with identity e.  MIN,
    MAX, SUM and COUNT qualify; AVG is supported as the paper's special
    case via a (sum, count) product; COUNT/SUM DISTINCT are rejected
    with the paper's suggested workaround (CollateData + SQL). *)

type t = Min | Max | Sum | Count | Avg

exception Not_supported of string

(** Parse a function name (case-insensitive).
    @raise Not_supported for non-monoid aggregations, with guidance. *)
val of_string : string -> t

val to_string : t -> string

(** Does the function satisfy the monoid requirement directly (AVG does
    not)? *)
val is_monoid : t -> bool

(** Identity element: neutral under {!combine} for non-null values. *)
val identity : t -> Storage.Record.value

(** NULL-tolerant numeric addition (used by the AVG hidden columns). *)
val add : Storage.Record.value -> Storage.Record.value -> Storage.Record.value

(** First-occurrence transform: the value stored when a group is first
    seen (COUNT counts values, so its first occurrence is 1). *)
val init : t -> Storage.Record.value -> Storage.Record.value

(** Fold a new per-snapshot value into the running value; NULL inputs
    are ignored, as SQL aggregates do.
    @raise Invalid_argument on [Avg] (use the special case below). *)
val combine : t -> Storage.Record.value -> Storage.Record.value -> Storage.Record.value

(** {1 The AVG special case} *)

(** Running (sum, count) state — itself an abelian monoid product. *)
type avg_state = { mutable sum : float; mutable count : int }

val avg_create : unit -> avg_state
val avg_step : avg_state -> Storage.Record.value -> unit

(** Current average; [Null] when no numeric value has been folded. *)
val avg_current : avg_state -> Storage.Record.value

val avg_merge : avg_state -> avg_state -> avg_state
