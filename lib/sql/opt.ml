(* The post-planning optimizer: runs between [Planner.plan] and
   [Exec.stream_plan] over the typed plan IR.

   Four jobs, all differentially testable against `PRAGMA optimize=off`:

   1. Constant folding / strength reduction of every expression slot of
      the plan, via the abstract interpreter in [Absint].  Folds are
      exact by construction (the real evaluator computes them).

   2. Predicate pruning over filter conjunct lists and index bounds.
      Dropping an always-true conjunct from a filter list is sound
      because the executor's [pass] is a [for_all] over truth values;
      an always-false (or NULL) conjunct proves the list rejects every
      row, collapsing the core to an empty scan ([c_empty]).  Interval
      reasoning over (column, comparison, constant) atoms uses the
      total order of [R.compare_value], which makes implication and
      contradiction sound for every runtime value type at once — a row
      whose column is NULL fails both atoms of any such pair anyway.
      Emptiness is only declared when every expression of the FROM
      pipeline is [Absint.droppable], so runtime errors and UDF effects
      the naive path would produce are preserved.

   3. Snapshot-invariance classification: a plan whose result cannot
      depend on the bound snapshot — no table access, no parameters, no
      subqueries, only pure builtins — is marked [oi_invariant] so the
      RQL loop evaluates it once per run instead of once per snapshot.

   4. A delta-safety verdict ([oi_delta_safe] + reason), the static
      gate ROADMAP item 4's incremental evaluation consumes: aggregates
      must come from the monoid registry (no DISTINCT), no LIMIT /
      OFFSET / DISTINCT / UNION, no subqueries, no UDF calls.

   Warnings use stable W2xx codes through [Diag]:
     W201  always-false predicate; plan collapsed to an empty scan
     W202  always-true / implied predicate pruned
     W203  contradictory constant bounds; plan collapsed to empty
     W204  redundant index bound dropped *)

module R = Storage.Record
open Ast

let c_folds = Obs.Scope.counter "sql.opt_folds"
let c_pruned_preds = Obs.Scope.counter "sql.opt_pruned_predicates"
let c_invariant_hoists = Obs.Scope.counter "sql.opt_invariant_hoists"

type st = {
  actx : Absint.ctx;
  mutable pruned : int;
  mutable diags : Diag.t list;          (* reversed *)
  mutable notes : (int * string) list;  (* reversed; op_id -> annotation *)
}

let warn st code msg = st.diags <- Diag.v ~severity:Diag.Warning code msg :: st.diags

let note st (op : Plan.op) parts =
  let parts = List.filter (fun s -> s <> "") parts in
  if parts <> [] then st.notes <- (op.Plan.op_id, String.concat " " parts) :: st.notes

(* Folds performed inside [f], off the shared counter. *)
let with_folds st f =
  let before = st.actx.Absint.folds in
  let r = f () in
  (r, st.actx.Absint.folds - before)

let fold_part n = if n > 0 then Printf.sprintf "folded=%d" n else ""
let prune_part n = if n > 0 then Printf.sprintf "pruned=%d" n else ""

(* --- conjunct-level interval reasoning -------------------------------- *)

(* (column, comparison, constant) with the column on the left.  NULL
   constants never reach here: [Absint] already folded such comparisons
   to [Lit Null]. *)
let flip = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | op -> op

let atom_of = function
  | Binop (((Lt | Le | Gt | Ge | Eq) as op), Colidx i, Lit c) when c <> R.Null ->
    Some (i, op, c)
  | Binop (((Lt | Le | Gt | Ge | Eq) as op), Lit c, Colidx i) when c <> R.Null ->
    Some (i, flip op, c)
  | _ -> None

(* Decide, for the atoms of one column, which are implied by a sibling
   (droppable) and whether the set is contradictory.  Keys are [k]
   (caller-chosen identifiers).  All reasoning is over the total order
   [R.compare_value]: for any non-NULL x, [x > c1 && x < c2] implies
   [c1 < c2]; a NULL x fails every atom regardless. *)
let tighten_col (atoms : ('k * binop * R.value) list) : 'k list * bool =
  let cmp = R.compare_value in
  let eqs = List.filter (fun (_, op, _) -> op = Eq) atoms in
  let lowers = List.filter (fun (_, op, _) -> op = Gt || op = Ge) atoms in
  let uppers = List.filter (fun (_, op, _) -> op = Lt || op = Le) atoms in
  let drops = ref [] and contra = ref false in
  (match eqs with
  | (_, _, c0) :: rest ->
    (* an equality pins the value: every other atom is decided *)
    List.iter
      (fun (k, _, c) -> if cmp c c0 = 0 then drops := k :: !drops else contra := true)
      rest;
    List.iter
      (fun (k, op, c) ->
        let sat =
          match op with
          | Gt -> cmp c0 c > 0
          | Ge -> cmp c0 c >= 0
          | Lt -> cmp c0 c < 0
          | Le -> cmp c0 c <= 0
          | _ -> true
        in
        if sat then drops := k :: !drops else contra := true)
      (lowers @ uppers)
  | [] ->
    let strongest better = function
      | [] -> None
      | hd :: tl -> Some (List.fold_left (fun best a -> if better a best then a else best) hd tl)
    in
    (* lower bounds: larger constant is tighter; strict beats non-strict *)
    let lower_better (_, o1, c1) (_, o2, c2) =
      let d = cmp c1 c2 in
      d > 0 || (d = 0 && o1 = Gt && o2 = Ge)
    in
    let upper_better (_, o1, c1) (_, o2, c2) =
      let d = cmp c1 c2 in
      d < 0 || (d = 0 && o1 = Lt && o2 = Le)
    in
    let sl = strongest lower_better lowers and su = strongest upper_better uppers in
    (match sl with
    | Some ((sk, sop, sc) as _s) ->
      List.iter
        (fun (k, op, c) ->
          if k <> sk then
            let d = cmp sc c in
            if d > 0 || (d = 0 && (op = sop || sop = Gt)) then drops := k :: !drops)
        lowers
    | None -> ());
    (match su with
    | Some (sk, sop, sc) ->
      List.iter
        (fun (k, op, c) ->
          if k <> sk then
            let d = cmp sc c in
            if d < 0 || (d = 0 && (op = sop || sop = Lt)) then drops := k :: !drops)
        uppers
    | None -> ());
    (match sl, su with
    | Some (_, lop, lc), Some (_, uop, uc) ->
      let d = cmp lc uc in
      if d > 0 || (d = 0 && (lop = Gt || uop = Lt)) then contra := true
    | _ -> ()));
  (!drops, !contra)

type pruned_list = {
  kept : expr list;
  dropped : int;
  empty : bool;
}

(* Prune one filter conjunct list (expressions already simplified).
   [allow_empty] gates the collapse-to-empty rewrite on the
   droppability of the surrounding FROM pipeline. *)
let prune_filters st ~what ~allow_empty (filters : expr list) : pruned_list =
  (* literal conjuncts *)
  let empty = ref false in
  let kept =
    List.filter
      (fun e ->
        match e with
        | Lit v when Expr.truth v = Some true ->
          st.pruned <- st.pruned + 1;
          warn st "W202" (Printf.sprintf "always-true predicate on %s pruned" what);
          false
        | Lit _ ->
          if allow_empty && not !empty then begin
            empty := true;
            warn st "W201"
              (Printf.sprintf "always-false predicate on %s; empty result" what)
          end;
          true
        | _ -> true)
      filters
  in
  let true_dropped = List.length filters - List.length kept in
  if !empty then { kept = []; dropped = List.length filters; empty = true }
  else begin
    (* interval reasoning over (col, cmp, const) atoms, per column *)
    let atoms =
      List.concat
        (List.mapi
           (fun k e -> match atom_of e with Some (i, op, c) -> [ (i, (k, op, c)) ] | None -> [])
           kept)
    in
    let cols = List.sort_uniq compare (List.map fst atoms) in
    let to_drop = Hashtbl.create 4 in
    let contra = ref false in
    List.iter
      (fun col ->
        let catoms = List.filter_map (fun (i, a) -> if i = col then Some a else None) atoms in
        if List.length catoms > 1 then begin
          let drops, c = tighten_col catoms in
          List.iter (fun k -> Hashtbl.replace to_drop k ()) drops;
          if c then contra := true
        end)
      cols;
    if !contra && allow_empty then begin
      warn st "W203" (Printf.sprintf "contradictory constant bounds on %s; empty result" what);
      { kept = []; dropped = true_dropped + List.length kept; empty = true }
    end
    else begin
      let n0 = List.length kept in
      let kept = List.filteri (fun k _ -> not (Hashtbl.mem to_drop k)) kept in
      let implied = n0 - List.length kept in
      if implied > 0 then begin
        st.pruned <- st.pruned + implied;
        warn st "W202"
          (Printf.sprintf "%d predicate(s) on %s implied by a tighter sibling; pruned" implied
             what)
      end;
      { kept; dropped = true_dropped + implied; empty = false }
    end
  end

(* Tighten the bounds of an index search: redundant bounds on the same
   column are dropped (W204), contradictory ones empty the scan (W203).
   Only literal bounds participate; parameters stay untouched. *)
let tighten_bounds st ~what ~allow_empty (access : Plan.access) : Plan.access * int * bool =
  match access with
  | Plan.Seq_scan -> (access, 0, false)
  | Plan.Index_search { ix; bounds } ->
    let atoms =
      List.concat
        (List.mapi
           (fun k (col, op, e) ->
             match op, e with
             | (Lt | Le | Gt | Ge | Eq), Lit c when c <> R.Null -> [ (col, (k, op, c)) ]
             | _ -> [])
           bounds)
    in
    let cols = List.sort_uniq compare (List.map fst atoms) in
    let to_drop = Hashtbl.create 4 in
    let contra = ref false in
    List.iter
      (fun col ->
        let catoms = List.filter_map (fun (i, a) -> if i = col then Some a else None) atoms in
        if List.length catoms > 1 then begin
          let drops, c = tighten_col catoms in
          List.iter (fun k -> Hashtbl.replace to_drop k ()) drops;
          if c then contra := true
        end)
      cols;
    if !contra && allow_empty then begin
      warn st "W203"
        (Printf.sprintf "contradictory index bounds on %s; empty result" what);
      (Plan.Index_search { ix; bounds }, 0, true)
    end
    else begin
      let n0 = List.length bounds in
      let bounds = List.filteri (fun k _ -> not (Hashtbl.mem to_drop k)) bounds in
      let dropped = n0 - List.length bounds in
      if dropped > 0 then begin
        st.pruned <- st.pruned + dropped;
        warn st "W204"
          (Printf.sprintf "%d redundant index bound(s) on %s dropped" dropped what)
      end;
      (Plan.Index_search { ix; bounds }, dropped, false)
    end

(* --- core optimization ------------------------------------------------- *)

(* Every expression of the FROM pipeline must be droppable before the
   plan may collapse to an empty scan: [c_empty] skips the whole
   pipeline, so anything that could raise or have effects there must
   keep running on the naive path too. *)
let from_droppable (fp : Plan.from_plan) : bool =
  let ok = ref true in
  ignore
    (Plan.map_from
       (fun e ->
         if not (Absint.droppable e) then ok := false;
         e)
       fp);
  !ok

let opt_core st (c : Plan.core) : Plan.core =
  let simp e = Absint.simplify st.actx e in
  let empty = ref false in
  let c_from =
    match c.Plan.c_from with
    | Plan.From_none -> Plan.From_none
    | Plan.From_scan { first; joins; residual } ->
      let allow_empty =
        from_droppable (Plan.From_scan { first; joins; residual })
      in
      (* driving scan *)
      let tname = first.Plan.sc_src.Plan.s_tbl.Catalog.tname in
      let (access, filters), sfolds =
        with_folds st (fun () ->
            (Plan.map_access simp first.Plan.sc_access, List.map simp first.Plan.sc_filters))
      in
      let pr = prune_filters st ~what:tname ~allow_empty filters in
      let access, bdropped, bempty = tighten_bounds st ~what:tname ~allow_empty access in
      if pr.empty || bempty then empty := true;
      note st first.Plan.sc_op
        [ fold_part sfolds;
          prune_part (pr.dropped + bdropped);
          (if pr.empty || bempty then "empty" else "") ];
      let first = { first with Plan.sc_access = access; sc_filters = pr.kept } in
      (* joins *)
      let joins =
        List.map
          (fun (js : Plan.join_step) ->
            let jname = js.Plan.j_src.Plan.s_tbl.Catalog.tname in
            let j_plan, jfolds =
              with_folds st (fun () -> Plan.map_join simp js.Plan.j_plan)
            in
            let j_plan, jdropped, jempty =
              match j_plan with
              | Plan.Nested_loop { filters } ->
                let pr = prune_filters st ~what:jname ~allow_empty filters in
                (Plan.Nested_loop { filters = pr.kept }, pr.dropped, pr.empty)
              | Plan.Hash_join { equi; filters } ->
                let pr = prune_filters st ~what:jname ~allow_empty filters in
                (Plan.Hash_join { equi; filters = pr.kept }, pr.dropped, pr.empty)
              | Plan.Index_probe { ix; equi; filters } ->
                let pr = prune_filters st ~what:jname ~allow_empty filters in
                (Plan.Index_probe { ix; equi; filters = pr.kept }, pr.dropped, pr.empty)
              | Plan.Left_hash { equi; inner_filters; residual } ->
                (* LEFT JOIN preserves outer rows: an always-false inner
                   side NULL-pads instead of emptying, so never collapse *)
                let pi =
                  prune_filters st ~what:jname ~allow_empty:false inner_filters
                in
                let pres =
                  prune_filters st ~what:(jname ^ " (left join)") ~allow_empty:false residual
                in
                ( Plan.Left_hash { equi; inner_filters = pi.kept; residual = pres.kept },
                  pi.dropped + pres.dropped,
                  false )
            in
            if jempty then empty := true;
            note st js.Plan.j_op
              [ fold_part jfolds; prune_part jdropped; (if jempty then "empty" else "") ];
            { js with Plan.j_plan })
          joins
      in
      (* post-join residual *)
      let residual, rfolds = with_folds st (fun () -> List.map simp residual) in
      let pres = prune_filters st ~what:"join residual" ~allow_empty residual in
      if pres.empty then empty := true;
      note st c.Plan.c_filter_op
        [ fold_part rfolds;
          prune_part pres.dropped;
          (if pres.empty then "empty" else "") ];
      Plan.From_scan { first; joins; residual = pres.kept }
  in
  (* projection / aggregation / sort / limit *)
  let (c_aggs, c_group, c_having), agg_folds =
    with_folds st (fun () ->
        ( List.map (fun a -> { a with agg_arg = Option.map simp a.agg_arg }) c.Plan.c_aggs,
          List.map simp c.Plan.c_group,
          Option.map simp c.Plan.c_having ))
  in
  (* an always-true HAVING filters nothing; drop it *)
  let c_having, hpruned =
    match c_having with
    | Some (Lit v) when Expr.truth v = Some true ->
      st.pruned <- st.pruned + 1;
      warn st "W202" "always-true HAVING pruned";
      (None, 1)
    | h -> (h, 0)
  in
  note st c.Plan.c_agg_op [ fold_part agg_folds; prune_part hpruned ];
  let c_order, sort_folds =
    with_folds st (fun () ->
        List.map
          (fun (k, d) ->
            ((match k with Plan.Out_col _ as k -> k | Plan.Key_expr e -> Plan.Key_expr (simp e)), d))
          c.Plan.c_order)
  in
  note st c.Plan.c_sort_op [ fold_part sort_folds ];
  let (c_out, c_limit, c_offset), out_folds =
    with_folds st (fun () ->
        ( List.map simp c.Plan.c_out,
          Option.map simp c.Plan.c_limit,
          Option.map simp c.Plan.c_offset ))
  in
  note st c.Plan.c_out_op [ fold_part out_folds ];
  { c with
    Plan.c_from;
    c_out;
    c_aggs;
    c_group;
    c_having;
    c_order;
    c_limit;
    c_offset;
    c_empty = c.Plan.c_empty || !empty }

let rec opt_plan st (p : Plan.t) : Plan.t =
  let p_as_of = Option.map (Absint.simplify st.actx) p.Plan.p_as_of in
  let p_core = opt_core st p.Plan.p_core in
  let p_members = List.map (fun (all, m) -> (all, opt_plan st m)) p.Plan.p_members in
  let (p_climit, p_coffset), _ =
    with_folds st (fun () ->
        (Option.map (Absint.simplify st.actx) p.Plan.p_climit,
         Option.map (Absint.simplify st.actx) p.Plan.p_coffset))
  in
  { p with Plan.p_as_of; p_core; p_members; p_climit; p_coffset }

(* --- plan-level classification ----------------------------------------- *)

exception Unsafe of string

(* Walk every expression node of every core slot (not descending into
   subquery selects — a subquery node itself is already a verdict). *)
let scan_plan_exprs ?(as_of = true) (f : expr -> unit) (p : Plan.t) : unit =
  let scan e = ignore (Expr.map (fun x -> f x; x) e) in
  let rec go p =
    ignore
      (Plan.map_core
         (fun e ->
           scan e;
           e)
         p.Plan.p_core);
    if as_of then Option.iter scan p.Plan.p_as_of;
    Option.iter scan p.Plan.p_climit;
    Option.iter scan p.Plan.p_coffset;
    List.iter (fun (_, m) -> go m) p.Plan.p_members
  in
  go p

(* Snapshot-invariant: the result cannot depend on which snapshot (or
   parameter binding) the plan runs against — no table access, no
   parameters, no subqueries, only pure builtin calls. *)
let is_invariant ~pure_fn (p : Plan.t) : bool =
  let from_none p =
    let rec go p =
      (match p.Plan.p_core.Plan.c_from with
      | Plan.From_none -> ()
      | Plan.From_scan _ -> raise (Unsafe "table access"));
      List.iter (fun (_, m) -> go m) p.Plan.p_members
    in
    go p
  in
  match
    from_none p;
    (* The AS OF expression itself is exempt: with no table access the
       snapshot binding (a parameter in a prepared Qq) cannot change the
       result — only data visibility, of which there is none. *)
    scan_plan_exprs ~as_of:false
      (function
        | Param _ | Subquery _ | In_select _ | Exists _ -> raise (Unsafe "dependent")
        | Call (n, _) when not (pure_fn n) -> raise (Unsafe "udf")
        | _ -> ())
      p
  with
  | () -> true
  | exception Unsafe _ -> false

(* The static delta-safety gate for incremental RQL evaluation
   (ROADMAP item 4): the verdict plus the first disqualifying reason. *)
let delta_verdict ~pure_fn (p : Plan.t) : bool * string =
  match
    if p.Plan.p_members <> [] then raise (Unsafe "compound (UNION)");
    let c = p.Plan.p_core in
    if not c.Plan.c_has_agg then raise (Unsafe "no aggregate to update incrementally");
    if c.Plan.c_limit <> None || c.Plan.c_offset <> None || p.Plan.p_climit <> None
       || p.Plan.p_coffset <> None
    then raise (Unsafe "LIMIT/OFFSET");
    if c.Plan.c_distinct then raise (Unsafe "DISTINCT");
    List.iter
      (fun (a : agg) ->
        if a.agg_distinct then raise (Unsafe ("DISTINCT aggregate " ^ a.agg_fn));
        match Monoid.of_string a.agg_fn with
        | _ -> ()
        | exception Monoid.Not_supported _ ->
          raise (Unsafe ("non-monoid aggregate " ^ a.agg_fn)))
      c.Plan.c_aggs;
    scan_plan_exprs
      (function
        | Subquery _ | In_select _ | Exists _ -> raise (Unsafe "subquery")
        | Call (n, _) when not (pure_fn n) -> raise (Unsafe ("calls UDF " ^ n))
        | _ -> ())
      p
  with
  | () -> (true, "")
  | exception Unsafe reason -> (false, reason)

let rec any_empty (p : Plan.t) : bool =
  p.Plan.p_core.Plan.c_empty || List.exists (fun (_, m) -> any_empty m) p.Plan.p_members

(* --- entry point -------------------------------------------------------- *)

(* Optimize a freshly planned [p].  Returns the rewritten plan (with
   [p_opt] describing what happened) and the W2xx warnings produced.
   [is_udf] must answer whether a name is shadowed by a session UDF, so
   folding never bypasses user functions. *)
let optimize ~fnctx ~is_udf (p : Plan.t) : Plan.t * Diag.t list =
  let pure_fn name = (not (is_udf name)) && Func.find name <> None in
  let st =
    { actx = Absint.make_ctx ~fnctx ~pure_fn; pruned = 0; diags = []; notes = [] }
  in
  let p' = opt_plan st p in
  let folds = st.actx.Absint.folds in
  let invariant = is_invariant ~pure_fn p' in
  let delta_safe, delta_reason = delta_verdict ~pure_fn p' in
  Obs.Scope.add c_folds folds;
  Obs.Scope.add c_pruned_preds st.pruned;
  (* folds inside an AS OF / parameterized-Qq plan are computed once at
     plan time instead of once per snapshot iteration: hoists *)
  if p'.Plan.p_as_of <> None then Obs.Scope.add c_invariant_hoists folds;
  let oi =
    { Plan.oi_folds = folds;
      oi_pruned = st.pruned;
      oi_empty = any_empty p';
      oi_invariant = invariant;
      oi_delta_safe = delta_safe;
      oi_delta_reason = delta_reason;
      oi_notes = List.rev st.notes }
  in
  ({ p' with Plan.p_opt = Some oi }, List.rev st.diags)
