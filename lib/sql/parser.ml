(* Recursive-descent parser producing Ast.stmt values.  Errors carry the
   1-based line:col of the offending token ("parse error at 3:17: ..."). *)

open Ast

exception Error of string

type state = {
  toks : Lexer.token array;
  poss : Lexer.pos array; (* parallel to [toks]: each token's source span *)
  mutable pos : int;
  mutable nparams : int;
}

let peek st = st.toks.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else Lexer.Eof
let peek3 st = if st.pos + 2 < Array.length st.toks then st.toks.(st.pos + 2) else Lexer.Eof
let advance st = st.pos <- st.pos + 1

(* Raise a parse error positioned at the current token. *)
let error st fmt =
  let p = st.poss.(min st.pos (Array.length st.poss - 1)) in
  Printf.ksprintf
    (fun s -> raise (Error (Printf.sprintf "parse error at %s: %s" (Lexer.pos_to_string p) s)))
    fmt

let expect st tok =
  if peek st = tok then advance st
  else error st "expected %s but found %s" (Lexer.token_to_string tok) (Lexer.token_to_string (peek st))

let kw_eq name = function
  | Lexer.Ident s -> String.uppercase_ascii s = name
  | _ -> false

let is_kw st name = kw_eq name (peek st)

(* Consume keyword [name] if present; returns whether it was. *)
let accept_kw st name =
  if is_kw st name then begin
    advance st;
    true
  end
  else false

let expect_kw st name =
  if not (accept_kw st name) then
    error st "expected %s but found %s" name (Lexer.token_to_string (peek st))

let ident st =
  match peek st with
  | Lexer.Ident s ->
    advance st;
    s
  | t -> error st "expected identifier but found %s" (Lexer.token_to_string t)

(* Words that terminate an implicit (AS-less) alias position. *)
let reserved =
  [ "FROM"; "WHERE"; "GROUP"; "HAVING"; "ORDER"; "LIMIT"; "OFFSET"; "ON"; "JOIN";
    "INNER"; "CROSS"; "LEFT"; "AND"; "OR"; "NOT"; "AS"; "SET"; "VALUES"; "UNION";
    "ASC"; "DESC"; "WHEN"; "THEN"; "ELSE"; "END"; "BETWEEN"; "IN"; "LIKE"; "IS";
    "DISTINCT"; "ALL"; "SELECT"; "INSERT"; "UPDATE"; "DELETE"; "BY" ]

let is_reserved s = List.mem (String.uppercase_ascii s) reserved

let aggregate_names = [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "TOTAL" ]

(* MIN/MAX with one argument are aggregates (SQLite rule); with several
   arguments they are scalar functions. *)
let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while is_kw st "OR" do
    advance st;
    let rhs = parse_and st in
    lhs := Binop (Or, !lhs, rhs)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while is_kw st "AND" do
    advance st;
    let rhs = parse_not st in
    lhs := Binop (And, !lhs, rhs)
  done;
  !lhs

and parse_not st =
  if is_kw st "NOT" then begin
    advance st;
    Unop (Not, parse_not st)
  end
  else parse_comparison st

and parse_comparison st =
  let lhs = parse_additive st in
  let negated = accept_kw st "NOT" in
  match peek st with
  | Lexer.Eq ->
    advance st;
    let e = Binop (Eq, lhs, parse_additive st) in
    if negated then Unop (Not, e) else e
  | Lexer.Ne ->
    advance st;
    let e = Binop (Ne, lhs, parse_additive st) in
    if negated then Unop (Not, e) else e
  | Lexer.Lt ->
    advance st;
    let e = Binop (Lt, lhs, parse_additive st) in
    if negated then Unop (Not, e) else e
  | Lexer.Le ->
    advance st;
    let e = Binop (Le, lhs, parse_additive st) in
    if negated then Unop (Not, e) else e
  | Lexer.Gt ->
    advance st;
    let e = Binop (Gt, lhs, parse_additive st) in
    if negated then Unop (Not, e) else e
  | Lexer.Ge ->
    advance st;
    let e = Binop (Ge, lhs, parse_additive st) in
    if negated then Unop (Not, e) else e
  | Lexer.Ident id when String.uppercase_ascii id = "LIKE" ->
    advance st;
    Like { subject = lhs; pattern = parse_additive st; negated }
  | Lexer.Ident id when String.uppercase_ascii id = "BETWEEN" ->
    advance st;
    let low = parse_additive st in
    expect_kw st "AND";
    let high = parse_additive st in
    Between { subject = lhs; low; high; negated }
  | Lexer.Ident id when String.uppercase_ascii id = "IN" ->
    advance st;
    expect st Lexer.Lparen;
    if is_kw st "SELECT" then begin
      let sub = parse_select st in
      expect st Lexer.Rparen;
      In_select { subject = lhs; sub; negated }
    end
    else begin
      let rec items acc =
        let e = parse_expr st in
        if peek st = Lexer.Comma then begin
          advance st;
          items (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let candidates = if peek st = Lexer.Rparen then [] else items [] in
      expect st Lexer.Rparen;
      In_list { subject = lhs; candidates; negated }
    end
  | Lexer.Ident id when String.uppercase_ascii id = "IS" ->
    advance st;
    let negated = accept_kw st "NOT" in
    expect_kw st "NULL";
    Is_null { subject = lhs; negated }
  | _ ->
    if negated then error st "dangling NOT in expression"
    else lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec go () =
    match peek st with
    | Lexer.Plus ->
      advance st;
      lhs := Binop (Add, !lhs, parse_multiplicative st);
      go ()
    | Lexer.Minus ->
      advance st;
      lhs := Binop (Sub, !lhs, parse_multiplicative st);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_concat st) in
  let rec go () =
    match peek st with
    | Lexer.Star ->
      advance st;
      lhs := Binop (Mul, !lhs, parse_concat st);
      go ()
    | Lexer.Slash ->
      advance st;
      lhs := Binop (Div, !lhs, parse_concat st);
      go ()
    | Lexer.Percent ->
      advance st;
      lhs := Binop (Mod, !lhs, parse_concat st);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_concat st =
  let lhs = ref (parse_unary st) in
  while peek st = Lexer.Concat_op do
    advance st;
    lhs := Binop (Concat, !lhs, parse_unary st)
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Lexer.Minus ->
    advance st;
    Unop (Neg, parse_unary st)
  | Lexer.Plus ->
    advance st;
    parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Question ->
    advance st;
    let i = st.nparams in
    st.nparams <- i + 1;
    Param i
  | Lexer.Int_lit i ->
    advance st;
    Lit (Storage.Record.Int i)
  | Lexer.Float_lit f ->
    advance st;
    Lit (Storage.Record.Real f)
  | Lexer.Str s ->
    advance st;
    Lit (Storage.Record.Text s)
  | Lexer.Lparen ->
    advance st;
    if is_kw st "SELECT" then begin
      let sub = parse_select st in
      expect st Lexer.Rparen;
      Subquery sub
    end
    else begin
      let e = parse_expr st in
      expect st Lexer.Rparen;
      e
    end
  | Lexer.Ident id when String.uppercase_ascii id = "EXISTS" && peek2 st = Lexer.Lparen ->
    advance st;
    advance st;
    let sub = parse_select st in
    expect st Lexer.Rparen;
    Exists { sub; negated = false }
  | Lexer.Ident id
    when String.uppercase_ascii id = "NOT" && kw_eq "EXISTS" (peek2 st) && peek3 st = Lexer.Lparen
    ->
    advance st;
    advance st;
    advance st;
    let sub = parse_select st in
    expect st Lexer.Rparen;
    Exists { sub; negated = true }
  | Lexer.Ident id when String.uppercase_ascii id = "CAST" && peek2 st = Lexer.Lparen ->
    advance st;
    advance st;
    let e = parse_expr st in
    expect_kw st "AS";
    let buf = Buffer.create 8 in
    let rec ty () =
      match peek st with
      | Lexer.Ident s ->
        advance st;
        if Buffer.length buf > 0 then Buffer.add_char buf ' ';
        Buffer.add_string buf s;
        ty ()
      | _ -> ()
    in
    ty ();
    expect st Lexer.Rparen;
    Cast (e, Buffer.contents buf)
  | Lexer.Ident id when String.uppercase_ascii id = "NULL" ->
    advance st;
    Lit Storage.Record.Null
  | Lexer.Ident id when String.uppercase_ascii id = "CASE" ->
    advance st;
    let rec branches acc =
      if accept_kw st "WHEN" then begin
        let cond = parse_expr st in
        expect_kw st "THEN";
        let v = parse_expr st in
        branches ((cond, v) :: acc)
      end
      else List.rev acc
    in
    let branches = branches [] in
    let else_ = if accept_kw st "ELSE" then Some (parse_expr st) else None in
    expect_kw st "END";
    Case { branches; else_ }
  | Lexer.Ident id when peek2 st = Lexer.Lparen ->
    advance st;
    advance st;
    let upper = String.uppercase_ascii id in
    if upper = "COUNT" && peek st = Lexer.Star then begin
      advance st;
      expect st Lexer.Rparen;
      Agg { agg_fn = "count"; agg_arg = None; agg_distinct = false }
    end
    else begin
      let distinct = accept_kw st "DISTINCT" in
      let args =
        if peek st = Lexer.Rparen then []
        else begin
          let rec go acc =
            let e = parse_expr st in
            if peek st = Lexer.Comma then begin
              advance st;
              go (e :: acc)
            end
            else List.rev (e :: acc)
          in
          go []
        end
      in
      expect st Lexer.Rparen;
      let is_agg =
        List.mem upper aggregate_names
        && (List.length args = 1 || (upper = "COUNT" && args = []))
      in
      if is_agg then
        Agg
          { agg_fn = String.lowercase_ascii upper;
            agg_arg = (match args with [ a ] -> Some a | _ -> None);
            agg_distinct = distinct }
      else if distinct then error st "DISTINCT is only valid in aggregate functions"
      else Call (String.lowercase_ascii id, args)
    end
  | Lexer.Ident id when peek2 st = Lexer.Dot && (match peek3 st with Lexer.Ident _ -> true | _ -> false) ->
    advance st;
    advance st;
    let col = ident st in
    Col (Some id, col)
  | Lexer.Ident id when not (is_reserved id) ->
    advance st;
    Col (None, id)
  | t -> error st "unexpected token %s in expression" (Lexer.token_to_string t)

(* --- SELECT ---------------------------------------------------------- *)

and parse_alias st =
  if accept_kw st "AS" then Some (ident st)
  else
    match peek st with
    | Lexer.Ident id when not (is_reserved id) ->
      advance st;
      Some id
    | _ -> None

and parse_table_ref st =
  let name = ident st in
  let alias = parse_alias st in
  { tbl_name = name; tbl_alias = alias }

and parse_select st =
  let core = parse_select_core st in
  (* UNION / UNION ALL chains; ORDER BY/LIMIT of the last member apply to
     the whole compound *)
  let rec unions acc =
    if is_kw st "UNION" then begin
      advance st;
      let all = accept_kw st "ALL" in
      let next = parse_select_core st in
      unions ((all, next) :: acc)
    end
    else List.rev acc
  in
  let chain = unions [] in
  if chain = [] then core
  else begin
    (* move trailing ORDER BY / LIMIT of the last member to the compound *)
    match List.rev chain with
    | (all_last, last) :: rev_rest ->
      let chain =
        List.rev
          ((all_last, { last with order_by = []; limit = None; offset = None }) :: rev_rest)
      in
      { core with
        union_with = chain;
        order_by = last.order_by;
        limit = last.limit;
        offset = last.offset }
    | [] -> core
  end

and parse_select_core st =
  expect_kw st "SELECT";
  let as_of =
    if is_kw st "AS" && kw_eq "OF" (peek2 st) then begin
      advance st;
      advance st;
      Some (parse_unary st)
    end
    else None
  in
  let distinct = if accept_kw st "DISTINCT" then true else (ignore (accept_kw st "ALL"); false) in
  let items =
    let rec go acc =
      let item =
        if peek st = Lexer.Star then begin
          advance st;
          Star
        end
        else
          match peek st, peek2 st, peek3 st with
          | Lexer.Ident t, Lexer.Dot, Lexer.Star ->
            advance st;
            advance st;
            advance st;
            Table_star t
          | _ ->
            let e = parse_expr st in
            let alias = parse_alias st in
            Sel_expr (e, alias)
      in
      if peek st = Lexer.Comma then begin
        advance st;
        go (item :: acc)
      end
      else List.rev (item :: acc)
    in
    go []
  in
  let from =
    if accept_kw st "FROM" then begin
      let first = parse_table_ref st in
      let rec joins acc =
        if peek st = Lexer.Comma then begin
          advance st;
          let tr = parse_table_ref st in
          joins ({ join_table = tr; join_on = None; join_kind = Join_inner } :: acc)
        end
        else if is_kw st "JOIN" || is_kw st "INNER" || is_kw st "CROSS" || is_kw st "LEFT"
        then begin
          let kind =
            if accept_kw st "LEFT" then begin
              ignore (accept_kw st "OUTER");
              Join_left
            end
            else begin
              ignore (accept_kw st "INNER");
              ignore (accept_kw st "CROSS");
              Join_inner
            end
          in
          expect_kw st "JOIN";
          let tr = parse_table_ref st in
          let on = if accept_kw st "ON" then Some (parse_expr st) else None in
          if kind = Join_left && on = None then error st "LEFT JOIN requires an ON condition";
          joins ({ join_table = tr; join_on = on; join_kind = kind } :: acc)
        end
        else List.rev acc
      in
      Some (first, joins [])
    end
    else None
  in
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec go acc =
        let e = parse_expr st in
        if peek st = Lexer.Comma then begin
          advance st;
          go (e :: acc)
        end
        else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_expr st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec go acc =
        let e = parse_expr st in
        let desc = if accept_kw st "DESC" then true else (ignore (accept_kw st "ASC"); false) in
        if peek st = Lexer.Comma then begin
          advance st;
          go ({ ord_expr = e; ord_desc = desc } :: acc)
        end
        else List.rev ({ ord_expr = e; ord_desc = desc } :: acc)
      in
      go []
    end
    else []
  in
  let limit = if accept_kw st "LIMIT" then Some (parse_expr st) else None in
  let offset = if accept_kw st "OFFSET" then Some (parse_expr st) else None in
  { as_of; distinct; items; from; where; group_by; having; order_by; limit; offset;
    union_with = [] }

(* --- statements ------------------------------------------------------ *)

and parse_stmt st =
  if is_kw st "SELECT" then Select (parse_select st)
  else if is_kw st "EXPLAIN" then begin
    advance st;
    if accept_kw st "PROFILE" then Explain_profile (parse_select st)
    else if accept_kw st "ANALYZE" then Explain_analyze (parse_select st)
    else if accept_kw st "LINT" then Explain_lint (parse_stmt st)
    else begin
      ignore (accept_kw st "QUERY");
      ignore (accept_kw st "PLAN");
      Explain (parse_select st)
    end
  end
  else if accept_kw st "INSERT" then begin
    expect_kw st "INTO";
    let table = ident st in
    let columns =
      if peek st = Lexer.Lparen && not (kw_eq "SELECT" (peek2 st)) then begin
        advance st;
        let rec go acc =
          let c = ident st in
          if peek st = Lexer.Comma then begin
            advance st;
            go (c :: acc)
          end
          else List.rev (c :: acc)
        in
        let cols = go [] in
        expect st Lexer.Rparen;
        Some cols
      end
      else None
    in
    if accept_kw st "VALUES" then begin
      let parse_row () =
        expect st Lexer.Lparen;
        let rec go acc =
          let e = parse_expr st in
          if peek st = Lexer.Comma then begin
            advance st;
            go (e :: acc)
          end
          else List.rev (e :: acc)
        in
        let row = go [] in
        expect st Lexer.Rparen;
        row
      in
      let rec rows acc =
        let r = parse_row () in
        if peek st = Lexer.Comma then begin
          advance st;
          rows (r :: acc)
        end
        else List.rev (r :: acc)
      in
      Insert { table; columns; values = rows []; from_select = None }
    end
    else Insert { table; columns; values = []; from_select = Some (parse_select st) }
  end
  else if accept_kw st "DELETE" then begin
    expect_kw st "FROM";
    let table = ident st in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Delete { table; where }
  end
  else if accept_kw st "UPDATE" then begin
    let table = ident st in
    expect_kw st "SET";
    let rec sets acc =
      let c = ident st in
      expect st Lexer.Eq;
      let e = parse_expr st in
      if peek st = Lexer.Comma then begin
        advance st;
        sets ((c, e) :: acc)
      end
      else List.rev ((c, e) :: acc)
    in
    let sets = sets [] in
    let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
    Update { table; sets; where }
  end
  else if accept_kw st "CREATE" then begin
    ignore (accept_kw st "UNIQUE");
    ignore (accept_kw st "TEMP");
    ignore (accept_kw st "TEMPORARY");
    if accept_kw st "TABLE" then begin
      let if_not_exists =
        if is_kw st "IF" then begin
          advance st;
          expect_kw st "NOT";
          expect_kw st "EXISTS";
          true
        end
        else false
      in
      let table = ident st in
      if accept_kw st "AS" then
        Create_table { table; cols = []; if_not_exists; as_select = Some (parse_select st) }
      else begin
        expect st Lexer.Lparen;
        let parse_col () =
          let name = ident st in
          (* consume type tokens: idents and (n[,m]) up to , or ) *)
          let buf = Buffer.create 8 in
          let rec go () =
            match peek st with
            | Lexer.Ident s when not (is_reserved s) ->
              advance st;
              if Buffer.length buf > 0 then Buffer.add_char buf ' ';
              Buffer.add_string buf s;
              go ()
            | Lexer.Lparen ->
              advance st;
              let rec inner () =
                match peek st with
                | Lexer.Rparen ->
                  advance st
                | _ ->
                  advance st;
                  inner ()
              in
              inner ();
              go ()
            | _ -> ()
          in
          go ();
          { col_name = name; col_type = Buffer.contents buf }
        in
        let rec cols acc =
          let c = parse_col () in
          if peek st = Lexer.Comma then begin
            advance st;
            cols (c :: acc)
          end
          else List.rev (c :: acc)
        in
        let cols = cols [] in
        expect st Lexer.Rparen;
        Create_table { table; cols; if_not_exists; as_select = None }
      end
    end
    else if accept_kw st "INDEX" then begin
      let if_not_exists =
        if is_kw st "IF" then begin
          advance st;
          expect_kw st "NOT";
          expect_kw st "EXISTS";
          true
        end
        else false
      in
      let index = ident st in
      expect_kw st "ON";
      let table = ident st in
      expect st Lexer.Lparen;
      let rec go acc =
        let c = ident st in
        if peek st = Lexer.Comma then begin
          advance st;
          go (c :: acc)
        end
        else List.rev (c :: acc)
      in
      let columns = go [] in
      expect st Lexer.Rparen;
      Create_index { index; table; columns; if_not_exists }
    end
    else error st "expected TABLE or INDEX after CREATE"
  end
  else if accept_kw st "DROP" then begin
    if accept_kw st "TABLE" then begin
      let if_exists = if is_kw st "IF" then (advance st; expect_kw st "EXISTS"; true) else false in
      Drop_table { table = ident st; if_exists }
    end
    else if accept_kw st "INDEX" then begin
      let if_exists = if is_kw st "IF" then (advance st; expect_kw st "EXISTS"; true) else false in
      Drop_index { index = ident st; if_exists }
    end
    else error st "expected TABLE or INDEX after DROP"
  end
  else if accept_kw st "BEGIN" then begin
    ignore (accept_kw st "TRANSACTION");
    Begin_txn
  end
  else if accept_kw st "COMMIT" then begin
    let with_snapshot =
      if is_kw st "WITH" then begin
        advance st;
        expect_kw st "SNAPSHOT";
        true
      end
      else false
    in
    Commit { with_snapshot }
  end
  else if accept_kw st "ROLLBACK" then Rollback
  else if accept_kw st "ANALYZE" then begin
    expect_kw st "ARCHIVE";
    Analyze_archive
  end
  else if accept_kw st "VACUUM" then begin
    (* VACUUM SNAPSHOTS [OLDER THAN n | KEEPING LAST n] [DRY RUN];
       bare VACUUM SNAPSHOTS drops everything but the newest. *)
    expect_kw st "SNAPSHOTS";
    let older_than, keeping_last =
      if is_kw st "OLDER" then begin
        advance st;
        expect_kw st "THAN";
        (Some (parse_expr st), None)
      end
      else if is_kw st "KEEPING" then begin
        advance st;
        expect_kw st "LAST";
        (None, Some (parse_expr st))
      end
      else (None, None)
    in
    let dry_run =
      if is_kw st "DRY" then begin
        advance st;
        expect_kw st "RUN";
        true
      end
      else false
    in
    Vacuum_snapshots { older_than; keeping_last; dry_run }
  end
  else if accept_kw st "CHECKPOINT" then Checkpoint
  else if accept_kw st "PRAGMA" then begin
    (* PRAGMA name [= value]; the engine receives "name" or "name=value"
       as one string, so the statement type stays a plain Pragma. *)
    let name = ident st in
    if peek st = Lexer.Eq then begin
      advance st;
      let value =
        match peek st with
        | Lexer.Ident s ->
          advance st;
          s
        | Lexer.Int_lit n ->
          advance st;
          string_of_int n
        | t -> error st "expected pragma value but found %s" (Lexer.token_to_string t)
      in
      Pragma (name ^ "=" ^ value)
    end
    else Pragma name
  end
  else error st "unexpected token %s at start of statement" (Lexer.token_to_string (peek st))

let state_of (sql : string) : state =
  let spanned = Lexer.tokenize_pos sql in
  { toks = Array.of_list (List.map fst spanned);
    poss = Array.of_list (List.map snd spanned);
    pos = 0;
    nparams = 0 }

(* Parse a single statement; trailing semicolon optional. *)
let parse_one (sql : string) : stmt =
  let st = state_of sql in
  let s = parse_stmt st in
  while peek st = Lexer.Semi do advance st done;
  if peek st <> Lexer.Eof then
    error st "trailing input after statement: %s" (Lexer.token_to_string (peek st));
  s

(* Parse a script of semicolon-separated statements. *)
let parse_many (sql : string) : stmt list =
  let st = state_of sql in
  let rec go acc =
    while peek st = Lexer.Semi do advance st done;
    if peek st = Lexer.Eof then List.rev acc else go (parse_stmt st :: acc)
  in
  go []
