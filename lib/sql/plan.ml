(* Typed physical-plan IR.

   A [Plan.t] is the output of the planner and the input of the
   executor: a self-contained description of how a SELECT runs — access
   paths (heap scan / index search with bounds), join strategy per
   joined table (index probe, automatic hash index, materialized nested
   loop, left outer hash), filters, projection, aggregation, and
   sort/limit.  All value positions hold expressions rather than
   constants so that one compiled plan can be re-executed with different
   parameter bindings ([bind]) and against different snapshot
   environments; nothing in a plan refers to mutable executor state.

   Expression resolution conventions: expressions stored in the plan
   are positional ([Ast.Colidx]) — "local" means resolved against the
   columns of a single table, "combined" against the concatenation of
   all tables joined so far (in FROM order). *)

module R = Storage.Record
open Ast

(* A planned source table: catalog entry + alias + offset of its first
   column in the combined row. *)
type source = {
  s_tbl : Catalog.table;
  s_alias : string;
  s_offset : int;
}

(* Sargable bound on the leading column of an index: column position in
   the table, comparison, value expression.  The value expression is
   row-independent (a literal, parameter or constant computation) and is
   evaluated at execution time. *)
type bound = int * binop * expr

type access =
  | Seq_scan
  | Index_search of { ix : Catalog.index; bounds : bound list }

(* First pipeline stage: the driving table. [sc_filters] are local. *)
type scan = {
  sc_src : source;
  sc_access : access;
  sc_filters : expr list;
}

(* Join strategy for one joined table.  [equi] pairs are
   (combined-resolved left expr, local-resolved right expr). *)
type join =
  | Nested_loop of { filters : expr list }
      (* no equi keys: materialized filtered inner, cross/theta loop *)
  | Hash_join of { equi : (expr * expr) list; filters : expr list }
      (* automatic ephemeral hash index on the inner side *)
  | Index_probe of { ix : Catalog.index; equi : (expr * expr) list; filters : expr list }
      (* persistent single-column index probe on the join key *)
  | Left_hash of {
      equi : (expr * expr) list;
      inner_filters : expr list;
      residual : expr list; (* combined-resolved incl. this table; NULL-padded rows bypass *)
    }

type join_step = { j_src : source; j_plan : join }

type from_plan =
  | From_none (* SELECT without FROM *)
  | From_scan of {
      first : scan;
      joins : join_step list;
      residual : expr list; (* combined-resolved, applied after all joins *)
    }

type order_key =
  | Out_col of int (* sort by output column position *)
  | Key_expr of expr (* sort by combined-resolved expression *)

(* One compiled SELECT core (a UNION member, or the whole statement). *)
type core = {
  c_from : from_plan;
  c_header : string array;
  c_out : expr list; (* output expressions, Colidx/Aggref-resolved *)
  c_aggs : agg list; (* aggregate slots, arguments resolved *)
  c_has_agg : bool;
  c_group : expr list;
  c_having : expr option;
  c_order : (order_key * bool) list; (* key, descending *)
  c_distinct : bool;
  c_limit : expr option;
  c_offset : expr option;
}

type t = {
  p_src : select; (* original AST (re-planning for AS OF members, EXPLAIN) *)
  p_as_of : expr option;
  p_core : core;
  p_members : (bool * t) list; (* UNION (false) / UNION ALL (true) arms *)
  p_corder : (int * bool) list; (* compound ORDER BY: output position, desc *)
  p_climit : expr option;
  p_coffset : expr option;
}

(* A cache entry: the plan plus the catalog generation it was built
   against.  A lookup whose generation differs is stale. *)
type cached = { cp_plan : t; cp_gen : int }

(* --- mapping over the expressions of a plan -------------------------- *)

let map_access f = function
  | Seq_scan -> Seq_scan
  | Index_search { ix; bounds } ->
    Index_search { ix; bounds = List.map (fun (i, op, e) -> (i, op, f e)) bounds }

let map_join f = function
  | Nested_loop { filters } -> Nested_loop { filters = List.map f filters }
  | Hash_join { equi; filters } ->
    Hash_join
      { equi = List.map (fun (a, b) -> (f a, f b)) equi; filters = List.map f filters }
  | Index_probe { ix; equi; filters } ->
    Index_probe
      { ix; equi = List.map (fun (a, b) -> (f a, f b)) equi; filters = List.map f filters }
  | Left_hash { equi; inner_filters; residual } ->
    Left_hash
      { equi = List.map (fun (a, b) -> (f a, f b)) equi;
        inner_filters = List.map f inner_filters;
        residual = List.map f residual }

let map_from f = function
  | From_none -> From_none
  | From_scan { first; joins; residual } ->
    From_scan
      { first =
          { first with
            sc_access = map_access f first.sc_access;
            sc_filters = List.map f first.sc_filters };
        joins = List.map (fun js -> { js with j_plan = map_join f js.j_plan }) joins;
        residual = List.map f residual }

(* Apply [f] to every expression slot of a core. *)
let map_core f (c : core) : core =
  { c with
    c_from = map_from f c.c_from;
    c_out = List.map f c.c_out;
    c_aggs = List.map (fun a -> { a with agg_arg = Option.map f a.agg_arg }) c.c_aggs;
    c_group = List.map f c.c_group;
    c_having = Option.map f c.c_having;
    c_order =
      List.map
        (fun (k, d) -> ((match k with Out_col _ as k -> k | Key_expr e -> Key_expr (f e)), d))
        c.c_order;
    c_limit = Option.map f c.c_limit;
    c_offset = Option.map f c.c_offset }

let rec map_exprs f (p : t) : t =
  { p with
    p_as_of = Option.map f p.p_as_of;
    p_core = map_core f p.p_core;
    p_members = List.map (fun (all, m) -> (all, map_exprs f m)) p.p_members;
    p_climit = Option.map f p.p_climit;
    p_coffset = Option.map f p.p_coffset }

(* --- parameter binding ----------------------------------------------- *)

(* Substitute [Param i] with the i-th binding, everywhere including
   inside subquery expressions. *)
let bind_expr (params : R.value array) (e : expr) : expr =
  if Array.length params = 0 then e
  else
    Expr.map_deep
      (function
        | Param i ->
          if i >= Array.length params then
            raise (Invalid_argument (Printf.sprintf "missing binding for parameter ?%d" (i + 1)))
          else Lit params.(i)
        | e -> e)
      e

let bind (params : R.value array) (p : t) : t =
  if Array.length params = 0 then p else map_exprs (bind_expr params) p

(* --- pretty-printing -------------------------------------------------- *)

(* Render the plan as EXPLAIN QUERY PLAN lines (SQLite-flavored). *)
let render (p : t) : string list =
  let core_lines (c : core) =
    match c.c_from with
    | From_none -> []
    | From_scan { first; joins; _ } ->
      let scan_line =
        match first.sc_access with
        | Index_search { ix; _ } ->
          Printf.sprintf "SEARCH %s USING INDEX %s" first.sc_src.s_tbl.Catalog.tname
            ix.Catalog.iname
        | Seq_scan ->
          Printf.sprintf "SCAN %s%s" first.sc_src.s_tbl.Catalog.tname
            (if first.sc_src.s_tbl.Catalog.theap < 0 then " (virtual)" else "")
      in
      let join_line js =
        let name = js.j_src.s_tbl.Catalog.tname in
        match js.j_plan with
        | Nested_loop _ -> Printf.sprintf "SCAN %s (nested loop)" name
        | Hash_join _ -> Printf.sprintf "JOIN %s USING AUTOMATIC HASH INDEX" name
        | Index_probe { ix; _ } ->
          Printf.sprintf "SEARCH %s USING INDEX %s (join)" name ix.Catalog.iname
        | Left_hash { equi = []; _ } -> Printf.sprintf "LEFT JOIN %s (materialized scan)" name
        | Left_hash _ -> Printf.sprintf "LEFT JOIN %s USING AUTOMATIC HASH INDEX" name
      in
      scan_line :: List.map join_line joins
  in
  let lines = core_lines p.p_core in
  let lines =
    if p.p_members = [] then lines
    else lines @ [ Printf.sprintf "COMPOUND (%d UNION members)" (List.length p.p_members) ]
  in
  lines
  @ (if p.p_core.c_group <> [] then [ "USE TEMP B-TREE FOR GROUP BY" ] else [])
  @ (if p.p_core.c_distinct then [ "USE TEMP B-TREE FOR DISTINCT" ] else [])
  @
  if p.p_core.c_order <> [] || p.p_corder <> [] then [ "USE TEMP B-TREE FOR ORDER BY" ]
  else []
