(* Typed physical-plan IR.

   A [Plan.t] is the output of the planner and the input of the
   executor: a self-contained description of how a SELECT runs — access
   paths (heap scan / index search with bounds), join strategy per
   joined table (index probe, automatic hash index, materialized nested
   loop, left outer hash), filters, projection, aggregation, and
   sort/limit.  All value positions hold expressions rather than
   constants so that one compiled plan can be re-executed with different
   parameter bindings ([bind]) and against different snapshot
   environments; nothing in a plan refers to mutable executor state.

   Expression resolution conventions: expressions stored in the plan
   are positional ([Ast.Colidx]) — "local" means resolved against the
   columns of a single table, "combined" against the concatenation of
   all tables joined so far (in FROM order). *)

module R = Storage.Record
open Ast

(* A planned source table: catalog entry + alias + offset of its first
   column in the combined row. *)
type source = {
  s_tbl : Catalog.table;
  s_alias : string;
  s_offset : int;
}

(* --- operator instrumentation ----------------------------------------

   Every pipeline operator of a plan carries a stable id and a mutable
   instrumentation slot.  Slots are filled by the executor only when the
   environment's [analyze] flag is set; otherwise they stay untouched
   (the zero-overhead path).  Because plan copies made by [map_core] /
   [bind] are shallow record updates, the nested mutable slots are
   shared between the cached plan and every bound copy — actuals
   observed while executing a bound copy are readable off the original,
   and repeated executions (prepared statements, RQL iterations)
   accumulate into the same slots until [reset_actuals]. *)

type opstats = {
  mutable o_loops : int;      (* times the operator was started *)
  mutable o_rows : int;       (* rows produced (emitted downstream) *)
  mutable o_elapsed_s : float;(* inclusive of upstream stages, like pg *)
  mutable o_pages : int;      (* db + pagelog page reads, inclusive *)
  mutable o_probes : int;     (* hash/index lookups driven by this op *)
}

type op = { op_id : int; op_slot : opstats }

let fresh_slot () = { o_loops = 0; o_rows = 0; o_elapsed_s = 0.; o_pages = 0; o_probes = 0 }

(* A new, unnumbered operator; [number_ops] assigns the stable ids. *)
let mk_op () = { op_id = 0; op_slot = fresh_slot () }

(* Sargable bound on the leading column of an index: column position in
   the table, comparison, value expression.  The value expression is
   row-independent (a literal, parameter or constant computation) and is
   evaluated at execution time. *)
type bound = int * binop * expr

type access =
  | Seq_scan
  | Index_search of { ix : Catalog.index; bounds : bound list }

(* First pipeline stage: the driving table. [sc_filters] are local. *)
type scan = {
  sc_src : source;
  sc_access : access;
  sc_filters : expr list;
  sc_op : op;
}

(* Join strategy for one joined table.  [equi] pairs are
   (combined-resolved left expr, local-resolved right expr). *)
type join =
  | Nested_loop of { filters : expr list }
      (* no equi keys: materialized filtered inner, cross/theta loop *)
  | Hash_join of { equi : (expr * expr) list; filters : expr list }
      (* automatic ephemeral hash index on the inner side *)
  | Index_probe of { ix : Catalog.index; equi : (expr * expr) list; filters : expr list }
      (* persistent single-column index probe on the join key *)
  | Left_hash of {
      equi : (expr * expr) list;
      inner_filters : expr list;
      residual : expr list; (* combined-resolved incl. this table; NULL-padded rows bypass *)
    }

type join_step = { j_src : source; j_plan : join; j_op : op }

type from_plan =
  | From_none (* SELECT without FROM *)
  | From_scan of {
      first : scan;
      joins : join_step list;
      residual : expr list; (* combined-resolved, applied after all joins *)
    }

type order_key =
  | Out_col of int (* sort by output column position *)
  | Key_expr of expr (* sort by combined-resolved expression *)

(* One compiled SELECT core (a UNION member, or the whole statement). *)
type core = {
  c_from : from_plan;
  c_header : string array;
  c_out : expr list; (* output expressions, Colidx/Aggref-resolved *)
  c_aggs : agg list; (* aggregate slots, arguments resolved *)
  c_has_agg : bool;
  c_group : expr list;
  c_having : expr option;
  c_order : (order_key * bool) list; (* key, descending *)
  c_distinct : bool;
  c_limit : expr option;
  c_offset : expr option;
  (* Set by the optimizer when a WHERE conjunct is proven always-false
     (or NULL): the row producer yields nothing, but the rest of the
     pipeline still runs so aggregates over zero rows stay correct. *)
  c_empty : bool;
  (* Instrumentation slots for the non-FROM pipeline stages.  Always
     present; only the ones a core actually uses show up in actuals. *)
  c_filter_op : op; (* post-join residual filter *)
  c_agg_op : op;    (* grouping / aggregation (rows = groups out) *)
  c_sort_op : op;   (* sort / distinct buffer *)
  c_out_op : op;    (* final output (post limit/offset) *)
}

(* What the optimizer did to (and concluded about) a plan.  Attached by
   [Opt.optimize]; [None] means the plan never went through the pass
   (PRAGMA optimize=off, or a bare [Planner.plan] call). *)
type opt_info = {
  oi_folds : int;           (* expressions replaced by literals *)
  oi_pruned : int;          (* always-true/false predicate conjuncts removed *)
  oi_empty : bool;          (* an always-false conjunct emptied the plan *)
  oi_invariant : bool;      (* snapshot-invariant: no params, no table data *)
  oi_delta_safe : bool;     (* eligible for delta-driven incremental RQL *)
  oi_delta_reason : string; (* "" when delta-safe, else why not *)
  oi_notes : (int * string) list; (* op_id -> per-node annotation *)
}

type t = {
  p_src : select; (* original AST (re-planning for AS OF members, EXPLAIN) *)
  p_as_of : expr option;
  p_core : core;
  p_members : (bool * t) list; (* UNION (false) / UNION ALL (true) arms *)
  p_corder : (int * bool) list; (* compound ORDER BY: output position, desc *)
  p_climit : expr option;
  p_coffset : expr option;
  p_opt : opt_info option;
}

(* A cache entry: the plan plus the catalog generation it was built
   against.  A lookup whose generation differs is stale. *)
type cached = { cp_plan : t; cp_gen : int }

(* --- mapping over the expressions of a plan -------------------------- *)

let map_access f = function
  | Seq_scan -> Seq_scan
  | Index_search { ix; bounds } ->
    Index_search { ix; bounds = List.map (fun (i, op, e) -> (i, op, f e)) bounds }

let map_join f = function
  | Nested_loop { filters } -> Nested_loop { filters = List.map f filters }
  | Hash_join { equi; filters } ->
    Hash_join
      { equi = List.map (fun (a, b) -> (f a, f b)) equi; filters = List.map f filters }
  | Index_probe { ix; equi; filters } ->
    Index_probe
      { ix; equi = List.map (fun (a, b) -> (f a, f b)) equi; filters = List.map f filters }
  | Left_hash { equi; inner_filters; residual } ->
    Left_hash
      { equi = List.map (fun (a, b) -> (f a, f b)) equi;
        inner_filters = List.map f inner_filters;
        residual = List.map f residual }

let map_from f = function
  | From_none -> From_none
  | From_scan { first; joins; residual } ->
    From_scan
      { first =
          { first with
            sc_access = map_access f first.sc_access;
            sc_filters = List.map f first.sc_filters };
        joins = List.map (fun js -> { js with j_plan = map_join f js.j_plan }) joins;
        residual = List.map f residual }

(* Apply [f] to every expression slot of a core. *)
let map_core f (c : core) : core =
  { c with
    c_from = map_from f c.c_from;
    c_out = List.map f c.c_out;
    c_aggs = List.map (fun a -> { a with agg_arg = Option.map f a.agg_arg }) c.c_aggs;
    c_group = List.map f c.c_group;
    c_having = Option.map f c.c_having;
    c_order =
      List.map
        (fun (k, d) -> ((match k with Out_col _ as k -> k | Key_expr e -> Key_expr (f e)), d))
        c.c_order;
    c_limit = Option.map f c.c_limit;
    c_offset = Option.map f c.c_offset }

let rec map_exprs f (p : t) : t =
  { p with
    p_as_of = Option.map f p.p_as_of;
    p_core = map_core f p.p_core;
    p_members = List.map (fun (all, m) -> (all, map_exprs f m)) p.p_members;
    p_climit = Option.map f p.p_climit;
    p_coffset = Option.map f p.p_coffset }

(* --- parameter binding ----------------------------------------------- *)

(* Substitute [Param i] with the i-th binding, everywhere including
   inside subquery expressions. *)
let bind_expr (params : R.value array) (e : expr) : expr =
  if Array.length params = 0 then e
  else
    Expr.map_deep
      (function
        | Param i ->
          if i >= Array.length params then
            raise (Invalid_argument (Printf.sprintf "missing binding for parameter ?%d" (i + 1)))
          else Lit params.(i)
        | e -> e)
      e

let bind (params : R.value array) (p : t) : t =
  if Array.length params = 0 then p else map_exprs (bind_expr params) p

(* --- operator numbering and actuals ----------------------------------- *)

(* Visit every operator of the plan, pre-order (scan, joins in FROM
   order, filter, aggregate, sort, output; then UNION members). *)
let iter_ops (f : op -> unit) (p : t) : unit =
  let core (c : core) =
    (match c.c_from with
    | From_none -> ()
    | From_scan { first; joins; _ } ->
      f first.sc_op;
      List.iter (fun js -> f js.j_op) joins);
    f c.c_filter_op;
    f c.c_agg_op;
    f c.c_sort_op;
    f c.c_out_op
  in
  let rec go p =
    core p.p_core;
    List.iter (fun (_, m) -> go m) p.p_members
  in
  go p

(* Assign stable pre-order operator ids (1-based) across the whole plan,
   including UNION members.  Called once by the planner on a freshly
   built plan; copies made later ([bind], subquery expansion) share the
   numbered ops. *)
let number_ops (p : t) : t =
  let next = ref 0 in
  let renum op =
    incr next;
    { op_id = !next; op_slot = op.op_slot }
  in
  let renum_core (c : core) =
    let c_from =
      match c.c_from with
      | From_none -> From_none
      | From_scan { first; joins; residual } ->
        let first = { first with sc_op = renum first.sc_op } in
        let joins = List.map (fun js -> { js with j_op = renum js.j_op }) joins in
        From_scan { first; joins; residual }
    in
    { c with
      c_from;
      c_filter_op = renum c.c_filter_op;
      c_agg_op = renum c.c_agg_op;
      c_sort_op = renum c.c_sort_op;
      c_out_op = renum c.c_out_op }
  in
  let rec go p =
    let core = renum_core p.p_core in
    let members = List.map (fun (all, m) -> (all, go m)) p.p_members in
    { p with p_core = core; p_members = members }
  in
  go p

let reset_slot s =
  s.o_loops <- 0;
  s.o_rows <- 0;
  s.o_elapsed_s <- 0.;
  s.o_pages <- 0;
  s.o_probes <- 0

(* Zero every instrumentation slot of the plan (all copies share them). *)
let reset_actuals (p : t) : unit = iter_ops (fun op -> reset_slot op.op_slot) p

(* A materialized snapshot of one operator's slot, paired with the
   planner-choice line it annotates. *)
type op_actual = {
  a_id : int;
  a_kind : string; (* scan | search | nested_loop | hash_join | index_probe
                      | left_hash | filter | aggregate | sort | output *)
  a_label : string;
  a_loops : int;
  a_rows : int;
  a_elapsed_s : float;
  a_pages : int;
  a_probes : int;
}

(* Result of one instrumented statement execution, stored on the Db
   handle by EXPLAIN ANALYZE for structural consumption. *)
type analysis = {
  az_sql : string;
  az_rows : int;            (* rows the statement returned *)
  az_elapsed_s : float;     (* wall clock of the instrumented run *)
  az_snapshot : int option; (* snapshot id when executed under AS OF *)
  az_ops : op_actual list;
}

let op_actual_to_json (a : op_actual) =
  Obs.Json.Obj
    [ ("id", Obs.Json.Int a.a_id);
      ("kind", Obs.Json.Str a.a_kind);
      ("label", Obs.Json.Str a.a_label);
      ("rows", Obs.Json.Int a.a_rows);
      ("loops", Obs.Json.Int a.a_loops);
      ("time_ms", Obs.Json.Float (a.a_elapsed_s *. 1000.));
      ("pages", Obs.Json.Int a.a_pages);
      ("probes", Obs.Json.Int a.a_probes) ]

let analysis_to_json (az : analysis) =
  Obs.Json.Obj
    [ ("sql", Obs.Json.Str az.az_sql);
      ("rows", Obs.Json.Int az.az_rows);
      ("elapsed_ms", Obs.Json.Float (az.az_elapsed_s *. 1000.));
      ("snapshot",
       match az.az_snapshot with Some sid -> Obs.Json.Int sid | None -> Obs.Json.Null);
      ("ops", Obs.Json.List (List.map op_actual_to_json az.az_ops)) ]

(* --- pretty-printing -------------------------------------------------- *)

let scan_line (first : scan) =
  match first.sc_access with
  | Index_search { ix; _ } ->
    Printf.sprintf "SEARCH %s USING INDEX %s" first.sc_src.s_tbl.Catalog.tname ix.Catalog.iname
  | Seq_scan ->
    Printf.sprintf "SCAN %s%s" first.sc_src.s_tbl.Catalog.tname
      (if first.sc_src.s_tbl.Catalog.theap < 0 then " (virtual)" else "")

let join_line (js : join_step) =
  let name = js.j_src.s_tbl.Catalog.tname in
  match js.j_plan with
  | Nested_loop _ -> Printf.sprintf "SCAN %s (nested loop)" name
  | Hash_join _ -> Printf.sprintf "JOIN %s USING AUTOMATIC HASH INDEX" name
  | Index_probe { ix; _ } ->
    Printf.sprintf "SEARCH %s USING INDEX %s (join)" name ix.Catalog.iname
  | Left_hash { equi = []; _ } -> Printf.sprintf "LEFT JOIN %s (materialized scan)" name
  | Left_hash _ -> Printf.sprintf "LEFT JOIN %s USING AUTOMATIC HASH INDEX" name

(* The operators a plan actually exercises, in pipeline order, each with
   its kind tag and the planner-choice line it annotates.  Unused slots
   (e.g. the aggregate op of a non-aggregating core) are omitted. *)
let labeled_ops (p : t) : (op * string * string) list =
  let core (c : core) =
    let from_ops =
      match c.c_from with
      | From_none -> []
      | From_scan { first; joins; residual } ->
        let scan_kind =
          match first.sc_access with Seq_scan -> "scan" | Index_search _ -> "search"
        in
        let join_kind js =
          match js.j_plan with
          | Nested_loop _ -> "nested_loop"
          | Hash_join _ -> "hash_join"
          | Index_probe _ -> "index_probe"
          | Left_hash _ -> "left_hash"
        in
        ((first.sc_op, scan_kind, scan_line first)
         :: List.map (fun js -> (js.j_op, join_kind js, join_line js)) joins)
        @
        if residual = [] then []
        else
          [ (c.c_filter_op, "filter",
             Printf.sprintf "FILTER (%d residual terms)" (List.length residual)) ]
    in
    from_ops
    @ (if not c.c_has_agg then []
       else
         [ (c.c_agg_op, "aggregate",
            if c.c_group = [] then "AGGREGATE"
            else Printf.sprintf "AGGREGATE (GROUP BY %d keys)" (List.length c.c_group)) ])
    @ (if c.c_order = [] && not c.c_distinct then []
       else
         [ (c.c_sort_op, "sort",
            match (c.c_distinct, c.c_order <> []) with
            | true, true -> "SORT (DISTINCT + ORDER BY)"
            | true, false -> "SORT (DISTINCT)"
            | _ -> "SORT (ORDER BY)") ])
    @ [ (c.c_out_op, "output", "OUTPUT") ]
  in
  let rec go p = core p.p_core @ List.concat_map (fun (_, m) -> go m) p.p_members in
  go p

(* Materialize the slots of every exercised operator. *)
let actuals (p : t) : op_actual list =
  List.map
    (fun (op, kind, label) ->
      let s = op.op_slot in
      { a_id = op.op_id;
        a_kind = kind;
        a_label = label;
        a_loops = s.o_loops;
        a_rows = s.o_rows;
        a_elapsed_s = s.o_elapsed_s;
        a_pages = s.o_pages;
        a_probes = s.o_probes })
    (labeled_ops p)

let actual_suffix (a : op_actual) =
  Printf.sprintf "(op %d: rows=%d loops=%d%s time=%.3fms pages=%d)" a.a_id a.a_rows a.a_loops
    (if a.a_probes > 0 then Printf.sprintf " probes=%d" a.a_probes else "")
    (a.a_elapsed_s *. 1000.) a.a_pages

(* Optimizer trailer lines: what the pass did, and the delta-safety
   verdict ROADMAP item 4 consumes.  Empty when the plan never went
   through the optimizer. *)
let opt_trailer (p : t) : string list =
  match p.p_opt with
  | None -> []
  | Some oi ->
    (if oi.oi_folds = 0 && oi.oi_pruned = 0 && not oi.oi_invariant then []
     else
       [ Printf.sprintf "OPT (folded=%d pruned=%d%s)" oi.oi_folds oi.oi_pruned
           (if oi.oi_invariant then " invariant" else "") ])
    @ [ (if oi.oi_delta_safe then "DELTA-SAFE: yes"
         else Printf.sprintf "DELTA-SAFE: no (%s)" oi.oi_delta_reason) ]

(* Per-node optimizer annotation, keyed by the operator's stable id. *)
let opt_note (p : t) (id : int) : string =
  match p.p_opt with
  | None -> ""
  | Some oi ->
    (match List.assoc_opt id oi.oi_notes with Some n -> " [" ^ n ^ "]" | None -> "")

(* EXPLAIN ANALYZE rendering: each planner-choice line annotated with
   the actuals recorded during the instrumented execution. *)
let render_analyzed (p : t) : string list =
  List.map
    (fun a -> Printf.sprintf "%-44s %s%s" a.a_label (actual_suffix a) (opt_note p a.a_id))
    (actuals p)
  @ opt_trailer p

(* Render the plan as EXPLAIN QUERY PLAN lines (SQLite-flavored). *)
let render (p : t) : string list =
  let core_lines (c : core) =
    if c.c_empty then [ "EMPTY SCAN (always-false WHERE)" ]
    else
      match c.c_from with
      | From_none -> []
      | From_scan { first; joins; _ } ->
        (scan_line first ^ opt_note p first.sc_op.op_id)
        :: List.map (fun js -> join_line js ^ opt_note p js.j_op.op_id) joins
  in
  let lines = core_lines p.p_core in
  let lines =
    if p.p_members = [] then lines
    else lines @ [ Printf.sprintf "COMPOUND (%d UNION members)" (List.length p.p_members) ]
  in
  lines
  @ (if p.p_core.c_group <> [] then [ "USE TEMP B-TREE FOR GROUP BY" ] else [])
  @ (if p.p_core.c_distinct then [ "USE TEMP B-TREE FOR DISTINCT" ] else [])
  @ (if p.p_core.c_order <> [] || p.p_corder <> [] then [ "USE TEMP B-TREE FOR ORDER BY" ]
     else [])
  @ opt_trailer p
