(* Query planning: translate a SELECT AST into a typed Plan.t.

   Extracted from the old monolithic exec.ml.  Planning is
   deliberately SQLite-flavoured:
   - single-table predicates choose a native index when one matches the
     leading index column, else a sequential heap scan;
   - equi-joins probe a native index when the inner table has one on the
     join column, and otherwise build an ephemeral hash index over the
     inner table — the analogue of SQLite's automatic covering index,
     whose construction cost the paper's Fig 9 isolates.

   Planning is pure: it reads the catalog but executes nothing, so a
   plan can be built once and executed many times (prepared statements,
   the RQL snapshot loop).  Uncorrelated subqueries are left in place
   and expanded by the executor per execution; consequently a
   subquery-derived constant is a filter, not an index bound. *)

module R = Storage.Record
open Ast

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let c_plans_built = Obs.Metrics.counter "sql.plans_built"

(* --- column resolution ------------------------------------------------ *)

let col_names (t : Catalog.table) =
  Array.map (fun (n, _) -> String.lowercase_ascii n) t.Catalog.tcols

let find_col (sources : Plan.source list) q n =
  let n = String.lowercase_ascii n in
  let matches =
    List.concat_map
      (fun (s : Plan.source) ->
        match q with
        | Some q when String.lowercase_ascii q <> s.Plan.s_alias -> []
        | _ ->
          let names = col_names s.Plan.s_tbl in
          let hits = ref [] in
          Array.iteri (fun i cn -> if cn = n then hits := (s.Plan.s_offset + i) :: !hits) names;
          !hits)
      sources
  in
  match matches with
  | [ i ] -> i
  | [] -> error "no such column: %s%s" (match q with Some q -> q ^ "." | None -> "") n
  | _ -> error "ambiguous column name: %s" n

(* Rewrite Col nodes to positional Colidx against [sources]. *)
let resolve sources e =
  Expr.map (function Col (q, n) -> Colidx (find_col sources q n) | e -> e) e

(* Try to resolve [e] against only [sources]; None if it references
   other columns. *)
let try_resolve sources e = try Some (resolve sources e) with Error _ -> None

let col_pos (tbl : Catalog.table) name =
  let n = String.lowercase_ascii name in
  let rec go i =
    if i >= Array.length tbl.Catalog.tcols then
      error "table %s has no column %s" tbl.Catalog.tname name
    else if String.lowercase_ascii (fst tbl.Catalog.tcols.(i)) = n then i
    else go (i + 1)
  in
  go 0

let source_of_table (tbl : Catalog.table) =
  { Plan.s_tbl = tbl; s_alias = String.lowercase_ascii tbl.Catalog.tname; s_offset = 0 }

(* Resolve an expression against a single table (DML helper). *)
let resolve_against_table (tbl : Catalog.table) e = resolve [ source_of_table tbl ] e

(* --- sargable bounds -------------------------------------------------- *)

let contains_param e =
  let exception Found in
  try
    ignore (Expr.map (function Param _ -> raise_notrace Found | e -> e) e);
    false
  with Found -> true

(* No column references, aggregates or subqueries anywhere: the
   expression has the same value for every row of the scan. *)
let row_independent e =
  let exception No in
  try
    ignore
      (Expr.map
         (function
           | ( Col _ | Colidx _ | Agg _ | Aggref _ | Subquery _ | In_select _ | Exists _
             | In_set _ ) ->
             raise_notrace No
           | e -> e)
         e);
    true
  with No -> false

(* A conjunct side usable as an index bound: constant-evaluable and not
   statically NULL, or a row-independent parameter expression (bound at
   execution time).  Bound conjuncts also remain ordinary filters, so a
   NULL parameter binding stays correct. *)
let bound_value fnctx e =
  (* lint: allow catch-all — a UDF in constant position may raise
     anything; any failure just means "not usable as an index bound" *)
  match (try Some (Expr.eval_const fnctx e) with _ -> None) with
  | Some R.Null -> None
  | Some _ -> Some e
  | None -> if contains_param e && row_independent e then Some e else None

(* A sargable bound extracted from a conjunct: (column position in the
   table, operator, value expression). *)
let extract_bound fnctx local conj : Plan.bound option =
  let flip = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le | op -> op in
  match try_resolve local conj with
  | None -> None
  | Some (Binop (((Eq | Lt | Le | Gt | Ge) as op), Colidx i, rhs)) -> (
    match bound_value fnctx rhs with Some e -> Some (i, op, e) | None -> None)
  | Some (Binop (((Eq | Lt | Le | Gt | Ge) as op), lhs, Colidx i)) -> (
    match bound_value fnctx lhs with Some e -> Some (i, flip op, e) | None -> None)
  | Some _ -> None

(* Pick a native index for a single-table scan given extracted bounds;
   returns (index, bounds on its leading column), preferring equality
   bounds when any exist. *)
let pick_index cat (tbl : Catalog.table) (bounds : Plan.bound list) =
  let indexes = Catalog.indexes_of_table cat tbl.Catalog.tname in
  let rec go = function
    | [] -> None
    | (idx : Catalog.index) :: rest -> (
      match idx.Catalog.icols with
      | lead :: _ ->
        let lead_pos = col_pos tbl lead in
        let applicable = List.filter (fun (i, _, _) -> i = lead_pos) bounds in
        if applicable = [] then go rest
        else
          let eqs = List.filter (fun (_, op, _) -> op = Eq) applicable in
          Some (idx, if eqs <> [] then eqs else applicable)
      | [] -> go rest)
  in
  go indexes

let lookup_table cat name =
  match Catalog.find_table cat name with
  | Some t -> t
  | None -> (
    (* catalog miss: sys_* virtual tables, resolved the same under
       AS OF (they reflect current process state, not history) *)
    match Systables.lookup name with
    | Some t -> t
    | None -> error "no such table: %s" name)

(* --- FROM planning ---------------------------------------------------- *)

type conjunct = { mutable used : bool; cexpr : expr }

(* Plan the FROM clause: access path for the driving table, one join
   step per joined table, and the residual filter.  The conjunct pool
   (WHERE plus inner-join ON conditions) is consumed in the same order
   the old pipeline builder used, so access-path choices are
   unchanged. *)
let plan_from ~cat ~fnctx (sel : select) : Plan.from_plan * Plan.source list =
  match sel.from with
  | None -> (Plan.From_none, [])
  | Some (first_ref, joins) ->
    let alias_of (tr : table_ref) =
      String.lowercase_ascii (Option.value tr.tbl_alias ~default:tr.tbl_name)
    in
    let pool =
      List.map
        (fun e -> { used = false; cexpr = e })
        (List.concat_map Expr.conjuncts
           ((match sel.where with Some w -> [ w ] | None -> [])
           @ List.filter_map
               (fun j -> if j.join_kind = Join_inner then j.join_on else None)
               joins))
    in
    (* first table *)
    let t0 = lookup_table cat first_ref.tbl_name in
    let st0 = { Plan.s_tbl = t0; s_alias = alias_of first_ref; s_offset = 0 } in
    let local0 = [ st0 ] in
    let bounds0 =
      List.filter_map
        (fun c -> if c.used then None else extract_bound fnctx local0 c.cexpr)
        pool
    in
    (* single-table conjuncts become local filters; bound conjuncts stay
       among them (the index narrows the scan, the filter re-checks) *)
    let filters0_pairs =
      List.filter_map
        (fun c ->
          if c.used then None
          else match try_resolve local0 c.cexpr with Some r -> Some (c, r) | None -> None)
        pool
    in
    List.iter (fun (c, _) -> c.used <- true) filters0_pairs;
    let access0 =
      match pick_index cat t0 bounds0 with
      | Some (ix, bounds) -> Plan.Index_search { ix; bounds }
      | None -> Plan.Seq_scan
    in
    let first =
      { Plan.sc_src = st0; sc_access = access0; sc_filters = List.map snd filters0_pairs;
        sc_op = Plan.mk_op () }
    in
    (* fold joins *)
    let add_join (sources, steps) (j : join_clause) =
      let t = lookup_table cat j.join_table.tbl_name in
      let offset =
        List.fold_left
          (fun acc (s : Plan.source) -> acc + Array.length s.Plan.s_tbl.Catalog.tcols)
          0 sources
      in
      let st = { Plan.s_tbl = t; s_alias = alias_of j.join_table; s_offset = offset } in
      let local = [ { st with Plan.s_offset = 0 } ] in
      let sources' = sources @ [ st ] in
      if j.join_kind = Join_left then begin
        (* LEFT JOIN: the ON conjuncts define the match; unmatched left
           rows are padded with NULLs.  WHERE conjuncts touching this
           table stay in the pool and filter after the join. *)
        let conjs = Expr.conjuncts (Option.get j.join_on) in
        let inner_filters, rest =
          List.partition (fun c -> try_resolve local c <> None) conjs
        in
        let inner_filters = List.filter_map (try_resolve local) inner_filters in
        let equi, residual_raw =
          List.partition_map
            (fun c ->
              match c with
              | Binop (Eq, a, b) -> (
                match try_resolve sources a, try_resolve local b with
                | Some la, Some rb -> Left (la, rb)
                | _ -> (
                  match try_resolve sources b, try_resolve local a with
                  | Some lb, Some ra -> Left (lb, ra)
                  | _ -> Right c))
              | c -> Right c)
            rest
        in
        let residual = List.map (resolve sources') residual_raw in
        ( sources',
          steps
          @ [ { Plan.j_src = st;
                j_plan = Plan.Left_hash { equi; inner_filters; residual };
                j_op = Plan.mk_op () } ]
        )
      end
      else begin
        (* single-table predicates for the new table *)
        let filters =
          List.filter_map
            (fun c ->
              if c.used then None
              else
                match try_resolve local c.cexpr with
                | Some r ->
                  c.used <- true;
                  Some r
                | None -> None)
            pool
        in
        (* equi-join keys: conjunct  left_expr = right_col_expr *)
        let equi =
          List.filter_map
            (fun c ->
              if c.used then None
              else
                match c.cexpr with
                | Binop (Eq, a, b) -> (
                  match try_resolve sources a, try_resolve local b with
                  | Some la, Some rb ->
                    c.used <- true;
                    Some (la, rb)
                  | _ -> (
                    match try_resolve sources b, try_resolve local a with
                    | Some lb, Some ra ->
                      c.used <- true;
                      Some (lb, ra)
                    | _ -> None))
                | _ -> None)
            pool
        in
        let j_plan =
          match equi with
          | [] -> Plan.Nested_loop { filters }
          | _ -> (
            (* native index probe if the inner side is a single indexed
               column *)
            let native =
              match List.map snd equi with
              | [ Colidx i ] ->
                let cname = fst t.Catalog.tcols.(i) in
                List.find_opt
                  (fun (idx : Catalog.index) ->
                    match idx.Catalog.icols with
                    | [ c ] -> String.lowercase_ascii c = String.lowercase_ascii cname
                    | _ -> false)
                  (Catalog.indexes_of_table cat t.Catalog.tname)
              | _ -> None
            in
            match native with
            | Some ix -> Plan.Index_probe { ix; equi; filters }
            | None -> Plan.Hash_join { equi; filters })
        in
        (sources', steps @ [ { Plan.j_src = st; j_plan; j_op = Plan.mk_op () } ])
      end
    in
    let sources, steps = List.fold_left add_join ([ st0 ], []) joins in
    (* residual conjuncts against the combined row *)
    let residual =
      List.filter_map (fun c -> if c.used then None else Some (resolve sources c.cexpr)) pool
    in
    (Plan.From_scan { first; joins = steps; residual }, sources)

(* --- output / aggregate / order planning ------------------------------ *)

let expand_items sources (items : sel_item list) =
  List.concat_map
    (fun item ->
      match item with
      | Star ->
        List.concat_map
          (fun (s : Plan.source) ->
            Array.to_list
              (Array.mapi
                 (fun i (n, _) -> (Colidx (s.Plan.s_offset + i), n))
                 s.Plan.s_tbl.Catalog.tcols))
          sources
      | Table_star a ->
        let a = String.lowercase_ascii a in
        let s =
          match List.find_opt (fun (s : Plan.source) -> s.Plan.s_alias = a) sources with
          | Some s -> s
          | None -> error "no such table: %s" a
        in
        Array.to_list
          (Array.mapi (fun i (n, _) -> (Colidx (s.Plan.s_offset + i), n)) s.Plan.s_tbl.Catalog.tcols)
      | Sel_expr (e, alias) ->
        let name =
          match alias, e with
          | Some a, _ -> a
          | None, Col (_, n) -> n
          | None, _ -> ""
        in
        [ (e, name) ])
    items

(* Replace Agg nodes with Aggref slots, collecting specs (deduplicated
   structurally). *)
let lift_aggs specs e =
  Expr.map
    (function
      | Agg a ->
        let rec find i = function
          | [] ->
            specs := !specs @ [ a ];
            Aggref i
          | s :: _ when s = a -> Aggref i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 !specs
      | e -> e)
    e

(* Plan one SELECT core (UNION members are handled by [plan]). *)
let plan_core ~cat ~fnctx (sel : select) : Plan.core =
  let c_from, sources = plan_from ~cat ~fnctx sel in
  let items = expand_items sources sel.items in
  (* name anonymous expression columns *)
  let header =
    Array.of_list
      (List.mapi (fun i (_, n) -> if n = "" then Printf.sprintf "expr_%d" (i + 1) else n) items)
  in
  let raw_exprs = List.map fst items in
  (* SQLite lets GROUP BY / HAVING / ORDER BY reference output aliases;
     substitute the aliased expression when the name is not a FROM
     column. *)
  let alias_subst e =
    Expr.map
      (function
        | Col (None, n) as c
          when (try ignore (find_col sources None n); false with Error _ -> true) -> (
          let n = String.lowercase_ascii n in
          match List.find_opt (fun (_, name) -> String.lowercase_ascii name = n) items with
          | Some (aliased, _) -> aliased
          | None -> c)
        | e -> e)
      e
  in
  let specs = ref [] in
  let out_exprs = List.map (fun e -> lift_aggs specs (resolve sources e)) raw_exprs in
  let group_exprs = List.map (fun e -> resolve sources (alias_subst e)) sel.group_by in
  let having_expr =
    Option.map (fun e -> lift_aggs specs (resolve sources (alias_subst e))) sel.having
  in
  (* ORDER BY: positional literals and output aliases resolve to output
     columns; anything else resolves against the FROM columns. *)
  let order_resolved =
    List.map
      (fun o ->
        match o.ord_expr with
        | Lit (R.Int k) when k >= 1 && k <= List.length out_exprs ->
          (Plan.Out_col (k - 1), o.ord_desc)
        | Col (None, n)
          when Array.exists (fun h -> String.lowercase_ascii h = String.lowercase_ascii n) header
               && (try ignore (find_col sources None n); false with Error _ -> true) ->
          let idx = ref 0 in
          Array.iteri
            (fun i h -> if String.lowercase_ascii h = String.lowercase_ascii n then idx := i)
            header;
          (Plan.Out_col !idx, o.ord_desc)
        | e -> (Plan.Key_expr (lift_aggs specs (resolve sources e)), o.ord_desc))
      sel.order_by
  in
  let has_agg =
    sel.group_by <> [] || !specs <> []
    || List.exists Expr.has_aggregate raw_exprs
    || (match sel.having with Some h -> Expr.has_aggregate h | None -> false)
  in
  { Plan.c_from;
    c_header = header;
    c_out = out_exprs;
    c_aggs = !specs;
    c_has_agg = has_agg;
    c_group = group_exprs;
    c_having = having_expr;
    c_order = order_resolved;
    c_distinct = sel.distinct;
    c_limit = sel.limit;
    c_offset = sel.offset;
    c_empty = false;
    c_filter_op = Plan.mk_op ();
    c_agg_op = Plan.mk_op ();
    c_sort_op = Plan.mk_op ();
    c_out_op = Plan.mk_op () }

let rec plan_select ~cat ~fnctx (sel : select) : Plan.t =
  if sel.union_with = [] then
    { Plan.p_src = sel;
      p_as_of = sel.as_of;
      p_core = plan_core ~cat ~fnctx sel;
      p_members = [];
      p_corder = [];
      p_climit = None;
      p_coffset = None;
      p_opt = None }
  else begin
    (* compound: the first member keeps the record's DISTINCT/GROUP BY;
       trailing ORDER BY / LIMIT belong to the whole compound and must
       reference output columns *)
    let base = { sel with union_with = []; order_by = []; limit = None; offset = None } in
    let core = plan_core ~cat ~fnctx base in
    let members = List.map (fun (all, m) -> (all, plan_select ~cat ~fnctx m)) sel.union_with in
    let header = core.Plan.c_header in
    let out_index (o : order_item) =
      match o.ord_expr with
      | Lit (R.Int k) when k >= 1 && k <= Array.length header -> k - 1
      | Col (None, n) ->
        let found = ref (-1) in
        Array.iteri
          (fun i h -> if String.lowercase_ascii h = String.lowercase_ascii n then found := i)
          header;
        if !found < 0 then error "no such output column in compound ORDER BY: %s" n;
        !found
      | _ -> error "compound ORDER BY must reference output columns by name or position"
    in
    { Plan.p_src = sel;
      p_as_of = sel.as_of;
      p_core = core;
      p_members = members;
      p_corder = List.map (fun o -> (out_index o, o.ord_desc)) sel.order_by;
      p_climit = sel.limit;
      p_coffset = sel.offset;
      p_opt = None }
  end

(* Public entry point: plan a SELECT against a catalog. *)
let plan ~cat ~fnctx (sel : select) : Plan.t =
  Obs.Metrics.Counter.incr c_plans_built;
  Plan.number_ops (plan_select ~cat ~fnctx sel)

(* Single-table access planning for DML row matching. *)
let plan_table ~cat ~fnctx (tbl : Catalog.table) (where : expr option) : Plan.scan =
  let st = source_of_table tbl in
  let local = [ st ] in
  let conjs = match where with None -> [] | Some w -> Expr.conjuncts w in
  let resolved = List.map (resolve local) conjs in
  let bounds = List.filter_map (extract_bound fnctx local) conjs in
  let access =
    match pick_index cat tbl bounds with
    | Some (ix, bounds) -> Plan.Index_search { ix; bounds }
    | None -> Plan.Seq_scan
  in
  { Plan.sc_src = st; sc_access = access; sc_filters = resolved; sc_op = Plan.mk_op () }
