(* A per-connection session over a shared database.

   The engine splits a database into a shared immutable core (committed
   pages, snapshot archive, catalog, function registry, the explicit-
   transaction slot) and per-connection session state: prepared
   statements, the plan cache with its hit/miss accounting, the
   slow-query threshold, the EXPLAIN ANALYZE toggle and a private
   metric scope.  [Db.t] already carries exactly the per-session half —
   the root handle returned by [Db.create] is itself the first session
   — so a session here is a thin, intention-revealing wrapper: it
   derives a fresh session from any existing handle and scopes its
   lifetime.

   Concurrency contract (DESIGN.md §15): any number of sessions may
   execute read statements in parallel (each wrapped in the pager's
   read lock); writes serialize through the pager's writer lock inside
   transaction commit.  A session itself is NOT thread-safe — one
   domain drives one session at a time, which is what the server and
   the parallel RQL loop do. *)

type t = Db.t

(* Derive a new session sharing [db]'s core.  O(1); registered in the
   core's session table until [close]. *)
let create (db : Db.t) : t = Db.session db

let id = Db.session_id

(* The session's private metric scope: statements executed on this
   session charge it (plus the root), so sys_sessions and sys_scopes
   can attribute load per connection. *)
let scope (t : t) = t.Db.scope

let set_slow_query_threshold (t : t) s = t.Db.slow_query_s <- s
let set_analyze (t : t) on = t.Db.analyze <- on

(* Sessions currently registered on [db]'s core, oldest first
   (including the root handle). *)
let all = Db.sessions

(* Unregister [t].  Close is idempotent; the root session of a handle
   created by [Db.create] may also be closed, the core outlives it. *)
let close = Db.close_session

let with_session (db : Db.t) (f : t -> 'a) : 'a =
  let s = create db in
  Fun.protect ~finally:(fun () -> close s) (fun () -> f s)
