(* Read-only virtual system tables (the sys_ namespace).

   Each sys_ table materializes live engine state as rows on demand:
   the metrics registry, the trace ring, the snapshot archive, cache
   statistics and the physical size of every relation.  They carry no
   heap pages — the catalog entry handed to the planner uses the
   [virtual_heap] sentinel and the executor routes scans here instead
   of to Storage.Heap — so they are visible to the full query surface
   (joins, aggregates, RQL UDFs, AS OF-rewritten retrospective
   queries) while remaining pure observers: reading them never
   perturbs the counters they report, beyond the statement accounting
   every query pays.

   Virtual tables always reflect the *current* process state; an AS OF
   environment resolves them identically (there is nothing historical
   to read — the archive itself is the history). *)

module R = Storage.Record

(* Sentinel heap id marking a catalog entry as virtual; no real table
   can have it (page ids are non-negative). *)
let virtual_heap = -1

type vtable = {
  vname : string;
  vcols : (string * string) array;      (* name, declared type *)
  vrows : Db.t -> R.row list;
}

(* --- row producers ----------------------------------------------------- *)

let metrics_rows _db =
  List.map
    (fun (name, m) ->
      match m with
      | Obs.Metrics.M_counter c ->
        [| R.Text name; R.Text "counter"; R.Int (Obs.Metrics.Counter.get c) |]
      | Obs.Metrics.M_gauge g ->
        [| R.Text name; R.Text "gauge"; R.Real (Obs.Metrics.Gauge.get g) |]
      | Obs.Metrics.M_histogram h ->
        [| R.Text name; R.Text "histogram"; R.Int (Obs.Metrics.Histogram.count h) |])
    (Obs.Metrics.sorted_items ())

let histogram_rows _db =
  List.filter_map
    (fun (name, m) ->
      match m with
      | Obs.Metrics.M_histogram h ->
        let module H = Obs.Metrics.Histogram in
        Some
          [| R.Text name; R.Int (H.count h); R.Real (H.mean h);
             R.Real (H.quantile h 0.5); R.Real (H.quantile h 0.95);
             R.Real (H.quantile h 0.99); R.Real (H.min_value h);
             R.Real (H.max_value h) |]
      | _ -> None)
    (Obs.Metrics.sorted_items ())

let span_rows _db =
  List.map
    (fun (sp : Obs.Trace.span) ->
      [| R.Int sp.Obs.Trace.seq; R.Int sp.Obs.Trace.id; R.Int sp.Obs.Trace.parent;
         R.Int sp.Obs.Trace.tid; R.Text sp.Obs.Trace.name;
         R.Real sp.Obs.Trace.ts_us; R.Real sp.Obs.Trace.dur_us |])
    (Obs.Trace.spans ())

let snapshot_rows db =
  match db.Db.retro with
  | None -> []
  | Some retro ->
    (* Vacuumed ids first (they never renumber, so the id column stays a
       stable key): archive columns zeroed, declaration time preserved.
       [reclaimable_bytes] on a retained row is the cumulative space a
       VACUUM SNAPSHOTS OLDER THAN (snap_id + 1) would free. *)
    let fl = Retro.first_live retro in
    let vacuumed =
      List.init (fl - 1) (fun i ->
          let s = i + 1 in
          [| R.Int s; R.Real (Retro.snapshot_ts_raw retro s); R.Int 0; R.Int 0;
             R.Int 0; R.Int 0; R.Int 0; R.Int 0; R.Int 0; R.Int 0;
             R.Text "vacuumed"; R.Int 0 |])
    in
    let a = Retro.analyze retro in
    let cum = ref 0 in
    let live =
      Array.to_list a.Retro.an_snapshots
      |> List.map (fun (si : Retro.snapshot_info) ->
             cum := !cum + si.Retro.si_delta_bytes;
             [| R.Int si.Retro.si_id; R.Real si.Retro.si_ts; R.Int si.Retro.si_boundary;
                R.Int si.Retro.si_db_pages; R.Int si.Retro.si_pages_mapped;
                R.Int si.Retro.si_delta_entries; R.Int si.Retro.si_delta_pages;
                R.Int si.Retro.si_delta_bytes;
                R.Int (if Retro.spt_cached retro si.Retro.si_id then 1 else 0);
                R.Int (if Retro.is_damaged retro si.Retro.si_id then 1 else 0);
                R.Text "retained"; R.Int !cum |])
    in
    vacuumed @ live

(* One row of archive-lifecycle state: live/vacuumed extent, physical
   footprint, checkpoint position and the WAL growth that feeds the
   auto-checkpoint trigger. *)
let archive_rows (db : Db.t) =
  match db.Db.retro with
  | None -> []
  | Some retro ->
    let wal_since =
      match Db.wal db with
      | Some w -> Storage.Wal.bytes_since_checkpoint w
      | None -> 0
    in
    [ [| R.Int (Retro.snapshot_count retro);
         R.Int (Retro.live_snapshot_count retro);
         R.Int (Retro.first_live retro);
         R.Int (Retro.Pagelog.length retro.Retro.pagelog);
         R.Int (Retro.Pagelog.size_bytes retro.Retro.pagelog);
         R.Int (Retro.maplog_length retro);
         R.Int (Db.checkpoint_seq db);
         R.Int (Db.checkpoint_threshold db);
         R.Int wal_since |] ]

let cache_rows db =
  match db.Db.retro with
  | None -> []
  | Some retro ->
    let s = Retro.cache_stats retro in
    [ [| R.Text "retro.snap_cache"; R.Int s.Storage.Lru.s_capacity;
         R.Int s.Storage.Lru.s_occupancy; R.Int s.Storage.Lru.s_hits;
         R.Int s.Storage.Lru.s_misses; R.Int s.Storage.Lru.s_evictions |] ]

(* Physical footprint of every cataloged relation, through the current
   read context (inside a transaction this sees uncommitted DDL). *)
let table_rows db =
  let read = Db.read_current db in
  let cat = Db.catalog db in
  let out = ref [] in
  Catalog.iter_tables cat ~f:(fun t ->
      let h = Storage.Heap.open_existing t.Catalog.theap in
      out :=
        [| R.Text t.Catalog.tname; R.Text "table"; R.Int t.Catalog.theap;
           R.Int (Storage.Heap.page_count read h); R.Int (Storage.Heap.count read h) |]
        :: !out);
  Catalog.iter_indexes cat ~f:(fun i ->
      let b = Storage.Btree.open_existing i.Catalog.iroot in
      out :=
        [| R.Text i.Catalog.iname; R.Text "index"; R.Int i.Catalog.iroot;
           R.Int (Storage.Btree.page_count read b); R.Int (Storage.Btree.count read b) |]
        :: !out);
  List.sort compare !out

(* Plan-cache statistics of this handle: one row.  [generation] is the
   schema-change counter cached plans are validated against. *)
let plan_rows (db : Db.t) =
  (* [delta_safe] counts cached plans the optimizer marked safe for
     incremental (delta) evaluation. *)
  let delta_safe =
    Hashtbl.fold
      (fun _ (c : Plan.cached) n ->
        match c.Plan.cp_plan.Plan.p_opt with
        | Some oi when oi.Plan.oi_delta_safe -> n + 1
        | _ -> n)
      db.Db.plan_cache 0
  in
  [ [| R.Int (Hashtbl.length db.Db.plan_cache); R.Int db.Db.plan_hits;
       R.Int db.Db.plan_misses; R.Int db.Db.plan_invalidations;
       R.Int (Db.generation db); R.Int delta_safe |] ]

(* Every live session over this handle's core, oldest first: its
   private plan cache and counters, its prepared-statement count and
   the scope its statements charge (mirrors sys_plans / sys_scopes). *)
let session_rows (db : Db.t) =
  List.map
    (fun s ->
      [| R.Int (Db.session_id s); R.Int s.Db.prepared_count;
         R.Int (Hashtbl.length s.Db.plan_cache); R.Int s.Db.plan_hits;
         R.Int s.Db.plan_misses; R.Int s.Db.plan_invalidations;
         R.Int (Obs.Scope.id s.Db.scope);
         R.Int (if s == db then 1 else 0) |])
    (Db.sessions db)

(* Per-fingerprint statement statistics (process-wide, like the metrics
   registry), most total time first. *)
let statement_rows _db =
  List.map
    (fun (st : Fingerprint.stat) ->
      [| R.Text st.Fingerprint.fp; R.Text st.Fingerprint.norm;
         R.Int st.Fingerprint.calls; R.Int st.Fingerprint.rows;
         R.Real st.Fingerprint.total_s;
         R.Real (st.Fingerprint.total_s /. float_of_int (max 1 st.Fingerprint.calls));
         R.Real st.Fingerprint.max_s; R.Int st.Fingerprint.plan_hits |])
    (Fingerprint.stats ())

(* The structured event log, one row per retained event; the full field
   set rides along as the event's JSON-line rendering. *)
let event_rows _db =
  List.map
    (fun (e : Obs.Eventlog.event) ->
      [| R.Int e.Obs.Eventlog.ev_seq; R.Real e.Obs.Eventlog.ev_ts;
         R.Text e.Obs.Eventlog.ev_kind; R.Int e.Obs.Eventlog.ev_scope;
         (if e.Obs.Eventlog.ev_run >= 0 then R.Int e.Obs.Eventlog.ev_run else R.Null);
         R.Text (Obs.Json.to_string (Obs.Eventlog.event_to_json e)) |])
    (Obs.Eventlog.events ())

(* The scope tree in long format: one row per (scope, metric), with a
   placeholder row for scopes that have charged nothing yet, so every
   scope is visible.  After a metrics reset the children reappear with
   zeroed values — the scope tree itself survives the reset. *)
let scope_rows _db =
  List.concat_map
    (fun s ->
      let head =
        [| R.Int (Obs.Scope.id s); R.Int (Obs.Scope.parent_id s);
           R.Text (Obs.Scope.scope_name s); R.Int (Obs.Scope.depth s);
           R.Int (if Obs.Scope.is_live s then 1 else 0) |]
      in
      let with_metric tail = Array.append head tail in
      match Obs.Scope.metric_items s with
      | [] -> [ with_metric [| R.Null; R.Null; R.Null |] ]
      | items ->
        List.map
          (fun (name, m) ->
            match m with
            | Obs.Metrics.M_counter c ->
              with_metric
                [| R.Text name; R.Text "counter"; R.Int (Obs.Metrics.Counter.get c) |]
            | Obs.Metrics.M_gauge g ->
              with_metric
                [| R.Text name; R.Text "gauge"; R.Real (Obs.Metrics.Gauge.get g) |]
            | Obs.Metrics.M_histogram h ->
              with_metric
                [| R.Text name; R.Text "histogram";
                   R.Int (Obs.Metrics.Histogram.count h) |])
          items)
    (Obs.Scope.scopes ())

(* The (scope, table, snapshot) page-read heat matrix.  Root rows
   (scope_id = 0) partition storage.page_reads exactly; child rows
   re-attribute subsets of the same reads to their scopes.  snapshot -1
   is the current state; table '-' is work outside any table scan
   (catalog, indexes, WAL replay). *)
let heat_rows _db =
  List.concat_map
    (fun s ->
      List.map
        (fun ((tbl, snap), db_reads, pagelog_reads) ->
          [| R.Int (Obs.Scope.id s); R.Text (Obs.Scope.scope_name s);
             R.Text (if tbl = "" then "-" else tbl); R.Int snap;
             R.Int db_reads; R.Int pagelog_reads;
             R.Int (db_reads + pagelog_reads) |])
        (Obs.Scope.heat_items s))
    (Obs.Scope.scopes ())

(* Live and recently finished RQL runs, oldest first (bounded
   retention). *)
let progress_rows _db =
  List.map
    (fun (p : Obs.Progress.t) ->
      [| R.Int p.Obs.Progress.pr_id; R.Text p.Obs.Progress.pr_mechanism;
         R.Text p.Obs.Progress.pr_detail; R.Int p.Obs.Progress.pr_scope;
         R.Text (Obs.Progress.status_to_string p.Obs.Progress.pr_status);
         R.Int p.Obs.Progress.pr_done; R.Int p.Obs.Progress.pr_total;
         R.Int p.Obs.Progress.pr_pages; R.Real p.Obs.Progress.pr_elapsed;
         R.Real p.Obs.Progress.pr_eta;
         R.Int (if p.Obs.Progress.pr_cancel then 1 else 0) |])
    (Obs.Progress.runs ())

(* Long format: one row per (sample, metric), so SQL can slice a single
   metric's trajectory with WHERE name = '...'. *)
let timeseries_rows _db =
  List.concat_map
    (fun (s : Obs.Timeseries.sample) ->
      List.map
        (fun (name, v) ->
          [| R.Int s.Obs.Timeseries.seq; R.Real s.Obs.Timeseries.ts; R.Text name; R.Real v |])
        s.Obs.Timeseries.values)
    (Obs.Timeseries.samples ())

(* --- registry ---------------------------------------------------------- *)

let all : vtable list =
  [ { vname = "sys_metrics";
      vcols = [| ("name", "TEXT"); ("kind", "TEXT"); ("value", "REAL") |];
      vrows = metrics_rows };
    { vname = "sys_histograms";
      vcols =
        [| ("name", "TEXT"); ("count", "INTEGER"); ("mean", "REAL"); ("p50", "REAL");
           ("p95", "REAL"); ("p99", "REAL"); ("min", "REAL"); ("max", "REAL") |];
      vrows = histogram_rows };
    { vname = "sys_spans";
      vcols =
        [| ("seq", "INTEGER"); ("id", "INTEGER"); ("parent", "INTEGER");
           ("tid", "INTEGER"); ("name", "TEXT"); ("ts_us", "REAL"); ("dur_us", "REAL") |];
      vrows = span_rows };
    { vname = "sys_snapshots";
      vcols =
        [| ("snap_id", "INTEGER"); ("declared_ts", "REAL"); ("maplog_boundary", "INTEGER");
           ("db_pages", "INTEGER"); ("pages_mapped", "INTEGER");
           ("delta_entries", "INTEGER"); ("delta_pages", "INTEGER");
           ("delta_bytes", "INTEGER"); ("spt_cached", "INTEGER");
           ("damaged", "INTEGER"); ("status", "TEXT");
           ("reclaimable_bytes", "INTEGER") |];
      vrows = snapshot_rows };
    { vname = "sys_archive";
      vcols =
        [| ("snapshots_declared", "INTEGER"); ("snapshots_live", "INTEGER");
           ("first_live", "INTEGER"); ("pagelog_blocks", "INTEGER");
           ("pagelog_bytes", "INTEGER"); ("maplog_entries", "INTEGER");
           ("checkpoint_seq", "INTEGER"); ("checkpoint_threshold", "INTEGER");
           ("wal_since_checkpoint", "INTEGER") |];
      vrows = archive_rows };
    { vname = "sys_cache";
      vcols =
        [| ("name", "TEXT"); ("capacity", "INTEGER"); ("occupancy", "INTEGER");
           ("hits", "INTEGER"); ("misses", "INTEGER"); ("evictions", "INTEGER") |];
      vrows = cache_rows };
    { vname = "sys_tables";
      vcols =
        [| ("name", "TEXT"); ("kind", "TEXT"); ("root", "INTEGER");
           ("pages", "INTEGER"); ("rows", "INTEGER") |];
      vrows = table_rows };
    { vname = "sys_plans";
      vcols =
        [| ("size", "INTEGER"); ("hits", "INTEGER"); ("misses", "INTEGER");
           ("invalidations", "INTEGER"); ("generation", "INTEGER");
           ("delta_safe", "INTEGER") |];
      vrows = plan_rows };
    { vname = "sys_sessions";
      vcols =
        [| ("session_id", "INTEGER"); ("prepared", "INTEGER"); ("plans", "INTEGER");
           ("hits", "INTEGER"); ("misses", "INTEGER"); ("invalidations", "INTEGER");
           ("scope_id", "INTEGER"); ("current", "INTEGER") |];
      vrows = session_rows };
    { vname = "sys_statements";
      vcols =
        [| ("fingerprint", "TEXT"); ("query", "TEXT"); ("calls", "INTEGER");
           ("rows", "INTEGER"); ("total_s", "REAL"); ("mean_s", "REAL");
           ("max_s", "REAL"); ("plan_hits", "INTEGER") |];
      vrows = statement_rows };
    { vname = "sys_events";
      vcols =
        [| ("seq", "INTEGER"); ("ts", "REAL"); ("kind", "TEXT");
           ("scope_id", "INTEGER"); ("rql_run", "INTEGER"); ("event", "TEXT") |];
      vrows = event_rows };
    { vname = "sys_scopes";
      vcols =
        [| ("scope_id", "INTEGER"); ("parent", "INTEGER"); ("name", "TEXT");
           ("depth", "INTEGER"); ("live", "INTEGER"); ("metric", "TEXT");
           ("kind", "TEXT"); ("value", "REAL") |];
      vrows = scope_rows };
    { vname = "sys_heat";
      vcols =
        [| ("scope_id", "INTEGER"); ("scope", "TEXT"); ("table_name", "TEXT");
           ("snapshot", "INTEGER"); ("db_reads", "INTEGER");
           ("pagelog_reads", "INTEGER"); ("reads", "INTEGER") |];
      vrows = heat_rows };
    { vname = "sys_progress";
      vcols =
        [| ("run_id", "INTEGER"); ("mechanism", "TEXT"); ("detail", "TEXT");
           ("scope_id", "INTEGER"); ("status", "TEXT");
           ("iterations_done", "INTEGER"); ("iterations_total", "INTEGER");
           ("pages_read", "INTEGER"); ("elapsed_s", "REAL"); ("eta_s", "REAL");
           ("cancel_requested", "INTEGER") |];
      vrows = progress_rows };
    { vname = "sys_timeseries";
      vcols = [| ("seq", "INTEGER"); ("ts", "REAL"); ("name", "TEXT"); ("value", "REAL") |];
      vrows = timeseries_rows } ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun vt -> vt.vname = name) all

let names () = List.map (fun vt -> vt.vname) all

let is_virtual_name name = find name <> None

(* The planner-facing catalog entry: same shape as a real table, with
   the sentinel heap.  Virtual tables never have indexes, so every
   index-based access path naturally passes them by. *)
let table_of (vt : vtable) : Catalog.table =
  { Catalog.tname = vt.vname; tcols = vt.vcols; theap = virtual_heap }

let lookup name = Option.map table_of (find name)

(* Rows for a virtual catalog entry (the executor's scan dispatcher). *)
let rows db (tbl : Catalog.table) : R.row list =
  match find tbl.Catalog.tname with
  | Some vt -> vt.vrows db
  | None ->
    invalid_arg (Printf.sprintf "Systables.rows: %s is not a system table" tbl.Catalog.tname)
