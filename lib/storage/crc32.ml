(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.

   Every durable artifact carries one: WAL record payloads, Pagelog
   blocks, committed page images and whole backup files.  A checksum
   mismatch is how torn WAL tails, bit flips and truncated backups are
   detected instead of being decoded into garbage. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(* Incremental update over [bytes.(off .. off+len-1)]; feed [0] as the
   initial value and chain the result to checksum in pieces. *)
let update crc (b : Bytes.t) off len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff land 0xffffffff

let bytes (b : Bytes.t) = update 0 b 0 (Bytes.length b)

let string (s : string) = bytes (Bytes.of_string s)
