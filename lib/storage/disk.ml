(* Simulated block device used for the snapshot archive (Pagelog).

   The container has no dedicated SSD, so instead of timing host
   filesystem I/O (noise), reads and writes are counted and converted to
   time by Stats.Cost_model.  Blocks are page-sized.

   Every block carries a CRC32 taken at append time; [read] verifies it
   and raises a typed {!Corruption} on mismatch, so a flipped bit in the
   archive surfaces as a scoped failure (the snapshots referencing the
   block) instead of silently-wrong rows.  A {!Fault.t} can be attached
   to arm per-block read errors (latent media faults). *)

exception Corruption of { device : string; block : int; detail : string }
exception Read_error of { device : string; block : int }

type t = {
  mutable blocks : Bytes.t array;
  mutable crcs : int array;
  mutable n_blocks : int;
  name : string;
  mutable fault : Fault.t option;
  mutable read_retries : int; (* bounded retries before Read_error surfaces *)
}

(* Transient media errors (an armed-once fault) are retried this many
   times before {!Read_error} reaches the caller. *)
let default_read_retries = 3

let create ?(name = "disk") () =
  { blocks = Array.make 64 Bytes.empty;
    crcs = Array.make 64 0;
    n_blocks = 0;
    name;
    fault = None;
    read_retries = default_read_retries }

let length t = t.n_blocks

let name t = t.name

let set_fault t f = t.fault <- f
let fault t = t.fault

let set_read_retries t n = t.read_retries <- max 0 n
let read_retries t = t.read_retries

let grow t =
  let cap = Array.length t.blocks in
  if t.n_blocks >= cap then begin
    let blocks = Array.make (cap * 2) Bytes.empty in
    Array.blit t.blocks 0 blocks 0 cap;
    t.blocks <- blocks;
    let crcs = Array.make (cap * 2) 0 in
    Array.blit t.crcs 0 crcs 0 cap;
    t.crcs <- crcs
  end

(* Append a block; returns its index.  The block is copied so later
   mutation by the caller cannot corrupt the archive. *)
let append t (b : Bytes.t) =
  grow t;
  t.blocks.(t.n_blocks) <- Bytes.copy b;
  t.crcs.(t.n_blocks) <- Crc32.bytes b;
  t.n_blocks <- t.n_blocks + 1;
  Obs.Scope.incr Stats.c_pagelog_writes;
  t.n_blocks - 1

let read t i =
  if i < 0 || i >= t.n_blocks then
    invalid_arg (Printf.sprintf "Disk.read %s: block %d/%d" t.name i t.n_blocks);
  (* Transient media errors get a bounded retry with (modeled)
     exponential backoff: an armed-once fault is consumed by the first
     probe and the retry succeeds; a persistent fault exhausts the
     budget and surfaces as {!Read_error}. *)
  (match t.fault with
   | Some f ->
     let rec probe attempt =
       if Fault.should_fail_read f ~device:t.name ~index:i then begin
         if attempt >= t.read_retries then
           raise (Read_error { device = t.name; block = i });
         Obs.Scope.incr Stats.c_read_retries;
         if !Stats.Cost_model.real_read_latency then
           Unix.sleepf (!Stats.Cost_model.ssd_read_s *. float_of_int (1 lsl attempt));
         probe (attempt + 1)
       end
     in
     probe 0
   | None -> ());
  Stats.record_pagelog_read ();
  (* Opt-in real device latency: spend the modeled per-read time as an
     actual sleep so concurrent reader domains overlap their waits.
     Must stay outside every lock (see Retro's cache locking). *)
  if !Stats.Cost_model.real_read_latency then Unix.sleepf !Stats.Cost_model.ssd_read_s;
  let b = t.blocks.(i) in
  if Crc32.bytes b <> t.crcs.(i) then
    raise (Corruption { device = t.name; block = i; detail = "checksum mismatch" });
  Bytes.copy b

(* All block indices failing their checksum.  A scrub pass: no fault
   injection, no read counters — this models an offline verify, not
   query-path I/O. *)
let verify_all t =
  let bad = ref [] in
  for i = t.n_blocks - 1 downto 0 do
    if Crc32.bytes t.blocks.(i) <> t.crcs.(i) then bad := i :: !bad
  done;
  !bad

(* Flip one bit of a stored block in place, without updating its CRC —
   the test hook that models media corruption. *)
let corrupt_block t i ~bit =
  if i < 0 || i >= t.n_blocks then
    invalid_arg (Printf.sprintf "Disk.corrupt_block %s: block %d/%d" t.name i t.n_blocks);
  let b = t.blocks.(i) in
  if Bytes.length b = 0 then invalid_arg "Disk.corrupt_block: empty block";
  let off = bit / 8 mod Bytes.length b in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl (bit mod 8))))

(* Total archive size in bytes (Pagelog growth experiments). *)
let size_bytes t = t.n_blocks * Page.size

(* Portable copies of all blocks (for backup/restore). *)
let dump t = Array.init t.n_blocks (fun i -> Bytes.copy t.blocks.(i))

let restore ?(name = "disk") blocks =
  let n = Array.length blocks in
  let t =
    { blocks = Array.make (max 64 n) Bytes.empty;
      crcs = Array.make (max 64 n) 0;
      n_blocks = n;
      name;
      fault = None;
      read_retries = default_read_retries }
  in
  Array.iteri
    (fun i b ->
      t.blocks.(i) <- Bytes.copy b;
      t.crcs.(i) <- Crc32.bytes b)
    blocks;
  t

(* --- raw (CRC-preserving) block access ----------------------------------- *)

(* Stored bytes + stored CRC of block [i], with no verification, no
   counters and no fault injection.  Compaction (Retro.vacuum) and the
   checkpoint image use these so a latent checksum mismatch survives a
   copy *as a mismatch* — [restore]/[append] would recompute the CRC and
   silently bless the corruption. *)
let raw_block t i =
  if i < 0 || i >= t.n_blocks then
    invalid_arg (Printf.sprintf "Disk.raw_block %s: block %d/%d" t.name i t.n_blocks);
  (Bytes.copy t.blocks.(i), t.crcs.(i))

(* Append a block with a caller-supplied stored CRC (counted as a write:
   compaction really does write the simulated device). *)
let append_raw t (b : Bytes.t) ~crc =
  grow t;
  t.blocks.(t.n_blocks) <- Bytes.copy b;
  t.crcs.(t.n_blocks) <- crc;
  t.n_blocks <- t.n_blocks + 1;
  Obs.Scope.incr Stats.c_pagelog_writes;
  t.n_blocks - 1

let dump_raw t = Array.init t.n_blocks (fun i -> (Bytes.copy t.blocks.(i), t.crcs.(i)))

let restore_raw ?(name = "disk") pairs =
  let n = Array.length pairs in
  let t =
    { blocks = Array.make (max 64 n) Bytes.empty;
      crcs = Array.make (max 64 n) 0;
      n_blocks = n;
      name;
      fault = None;
      read_retries = default_read_retries }
  in
  Array.iteri
    (fun i (b, crc) ->
      t.blocks.(i) <- Bytes.copy b;
      t.crcs.(i) <- crc)
    pairs;
  t
