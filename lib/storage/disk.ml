(* Simulated block device used for the snapshot archive (Pagelog).

   The container has no dedicated SSD, so instead of timing host
   filesystem I/O (noise), reads and writes are counted and converted to
   time by Stats.Cost_model.  Blocks are page-sized. *)

type t = {
  mutable blocks : Bytes.t array;
  mutable n_blocks : int;
  name : string;
}

let create ?(name = "disk") () = { blocks = Array.make 64 Bytes.empty; n_blocks = 0; name }

let length t = t.n_blocks

let grow t =
  let cap = Array.length t.blocks in
  if t.n_blocks >= cap then begin
    let blocks = Array.make (cap * 2) Bytes.empty in
    Array.blit t.blocks 0 blocks 0 cap;
    t.blocks <- blocks
  end

(* Append a block; returns its index.  The block is copied so later
   mutation by the caller cannot corrupt the archive. *)
let append t (b : Bytes.t) =
  grow t;
  t.blocks.(t.n_blocks) <- Bytes.copy b;
  t.n_blocks <- t.n_blocks + 1;
  Obs.Metrics.Counter.incr Stats.c_pagelog_writes;
  t.n_blocks - 1

let read t i =
  if i < 0 || i >= t.n_blocks then
    invalid_arg (Printf.sprintf "Disk.read %s: block %d/%d" t.name i t.n_blocks);
  Obs.Metrics.Counter.incr Stats.c_pagelog_reads;
  t.blocks.(i)

(* Total archive size in bytes (Pagelog growth experiments). *)
let size_bytes t = t.n_blocks * Page.size

(* Portable copies of all blocks (for backup/restore). *)
let dump t = Array.init t.n_blocks (fun i -> Bytes.copy t.blocks.(i))

let restore ?(name = "disk") blocks =
  let n = Array.length blocks in
  let t = { blocks = Array.make (max 64 n) Bytes.empty; n_blocks = n; name } in
  Array.iteri (fun i b -> t.blocks.(i) <- Bytes.copy b) blocks;
  t
