(** Simulated block device backing the snapshot archive (Pagelog).

    Reads and writes are counted into {!Stats.global} and converted to
    modeled time by {!Stats.Cost_model}; see DESIGN.md for the
    substitution rationale.  Blocks are page-sized and copied on append,
    so later mutation of the source buffer cannot corrupt the archive.

    Every block carries a CRC32 taken at append time; {!read} verifies
    it and returns a defensive copy, so callers can neither observe nor
    cause silent archive corruption. *)

exception Corruption of { device : string; block : int; detail : string }
(** A stored block no longer matches its append-time checksum. *)

exception Read_error of { device : string; block : int }
(** An armed fault-injection read error (latent media fault). *)

type t

val create : ?name:string -> unit -> t

(** Blocks written so far. *)
val length : t -> int

val name : t -> string

(** Attach (or clear) a fault injector for armed read errors. *)
val set_fault : t -> Fault.t option -> unit

(** The attached fault injector, if any. *)
val fault : t -> Fault.t option

(** Bounded retry budget for transient read faults (default 3): an
    armed-once fault is consumed by a probe and the retry succeeds; a
    persistent fault exhausts the budget and raises {!Read_error}.
    Each retry counts into [storage.read_retries]. *)
val set_read_retries : t -> int -> unit

val read_retries : t -> int

(** Append a copy of the block; returns its index. *)
val append : t -> Bytes.t -> int

(** A defensive copy of the block.
    @raise Invalid_argument on an out-of-range index.
    @raise Corruption when the stored block fails its checksum.
    @raise Read_error when a fault injector armed this block. *)
val read : t -> int -> Bytes.t

(** Indices of all blocks failing their checksum (offline scrub: no
    counters, no fault injection). *)
val verify_all : t -> int list

(** Test hook: flip one bit of a stored block without updating its
    CRC. *)
val corrupt_block : t -> int -> bit:int -> unit

val size_bytes : t -> int

(** {1 Backup} *)

(** Portable copies of all blocks. *)
val dump : t -> Bytes.t array

val restore : ?name:string -> Bytes.t array -> t

(** {1 Raw (stored-CRC-preserving) access}

    [restore]/[append] recompute checksums, which would silently bless a
    latent corruption.  Compaction and checkpoint images copy blocks
    with these instead, so a stored mismatch survives the copy as a
    mismatch. *)

(** Stored bytes + stored CRC of a block — no verification, no read
    counters, no fault injection.
    @raise Invalid_argument on an out-of-range index. *)
val raw_block : t -> int -> Bytes.t * int

(** Append a block with a caller-supplied stored CRC (counted as a
    device write); returns its index. *)
val append_raw : t -> Bytes.t -> crc:int -> int

val dump_raw : t -> (Bytes.t * int) array
val restore_raw : ?name:string -> (Bytes.t * int) array -> t
