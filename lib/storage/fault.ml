(* Deterministic, seeded fault injection for the durability layer.

   An injector interposes on the WAL and Disk I/O paths and perturbs
   them on a schedule derived purely from its seed, so every failure a
   test provokes is reproducible bit-for-bit:

   - crash-after-N-ops: the [tick] before the N-th write-path operation
     reports a crash; the WAL closes its file (optionally writing a torn
     prefix of its unflushed buffer first) and raises {!Crash}, which
     models the process dying mid-write;
   - torn final block: at the crash point, a strict prefix of the bytes
     in flight reaches the medium ([torn_length]);
   - bit flips: [flip_bit_in_file] / [flip_bit_in_bytes] corrupt one
     seeded-random bit, which per-record (WAL) or per-block (Pagelog)
     CRCs must catch;
   - read errors: [arm_read_error] makes one specific device block fail
     on read, modeling a latent media error.  By default the fault is
     persistent (every read of the block fails); with [~once:true] it is
     transient — the first read consumes it, so a bounded retry heals.

   The crash-matrix harness (bin/crash_matrix.ml) runs a workload once
   with a counting injector to learn how many injection points it has,
   then crashes at every one of them and checks recovery. *)

exception Crash
(** The simulated process death.  Raised by the WAL when the armed
    crash point is reached; everything in memory is to be considered
    lost — only bytes already flushed to the file survive. *)

type crash_plan = { after_ops : int; torn : bool }

type t = {
  seed : int;
  rng : Random.State.t;
  mutable ops : int; (* write-path operations observed so far *)
  mutable plan : crash_plan option;
  mutable crashed : bool;
  read_errors : (string * int, bool) Hashtbl.t;
      (* (device, block) armed to fail; the value is [persistent] —
         [false] means the first failing read consumes the fault *)
  mutable bit_flips : int;
}

let create ~seed () =
  { seed;
    rng = Random.State.make [| seed |];
    ops = 0;
    plan = None;
    crashed = false;
    read_errors = Hashtbl.create 4;
    bit_flips = 0 }

let seed t = t.seed
let op_count t = t.ops
let crashed t = t.crashed

(* Arm a crash at the [after_ops]-th write-path operation (1-based).
   With [torn], a strict prefix of the unflushed bytes reaches the
   medium before the crash. *)
let arm_crash t ~after_ops ~torn = t.plan <- Some { after_ops; torn }

(* Observe one write-path operation.  Returns [Some torn] exactly once,
   at the armed crash point; after that every further operation raises
   {!Crash} (the process is dead, nothing more can be written). *)
let tick t =
  if t.crashed then raise Crash;
  t.ops <- t.ops + 1;
  match t.plan with
  | Some p when t.ops >= p.after_ops ->
    t.crashed <- true;
    Some p.torn
  | _ -> None

(* How many of [len] in-flight bytes land on the medium at a torn
   crash: a seeded choice in [0, len), always strictly short. *)
let torn_length t ~len = if len <= 1 then 0 else Random.State.int t.rng len

(* --- read errors -------------------------------------------------------- *)

(* Arm a read error on one device block.  Persistent by default: every
   read of the block fails until disarmed.  With [~once:true] the fault
   is transient — the first failing read consumes it, modeling the
   flaky-medium errors a bounded retry (Disk.read) recovers from. *)
let arm_read_error ?(once = false) t ~device ~index =
  Hashtbl.replace t.read_errors (device, index) (not once)

let disarm_read_error t ~device ~index = Hashtbl.remove t.read_errors (device, index)

(* Whether a read of (device, block) fails now.  A transient fault is
   consumed by the probe that observes it. *)
let should_fail_read t ~device ~index =
  match Hashtbl.find_opt t.read_errors (device, index) with
  | None -> false
  | Some persistent ->
    if not persistent then Hashtbl.remove t.read_errors (device, index);
    true

(* --- bit flips ---------------------------------------------------------- *)

let flip_bit_in_bytes t (b : Bytes.t) =
  if Bytes.length b = 0 then None
  else begin
    let off = Random.State.int t.rng (Bytes.length b) in
    let bit = Random.State.int t.rng 8 in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
    t.bit_flips <- t.bit_flips + 1;
    Some (off, bit)
  end

(* Flip one seeded-random bit of the file at [path], at offset
   [min_off] or later (callers pass the header size to keep the file
   identifiable).  Returns the (offset, bit) flipped, or [None] when
   the file has no byte past [min_off]. *)
let flip_bit_in_file t ~path ~min_off =
  let size = (Unix.stat path).Unix.st_size in
  if size <= min_off then None
  else begin
    let off = min_off + Random.State.int t.rng (size - min_off) in
    let bit = Random.State.int t.rng 8 in
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    let finish () = Unix.close fd in
    (try
       ignore (Unix.lseek fd off Unix.SEEK_SET);
       let one = Bytes.create 1 in
       if Unix.read fd one 0 1 <> 1 then begin
         finish ();
         None
       end
       else begin
         Bytes.set one 0 (Char.chr (Char.code (Bytes.get one 0) lxor (1 lsl bit)));
         ignore (Unix.lseek fd off Unix.SEEK_SET);
         ignore (Unix.write fd one 0 1);
         finish ();
         t.bit_flips <- t.bit_flips + 1;
         Some (off, bit)
       end
     with Unix.Unix_error _ as e ->
       finish ();
       raise e)
  end

let bit_flips t = t.bit_flips
