(* A small LRU cache keyed by ints, used as the snapshot page cache.

   Implemented as a hashtable over a doubly-linked list; all operations
   are O(1). *)

(* System-wide hit/miss counters over every LRU instance (the snapshot
   page cache is the only hot one today); per-instance counts stay in
   the [hits]/[misses] fields. *)
let c_hits = Obs.Metrics.counter "storage.lru_hits"
let c_misses = Obs.Metrics.counter "storage.lru_misses"

type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  mutable capacity : int;
  tbl : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; tbl = Hashtbl.create 256; head = None; tail = None; hits = 0; misses = 0;
    evictions = 0 }

let length t = Hashtbl.length t.tbl

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.Counter.incr c_misses;
    None
  | Some n ->
    t.hits <- t.hits + 1;
    Obs.Metrics.Counter.incr c_hits;
    unlink t n;
    push_front t n;
    Some n.value

let mem t key = Hashtbl.mem t.tbl key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.key;
    t.evictions <- t.evictions + 1

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
    n.value <- value;
    unlink t n;
    push_front t n
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
    let n = { key; value; prev = None; next = None } in
    Hashtbl.add t.tbl key n;
    push_front t n)

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let set_capacity t capacity =
  if capacity < 1 then invalid_arg "Lru.set_capacity";
  t.capacity <- capacity;
  while Hashtbl.length t.tbl > capacity do
    evict_lru t
  done

let stats t = (t.hits, t.misses)

(* Per-instance view for the introspection layer (sys_cache). *)
type stat_record = {
  s_capacity : int;
  s_occupancy : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

let stat_record t =
  { s_capacity = t.capacity;
    s_occupancy = Hashtbl.length t.tbl;
    s_hits = t.hits;
    s_misses = t.misses;
    s_evictions = t.evictions }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
