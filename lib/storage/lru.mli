(** A small LRU cache keyed by ints (the snapshot page cache).
    Hashtable over a doubly-linked list; all operations O(1). *)

type 'a t

(** @raise Invalid_argument if [capacity < 1]. *)
val create : int -> 'a t

val length : 'a t -> int

(** Lookup; a hit refreshes recency.  Counts into {!stats}. *)
val find : 'a t -> int -> 'a option

(** Membership without touching recency or stats. *)
val mem : 'a t -> int -> bool

(** Insert or refresh; evicts the least recently used entry at
    capacity. *)
val add : 'a t -> int -> 'a -> unit

val clear : 'a t -> unit

(** Shrink or grow the capacity, evicting as needed. *)
val set_capacity : 'a t -> int -> unit

(** (hits, misses) accumulated by {!find}. *)
val stats : 'a t -> int * int

(** Per-instance statistics for the introspection layer (sys_cache). *)
type stat_record = {
  s_capacity : int;
  s_occupancy : int;
  s_hits : int;
  s_misses : int;
  s_evictions : int;
}

val stat_record : 'a t -> stat_record

(** Zero the hit/miss/eviction counters (capacity and contents are
    untouched). *)
val reset_stats : 'a t -> unit
