(* The current-state database: an array of committed page images.

   As in the paper's evaluation ("we assume the current state database is
   memory resident"), current-state pages live in memory; reads are
   counted as cheap memory fetches.  All mutation goes through Txn, which
   calls [install] at commit; the [pre_commit_hook] is the interposition
   point where Retro captures copy-on-write pre-states. *)

type commit_event = {
  pid : int;
  before : Bytes.t option; (* committed image being overwritten; None for a brand-new page id *)
}

type t = {
  mutable pages : Bytes.t option array;
  mutable n_pages : int;
  mutable free_list : int list;
  mutable pre_commit_hook : commit_event list -> unit;
}

(* A read context: how a storage structure (heap, B+tree) resolves a page
   id to bytes.  Instantiated by committed reads, transaction-local reads
   and Retro snapshot reads. *)
type read = int -> Bytes.t

let create () =
  { pages = Array.make 64 None; n_pages = 0; free_list = []; pre_commit_hook = (fun _ -> ()) }

let n_pages t = t.n_pages

let grow t wanted =
  let cap = Array.length t.pages in
  if wanted >= cap then begin
    let cap' = max (cap * 2) (wanted + 1) in
    let pages = Array.make cap' None in
    Array.blit t.pages 0 pages 0 cap;
    t.pages <- pages
  end

(* Committed image of a page.  Callers must treat the result as
   read-only; Txn copies before mutating. *)
let read_committed t pid =
  if pid < 0 || pid >= t.n_pages then
    invalid_arg (Printf.sprintf "Pager.read_committed: page %d/%d" pid t.n_pages);
  Obs.Metrics.Counter.incr Stats.c_db_page_reads;
  match t.pages.(pid) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Pager.read_committed: free page %d" pid)

let committed_exists t pid =
  pid >= 0 && pid < t.n_pages && t.pages.(pid) <> None

(* Reserve a page id for a transaction.  Returns the id and the previous
   committed image if the id is recycled (needed for COW: older snapshots
   may still reference the recycled page). *)
let reserve t =
  match t.free_list with
  | pid :: rest ->
    t.free_list <- rest;
    (pid, t.pages.(pid))
  | [] ->
    let pid = t.n_pages in
    grow t pid;
    t.n_pages <- t.n_pages + 1;
    Obs.Metrics.Counter.incr Stats.c_pages_allocated;
    (pid, None)

(* Return a reserved id that was never committed (transaction abort). *)
let unreserve t pid = t.free_list <- pid :: t.free_list

let install t pid (bytes : Bytes.t) =
  grow t pid;
  if pid >= t.n_pages then t.n_pages <- pid + 1;
  t.pages.(pid) <- Some bytes;
  Obs.Metrics.Counter.incr Stats.c_db_page_writes

let release t pid = t.free_list <- pid :: t.free_list

let read : t -> read = fun t pid -> read_committed t pid

(* Portable image of the committed state (for backup/restore). *)
type image = {
  img_pages : Bytes.t option array;
  img_n_pages : int;
  img_free : int list;
}

let dump t =
  { img_pages = Array.init t.n_pages (fun i -> Option.map Bytes.copy t.pages.(i));
    img_n_pages = t.n_pages;
    img_free = t.free_list }

let restore img =
  let t = create () in
  grow t (max 0 (img.img_n_pages - 1));
  Array.iteri (fun i p -> t.pages.(i) <- Option.map Bytes.copy p) img.img_pages;
  t.n_pages <- img.img_n_pages;
  t.free_list <- img.img_free;
  t
