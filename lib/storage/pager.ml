(* The current-state database: an array of committed page images.

   As in the paper's evaluation ("we assume the current state database is
   memory resident"), current-state pages live in memory; reads are
   counted as cheap memory fetches.  All mutation goes through Txn, which
   calls [install] at commit; the [pre_commit_hook] is the interposition
   point where Retro captures copy-on-write pre-states.

   Committed images carry a CRC32 taken at install time, verified by the
   integrity checker ([verify_checksums]) rather than on every read —
   the current state is memory resident, so per-read verification would
   only model cost the paper's setup does not have.

   The optional [wal] sink is how Txn.commit and Retro.declare reach the
   write-ahead log without a dependency cycle (Wal lives above Pager and
   installs closures here). *)

type commit_event = {
  pid : int;
  before : Bytes.t option; (* committed image being overwritten; None for a brand-new page id *)
}

(* Closures into the write-ahead log, installed by Wal.attach.  Commit
   logs after-images + freed ids; declare logs a snapshot boundary;
   barrier is the durability point (group commit decides whether it
   flushes). *)
type wal_sink = {
  wal_commit : writes:(int * Bytes.t) list -> freed:int list -> unit;
  wal_declare : db_pages:int -> ts:float -> unit;
  wal_barrier : unit -> unit;
}

type t = {
  mutable pages : Bytes.t option array;
  mutable crcs : int array;
  mutable n_pages : int;
  mutable free_list : int list;
  mutable pre_commit_hook : commit_event list -> unit;
  mutable wal : wal_sink option;
  (* Readers-writer lock for cross-session access: whole read statements
     hold it in read mode, commit bodies (install + COW archiving) and
     snapshot declarations in write mode, so a reader never observes a
     half-installed commit.  See DESIGN.md §15. *)
  lock : Rwlock.t;
}

(* A read context: how a storage structure (heap, B+tree) resolves a page
   id to bytes.  Instantiated by committed reads, transaction-local reads
   and Retro snapshot reads. *)
type read = int -> Bytes.t

let create () =
  { pages = Array.make 64 None;
    crcs = Array.make 64 0;
    n_pages = 0;
    free_list = [];
    pre_commit_hook = (fun _ -> ());
    wal = None;
    lock = Rwlock.create () }

(* Run [f] as a reader / writer over this database's committed state.
   Read sections nest (the lock is reader-preferring); the engine wraps
   read statements, Txn.commit wraps the install sequence. *)
let with_read_lock t f = Rwlock.with_read t.lock f
let with_write_lock t f = Rwlock.with_write t.lock f

let n_pages t = t.n_pages

let grow t wanted =
  let cap = Array.length t.pages in
  if wanted >= cap then begin
    let cap' = max (cap * 2) (wanted + 1) in
    let pages = Array.make cap' None in
    Array.blit t.pages 0 pages 0 cap;
    t.pages <- pages;
    let crcs = Array.make cap' 0 in
    Array.blit t.crcs 0 crcs 0 cap;
    t.crcs <- crcs
  end

(* Committed image of a page.  Callers must treat the result as
   read-only; Txn copies before mutating. *)
let read_committed t pid =
  if pid < 0 || pid >= t.n_pages then
    invalid_arg (Printf.sprintf "Pager.read_committed: page %d/%d" pid t.n_pages);
  Stats.record_db_page_read ();
  match t.pages.(pid) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Pager.read_committed: free page %d" pid)

let committed_exists t pid =
  pid >= 0 && pid < t.n_pages && t.pages.(pid) <> None

(* Committed image without counters or raising: the WAL replay path uses
   this to reconstruct before-images (a recycled id's before-image at
   replay time is exactly its committed content). *)
let peek_committed t pid =
  if pid < 0 || pid >= t.n_pages then None else t.pages.(pid)

(* Reserve a page id for a transaction.  Returns the id and the previous
   committed image if the id is recycled (needed for COW: older snapshots
   may still reference the recycled page). *)
let reserve t =
  match t.free_list with
  | pid :: rest ->
    t.free_list <- rest;
    (pid, t.pages.(pid))
  | [] ->
    let pid = t.n_pages in
    grow t pid;
    t.n_pages <- t.n_pages + 1;
    Obs.Scope.incr Stats.c_pages_allocated;
    (pid, None)

(* Return a reserved id that was never committed (transaction abort). *)
let unreserve t pid = t.free_list <- pid :: t.free_list

let install t pid (bytes : Bytes.t) =
  grow t pid;
  if pid >= t.n_pages then t.n_pages <- pid + 1;
  t.pages.(pid) <- Some bytes;
  t.crcs.(pid) <- Crc32.bytes bytes;
  Obs.Scope.incr Stats.c_db_page_writes

let release t pid = t.free_list <- pid :: t.free_list

let read : t -> read = fun t pid -> read_committed t pid

(* Page ids whose committed image no longer matches its install-time
   checksum (the integrity checker reports these).  Free slots are
   skipped; a freed-but-unrecycled page still holds its last committed
   image, which still matches. *)
let verify_checksums t =
  let bad = ref [] in
  for pid = t.n_pages - 1 downto 0 do
    match t.pages.(pid) with
    | Some b -> if Crc32.bytes b <> t.crcs.(pid) then bad := pid :: !bad
    | None -> ()
  done;
  !bad

(* Test hook: flip one bit of a committed page without updating its
   CRC. *)
let corrupt_page t pid ~bit =
  match peek_committed t pid with
  | None -> invalid_arg (Printf.sprintf "Pager.corrupt_page: free page %d" pid)
  | Some b ->
    if Bytes.length b = 0 then invalid_arg "Pager.corrupt_page: empty page";
    let off = bit / 8 mod Bytes.length b in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl (bit mod 8))))

(* Portable image of the committed state (for backup/restore). *)
type image = {
  img_pages : Bytes.t option array;
  img_n_pages : int;
  img_free : int list;
}

let dump t =
  { img_pages = Array.init t.n_pages (fun i -> Option.map Bytes.copy t.pages.(i));
    img_n_pages = t.n_pages;
    img_free = t.free_list }

let restore img =
  let t = create () in
  grow t (max 0 (img.img_n_pages - 1));
  Array.iteri
    (fun i p ->
      t.pages.(i) <- Option.map Bytes.copy p;
      match t.pages.(i) with
      | Some b -> t.crcs.(i) <- Crc32.bytes b
      | None -> ())
    img.img_pages;
  t.n_pages <- img.img_n_pages;
  t.free_list <- img.img_free;
  t
