(** The current-state database: an array of committed page images.

    As in the paper's evaluation, current-state pages are memory
    resident; reads count as cheap memory fetches.  All mutation goes
    through {!Txn}, which calls {!install} at commit; the
    [pre_commit_hook] is where Retro captures copy-on-write
    pre-states.  Committed images carry install-time CRC32 checksums
    verified by {!verify_checksums} (the integrity checker). *)

type commit_event = {
  pid : int;
  before : Bytes.t option;
      (** committed image being overwritten; [None] for a brand-new id *)
}

(** Closures into the write-ahead log, installed by [Wal.attach]
    (avoids a Pager -> Wal dependency cycle).  [wal_barrier] is the
    durability point; group commit decides whether it flushes. *)
type wal_sink = {
  wal_commit : writes:(int * Bytes.t) list -> freed:int list -> unit;
  wal_declare : db_pages:int -> ts:float -> unit;
  wal_barrier : unit -> unit;
}

type t = {
  mutable pages : Bytes.t option array;
  mutable crcs : int array;
  mutable n_pages : int;
  mutable free_list : int list;
  mutable pre_commit_hook : commit_event list -> unit;
  mutable wal : wal_sink option;
  lock : Rwlock.t;
      (** readers = whole read statements, writers = commit bodies /
          snapshot declarations (see DESIGN.md §15) *)
}

(** A read context: how a storage structure resolves a page id to bytes.
    Instantiated by committed reads, transaction views and Retro
    snapshot reads. *)
type read = int -> Bytes.t

val create : unit -> t

(** Run [f] holding this database's lock in read mode (nests: the lock
    is reader-preferring, so a read section inside a read section never
    deadlocks).  The engine wraps whole read statements in it. *)
val with_read_lock : t -> (unit -> 'a) -> 'a

(** Run [f] holding the lock in write mode: transaction commit bodies
    and snapshot declarations, which mutate the committed state. *)
val with_write_lock : t -> (unit -> 'a) -> 'a

val n_pages : t -> int

(** Committed image; treat as read-only ({!Txn} copies before
    mutating).
    @raise Invalid_argument on an unallocated page. *)
val read_committed : t -> int -> Bytes.t

val committed_exists : t -> int -> bool

(** Committed image without counters or raising ([None] when free or
    out of range).  The WAL replay path uses this to reconstruct
    before-images. *)
val peek_committed : t -> int -> Bytes.t option

(** Reserve a page id for a transaction; returns the previous committed
    image when the id is recycled. *)
val reserve : t -> int * Bytes.t option

(** Return a reserved-but-never-committed id (transaction abort). *)
val unreserve : t -> int -> unit

(** Install a committed after-image (called by {!Txn.commit}). *)
val install : t -> int -> Bytes.t -> unit

(** Put a page id on the free list (its content stays readable for
    snapshot sharing until the id is recycled). *)
val release : t -> int -> unit

(** Committed-state read context. *)
val read : t -> read

(** Page ids whose committed image fails its install-time checksum. *)
val verify_checksums : t -> int list

(** Test hook: flip one bit of a committed page without updating its
    CRC. *)
val corrupt_page : t -> int -> bit:int -> unit

(** {1 Backup} *)

type image = {
  img_pages : Bytes.t option array;
  img_n_pages : int;
  img_free : int list;
}

(** Portable copy of the committed state. *)
val dump : t -> image

(** A fresh pager holding the image (no hook attached). *)
val restore : image -> t
